//go:build !unix

package distsketch

import (
	"io"
	"os"
)

// mmapFile on platforms without a usable mmap reads the file onto the
// heap instead. OpenSketchSet still works — same lazy first-touch
// decoding, same lifecycle — but the set reports heap backing and
// startup pays one payload copy.
func mmapFile(f *os.File, size int) (data []byte, mapped bool, unmap func([]byte) error, err error) {
	data = make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, nil, err
	}
	return data, false, nil, nil
}
