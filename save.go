package distsketch

// Crash-safe persistence for sketch-set envelopes. A serving process
// lives or dies by its envelope file: a save that tears mid-write, a
// disk that flips a bit, or a deploy that truncates a copy must surface
// as a typed, actionable error at startup — never as a torn file the
// loader trips over or, worse, silently wrong estimates.
//
// SaveSketchSet writes through internal/atomicfile (same-directory temp
// file, fsync, atomic rename, directory fsync), so the envelope at path
// is always either the complete old set or the complete new one.
// LoadSketchSet is the recovery-aware counterpart: it sweeps the stale
// temp files an interrupted save leaves behind, and quarantines a
// corrupt envelope (rename to path+".corrupt") so the next restart does
// not crash-loop on the same bytes.

import (
	"errors"
	"fmt"
	"io"
	"os"

	"distsketch/internal/atomicfile"
)

// ErrCorruptEnvelope reports a torn or corrupt sketch-set envelope:
// truncated bytes, a failed checksum, or payload contents that do not
// parse. Offset is the byte position (within the envelope) where the
// corruption was detected; Path and Quarantined are filled by
// LoadSketchSet when the envelope came from a file. It wraps the
// underlying cause for errors.Is/As inspection.
type ErrCorruptEnvelope struct {
	// Path is the envelope file ("" when read from a plain stream).
	Path string
	// Offset is the byte offset at which the corruption was detected: the
	// truncation point of a torn file, the checksum trailer for a bit
	// flip, the failing field for a payload that does not parse.
	Offset int64
	// Quarantined is where LoadSketchSet moved the corrupt file, or ""
	// if it was not (or could not be) quarantined.
	Quarantined string
	// Err is the underlying decode failure.
	Err error
}

func (e *ErrCorruptEnvelope) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("distsketch: corrupt sketch-set envelope %s at byte %d: %v", e.Path, e.Offset, e.Err)
	}
	return fmt.Sprintf("distsketch: corrupt sketch-set envelope at byte %d: %v", e.Offset, e.Err)
}

func (e *ErrCorruptEnvelope) Unwrap() error { return e.Err }

// ErrCorruptLabel reports a lazily loaded label whose bytes passed the
// envelope's load-time directory scan but failed to decode on first
// touch — possible only for an envelope corrupted behind its checksum
// or crafted to lie. Node is the label's owner and Offset the byte
// position of its blob within the envelope, so an operator can go look
// at the bad bytes. The checked accessors (QueryChecked, SketchChecked)
// return it; match with errors.As.
type ErrCorruptLabel struct {
	// Node owns the undecodable label.
	Node int
	// Offset is the byte offset of the label's blob within the envelope
	// the set was loaded from.
	Offset int64
	// Err is the underlying decode failure.
	Err error
}

func (e *ErrCorruptLabel) Error() string {
	return fmt.Sprintf("distsketch: corrupt label of node %d (envelope byte %d): %v", e.Node, e.Offset, e.Err)
}

func (e *ErrCorruptLabel) Unwrap() error { return e.Err }

// SaveSketchSet writes set to path crash-safely in the requested
// envelope version (SetVersion1 or SetVersion2): the envelope is
// serialized into a same-directory temp file, fsynced, renamed over
// path atomically, and the directory is fsynced. A crash at any point —
// including mid-serialization — leaves path holding its previous
// complete contents; the new envelope appears only once fully durable.
func SaveSketchSet(path string, set *SketchSet, version int) error {
	if set == nil {
		return fmt.Errorf("distsketch: cannot save a nil sketch set")
	}
	return atomicfile.WriteFile(path, func(w io.Writer) error {
		_, err := set.WriteToVersion(w, version)
		return err
	})
}

// LoadSketchSet reads the sketch-set envelope at path with startup-side
// recovery around ReadSketchSet:
//
//   - stale temp files left by a save that was killed mid-write are
//     removed first (they hold torn data by definition);
//   - a torn or corrupt envelope is quarantined — renamed to
//     path+".corrupt" — so the next restart does not trip over the same
//     bytes, and the returned *ErrCorruptEnvelope carries the path, the
//     detection offset, and the quarantine location.
//
// A missing file returns the usual fs error (errors.Is(err,
// os.ErrNotExist)); only envelopes that exist but cannot be trusted are
// quarantined.
func LoadSketchSet(path string) (*SketchSet, error) {
	// Best-effort sweep: a failure here (exotic permissions) must not
	// block loading a perfectly good envelope; the stale temps can never
	// be confused with path itself.
	_, _ = atomicfile.CleanStale(path)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	set, err := ReadSketchSet(f)
	cerr := f.Close()
	if err != nil {
		var ce *ErrCorruptEnvelope
		if errors.As(err, &ce) {
			ce.Path = path
			// Quarantine rather than delete: the bytes may matter for
			// forensics, but the serving path must stop crash-looping on
			// them at every restart.
			if qerr := os.Rename(path, path+".corrupt"); qerr == nil {
				ce.Quarantined = path + ".corrupt"
			}
		}
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	return set, nil
}
