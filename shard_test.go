package distsketch

// Node-range sharding coverage: slicing produces byte-identical blobs
// under a version-3 envelope, a loaded shard answers its range exactly
// like the full set and redirects the rest, and the read-only contract
// holds.

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func buildShardSet(t *testing.T) *SketchSet {
	t.Helper()
	g, err := NewRandomWeightedGraph(FamilyGeometric, 100, 10, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(g, Options{Kind: KindLandmark, Eps: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestEvenShardRanges(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{10, 1}, {10, 3}, {100, 4}, {7, 7}} {
		ranges := EvenShardRanges(tc.n, tc.shards)
		if len(ranges) != tc.shards {
			t.Fatalf("EvenShardRanges(%d,%d): %d ranges", tc.n, tc.shards, len(ranges))
		}
		want := 0
		for _, r := range ranges {
			if r.Lo != want || r.Hi <= r.Lo {
				t.Fatalf("EvenShardRanges(%d,%d): bad tiling %v", tc.n, tc.shards, ranges)
			}
			if size := r.Hi - r.Lo; size < tc.n/tc.shards || size > tc.n/tc.shards+1 {
				t.Fatalf("EvenShardRanges(%d,%d): uneven range %s", tc.n, tc.shards, r)
			}
			want = r.Hi
		}
		if want != tc.n {
			t.Fatalf("EvenShardRanges(%d,%d): ends at %d", tc.n, tc.shards, want)
		}
	}
	for _, bad := range []struct{ n, shards int }{{10, 0}, {10, 11}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EvenShardRanges(%d,%d) did not panic", bad.n, bad.shards)
				}
			}()
			EvenShardRanges(bad.n, bad.shards)
		}()
	}
}

// TestShardRoundTrip is the core slicing contract: SaveShards slices a
// set into envelopes whose blobs are byte-identical to the full set's,
// and each loaded shard answers its global ids with exactly the full
// set's estimates.
func TestShardRoundTrip(t *testing.T) {
	set := buildShardSet(t)
	dir := t.TempDir()
	ranges := EvenShardRanges(set.N(), 4)
	paths, err := SaveShards(dir, set, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("SaveShards wrote %d envelopes, want 4", len(paths))
	}
	for i, path := range paths {
		shard, err := LoadSketchSet(path)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if !shard.Sharded() {
			t.Fatalf("shard %d does not report Sharded", i)
		}
		if shard.EnvelopeVersion() != SetVersion3 {
			t.Fatalf("shard %d: envelope v%d, want v%d", i, shard.EnvelopeVersion(), SetVersion3)
		}
		lo, hi := shard.NodeRange()
		if lo != ranges[i].Lo || hi != ranges[i].Hi {
			t.Fatalf("shard %d: range [%d,%d), want %s", i, lo, hi, ranges[i])
		}
		if shard.TotalNodes() != set.N() {
			t.Fatalf("shard %d: total %d, want %d", i, shard.TotalNodes(), set.N())
		}
		if shard.Kind() != set.Kind() {
			t.Fatalf("shard %d: kind %s", i, shard.Kind())
		}
		for u := lo; u < hi; u++ {
			if !bytes.Equal(shard.SketchBytes(u), set.SketchBytes(u)) {
				t.Fatalf("shard %d node %d: wire bytes differ from the full set", i, u)
			}
			for v := lo; v < hi; v += 7 {
				if got, want := shard.Query(u, v), set.Query(u, v); got != want {
					t.Fatalf("shard %d (%d,%d): %d != full set's %d", i, u, v, got, want)
				}
			}
		}
	}
}

// TestShardOpenMmap: a shard envelope opens zero-copy like any other
// lazy envelope and keeps its global addressing.
func TestShardOpenMmap(t *testing.T) {
	set := buildShardSet(t)
	dir := t.TempDir()
	ranges := EvenShardRanges(set.N(), 3)
	paths, err := SaveShards(dir, set, ranges)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := OpenSketchSet(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	defer shard.Close()
	lo, hi := shard.NodeRange()
	if lo != ranges[1].Lo || hi != ranges[1].Hi {
		t.Fatalf("mmap shard range [%d,%d), want %s", lo, hi, ranges[1])
	}
	for u := lo; u < hi; u += 3 {
		if got, want := shard.Query(u, u), set.Query(u, u); got != want {
			t.Fatalf("(%d,%d): %d != %d", u, u, got, want)
		}
	}
}

// TestShardRangeErrors separates the two misses: an id owned by another
// shard wraps ErrShardRange (redirectable), an id outside the whole
// space wraps ErrNodeRange (nonexistent).
func TestShardRangeErrors(t *testing.T) {
	set := buildShardSet(t)
	dir := t.TempDir()
	ranges := EvenShardRanges(set.N(), 4)
	paths, err := SaveShards(dir, set, ranges)
	if err != nil {
		t.Fatal(err)
	}
	shard, err := LoadSketchSet(paths[2])
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := shard.NodeRange()
	otherShard := ranges[0].Lo // exists, owned by shard 0
	_, err = shard.QueryChecked(otherShard, lo)
	if !errors.Is(err, ErrShardRange) {
		t.Fatalf("query for other shard's id: %v, want ErrShardRange", err)
	}
	if errors.Is(err, ErrNodeRange) {
		t.Fatal("shard miss must not also match ErrNodeRange")
	}
	if !strings.Contains(err.Error(), "outside shard") {
		t.Fatalf("shard miss message lacks context: %v", err)
	}
	_, err = shard.QueryChecked(set.N()+5, lo)
	if !errors.Is(err, ErrNodeRange) {
		t.Fatalf("query beyond the id space: %v, want ErrNodeRange", err)
	}
	if errors.Is(err, ErrShardRange) {
		t.Fatal("nonexistent id must not match ErrShardRange")
	}
	if _, err := shard.SketchBytesChecked(otherShard); !errors.Is(err, ErrShardRange) {
		t.Fatalf("SketchBytesChecked for other shard's id: %v, want ErrShardRange", err)
	}
	if _, err := shard.SketchBytesChecked(hi); lo > 0 && !errors.Is(err, ErrShardRange) {
		t.Fatalf("SketchBytesChecked just past the shard: %v, want ErrShardRange", err)
	}
}

// TestShardReadOnly pins the repair contract: shards reject repairs,
// can only serialize as version 3, and cannot be re-split.
func TestShardReadOnly(t *testing.T) {
	set := buildShardSet(t)
	dir := t.TempDir()
	paths, err := SaveShards(dir, set, EvenShardRanges(set.N(), 2))
	if err != nil {
		t.Fatal(err)
	}
	shard, err := LoadSketchSet(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRandomWeightedGraph(FamilyGeometric, set.N(), 10, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.UpdateEdge(g, 0, 1); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("UpdateEdge on a shard: %v, want read-only rejection", err)
	}
	var buf bytes.Buffer
	if _, err := shard.WriteToVersion(&buf, SetVersion2); err == nil {
		t.Fatal("WriteToVersion(v2) on a shard must fail (no shard range in v2)")
	}
	if _, err := shard.WriteShard(&buf, ShardRange{Lo: 0, Hi: 10}); err == nil {
		t.Fatal("re-splitting a shard must fail")
	}
	// WriteTo on a shard picks version 3 and round-trips.
	buf.Reset()
	if _, err := shard.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	re, err := ReadSketchSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := shard.NodeRange()
	if rlo, rhi := re.NodeRange(); rlo != lo || rhi != hi || re.TotalNodes() != shard.TotalNodes() {
		t.Fatalf("shard WriteTo round trip: [%d,%d)/%d, want [%d,%d)/%d",
			rlo, rhi, re.TotalNodes(), lo, hi, shard.TotalNodes())
	}
	// An unsharded set cannot masquerade as a shard.
	if _, err := set.WriteToVersion(&buf, SetVersion3); err == nil {
		t.Fatal("WriteToVersion(v3) on an unsharded set must fail")
	}
}

// TestWriteShardsValidation: ranges that do not exactly tile [0, N())
// are refused before any bytes are written.
func TestWriteShardsValidation(t *testing.T) {
	set := buildShardSet(t)
	n := set.N()
	bad := [][]ShardRange{
		{},                                    // no ranges
		{{Lo: 0, Hi: n - 1}},                  // short of n
		{{Lo: 1, Hi: n}},                      // missing node 0
		{{Lo: 0, Hi: 50}, {Lo: 60, Hi: n}},    // gap
		{{Lo: 0, Hi: 60}, {Lo: 50, Hi: n}},    // overlap
		{{Lo: 0, Hi: 50}, {Lo: 50, Hi: 50}},   // empty range
		{{Lo: 50, Hi: n}, {Lo: 0, Hi: 50}},    // out of order
		{{Lo: 0, Hi: n}, {Lo: n, Hi: n + 10}}, // past the end
	}
	for i, ranges := range bad {
		bufs := make([]bytes.Buffer, len(ranges))
		ws := make([]io.Writer, len(ranges))
		for j := range bufs {
			ws[j] = &bufs[j]
		}
		if err := set.WriteShards(ws, ranges); err == nil {
			t.Errorf("case %d: WriteShards accepted bad ranges %v", i, ranges)
		}
	}
	if _, err := SaveShards(t.TempDir(), set, []ShardRange{{Lo: 0, Hi: n - 1}}); err == nil {
		t.Error("SaveShards accepted ranges short of n")
	}
}
