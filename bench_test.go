package distsketch

// One benchmark per reproduced result (DESIGN.md §4). The paper is a
// theory paper, so its "tables and figures" are its theorems; each bench
// regenerates the measured quantity the theorem bounds and reports it as
// custom metrics next to the bound. Full sweep tables live in
// cmd/sketchbench and EXPERIMENTS.md; these benches exercise one
// representative configuration per result so `go test -bench=.` yields
// the complete reproduction at a glance.

import (
	"bytes"
	"math"
	"testing"

	"distsketch/internal/congest"
	"distsketch/internal/core"
	"distsketch/internal/eval"
	"distsketch/internal/experiments"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
	"distsketch/internal/tz"
)

const (
	benchN    = 256
	benchK    = 3
	benchSeed = 1
)

func benchGraph(b *testing.B, f graph.Family) *graph.Graph {
	b.Helper()
	return graph.Make(f, benchN, graph.UniformWeights(1, 10), benchSeed)
}

// BenchmarkE1_TZRounds — Theorem 1.1/3.8 round complexity.
func BenchmarkE1_TZRounds(b *testing.B) {
	g := benchGraph(b, graph.FamilyER)
	s := graph.ShortestPathDiameter(g)
	bound := float64(benchK) * 3 * math.Pow(float64(g.N()), 1.0/benchK) *
		math.Log(float64(g.N())) * float64(s)
	var rounds int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BuildTZ(g, core.TZOptions{K: benchK, Seed: uint64(i), Mode: core.SyncOmniscient})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Cost.Total.Rounds
		if float64(rounds) > bound+benchK {
			b.Fatalf("rounds %d exceed Theorem 3.8 bound %.0f", rounds, bound)
		}
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(rounds)/bound, "rounds/bound")
}

// BenchmarkE2_TZMessages — Theorem 1.1/3.8 message complexity.
func BenchmarkE2_TZMessages(b *testing.B) {
	g := benchGraph(b, graph.FamilyER)
	s := graph.ShortestPathDiameter(g)
	bound := 2 * float64(g.M()) * float64(benchK) * 3 *
		math.Pow(float64(g.N()), 1.0/benchK) * math.Log(float64(g.N())) * float64(s)
	var msgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BuildTZ(g, core.TZOptions{K: benchK, Seed: uint64(i), Mode: core.SyncOmniscient})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Cost.Total.Messages
		if float64(msgs) > bound {
			b.Fatalf("messages %d exceed Theorem 3.8 bound %.0f", msgs, bound)
		}
	}
	b.ReportMetric(float64(msgs), "messages")
	b.ReportMetric(float64(msgs)/bound, "msgs/bound")
}

// BenchmarkE3_SketchSize — Lemma 3.1 / Theorem 3.8 sketch size.
func BenchmarkE3_SketchSize(b *testing.B) {
	g := benchGraph(b, graph.FamilyGeometric)
	eBound := float64(2*benchK) + 3*float64(benchK)*math.Pow(float64(g.N()), 1.0/benchK)
	var mean float64
	var max int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BuildTZ(g, core.TZOptions{K: benchK, Seed: uint64(i), Mode: core.SyncOmniscient})
		if err != nil {
			b.Fatal(err)
		}
		mean, max = res.MeanLabelWords(), res.MaxLabelWords()
		if mean > 2*eBound {
			b.Fatalf("mean size %.1f words > 2x Lemma 3.1 bound %.1f", mean, eBound)
		}
	}
	b.ReportMetric(mean, "mean-words")
	b.ReportMetric(float64(max), "max-words")
	b.ReportMetric(mean/eBound, "mean/bound")
}

// BenchmarkE4_TZStretch — Lemma 3.2 stretch and query cost. The ns/op of
// this bench is the per-query latency itself (sketch-only computation).
func BenchmarkE4_TZStretch(b *testing.B) {
	g := benchGraph(b, graph.FamilyER)
	res, err := core.BuildTZ(g, core.TZOptions{K: benchK, Seed: benchSeed, Mode: core.SyncOmniscient})
	if err != nil {
		b.Fatal(err)
	}
	ap := graph.APSP(g)
	rep := eval.Evaluate(ap, res.Query, eval.SamplePairs(g.N(), 20000, 3))
	if rep.Violations != 0 || rep.MaxStretch > float64(2*benchK-1) {
		b.Fatalf("stretch report %v violates Lemma 3.2", rep)
	}
	b.ReportMetric(rep.MaxStretch, "max-stretch")
	b.ReportMetric(rep.AvgStretch, "avg-stretch")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Query(i%g.N(), (i*31+17)%g.N())
	}
}

// BenchmarkE5_BunchTail — Lemma 3.6 tail bound.
func BenchmarkE5_BunchTail(b *testing.B) {
	g := benchGraph(b, graph.FamilyER)
	threshold := 3 * math.Pow(float64(g.N()), 1.0/benchK) * math.Log(float64(g.N()))
	exceed, samples := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := tz.Build(g, benchK, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		perLevel := make([]int, benchK)
		for u := 0; u < g.N(); u++ {
			for j := range perLevel {
				perLevel[j] = 0
			}
			for _, e := range o.Label(u).Bunch {
				perLevel[e.Level]++
			}
			for _, c := range perLevel {
				samples++
				if float64(c) > threshold {
					exceed++
				}
			}
		}
	}
	if exceed > 0 {
		b.Fatalf("%d/%d bunch sizes exceeded the Lemma 3.6 threshold", exceed, samples)
	}
	b.ReportMetric(float64(samples), "samples")
	b.ReportMetric(0, "exceedances")
}

// BenchmarkE6_Termination — Section 3.3 detection overhead vs omniscient.
func BenchmarkE6_Termination(b *testing.B) {
	g := benchGraph(b, graph.FamilyGeometric)
	omn, err := core.BuildTZ(g, core.TZOptions{K: benchK, Seed: benchSeed, Mode: core.SyncOmniscient})
	if err != nil {
		b.Fatal(err)
	}
	var det *core.TZResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err = core.BuildTZ(g, core.TZOptions{K: benchK, Seed: benchSeed, Mode: core.SyncDetection})
		if err != nil {
			b.Fatal(err)
		}
		if det.Cost.EchoMessages != det.Cost.DataMessages {
			b.Fatalf("echo %d != data %d", det.Cost.EchoMessages, det.Cost.DataMessages)
		}
	}
	b.ReportMetric(float64(det.Cost.Total.Rounds)/float64(omn.Cost.Total.Rounds), "round-overhead")
	b.ReportMetric(float64(det.Cost.Total.Messages)/float64(omn.Cost.Total.Messages), "msg-overhead")
}

// BenchmarkE7_DensityNet — Lemma 4.2 density net construction (constant
// time distributed; here: the sampling plus the covering check).
func BenchmarkE7_DensityNet(b *testing.B) {
	g := benchGraph(b, graph.FamilyER)
	n := g.N()
	eps := 0.125
	bound := 10 / eps * math.Log(float64(n))
	var netSize int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := sketch.DensityNet(n, eps, uint64(i), sketch.SaltNet)
		netSize = len(net)
		if float64(netSize) > bound {
			b.Fatalf("|N| = %d > Lemma 4.2 bound %.1f", netSize, bound)
		}
	}
	b.ReportMetric(float64(netSize), "net-size")
	b.ReportMetric(float64(netSize)/bound, "size/bound")
}

// BenchmarkE8_LandmarkSlack — Theorem 4.3 stretch-3 ε-slack sketches.
func BenchmarkE8_LandmarkSlack(b *testing.B) {
	g := benchGraph(b, graph.FamilyGeometric)
	eps := 0.25
	ap := graph.APSP(g)
	var rep eval.SlackReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BuildLandmark(g, core.SlackOptions{Eps: eps, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rep = eval.EvaluateSlack(ap, res.Query, eval.SamplePairs(g.N(), 20000, 5), eps)
		if rep.Far.MaxStretch > 3 || rep.Far.Violations > 0 {
			b.Fatalf("Theorem 4.3 violated: %v", rep.Far)
		}
		b.StartTimer()
	}
	b.ReportMetric(rep.Far.MaxStretch, "far-max-stretch")
	b.ReportMetric(rep.FarFrac, "far-fraction")
}

// BenchmarkE9_CDG — Theorem 4.6 (ε,k)-CDG sketches.
func BenchmarkE9_CDG(b *testing.B) {
	g := benchGraph(b, graph.FamilyGeometric)
	eps, k := 0.25, 2
	ap := graph.APSP(g)
	var rep eval.SlackReport
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BuildCDG(g, core.SlackOptions{Eps: eps, K: k, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		size = res.MaxLabelWords()
		rep = eval.EvaluateSlack(ap, res.Query, eval.SamplePairs(g.N(), 20000, 7), eps)
		if bound := float64(8*k - 1); rep.Far.MaxStretch > bound || rep.Far.Violations > 0 {
			b.Fatalf("Theorem 4.6 violated: %v", rep.Far)
		}
		b.StartTimer()
	}
	b.ReportMetric(rep.Far.MaxStretch, "far-max-stretch")
	b.ReportMetric(float64(size), "max-words")
}

// BenchmarkE10_Graceful — Theorem 4.8 / Corollary 4.9 gracefully
// degrading sketches: O(log n) worst stretch, O(1) average stretch.
func BenchmarkE10_Graceful(b *testing.B) {
	g := benchGraph(b, graph.FamilyER)
	ap := graph.APSP(g)
	worstBound := float64(8*sketch.GracefulLevels(g.N()) - 1)
	var worst, avg float64
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BuildGraceful(g, core.SlackOptions{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rep := eval.Evaluate(ap, res.Query, eval.SamplePairs(g.N(), 20000, 9))
		worst, avg = rep.MaxStretch, eval.AvgStretchAllPairs(ap, res.Query)
		size = res.MaxLabelWords()
		if worst > worstBound || rep.Violations > 0 {
			b.Fatalf("Theorem 4.8 violated: worst %.2f > %.1f", worst, worstBound)
		}
		b.StartTimer()
	}
	b.ReportMetric(worst, "worst-stretch")
	b.ReportMetric(avg, "avg-stretch")
	b.ReportMetric(float64(size), "max-words")
}

// BenchmarkE11_QueryVsOnline — Section 2.1: sketch exchange (O(D·size))
// vs online computation (Ω(S)) on a hub-ring where S ≫ D.
func BenchmarkE11_QueryVsOnline(b *testing.B) {
	// Ring of unit edges + hub with heavy edges: D=2, S=n/2.
	ringN := benchN
	gb := graph.NewBuilder(ringN + 1)
	for i := 0; i < ringN; i++ {
		gb.AddEdge(i, (i+1)%ringN, 1)
		gb.AddEdge(i, ringN, graph.Dist(ringN))
	}
	g := gb.MustFreeze()
	d := graph.HopDiameter(g)
	s := graph.ShortestPathDiameter(g)
	k := int(math.Floor(math.Log2(float64(g.N()))))
	var words int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: uint64(i), Mode: core.SyncOmniscient})
		if err != nil {
			b.Fatal(err)
		}
		words = res.MaxLabelWords()
	}
	b.ReportMetric(float64(d*words), "exchange-rounds")
	b.ReportMetric(float64(s), "online-rounds")
	b.ReportMetric(float64(s)/float64(d*words), "online/exchange")
}

// BenchmarkE12_Equivalence — distributed vs centralized label identity
// under shared coins (the repository's strongest correctness check).
func BenchmarkE12_Equivalence(b *testing.B) {
	g := benchGraph(b, graph.FamilyER)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := uint64(i)
		dist, err := core.BuildTZ(g, core.TZOptions{K: benchK, Seed: seed, Mode: core.SyncOmniscient})
		if err != nil {
			b.Fatal(err)
		}
		cent, err := tz.Build(g, benchK, seed)
		if err != nil {
			b.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			if len(dist.Labels[u].Bunch) != len(cent.Labels[u].Bunch) {
				b.Fatalf("node %d: bunch mismatch", u)
			}
			for w, e := range cent.Labels[u].Bunch {
				if dist.Labels[u].Bunch[w] != e {
					b.Fatalf("node %d: bunch[%d] mismatch", u, w)
				}
			}
		}
	}
	b.ReportMetric(1, "identical")
}

// BenchmarkE13_Bandwidth — the Section 2.2 bandwidth-B generalization:
// rounds shrink roughly by B, labels unchanged.
func BenchmarkE13_Bandwidth(b *testing.B) {
	g := benchGraph(b, graph.FamilyER)
	base, err := core.BuildTZ(g, core.TZOptions{K: benchK, Seed: benchSeed, Mode: core.SyncOmniscient})
	if err != nil {
		b.Fatal(err)
	}
	var batched *core.TZResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batched, err = core.BuildTZ(g, core.TZOptions{
			K: benchK, Seed: benchSeed, Mode: core.SyncOmniscient, Batch: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if batched.Cost.Total.Rounds > base.Cost.Total.Rounds {
			b.Fatalf("batching increased rounds")
		}
	}
	b.ReportMetric(float64(base.Cost.Total.Rounds)/float64(batched.Cost.Total.Rounds), "speedup-B4")
}

// BenchmarkAsyncOverhead — the asynchronous-delivery extension: same
// labels, round count grows with the delay bound.
func BenchmarkAsyncOverhead(b *testing.B) {
	g := benchGraph(b, graph.FamilyGrid)
	sync, err := core.BuildTZ(g, core.TZOptions{K: benchK, Seed: benchSeed, Mode: core.SyncOmniscient})
	if err != nil {
		b.Fatal(err)
	}
	var async *core.TZResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		async, err = core.BuildTZ(g, core.TZOptions{
			K: benchK, Seed: benchSeed, Mode: core.SyncOmniscient,
			Congest: congest.Config{MaxDelay: 4},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(async.Cost.Total.Rounds)/float64(sync.Cost.Total.Rounds), "round-overhead")
}

// BenchmarkBuildPublicAPI measures end-to-end facade builds per kind.
func BenchmarkBuildPublicAPI(b *testing.B) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 128, 1, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Kind{KindTZ, KindLandmark, KindCDG, KindGraceful} {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: uint64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryPath compares the decode-once query path (Sketch.Estimate
// over pre-parsed sketches) against the byte-level Estimate that
// re-unmarshals both sketches on every call, for every sketch kind. The
// decoded ns/op is the serving hot path's per-query latency — for
// landmark sketches it is the two-pointer merge-intersection over the
// sorted entry slices (zero allocations; formerly an O(|N|) map probe
// and the single visible serving bottleneck).
func BenchmarkQueryPath(b *testing.B) {
	g, err := NewRandomWeightedGraph(FamilyER, 128, 1, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	for _, kind := range []Kind{KindTZ, KindLandmark, KindCDG, KindGraceful} {
		b.Run(string(kind), func(b *testing.B) {
			set, err := Build(g, Options{Kind: kind, K: 3, Eps: 0.25, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			blobs := make([][]byte, n)
			parsed := make([]*Sketch, n)
			for u := 0; u < n; u++ {
				blobs[u] = set.SketchBytes(u)
				parsed[u], err = ParseSketch(blobs[u])
				if err != nil {
					b.Fatal(err)
				}
			}
			b.Run("decoded", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := parsed[i%n].Estimate(parsed[(i*37+11)%n]); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("bytes", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Estimate(blobs[i%n], blobs[(i*37+11)%n]); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// TestQueryPathZeroAlloc pins BenchmarkQueryPath's alloc column as a
// hard assertion: the decoded query path must stay allocation-free for
// every kind — on freshly parsed sketches and on a warmed lazily loaded
// set — so an accidental allocation on the serving hot path fails tests
// instead of silently showing up in the next BENCH_*.json.
func TestQueryPathZeroAlloc(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyER, 128, 1, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	for _, kind := range []Kind{KindTZ, KindLandmark, KindCDG, KindGraceful} {
		t.Run(string(kind), func(t *testing.T) {
			set, err := Build(g, Options{Kind: kind, K: 3, Eps: 0.25, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			parsed := make([]*Sketch, n)
			for u := 0; u < n; u++ {
				if parsed[u], err = ParseSketch(set.SketchBytes(u)); err != nil {
					t.Fatal(err)
				}
			}
			q := 0
			if allocs := testing.AllocsPerRun(100, func() {
				if _, err := parsed[q%n].Estimate(parsed[(q*37+11)%n]); err != nil {
					t.Fatal(err)
				}
				q++
			}); allocs != 0 {
				t.Errorf("decoded Estimate allocates %.1f objects per query, want 0", allocs)
			}

			var buf bytes.Buffer
			if _, err := set.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			lazy, err := ReadSketchSet(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if err := lazy.Materialize(); err != nil { // warm every label
				t.Fatal(err)
			}
			q = 0
			if allocs := testing.AllocsPerRun(100, func() {
				lazy.Query(q%n, (q*37+11)%n)
				q++
			}); allocs != 0 {
				t.Errorf("warmed lazy Query allocates %.1f objects per query, want 0", allocs)
			}
		})
	}
}

// BenchmarkEstimateSerialized measures the full serialized query path.
func BenchmarkEstimateSerialized(b *testing.B) {
	g, err := NewRandomWeightedGraph(FamilyER, 128, 1, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Build(g, Options{Kind: KindTZ, K: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	blobs := make([][]byte, g.N())
	for u := 0; u < g.N(); u++ {
		blobs[u] = res.SketchBytes(u)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(blobs[i%g.N()], blobs[(i*37+11)%g.N()]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExperimentsSuite runs the full quick-scale reproduction sweep from
// the root package, mirroring cmd/sketchbench.
func TestExperimentsSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	for _, tab := range experiments.All(experiments.Quick) {
		if !tab.OK() {
			t.Errorf("experiment failed:\n%s", tab.String())
		}
	}
}
