package distsketch

// Tests for the build-once / decode-once / query-millions lifecycle: the
// first-class Sketch value, the persistable SketchSet, context-aware
// builds, and in-place incremental repair.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

var allKinds = []Kind{KindTZ, KindLandmark, KindCDG, KindGraceful}

// TestSketchSetRoundTrip: a set written to an envelope and reloaded must
// answer byte-identical estimates and carry the same cost accounting,
// for every kind.
func TestSketchSetRoundTrip(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 64, 1, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			set, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			wrote, err := set.WriteTo(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if wrote != int64(buf.Len()) {
				t.Errorf("WriteTo reported %d bytes, wrote %d", wrote, buf.Len())
			}
			got, err := ReadSketchSet(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind() != kind || got.N() != set.N() {
				t.Fatalf("reloaded header kind=%s n=%d", got.Kind(), got.N())
			}
			if got.Cost().Total != set.Cost().Total {
				t.Errorf("cost total changed: %+v != %+v", got.Cost().Total, set.Cost().Total)
			}
			if len(got.Cost().Phases) != len(set.Cost().Phases) {
				t.Errorf("phase count changed: %d != %d", len(got.Cost().Phases), len(set.Cost().Phases))
			}
			for u := 0; u < set.N(); u++ {
				if !bytes.Equal(got.SketchBytes(u), set.SketchBytes(u)) {
					t.Fatalf("node %d: sketch bytes differ after reload", u)
				}
			}
			for u := 0; u < set.N(); u += 7 {
				for v := 0; v < set.N(); v += 5 {
					if got.Query(u, v) != set.Query(u, v) {
						t.Fatalf("(%d,%d): reloaded estimate differs", u, v)
					}
				}
			}
		})
	}
}

// TestSketchSetEnvelopeByteStable: serializing a reloaded set must
// reproduce the envelope byte for byte, for every kind. This is the
// compatibility guarantee behind keeping the envelope at version 1
// across the landmark sorted-slice refactor: the wire encoder emits
// entries in the same ascending-ID order the map-backed seed encoder
// produced, so persisted sets decode unchanged and round-trip to a
// fixed point.
func TestSketchSetEnvelopeByteStable(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 64, 1, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			set, err := Build(g, Options{Kind: kind, K: 2, Eps: 0.25, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			var first bytes.Buffer
			if _, err := set.WriteTo(&first); err != nil {
				t.Fatal(err)
			}
			reloaded, err := ReadSketchSet(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var second bytes.Buffer
			if _, err := reloaded.WriteTo(&second); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatal("envelope is not byte-stable across a write/read/write cycle")
			}
		})
	}
}

// TestReadSketchSetRejectsCorrupt: the envelope must fail loudly, not
// decode garbage.
func TestReadSketchSetRejectsCorrupt(t *testing.T) {
	g, _ := NewRandomGraph(FamilyRing, 16, 1)
	set, err := Build(g, Options{Kind: KindTZ, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := set.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	if _, err := ReadSketchSet(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	bad := append([]byte("NOTSET"), blob[6:]...)
	if _, err := ReadSketchSet(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	bad = bytes.Clone(blob)
	bad[6] = 99 // version byte
	if _, err := ReadSketchSet(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: got %v", err)
	}
	bad = bytes.Clone(blob)
	bad[len(bad)/2] ^= 0x40 // payload corruption -> checksum mismatch
	if _, err := ReadSketchSet(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt payload accepted")
	}
	if _, err := ReadSketchSet(bytes.NewReader(blob[:len(blob)-3])); err == nil {
		t.Error("truncated input accepted")
	}
}

// TestBuildContextCancel: a canceled context aborts the construction
// promptly with an error wrapping ctx.Err(), both before the build and
// mid-build.
func TestBuildContextCancel(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 128, 1, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, g, Options{Kind: KindTZ, Seed: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled build: got %v, want context.Canceled", err)
	}

	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			rounds := 0
			opts := Options{Kind: kind, K: 2, Eps: 0.25, Seed: 3, Progress: func(phase string, round int) {
				rounds++
				if rounds == 3 {
					cancel() // mid-build, from the driver goroutine
				}
			}}
			_, err := BuildContext(ctx, g, opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-build cancel: got %v, want context.Canceled", err)
			}
			// The engine checks before every round: cancellation at round
			// 3 must stop within one more round.
			if rounds > 4 {
				t.Errorf("build ran %d rounds after cancellation", rounds-3)
			}
		})
	}
}

// TestBuildContextProgress: the Progress hook sees every phase of the
// construction.
func TestBuildContextProgress(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 48, 1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	_, err = BuildContext(context.Background(), g, Options{Kind: KindTZ, K: 3, Seed: 5,
		Progress: func(phase string, round int) {
			if round <= 0 {
				t.Errorf("non-positive round %d in phase %q", round, phase)
			}
			phases[phase]++
		}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase 2", "phase 1", "phase 0"} {
		if phases[want] == 0 {
			t.Errorf("phase %q never reported (saw %v)", want, phases)
		}
	}
}

// TestOptionsValidation: zero keeps its default meaning; invalid values
// are errors, not silent rewrites.
func TestOptionsValidation(t *testing.T) {
	g, _ := NewRandomGraph(FamilyRing, 12, 1)
	if set, err := Build(g, Options{Seed: 1}); err != nil || set.Kind() != KindTZ {
		t.Fatalf("zero options should default: %v", err)
	}
	for name, opts := range map[string]Options{
		"negative K":     {K: -2},
		"Eps = 1":        {Kind: KindLandmark, Eps: 1},
		"Eps > 1":        {Kind: KindCDG, Eps: 1.5},
		"negative Eps":   {Kind: KindLandmark, Eps: -0.25},
		"negative batch": {BandwidthBatch: -1},
		"negative delay": {MaxDelay: -3},
		"unknown kind":   {Kind: "bogus"},
	} {
		if _, err := Build(g, opts); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestUpdateEdgePublic: the facade repair path must reproduce a fresh
// rebuild exactly, keep working after a save/load cycle, and reject
// kinds without repair support.
func TestUpdateEdgePublic(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 80, 5, 50, 13)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(g, Options{Kind: KindLandmark, Eps: 0.25, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}

	// Persist before repairing: a reloaded set must still support repair
	// (the density net travels in the envelope).
	var buf bytes.Buffer
	if _, err := set.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSketchSet(&buf)
	if err != nil {
		t.Fatal(err)
	}

	e := g.Edges()[g.M()/2]
	nb := NewGraphBuilder(g.N())
	for _, x := range g.Edges() {
		w := x.Weight
		if x.U == e.U && x.V == e.V {
			w = 1
		}
		nb.AddEdge(x.U, x.V, w)
	}
	ng, err := nb.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	// A failed repair (edge not in the graph) must leave the set
	// exactly as it was.
	snapshot := set.Query(0, 79)
	if _, err := set.UpdateEdge(ng, 0, 0); err == nil {
		t.Error("repair of a non-edge accepted")
	}
	if got := set.Query(0, 79); got != snapshot {
		t.Errorf("failed repair changed the set: %d != %d", got, snapshot)
	}

	beforeMsgs := set.Messages()
	repair, err := set.UpdateEdge(ng, e.U, e.V)
	if err != nil {
		t.Fatal(err)
	}
	if repair.Messages <= 0 {
		t.Errorf("repair reported %d messages", repair.Messages)
	}
	if set.Messages() != beforeMsgs+repair.Messages {
		t.Errorf("repair cost not accumulated into Cost().Total")
	}
	if _, err := loaded.UpdateEdge(ng, e.U, e.V); err != nil {
		t.Fatalf("reloaded set repair: %v", err)
	}

	rebuilt, err := Build(ng, Options{Kind: KindLandmark, Eps: 0.25, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u += 3 {
		for v := 0; v < g.N(); v += 7 {
			want := rebuilt.Query(u, v)
			if got := set.Query(u, v); got != want {
				t.Fatalf("(%d,%d): repaired %d != rebuilt %d", u, v, got, want)
			}
			if got := loaded.Query(u, v); got != want {
				t.Fatalf("(%d,%d): reloaded+repaired %d != rebuilt %d", u, v, got, want)
			}
		}
	}

	// TZ sets repair through the same path now; CDG sets cannot certify a
	// single-edge change without a previous weight and must say so with
	// the rebuild sentinel.
	tzSet, err := Build(g, Options{Kind: KindTZ, K: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tzSet.UpdateEdge(ng, e.U, e.V); err != nil {
		t.Errorf("UpdateEdge on a TZ set: %v", err)
	}
	cdgSet, err := Build(g, Options{Kind: KindCDG, K: 2, Eps: 0.25, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cdgSet.UpdateEdge(ng, e.U, e.V); !errors.Is(err, ErrRebuildRequired) {
		t.Errorf("UpdateEdge on a CDG set without PrevWeight: got %v, want ErrRebuildRequired", err)
	}
}

// TestParseSketchErrors: the public decode path rejects malformed input
// with errors, never panics.
func TestParseSketchErrors(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":       nil,
		"unknown tag": {42, 1, 2, 3},
		"truncated":   {1, 2},
		"huge k":      {1, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}, // k ≫ input length
	} {
		if _, err := ParseSketch(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	g, _ := NewRandomGraph(FamilyRing, 8, 1)
	a, _ := Build(g, Options{Kind: KindTZ, K: 1, Seed: 1})
	b, _ := Build(g, Options{Kind: KindLandmark, Eps: 0.25, Seed: 1})
	sa, err := ParseSketch(a.SketchBytes(0))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ParseSketch(b.SketchBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Estimate(sb); err == nil {
		t.Error("cross-kind Estimate accepted")
	}
	if _, err := sa.Estimate(nil); err == nil {
		t.Error("nil Estimate accepted")
	}
}

// TestSketchAccessors: the decoded value exposes what the wire blob
// carried.
func TestSketchAccessors(t *testing.T) {
	g, _ := NewRandomGraph(FamilyGrid, 25, 2)
	set, err := Build(g, Options{Kind: KindTZ, K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < set.N(); u += 6 {
		blob := set.SketchBytes(u)
		sk, err := ParseSketch(blob)
		if err != nil {
			t.Fatal(err)
		}
		if sk.Kind() != KindTZ || sk.Owner() != u || sk.Words() != set.SketchWords(u) {
			t.Errorf("node %d: kind=%s owner=%d words=%d", u, sk.Kind(), sk.Owner(), sk.Words())
		}
		out, err := sk.MarshalBinary()
		if err != nil || !bytes.Equal(out, blob) {
			t.Errorf("node %d: MarshalBinary does not round-trip", u)
		}
	}
}
