package distsketch

import (
	"fmt"
	"testing"

	"distsketch/internal/eval"
	"distsketch/internal/graph"
)

// TestScale1024 exercises the full pipeline at twice the benchmark scale
// (n=1024) as a guard against superlinear blowups hiding below the usual
// test sizes. Skipped in -short mode.
func TestScale1024(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	g, err := NewRandomWeightedGraph(FamilyER, 1024, 1, 100, 99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(g, Options{Kind: KindTZ, K: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check stretch on sampled pairs against exact single-source
	// distances (full APSP at n=1024 is avoidable).
	pairs := eval.SamplePairs(g.N(), 400, 1)
	bySrc := map[int][]graph.Dist{}
	viol, over := 0, 0
	for _, p := range pairs {
		d, ok := bySrc[p.U]
		if !ok {
			d = graph.Dijkstra(g, p.U).Dist
			bySrc[p.U] = d
		}
		true_ := d[p.V]
		if true_ == 0 || true_ == graph.Inf {
			continue
		}
		est := res.Query(p.U, p.V)
		if est < true_ {
			viol++
		}
		if est > 5*true_ {
			over++
		}
	}
	if viol > 0 || over > 0 {
		t.Errorf("n=1024: %d violations, %d beyond 2k-1=5", viol, over)
	}
	if res.Rounds() <= 0 || res.MaxSketchWords() <= 0 {
		t.Errorf("degenerate result at scale: rounds=%d words=%d", res.Rounds(), res.MaxSketchWords())
	}
	t.Logf("n=1024: %d rounds, %d messages, max sketch %d words",
		res.Rounds(), res.Messages(), res.MaxSketchWords())
}

func ExampleEstimate() {
	g, err := NewRandomGraph(FamilyRing, 6, 1)
	if err != nil {
		panic(err)
	}
	res, err := Build(g, Options{Kind: KindTZ, K: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	// Two nodes exchange serialized sketches and estimate their distance
	// offline — no further communication needed.
	est, err := Estimate(res.SketchBytes(0), res.SketchBytes(3))
	if err != nil {
		panic(err)
	}
	fmt.Println(est)
	// Output: 3
}
