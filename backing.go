package distsketch

// Pluggable read-only payload backing for sketch sets. A set built in
// process (or loaded eagerly) owns its labels on the heap; a set opened
// with OpenSketchSet points its lazy version-2/3 blobs straight into an
// mmap'd envelope file, so a multi-GB sketch set serves from the page
// cache with an O(n) directory scan at startup, zero payload-byte
// copies, and the OS evicting labels nobody queries.
//
// Lifecycle: the mapping is reference-counted per SketchSet handle.
// OpenSketchSet returns a handle holding one reference; Clone takes
// another; Materialize (which decodes every label onto the heap, and is
// what UpdateEdges does before repairing) drops the clone's reference
// because the materialized set no longer reads the mapping. Close drops
// this handle's reference, and the file is unmapped when the last
// reference goes — so the serving layer's clone-repair-swap discipline
// needs no extra coordination: the swapped-out mmap set stays valid for
// in-flight readers until its handle is closed or collected. A handle
// that is dropped without Close is released by a finalizer, the same
// safety net os.File uses; deterministic shutdown should still Close.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"runtime"
	"sync/atomic"

	"distsketch/internal/atomicfile"
)

// ErrSetClosed reports use of a SketchSet after Close. Only sets with a
// mapped backing need Close at all; a closed set refuses label access
// instead of faulting on unmapped pages.
var ErrSetClosed = errors.New("distsketch: sketch set is closed")

// backing owns the byte region a lazily loaded set's blobs point into
// when that region is not ordinary heap memory. refs counts the
// SketchSet handles sharing it; the region is released when the last
// handle drops (Close, Materialize, or finalizer).
type backing struct {
	data []byte
	// mapped is true for a real OS mapping; the non-unix fallback reads
	// the file onto the heap and reports itself as heap backing.
	mapped bool
	refs   atomic.Int64
	unmap  func([]byte) error
}

func (b *backing) retain() { b.refs.Add(1) }

// release drops one reference, unmapping the region when the count hits
// zero. Callers guarantee no live handle still reads the region once
// their reference is gone.
func (b *backing) release() error {
	n := b.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		panic("distsketch: sketch-set backing released more often than retained")
	}
	data := b.data
	b.data = nil
	if data != nil && b.unmap != nil {
		return b.unmap(data)
	}
	return nil
}

// Backing reports how the set's payload bytes are owned: "mmap" for a
// set opened with OpenSketchSet whose blobs point into a mapped
// envelope file, "heap" for everything else (built sets, stream loads,
// materialized sets, and the non-mmap fallback platform).
func (s *SketchSet) Backing() string {
	if s.backing != nil && s.backing.mapped {
		return "mmap"
	}
	return "heap"
}

// MappedBytes reports the size of the mapped envelope region backing
// this set, or 0 for heap-backed sets.
func (s *SketchSet) MappedBytes() int {
	if s.backing != nil && s.backing.mapped {
		return len(s.backing.data)
	}
	return 0
}

// Close releases this handle's reference on the set's backing; the
// envelope file is unmapped when the last handle (the open set and
// every live Clone) has dropped its reference. After Close the set
// refuses label access with ErrSetClosed. Close is idempotent and a
// no-op for heap-backed sets. It must not be called concurrently with
// queries on the same handle — the serving layer swaps a set out of the
// read path first, then closes it.
func (s *SketchSet) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.dropBacking()
}

// dropBacking releases this handle's backing reference and disarms its
// finalizer. Shared by Close and Materialize (a materialized set owns
// heap labels and has no further use for the mapping).
func (s *SketchSet) dropBacking() error {
	b := s.backing
	if b == nil {
		return nil
	}
	s.backing = nil
	runtime.SetFinalizer(s, nil)
	return b.release()
}

// finalize is the GC safety net for handles dropped without Close: the
// serving layer swaps repaired clones in atomically and cannot know
// when the last in-flight reader of a swapped-out set finishes, so the
// swapped-out handle's reference is released when the collector proves
// nothing references it anymore.
func (s *SketchSet) finalize() { _ = s.Close() }

// adoptBacking installs b (already retained for this handle) and arms
// the finalizer safety net.
func (s *SketchSet) adoptBacking(b *backing) {
	s.backing = b
	runtime.SetFinalizer(s, (*SketchSet).finalize)
}

// OpenSketchSet opens the sketch-set envelope at path with the payload
// memory-mapped instead of copied: startup performs the header and
// checksum validation plus the O(n) directory scan, and every lazy blob
// points straight into the mapping — zero payload-byte copies, so a
// multi-GB set is servable the moment the directory scan finishes and
// cold labels live in the page cache, not the heap.
//
// The same recovery behavior as LoadSketchSet applies: stale temp files
// from an interrupted save are swept first, and a torn or corrupt
// envelope is quarantined to path+".corrupt" with a typed
// *ErrCorruptEnvelope. A version-1 envelope has no directory to scan
// lazily, so it is decoded eagerly and the mapping is dropped before
// returning — the result is an ordinary heap-backed set.
//
// The returned set (and every Clone of it) must be Closed when no
// longer queried; see Close for the lifecycle.
func OpenSketchSet(path string) (*SketchSet, error) {
	_, _ = atomicfile.CleanStale(path)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, quarantineOpen(path, corrupt(0, "empty envelope file"))
	}
	if size > math.MaxInt-1 {
		return nil, fmt.Errorf("distsketch: %s: %d bytes exceed the addressable mapping size", path, size)
	}
	data, mapped, unmap, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("distsketch: mapping %s: %w", path, err)
	}
	release := func() {
		if unmap != nil {
			_ = unmap(data)
		}
	}
	set, err := parseMappedEnvelope(data)
	if err != nil {
		release()
		return nil, quarantineOpen(path, err)
	}
	if set.lazy == nil {
		// Version-1 envelope: every label was decoded onto the heap during
		// the parse, so nothing references the mapping.
		release()
		return set, nil
	}
	b := &backing{data: data, mapped: mapped, unmap: unmap}
	b.refs.Store(1)
	set.adoptBacking(b)
	return set, nil
}

// parseMappedEnvelope validates and parses an envelope held entirely in
// data (a mapping of the whole file). Unlike the streaming
// ReadSketchSet, the payload length is corroborated against the real
// file size instead of an allocation cap — a mapped payload costs
// address space, not heap — and the v2/v3 blob slices point into data
// with zero copies.
func parseMappedEnvelope(data []byte) (*SketchSet, error) {
	headLen := len(setMagic) + 1
	if len(data) < headLen+1 {
		return nil, corrupt(int64(len(data)), "truncated envelope header")
	}
	if string(data[:len(setMagic)]) != setMagic {
		return nil, corrupt(0, "not a sketch set (bad magic)")
	}
	version := int(data[len(setMagic)])
	if version < SetVersion1 || version > SetVersion3 {
		return nil, corrupt(int64(len(setMagic)), "unsupported sketch-set version %d (this build reads versions %d through %d)", version, SetVersion1, SetVersion3)
	}
	plen, vn := binary.Uvarint(data[headLen:])
	if vn <= 0 {
		return nil, corrupt(int64(headLen), "unreadable payload length")
	}
	base := int64(headLen + vn)
	if uint64(len(data)) != uint64(base)+plen+4 {
		return nil, corrupt(base, "payload length %d does not match the %d-byte file", plen, len(data))
	}
	payload := data[base : base+int64(plen) : base+int64(plen)]
	crc := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, corrupt(base+int64(plen), "sketch-set checksum mismatch")
	}
	set, err := parseSetPayload(payload, version, base)
	if err != nil {
		return nil, err
	}
	set.envCRC = crc
	return set, nil
}

// quarantineOpen mirrors LoadSketchSet's corrupt-file handling for the
// mmap open path: the typed corruption error gains the path, and the
// file is renamed aside so the next restart does not crash-loop on it.
func quarantineOpen(path string, err error) error {
	var ce *ErrCorruptEnvelope
	if errors.As(err, &ce) {
		ce.Path = path
		if qerr := os.Rename(path, path+".corrupt"); qerr == nil {
			ce.Quarantined = path + ".corrupt"
		}
	}
	return err
}
