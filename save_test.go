package distsketch

// Fault injection for the persistence layer: every way an envelope can
// be damaged — truncated at any byte, any single bit flipped, a save
// killed mid-write, stale temp debris — must surface as a typed error
// (never a panic, never a wrong estimate), and the crash-safe save must
// provably leave the old envelope loadable byte-identically.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distsketch/internal/atomicfile"
)

// faultSet builds a small landmark set (the kind exercising every
// envelope section, density net included) for persistence fault tests.
func faultSet(t *testing.T) *SketchSet {
	t.Helper()
	g, err := NewRandomWeightedGraph(FamilyGeometric, 16, 1, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(g, Options{Kind: KindLandmark, Eps: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func envelopeBytes(t *testing.T, set *SketchSet, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := set.WriteToVersion(&buf, version); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTornEnvelopeEveryTruncation cuts the envelope at every byte — a
// superset of every section boundary (mid-magic, mid-header, mid-
// directory, mid-blob, mid-checksum) — and demands a typed
// *ErrCorruptEnvelope whose offset points inside the bytes that remain.
func TestTornEnvelopeEveryTruncation(t *testing.T) {
	set := faultSet(t)
	for _, version := range []int{SetVersion1, SetVersion2} {
		env := envelopeBytes(t, set, version)
		for cut := 0; cut < len(env); cut++ {
			_, err := ReadSketchSet(bytes.NewReader(env[:cut]))
			if err == nil {
				t.Fatalf("v%d truncated at %d/%d bytes was accepted", version, cut, len(env))
			}
			var ce *ErrCorruptEnvelope
			if !errors.As(err, &ce) {
				t.Fatalf("v%d truncated at %d: error not typed *ErrCorruptEnvelope: %v", version, cut, err)
			}
			if ce.Offset < 0 || ce.Offset > int64(cut) {
				t.Fatalf("v%d truncated at %d: reported offset %d outside the %d bytes present", version, cut, ce.Offset, cut)
			}
		}
		// The untruncated envelope still loads — the loop above did not
		// depend on a broken baseline.
		if _, err := ReadSketchSet(bytes.NewReader(env)); err != nil {
			t.Fatalf("v%d intact envelope failed to load: %v", version, err)
		}
	}
}

// TestTornEnvelopeBitFlips flips every bit of every byte: the checksum
// (and the header validation ahead of it) must catch each one with a
// typed error. No flip may parse into a servable set — crc32 detects
// all single-bit errors, so an accepted flip would mean the checksum is
// not actually covering the bytes.
func TestTornEnvelopeBitFlips(t *testing.T) {
	set := faultSet(t)
	for _, version := range []int{SetVersion1, SetVersion2} {
		env := envelopeBytes(t, set, version)
		for pos := 0; pos < len(env); pos++ {
			for bit := 0; bit < 8; bit++ {
				mod := bytes.Clone(env)
				mod[pos] ^= 1 << bit
				_, err := ReadSketchSet(bytes.NewReader(mod))
				if err == nil {
					t.Fatalf("v%d bit %d of byte %d flipped: corrupt envelope accepted", version, bit, pos)
				}
				var ce *ErrCorruptEnvelope
				if !errors.As(err, &ce) {
					t.Fatalf("v%d bit %d of byte %d flipped: error not typed: %v", version, bit, pos, err)
				}
			}
		}
	}
}

// TestFaultSaveKilledMidWrite kills a save partway through
// serialization (the in-process stand-in for SIGKILL between the first
// byte and the rename) and proves the previously saved envelope still
// loads byte-identically — the acceptance criterion for crash-safe
// persistence.
func TestFaultSaveKilledMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.dsk")
	set := faultSet(t)
	if err := SaveSketchSet(path, set, SetVersion2); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A writer that dies after emitting half an envelope.
	killed := errors.New("killed mid-write")
	half := envelopeBytes(t, set, SetVersion2)
	half = half[:len(half)/2]
	err = atomicfile.WriteFile(path, func(w io.Writer) error {
		if _, werr := w.Write(half); werr != nil {
			return werr
		}
		return killed
	})
	if !errors.Is(err, killed) {
		t.Fatalf("interrupted save: got %v", err)
	}
	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(now, orig) {
		t.Fatal("interrupted save changed the envelope bytes")
	}

	// A hard kill between CreateTemp and the rename leaves a stale temp;
	// the loader must sweep it and still serve the old envelope.
	stale := path + ".tmp-deadbeef"
	if err := os.WriteFile(stale, half, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSketchSet(path)
	if err != nil {
		t.Fatalf("load after interrupted save: %v", err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale save temp survived LoadSketchSet")
	}
	for u := 0; u < set.N(); u++ {
		if !bytes.Equal(loaded.SketchBytes(u), set.SketchBytes(u)) {
			t.Fatalf("node %d: reloaded sketch bytes differ after interrupted save", u)
		}
	}
}

// TestFaultLoadQuarantinesCorrupt: a corrupt envelope on disk is moved
// aside (path+".corrupt") so the next restart does not crash-loop on
// it, and the typed error names the file, the offset, and where the
// bytes went.
func TestFaultLoadQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.dsk")
	set := faultSet(t)
	if err := SaveSketchSet(path, set, SetVersion2); err != nil {
		t.Fatal(err)
	}
	env, _ := os.ReadFile(path)
	if err := os.WriteFile(path, env[:len(env)-7], 0o644); err != nil { // torn tail
		t.Fatal(err)
	}
	_, err := LoadSketchSet(path)
	var ce *ErrCorruptEnvelope
	if !errors.As(err, &ce) {
		t.Fatalf("want *ErrCorruptEnvelope, got %v", err)
	}
	if ce.Path != path {
		t.Errorf("error path %q, want %q", ce.Path, path)
	}
	if ce.Quarantined != path+".corrupt" {
		t.Errorf("quarantined to %q, want %q", ce.Quarantined, path+".corrupt")
	}
	if !strings.Contains(ce.Error(), path) || !strings.Contains(ce.Error(), "byte") {
		t.Errorf("error text should name the file and offset: %q", ce.Error())
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt envelope still at the serving path")
	}
	if got, err := os.ReadFile(path + ".corrupt"); err != nil || !bytes.Equal(got, env[:len(env)-7]) {
		t.Error("quarantine did not preserve the corrupt bytes for forensics")
	}
	// The next load reports a missing file, not corruption: the crash
	// loop is broken.
	if _, err := LoadSketchSet(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("second load: want ErrNotExist, got %v", err)
	}
}

// TestTornLazyLabelTypedError pins satellite coverage for
// ErrCorruptLabel: a version-2 envelope whose blob body is corrupted
// behind a valid checksum (the crafted-envelope scenario) must answer
// first-touch queries with a typed error naming the node and the exact
// envelope byte offset of the bad blob.
func TestTornLazyLabelTypedError(t *testing.T) {
	// goldenV2 layout (absolute offsets, see envelope_test.go): payload
	// starts at 8, blob0 spans 36–40, blob1 41–45. Byte 38 is blob0's
	// entry count varint; 0x7e claims far more entries than fit.
	bad := bytes.Clone(goldenV2)
	bad[38] = 0x7e
	set, err := ReadSketchSet(bytes.NewReader(reCRC(t, bad)))
	if err != nil {
		t.Fatalf("lazy-valid crafted envelope rejected at load: %v", err)
	}
	_, qerr := set.QueryChecked(0, 1)
	var cl *ErrCorruptLabel
	if !errors.As(qerr, &cl) {
		t.Fatalf("want *ErrCorruptLabel, got %v", qerr)
	}
	if cl.Node != 0 {
		t.Errorf("Node = %d, want 0", cl.Node)
	}
	if cl.Offset != 36 {
		t.Errorf("Offset = %d, want 36 (blob0's envelope offset)", cl.Offset)
	}
	if !strings.Contains(qerr.Error(), "node 0") || !strings.Contains(qerr.Error(), "36") {
		t.Errorf("error should carry node and offset context: %q", qerr.Error())
	}
	// The healthy neighbor label still decodes: corruption is contained
	// to the node it damaged.
	if _, err := set.QueryChecked(1, 1); err != nil {
		t.Errorf("undamaged label refused to decode: %v", err)
	}
	// Materialize surfaces the same typed error.
	if merr := set.Materialize(); !errors.As(merr, &cl) {
		t.Errorf("Materialize: want *ErrCorruptLabel, got %v", merr)
	}

	// A lying directory word count is the other first-touch failure.
	bad = bytes.Clone(goldenV2)
	bad[33] = 0x7 // node 0 words: 7 instead of 2
	set, err = ReadSketchSet(bytes.NewReader(reCRC(t, bad)))
	if err != nil {
		t.Fatal(err)
	}
	if _, qerr := set.QueryChecked(0, 1); !errors.As(qerr, &cl) || cl.Node != 0 {
		t.Errorf("lying word count: want typed error for node 0, got %v", qerr)
	}
}

// TestFaultSaveLoadRoundTrip covers the happy path of the atomic save
// helper in both envelope versions plus its input validation.
func TestFaultSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	set := faultSet(t)
	for _, version := range []int{SetVersion1, SetVersion2} {
		path := filepath.Join(dir, fmt.Sprintf("v%d.dsk", version))
		if err := SaveSketchSet(path, set, version); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadSketchSet(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.EnvelopeVersion() != version || loaded.N() != set.N() {
			t.Fatalf("v%d reload: version=%d n=%d", version, loaded.EnvelopeVersion(), loaded.N())
		}
		for u := 0; u < set.N(); u++ {
			for v := u; v < set.N(); v += 5 {
				if got, want := loaded.Query(u, v), set.Query(u, v); got != want {
					t.Fatalf("v%d (%d,%d): %d != %d", version, u, v, got, want)
				}
			}
		}
	}
	// Invalid version: error out before touching the filesystem.
	badPath := filepath.Join(dir, "bad.dsk")
	if err := SaveSketchSet(badPath, set, 9); err == nil {
		t.Error("unknown envelope version accepted")
	}
	if _, err := os.Stat(badPath); !errors.Is(err, os.ErrNotExist) {
		t.Error("failed save left a file behind")
	}
	if err := SaveSketchSet(badPath, nil, SetVersion2); err == nil {
		t.Error("nil set accepted")
	}
}
