package distsketch

// Regression tests for the serving-hardening fixes: bounds-checked query
// accessors (no panics on untrusted node ids), MeanSketchWords on an
// empty set (was NaN), ReadSketchSet on a zero-sketch envelope (was an
// unusable set), and UpdateEdge on a weight increase (was silently wrong
// estimates).

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestCheckedAccessorsRange(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 32, 1, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(g, Options{Kind: KindTZ, K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{-1, 32, 1 << 30, math.MinInt} {
		if _, err := set.QueryChecked(u, 0); !errors.Is(err, ErrNodeRange) {
			t.Errorf("QueryChecked(%d, 0): err = %v, want ErrNodeRange", u, err)
		}
		if _, err := set.QueryChecked(0, u); !errors.Is(err, ErrNodeRange) {
			t.Errorf("QueryChecked(0, %d): err = %v, want ErrNodeRange", u, err)
		}
		if _, err := set.SketchChecked(u); !errors.Is(err, ErrNodeRange) {
			t.Errorf("SketchChecked(%d): err = %v, want ErrNodeRange", u, err)
		}
		if _, err := set.SketchBytesChecked(u); !errors.Is(err, ErrNodeRange) {
			t.Errorf("SketchBytesChecked(%d): err = %v, want ErrNodeRange", u, err)
		}
	}
	// In range, the checked and panicking paths must agree exactly.
	for _, pair := range [][2]int{{0, 31}, {5, 5}, {17, 2}} {
		d, err := set.QueryChecked(pair[0], pair[1])
		if err != nil {
			t.Fatalf("QueryChecked%v: %v", pair, err)
		}
		if want := set.Query(pair[0], pair[1]); d != want {
			t.Errorf("QueryChecked%v = %d, Query = %d", pair, d, want)
		}
	}
	blob, err := set.SketchBytesChecked(7)
	if err != nil || !bytes.Equal(blob, set.SketchBytes(7)) {
		t.Errorf("SketchBytesChecked(7) disagrees with SketchBytes: %v", err)
	}
}

// TestMeanSketchWordsEmpty: the old implementation divided by zero and
// returned NaN, which then poisoned any arithmetic or JSON encoding
// downstream.
func TestMeanSketchWordsEmpty(t *testing.T) {
	var empty SketchSet
	if got := empty.MeanSketchWords(); got != 0 {
		t.Errorf("MeanSketchWords on empty set = %v, want 0", got)
	}
	if got := empty.MaxSketchWords(); got != 0 {
		t.Errorf("MaxSketchWords on empty set = %v, want 0", got)
	}
}

// TestReadSketchSetRejectsEmpty: an envelope holding zero sketches used
// to deserialize into a set whose every accessor panics; it must be
// rejected at load time instead.
func TestReadSketchSetRejectsEmpty(t *testing.T) {
	empty := &SketchSet{kind: KindTZ}
	var buf bytes.Buffer
	if _, err := empty.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSketchSet(&buf); err == nil {
		t.Fatal("ReadSketchSet accepted a zero-sketch envelope")
	}
}

// lineGraph builds a path 0-1-...-n-1 with uniform edge weight w: the
// topology where every left-right estimate crosses every interior edge,
// so a weight change on the middle edge provably moves distances.
func lineGraph(t *testing.T, n int, w Dist) *Graph {
	t.Helper()
	b := NewGraphBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.AddEdge(u, u+1, w)
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// buildLineLandmark builds a landmark set on a line graph, scanning
// seeds until the sampled density net is nonempty.
func buildLineLandmark(t *testing.T, g *Graph) *SketchSet {
	t.Helper()
	for seed := uint64(1); seed < 64; seed++ {
		set, err := Build(g, Options{Kind: KindLandmark, Eps: 0.5, Seed: seed})
		if err == nil {
			return set
		}
	}
	t.Fatal("no seed produced a nonempty density net")
	return nil
}

// TestUpdateEdgeIncreaseRejected demonstrates the bug the verification
// fixes: on a weight *increase* the warm-start repair converges to
// stale labels, and the pre-fix UpdateEdge returned success while
// serving estimates from the old, now-too-short distances. The repaired
// set must instead be rejected with ErrRebuildRequired and the live set
// left byte-identical to its pre-call state.
func TestUpdateEdgeIncreaseRejected(t *testing.T) {
	const n = 32
	g := lineGraph(t, n, 2)
	set := buildLineLandmark(t, g)

	estBefore := set.Query(0, n-1) // crosses the middle edge
	wordsBefore := set.MeanSketchWords()

	// Increase the middle edge 2 -> 100: d(0, n-1) grows by 98, but the
	// warm-started labels keep the old distances — the wrong estimate the
	// pre-fix code would have served.
	g2 := lineGraph(t, n, 2)
	bumped := NewGraphBuilder(n)
	for _, e := range g2.Edges() {
		w := e.Weight
		if e.U == n/2-1 && e.V == n/2 {
			w = 100
		}
		bumped.AddEdge(e.U, e.V, w)
	}
	gUp, err := bumped.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := set.UpdateEdge(gUp, n/2-1, n/2); !errors.Is(err, ErrRebuildRequired) {
		t.Fatalf("UpdateEdge on a weight increase: err = %v, want ErrRebuildRequired", err)
	}
	if got := set.Query(0, n-1); got != estBefore {
		t.Errorf("failed repair mutated the set: Query(0,%d) %d -> %d", n-1, estBefore, got)
	}
	if got := set.MeanSketchWords(); got != wordsBefore {
		t.Errorf("failed repair changed sketch sizes: %g -> %g", wordsBefore, got)
	}

	// The estimate the stale labels would have kept serving really is
	// wrong: a rebuild on the increased graph answers differently.
	rebuilt := buildLineLandmark(t, gUp)
	if got := rebuilt.Query(0, n-1); got <= estBefore {
		t.Errorf("expected the increase to move the true estimate above %d, rebuild says %d", estBefore, got)
	}

	// Decreases still repair exactly (no false positives from the new
	// verification), and Clone isolates the repair from the original.
	gDown := NewGraphBuilder(n)
	for _, e := range lineGraph(t, n, 2).Edges() {
		w := e.Weight
		if e.U == n/2-1 && e.V == n/2 {
			w = 1
		}
		gDown.AddEdge(e.U, e.V, w)
	}
	gd, err := gDown.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	repaired := set.Clone()
	if _, err := repaired.UpdateEdge(gd, n/2-1, n/2); err != nil {
		t.Fatalf("UpdateEdge on a weight decrease: %v", err)
	}
	if got, want := repaired.Query(0, n-1), estBefore-1; got != want {
		t.Errorf("post-decrease Query(0,%d) = %d, want %d", n-1, got, want)
	}
	if got := set.Query(0, n-1); got != estBefore {
		t.Errorf("repairing a clone mutated the original: %d -> %d", estBefore, got)
	}

	// Out-of-range endpoints are errors, not panics.
	if _, err := set.UpdateEdge(gd, -1, 3); !errors.Is(err, ErrNodeRange) {
		t.Errorf("UpdateEdge(-1, 3): err = %v, want ErrNodeRange", err)
	}
	if _, err := set.UpdateEdge(gd, 0, n); !errors.Is(err, ErrNodeRange) {
		t.Errorf("UpdateEdge(0, %d): err = %v, want ErrNodeRange", n, err)
	}

	// A graph containing any zero-weight edge is refused up front — the
	// exactness verification cannot vouch for it — with an error naming
	// the offending edge. Not ErrRebuildRequired: rebuilding cannot make
	// such a graph repairable, so that sentinel's remedy would mislead.
	zb := NewGraphBuilder(n)
	for _, e := range gd.Edges() {
		w := e.Weight
		if e.U == 0 && e.V == 1 {
			w = 0
		}
		zb.AddEdge(e.U, e.V, w)
	}
	gz, err := zb.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	_, err = set.UpdateEdge(gz, n/2-1, n/2)
	if err == nil || errors.Is(err, ErrRebuildRequired) || !strings.Contains(err.Error(), "zero-weight edge (0,1)") {
		t.Errorf("UpdateEdge on a zero-weight graph: err = %v, want a non-ErrRebuildRequired error naming edge (0,1)", err)
	}
}
