package distsketch

import "fmt"

// Kind selects the sketch construction.
type Kind string

// Available sketch kinds.
const (
	KindTZ       Kind = "tz"
	KindLandmark Kind = "landmark"
	KindCDG      Kind = "cdg"
	KindGraceful Kind = "graceful"
)

// Options configures Build. The zero value of a numeric field selects
// its documented default; any other invalid value is rejected by Build
// with an error.
type Options struct {
	// Kind selects the construction (default KindTZ).
	Kind Kind
	// K is the Thorup–Zwick hierarchy depth (KindTZ: stretch 2K-1;
	// KindCDG: stretch 8K-1). Default 3; must be ≥ 1.
	K int
	// Eps is the slack parameter for KindLandmark and KindCDG. Default
	// 1/8; must lie in (0, 1).
	Eps float64
	// Seed drives all randomness; equal seeds give identical sketches.
	Seed uint64
	// Detection switches KindTZ to the in-band Section 3.3
	// termination-detection protocol instead of omniscient phase sync.
	Detection bool
	// Sequential forces the single-goroutine simulator (deterministic
	// profiling, race-free debugging). Default parallel.
	Sequential bool
	// BandwidthBatch packs up to this many announcements per message
	// (the paper's B-bits-per-round generalization; KindTZ with
	// omniscient sync only). 0 or 1 is the standard CONGEST model.
	BandwidthBatch int
	// MaxDelay simulates asynchronous delivery: each message is delayed
	// by a uniform number of rounds in [1, MaxDelay], FIFO per edge. The
	// constructions converge to identical sketches (see the async tests);
	// only the round count grows. 0 or 1 is synchronous.
	MaxDelay int
	// Progress, when non-nil, is invoked after every simulated round
	// with the name of the construction phase being executed and the
	// engine-local round number. It is called on the build's driver
	// goroutine; a slow hook slows the build.
	Progress func(phase string, round int)
}

// withDefaults fills zero-valued fields with their defaults and validates
// everything else. Zero means "default" by design; genuinely invalid
// values (negative K, Eps outside (0,1), ...) are errors, not silent
// rewrites.
func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.Kind == "" {
		out.Kind = KindTZ
	}
	switch out.Kind {
	case KindTZ, KindLandmark, KindCDG, KindGraceful:
	default:
		return out, fmt.Errorf("distsketch: unknown kind %q", out.Kind)
	}
	if out.K == 0 {
		out.K = 3
	}
	if out.K < 1 {
		return out, fmt.Errorf("distsketch: K must be >= 1, got %d", out.K)
	}
	if out.Eps == 0 {
		out.Eps = 0.125
	}
	if out.Eps < 0 || out.Eps >= 1 {
		return out, fmt.Errorf("distsketch: Eps must be in (0, 1), got %g", out.Eps)
	}
	if out.BandwidthBatch < 0 {
		return out, fmt.Errorf("distsketch: BandwidthBatch must be >= 0, got %d", out.BandwidthBatch)
	}
	if out.MaxDelay < 0 {
		return out, fmt.Errorf("distsketch: MaxDelay must be >= 0, got %d", out.MaxDelay)
	}
	return out, nil
}
