// Package distsketch is a Go implementation of "Efficient Computation of
// Distance Sketches in Distributed Networks" (Das Sarma, Dinitz,
// Pandurangan; SPAA 2012). It builds per-node distance sketches in a
// simulated CONGEST network so that the approximate distance between any
// two nodes can be computed from their two sketches alone.
//
// Four sketch kinds are provided:
//
//   - KindTZ: distributed Thorup–Zwick sketches — stretch 2k-1, size
//     O(k·n^{1/k}·log n) words (Theorem 1.1).
//   - KindLandmark: density-net landmark sketches — stretch 3 with
//     ε-slack, size O((1/ε)·log n) words (Theorem 4.3).
//   - KindCDG: (ε,k)-CDG sketches — stretch 8k-1 with ε-slack, size
//     O(k·((1/ε)·log n)^{1/k}·log n) words (Theorem 1.2).
//   - KindGraceful: gracefully degrading sketches — stretch O(log 1/ε)
//     for every ε simultaneously, hence O(log n) worst-case and O(1)
//     average stretch, size O(log⁴ n) words (Theorem 1.3).
//
// Quick start:
//
//	g, _ := distsketch.NewRandomGraph(distsketch.FamilyGeometric, 256, 1)
//	res, _ := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindTZ, K: 3, Seed: 1})
//	est := res.Query(12, 99)                 // ≤ (2·3-1)·d(12, 99)
//	fmt.Println(res.Rounds(), res.Messages()) // CONGEST cost of construction
//
// Sketches serialize to bytes, so two nodes can exchange them and estimate
// their distance offline:
//
//	a, b := res.SketchBytes(12), res.SketchBytes(99)
//	est, _ = distsketch.Estimate(a, b)
package distsketch

import (
	"fmt"
	"io"

	"distsketch/internal/congest"
	"distsketch/internal/core"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// Dist is a network distance in weight units.
type Dist = graph.Dist

// Inf is the "unreachable / undefined" distance sentinel.
const Inf = graph.Inf

// Graph is a weighted undirected network. Build one with NewGraphBuilder
// or a generator.
type Graph = graph.Graph

// GraphBuilder accumulates edges for a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for an n-node graph.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Graph family names accepted by NewRandomGraph.
const (
	FamilyER         = string(graph.FamilyER)
	FamilyGeometric  = string(graph.FamilyGeometric)
	FamilyGrid       = string(graph.FamilyGrid)
	FamilyRing       = string(graph.FamilyRing)
	FamilyTree       = string(graph.FamilyTree)
	FamilyBA         = string(graph.FamilyBA)
	FamilySmallWorld = string(graph.FamilySmallWorld)
	FamilyHyperCube  = string(graph.FamilyHyperCube)
	FamilyInternet   = string(graph.FamilyInternet)
)

// NewRandomGraph generates a connected random graph of the named family
// with unit weights. See NewRandomWeightedGraph for weighted variants.
func NewRandomGraph(family string, n int, seed uint64) (*Graph, error) {
	return NewRandomWeightedGraph(family, n, 1, 1, seed)
}

// NewRandomWeightedGraph generates a connected random graph whose edge
// weights are drawn uniformly from [minWeight, maxWeight].
func NewRandomWeightedGraph(family string, n int, minWeight, maxWeight Dist, seed uint64) (g *Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("distsketch: %v", r)
		}
	}()
	known := false
	for _, f := range graph.AllFamilies() {
		if string(f) == family {
			known = true
		}
	}
	if !known {
		return nil, fmt.Errorf("distsketch: unknown family %q", family)
	}
	return graph.Make(graph.Family(family), n, graph.UniformWeights(minWeight, maxWeight), seed), nil
}

// ReadGraph parses the text edge-list format ("p <n> <m>" followed by
// "e <u> <v> <w>" lines, 0-based IDs, '#' comments).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph serializes g in the format ReadGraph accepts.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Kind selects the sketch construction.
type Kind string

// Available sketch kinds.
const (
	KindTZ       Kind = "tz"
	KindLandmark Kind = "landmark"
	KindCDG      Kind = "cdg"
	KindGraceful Kind = "graceful"
)

// Options configures Build.
type Options struct {
	// Kind selects the construction (default KindTZ).
	Kind Kind
	// K is the Thorup–Zwick hierarchy depth (KindTZ: stretch 2K-1;
	// KindCDG: stretch 8K-1). Default 3.
	K int
	// Eps is the slack parameter for KindLandmark and KindCDG. Default 1/8.
	Eps float64
	// Seed drives all randomness; equal seeds give identical sketches.
	Seed uint64
	// Detection switches KindTZ to the in-band Section 3.3
	// termination-detection protocol instead of omniscient phase sync.
	Detection bool
	// Sequential forces the single-goroutine simulator (deterministic
	// profiling, race-free debugging). Default parallel.
	Sequential bool
	// BandwidthBatch packs up to this many announcements per message
	// (the paper's B-bits-per-round generalization; KindTZ with
	// omniscient sync only). 0 or 1 is the standard CONGEST model.
	BandwidthBatch int
	// MaxDelay simulates asynchronous delivery: each message is delayed
	// by a uniform number of rounds in [1, MaxDelay], FIFO per edge. The
	// constructions converge to identical sketches (see the async tests);
	// only the round count grows. 0 or 1 is synchronous.
	MaxDelay int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Kind == "" {
		out.Kind = KindTZ
	}
	if out.K == 0 {
		out.K = 3
	}
	if out.Eps == 0 {
		out.Eps = 0.125
	}
	return out
}

// Result is a built sketch set: one sketch per node plus the CONGEST cost
// of constructing them.
type Result struct {
	kind  Kind
	n     int
	query func(u, v int) Dist
	bytes func(u int) []byte
	words func(u int) int
	cost  core.CostBreakdown
}

// Kind returns the construction used.
func (r *Result) Kind() Kind { return r.kind }

// N returns the number of nodes.
func (r *Result) N() int { return r.n }

// Query estimates the distance between u and v from their sketches.
func (r *Result) Query(u, v int) Dist { return r.query(u, v) }

// SketchBytes returns node u's serialized sketch (what u would hand to a
// peer that asks for it; Section 2.1 of the paper).
func (r *Result) SketchBytes(u int) []byte { return r.bytes(u) }

// SketchWords returns node u's sketch size in O(log n)-bit words, the
// unit the paper's size bounds use.
func (r *Result) SketchWords(u int) int { return r.words(u) }

// MaxSketchWords returns the largest sketch size in words.
func (r *Result) MaxSketchWords() int {
	m := 0
	for u := 0; u < r.n; u++ {
		if s := r.words(u); s > m {
			m = s
		}
	}
	return m
}

// MeanSketchWords returns the average sketch size in words.
func (r *Result) MeanSketchWords() float64 {
	t := 0
	for u := 0; u < r.n; u++ {
		t += r.words(u)
	}
	return float64(t) / float64(r.n)
}

// Rounds returns the CONGEST rounds the construction took.
func (r *Result) Rounds() int { return r.cost.Total.Rounds }

// Messages returns the total messages the construction sent.
func (r *Result) Messages() int64 { return r.cost.Total.Messages }

// Words returns the total message words the construction sent.
func (r *Result) Words() int64 { return r.cost.Total.Words }

// Build constructs distance sketches for every node of g in a simulated
// CONGEST network.
func Build(g *Graph, opts Options) (*Result, error) {
	o := opts.withDefaults()
	cfg := congest.Config{Sequential: o.Sequential, MaxDelay: o.MaxDelay}
	switch o.Kind {
	case KindTZ:
		mode := core.SyncOmniscient
		if o.Detection {
			mode = core.SyncDetection
		}
		res, err := core.BuildTZ(g, core.TZOptions{
			K: o.K, Seed: o.Seed, Mode: mode, Batch: o.BandwidthBatch, Congest: cfg,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			kind:  KindTZ,
			n:     g.N(),
			query: res.Query,
			bytes: func(u int) []byte { return sketch.MarshalTZ(res.Labels[u]) },
			words: func(u int) int { return res.Labels[u].SizeWords() },
			cost:  res.Cost,
		}, nil
	case KindLandmark:
		res, err := core.BuildLandmark(g, core.SlackOptions{Eps: o.Eps, Seed: o.Seed, Congest: cfg})
		if err != nil {
			return nil, err
		}
		return &Result{
			kind:  KindLandmark,
			n:     g.N(),
			query: res.Query,
			bytes: func(u int) []byte { return sketch.MarshalLandmark(res.Labels[u]) },
			words: func(u int) int { return res.Labels[u].SizeWords() },
			cost:  res.Cost,
		}, nil
	case KindCDG:
		res, err := core.BuildCDG(g, core.SlackOptions{Eps: o.Eps, K: o.K, Seed: o.Seed, Congest: cfg})
		if err != nil {
			return nil, err
		}
		return &Result{
			kind:  KindCDG,
			n:     g.N(),
			query: res.Query,
			bytes: func(u int) []byte { return sketch.MarshalCDG(res.Labels[u]) },
			words: func(u int) int { return res.Labels[u].SizeWords() },
			cost:  res.Cost,
		}, nil
	case KindGraceful:
		res, err := core.BuildGraceful(g, o.Seed, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{
			kind:  KindGraceful,
			n:     g.N(),
			query: res.Query,
			bytes: func(u int) []byte { return sketch.MarshalGraceful(res.Labels[u]) },
			words: func(u int) int { return res.Labels[u].SizeWords() },
			cost:  res.Cost,
		}, nil
	default:
		return nil, fmt.Errorf("distsketch: unknown kind %q", o.Kind)
	}
}

// Estimate computes a distance estimate from two serialized sketches of
// the same kind, without any other state — the paper's query model.
func Estimate(a, b []byte) (Dist, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("distsketch: empty sketch")
	}
	if a[0] != b[0] {
		return 0, fmt.Errorf("distsketch: mismatched sketch kinds")
	}
	switch a[0] {
	case 1: // TZ
		la, err := sketch.UnmarshalTZ(a)
		if err != nil {
			return 0, err
		}
		lb, err := sketch.UnmarshalTZ(b)
		if err != nil {
			return 0, err
		}
		return sketch.QueryTZ(la, lb), nil
	case 2: // landmark
		la, err := sketch.UnmarshalLandmark(a)
		if err != nil {
			return 0, err
		}
		lb, err := sketch.UnmarshalLandmark(b)
		if err != nil {
			return 0, err
		}
		return sketch.QueryLandmark(la, lb), nil
	case 3: // CDG
		la, err := sketch.UnmarshalCDG(a)
		if err != nil {
			return 0, err
		}
		lb, err := sketch.UnmarshalCDG(b)
		if err != nil {
			return 0, err
		}
		return sketch.QueryCDG(la, lb), nil
	case 4: // graceful
		la, err := sketch.UnmarshalGraceful(a)
		if err != nil {
			return 0, err
		}
		lb, err := sketch.UnmarshalGraceful(b)
		if err != nil {
			return 0, err
		}
		return sketch.QueryGraceful(la, lb), nil
	default:
		return 0, fmt.Errorf("distsketch: unknown sketch tag %d", a[0])
	}
}
