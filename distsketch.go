// Package distsketch is a Go implementation of "Efficient Computation of
// Distance Sketches in Distributed Networks" (Das Sarma, Dinitz,
// Pandurangan; SPAA 2012). It builds per-node distance sketches in a
// simulated CONGEST network so that the approximate distance between any
// two nodes can be computed from their two sketches alone.
//
// Four sketch kinds are provided:
//
//   - KindTZ: distributed Thorup–Zwick sketches — stretch 2k-1, size
//     O(k·n^{1/k}·log n) words (Theorem 1.1).
//   - KindLandmark: density-net landmark sketches — stretch 3 with
//     ε-slack, size O((1/ε)·log n) words (Theorem 4.3).
//   - KindCDG: (ε,k)-CDG sketches — stretch 8k-1 with ε-slack, size
//     O(k·((1/ε)·log n)^{1/k}·log n) words (Theorem 1.2).
//   - KindGraceful: gracefully degrading sketches — stretch O(log 1/ε)
//     for every ε simultaneously, hence O(log n) worst-case and O(1)
//     average stretch, size O(log⁴ n) words (Theorem 1.3).
//
// The API mirrors the paper's build-once / query-millions lifecycle. A
// one-time distributed construction produces a SketchSet:
//
//	g, _ := distsketch.NewRandomGraph(distsketch.FamilyGeometric, 256, 1)
//	set, _ := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindTZ, K: 3, Seed: 1})
//	est := set.Query(12, 99)                    // ≤ (2·3-1)·d(12, 99)
//	cost := set.Cost()                          // CONGEST rounds/messages, per phase
//
// Long builds are cancelable and observable through BuildContext. A built
// set persists through WriteTo / ReadSketchSet, so a serving process can
// load it and answer queries without ever rebuilding:
//
//	var buf bytes.Buffer
//	set.WriteTo(&buf)
//	set2, _ := distsketch.ReadSketchSet(&buf)   // byte-identical estimates
//
// At query time only sketches are consulted (Section 2.1 of the paper):
// a node ships its sketch as bytes, and the receiver decodes it once into
// a Sketch value that answers any number of estimates with no further
// decoding:
//
//	sa, _ := distsketch.ParseSketch(set.SketchBytes(12))
//	sb, _ := distsketch.ParseSketch(set.SketchBytes(99))
//	est, _ = sa.Estimate(sb)
//
// Every sketch kind supports in-place incremental repair after edge
// weight changes (SketchSet.UpdateEdges): a whole batch of changes is
// repaired through one clone-repair-verify cycle and the result is
// byte-identical to rebuilding from scratch, at a cost proportional to
// the affected region. Batches that cannot be verified exact (weight
// increases a kind's labels cannot certify) are rejected atomically with
// ErrRebuildRequired, leaving the set untouched.
package distsketch

import (
	"fmt"
	"io"

	"distsketch/internal/graph"
)

// Dist is a network distance in weight units.
type Dist = graph.Dist

// Inf is the "unreachable / undefined" distance sentinel.
const Inf = graph.Inf

// Graph is a weighted undirected network. Build one with NewGraphBuilder
// or a generator.
type Graph = graph.Graph

// Edge is one weighted undirected edge as returned by Graph.Edges,
// normalized to U < V.
type Edge = graph.Edge

// GraphBuilder accumulates edges for a Graph.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for an n-node graph.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// Graph family names accepted by NewRandomGraph.
const (
	FamilyER         = string(graph.FamilyER)
	FamilyGeometric  = string(graph.FamilyGeometric)
	FamilyGrid       = string(graph.FamilyGrid)
	FamilyRing       = string(graph.FamilyRing)
	FamilyTree       = string(graph.FamilyTree)
	FamilyBA         = string(graph.FamilyBA)
	FamilySmallWorld = string(graph.FamilySmallWorld)
	FamilyHyperCube  = string(graph.FamilyHyperCube)
	FamilyInternet   = string(graph.FamilyInternet)
)

// NewRandomGraph generates a connected random graph of the named family
// with unit weights. See NewRandomWeightedGraph for weighted variants.
func NewRandomGraph(family string, n int, seed uint64) (*Graph, error) {
	return NewRandomWeightedGraph(family, n, 1, 1, seed)
}

// NewRandomWeightedGraph generates a connected random graph whose edge
// weights are drawn uniformly from [minWeight, maxWeight].
func NewRandomWeightedGraph(family string, n int, minWeight, maxWeight Dist, seed uint64) (g *Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("distsketch: %v", r)
		}
	}()
	known := false
	for _, f := range graph.AllFamilies() {
		if string(f) == family {
			known = true
		}
	}
	if !known {
		return nil, fmt.Errorf("distsketch: unknown family %q", family)
	}
	return graph.Make(graph.Family(family), n, graph.UniformWeights(minWeight, maxWeight), seed), nil
}

// ReadGraph parses the text edge-list format ("p <n> <m>" followed by
// "e <u> <v> <w>" lines, 0-based IDs, '#' comments).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph serializes g in the format ReadGraph accepts.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }
