package distsketch

// Lifecycle and zero-copy coverage for the mmap envelope backing: open
// must not copy payload bytes, Clone/Close must refcount the mapping
// through the serving layer's clone-repair-swap discipline, and a
// version-1 envelope must fall back to an ordinary heap set.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// buildBackingSet builds the fixture set the backing tests share: large
// enough that its envelope payload dwarfs the per-node directory
// bookkeeping, so the alloc-pinned zero-copy bound has headroom.
func buildBackingSet(t *testing.T) (*SketchSet, *Graph) {
	t.Helper()
	g, err := NewRandomWeightedGraph(FamilyGeometric, 256, 10, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(g, Options{Kind: KindLandmark, Eps: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return set, g
}

// saveTemp writes set to a fresh temp envelope and returns the path.
func saveTemp(t *testing.T, set *SketchSet, version int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "set.dsk")
	if err := SaveSketchSet(path, set, version); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadLazyForBacking loads a serialized envelope the way the configured
// test backing prescribes: ReadSketchSet from memory by default,
// OpenSketchSet over a temp file when DISTSKETCH_TEST_BACKING=mmap —
// the env-var matrix CI uses to run the envelope suite under both
// backings.
func loadLazyForBacking(t *testing.T, envelope []byte) *SketchSet {
	t.Helper()
	switch mode := os.Getenv("DISTSKETCH_TEST_BACKING"); mode {
	case "", "heap":
		set, err := ReadSketchSet(bytes.NewReader(envelope))
		if err != nil {
			t.Fatal(err)
		}
		return set
	case "mmap":
		path := filepath.Join(t.TempDir(), "set.dsk")
		if err := os.WriteFile(path, envelope, 0o644); err != nil {
			t.Fatal(err)
		}
		set, err := OpenSketchSet(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { set.Close() })
		return set
	default:
		t.Fatalf("unknown DISTSKETCH_TEST_BACKING %q (want heap or mmap)", mode)
		return nil
	}
}

// allocBytesDuring measures the bytes allocated on the heap while f
// runs (single-goroutine; the test must not run f concurrently with
// other allocating work).
func allocBytesDuring(f func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestOpenSketchSetZeroCopy pins the tentpole's core promise: opening
// an envelope mmap'd allocates only directory bookkeeping — not the
// payload — while the streaming loader necessarily allocates at least
// the whole payload. The bound is generous (half the envelope) so the
// test pins the mechanism, not allocator noise.
func TestOpenSketchSetZeroCopy(t *testing.T) {
	set, _ := buildBackingSet(t)
	path := saveTemp(t, set, SetVersion2)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	envSize := uint64(fi.Size())

	var opened *SketchSet
	openAlloc := allocBytesDuring(func() {
		var err error
		opened, err = OpenSketchSet(path)
		if err != nil {
			t.Fatal(err)
		}
	})
	defer opened.Close()
	if opened.Backing() != "mmap" {
		t.Skipf("platform fallback gives %s backing; zero-copy bound only holds for mmap", opened.Backing())
	}
	if opened.MappedBytes() != int(envSize) {
		t.Errorf("MappedBytes = %d, want envelope size %d", opened.MappedBytes(), envSize)
	}
	if openAlloc >= envSize/2 {
		t.Errorf("OpenSketchSet allocated %d bytes for a %d-byte envelope; payload bytes are being copied", openAlloc, envSize)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	readAlloc := allocBytesDuring(func() {
		if _, err := ReadSketchSet(f); err != nil {
			t.Fatal(err)
		}
	})
	if readAlloc < envSize {
		t.Errorf("streaming load allocated %d bytes for a %d-byte envelope; measurement is broken", readAlloc, envSize)
	}
	t.Logf("envelope %d bytes: mmap open allocated %d, streaming load %d", envSize, openAlloc, readAlloc)
}

// TestOpenSketchSetEquivalence: every query against the mapped set
// answers identically to the built set, and identically to SketchBytes'
// wire blobs.
func TestOpenSketchSetEquivalence(t *testing.T) {
	set, _ := buildBackingSet(t)
	opened, err := OpenSketchSet(saveTemp(t, set, SetVersion2))
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if opened.DecodedSketches() != 0 {
		t.Fatalf("mmap open decoded %d labels up front, want 0", opened.DecodedSketches())
	}
	for u := 0; u < set.N(); u++ {
		if !bytes.Equal(opened.SketchBytes(u), set.SketchBytes(u)) {
			t.Fatalf("node %d: wire bytes differ between mapped and built set", u)
		}
		for v := u; v < set.N(); v += 17 {
			if got, want := opened.Query(u, v), set.Query(u, v); got != want {
				t.Fatalf("(%d,%d): mapped %d != built %d", u, v, got, want)
			}
		}
	}
}

// TestCloneCloseRefcount pins the handle lifecycle: each Clone holds
// its own reference, Close drops exactly one, and the mapping is
// released only when the last handle lets go.
func TestCloneCloseRefcount(t *testing.T) {
	set, _ := buildBackingSet(t)
	opened, err := OpenSketchSet(saveTemp(t, set, SetVersion2))
	if err != nil {
		t.Fatal(err)
	}
	b := opened.backing
	if b == nil {
		t.Fatal("open set has no backing")
	}
	if got := b.refs.Load(); got != 1 {
		t.Fatalf("refs after open = %d, want 1", got)
	}
	c := opened.Clone()
	if got := b.refs.Load(); got != 2 {
		t.Fatalf("refs after clone = %d, want 2", got)
	}
	if err := opened.Close(); err != nil {
		t.Fatal(err)
	}
	if got := b.refs.Load(); got != 1 {
		t.Fatalf("refs after closing the original = %d, want 1 (clone still reads)", got)
	}
	if b.data == nil {
		t.Fatal("mapping released while the clone still holds a reference")
	}
	// The closed handle refuses label access; the clone answers normally.
	if _, err := opened.QueryChecked(0, 1); !errors.Is(err, ErrSetClosed) {
		t.Fatalf("query on closed handle: %v, want ErrSetClosed", err)
	}
	if got, want := c.Query(0, 1), set.Query(0, 1); got != want {
		t.Fatalf("clone query after original closed: %d != %d", got, want)
	}
	// Close is idempotent and does not over-release.
	if err := opened.Close(); err != nil {
		t.Fatal(err)
	}
	if got := b.refs.Load(); got != 1 {
		t.Fatalf("refs after double close = %d, want 1", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := b.refs.Load(); got != 0 {
		t.Fatalf("refs after last close = %d, want 0", got)
	}
	if b.data != nil {
		t.Fatal("mapping not released after the last handle closed")
	}
}

// TestMaterializeReleasesBacking pins the clone-repair-swap interplay:
// materializing a clone (what UpdateEdges does before repairing) moves
// its labels to the heap and drops its backing reference, so the
// repaired set outlives the mapping.
func TestMaterializeReleasesBacking(t *testing.T) {
	set, _ := buildBackingSet(t)
	opened, err := OpenSketchSet(saveTemp(t, set, SetVersion2))
	if err != nil {
		t.Fatal(err)
	}
	b := opened.backing
	c := opened.Clone()
	if err := c.Materialize(); err != nil {
		t.Fatal(err)
	}
	if c.backing != nil {
		t.Fatal("materialized clone still holds a backing")
	}
	if c.Backing() != "heap" {
		t.Fatalf("materialized clone reports %s backing, want heap", c.Backing())
	}
	if got := b.refs.Load(); got != 1 {
		t.Fatalf("refs after clone materialize = %d, want 1", got)
	}
	// Unmap the original; the materialized clone must keep answering
	// (this is exactly the swapped-in repaired set outliving the old
	// mapping).
	if err := opened.Close(); err != nil {
		t.Fatal(err)
	}
	if b.data != nil {
		t.Fatal("mapping not released after the only mapped handle closed")
	}
	for u := 0; u < c.N(); u += 13 {
		for v := u; v < c.N(); v += 29 {
			if got, want := c.Query(u, v), set.Query(u, v); got != want {
				t.Fatalf("(%d,%d): materialized %d != built %d", u, v, got, want)
			}
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloneRepairSwapOnMmap runs the full serving-layer discipline at
// the library level: clone an mmap-backed set, repair the clone, swap
// it in (drop the original), and verify both the repair result and the
// mapping's release.
func TestCloneRepairSwapOnMmap(t *testing.T) {
	set, g := buildBackingSet(t)
	opened, err := OpenSketchSet(saveTemp(t, set, SetVersion2))
	if err != nil {
		t.Fatal(err)
	}
	b := opened.backing
	edges := g.Edges()
	e := edges[len(edges)/2]
	nb := NewGraphBuilder(g.N())
	for _, ge := range edges {
		w := ge.Weight
		if ge.U == e.U && ge.V == e.V {
			w = 1 // a decrease: always repairable
		}
		nb.AddEdge(ge.U, ge.V, w)
	}
	next, err := nb.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	clone := opened.Clone()
	if _, err := clone.UpdateEdge(next, e.U, e.V); err != nil {
		t.Fatal(err)
	}
	// The repair materialized the clone, so its backing reference is
	// gone; the original still maps until closed.
	if clone.Backing() != "heap" {
		t.Fatalf("repaired clone reports %s backing, want heap", clone.Backing())
	}
	if got := b.refs.Load(); got != 1 {
		t.Fatalf("refs after clone repair = %d, want 1", got)
	}
	if err := opened.Close(); err != nil {
		t.Fatal(err)
	}
	if b.data != nil {
		t.Fatal("mapping not released after swap-out close")
	}
	// The swapped-in set matches a fresh build on the new topology.
	fresh, err := Build(next, Options{Kind: KindLandmark, Eps: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < clone.N(); u += 11 {
		for v := u; v < clone.N(); v += 23 {
			if got, want := clone.Query(u, v), fresh.Query(u, v); got != want {
				t.Fatalf("(%d,%d): repaired %d != rebuilt %d", u, v, got, want)
			}
		}
	}
}

// TestConcurrentQueriesWithCloneClose is the -race exercise: readers
// hammer the open handle while another goroutine repeatedly clones,
// materializes, and closes its clones — the refcount churn a serving
// process generates under a stream of repairs.
func TestConcurrentQueriesWithCloneClose(t *testing.T) {
	set, _ := buildBackingSet(t)
	opened, err := OpenSketchSet(saveTemp(t, set, SetVersion2))
	if err != nil {
		t.Fatal(err)
	}
	const readers = 4
	done := make(chan error, readers+1)
	for r := 0; r < readers; r++ {
		go func(seed int) {
			for i := 0; i < 500; i++ {
				u, v := (i*7+seed)%opened.N(), (i*13+seed*5)%opened.N()
				if _, err := opened.QueryChecked(u, v); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(r)
	}
	go func() {
		for i := 0; i < 20; i++ {
			c := opened.Clone()
			if err := c.Materialize(); err != nil {
				done <- err
				return
			}
			if err := c.Close(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < readers+1; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := opened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenSketchSetV1Eager: a version-1 envelope has no directory to
// map lazily, so OpenSketchSet decodes it eagerly and drops the
// mapping — the result is an ordinary heap set with no Close
// obligation.
func TestOpenSketchSetV1Eager(t *testing.T) {
	set, _ := buildBackingSet(t)
	opened, err := OpenSketchSet(saveTemp(t, set, SetVersion1))
	if err != nil {
		t.Fatal(err)
	}
	if opened.Backing() != "heap" || opened.MappedBytes() != 0 {
		t.Fatalf("v1 open: backing=%s mapped=%d, want heap/0", opened.Backing(), opened.MappedBytes())
	}
	if opened.DecodedSketches() != opened.N() {
		t.Fatalf("v1 open decoded %d/%d", opened.DecodedSketches(), opened.N())
	}
	for u := 0; u < set.N(); u += 19 {
		for v := u; v < set.N(); v += 31 {
			if got, want := opened.Query(u, v), set.Query(u, v); got != want {
				t.Fatalf("(%d,%d): v1-open %d != built %d", u, v, got, want)
			}
		}
	}
}

// TestOpenSketchSetCorruptQuarantine mirrors LoadSketchSet's recovery
// contract on the mmap path: a corrupt envelope is quarantined with the
// typed error, and the mapping does not leak.
func TestOpenSketchSetCorruptQuarantine(t *testing.T) {
	set, _ := buildBackingSet(t)
	path := saveTemp(t, set, SetVersion2)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff // flip a payload bit behind the header
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSketchSet(path)
	var ce *ErrCorruptEnvelope
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt open: %v, want *ErrCorruptEnvelope", err)
	}
	if ce.Path != path || ce.Quarantined != path+".corrupt" {
		t.Fatalf("quarantine metadata: %+v", ce)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt original still present: %v", err)
	}
}

// TestOpenSketchSetEmptyFile: a zero-byte envelope (a created-but-never
// -written file) quarantines instead of faulting an empty mapping.
func TestOpenSketchSetEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.dsk")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSketchSet(path)
	var ce *ErrCorruptEnvelope
	if !errors.As(err, &ce) {
		t.Fatalf("empty open: %v, want *ErrCorruptEnvelope", err)
	}
}
