// sketchrouter fans distance queries out across node-range shard
// servers — the thin stateless tier that makes a sharded sketch-set
// deployment look like one server. It holds only the shard map (learned
// from each shard's /stats at startup), touches at most 2 shards per
// (u,v) query — one when the pair shares a shard, two via the paper's
// sketch-exchange when it does not — and serves the same endpoint
// shapes as sketchserve, so clients need not know sharding exists.
//
// Typical flow:
//
//	distsketch -family geometric -n 100000 -kind landmark -eps 0.25 \
//	    -saveset net.dsk
//	distsketch -loadset net.dsk -split 4 -splitout shards/
//	sketchserve -set shards/shard-0-of-4.dsk -mmap -addr :7601 &
//	sketchserve -set shards/shard-1-of-4.dsk -mmap -addr :7602 &
//	sketchserve -set shards/shard-2-of-4.dsk -mmap -addr :7603 &
//	sketchserve -set shards/shard-3-of-4.dsk -mmap -addr :7604 &
//	sketchrouter -addr :7600 \
//	    -shards http://localhost:7601,http://localhost:7602,http://localhost:7603,http://localhost:7604
//
//	curl 'localhost:7600/query?u=3&v=99999'
//	curl -X POST localhost:7600/query -d '{"pairs":[{"u":0,"v":9}]}'
//	curl localhost:7600/stats
//
// The router verifies at startup that the discovered shard ranges tile
// one id space exactly — a missing or overlapping shard refuses to
// start rather than silently misrouting. It keeps no labels and no
// graph; restarting it is instant, and running several behind a load
// balancer needs no coordination.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distsketch/internal/serve"
)

func main() {
	addr := flag.String("addr", ":7600", "listen address")
	shardList := flag.String("shards", "", "comma-separated shard base URLs (required), e.g. http://host:7601,http://host:7602")
	maxBatch := flag.Int("maxbatch", serve.DefaultMaxBatch, "max pairs per batched POST /query")
	discoverTimeout := flag.Duration("discover-timeout", 10*time.Second, "deadline for learning the shard map from each shard's /stats")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for in-flight requests")
	flag.Parse()

	if *shardList == "" {
		fmt.Fprintln(os.Stderr, "sketchrouter: -shards is required")
		flag.Usage()
		os.Exit(2)
	}
	var bases []string
	for _, b := range strings.Split(*shardList, ",") {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		log.Fatalf("sketchrouter: -shards lists no base URLs")
	}

	dctx, cancel := context.WithTimeout(context.Background(), *discoverTimeout)
	shards, err := serve.DiscoverShards(dctx, bases, nil)
	cancel()
	if err != nil {
		log.Fatalf("sketchrouter: %v", err)
	}
	rt, err := serve.NewRouter(shards, serve.RouterOptions{MaxBatch: *maxBatch})
	if err != nil {
		log.Fatalf("sketchrouter: %v", err)
	}
	for _, sh := range rt.Shards() {
		log.Printf("sketchrouter: shard %s -> %s", sh.Range, sh.Base)
	}
	log.Printf("sketchrouter: routing %d nodes across %d shards on %s (≤2 shards per query)",
		rt.TotalNodes(), len(rt.Shards()), *addr)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("sketchrouter: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("sketchrouter: shutdown signal received; draining (grace %s, /readyz now 503)", *drainTimeout)
		rt.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		code := 0
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("sketchrouter: drain incomplete after %s: %v; closing remaining connections", *drainTimeout, err)
			hs.Close()
			code = 1
		}
		log.Printf("sketchrouter: shutdown complete")
		os.Exit(code)
	}
}
