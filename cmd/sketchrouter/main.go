// sketchrouter fans distance queries out across node-range shard
// servers — the thin stateless tier that makes a sharded sketch-set
// deployment look like one server. It holds only the shard map (learned
// from each shard's /stats at startup and refreshed live when the
// fleet moves), touches at most 2 shards per (u,v) query — one when
// the pair shares a shard, two via the paper's sketch-exchange when it
// does not — and serves the same endpoint shapes as sketchserve, so
// clients need not know sharding exists.
//
// Each shard may be a replica set: join byte-identical servers with
// "|" inside one comma-separated -shards entry. Upstream calls retry
// across replicas with jittered backoff, slow reads are hedged to a
// second replica, and a background prober ejects failing replicas and
// reinstates them when they recover — killing one replica of a group
// is invisible to clients.
//
// Typical flow:
//
//	distsketch -family geometric -n 100000 -kind landmark -eps 0.25 \
//	    -saveset net.dsk
//	distsketch -loadset net.dsk -split 2 -splitout shards/
//	sketchserve -set shards/shard-0-of-2.dsk -mmap -addr :7601 &
//	sketchserve -set shards/shard-0-of-2.dsk -mmap -addr :7611 &
//	sketchserve -set shards/shard-1-of-2.dsk -mmap -addr :7602 &
//	sketchserve -set shards/shard-1-of-2.dsk -mmap -addr :7612 &
//	sketchrouter -addr :7600 \
//	    -shards 'http://localhost:7601|http://localhost:7611,http://localhost:7602|http://localhost:7612'
//
//	curl 'localhost:7600/query?u=3&v=99999'
//	curl -X POST localhost:7600/query -d '{"pairs":[{"u":0,"v":9}]}'
//	curl localhost:7600/stats
//
// The router verifies at startup that the discovered shard ranges tile
// one id space exactly — a missing or overlapping shard refuses to
// start rather than silently misrouting — and that the reachable
// replicas of each group agree on range and envelope checksum. It
// keeps no labels and no graph; restarting it is instant, and running
// several behind a load balancer needs no coordination.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distsketch/internal/serve"
)

// discoverWithRetry learns the shard map, retrying with jittered
// exponential backoff so the router survives a rolling fleet restart
// at boot instead of crash-looping on the first briefly-down shard.
func discoverWithRetry(specs []string, attempts int, timeout time.Duration) ([]serve.RouterShard, error) {
	backoff := 500 * time.Millisecond
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		dctx, cancel := context.WithTimeout(context.Background(), timeout)
		shards, err := serve.DiscoverShards(dctx, specs, nil)
		cancel()
		if err == nil {
			if attempt > 1 {
				log.Printf("sketchrouter: shard map discovered on attempt %d/%d", attempt, attempts)
			}
			return shards, nil
		}
		lastErr = err
		if attempt == attempts {
			break
		}
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		log.Printf("sketchrouter: discovery attempt %d/%d failed: %v; retrying in %s", attempt, attempts, err, sleep.Round(time.Millisecond))
		time.Sleep(sleep)
		if backoff < 8*time.Second {
			backoff *= 2
		}
	}
	return nil, fmt.Errorf("shard discovery failed after %d attempts: %w", attempts, lastErr)
}

func main() {
	addr := flag.String("addr", ":7600", "listen address")
	shardList := flag.String("shards", "", "comma-separated shard specs (required); each spec is one or more replica base URLs joined with '|', e.g. http://h:7601|http://h:7611,http://h:7602")
	maxBatch := flag.Int("maxbatch", serve.DefaultMaxBatch, "max pairs per batched POST /query")
	discoverTimeout := flag.Duration("discover-timeout", 10*time.Second, "deadline per attempt for learning the shard map from the fleet's /stats")
	discoverRetry := flag.Int("discover-retry", 5, "startup shard-discovery attempts before giving up (backoff doubles between attempts)")
	attemptTimeout := flag.Duration("attempt-timeout", serve.DefaultAttemptTimeout, "per-attempt upstream timeout; slower replicas are retried elsewhere")
	maxAttempts := flag.Int("max-attempts", serve.DefaultMaxAttempts, "upstream attempts per call across a shard's replicas")
	hedgeDelay := flag.Duration("hedge-delay", serve.DefaultHedgeDelay, "race a second replica after this silence; negative disables hedging")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "background health-probe interval; 0 disables the prober")
	maxInFlight := flag.Int("maxinflight", serve.DefaultMaxInFlight, "max concurrently executing requests before shedding 503s; negative means unbounded")
	reqTimeout := flag.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request execution deadline; negative disables")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for in-flight requests")
	flag.Parse()

	if *shardList == "" {
		fmt.Fprintln(os.Stderr, "sketchrouter: -shards is required")
		flag.Usage()
		os.Exit(2)
	}
	var specs []string
	for _, b := range strings.Split(*shardList, ",") {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b != "" {
			specs = append(specs, b)
		}
	}
	if len(specs) == 0 {
		log.Fatalf("sketchrouter: -shards lists no base URLs")
	}
	if *discoverRetry < 1 {
		*discoverRetry = 1
	}

	shards, err := discoverWithRetry(specs, *discoverRetry, *discoverTimeout)
	if err != nil {
		log.Fatalf("sketchrouter: %v", err)
	}
	rt, err := serve.NewRouter(shards, serve.RouterOptions{
		MaxBatch:       *maxBatch,
		AttemptTimeout: *attemptTimeout,
		MaxAttempts:    *maxAttempts,
		HedgeDelay:     *hedgeDelay,
		ProbeInterval:  *probeInterval,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		log.Fatalf("sketchrouter: %v", err)
	}
	defer rt.Close()
	for _, sh := range rt.Shards() {
		log.Printf("sketchrouter: shard %s -> %s", sh.Range, strings.Join(sh.Replicas, " | "))
	}
	log.Printf("sketchrouter: routing %d nodes across %d shards on %s (≤2 shards per query, hedge %s, probe %s)",
		rt.TotalNodes(), len(rt.Shards()), *addr, *hedgeDelay, *probeInterval)

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("sketchrouter: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("sketchrouter: shutdown signal received; draining (grace %s, /readyz now 503)", *drainTimeout)
		rt.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		code := 0
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("sketchrouter: drain incomplete after %s: %v; closing remaining connections", *drainTimeout, err)
			hs.Close()
			code = 1
		}
		rt.Close()
		log.Printf("sketchrouter: shutdown complete")
		os.Exit(code)
	}
}
