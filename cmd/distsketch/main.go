// distsketch is a command-line front end for building distance sketches on
// generated networks, persisting the built sets, and issuing distance
// queries against them.
//
// Usage examples:
//
//	distsketch -family geometric -n 256 -kind tz -k 3 -query 0:255,3:17
//	distsketch -family barabasi-albert -n 512 -kind graceful -summary
//	distsketch -family grid -n 100 -kind landmark -eps 0.25 -dump 5
//
// A built set can be saved and served later without reconstruction:
//
//	distsketch -family geometric -n 1024 -kind tz -saveset net.dsk
//	distsketch -loadset net.dsk -query 0:1023,5:900
//
// A saved envelope can be sliced into node-range shards for a
// horizontally scaled deployment (sketchserve per shard, sketchrouter
// in front); -mmap opens the envelope zero-copy, so splitting a
// multi-GB set streams blobs from the page cache instead of the heap:
//
//	distsketch -loadset net.dsk -mmap -split 4 -splitout shards/
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"distsketch"
	"distsketch/internal/atomicfile"
)

func main() {
	family := flag.String("family", distsketch.FamilyGeometric, "graph family (erdos-renyi, geometric, grid, ring, tree, barabasi-albert, small-world, hypercube)")
	n := flag.Int("n", 256, "number of nodes")
	minW := flag.Int64("minw", 1, "minimum edge weight")
	maxW := flag.Int64("maxw", 100, "maximum edge weight")
	seed := flag.Uint64("seed", 1, "random seed")
	kind := flag.String("kind", "tz", "sketch kind: tz | landmark | cdg | graceful")
	k := flag.Int("k", 3, "Thorup–Zwick hierarchy depth (tz, cdg)")
	eps := flag.Float64("eps", 0.125, "slack parameter (landmark, cdg)")
	detection := flag.Bool("detection", false, "use in-band Section 3.3 termination detection (tz only)")
	queries := flag.String("query", "", "comma-separated u:v pairs to estimate")
	dump := flag.Int("dump", -1, "dump node's serialized sketch as hex")
	summary := flag.Bool("summary", true, "print construction cost summary")
	phases := flag.Bool("phases", false, "print the per-phase cost breakdown")
	load := flag.String("load", "", "read the network from an edge-list file instead of generating one")
	save := flag.String("save", "", "write the generated network to an edge-list file")
	saveSet := flag.String("saveset", "", "write the built sketch set to this file")
	setVersion := flag.Int("setversion", distsketch.SetVersion2, "envelope version for -saveset: 2 (lazy-loading directory) or 1 (legacy eager)")
	loadSet := flag.String("loadset", "", "serve queries from a previously saved sketch set (skips the build)")
	useMmap := flag.Bool("mmap", false, "open -loadset memory-mapped (zero payload copy)")
	split := flag.Int("split", 0, "slice the set into this many node-range shard envelopes (with -splitout)")
	splitOut := flag.String("splitout", "", "directory receiving -split shard envelopes (created if missing)")
	flag.Parse()

	var set *distsketch.SketchSet
	if *loadSet != "" {
		// The recovering loaders: stale temps from a killed -saveset are
		// swept, and a torn or corrupt envelope is quarantined to
		// <file>.corrupt with a typed error naming the bad byte offset.
		var err error
		if *useMmap {
			set, err = distsketch.OpenSketchSet(*loadSet)
		} else {
			set, err = distsketch.LoadSketchSet(*loadSet)
		}
		if err != nil {
			fatal(err)
		}
		defer set.Close()
		if *summary {
			fmt.Printf("loaded:  %s (%d nodes, kind=%s, envelope v%d, %d/%d sketches decoded, backing=%s)\n",
				*loadSet, set.N(), set.Kind(), set.EnvelopeVersion(), set.DecodedSketches(), set.N(), set.Backing())
		}
	} else {
		var g *distsketch.Graph
		var err error
		if *load != "" {
			f, ferr := os.Open(*load)
			if ferr != nil {
				fatal(ferr)
			}
			g, err = distsketch.ReadGraph(f)
			f.Close()
		} else {
			g, err = distsketch.NewRandomWeightedGraph(*family, *n, *minW, *maxW, *seed)
		}
		if err != nil {
			fatal(err)
		}
		if *save != "" {
			// Atomic write: a crash (or a full disk) mid-save leaves the old
			// edge list intact instead of a partial file, and every error —
			// including the close/fsync the bare os.Create path used to drop
			// — reaches the exit code.
			if err := atomicfile.WriteFile(*save, func(w io.Writer) error {
				return distsketch.WriteGraph(w, g)
			}); err != nil {
				fatal(err)
			}
		}
		set, err = distsketch.Build(g, distsketch.Options{
			Kind:      distsketch.Kind(*kind),
			K:         *k,
			Eps:       *eps,
			Seed:      *seed,
			Detection: *detection,
		})
		if err != nil {
			fatal(err)
		}
		if *summary {
			fmt.Printf("graph:   family=%s n=%d m=%d seed=%d\n", *family, g.N(), g.M(), *seed)
		}
	}

	if *summary {
		fmt.Printf("sketch:  kind=%s", set.Kind())
		if *loadSet == "" {
			// Parameter details come from the build flags; a loaded set
			// was built with its own (unrecorded) parameters.
			switch set.Kind() {
			case distsketch.KindTZ:
				fmt.Printf(" k=%d stretch≤%d", *k, 2**k-1)
			case distsketch.KindCDG:
				fmt.Printf(" k=%d eps=%g stretch≤%d (ε-slack)", *k, *eps, 8**k-1)
			case distsketch.KindLandmark:
				fmt.Printf(" eps=%g stretch≤3 (ε-slack)", *eps)
			case distsketch.KindGraceful:
				fmt.Printf(" worst stretch O(log n), avg stretch O(1)")
			}
		}
		fmt.Println()
		fmt.Printf("cost:    rounds=%d messages=%d words=%d\n", set.Rounds(), set.Messages(), set.Words())
		fmt.Printf("size:    max=%d words, mean=%.1f words\n", set.MaxSketchWords(), set.MeanSketchWords())
	}

	if *phases {
		cost := set.Cost()
		fmt.Printf("%-24s  %10s  %14s  %14s\n", "phase", "rounds", "messages", "words")
		for _, p := range cost.Phases {
			fmt.Printf("%-24s  %10d  %14d  %14d\n", p.Name, p.Rounds, p.Messages, p.Words)
		}
		fmt.Printf("%-24s  %10d  %14d  %14d\n", "total", cost.Total.Rounds, cost.Total.Messages, cost.Total.Words)
	}

	if *saveSet != "" {
		// Crash-safe save: temp file + fsync + atomic rename, so a kill at
		// any instant leaves either the previous envelope or the new one —
		// never a torn file the next -loadset trips over.
		if err := distsketch.SaveSketchSet(*saveSet, set, *setVersion); err != nil {
			fatal(err)
		}
		if *summary {
			fmt.Printf("saved:   %s (envelope v%d)\n", *saveSet, *setVersion)
		}
	}

	if *split > 0 || *splitOut != "" {
		if *split <= 0 || *splitOut == "" {
			fatal(fmt.Errorf("-split and -splitout go together (got -split %d, -splitout %q)", *split, *splitOut))
		}
		if *split > set.N() {
			fatal(fmt.Errorf("cannot split %d nodes into %d shards", set.N(), *split))
		}
		if err := os.MkdirAll(*splitOut, 0o755); err != nil {
			fatal(err)
		}
		ranges := distsketch.EvenShardRanges(set.N(), *split)
		paths, err := distsketch.SaveShards(*splitOut, set, ranges)
		if err != nil {
			fatal(err)
		}
		if *summary {
			for i, p := range paths {
				fmt.Printf("shard:   %s nodes %s\n", p, ranges[i])
			}
		}
	}

	if *queries != "" {
		for _, q := range strings.Split(*queries, ",") {
			parts := strings.SplitN(strings.TrimSpace(q), ":", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad query %q (want u:v)", q))
			}
			u, err1 := strconv.Atoi(parts[0])
			v, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fatal(fmt.Errorf("bad query %q", q))
			}
			est, err := set.QueryChecked(u, v)
			if err != nil {
				fatal(fmt.Errorf("query %q: %w", q, err))
			}
			if est == distsketch.Inf {
				fmt.Printf("d(%d,%d) ≈ ∞ (no common reference in sketches)\n", u, v)
			} else {
				fmt.Printf("d(%d,%d) ≈ %d\n", u, v, est)
			}
		}
	}

	if *dump >= 0 {
		blob, err := set.SketchBytesChecked(*dump)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sketch of node %d (%d bytes, %d words):\n%s\n",
			*dump, len(blob), set.SketchWords(*dump), hex.Dump(blob))
	}
}

func fatal(err error) {
	// Library errors already carry the "distsketch: " prefix; don't
	// stutter it.
	fmt.Fprintln(os.Stderr, "distsketch:", strings.TrimPrefix(err.Error(), "distsketch: "))
	os.Exit(1)
}
