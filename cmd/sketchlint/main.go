// Command sketchlint is the multichecker for this repository's
// invariant-enforcing analyzers. It loads the packages matching its
// argument patterns (default ./...), runs every registered analyzer,
// prints surviving diagnostics in vet format
// (path:line:col: analyzer: message), and exits 1 if there were any.
//
// Suppression: //sketchlint:ignore <analyzer> <reason> on the flagged
// line or the line above. The reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"distsketch/internal/lint/analysis"
	"distsketch/internal/lint/canonlabel"
	"distsketch/internal/lint/hotpathalloc"
	"distsketch/internal/lint/std"
	"distsketch/internal/lint/swapdiscipline"
	"distsketch/internal/lint/wirebounds"
)

// analyzers is the full suite: the four invariant analyzers plus the
// vet-family passes reimplemented in internal/lint/std.
var analyzers = []*analysis.Analyzer{
	canonlabel.Analyzer,
	hotpathalloc.Analyzer,
	swapdiscipline.Analyzer,
	wirebounds.Analyzer,
	std.Copylocks,
	std.Nilness,
	std.Unusedwrite,
}

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sketchlint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the distsketch invariant analyzers over the given package\npatterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sketchlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sketchlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
