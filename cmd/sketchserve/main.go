// sketchserve serves distance queries over HTTP from a persisted sketch
// set — the paper's query model as a network service: the build happens
// once (cmd/distsketch -saveset), and this process loads the envelope,
// keeps every sketch decoded in memory, and answers estimates from the
// sketches alone.
//
// Typical flow:
//
//	distsketch -family geometric -n 1024 -kind landmark -eps 0.25 \
//	    -saveset net.dsk -save net.edges
//	sketchserve -set net.dsk -graph net.edges -addr :7600
//
//	curl 'localhost:7600/query?u=3&v=900'
//	curl -X POST localhost:7600/query -d '{"pairs":[{"u":0,"v":9},{"u":4,"v":7}]}'
//	curl -s localhost:7600/sketch/3 | xxd | head
//	curl localhost:7600/stats
//	curl -X POST localhost:7600/update-edge -d '{"u":12,"v":80,"weight":3}'
//	curl localhost:7600/healthz; curl localhost:7600/readyz
//	curl -X POST localhost:7600/save                 # with -snapshot
//
// With -mmap the envelope is memory-mapped instead of copied: startup
// is the O(n) directory scan alone, labels page in on first touch, and
// a multi-GB set serves from the page cache. A version-3 shard envelope
// (distsketch -split) serves its node range and answers 421 with a
// redirect hint for ids owned by other shards; put cmd/sketchrouter in
// front to fan queries across a shard fleet.
//
// -graph is optional; without it the server cannot apply /update-edge
// repairs (it needs the live topology) but serves queries normally.
// Note that /update-edge mutates the served set and the server does no
// authentication: expose it to untrusted clients only behind your own
// auth or network controls, or omit -graph to run read-only.
//
// Lifecycle: the envelope is loaded through the recovering loader
// (stale temp files from a killed save are swept; a torn or corrupt
// envelope is quarantined to <set>.corrupt and the process exits with a
// clear error instead of serving garbage). On SIGTERM/SIGINT the server
// drains gracefully: /readyz flips to 503 so load balancers stop
// routing here, in-flight requests (including an in-flight update swap)
// complete, new connections are refused, and a final counters line is
// logged. Overload is shed at the admission gate (-inflight) with 503 +
// Retry-After rather than queued without bound.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"distsketch"
	"distsketch/internal/atomicfile"
	"distsketch/internal/serve"
)

// sweepSetDir is the shard-directory form of the startup recovery the
// single-file loader performs: a server pointed at one envelope of a
// directory full of shards sweeps the whole directory's stale save
// temps (an interrupted SaveShards leaves siblings behind, not just
// this shard's temp) and reports any quarantined .corrupt files an
// earlier start left, so one log line names every shard needing repair.
func sweepSetDir(setPath string) {
	dir := filepath.Dir(setPath)
	if removed, err := atomicfile.CleanStaleDir(dir); err != nil {
		log.Printf("sketchserve: sweeping stale temps in %s: %v", dir, err)
	} else if len(removed) > 0 {
		log.Printf("sketchserve: removed %d stale save temp(s) from %s", len(removed), dir)
	}
	if quarantined, err := filepath.Glob(filepath.Join(dir, "*.corrupt")); err == nil && len(quarantined) > 0 {
		log.Printf("sketchserve: %d quarantined envelope(s) in %s need repair: %v", len(quarantined), dir, quarantined)
	}
}

func main() {
	setPath := flag.String("set", "", "sketch-set envelope to serve (required; see distsketch -saveset)")
	graphPath := flag.String("graph", "", "edge-list topology, enables POST /update-edge")
	addr := flag.String("addr", ":7600", "listen address")
	maxBatch := flag.Int("maxbatch", serve.DefaultMaxBatch, "max pairs per batched POST /query")
	maxInFlight := flag.Int("inflight", serve.DefaultMaxInFlight, "max concurrently executing requests; excess load is shed with 503 (negative disables)")
	reqTimeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request execution deadline (negative disables)")
	useMmap := flag.Bool("mmap", false, "open the envelope memory-mapped (zero payload copy; labels page in on demand)")
	snapshot := flag.String("snapshot", "", "enable POST /save: crash-safe snapshot of the served set to this path")
	readyProbe := flag.Bool("readyprobe", false, "make GET /readyz decode a label through the query path before reporting ready")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for in-flight requests")
	flag.Parse()

	if *setPath == "" {
		fmt.Fprintln(os.Stderr, "sketchserve: -set is required")
		flag.Usage()
		os.Exit(2)
	}
	// Startup recovery covers the whole directory, not just -set: a shard
	// server's directory holds sibling shards whose save temps and
	// quarantine leftovers deserve the same sweep.
	sweepSetDir(*setPath)
	// Both loaders recover: stale save temps are swept and a corrupt
	// envelope is quarantined so the next start does not trip on the same
	// bytes. -mmap maps the payload instead of copying it.
	var set *distsketch.SketchSet
	var err error
	if *useMmap {
		set, err = distsketch.OpenSketchSet(*setPath)
	} else {
		set, err = distsketch.LoadSketchSet(*setPath)
	}
	if err != nil {
		var ce *distsketch.ErrCorruptEnvelope
		if errors.As(err, &ce) && ce.Quarantined != "" {
			log.Fatalf("sketchserve: %v\nsketchserve: the corrupt file was quarantined to %s; restore a good envelope (e.g. the last POST /save snapshot) and restart", err, ce.Quarantined)
		}
		log.Fatalf("sketchserve: loading %s: %v", *setPath, err)
	}

	var g *distsketch.Graph
	if *graphPath != "" {
		gf, err := os.Open(*graphPath)
		if err != nil {
			log.Fatalf("sketchserve: %v", err)
		}
		g, err = distsketch.ReadGraph(gf)
		gf.Close()
		if err != nil {
			log.Fatalf("sketchserve: loading %s: %v", *graphPath, err)
		}
	}

	srv, err := serve.New(set, serve.Options{
		Graph:          g,
		MaxBatch:       *maxBatch,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		SnapshotPath:   *snapshot,
		ProbeDecode:    *readyProbe,
	})
	if err != nil {
		log.Fatalf("sketchserve: %v", err)
	}
	// MeanSketchWords answers from the envelope's directory for a lazily
	// loaded (version-2) set, so this log line does not force any label
	// decodes — startup stays an O(n) directory scan.
	log.Printf("sketchserve: serving %s (%d nodes, kind=%s, mean sketch %.1f words, envelope v%d, %d/%d sketches decoded, backing=%s) on %s",
		*setPath, set.N(), set.Kind(), set.MeanSketchWords(), set.EnvelopeVersion(), set.DecodedSketches(), set.N(), set.Backing(), *addr)
	if set.Backing() == "mmap" {
		log.Printf("sketchserve: %d envelope bytes mapped, zero payload copy", set.MappedBytes())
	}
	if set.Sharded() {
		lo, hi := set.NodeRange()
		log.Printf("sketchserve: serving node-range shard [%d,%d) of %d nodes; ids owned by other shards answer 421 with a redirect hint", lo, hi, set.TotalNodes())
	}
	if g == nil {
		log.Printf("sketchserve: no -graph given; POST /update-edge disabled")
	}
	if *snapshot == "" {
		log.Printf("sketchserve: no -snapshot given; POST /save disabled")
	}
	// Explicit timeouts: a server for untrusted clients must not let a
	// dribbled request pin a connection forever (slowloris).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		// The listener died on its own (port in use, fd limits) — there is
		// nothing to drain.
		log.Fatalf("sketchserve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("sketchserve: shutdown signal received; draining (grace %s, /readyz now 503)", *drainTimeout)
		srv.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		code := 0
		if err := hs.Shutdown(sctx); err != nil {
			// Some in-flight work outlived the grace period; close what is
			// left so the process exits promptly, and say so in the exit
			// code — an operator alerting on nonzero exits wants to know
			// drains are running long.
			log.Printf("sketchserve: drain incomplete after %s: %v; closing remaining connections", *drainTimeout, err)
			hs.Close()
			code = 1
		}
		// Unmap after the drain: every in-flight reader of the mapped
		// envelope has finished once Shutdown returns. The set being
		// served may be a repaired clone (heap-backed) of the opened set;
		// closing the served one releases the last reference either way.
		if err := srv.Set().Close(); err != nil {
			log.Printf("sketchserve: closing sketch set: %v", err)
		}
		c := srv.Counters()
		log.Printf("sketchserve: shutdown complete: %d queries served, %d updates applied, %d requests shed, %d deadline hits, %d panics recovered, %d decode failures, %d snapshots saved",
			c.Queries, c.Updates, c.Shed, c.DeadlineExceeded, c.PanicsRecovered, c.DecodeFailures, c.Snapshots)
		os.Exit(code)
	}
}
