// sketchserve serves distance queries over HTTP from a persisted sketch
// set — the paper's query model as a network service: the build happens
// once (cmd/distsketch -saveset), and this process loads the envelope,
// keeps every sketch decoded in memory, and answers estimates from the
// sketches alone.
//
// Typical flow:
//
//	distsketch -family geometric -n 1024 -kind landmark -eps 0.25 \
//	    -saveset net.dsk -save net.edges
//	sketchserve -set net.dsk -graph net.edges -addr :7600
//
//	curl 'localhost:7600/query?u=3&v=900'
//	curl -X POST localhost:7600/query -d '{"pairs":[{"u":0,"v":9},{"u":4,"v":7}]}'
//	curl -s localhost:7600/sketch/3 | xxd | head
//	curl localhost:7600/stats
//	curl -X POST localhost:7600/update-edge -d '{"u":12,"v":80,"weight":3}'
//	curl localhost:7600/healthz; curl localhost:7600/readyz
//	curl -X POST localhost:7600/save                 # with -snapshot
//
// -graph is optional; without it the server cannot apply /update-edge
// repairs (it needs the live topology) but serves queries normally.
// Note that /update-edge mutates the served set and the server does no
// authentication: expose it to untrusted clients only behind your own
// auth or network controls, or omit -graph to run read-only.
//
// Lifecycle: the envelope is loaded through the recovering loader
// (stale temp files from a killed save are swept; a torn or corrupt
// envelope is quarantined to <set>.corrupt and the process exits with a
// clear error instead of serving garbage). On SIGTERM/SIGINT the server
// drains gracefully: /readyz flips to 503 so load balancers stop
// routing here, in-flight requests (including an in-flight update swap)
// complete, new connections are refused, and a final counters line is
// logged. Overload is shed at the admission gate (-inflight) with 503 +
// Retry-After rather than queued without bound.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distsketch"
	"distsketch/internal/serve"
)

func main() {
	setPath := flag.String("set", "", "sketch-set envelope to serve (required; see distsketch -saveset)")
	graphPath := flag.String("graph", "", "edge-list topology, enables POST /update-edge")
	addr := flag.String("addr", ":7600", "listen address")
	maxBatch := flag.Int("maxbatch", serve.DefaultMaxBatch, "max pairs per batched POST /query")
	maxInFlight := flag.Int("inflight", serve.DefaultMaxInFlight, "max concurrently executing requests; excess load is shed with 503 (negative disables)")
	reqTimeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request execution deadline (negative disables)")
	snapshot := flag.String("snapshot", "", "enable POST /save: crash-safe snapshot of the served set to this path")
	readyProbe := flag.Bool("readyprobe", false, "make GET /readyz decode a label through the query path before reporting ready")
	drainTimeout := flag.Duration("drain", 30*time.Second, "graceful-shutdown grace period for in-flight requests")
	flag.Parse()

	if *setPath == "" {
		fmt.Fprintln(os.Stderr, "sketchserve: -set is required")
		flag.Usage()
		os.Exit(2)
	}
	// LoadSketchSet is the recovering loader: stale save temps are swept
	// and a corrupt envelope is quarantined so the next start does not
	// trip on the same bytes.
	set, err := distsketch.LoadSketchSet(*setPath)
	if err != nil {
		var ce *distsketch.ErrCorruptEnvelope
		if errors.As(err, &ce) && ce.Quarantined != "" {
			log.Fatalf("sketchserve: %v\nsketchserve: the corrupt file was quarantined to %s; restore a good envelope (e.g. the last POST /save snapshot) and restart", err, ce.Quarantined)
		}
		log.Fatalf("sketchserve: loading %s: %v", *setPath, err)
	}

	var g *distsketch.Graph
	if *graphPath != "" {
		gf, err := os.Open(*graphPath)
		if err != nil {
			log.Fatalf("sketchserve: %v", err)
		}
		g, err = distsketch.ReadGraph(gf)
		gf.Close()
		if err != nil {
			log.Fatalf("sketchserve: loading %s: %v", *graphPath, err)
		}
	}

	srv, err := serve.New(set, serve.Options{
		Graph:          g,
		MaxBatch:       *maxBatch,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		SnapshotPath:   *snapshot,
		ProbeDecode:    *readyProbe,
	})
	if err != nil {
		log.Fatalf("sketchserve: %v", err)
	}
	// MeanSketchWords answers from the envelope's directory for a lazily
	// loaded (version-2) set, so this log line does not force any label
	// decodes — startup stays an O(n) directory scan.
	log.Printf("sketchserve: serving %s (%d nodes, kind=%s, mean sketch %.1f words, envelope v%d, %d/%d sketches decoded) on %s",
		*setPath, set.N(), set.Kind(), set.MeanSketchWords(), set.EnvelopeVersion(), set.DecodedSketches(), set.N(), *addr)
	if g == nil {
		log.Printf("sketchserve: no -graph given; POST /update-edge disabled")
	}
	if *snapshot == "" {
		log.Printf("sketchserve: no -snapshot given; POST /save disabled")
	}
	// Explicit timeouts: a server for untrusted clients must not let a
	// dribbled request pin a connection forever (slowloris).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		// The listener died on its own (port in use, fd limits) — there is
		// nothing to drain.
		log.Fatalf("sketchserve: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		log.Printf("sketchserve: shutdown signal received; draining (grace %s, /readyz now 503)", *drainTimeout)
		srv.BeginDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		code := 0
		if err := hs.Shutdown(sctx); err != nil {
			// Some in-flight work outlived the grace period; close what is
			// left so the process exits promptly, and say so in the exit
			// code — an operator alerting on nonzero exits wants to know
			// drains are running long.
			log.Printf("sketchserve: drain incomplete after %s: %v; closing remaining connections", *drainTimeout, err)
			hs.Close()
			code = 1
		}
		c := srv.Counters()
		log.Printf("sketchserve: shutdown complete: %d queries served, %d updates applied, %d requests shed, %d deadline hits, %d panics recovered, %d decode failures, %d snapshots saved",
			c.Queries, c.Updates, c.Shed, c.DeadlineExceeded, c.PanicsRecovered, c.DecodeFailures, c.Snapshots)
		os.Exit(code)
	}
}
