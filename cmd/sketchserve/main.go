// sketchserve serves distance queries over HTTP from a persisted sketch
// set — the paper's query model as a network service: the build happens
// once (cmd/distsketch -saveset), and this process loads the envelope,
// keeps every sketch decoded in memory, and answers estimates from the
// sketches alone.
//
// Typical flow:
//
//	distsketch -family geometric -n 1024 -kind landmark -eps 0.25 \
//	    -saveset net.dsk -save net.edges
//	sketchserve -set net.dsk -graph net.edges -addr :7600
//
//	curl 'localhost:7600/query?u=3&v=900'
//	curl -X POST localhost:7600/query -d '{"pairs":[{"u":0,"v":9},{"u":4,"v":7}]}'
//	curl -s localhost:7600/sketch/3 | xxd | head
//	curl localhost:7600/stats
//	curl -X POST localhost:7600/update-edge -d '{"u":12,"v":80,"weight":3}'
//
// -graph is optional; without it the server cannot apply /update-edge
// repairs (it needs the live topology) but serves queries normally.
// Note that /update-edge mutates the served set and the server does no
// authentication: expose it to untrusted clients only behind your own
// auth or network controls, or omit -graph to run read-only.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"distsketch"
	"distsketch/internal/serve"
)

func main() {
	setPath := flag.String("set", "", "sketch-set envelope to serve (required; see distsketch -saveset)")
	graphPath := flag.String("graph", "", "edge-list topology, enables POST /update-edge")
	addr := flag.String("addr", ":7600", "listen address")
	maxBatch := flag.Int("maxbatch", serve.DefaultMaxBatch, "max pairs per batched POST /query")
	flag.Parse()

	if *setPath == "" {
		fmt.Fprintln(os.Stderr, "sketchserve: -set is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*setPath)
	if err != nil {
		log.Fatalf("sketchserve: %v", err)
	}
	set, err := distsketch.ReadSketchSet(f)
	f.Close()
	if err != nil {
		log.Fatalf("sketchserve: loading %s: %v", *setPath, err)
	}

	var g *distsketch.Graph
	if *graphPath != "" {
		gf, err := os.Open(*graphPath)
		if err != nil {
			log.Fatalf("sketchserve: %v", err)
		}
		g, err = distsketch.ReadGraph(gf)
		gf.Close()
		if err != nil {
			log.Fatalf("sketchserve: loading %s: %v", *graphPath, err)
		}
	}

	srv, err := serve.New(set, serve.Options{Graph: g, MaxBatch: *maxBatch})
	if err != nil {
		log.Fatalf("sketchserve: %v", err)
	}
	// MeanSketchWords answers from the envelope's directory for a lazily
	// loaded (version-2) set, so this log line does not force any label
	// decodes — startup stays an O(n) directory scan.
	log.Printf("sketchserve: serving %s (%d nodes, kind=%s, mean sketch %.1f words, envelope v%d, %d/%d sketches decoded) on %s",
		*setPath, set.N(), set.Kind(), set.MeanSketchWords(), set.EnvelopeVersion(), set.DecodedSketches(), set.N(), *addr)
	if g == nil {
		log.Printf("sketchserve: no -graph given; POST /update-edge disabled")
	}
	// Explicit timeouts: a server for untrusted clients must not let a
	// dribbled request pin a connection forever (slowloris).
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Fatal(hs.ListenAndServe())
}
