// sketchbench runs the per-theorem reproduction experiments (E1–E12,
// DESIGN.md §4) and prints their tables — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	sketchbench                 # all experiments, quick scale
//	sketchbench -scale full     # the EXPERIMENTS.md configuration
//	sketchbench -exp E6,E10     # a subset
//	sketchbench -json bench.json # also emit per-run wall-clock JSON
//
// The -json report exists so successive PRs can track the performance
// trajectory: commit the output as BENCH_<rev>.json and diff the
// per-experiment seconds across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"distsketch/internal/experiments"
)

// benchReport is the -json output schema.
type benchReport struct {
	Scale        string     `json:"scale"`
	GoVersion    string     `json:"go_version"`
	GOMAXPROCS   int        `json:"gomaxprocs"`
	Experiments  []benchRun `json:"experiments"`
	TotalSeconds float64    `json:"total_seconds"`
	OK           bool       `json:"ok"`
}

// benchRun is one experiment's wall-clock measurement.
type benchRun struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	OK      bool    `json:"ok"`
}

func main() {
	scale := flag.String("scale", "quick", "sweep scale: quick | full")
	exp := flag.String("exp", "all", "comma-separated experiment IDs (E1..E12) or 'all'")
	jsonPath := flag.String("json", "", "write per-run wall-clock JSON to this file ('-' for stdout)")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}

	report := benchReport{
		Scale:      *scale,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OK:         true,
	}
	run := func(name string, tab *experiments.Table, took time.Duration) {
		fmt.Println(tab.String())
		fmt.Printf("(%s)\n\n", took.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, benchRun{
			Name: name, Seconds: took.Seconds(), OK: tab.OK(),
		})
		if !tab.OK() {
			report.OK = false
		}
	}

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	cfg := experiments.NewConfig(sc)
	total := time.Now()
	for _, name := range names {
		name = strings.TrimSpace(name)
		f := experiments.ByName(name)
		if f == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		run(name, f(cfg), time.Since(start))
	}
	report.TotalSeconds = time.Since(total).Seconds()
	if *exp == "all" {
		fmt.Printf("total: %s\n", time.Duration(report.TotalSeconds*float64(time.Second)).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, &report); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if !report.OK {
		fmt.Fprintln(os.Stderr, "some paper bounds were violated")
		os.Exit(1)
	}
}

func writeReport(path string, r *benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
