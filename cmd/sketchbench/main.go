// sketchbench runs the per-theorem reproduction experiments (E1–E12,
// DESIGN.md §4) and prints their tables — the data behind EXPERIMENTS.md.
// It also measures the facade's serving hot path: the decode-once query
// (ParseSketch + Sketch.Estimate) against the byte-level Estimate that
// re-decodes per call, and the HTTP serving layer's throughput
// (sketchserve single GET /query vs batched POST /query on loopback).
//
// Usage:
//
//	sketchbench                 # all experiments, quick scale
//	sketchbench -scale full     # the EXPERIMENTS.md configuration
//	sketchbench -exp E6,E10     # a subset
//	sketchbench -json bench.json # also emit per-run wall-clock JSON
//
// The -json report exists so successive PRs can track the performance
// trajectory: commit the output as BENCH_<rev>.json and diff the
// per-experiment seconds (and query-path nanoseconds) across revisions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"distsketch"
	"distsketch/internal/experiments"
	"distsketch/internal/serve"
)

// benchReport is the -json output schema.
type benchReport struct {
	Scale        string           `json:"scale"`
	GoVersion    string           `json:"go_version"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	Experiments  []benchRun       `json:"experiments"`
	QueryPath    []queryPathRun   `json:"query_path,omitempty"`
	ServerPath   []serverPathRun  `json:"server_path,omitempty"`
	LoadPath     []loadPathRun    `json:"load_path,omitempty"`
	RoutedPath   []routedPathRun  `json:"routed_path,omitempty"`
	RouterPath   []routerFaultRun `json:"router_path,omitempty"`
	ChurnPath    []churnPathRun   `json:"churn_path,omitempty"`
	TotalSeconds float64          `json:"total_seconds"`
	OK           bool             `json:"ok"`
}

// benchRun is one experiment's wall-clock measurement.
type benchRun struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	OK      bool    `json:"ok"`
}

// queryPathRun compares the decode-once query path (Sketch.Estimate on
// pre-parsed sketches) against the byte-level path (Estimate re-decoding
// both blobs per call) for one sketch kind.
type queryPathRun struct {
	Kind        string  `json:"kind"`
	DecodedNs   float64 `json:"decoded_ns_per_query"`
	ByteLevelNs float64 `json:"byte_level_ns_per_query"`
	Speedup     float64 `json:"speedup"`
}

// loadPathRun measures set startup for one (kind, envelope version,
// backing) triple: load latency and allocated bytes per label. Version
// 1 decodes every label eagerly; version 2 scans the directory and
// defers label decoding to first touch. Backing "heap" is the copying
// ReadSketchSet path, "mmap" is OpenSketchSet mapping the envelope
// file and touching no payload byte — the startup mode for sets larger
// than RAM.
type loadPathRun struct {
	Kind          string  `json:"kind"`
	Version       int     `json:"envelope_version"`
	Backing       string  `json:"backing"`
	EnvelopeBytes int     `json:"envelope_bytes"`
	NsPerLabel    float64 `json:"read_ns_per_label"`
	AllocPerLabel float64 `json:"alloc_bytes_per_label"`
}

// routedPathRun compares serving topologies on identical single-query
// traffic: one server over the full set versus a router fanning out to
// a 4-shard fleet (≤ 2 shards per query). The gap is the price of the
// extra network hop; the win is that no single server needs the whole
// set resident.
type routedPathRun struct {
	Kind      string  `json:"kind"`
	Shards    int     `json:"shards"`
	DirectQPS float64 `json:"direct_queries_per_second"`
	RoutedQPS float64 `json:"routed_queries_per_second"`
	Overhead  float64 `json:"routing_overhead"`
}

// routerFaultRun measures the replicated router's availability under
// one injected fault scenario: how many queries of a fixed mixed
// workload answered versus degraded, the answered-path p99 latency,
// and the failover counters the router accumulated. With one of two
// replicas down, availability staying at 1.0 is the point of the
// replica sets; with a whole replica set down, availability is the
// fraction of pairs that avoid the dead range — the same per-pair
// degradation a single dead shard has always had. The two slow-replica
// rows price hedging: the same delayed replica with hedging on and
// off, the p99 gap being the tail the hedge removes.
type routerFaultRun struct {
	Scenario     string  `json:"scenario"`
	Shards       int     `json:"shards"`
	Replicas     int     `json:"replicas"`
	Queries      int     `json:"queries"`
	Answered     int     `json:"answered"`
	Degraded     int     `json:"degraded"`
	Availability float64 `json:"availability"`
	P99Ms        float64 `json:"answered_p99_ms"`
	Retries      int64   `json:"retries"`
	HedgesFired  int64   `json:"hedges_fired"`
	HedgesWon    int64   `json:"hedges_won"`
}

// churnPathRun measures the batched repair pipeline under sustained
// churn for one sketch kind: the same rounds of weight decreases applied
// as whole batches (one clone-repair-verify per round), as per-edge
// repairs (one cycle per change), and as full rebuilds. The batched
// column winning is the point of the unified pipeline: the verification
// pass is paid per batch, not per edge.
type churnPathRun struct {
	Kind                  string  `json:"kind"`
	Rounds                int     `json:"rounds"`
	BatchEdges            int     `json:"batch_edges"`
	BatchedSeconds        float64 `json:"batched_seconds"`
	PerEdgeSeconds        float64 `json:"per_edge_seconds"`
	RebuildSeconds        float64 `json:"rebuild_seconds"`
	BatchedEdgesPerSecond float64 `json:"batched_edges_per_second"`
	BatchSpeedup          float64 `json:"batched_vs_per_edge_speedup"`
	RebuildSpeedup        float64 `json:"batched_vs_rebuild_speedup"`
}

// serverPathRun measures sketchserve's HTTP query throughput for one
// sketch kind: one estimate per GET /query versus many pairs per
// batched POST /query (amortizing the per-request handler overhead).
type serverPathRun struct {
	Kind       string  `json:"kind"`
	SingleQPS  float64 `json:"single_queries_per_second"`
	BatchedQPS float64 `json:"batched_queries_per_second"`
	BatchSize  int     `json:"batch_size"`
	Amortize   float64 `json:"batching_speedup"`
}

func main() {
	scale := flag.String("scale", "quick", "sweep scale: quick | full")
	exp := flag.String("exp", "all", "comma-separated experiment IDs (E1..E12) or 'all'")
	jsonPath := flag.String("json", "", "write per-run wall-clock JSON to this file ('-' for stdout)")
	queryBench := flag.Bool("querybench", true, "measure the decode-once vs byte-level query path per kind")
	serveBench := flag.Bool("servebench", true, "measure sketchserve HTTP query throughput (single vs batched)")
	loadBench := flag.Bool("loadbench", true, "measure set startup (heap copy vs mmap open) and routed vs direct query throughput")
	churnBench := flag.Bool("churnbench", false, "measure batched vs per-edge vs rebuild repair under sustained churn (rebuilds every kind repeatedly; opt-in)")
	routerBench := flag.Bool("routerbench", false, "measure routed availability under replica faults and the hedge's tail win (injects faults and delays; opt-in)")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}

	report := benchReport{
		Scale:      *scale,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OK:         true,
	}
	run := func(name string, tab *experiments.Table, took time.Duration) {
		fmt.Println(tab.String())
		fmt.Printf("(%s)\n\n", took.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, benchRun{
			Name: name, Seconds: took.Seconds(), OK: tab.OK(),
		})
		if !tab.OK() {
			report.OK = false
		}
	}

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	cfg := experiments.NewConfig(sc)
	total := time.Now()
	for _, name := range names {
		name = strings.TrimSpace(name)
		f := experiments.ByName(name)
		if f == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		run(name, f(cfg), time.Since(start))
	}
	if *queryBench {
		report.QueryPath = runQueryBench()
		fmt.Println("query path: decode-once (Sketch.Estimate) vs byte-level (Estimate) on 256-node geometric, 200k queries")
		fmt.Printf("%-10s  %14s  %14s  %8s\n", "kind", "decoded ns/q", "bytes ns/q", "speedup")
		for _, r := range report.QueryPath {
			fmt.Printf("%-10s  %14.1f  %14.1f  %7.1fx\n", r.Kind, r.DecodedNs, r.ByteLevelNs, r.Speedup)
		}
		fmt.Println()
	}
	if *loadBench {
		report.LoadPath = runLoadBench()
		fmt.Println("load path: set startup on 256-node geometric envelopes (v1 eager vs v2 lazy; heap copy vs mmap open)")
		fmt.Printf("%-10s  %3s  %-7s  %12s  %14s  %16s\n", "kind", "ver", "backing", "bytes", "ns/label", "alloc B/label")
		for _, r := range report.LoadPath {
			fmt.Printf("%-10s  v%-2d  %-7s  %12d  %14.0f  %16.0f\n", r.Kind, r.Version, r.Backing, r.EnvelopeBytes, r.NsPerLabel, r.AllocPerLabel)
		}
		fmt.Println()
		report.RoutedPath = runRouteBench()
		fmt.Println("routed path: single-query throughput, one full server vs a 4-shard fleet behind the router")
		fmt.Printf("%-10s  %6s  %14s  %14s  %9s\n", "kind", "shards", "direct q/s", "routed q/s", "overhead")
		for _, r := range report.RoutedPath {
			fmt.Printf("%-10s  %6d  %14.0f  %14.0f  %8.1fx\n", r.Kind, r.Shards, r.DirectQPS, r.RoutedQPS, r.Overhead)
		}
		fmt.Println()
	}
	if *routerBench {
		report.RouterPath = runRouterBench()
		fmt.Println("router path: availability under replica faults, 2 shards x 2 replicas on 256-node geometric (landmark)")
		fmt.Printf("%-22s  %7s  %8s  %8s  %6s  %11s  %8s  %7s  %6s\n",
			"scenario", "queries", "answered", "degraded", "avail", "p99 ms", "retries", "hedges", "won")
		for _, r := range report.RouterPath {
			fmt.Printf("%-22s  %7d  %8d  %8d  %6.3f  %11.2f  %8d  %7d  %6d\n",
				r.Scenario, r.Queries, r.Answered, r.Degraded, r.Availability, r.P99Ms, r.Retries, r.HedgesFired, r.HedgesWon)
		}
		fmt.Println()
	}
	if *churnBench {
		report.ChurnPath = runChurnBench()
		fmt.Println("churn path: batched vs per-edge vs rebuild repair on 256-node geometric (4 rounds x 16 halved edges)")
		fmt.Printf("%-10s  %10s  %10s  %10s  %12s  %10s  %10s\n",
			"kind", "batched s", "per-edge s", "rebuild s", "edges/s", "vs edge", "vs rebuild")
		for _, r := range report.ChurnPath {
			fmt.Printf("%-10s  %10.3f  %10.3f  %10.3f  %12.0f  %9.1fx  %9.1fx\n",
				r.Kind, r.BatchedSeconds, r.PerEdgeSeconds, r.RebuildSeconds,
				r.BatchedEdgesPerSecond, r.BatchSpeedup, r.RebuildSpeedup)
		}
		fmt.Println()
	}
	if *serveBench {
		report.ServerPath = runServeBench()
		fmt.Println("server path: sketchserve HTTP throughput on 256-node geometric (loopback httptest)")
		fmt.Printf("%-10s  %14s  %16s  %8s\n", "kind", "single q/s", "batched q/s", "amortize")
		for _, r := range report.ServerPath {
			fmt.Printf("%-10s  %14.0f  %16.0f  %7.1fx\n", r.Kind, r.SingleQPS, r.BatchedQPS, r.Amortize)
		}
		fmt.Println()
	}
	report.TotalSeconds = time.Since(total).Seconds()
	if *exp == "all" {
		fmt.Printf("total: %s\n", time.Duration(report.TotalSeconds*float64(time.Second)).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, &report); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if !report.OK {
		fmt.Fprintln(os.Stderr, "some paper bounds were violated")
		os.Exit(1)
	}
}

// runQueryBench times the facade's two query paths over every sketch
// kind: parse-once-then-estimate versus re-decoding both blobs per call.
// The gap is the cost the decode-once redesign removes from the serving
// hot path.
func runQueryBench() []queryPathRun {
	const (
		n       = 256
		queries = 200_000
	)
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 1, 100, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "querybench graph: %v\n", err)
		os.Exit(1)
	}
	var out []queryPathRun
	for _, kind := range []distsketch.Kind{
		distsketch.KindTZ, distsketch.KindLandmark, distsketch.KindCDG, distsketch.KindGraceful,
	} {
		set, err := distsketch.Build(g, distsketch.Options{Kind: kind, K: 3, Eps: 0.25, Seed: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "querybench %s: %v\n", kind, err)
			os.Exit(1)
		}
		blobs := make([][]byte, n)
		parsed := make([]*distsketch.Sketch, n)
		for u := 0; u < n; u++ {
			blobs[u] = set.SketchBytes(u)
			parsed[u], err = distsketch.ParseSketch(blobs[u])
			if err != nil {
				fmt.Fprintf(os.Stderr, "querybench %s parse: %v\n", kind, err)
				os.Exit(1)
			}
		}
		pair := func(i int) (int, int) { return i % n, (i*37 + 11) % n }

		// Best of five passes per path: one pass is at the mercy of
		// scheduler noise on a shared machine, and the minimum is the
		// standard estimator for the code's actual cost.
		best := func(f func()) time.Duration {
			bestTook := time.Duration(1<<63 - 1)
			for rep := 0; rep < 5; rep++ {
				start := time.Now()
				f()
				if took := time.Since(start); took < bestTook {
					bestTook = took
				}
			}
			return bestTook
		}
		decoded := best(func() {
			for i := 0; i < queries; i++ {
				u, v := pair(i)
				if _, err := parsed[u].Estimate(parsed[v]); err != nil {
					fmt.Fprintf(os.Stderr, "querybench %s: %v\n", kind, err)
					os.Exit(1)
				}
			}
		})
		byteLevel := best(func() {
			for i := 0; i < queries; i++ {
				u, v := pair(i)
				if _, err := distsketch.Estimate(blobs[u], blobs[v]); err != nil {
					fmt.Fprintf(os.Stderr, "querybench %s: %v\n", kind, err)
					os.Exit(1)
				}
			}
		})

		out = append(out, queryPathRun{
			Kind:        string(kind),
			DecodedNs:   float64(decoded.Nanoseconds()) / queries,
			ByteLevelNs: float64(byteLevel.Nanoseconds()) / queries,
			Speedup:     float64(byteLevel.Nanoseconds()) / float64(decoded.Nanoseconds()),
		})
	}
	return out
}

// runLoadBench times ReadSketchSet for both envelope versions over
// every sketch kind, reporting per-label latency and allocated bytes.
// The gap is what the version-2 directory removes from serving startup:
// the eager path pays one full label decode per node, the lazy path an
// O(n) directory scan with zero-copy blob slices.
func runLoadBench() []loadPathRun {
	const (
		n    = 256
		reps = 50
	)
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 1, 100, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadbench graph: %v\n", err)
		os.Exit(1)
	}
	var out []loadPathRun
	for _, kind := range []distsketch.Kind{
		distsketch.KindTZ, distsketch.KindLandmark, distsketch.KindCDG, distsketch.KindGraceful,
	} {
		set, err := distsketch.Build(g, distsketch.Options{Kind: kind, K: 3, Eps: 0.25, Seed: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadbench %s: %v\n", kind, err)
			os.Exit(1)
		}
		for _, version := range []int{distsketch.SetVersion1, distsketch.SetVersion2} {
			var env bytes.Buffer
			if _, err := set.WriteToVersion(&env, version); err != nil {
				fmt.Fprintf(os.Stderr, "loadbench %s v%d: %v\n", kind, version, err)
				os.Exit(1)
			}
			blob := env.Bytes()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			var keep *distsketch.SketchSet
			for r := 0; r < reps; r++ {
				keep, err = distsketch.ReadSketchSet(bytes.NewReader(blob))
				if err != nil {
					fmt.Fprintf(os.Stderr, "loadbench %s v%d: %v\n", kind, version, err)
					os.Exit(1)
				}
			}
			took := time.Since(start)
			runtime.ReadMemStats(&after)
			runtime.KeepAlive(keep)
			out = append(out, loadPathRun{
				Kind:          string(kind),
				Version:       version,
				Backing:       "heap",
				EnvelopeBytes: len(blob),
				NsPerLabel:    float64(took.Nanoseconds()) / float64(reps*n),
				AllocPerLabel: float64(after.TotalAlloc-before.TotalAlloc) / float64(reps*n),
			})
		}

		// The mmap row: same version-2 envelope, opened from a file
		// with zero payload copies. Allocations per label should be
		// near zero — only the directory scan and the set header.
		var env bytes.Buffer
		if _, err := set.WriteToVersion(&env, distsketch.SetVersion2); err != nil {
			fmt.Fprintf(os.Stderr, "loadbench %s mmap: %v\n", kind, err)
			os.Exit(1)
		}
		path := filepath.Join(os.TempDir(), fmt.Sprintf("loadbench-%s-%d.dsk", kind, os.Getpid()))
		if err := os.WriteFile(path, env.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadbench %s mmap: %v\n", kind, err)
			os.Exit(1)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		backing := ""
		for r := 0; r < reps; r++ {
			opened, err := distsketch.OpenSketchSet(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadbench %s mmap: %v\n", kind, err)
				os.Exit(1)
			}
			backing = opened.Backing()
			opened.Close()
		}
		took := time.Since(start)
		runtime.ReadMemStats(&after)
		os.Remove(path)
		out = append(out, loadPathRun{
			Kind:          string(kind),
			Version:       distsketch.SetVersion2,
			Backing:       backing,
			EnvelopeBytes: env.Len(),
			NsPerLabel:    float64(took.Nanoseconds()) / float64(reps*n),
			AllocPerLabel: float64(after.TotalAlloc-before.TotalAlloc) / float64(reps*n),
		})
	}
	return out
}

// runRouteBench hammers the same single-query traffic at a full server
// and at a router fronting a 4-shard fleet (every shard mmap-backed),
// reporting both throughputs. Queries mix same- and cross-shard pairs
// the way real traffic would.
func runRouteBench() []routedPathRun {
	const (
		n       = 256
		shards  = 4
		queries = 2000
	)
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 1, 100, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "routebench graph: %v\n", err)
		os.Exit(1)
	}
	pair := func(i int) (int, int) { return i % n, (i*37 + 11) % n }
	hammer := func(base string, client *http.Client) float64 {
		start := time.Now()
		for i := 0; i < queries; i++ {
			u, v := pair(i)
			resp, err := client.Get(fmt.Sprintf("%s/query?u=%d&v=%d", base, u, v))
			if err != nil {
				fmt.Fprintf(os.Stderr, "routebench: %v\n", err)
				os.Exit(1)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "routebench: status %d\n", resp.StatusCode)
				os.Exit(1)
			}
		}
		return float64(queries) / time.Since(start).Seconds()
	}
	var out []routedPathRun
	for _, kind := range []distsketch.Kind{distsketch.KindTZ, distsketch.KindLandmark} {
		set, err := distsketch.Build(g, distsketch.Options{Kind: kind, K: 3, Eps: 0.25, Seed: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "routebench %s: %v\n", kind, err)
			os.Exit(1)
		}
		fail := func(err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "routebench %s: %v\n", kind, err)
				os.Exit(1)
			}
		}

		direct, err := serve.New(set, serve.Options{})
		fail(err)
		directTS := httptest.NewServer(direct.Handler())

		dir, err := os.MkdirTemp("", "routebench")
		fail(err)
		paths, err := distsketch.SaveShards(dir, set, distsketch.EvenShardRanges(n, shards))
		fail(err)
		routerShards := make([]serve.RouterShard, len(paths))
		var cleanup []func()
		for i, p := range paths {
			shard, err := distsketch.OpenSketchSet(p)
			fail(err)
			srv, err := serve.New(shard, serve.Options{})
			fail(err)
			ts := httptest.NewServer(srv.Handler())
			lo, hi := shard.NodeRange()
			routerShards[i] = serve.RouterShard{Base: ts.URL, Range: distsketch.ShardRange{Lo: lo, Hi: hi}}
			cleanup = append(cleanup, ts.Close, func() { shard.Close() })
		}
		router, err := serve.NewRouter(routerShards, serve.RouterOptions{})
		fail(err)
		routerTS := httptest.NewServer(router.Handler())

		directQPS := hammer(directTS.URL, directTS.Client())
		routedQPS := hammer(routerTS.URL, routerTS.Client())

		routerTS.Close()
		for _, f := range cleanup {
			f()
		}
		directTS.Close()
		os.RemoveAll(dir)

		out = append(out, routedPathRun{
			Kind:      string(kind),
			Shards:    shards,
			DirectQPS: directQPS,
			RoutedQPS: routedQPS,
			Overhead:  directQPS / routedQPS,
		})
	}
	return out
}

// benchFaultTransport injects per-host faults into the router's
// upstream client: down hosts refuse connections, delayed hosts answer
// late (respecting cancellation, so a hedge win tears the slow request
// down).
type benchFaultTransport struct {
	mu    sync.Mutex
	down  map[string]bool
	delay map[string]time.Duration
}

func (ft *benchFaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	isDown := ft.down[req.URL.Host]
	d := ft.delay[req.URL.Host]
	ft.mu.Unlock()
	if isDown {
		return nil, fmt.Errorf("bench fault: %s is down", req.URL.Host)
	}
	if d > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d):
		}
	}
	return http.DefaultTransport.RoundTrip(req)
}

// runRouterBench measures what the replica sets buy: a 2-shard fleet
// with 2 replicas per shard is hammered with mixed same- and
// cross-shard traffic under injected faults. One replica down must not
// cost availability (failover covers it); a whole replica set down
// degrades exactly the pairs that touch it; and a slow replica's tail
// latency is priced with hedging on and off.
func runRouterBench() []routerFaultRun {
	const (
		n        = 256
		shards   = 2
		replicas = 2
	)
	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "routerbench: %v\n", err)
			os.Exit(1)
		}
	}
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 1, 100, 1)
	fail(err)
	set, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 1})
	fail(err)
	dir, err := os.MkdirTemp("", "routerbench")
	fail(err)
	defer os.RemoveAll(dir)
	paths, err := distsketch.SaveShards(dir, set, distsketch.EvenShardRanges(n, shards))
	fail(err)

	// replicaHosts[s][r] is replica r of shard s; each replica is an
	// independent server over the same shard envelope.
	routerShards := make([]serve.RouterShard, shards)
	replicaHosts := make([][]string, shards)
	for s, p := range paths {
		var bases []string
		for r := 0; r < replicas; r++ {
			shard, err := distsketch.OpenSketchSet(p)
			fail(err)
			defer shard.Close()
			srv, err := serve.New(shard, serve.Options{})
			fail(err)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			bases = append(bases, ts.URL)
			replicaHosts[s] = append(replicaHosts[s], strings.TrimPrefix(ts.URL, "http://"))
		}
		lo, hi := 0, 0
		{
			shard, err := distsketch.OpenSketchSet(p)
			fail(err)
			lo, hi = shard.NodeRange()
			shard.Close()
		}
		routerShards[s] = serve.RouterShard{Replicas: bases, Range: distsketch.ShardRange{Lo: lo, Hi: hi}}
	}

	pair := func(i int) (int, int) { return i % n, (i*37 + 11) % n }
	hammer := func(base string, client *http.Client, queries int) (answered, degraded int, p99ms float64) {
		var lat []time.Duration
		for i := 0; i < queries; i++ {
			u, v := pair(i)
			start := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/query?u=%d&v=%d", base, u, v))
			if err != nil {
				degraded++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				degraded++
				continue
			}
			answered++
			lat = append(lat, time.Since(start))
		}
		if len(lat) > 0 {
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p99ms = float64(lat[len(lat)*99/100].Nanoseconds()) / 1e6
		}
		return answered, degraded, p99ms
	}

	type scenario struct {
		name    string
		queries int
		hedge   time.Duration // 0 = default on, negative = off
		prep    func(ft *benchFaultTransport)
	}
	scenarios := []scenario{
		{name: "baseline", queries: 1500, prep: func(ft *benchFaultTransport) {}},
		{name: "one-replica-down", queries: 1500, prep: func(ft *benchFaultTransport) {
			ft.down[replicaHosts[0][0]] = true
		}},
		{name: "replica-set-down", queries: 1500, prep: func(ft *benchFaultTransport) {
			ft.down[replicaHosts[0][0]] = true
			ft.down[replicaHosts[0][1]] = true
		}},
		{name: "slow-replica-hedged", queries: 300, hedge: 2 * time.Millisecond, prep: func(ft *benchFaultTransport) {
			ft.delay[replicaHosts[0][0]] = 15 * time.Millisecond
		}},
		{name: "slow-replica-no-hedge", queries: 300, hedge: -1, prep: func(ft *benchFaultTransport) {
			ft.delay[replicaHosts[0][0]] = 15 * time.Millisecond
		}},
	}

	var out []routerFaultRun
	for _, sc := range scenarios {
		ft := &benchFaultTransport{down: map[string]bool{}, delay: map[string]time.Duration{}}
		sc.prep(ft)
		router, err := serve.NewRouter(routerShards, serve.RouterOptions{
			Transport:    ft,
			HedgeDelay:   sc.hedge,
			RetryBackoff: time.Millisecond,
		})
		fail(err)
		routerTS := httptest.NewServer(router.Handler())
		answered, degraded, p99 := hammer(routerTS.URL, routerTS.Client(), sc.queries)
		var stats serve.RouterStatsReply
		resp, err := routerTS.Client().Get(routerTS.URL + "/stats")
		fail(err)
		fail(json.NewDecoder(resp.Body).Decode(&stats))
		resp.Body.Close()
		routerTS.Close()
		router.Close()
		out = append(out, routerFaultRun{
			Scenario:     sc.name,
			Shards:       shards,
			Replicas:     replicas,
			Queries:      sc.queries,
			Answered:     answered,
			Degraded:     degraded,
			Availability: float64(answered) / float64(sc.queries),
			P99Ms:        p99,
			Retries:      stats.Retries,
			HedgesFired:  stats.HedgesFired,
			HedgesWon:    stats.HedgesWon,
		})
	}
	return out
}

// churnRound is one precomputed round of churn: the batch's change
// records, the topology after the whole batch, and the chain of
// intermediate topologies the per-edge path needs (each single-edge
// repair must be told the graph as of that change only).
type churnRound struct {
	changes []distsketch.EdgeChange
	next    *distsketch.Graph
	inter   []*distsketch.Graph
}

// churnRounds precomputes the churn schedule outside the timers: rounds
// of batchEdges distinct weight halvings, each round applied on top of
// the previous one.
func churnRounds(g *distsketch.Graph, rounds, batchEdges int) []churnRound {
	out := make([]churnRound, 0, rounds)
	pick := func(i, salt int) int { return (i*2654435761 + salt*40503) % g.M() }
	cur := g
	for r := 0; r < rounds; r++ {
		seen := map[[2]int]bool{}
		var changes []distsketch.EdgeChange
		for i := 0; len(changes) < batchEdges && i < 4*g.M(); i++ {
			e := cur.Edges()[pick(i, r)]
			key := [2]int{e.U, e.V}
			if seen[key] || e.Weight < 2 {
				continue
			}
			seen[key] = true
			changes = append(changes, distsketch.EdgeChange{U: e.U, V: e.V, PrevWeight: e.Weight})
		}
		halveOne := func(base *distsketch.Graph, u, v int) *distsketch.Graph {
			nb := distsketch.NewGraphBuilder(base.N())
			for _, x := range base.Edges() {
				w := x.Weight
				if x.U == u && x.V == v {
					w = w / 2
				}
				nb.AddEdge(x.U, x.V, w)
			}
			ng, err := nb.Freeze()
			if err != nil {
				fmt.Fprintf(os.Stderr, "churnbench graph: %v\n", err)
				os.Exit(1)
			}
			return ng
		}
		inter := make([]*distsketch.Graph, len(changes))
		gg := cur
		for i, c := range changes {
			gg = halveOne(gg, c.U, c.V)
			inter[i] = gg
		}
		out = append(out, churnRound{changes: changes, next: gg, inter: inter})
		cur = gg
	}
	return out
}

// runChurnBench times the three maintenance strategies over identical
// churn schedules for every sketch kind. All repairs are exact (the
// repaired labels are byte-identical to the rebuild's), so the columns
// compare equal-quality outcomes.
func runChurnBench() []churnPathRun {
	const (
		n          = 256
		rounds     = 4
		batchEdges = 16
	)
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 10, 100, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "churnbench graph: %v\n", err)
		os.Exit(1)
	}
	schedule := churnRounds(g, rounds, batchEdges)
	var out []churnPathRun
	for _, kind := range []distsketch.Kind{
		distsketch.KindTZ, distsketch.KindLandmark, distsketch.KindCDG, distsketch.KindGraceful,
	} {
		opts := distsketch.Options{Kind: kind, K: 3, Eps: 0.25, Seed: 1}
		set, err := distsketch.Build(g, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "churnbench %s: %v\n", kind, err)
			os.Exit(1)
		}
		batched := set.Clone()
		perEdge := set.Clone()
		fail := func(err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "churnbench %s: %v\n", kind, err)
				os.Exit(1)
			}
		}
		var tBatch, tSingle, tRebuild time.Duration
		edges := 0
		for _, round := range schedule {
			edges += len(round.changes)
			start := time.Now()
			_, err := batched.UpdateEdges(round.next, round.changes)
			tBatch += time.Since(start)
			fail(err)

			start = time.Now()
			for i, c := range round.changes {
				_, err := perEdge.UpdateEdges(round.inter[i], []distsketch.EdgeChange{c})
				fail(err)
			}
			tSingle += time.Since(start)

			start = time.Now()
			_, err = distsketch.Build(round.next, opts)
			tRebuild += time.Since(start)
			fail(err)
		}
		out = append(out, churnPathRun{
			Kind:                  string(kind),
			Rounds:                rounds,
			BatchEdges:            batchEdges,
			BatchedSeconds:        tBatch.Seconds(),
			PerEdgeSeconds:        tSingle.Seconds(),
			RebuildSeconds:        tRebuild.Seconds(),
			BatchedEdgesPerSecond: float64(edges) / tBatch.Seconds(),
			BatchSpeedup:          tSingle.Seconds() / tBatch.Seconds(),
			RebuildSpeedup:        tRebuild.Seconds() / tBatch.Seconds(),
		})
	}
	return out
}

// runServeBench measures the serving layer end to end: a loopback
// httptest server over a built set, hammered with single GET /query
// requests and with batched POST /query requests. The gap between the
// two is the per-request handler overhead batching amortizes away.
func runServeBench() []serverPathRun {
	const (
		n         = 256
		singleQ   = 3000
		batchSize = 256
		batches   = 100
	)
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 1, 100, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "servebench graph: %v\n", err)
		os.Exit(1)
	}
	pair := func(i int) (int, int) { return i % n, (i*37 + 11) % n }
	var out []serverPathRun
	for _, kind := range []distsketch.Kind{distsketch.KindTZ, distsketch.KindLandmark} {
		set, err := distsketch.Build(g, distsketch.Options{Kind: kind, K: 3, Eps: 0.25, Seed: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench %s: %v\n", kind, err)
			os.Exit(1)
		}
		srv, err := serve.New(set, serve.Options{Graph: g})
		if err != nil {
			fmt.Fprintf(os.Stderr, "servebench %s: %v\n", kind, err)
			os.Exit(1)
		}
		ts := httptest.NewServer(srv.Handler())
		client := ts.Client()

		start := time.Now()
		for i := 0; i < singleQ; i++ {
			u, v := pair(i)
			resp, err := client.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, u, v))
			if err != nil {
				fmt.Fprintf(os.Stderr, "servebench %s: %v\n", kind, err)
				os.Exit(1)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "servebench %s: status %d\n", kind, resp.StatusCode)
				os.Exit(1)
			}
		}
		singleQPS := float64(singleQ) / time.Since(start).Seconds()

		var body strings.Builder
		body.WriteString(`{"pairs":[`)
		for i := 0; i < batchSize; i++ {
			if i > 0 {
				body.WriteString(",")
			}
			u, v := pair(i)
			fmt.Fprintf(&body, `{"u":%d,"v":%d}`, u, v)
		}
		body.WriteString("]}")
		start = time.Now()
		for i := 0; i < batches; i++ {
			resp, err := client.Post(ts.URL+"/query", "application/json", strings.NewReader(body.String()))
			if err != nil {
				fmt.Fprintf(os.Stderr, "servebench %s: %v\n", kind, err)
				os.Exit(1)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "servebench %s: status %d\n", kind, resp.StatusCode)
				os.Exit(1)
			}
		}
		batchedQPS := float64(batchSize*batches) / time.Since(start).Seconds()
		ts.Close()

		out = append(out, serverPathRun{
			Kind: string(kind), SingleQPS: singleQPS, BatchedQPS: batchedQPS,
			BatchSize: batchSize, Amortize: batchedQPS / singleQPS,
		})
	}
	return out
}

func writeReport(path string, r *benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
