// sketchbench runs the per-theorem reproduction experiments (E1–E12,
// DESIGN.md §4) and prints their tables — the data behind EXPERIMENTS.md.
// It also measures the facade's serving hot path: the decode-once query
// (ParseSketch + Sketch.Estimate) against the byte-level Estimate that
// re-decodes per call.
//
// Usage:
//
//	sketchbench                 # all experiments, quick scale
//	sketchbench -scale full     # the EXPERIMENTS.md configuration
//	sketchbench -exp E6,E10     # a subset
//	sketchbench -json bench.json # also emit per-run wall-clock JSON
//
// The -json report exists so successive PRs can track the performance
// trajectory: commit the output as BENCH_<rev>.json and diff the
// per-experiment seconds (and query-path nanoseconds) across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"distsketch"
	"distsketch/internal/experiments"
)

// benchReport is the -json output schema.
type benchReport struct {
	Scale        string         `json:"scale"`
	GoVersion    string         `json:"go_version"`
	GOMAXPROCS   int            `json:"gomaxprocs"`
	Experiments  []benchRun     `json:"experiments"`
	QueryPath    []queryPathRun `json:"query_path,omitempty"`
	TotalSeconds float64        `json:"total_seconds"`
	OK           bool           `json:"ok"`
}

// benchRun is one experiment's wall-clock measurement.
type benchRun struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	OK      bool    `json:"ok"`
}

// queryPathRun compares the decode-once query path (Sketch.Estimate on
// pre-parsed sketches) against the byte-level path (Estimate re-decoding
// both blobs per call) for one sketch kind.
type queryPathRun struct {
	Kind        string  `json:"kind"`
	DecodedNs   float64 `json:"decoded_ns_per_query"`
	ByteLevelNs float64 `json:"byte_level_ns_per_query"`
	Speedup     float64 `json:"speedup"`
}

func main() {
	scale := flag.String("scale", "quick", "sweep scale: quick | full")
	exp := flag.String("exp", "all", "comma-separated experiment IDs (E1..E12) or 'all'")
	jsonPath := flag.String("json", "", "write per-run wall-clock JSON to this file ('-' for stdout)")
	queryBench := flag.Bool("querybench", true, "measure the decode-once vs byte-level query path per kind")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}

	report := benchReport{
		Scale:      *scale,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		OK:         true,
	}
	run := func(name string, tab *experiments.Table, took time.Duration) {
		fmt.Println(tab.String())
		fmt.Printf("(%s)\n\n", took.Round(time.Millisecond))
		report.Experiments = append(report.Experiments, benchRun{
			Name: name, Seconds: took.Seconds(), OK: tab.OK(),
		})
		if !tab.OK() {
			report.OK = false
		}
	}

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	cfg := experiments.NewConfig(sc)
	total := time.Now()
	for _, name := range names {
		name = strings.TrimSpace(name)
		f := experiments.ByName(name)
		if f == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		run(name, f(cfg), time.Since(start))
	}
	if *queryBench {
		report.QueryPath = runQueryBench()
		fmt.Println("query path: decode-once (Sketch.Estimate) vs byte-level (Estimate) on 256-node geometric, 200k queries")
		fmt.Printf("%-10s  %14s  %14s  %8s\n", "kind", "decoded ns/q", "bytes ns/q", "speedup")
		for _, r := range report.QueryPath {
			fmt.Printf("%-10s  %14.1f  %14.1f  %7.1fx\n", r.Kind, r.DecodedNs, r.ByteLevelNs, r.Speedup)
		}
		fmt.Println()
	}
	report.TotalSeconds = time.Since(total).Seconds()
	if *exp == "all" {
		fmt.Printf("total: %s\n", time.Duration(report.TotalSeconds*float64(time.Second)).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, &report); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	if !report.OK {
		fmt.Fprintln(os.Stderr, "some paper bounds were violated")
		os.Exit(1)
	}
}

// runQueryBench times the facade's two query paths over every sketch
// kind: parse-once-then-estimate versus re-decoding both blobs per call.
// The gap is the cost the decode-once redesign removes from the serving
// hot path.
func runQueryBench() []queryPathRun {
	const (
		n       = 256
		queries = 200_000
	)
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 1, 100, 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "querybench graph: %v\n", err)
		os.Exit(1)
	}
	var out []queryPathRun
	for _, kind := range []distsketch.Kind{
		distsketch.KindTZ, distsketch.KindLandmark, distsketch.KindCDG, distsketch.KindGraceful,
	} {
		set, err := distsketch.Build(g, distsketch.Options{Kind: kind, K: 3, Eps: 0.25, Seed: 1})
		if err != nil {
			fmt.Fprintf(os.Stderr, "querybench %s: %v\n", kind, err)
			os.Exit(1)
		}
		blobs := make([][]byte, n)
		parsed := make([]*distsketch.Sketch, n)
		for u := 0; u < n; u++ {
			blobs[u] = set.SketchBytes(u)
			parsed[u], err = distsketch.ParseSketch(blobs[u])
			if err != nil {
				fmt.Fprintf(os.Stderr, "querybench %s parse: %v\n", kind, err)
				os.Exit(1)
			}
		}
		pair := func(i int) (int, int) { return i % n, (i*37 + 11) % n }

		start := time.Now()
		for i := 0; i < queries; i++ {
			u, v := pair(i)
			if _, err := parsed[u].Estimate(parsed[v]); err != nil {
				fmt.Fprintf(os.Stderr, "querybench %s: %v\n", kind, err)
				os.Exit(1)
			}
		}
		decoded := time.Since(start)

		start = time.Now()
		for i := 0; i < queries; i++ {
			u, v := pair(i)
			if _, err := distsketch.Estimate(blobs[u], blobs[v]); err != nil {
				fmt.Fprintf(os.Stderr, "querybench %s: %v\n", kind, err)
				os.Exit(1)
			}
		}
		byteLevel := time.Since(start)

		out = append(out, queryPathRun{
			Kind:        string(kind),
			DecodedNs:   float64(decoded.Nanoseconds()) / queries,
			ByteLevelNs: float64(byteLevel.Nanoseconds()) / queries,
			Speedup:     float64(byteLevel.Nanoseconds()) / float64(decoded.Nanoseconds()),
		})
	}
	return out
}

func writeReport(path string, r *benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
