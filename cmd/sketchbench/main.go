// sketchbench runs the per-theorem reproduction experiments (E1–E12,
// DESIGN.md §4) and prints their tables — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	sketchbench                 # all experiments, quick scale
//	sketchbench -scale full     # the EXPERIMENTS.md configuration
//	sketchbench -exp E6,E10     # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"distsketch/internal/experiments"
)

func main() {
	scale := flag.String("scale", "quick", "sweep scale: quick | full")
	exp := flag.String("exp", "all", "comma-separated experiment IDs (E1..E12) or 'all'")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scale)
		os.Exit(2)
	}

	failed := false
	run := func(tab *experiments.Table, took time.Duration) {
		fmt.Println(tab.String())
		fmt.Printf("(%s)\n\n", took.Round(time.Millisecond))
		if !tab.OK() {
			failed = true
		}
	}

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	cfg := experiments.NewConfig(sc)
	total := time.Now()
	for _, name := range names {
		name = strings.TrimSpace(name)
		f := experiments.ByName(name)
		if f == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		start := time.Now()
		run(f(cfg), time.Since(start))
	}
	if *exp == "all" {
		fmt.Printf("total: %s\n", time.Since(total).Round(time.Millisecond))
	}
	if failed {
		fmt.Fprintln(os.Stderr, "some paper bounds were violated")
		os.Exit(1)
	}
}
