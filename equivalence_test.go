package distsketch_test

// Scheduler-equivalence suite: the event-driven active-set scheduler in
// internal/congest must produce byte-identical sketches and identical
// Stats{Rounds, Messages, Words} as the legacy full-scan round loop
// (congest.Config.FullScan), in sequential, parallel, and asynchronous
// execution, for all four sketch kinds on multiple graph families. This
// pins the scheduler to the reference semantics at the highest level the
// paper cares about: the serialized sketch a node would hand to a peer.

import (
	"bytes"
	"fmt"
	"testing"

	"distsketch/internal/congest"
	"distsketch/internal/core"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// buildSketches runs one construction and returns the total CONGEST cost
// plus every node's serialized sketch.
func buildSketches(t *testing.T, kind string, g *graph.Graph, cfg congest.Config, seed uint64) (congest.Stats, [][]byte) {
	t.Helper()
	n := g.N()
	out := make([][]byte, n)
	var cost congest.Stats
	switch kind {
	case "tz":
		res, err := core.BuildTZ(g, core.TZOptions{K: 3, Seed: seed, Mode: core.SyncOmniscient, Congest: cfg})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			out[u] = sketch.MarshalTZ(res.Labels[u])
		}
		cost = res.Cost.Total
	case "landmark":
		res, err := core.BuildLandmark(g, core.SlackOptions{Eps: 0.25, Seed: seed, Congest: cfg})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			out[u] = sketch.MarshalLandmark(res.Labels[u])
		}
		cost = res.Cost.Total
	case "cdg":
		res, err := core.BuildCDG(g, core.SlackOptions{Eps: 0.25, K: 2, Seed: seed, Congest: cfg})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			out[u] = sketch.MarshalCDG(res.Labels[u])
		}
		cost = res.Cost.Total
	case "graceful":
		res, err := core.BuildGraceful(g, core.SlackOptions{Seed: seed, Congest: cfg})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			out[u] = sketch.MarshalGraceful(res.Labels[u])
		}
		cost = res.Cost.Total
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	return cost, out
}

func assertSameRun(t *testing.T, label string, sa congest.Stats, a [][]byte, sb congest.Stats, b [][]byte) {
	t.Helper()
	if sa != sb {
		t.Errorf("%s: stats differ: %v vs %v", label, sa, sb)
	}
	for u := range a {
		if !bytes.Equal(a[u], b[u]) {
			t.Fatalf("%s: node %d sketch bytes differ (%d vs %d bytes)", label, u, len(a[u]), len(b[u]))
		}
	}
}

func TestSchedulerEquivalence(t *testing.T) {
	kinds := []string{"tz", "landmark", "cdg", "graceful"}
	families := []graph.Family{graph.FamilyGeometric, graph.FamilyBA}
	for _, kind := range kinds {
		for _, fam := range families {
			t.Run(fmt.Sprintf("%s/%s", kind, fam), func(t *testing.T) {
				g := graph.Make(fam, 72, graph.UniformWeights(1, 6), 17)
				seed := uint64(42)

				// Reference: sequential run on the active-set scheduler.
				refStats, refBytes := buildSketches(t, kind, g, congest.Config{Sequential: true}, seed)

				// Parallel must be bit-identical.
				s, b := buildSketches(t, kind, g, congest.Config{}, seed)
				assertSameRun(t, "parallel", refStats, refBytes, s, b)

				// Legacy full-scan loop, sequential and parallel.
				s, b = buildSketches(t, kind, g, congest.Config{Sequential: true, FullScan: true}, seed)
				assertSameRun(t, "fullscan-seq", refStats, refBytes, s, b)
				s, b = buildSketches(t, kind, g, congest.Config{FullScan: true}, seed)
				assertSameRun(t, "fullscan-par", refStats, refBytes, s, b)

				// Async delivery (MaxDelay > 1) changes the execution — more
				// rounds — but active-set vs full-scan and sequential vs
				// parallel must still agree exactly, and the sketches must
				// converge to the same fixed point as the synchronous run.
				asyncCfg := congest.Config{MaxDelay: 3, Sequential: true}
				asyncStats, asyncBytes := buildSketches(t, kind, g, asyncCfg, seed)
				s, b = buildSketches(t, kind, g, congest.Config{MaxDelay: 3}, seed)
				assertSameRun(t, "async-par", asyncStats, asyncBytes, s, b)
				s, b = buildSketches(t, kind, g, congest.Config{MaxDelay: 3, Sequential: true, FullScan: true}, seed)
				assertSameRun(t, "async-fullscan", asyncStats, asyncBytes, s, b)
				for u := range refBytes {
					if !bytes.Equal(refBytes[u], asyncBytes[u]) {
						t.Fatalf("async fixed point: node %d sketch differs from synchronous run", u)
					}
				}
				if asyncStats.Rounds < refStats.Rounds {
					t.Errorf("async rounds %d < sync rounds %d", asyncStats.Rounds, refStats.Rounds)
				}
			})
		}
	}
}
