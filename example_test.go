package distsketch_test

// Runnable package documentation for the build / persist / serve
// lifecycle. These compile and run under `go test`, so the docs cannot
// rot.

import (
	"bytes"
	"fmt"

	"distsketch"
)

// ExampleSketch_Estimate shows the decode-once query path: each peer's
// sketch is parsed exactly once and then answers estimates with no
// further decoding — the hot path for serving heavy query traffic.
func ExampleSketch_Estimate() {
	g, err := distsketch.NewRandomGraph(distsketch.FamilyRing, 8, 1)
	if err != nil {
		panic(err)
	}
	set, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindTZ, K: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	// Wire bytes arrive from two peers; decode each once.
	a, err := distsketch.ParseSketch(set.SketchBytes(0))
	if err != nil {
		panic(err)
	}
	b, err := distsketch.ParseSketch(set.SketchBytes(3))
	if err != nil {
		panic(err)
	}
	est, err := a.Estimate(b)
	if err != nil {
		panic(err)
	}
	fmt.Println(a.Kind(), a.Owner(), b.Owner(), est)
	// Output: tz 0 3 3
}

// ExampleReadSketchSet shows persistence: a built set round-trips
// through its envelope, so a serving process can load it and answer
// queries without ever rebuilding.
func ExampleReadSketchSet() {
	g, err := distsketch.NewRandomGraph(distsketch.FamilyRing, 8, 1)
	if err != nil {
		panic(err)
	}
	built, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindTZ, K: 1, Seed: 1})
	if err != nil {
		panic(err)
	}
	var file bytes.Buffer // stands in for a file on disk
	if _, err := built.WriteTo(&file); err != nil {
		panic(err)
	}
	served, err := distsketch.ReadSketchSet(&file)
	if err != nil {
		panic(err)
	}
	fmt.Println(served.N(), served.Query(0, 3), served.Query(0, 3) == built.Query(0, 3))
	// Output: 8 3 true
}
