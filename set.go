package distsketch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sync/atomic"

	"distsketch/internal/congest"
	"distsketch/internal/core"
	"distsketch/internal/sketch"
)

// ErrNodeRange reports a node id outside a set's [0, N()) range. The
// checked accessors (QueryChecked, SketchChecked, SketchBytesChecked)
// wrap it, so servers validating untrusted request input can match it
// with errors.Is and answer with a client error instead of crashing.
var ErrNodeRange = errors.New("node id out of range")

// ErrRebuildRequired reports that an incremental repair cannot restore
// exact labels — typically because the changed edge's weight increased,
// which invalidates the warm-start upper bounds — and the set must be
// rebuilt from scratch with Build. UpdateEdge wraps it; the set is left
// unchanged when it is returned.
var ErrRebuildRequired = errors.New("incremental repair cannot restore exact labels; rebuild the sketch set")

// Stats is the CONGEST cost of a construction, one of its phases, or an
// incremental repair: synchronous rounds executed, messages delivered,
// and total message words — exactly the quantities the paper's theorems
// bound.
type Stats struct {
	Rounds   int
	Messages int64
	Words    int64
}

// Add returns componentwise s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{Rounds: s.Rounds + o.Rounds, Messages: s.Messages + o.Messages, Words: s.Words + o.Words}
}

// PhaseCost is the cost of one named construction phase.
type PhaseCost struct {
	Name string
	Stats
}

// CostBreakdown separates a construction's total cost into the paper's
// accounting categories.
type CostBreakdown struct {
	// Total is the whole construction (plus any later UpdateEdge
	// repairs, which accumulate into it).
	Total Stats
	// Phases breaks the construction into its phases in execution
	// order: the Thorup–Zwick Bellman–Ford phases k-1..0 for KindTZ,
	// the wave/adopt/net-TZ/ship stages for KindCDG, one entry per
	// slack level for KindGraceful.
	Phases []PhaseCost
	// DataMessages counts Bellman–Ford data messages only.
	DataMessages int64
	// EchoMessages counts Section 3.3 ECHO messages (zero outside
	// detection mode).
	EchoMessages int64
	// ControlMessages counts BFS setup, COMPLETE, START and FINISH
	// messages (detection mode).
	ControlMessages int64
	// SetupRounds is the leader-election/BFS-tree prologue (detection).
	SetupRounds int
}

func statsOf(s congest.Stats) Stats {
	return Stats{Rounds: s.Rounds, Messages: s.Messages, Words: s.Words}
}

// SketchSet is a built set of distance sketches: one decoded Sketch per
// node plus the CONGEST cost of constructing them. It is a plain value —
// it can be queried, persisted with WriteTo, reloaded with ReadSketchSet,
// and (for KindLandmark) repaired in place with UpdateEdge.
type SketchSet struct {
	kind     Kind
	sketches []*Sketch
	// lazy holds the deferred-decode state of a set loaded from a
	// version-2 envelope; nil for built sets, version-1 loads, and after
	// Materialize. When non-nil, sketches is nil and every label access
	// routes through lazy.
	lazy *lazyLabels
	// envVersion records which envelope version the set was loaded from:
	// 0 for a set built in process, otherwise SetVersion1 through
	// SetVersion3.
	envVersion int
	cost       CostBreakdown
	// net is the landmark density net, retained (and persisted) so a
	// reloaded set still supports incremental repair. Net ids are global
	// node ids (against shardTotal for a shard). Nil for other kinds.
	net []int
	// shardLo and shardTotal describe a node-range shard sliced from a
	// larger set (envelope version 3): this set holds the sketches of
	// global nodes [shardLo, shardLo+N()) out of shardTotal. shardTotal
	// is 0 for an unsharded set.
	shardLo    int
	shardTotal int
	// backing owns the mapped byte region the lazy blobs point into for
	// a set opened with OpenSketchSet; nil for heap-backed sets. closed
	// is set by Close and makes label access fail with ErrSetClosed
	// instead of touching a possibly unmapped region.
	backing *backing
	closed  bool
	// envCRC is the crc32-IEEE checksum of the envelope payload the set
	// was loaded from (0 for a set built in process). Replicated serving
	// uses it as a cheap content-identity check: two replicas claiming
	// the same node range must have loaded byte-identical envelopes.
	envCRC uint32
}

// lazyLabels is the deferred-decode state of a version-2 envelope: the
// per-node wire blobs (sub-slices of the retained payload — zero copies
// at load time), the directory's per-node word counts, and one slot per
// node filled on first touch. Slots are atomic pointers, so concurrent
// queries may race to decode the same label; the decode is deterministic
// and the loser adopts the winner's value, making first-touch decoding
// safe under the serving layer's lock-free reads.
type lazyLabels struct {
	blobs [][]byte
	words []int
	// offsets holds each blob's byte offset within the envelope it was
	// loaded from, so a first-touch decode failure can point the operator
	// at the corrupt bytes (ErrCorruptLabel.Offset).
	offsets []int64
	slots   []atomic.Pointer[Sketch]
	decoded atomic.Int64
}

// get returns node u's decoded sketch, decoding it on first touch.
func (lz *lazyLabels) get(u int) (*Sketch, error) {
	if sk := lz.slots[u].Load(); sk != nil {
		return sk, nil
	}
	sk, err := ParseSketch(lz.blobs[u])
	if err != nil {
		// Unreachable for envelopes written by WriteTo (the payload is
		// checksummed and each blob was a marshaled label); reachable for
		// a crafted envelope whose directory passes the load-time tag and
		// owner checks but whose blob body is structurally invalid. The
		// typed error carries the node and the blob's envelope offset so a
		// server can answer 500-with-context and count the failure.
		return nil, &ErrCorruptLabel{Node: u, Offset: lz.offsets[u], Err: err}
	}
	// The directory's word count was trusted for size statistics before
	// this label was ever decoded; reconcile it now so a crafted
	// envelope cannot keep lying once the label is actually served.
	if w := sk.Words(); w != lz.words[u] {
		return nil, &ErrCorruptLabel{Node: u, Offset: lz.offsets[u],
			Err: fmt.Errorf("directory claims %d words, label has %d", lz.words[u], w)}
	}
	if lz.slots[u].CompareAndSwap(nil, sk) {
		lz.decoded.Add(1)
	} else {
		sk = lz.slots[u].Load()
	}
	return sk, nil
}

// Kind returns the construction used.
func (s *SketchSet) Kind() Kind { return s.kind }

// N returns the number of nodes this set holds sketches for (the shard
// size for a sharded set; see NodeRange and TotalNodes).
func (s *SketchSet) N() int {
	if s.lazy != nil {
		return len(s.lazy.blobs)
	}
	return len(s.sketches)
}

// NodeRange returns the half-open global node-id range [lo, hi) this
// set answers for: [0, N()) for an unsharded set, the shard's slice of
// the full id space for a set loaded from a shard envelope.
func (s *SketchSet) NodeRange() (lo, hi int) {
	return s.shardLo, s.shardLo + s.N()
}

// TotalNodes returns the node count of the full sketch set this one was
// sliced from — the id space queries are addressed in. For an unsharded
// set it equals N().
func (s *SketchSet) TotalNodes() int {
	if s.shardTotal != 0 {
		return s.shardTotal
	}
	return s.N()
}

// Sharded reports whether this set is a node-range shard of a larger
// set (loaded from a version-3 envelope or sliced by WriteShard).
func (s *SketchSet) Sharded() bool { return s.shardTotal != 0 }

// sketchAt returns node u's decoded sketch, decoding lazily loaded
// labels on first touch. u must already be range-checked against
// NodeRange; it is translated to the shard-local slot here.
func (s *SketchSet) sketchAt(u int) (*Sketch, error) {
	if s.closed {
		return nil, ErrSetClosed
	}
	i := u - s.shardLo
	if s.lazy != nil {
		return s.lazy.get(i)
	}
	return s.sketches[i], nil
}

// Sketch returns node u's decoded sketch (decoding it on first touch
// for a lazily loaded set). The returned value shares state with the
// set; treat it as read-only. It panics if u is out of range or if a
// lazily loaded label turns out to be undecodable (possible only for a
// crafted envelope); callers handling untrusted input use SketchChecked.
func (s *SketchSet) Sketch(u int) *Sketch {
	sk, err := s.sketchAt(u)
	if err != nil {
		panic(err)
	}
	return sk
}

// checkNode validates a node id against the set's range. An id outside
// the whole id space wraps ErrNodeRange (the client named a node that
// does not exist); an id that exists but lives in a different shard
// wraps ErrShardRange — the typed redirect hint a shard server turns
// into "ask the right shard" rather than "no such node".
func (s *SketchSet) checkNode(u int) error {
	lo, hi := s.NodeRange()
	if u >= lo && u < hi {
		return nil
	}
	if s.shardTotal != 0 && u >= 0 && u < s.shardTotal {
		return fmt.Errorf("distsketch: node %d outside shard [%d,%d) of %d nodes: %w", u, lo, hi, s.shardTotal, ErrShardRange)
	}
	return fmt.Errorf("distsketch: node %d outside [%d,%d): %w", u, lo, hi, ErrNodeRange)
}

// SketchChecked is Sketch with bounds checking: an out-of-range node id
// (or an undecodable lazily loaded label) yields an error instead of a
// panic. This is the variant for ids arriving from untrusted input
// (network requests, command lines).
func (s *SketchSet) SketchChecked(u int) (*Sketch, error) {
	if err := s.checkNode(u); err != nil {
		return nil, err
	}
	return s.sketchAt(u)
}

// Query estimates the distance between u and v from their two sketches
// alone, on the decode-once path (no per-query unmarshaling; a lazily
// loaded label decodes on its first touch and is cached). It panics if
// either id is out of range; callers handling untrusted ids use
// QueryChecked.
func (s *SketchSet) Query(u, v int) Dist {
	d, err := sketch.Query(s.Sketch(u).label, s.Sketch(v).label)
	if err != nil {
		// Unreachable: a set holds sketches of one kind by construction.
		panic(err)
	}
	return d
}

// QueryChecked is Query with bounds checking: an out-of-range node id
// yields an error wrapping ErrNodeRange instead of a panic, so a server
// can answer a malformed request without dying.
func (s *SketchSet) QueryChecked(u, v int) (Dist, error) {
	if err := s.checkNode(u); err != nil {
		return 0, err
	}
	if err := s.checkNode(v); err != nil {
		return 0, err
	}
	su, err := s.sketchAt(u)
	if err != nil {
		return 0, err
	}
	sv, err := s.sketchAt(v)
	if err != nil {
		return 0, err
	}
	d, err := sketch.Query(su.label, sv.label)
	if err != nil {
		return 0, fmt.Errorf("distsketch: %w", err)
	}
	return d, nil
}

// sketchBytesAt returns node u's serialized sketch; u must already be
// range-checked. For a lazily loaded set the stored envelope bytes are
// cloned out of the backing, so the returned slice stays valid after
// the set is closed or swapped away.
func (s *SketchSet) sketchBytesAt(u int) ([]byte, error) {
	if s.closed {
		return nil, ErrSetClosed
	}
	i := u - s.shardLo
	if s.lazy != nil {
		return bytes.Clone(s.lazy.blobs[i]), nil
	}
	return sketch.Marshal(s.sketches[i].label), nil
}

// SketchBytes returns node u's serialized sketch (what u would hand to a
// peer that asks for it; Section 2.1 of the paper). For a lazily loaded
// set the stored envelope bytes are returned without decoding the label.
// It panics if u is out of range; callers handling untrusted ids use
// SketchBytesChecked.
func (s *SketchSet) SketchBytes(u int) []byte {
	b, err := s.sketchBytesAt(u)
	if err != nil {
		panic(err)
	}
	return b
}

// SketchBytesChecked is SketchBytes with bounds checking: an
// out-of-range node id yields an error wrapping ErrNodeRange (or
// ErrShardRange for an id held by a different shard) instead of a
// panic.
func (s *SketchSet) SketchBytesChecked(u int) ([]byte, error) {
	if err := s.checkNode(u); err != nil {
		return nil, err
	}
	return s.sketchBytesAt(u)
}

// wordsAt returns the sketch size in words of the shard-local slot i.
func (s *SketchSet) wordsAt(i int) int {
	if s.lazy != nil {
		return s.lazy.words[i]
	}
	return s.sketches[i].Words()
}

// SketchWords returns node u's sketch size in O(log n)-bit words. For a
// lazily loaded set the count comes from the envelope's directory, not
// from decoding the label.
func (s *SketchSet) SketchWords(u int) int {
	return s.wordsAt(u - s.shardLo)
}

// MaxSketchWords returns the largest sketch size in words. Answered from
// the directory for lazily loaded sets (no decoding).
func (s *SketchSet) MaxSketchWords() int {
	m := 0
	for i, n := 0, s.N(); i < n; i++ {
		if w := s.wordsAt(i); w > m {
			m = w
		}
	}
	return m
}

// MeanSketchWords returns the average sketch size in words, or 0 for an
// empty set. Answered from the directory for lazily loaded sets.
func (s *SketchSet) MeanSketchWords() float64 {
	n := s.N()
	if n == 0 {
		return 0
	}
	t := 0
	for i := 0; i < n; i++ {
		t += s.wordsAt(i)
	}
	return float64(t) / float64(n)
}

// EnvelopeVersion reports which envelope version the set was loaded
// from: SetVersion1 or SetVersion2 for sets read by ReadSketchSet, 0 for
// a set built in process.
func (s *SketchSet) EnvelopeVersion() int { return s.envVersion }

// Checksum returns the crc32-IEEE checksum of the envelope payload the
// set was loaded from, or 0 for a set built in process. Two replica
// servers claiming the same node range should report equal nonzero
// checksums — it is the cheap way to detect a replica serving the wrong
// (or stale) envelope before routing traffic to it.
func (s *SketchSet) Checksum() uint32 { return s.envCRC }

// DecodedSketches reports how many of the set's sketches are currently
// decoded: N() for built, eagerly loaded, or materialized sets; the
// number of labels touched so far for a lazily loaded set.
func (s *SketchSet) DecodedSketches() int {
	if s.lazy != nil {
		return int(s.lazy.decoded.Load())
	}
	return len(s.sketches)
}

// Materialize decodes every not-yet-decoded sketch of a lazily loaded
// set and drops the lazy state; afterwards the set behaves exactly like
// an eagerly loaded one. It is a no-op for sets that are already fully
// decoded. Materialize is not safe to call concurrently with queries on
// the same value; clone first (the clone shares the decode cache).
func (s *SketchSet) Materialize() error {
	if s.lazy == nil {
		return nil
	}
	if s.closed {
		return ErrSetClosed
	}
	n := len(s.lazy.blobs)
	sketches := make([]*Sketch, n)
	for u := 0; u < n; u++ {
		sk, err := s.lazy.get(u)
		if err != nil {
			return err
		}
		sketches[u] = sk
	}
	s.sketches = sketches
	s.lazy = nil
	// Every label now lives on the heap; this handle has no further use
	// for a mapped backing, so its reference is dropped here — this is
	// what lets the serving layer's clone-repair-swap run against an
	// mmap-opened set without leaking the mapping.
	return s.dropBacking()
}

// Clone returns an independent copy of the set that shares the decoded
// (immutable) sketch values — and, for lazily loaded sets, the decode
// cache. A later UpdateEdge on either copy replaces sketches rather
// than mutating them, so the other copy is unaffected — this is the
// O(n) primitive behind copy-on-write serving: repair a clone off to
// the side, then atomically swap it in while readers keep querying the
// original.
func (s *SketchSet) Clone() *SketchSet {
	c := new(SketchSet)
	*c = *s
	c.sketches = append([]*Sketch(nil), s.sketches...)
	c.net = append([]int(nil), s.net...)
	c.cost.Phases = append([]PhaseCost(nil), s.cost.Phases...)
	if c.backing != nil && !c.closed {
		// The clone reads the same mapped region, so it holds its own
		// reference — the region stays mapped until every handle drops.
		c.backing.retain()
		runtime.SetFinalizer(c, (*SketchSet).finalize)
	} else {
		c.backing = nil
	}
	return c
}

// Cost returns the full CONGEST cost breakdown of the construction,
// including per-phase rounds, messages and words.
func (s *SketchSet) Cost() CostBreakdown { return s.cost }

// Rounds returns the CONGEST rounds the construction took.
func (s *SketchSet) Rounds() int { return s.cost.Total.Rounds }

// Messages returns the total messages the construction sent.
func (s *SketchSet) Messages() int64 { return s.cost.Total.Messages }

// Words returns the total message words the construction sent.
func (s *SketchSet) Words() int64 { return s.cost.Total.Words }

// EdgeChange identifies, for UpdateEdges, one edge of the new topology
// whose weight changed. PrevWeight is the edge's weight before the
// change when the caller knows it (a server holding the pre-change graph
// does), or 0 for unknown. Landmark and TZ repairs never consult it —
// their results are verified exact against the new graph directly — but
// CDG and graceful repairs require it: their labels cover only the
// density net, so exactness cannot be checked after the fact and
// soundness instead demands a certified decrease-only batch. A CDG or
// graceful batch with an unknown PrevWeight, or one covering an
// increase, is rejected with ErrRebuildRequired.
type EdgeChange struct {
	U, V       int
	PrevWeight Dist
}

// UpdateEdges repairs the set in place after a batch of edge weight
// changes, for every sketch kind, in one clone-repair-verify step. g
// must be the new topology (same node set and edge set as the build
// graph, with the changed weights). The whole batch converges together —
// overlapping affected regions are traversed once, not once per edge —
// and labels the repair did not change are kept pointer-identical, so
// Sketch values handed out earlier stay valid and a serving layer can
// diff the swap cheaply. The returned Stats is the cost of the repair
// alone (the landmark wave's messages; the centralized hierarchy repairs
// of the other kinds report zero); it also accumulates into
// Cost().Total.
//
// On success the repaired labels are byte-identical to a fresh Build on
// the mutated graph: structure (hierarchy levels, density nets) is
// sampled from weight-independent coin streams, so a rebuild keeps it,
// and the repair recomputes exactly the distances that could have
// changed, verifying the result where a complete check exists (landmark
// and TZ) or certifying the batch decrease-only up front (CDG and
// graceful — see EdgeChange.PrevWeight).
//
// The rejection contract is atomic: any error leaves the set exactly as
// it was, with no partial batch applied. An error wrapping
// ErrRebuildRequired means this batch cannot be repaired soundly —
// typically a weight increase — and the set must be rebuilt with Build.
// Other errors (unknown edges, out-of-range nodes, non-positive
// weights) indicate a request that rebuilding would not fix.
//
// UpdateEdges is not safe for concurrent use with Query on the same
// set; a process serving queries while repairing must synchronize the
// swap (internal/serve clones, repairs the clone, and swaps an atomic
// pointer).
func (s *SketchSet) UpdateEdges(g *Graph, edges []EdgeChange) (Stats, error) {
	if s.closed {
		return Stats{}, ErrSetClosed
	}
	if s.Sharded() {
		// A shard holds only its range's labels; a repair must see (and
		// may rewrite) any label in the graph. Repair the full envelope
		// and re-split instead.
		return Stats{}, fmt.Errorf("distsketch: a node-range shard is read-only; repair the full sketch set and re-split")
	}
	n := s.N()
	if g.N() != n {
		return Stats{}, fmt.Errorf("distsketch: graph has %d nodes, set has %d", g.N(), n)
	}
	for _, e := range edges {
		if err := s.checkNode(e.U); err != nil {
			return Stats{}, err
		}
		if err := s.checkNode(e.V); err != nil {
			return Stats{}, err
		}
	}
	// The exactness verifications are unsound with zero-weight edges (a
	// zero-weight cycle could mutually support stale labels), so such
	// graphs are refused up front, before any repair work is paid.
	// Deliberately not ErrRebuildRequired: rebuilding cannot make this
	// graph repairable, so the sentinel's remedy would mislead.
	for _, e := range g.Edges() {
		if e.Weight == 0 {
			return Stats{}, fmt.Errorf("distsketch: graph has zero-weight edge (%d,%d); incremental repair requires strictly positive weights", e.U, e.V)
		}
	}
	// The repair reads every label, so a lazily loaded set is fully
	// decoded first (repair is a control-plane operation; laziness exists
	// for the query path).
	if err := s.Materialize(); err != nil {
		return Stats{}, err
	}
	// core.Repair treats prev as read-only (repaired labels go to fresh
	// storage), so the live labels can be handed over directly — a
	// mid-run failure cannot leave the set half-repaired.
	prev := make([]sketch.Label, n)
	for u, sk := range s.sketches {
		prev[u] = sk.label
	}
	coreEdges := make([]core.EdgeChange, len(edges))
	for i, e := range edges {
		coreEdges[i] = core.EdgeChange{U: e.U, V: e.V, PrevWeight: e.PrevWeight}
	}
	res, err := core.Repair(g, prev, s.net, coreEdges, congest.Config{})
	if err != nil {
		if errors.Is(err, core.ErrUnsound) {
			return Stats{}, fmt.Errorf("distsketch: %v: %w", err, ErrRebuildRequired)
		}
		return Stats{}, fmt.Errorf("distsketch: %w", err)
	}
	for u := range s.sketches {
		if res.Labels[u] == prev[u] {
			continue // unchanged label: keep the existing Sketch value
		}
		s.sketches[u] = &Sketch{kind: s.kind, label: res.Labels[u]}
	}
	repair := statsOf(res.Cost)
	s.cost.Total = s.cost.Total.Add(repair)
	return repair, nil
}

// UpdateEdge repairs the set after the weight of the single edge {a,b}
// changed. It is exactly UpdateEdges with a one-element batch — there is
// one repair code path — so it supports every kind on the same terms.
// Note the single-edge form carries no PrevWeight: landmark and TZ sets
// repair fine (their results are verified directly), but CDG and
// graceful sets always answer ErrRebuildRequired here; use UpdateEdges
// with EdgeChange.PrevWeight set instead.
func (s *SketchSet) UpdateEdge(g *Graph, a, b int) (Stats, error) {
	return s.UpdateEdges(g, []EdgeChange{{U: a, V: b}})
}

// Sketch-set envelope: a versioned container so a built set can be saved
// and served later without rebuilding. Layout:
//
//	magic "DSKSET" | version byte | payload length (uvarint) |
//	payload | crc32(payload) (4 bytes, little-endian)
//
// The payload holds the kind tag, node count, full cost breakdown, the
// landmark density net (repair support), and each node's sketch in the
// ParseSketch wire format. All integers are uvarints. The two payload
// versions differ only in how the sketches are laid out:
//
//   - Version 1 stores each sketch as a length-prefixed blob; ReadSketchSet
//     decodes all of them eagerly at load.
//   - Version 2 stores a per-node directory — one (blob length, label
//     words) uvarint pair per node — followed by the concatenated blobs.
//     ReadSketchSet then performs an O(n) directory scan, points each
//     node's blob into the retained payload buffer with zero per-entry
//     copies, and decodes a label only when a query first touches it.
//     Size statistics (SketchWords and friends) answer from the
//     directory without decoding anything.
//   - Version 3 is the node-range shard envelope: version 2's layout
//     plus the shard's (first node, total nodes) recorded right after
//     the node count, so a shard knows which global ids it answers for
//     and how large the full id space is. WriteShard emits it; a shard
//     set loads exactly like version 2 (lazy, zero-copy) and addresses
//     its sketches by global node id.
const (
	setMagic = "DSKSET"
	// SetVersion1 is the eager envelope version (the only one before
	// this release). ReadSketchSet still reads it; WriteToVersion still
	// writes it for compatibility with older readers.
	SetVersion1 = 1
	// SetVersion2 is the lazy-loading envelope version with the per-node
	// label directory. WriteTo writes it by default for unsharded sets.
	SetVersion2 = 2
	// SetVersion3 is the node-range shard envelope: version 2 plus the
	// shard range. Only sharded sets (WriteShard slices) use it.
	SetVersion3 = 3
)

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func putStats(buf *bytes.Buffer, s Stats) {
	putUvarint(buf, uint64(s.Rounds))
	putUvarint(buf, uint64(s.Messages))
	putUvarint(buf, uint64(s.Words))
}

// WriteTo serializes the set in its current envelope format: version 2
// (lazy-loadable) for an unsharded set, version 3 (version 2 plus the
// shard range) for a node-range shard. It implements io.WriterTo. Use
// WriteToVersion to emit a version-1 envelope for older readers.
func (s *SketchSet) WriteTo(w io.Writer) (int64, error) {
	if s.Sharded() {
		return s.WriteToVersion(w, SetVersion3)
	}
	return s.WriteToVersion(w, SetVersion2)
}

// WriteToVersion serializes the set in the requested envelope version.
// All versions are read back by ReadSketchSet with byte-identical query
// results; 1 and 2 differ only in load behavior (eager vs lazy
// decoding), and 3 additionally records a shard's node range. A sharded
// set can only be written as version 3 (older versions have nowhere to
// record the range), and an unsharded set never is. A lazily loaded set
// writes its stored blobs directly, without decoding pending labels.
func (s *SketchSet) WriteToVersion(w io.Writer, version int) (int64, error) {
	if s.closed {
		return 0, ErrSetClosed
	}
	if version < SetVersion1 || version > SetVersion3 {
		return 0, fmt.Errorf("distsketch: unknown envelope version %d (have %d through %d)", version, SetVersion1, SetVersion3)
	}
	if s.Sharded() && version != SetVersion3 {
		return 0, fmt.Errorf("distsketch: a node-range shard requires envelope version %d (version %d has no shard range)", SetVersion3, version)
	}
	if !s.Sharded() && version == SetVersion3 {
		return 0, fmt.Errorf("distsketch: envelope version %d is for node-range shards; write an unsharded set as version %d", SetVersion3, SetVersion2)
	}
	n := s.N()
	blob := func(u int) []byte {
		if s.lazy != nil {
			return s.lazy.blobs[u]
		}
		return sketch.Marshal(s.sketches[u].label)
	}

	var payload bytes.Buffer
	payload.WriteByte(tagOfKind(s.kind))
	putUvarint(&payload, uint64(n))
	if version == SetVersion3 {
		putUvarint(&payload, uint64(s.shardLo))
		putUvarint(&payload, uint64(s.shardTotal))
	}
	putStats(&payload, s.cost.Total)
	putUvarint(&payload, uint64(s.cost.DataMessages))
	putUvarint(&payload, uint64(s.cost.EchoMessages))
	putUvarint(&payload, uint64(s.cost.ControlMessages))
	putUvarint(&payload, uint64(s.cost.SetupRounds))
	putUvarint(&payload, uint64(len(s.cost.Phases)))
	for _, p := range s.cost.Phases {
		putUvarint(&payload, uint64(len(p.Name)))
		payload.WriteString(p.Name)
		putStats(&payload, p.Stats)
	}
	putUvarint(&payload, uint64(len(s.net)))
	for _, u := range s.net {
		putUvarint(&payload, uint64(u))
	}
	switch version {
	case SetVersion1:
		for u := 0; u < n; u++ {
			b := blob(u)
			putUvarint(&payload, uint64(len(b)))
			payload.Write(b)
		}
	case SetVersion2, SetVersion3:
		// Directory first (blob length + label words per node), then the
		// concatenated blobs: a reader can locate and size every label
		// from the directory alone.
		blobs := make([][]byte, n)
		for u := 0; u < n; u++ {
			blobs[u] = blob(u)
			putUvarint(&payload, uint64(len(blobs[u])))
			putUvarint(&payload, uint64(s.wordsAt(u)))
		}
		for u := 0; u < n; u++ {
			payload.Write(blobs[u])
		}
	}

	var head bytes.Buffer
	head.WriteString(setMagic)
	head.WriteByte(byte(version))
	putUvarint(&head, uint64(payload.Len()))
	var total int64
	nw, err := w.Write(head.Bytes())
	total += int64(nw)
	if err != nil {
		return total, err
	}
	nw, err = w.Write(payload.Bytes())
	total += int64(nw)
	if err != nil {
		return total, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	nw, err = w.Write(crc[:])
	total += int64(nw)
	return total, err
}

func tagOfKind(k Kind) byte {
	switch k {
	case KindTZ:
		return sketch.TagTZ
	case KindLandmark:
		return sketch.TagLandmark
	case KindCDG:
		return sketch.TagCDG
	case KindGraceful:
		return sketch.TagGraceful
	default:
		panic(fmt.Sprintf("distsketch: unknown kind %q", k))
	}
}

func getUvarint(r *bytes.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

// getCount reads a uvarint that counts elements of at least minBytes
// bytes each and bounds it by the remaining input, so a corrupt count
// cannot drive a huge allocation or loop.
//
//sketchlint:bounded
func getCount(r *bytes.Reader, minBytes int) (int, error) {
	v, err := getUvarint(r)
	if err != nil {
		return 0, err
	}
	if v > uint64(r.Len()/minBytes)+1 {
		return 0, fmt.Errorf("count %d exceeds input", v)
	}
	return int(v), nil
}

// corrupt reports locally detected envelope corruption at offset off.
func corrupt(off int64, format string, args ...any) error {
	return &ErrCorruptEnvelope{Offset: off, Err: fmt.Errorf(format, args...)}
}

// readFail classifies a read failure at offset off: the EOF family
// means the envelope ends early (a torn file — typed corruption, so the
// startup path can quarantine it); anything else is the reader's own
// I/O failure and passes through undisguised.
func readFail(off int64, what string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return corrupt(off, "%s: %v", what, err)
	}
	return fmt.Errorf("distsketch: %s: %w", what, err)
}

func getStats(r *bytes.Reader) (Stats, error) {
	var s Stats
	v, err := getUvarint(r)
	if err != nil {
		return s, err
	}
	s.Rounds = int(v)
	if v, err = getUvarint(r); err != nil {
		return s, err
	}
	s.Messages = int64(v)
	if v, err = getUvarint(r); err != nil {
		return s, err
	}
	s.Words = int64(v)
	return s, nil
}

// ReadSketchSet deserializes a set written by WriteTo or WriteToVersion,
// reading both envelope versions. The input is validated end to end:
// envelope version, payload checksum, and every node's sketch (kind and
// owner must match its slot), so a corrupt or truncated file yields an
// error, never a panic or a silently wrong set. An envelope holding zero
// sketches is rejected too — every query against such a set would be out
// of range.
//
// Truncation, checksum failures and unparseable payloads return a typed
// *ErrCorruptEnvelope carrying the byte offset where the corruption was
// detected (match with errors.As); LoadSketchSet builds its quarantine
// behavior on that distinction. I/O errors from r itself pass through
// untyped.
//
// A version-1 envelope decodes every label at load. A version-2 envelope
// loads lazily: the directory is scanned (O(n)), each label's bytes are
// pointed into the retained payload buffer with zero copies, the tag and
// owner of every label are verified, and full decoding happens on first
// touch — serving startup no longer pays for labels nobody queries.
func ReadSketchSet(r io.Reader) (*SketchSet, error) {
	cr := &countingReader{r: r}
	head := make([]byte, len(setMagic)+1)
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, readFail(cr.n, "reading sketch-set header", err)
	}
	if string(head[:len(setMagic)]) != setMagic {
		return nil, corrupt(0, "not a sketch set (bad magic)")
	}
	version := int(head[len(setMagic)])
	if version < SetVersion1 || version > SetVersion3 {
		return nil, corrupt(int64(len(setMagic)), "unsupported sketch-set version %d (this build reads versions %d through %d)", version, SetVersion1, SetVersion3)
	}
	br := newByteReader(cr)
	plen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, readFail(cr.n, "reading payload length", err)
	}
	const maxPayload = 1<<32 - 1 // sanity cap against corrupt lengths
	if plen > maxPayload {
		return nil, corrupt(int64(len(setMagic)+1), "payload length %d exceeds cap", plen)
	}
	// base is where the payload starts in the envelope; every offset a
	// parse failure (or a lazy label) reports is base-relative-absolute.
	base := cr.n
	// Copy incrementally rather than pre-allocating plen bytes: the
	// length field is attacker-controlled, and a lying value must cost
	// only as much memory as data actually arrives.
	var payloadBuf bytes.Buffer
	if _, err := io.CopyN(&payloadBuf, br, int64(plen)); err != nil {
		return nil, readFail(cr.n, "reading payload", err)
	}
	payload := payloadBuf.Bytes()
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, readFail(cr.n, "reading checksum", err)
	}
	got := crc32.ChecksumIEEE(payload)
	if got != binary.LittleEndian.Uint32(crc[:]) {
		return nil, corrupt(base+int64(plen), "sketch-set checksum mismatch")
	}
	set, err := parseSetPayload(payload, version, base)
	if err != nil {
		return nil, err
	}
	set.envCRC = got
	return set, nil
}

// parseSetPayload decodes a checksummed payload. base is the payload's
// byte offset within the envelope, so every corruption error reports an
// absolute file position.
func parseSetPayload(payload []byte, version int, base int64) (*SketchSet, error) {
	pr := bytes.NewReader(payload)
	pos := func() int64 { return base + int64(len(payload)-pr.Len()) }
	fail := func(format string, args ...any) error { return corrupt(pos(), format, args...) }
	tag, err := pr.ReadByte()
	if err != nil {
		return nil, fail("%v", err)
	}
	kind := kindOfTag(tag)
	if kind == "" {
		return nil, fail("unknown sketch kind tag %d", tag)
	}
	set := &SketchSet{kind: kind, envVersion: version}
	n, err := getCount(pr, 2) // each sketch costs ≥ 2 payload bytes in both versions
	if err != nil {
		return nil, fail("node count: %v", err)
	}
	if n == 0 {
		// A zero-node set cannot answer any query; refuse to construct it
		// rather than hand back a value whose every accessor is a trap.
		return nil, fail("envelope holds no sketches")
	}
	if version == SetVersion3 {
		lo, err := getUvarint(pr)
		if err != nil {
			return nil, fail("shard range: %v", err)
		}
		total, err := getUvarint(pr)
		if err != nil {
			return nil, fail("shard range: %v", err)
		}
		if lo > math.MaxInt32 || total > math.MaxInt32 {
			return nil, fail("implausible shard range (first node %d of %d)", lo, total)
		}
		if total == 0 || lo+uint64(n) > total {
			return nil, fail("shard range [%d,%d) exceeds %d total nodes", lo, lo+uint64(n), total)
		}
		set.shardLo = int(lo)
		set.shardTotal = int(total)
	}
	if set.cost.Total, err = getStats(pr); err != nil {
		return nil, fail("cost totals: %v", err)
	}
	v, err := getUvarint(pr)
	if err != nil {
		return nil, fail("cost breakdown: %v", err)
	}
	set.cost.DataMessages = int64(v)
	if v, err = getUvarint(pr); err != nil {
		return nil, fail("cost breakdown: %v", err)
	}
	set.cost.EchoMessages = int64(v)
	if v, err = getUvarint(pr); err != nil {
		return nil, fail("cost breakdown: %v", err)
	}
	set.cost.ControlMessages = int64(v)
	if v, err = getUvarint(pr); err != nil {
		return nil, fail("cost breakdown: %v", err)
	}
	set.cost.SetupRounds = int(v)
	phases, err := getCount(pr, 4) // name length + 3 stats uvarints
	if err != nil {
		return nil, fail("phase count: %v", err)
	}
	for i := 0; i < phases; i++ {
		nameLen, err := getCount(pr, 1)
		if err != nil {
			return nil, fail("phase %d: %v", i, err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(pr, name); err != nil {
			return nil, fail("phase %d: %v", i, err)
		}
		st, err := getStats(pr)
		if err != nil {
			return nil, fail("phase %d: %v", i, err)
		}
		set.cost.Phases = append(set.cost.Phases, PhaseCost{Name: string(name), Stats: st})
	}
	netLen, err := getCount(pr, 1)
	if err != nil {
		return nil, fail("net size: %v", err)
	}
	// Net ids are global node ids: a shard keeps the full set's net (the
	// id space it validates against is the total, not the shard size).
	idSpace := n
	if set.shardTotal != 0 {
		idSpace = set.shardTotal
	}
	for i := 0; i < netLen; i++ {
		u, err := getUvarint(pr)
		if err != nil {
			return nil, fail("net node %d: %v", i, err)
		}
		if u >= uint64(idSpace) {
			return nil, fail("net node %d out of range [0,%d)", u, idSpace)
		}
		set.net = append(set.net, int(u))
	}
	if version == SetVersion2 || version == SetVersion3 {
		return parseLazySketches(set, payload, pr, n, base)
	}
	set.sketches = make([]*Sketch, n)
	for u := 0; u < n; u++ {
		blobLen, err := getCount(pr, 1)
		if err != nil {
			return nil, fail("node %d: %v", u, err)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(pr, blob); err != nil {
			return nil, fail("node %d: %v", u, err)
		}
		sk, err := ParseSketch(blob)
		if err != nil {
			return nil, fail("node %d: %v", u, err)
		}
		if sk.Kind() != kind {
			return nil, fail("node %d: sketch kind %s in a %s set", u, sk.Kind(), kind)
		}
		if sk.Owner() != u {
			return nil, fail("node %d: sketch owned by %d", u, sk.Owner())
		}
		set.sketches[u] = sk
	}
	if pr.Len() != 0 {
		return nil, fail("%d trailing payload bytes", pr.Len())
	}
	return set, nil
}

// parseLazySketches reads a version-2 payload's sketch section: the
// per-node directory, then zero-copy blob slices into the retained
// payload. Each blob's leading tag byte and owner varint are verified at
// load (the same kind/owner guarantees the eager path gives); the label
// body decodes on first touch. base is the payload's envelope offset,
// recorded per blob so a first-touch decode failure can name the bad
// bytes.
func parseLazySketches(set *SketchSet, payload []byte, pr *bytes.Reader, n int, base int64) (*SketchSet, error) {
	pos := func() int64 { return base + int64(len(payload)-pr.Len()) }
	fail := func(format string, args ...any) error { return corrupt(pos(), format, args...) }
	lz := &lazyLabels{
		blobs:   make([][]byte, n),
		words:   make([]int, n),
		offsets: make([]int64, n),
		slots:   make([]atomic.Pointer[Sketch], n),
	}
	lens := make([]int, n)
	for u := 0; u < n; u++ {
		blobLen, err := getCount(pr, 1)
		if err != nil {
			return nil, fail("directory entry %d: %v", u, err)
		}
		words, err := getUvarint(pr)
		if err != nil {
			return nil, fail("directory entry %d: %v", u, err)
		}
		if words > math.MaxInt32 {
			return nil, fail("directory entry %d: implausible word count %d", u, words)
		}
		lens[u] = blobLen
		lz.words[u] = int(words)
	}
	off := len(payload) - pr.Len()
	kindTag := tagOfKind(set.kind)
	for u := 0; u < n; u++ {
		if lens[u] < 2 {
			return nil, corrupt(base+int64(off), "node %d: blob length %d too short for a label", u, lens[u])
		}
		if lens[u] > len(payload)-off {
			return nil, corrupt(base+int64(off), "node %d: blob length %d exceeds payload", u, lens[u])
		}
		blob := payload[off : off+lens[u] : off+lens[u]]
		lz.offsets[u] = base + int64(off)
		off += lens[u]
		if blob[0] != kindTag {
			return nil, corrupt(lz.offsets[u], "node %d: sketch tag %d in a %s set", u, blob[0], set.kind)
		}
		owner, vn := binary.Varint(blob[1:])
		if vn <= 0 {
			return nil, corrupt(lz.offsets[u], "node %d: unreadable sketch owner", u)
		}
		// Slot u of a shard envelope holds global node shardLo+u; the
		// blob's owner field must agree, or the shard would serve some
		// other node's label under this id.
		if owner != int64(set.shardLo+u) {
			return nil, corrupt(lz.offsets[u], "node %d: sketch owned by %d", set.shardLo+u, owner)
		}
		lz.blobs[u] = blob
	}
	if off != len(payload) {
		return nil, corrupt(base+int64(off), "%d trailing payload bytes", len(payload)-off)
	}
	set.lazy = lz
	return set, nil
}

// countingReader tracks how many bytes have been consumed from r, so
// corruption errors can report the envelope offset they were detected
// at.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// newByteReader adapts r for binary.ReadUvarint without buffering ahead
// (a bufio.Reader could consume bytes past the envelope).
func newByteReader(r io.Reader) *oneByteReader {
	if br, ok := r.(*oneByteReader); ok {
		return br
	}
	return &oneByteReader{r: r}
}

type oneByteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *oneByteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *oneByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}
