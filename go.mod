module distsketch

go 1.22
