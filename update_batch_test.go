package distsketch

// Tests for the unified batched repair pipeline: UpdateEdges must
// reproduce a fresh rebuild byte for byte on every sketch kind, apply
// whole batches in one step, and reject unsound batches atomically.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// reweighted returns a copy of g with the weights in repl applied. Keys
// are normalized (min,max) endpoint pairs.
func reweighted(t *testing.T, g *Graph, repl map[[2]int]Dist) *Graph {
	t.Helper()
	nb := NewGraphBuilder(g.N())
	for _, e := range g.Edges() {
		w := e.Weight
		if nw, ok := repl[[2]int{e.U, e.V}]; ok {
			w = nw
		}
		nb.AddEdge(e.U, e.V, w)
	}
	ng, err := nb.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

// allSketchBytes snapshots every node's wire blob.
func allSketchBytes(t *testing.T, s *SketchSet) [][]byte {
	t.Helper()
	out := make([][]byte, s.N())
	for u := 0; u < s.N(); u++ {
		out[u] = bytes.Clone(s.SketchBytes(u))
	}
	return out
}

func requireSameBytes(t *testing.T, label string, s *SketchSet, want [][]byte) {
	t.Helper()
	for u := 0; u < s.N(); u++ {
		if !bytes.Equal(s.SketchBytes(u), want[u]) {
			t.Fatalf("%s: node %d sketch bytes differ", label, u)
		}
	}
}

func kindOptions(kind Kind, seed uint64) Options {
	return Options{Kind: kind, K: 2, Eps: 0.25, Seed: seed}
}

// TestUpdateEdgesMatchesRebuild pins the acceptance criterion: for every
// kind, a multi-edge batch repaired through UpdateEdges yields sketches
// byte-identical to a fresh Build on the mutated graph.
func TestUpdateEdgesMatchesRebuild(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 64, 5, 50, 21)
	if err != nil {
		t.Fatal(err)
	}
	// A batch of decreases spread across the graph.
	picks := []int{g.M() / 7, g.M() / 3, g.M() / 2, 2 * g.M() / 3, g.M() - 1}
	repl := map[[2]int]Dist{}
	var changes []EdgeChange
	for _, i := range picks {
		e := g.Edges()[i]
		key := [2]int{e.U, e.V}
		if _, dup := repl[key]; dup || e.Weight <= 1 {
			continue
		}
		repl[key] = e.Weight / 2
		changes = append(changes, EdgeChange{U: e.U, V: e.V, PrevWeight: e.Weight})
	}
	if len(changes) < 3 {
		t.Fatalf("test graph yielded only %d usable changes", len(changes))
	}
	ng := reweighted(t, g, repl)

	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			set, err := Build(g, kindOptions(kind, 21))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := set.UpdateEdges(ng, changes); err != nil {
				t.Fatalf("UpdateEdges: %v", err)
			}
			rebuilt, err := Build(ng, kindOptions(kind, 21))
			if err != nil {
				t.Fatal(err)
			}
			requireSameBytes(t, "repair vs rebuild", set, allSketchBytes(t, rebuilt))
		})
	}
}

// TestUpdateEdgesEmptyBatch: a nil batch succeeds with zero cost and
// changes nothing, for every kind.
func TestUpdateEdgesEmptyBatch(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 32, 2, 20, 22)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allKinds {
		set, err := Build(g, kindOptions(kind, 22))
		if err != nil {
			t.Fatal(err)
		}
		before := allSketchBytes(t, set)
		stats, err := set.UpdateEdges(g, nil)
		if err != nil {
			t.Fatalf("%s: empty batch: %v", kind, err)
		}
		if stats != (Stats{}) {
			t.Errorf("%s: empty batch cost %+v, want zero", kind, stats)
		}
		requireSameBytes(t, string(kind)+" empty batch", set, before)
	}
}

// pathGraph builds an n-node path with uniform weight w: every edge is a
// cut edge, so any weight increase is guaranteed to change distances
// across it.
func pathGraph(t *testing.T, n int, w Dist) *Graph {
	t.Helper()
	nb := NewGraphBuilder(n)
	for u := 0; u+1 < n; u++ {
		nb.AddEdge(u, u+1, w)
	}
	g, err := nb.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestUpdateEdgesUnsoundBatchRejectsAtomically pins the rejection
// contract: a batch containing one unsound change (a weight increase the
// repair cannot verify, or a CDG/graceful change without a certified
// previous weight) fails with ErrRebuildRequired and leaves the set —
// every sketch byte and the cost accounting — exactly as it was, even
// when the same batch also contains perfectly repairable decreases.
func TestUpdateEdgesUnsoundBatchRejectsAtomically(t *testing.T) {
	g := pathGraph(t, 32, 5)
	mid := [2]int{15, 16}
	// One good decrease at the front, one increase across the middle cut.
	repl := map[[2]int]Dist{{2, 3}: 2, mid: 50}
	ng := reweighted(t, g, repl)
	batch := []EdgeChange{
		{U: 2, V: 3, PrevWeight: 5},
		{U: 15, V: 16, PrevWeight: 5},
	}

	for _, kind := range []Kind{KindLandmark, KindCDG, KindGraceful} {
		t.Run(string(kind), func(t *testing.T) {
			set, err := Build(g, kindOptions(kind, 23))
			if err != nil {
				t.Fatal(err)
			}
			before := allSketchBytes(t, set)
			cost := set.Cost().Total
			_, err = set.UpdateEdges(ng, batch)
			if !errors.Is(err, ErrRebuildRequired) {
				t.Fatalf("unsound batch: got %v, want ErrRebuildRequired", err)
			}
			requireSameBytes(t, "after rejected batch", set, before)
			if set.Cost().Total != cost {
				t.Errorf("rejected batch changed cost accounting")
			}
		})
	}

	// TZ repairs are verified against the new graph directly, so an
	// increase either repairs to the exact rebuild or is rejected — on a
	// path the stale entries are guaranteed unless every touched cluster
	// is regrown, so assert whichever way it lands is consistent.
	t.Run(string(KindTZ), func(t *testing.T) {
		set, err := Build(g, kindOptions(KindTZ, 23))
		if err != nil {
			t.Fatal(err)
		}
		before := allSketchBytes(t, set)
		_, err = set.UpdateEdges(ng, batch)
		if err != nil {
			if !errors.Is(err, ErrRebuildRequired) {
				t.Fatalf("tz unsound batch: got %v, want ErrRebuildRequired", err)
			}
			requireSameBytes(t, "after rejected tz batch", set, before)
			return
		}
		rebuilt, err := Build(ng, kindOptions(KindTZ, 23))
		if err != nil {
			t.Fatal(err)
		}
		requireSameBytes(t, "tz repair-of-increase vs rebuild", set, allSketchBytes(t, rebuilt))
	})
}

// TestUpdateEdgesCDGNeedsPrevWeight: without a certified previous
// weight, CDG and graceful batches are rejected with ErrRebuildRequired
// (their net-restricted labels admit no post-hoc exactness check), and
// the single-edge UpdateEdge convenience inherits that.
func TestUpdateEdgesCDGNeedsPrevWeight(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 48, 5, 50, 24)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[g.M()/2]
	ng := reweighted(t, g, map[[2]int]Dist{{e.U, e.V}: 1})
	for _, kind := range []Kind{KindCDG, KindGraceful} {
		set, err := Build(g, kindOptions(kind, 24))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := set.UpdateEdges(ng, []EdgeChange{{U: e.U, V: e.V}}); !errors.Is(err, ErrRebuildRequired) {
			t.Errorf("%s: unknown PrevWeight: got %v, want ErrRebuildRequired", kind, err)
		}
		if _, err := set.UpdateEdge(ng, e.U, e.V); !errors.Is(err, ErrRebuildRequired) {
			t.Errorf("%s: UpdateEdge: got %v, want ErrRebuildRequired", kind, err)
		}
		// With the weight certified, the same change repairs to the exact
		// rebuild.
		if _, err := set.UpdateEdges(ng, []EdgeChange{{U: e.U, V: e.V, PrevWeight: e.Weight}}); err != nil {
			t.Fatalf("%s: certified decrease: %v", kind, err)
		}
		rebuilt, err := Build(ng, kindOptions(kind, 24))
		if err != nil {
			t.Fatal(err)
		}
		requireSameBytes(t, string(kind)+" certified decrease", set, allSketchBytes(t, rebuilt))
	}
}

// TestUpdateEdgesRandomChurn is the property test: random churn
// sequences (decreases, repeats, and same-weight no-ops mixed into each
// batch) applied through UpdateEdges must track a fresh rebuild
// byte-for-byte at every step, for every kind.
func TestUpdateEdgesRandomChurn(t *testing.T) {
	base, err := NewRandomWeightedGraph(FamilyGeometric, 48, 4, 40, 25)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for _, kind := range allKinds {
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(25)))
			g := base
			set, err := Build(g, kindOptions(kind, 25))
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < rounds; r++ {
				repl := map[[2]int]Dist{}
				var batch []EdgeChange
				for picks := 0; picks < 5; picks++ {
					e := g.Edges()[rng.Intn(g.M())]
					key := [2]int{e.U, e.V}
					if _, dup := repl[key]; dup {
						// Deliberately repeat a change: duplicates must
						// collapse, not double-apply.
						batch = append(batch, EdgeChange{U: e.V, V: e.U, PrevWeight: e.Weight})
						continue
					}
					// New weight in [1, old]: sometimes a no-op, never an
					// increase.
					nw := 1 + Dist(rng.Int63n(int64(e.Weight)))
					repl[key] = nw
					batch = append(batch, EdgeChange{U: e.U, V: e.V, PrevWeight: e.Weight})
				}
				ng := reweighted(t, g, repl)
				if _, err := set.UpdateEdges(ng, batch); err != nil {
					t.Fatalf("round %d: UpdateEdges: %v", r, err)
				}
				rebuilt, err := Build(ng, kindOptions(kind, 25))
				if err != nil {
					t.Fatal(err)
				}
				requireSameBytes(t, "churn round", set, allSketchBytes(t, rebuilt))
				g = ng
			}
		})
	}
}

// TestUpdateEdgeTZSingle: the single-edge convenience now covers TZ sets
// too (one repair code path), reproducing the rebuild exactly.
func TestUpdateEdgeTZSingle(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 56, 5, 50, 26)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(g, kindOptions(KindTZ, 26))
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[g.M()/3]
	ng := reweighted(t, g, map[[2]int]Dist{{e.U, e.V}: 1})
	if _, err := set.UpdateEdge(ng, e.U, e.V); err != nil {
		t.Fatalf("UpdateEdge: %v", err)
	}
	rebuilt, err := Build(ng, kindOptions(KindTZ, 26))
	if err != nil {
		t.Fatal(err)
	}
	requireSameBytes(t, "tz single edge", set, allSketchBytes(t, rebuilt))
}
