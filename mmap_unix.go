//go:build unix

package distsketch

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping outlives f's
// file descriptor (the kernel keeps the pages alive until Munmap), so
// the caller may close f immediately. mapped reports a true OS mapping;
// the !unix fallback reads a heap copy instead and reports false.
func mmapFile(f *os.File, size int) (data []byte, mapped bool, unmap func([]byte) error, err error) {
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, nil, err
	}
	return data, true, syscall.Munmap, nil
}
