package distsketch

import (
	"fmt"

	"distsketch/internal/sketch"
)

// Sketch is one node's decoded distance sketch — the first-class value of
// the paper's query model (Section 2.1): a node ships its sketch as
// bytes, and the receiver decodes it once with ParseSketch and then
// answers any number of Estimate calls with no further decoding. This is
// the fast path for serving heavy query traffic; the package-level
// Estimate function is the convenience wrapper that re-decodes per call.
type Sketch struct {
	kind  Kind
	label sketch.Label
}

// kindOfTag maps a wire-format tag byte to its public Kind.
func kindOfTag(tag byte) Kind {
	switch tag {
	case sketch.TagTZ:
		return KindTZ
	case sketch.TagLandmark:
		return KindLandmark
	case sketch.TagCDG:
		return KindCDG
	case sketch.TagGraceful:
		return KindGraceful
	default:
		return ""
	}
}

// ParseSketch decodes a serialized sketch into a queryable Sketch value.
// The input is untrusted (it typically arrives from a remote peer):
// malformed bytes yield an error, never a panic.
func ParseSketch(data []byte) (*Sketch, error) {
	l, err := sketch.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("distsketch: %w", err)
	}
	return &Sketch{kind: kindOfTag(sketch.LabelTag(l)), label: l}, nil
}

// Kind returns the construction this sketch came from.
func (s *Sketch) Kind() Kind { return s.kind }

// Owner returns the node this sketch describes.
func (s *Sketch) Owner() int { return s.label.LabelOwner() }

// Words returns the sketch size in O(log n)-bit words, the unit the
// paper's size bounds use.
func (s *Sketch) Words() int { return s.label.SizeWords() }

// MarshalBinary serializes the sketch in the wire format ParseSketch
// accepts. It implements encoding.BinaryMarshaler.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	return sketch.Marshal(s.label), nil
}

// Estimate computes a distance estimate between this sketch's owner and
// o's owner from the two sketches alone. The sketches must be of the
// same kind.
func (s *Sketch) Estimate(o *Sketch) (Dist, error) {
	if o == nil {
		return 0, fmt.Errorf("distsketch: nil sketch")
	}
	d, err := sketch.Query(s.label, o.label)
	if err != nil {
		return 0, fmt.Errorf("distsketch: %w", err)
	}
	return d, nil
}

// Estimate computes a distance estimate from two serialized sketches of
// the same kind, without any other state — the paper's query model. It
// decodes both inputs on every call; callers issuing many queries should
// ParseSketch once and use Sketch.Estimate instead.
func Estimate(a, b []byte) (Dist, error) {
	sa, err := ParseSketch(a)
	if err != nil {
		return 0, err
	}
	sb, err := ParseSketch(b)
	if err != nil {
		return 0, err
	}
	return sa.Estimate(sb)
}
