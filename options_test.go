package distsketch

import (
	"bytes"
	"strings"
	"testing"
)

func TestBandwidthBatchOption(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyER, 64, 1, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Build(g, Options{Kind: KindTZ, K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Build(g, Options{Kind: KindTZ, K: 3, Seed: 3, BandwidthBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Rounds() > base.Rounds() {
		t.Errorf("batched rounds %d > unbatched %d", fast.Rounds(), base.Rounds())
	}
	for u := 0; u < 64; u += 9 {
		for v := 0; v < 64; v += 7 {
			if base.Query(u, v) != fast.Query(u, v) {
				t.Fatalf("(%d,%d): batched query differs", u, v)
			}
		}
	}
}

func TestMaxDelayOption(t *testing.T) {
	g, err := NewRandomGraph(FamilyGrid, 36, 4)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := Build(g, Options{Kind: KindTZ, K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	async, err := Build(g, Options{Kind: KindTZ, K: 2, Seed: 4, MaxDelay: 4})
	if err != nil {
		t.Fatal(err)
	}
	if async.Rounds() <= sync.Rounds() {
		t.Errorf("async rounds %d should exceed sync %d", async.Rounds(), sync.Rounds())
	}
	for u := 0; u < g.N(); u += 5 {
		for v := 0; v < g.N(); v += 3 {
			if sync.Query(u, v) != async.Query(u, v) {
				t.Fatalf("(%d,%d): async query differs", u, v)
			}
		}
	}
}

func TestGraphIOFacade(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyTree, 20, 1, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "p 20 19\n") {
		t.Errorf("unexpected header: %q", buf.String()[:12])
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 20 || got.M() != 19 {
		t.Errorf("round trip: n=%d m=%d", got.N(), got.M())
	}
}
