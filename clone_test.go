package distsketch

// SketchSet.Clone is what the serving layer's clone-repair-swap cycle
// stands on: a clone must be estimate-identical, mutations of either
// copy must be invisible to the other, and cloning a lazily loaded set
// must share the decode cache (the blobs are immutable; duplicating
// them would double memory for nothing).

import (
	"bytes"
	"testing"
)

// TestCloneIsolatesOriginalRepair repairs the ORIGINAL after cloning —
// the direction the serve path never exercises (it always repairs the
// clone) — and demands the clone keep the pre-repair estimates.
func TestCloneIsolatesOriginalRepair(t *testing.T) {
	g, err := NewRandomWeightedGraph(FamilyGeometric, 16, 2, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(g, Options{Kind: KindLandmark, Eps: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	edge := g.Edges()[0]
	if edge.Weight < 2 {
		t.Fatalf("edge %v too light to decrease", edge)
	}

	clone := set.Clone()
	before := make(map[[2]int]Dist)
	for u := 0; u < set.N(); u++ {
		for v := u; v < set.N(); v += 3 {
			before[[2]int{u, v}] = clone.Query(u, v)
		}
	}

	nb := NewGraphBuilder(g.N())
	for _, e := range g.Edges() {
		w := e.Weight
		if e.U == edge.U && e.V == edge.V {
			w = 1
		}
		nb.AddEdge(e.U, e.V, w)
	}
	g2, err := nb.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.UpdateEdge(g2, edge.U, edge.V); err != nil {
		t.Fatalf("UpdateEdge on the original: %v", err)
	}

	changed := false
	for p, want := range before {
		if got := clone.Query(p[0], p[1]); got != want {
			t.Fatalf("repairing the original changed the clone's estimate (%d,%d): %d -> %d", p[0], p[1], want, got)
		}
		if set.Query(p[0], p[1]) != want {
			changed = true
		}
	}
	if !changed {
		t.Error("the repair moved no estimate; the isolation check proved nothing")
	}
	// The clone's cost ledger is its own: the repair's cost accrued to
	// the original only.
	if set.Messages() == clone.Messages() {
		t.Error("repair cost did not accrue, or accrued to both copies")
	}
}

// TestCloneSharesLazyDecodeCache clones a lazily loaded (version-2) set
// and verifies the clones share first-touch decode state instead of
// duplicating blob memory, and that materializing one copy does not
// strip the other's lazy plumbing.
func TestCloneSharesLazyDecodeCache(t *testing.T) {
	eager := faultSet(t)
	lazy, err := ReadSketchSet(bytes.NewReader(envelopeBytes(t, eager, SetVersion2)))
	if err != nil {
		t.Fatal(err)
	}
	if lazy.DecodedSketches() != 0 {
		t.Fatalf("fresh lazy set reports %d decoded sketches", lazy.DecodedSketches())
	}
	clone := lazy.Clone()
	if clone.EnvelopeVersion() != SetVersion2 {
		t.Errorf("clone envelope version = %d, want %d", clone.EnvelopeVersion(), SetVersion2)
	}
	if got, want := clone.Query(3, 5), eager.Query(3, 5); got != want {
		t.Fatalf("clone Query(3,5) = %d, want %d", got, want)
	}
	// The decode the clone just paid for is visible through the original:
	// one cache, not two copies of the blobs.
	if lazy.DecodedSketches() == 0 {
		t.Error("clone's first-touch decode invisible to the original; Clone duplicated the decode cache")
	}
	for u := 0; u < eager.N(); u += 2 {
		for v := u; v < eager.N(); v += 3 {
			if got, want := clone.Query(u, v), eager.Query(u, v); got != want {
				t.Fatalf("lazy clone Query(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
	// Materializing the clone must not tear the lazy state out from under
	// the original.
	if err := clone.Materialize(); err != nil {
		t.Fatal(err)
	}
	if clone.DecodedSketches() != eager.N() {
		t.Errorf("materialized clone reports %d/%d decoded", clone.DecodedSketches(), eager.N())
	}
	if lazy.lazy == nil {
		t.Fatal("materializing the clone dropped the original's lazy state")
	}
	if got, want := lazy.Query(1, 4), eager.Query(1, 4); got != want {
		t.Errorf("original after clone materialize: Query(1,4) = %d, want %d", got, want)
	}
}
