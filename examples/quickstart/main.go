// Quickstart: build Thorup–Zwick distance sketches on a random weighted
// network in a simulated CONGEST system, then answer distance queries from
// pairs of sketches alone.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"distsketch"
)

func main() {
	// A 256-node random geometric network with latency-like weights —
	// the kind of topology a network coordinate system targets.
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 256, 1, 100, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n", g.N(), g.M())

	// Build stretch-5 sketches (k=3 ⇒ stretch 2k-1 = 5). The build runs
	// the paper's distributed algorithm: every node ends up holding its
	// own sketch, having exchanged only O(log n)-bit messages.
	res, err := distsketch.Build(g, distsketch.Options{
		Kind: distsketch.KindTZ,
		K:    3,
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("construction: %d rounds, %d messages, %d words on the wire\n",
		res.Rounds(), res.Messages(), res.Words())
	fmt.Printf("sketch size: max %d words, mean %.1f words per node\n",
		res.MaxSketchWords(), res.MeanSketchWords())

	// Query: only the two sketches are consulted.
	for _, pair := range [][2]int{{0, 255}, {17, 200}, {3, 4}} {
		u, v := pair[0], pair[1]
		fmt.Printf("estimated d(%d,%d) = %d\n", u, v, res.Query(u, v))
	}

	// The deployment story (Section 2.1 of the paper): node u asks node v
	// for its serialized sketch, decodes it once, and estimates the
	// distance offline — and keeps the decoded Sketch around to answer
	// any number of further queries without re-parsing.
	blobU, blobV := res.SketchBytes(0), res.SketchBytes(255)
	su, err := distsketch.ParseSketch(blobU)
	if err != nil {
		log.Fatal(err)
	}
	sv, err := distsketch.ParseSketch(blobV)
	if err != nil {
		log.Fatal(err)
	}
	est, err := su.Estimate(sv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized sketches: %d + %d bytes, estimate %d\n",
		len(blobU), len(blobV), est)
}
