// Tradeoff sweep: the Thorup–Zwick size/stretch/construction-cost tradeoff
// curve that Theorem 1.1 formalizes, measured end to end. For k = 1 the
// sketches store exact distances to everyone (huge); at k = log n they
// shrink to polylog words at stretch O(log n).
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"distsketch"
)

func main() {
	const n = 256
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyER, n, 1, 50, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n\n", g.N(), g.M())

	exact, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindTZ, K: 1, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewPCG(5, 2))
	type pair struct{ u, v int }
	var queries []pair
	for len(queries) < 3000 {
		u, v := int(r.Int64N(n)), int(r.Int64N(n))
		if u != v {
			queries = append(queries, pair{u, v})
		}
	}

	fmt.Printf("%3s  %8s  %10s  %10s  %12s  %9s  %9s\n",
		"k", "bound", "max words", "mean words", "build msgs", "max str", "avg str")
	for k := 1; k <= 8; k++ {
		res, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindTZ, K: k, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		var maxS, sumS float64
		var cnt int
		for _, q := range queries {
			d := exact.Query(q.u, q.v)
			if d == 0 {
				continue
			}
			s := float64(res.Query(q.u, q.v)) / float64(d)
			if s > maxS {
				maxS = s
			}
			sumS += s
			cnt++
		}
		fmt.Printf("%3d  %8d  %10d  %10.1f  %12d  %9.3f  %9.3f\n",
			k, 2*k-1, res.MaxSketchWords(), res.MeanSketchWords(),
			res.Messages(), maxS, sumS/float64(cnt))
	}
	fmt.Println("\nmeasured max stretch stays under the 2k-1 bound while the sketch")
	fmt.Println("shrinks from O(n) words (k=1) toward polylog (k≈log n) — Theorem 1.1's tradeoff.")
}
