// Greedy routing with distance sketches — one of the applications the
// paper's Section 2.1 motivates ("small-world routing", "search"). A
// packet at node x holding the *target's* sketch picks the neighbor y
// minimizing the sketch estimate of d(y, target): each node only ever
// consults its neighbors' sketches and the one carried in the packet.
//
// This example measures how close greedy-by-sketch paths come to true
// shortest paths, and how often greedy routing gets stuck in a local
// minimum (it then falls back to the best unvisited neighbor).
//
// Run with: go run ./examples/greedyroute
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"distsketch"
)

func main() {
	const n = 256
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 1, 100, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d links\n\n", g.N(), g.M())

	exact, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindTZ, K: 1, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}

	for _, cfg := range []struct {
		name string
		opts distsketch.Options
	}{
		{"TZ k=2", distsketch.Options{Kind: distsketch.KindTZ, K: 2, Seed: 23}},
		{"TZ k=4", distsketch.Options{Kind: distsketch.KindTZ, K: 4, Seed: 23}},
		{"graceful", distsketch.Options{Kind: distsketch.KindGraceful, Seed: 23}},
	} {
		res, err := distsketch.Build(g, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		run(g, exact, res, cfg.name)
	}
	fmt.Println("\nroute stretch ≈ 1 means greedy forwarding on sketch estimates recovers")
	fmt.Println("near-shortest paths with only neighbor-local decisions.")
}

func run(g *distsketch.Graph, exact, res *distsketch.SketchSet, name string) {
	r := rand.New(rand.NewPCG(23, 7))
	const trials = 300
	var sumStretch float64
	var ok, stuck int
	for i := 0; i < trials; i++ {
		src := int(r.Int64N(int64(g.N())))
		dst := int(r.Int64N(int64(g.N())))
		if src == dst {
			continue
		}
		cost, reached, detours := route(g, res, src, dst)
		if !reached {
			stuck++
			continue
		}
		d := exact.Query(src, dst)
		if d > 0 {
			sumStretch += float64(cost) / float64(d)
			ok++
		}
		_ = detours
	}
	fmt.Printf("%-10s  max words %4d   route stretch %.3f   delivered %d/%d\n",
		name, res.MaxSketchWords(), sumStretch/float64(ok), ok, ok+stuck)
}

// route forwards greedily: next hop = unvisited neighbor minimizing
// (weight to neighbor + estimated d(neighbor, dst)).
func route(g *distsketch.Graph, res *distsketch.SketchSet, src, dst int) (cost distsketch.Dist, reached bool, detours int) {
	visited := map[int]bool{src: true}
	cur := src
	for steps := 0; steps < 4*g.N(); steps++ {
		if cur == dst {
			return cost, true, detours
		}
		best := distsketch.Inf
		next := -1
		for _, arc := range g.Adj(cur) {
			if visited[arc.To] {
				continue
			}
			est := res.Query(arc.To, dst)
			if arc.To == dst {
				est = 0
			}
			score := arc.Weight + est
			if score < best {
				best = score
				next = arc.To
			}
		}
		if next == -1 {
			return cost, false, detours
		}
		w, _ := g.EdgeWeight(cur, next)
		cost += w
		visited[next] = true
		cur = next
	}
	return cost, false, detours
}
