// Network-coordinates scenario: the paper positions distance sketches as
// a provable alternative to network coordinate systems (Vivaldi, Meridian)
// for estimating pairwise latencies. This example builds a latency-like
// weighted geometric network and compares the sketch kinds on estimation
// accuracy over a random workload of queries, including the ε-slack
// behaviour (a few pairs may be estimated badly, most are tight).
//
// Run with: go run ./examples/netcoords
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sort"

	"distsketch"
)

func main() {
	const n = 256
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 1, 1000, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency network: %d nodes, %d links, weights ≈ link latency\n\n", g.N(), g.M())

	// Ground truth via k=1 sketches (k=1 ⇒ stretch 1, i.e. exact
	// distances; expensive to build and store, which is the point of the
	// other kinds).
	exact, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindTZ, K: 1, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	kinds := []struct {
		name string
		opts distsketch.Options
	}{
		{"TZ k=3", distsketch.Options{Kind: distsketch.KindTZ, K: 3, Seed: 99}},
		{"TZ k=8 (≈log n)", distsketch.Options{Kind: distsketch.KindTZ, K: 8, Seed: 99}},
		{"landmark ε=1/8", distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.125, Seed: 99}},
		{"CDG ε=1/8 k=2", distsketch.Options{Kind: distsketch.KindCDG, Eps: 0.125, K: 2, Seed: 99}},
		{"graceful", distsketch.Options{Kind: distsketch.KindGraceful, Seed: 99}},
	}

	// A random query workload, as a coordinate system would face.
	r := rand.New(rand.NewPCG(99, 1))
	type pair struct{ u, v int }
	var queries []pair
	for len(queries) < 4000 {
		u, v := int(r.Int64N(n)), int(r.Int64N(n))
		if u != v {
			queries = append(queries, pair{u, v})
		}
	}

	fmt.Printf("%-18s  %10s  %8s  %8s  %8s  %8s\n",
		"sketch", "max words", "median", "p90", "p99", "worst")
	fmt.Println("                                (stretch over 4000 random queries)")
	for _, kind := range kinds {
		res, err := distsketch.Build(g, kind.opts)
		if err != nil {
			log.Fatal(err)
		}
		var stretches []float64
		for _, q := range queries {
			d := exact.Query(q.u, q.v)
			if d == 0 || d == distsketch.Inf {
				continue
			}
			est := res.Query(q.u, q.v)
			if est == distsketch.Inf {
				continue // slack kinds may miss a few near pairs
			}
			stretches = append(stretches, float64(est)/float64(d))
		}
		sort.Float64s(stretches)
		q := func(p float64) float64 { return stretches[int(p*float64(len(stretches)-1))] }
		fmt.Printf("%-18s  %10d  %8.3f  %8.3f  %8.3f  %8.3f\n",
			kind.name, res.MaxSketchWords(), q(0.5), q(0.9), q(0.99), q(1.0))
	}
	fmt.Println("\nthe slack kinds trade a bad tail on the few nearest pairs for much smaller state;")
	fmt.Println("the graceful sketch keeps the tail bounded at every scale simultaneously.")
}
