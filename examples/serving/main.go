// Serving scenario: the paper's end-to-end story. A one-time distributed
// construction builds the sketches (the expensive part the theorems
// bound); the set is persisted to an envelope; and a separate serving
// process — which never sees the construction — loads the envelope and
// answers distance queries over HTTP for "millions of users", repairing
// the live set in place when a link improves.
//
// This walkthrough runs all three roles in one process against a
// loopback server, exercising every sketchserve endpoint the way curl
// would:
//
//	GET  /query?u=&v=     GET /sketch/{u}     GET /stats
//	POST /query (batch)   POST /update-edge
//
// Run with: go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"distsketch"
	"distsketch/internal/serve"
)

func main() {
	// ---- Build once (the operator's box) ------------------------------
	const n = 256
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 10, 100, 42)
	if err != nil {
		log.Fatal(err)
	}
	set, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "distsketch-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	envelope := filepath.Join(dir, "net.dsk")
	f, err := os.Create(envelope)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := set.WriteTo(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built:   %d nodes, %d rounds, %d messages; envelope %s\n",
		set.N(), set.Rounds(), set.Messages(), envelope)

	// ---- Load and serve (the serving process) -------------------------
	// The server rebuilds nothing: ReadSketchSet decodes every sketch
	// once and queries run from the in-memory cache.
	ef, err := os.Open(envelope)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := distsketch.ReadSketchSet(ef)
	ef.Close()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(loaded, serve.Options{Graph: g})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving: %s (kind=%s, mean sketch %.1f words)\n\n", ts.URL, loaded.Kind(), loaded.MeanSketchWords())

	// ---- Single queries -----------------------------------------------
	for _, pair := range [][2]int{{0, 255}, {17, 203}, {99, 100}} {
		var res serve.QueryResult
		getJSON(ts.URL+fmt.Sprintf("/query?u=%d&v=%d", pair[0], pair[1]), &res)
		fmt.Printf("GET /query?u=%d&v=%d       -> d ≈ %s (in-process: %d)\n",
			pair[0], pair[1], estStr(res), set.Query(pair[0], pair[1]))
	}

	// ---- Batched queries ----------------------------------------------
	// One request, many estimates: the handler overhead is paid once.
	var body strings.Builder
	body.WriteString(`{"pairs":[`)
	for i := 0; i < 5; i++ {
		if i > 0 {
			body.WriteString(",")
		}
		fmt.Fprintf(&body, `{"u":%d,"v":%d}`, i*13, 255-i*11)
	}
	body.WriteString("]}")
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body.String()))
	if err != nil {
		log.Fatal(err)
	}
	var batch serve.BatchReply
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nPOST /query with %d pairs -> ", len(batch.Results))
	for _, r := range batch.Results {
		fmt.Printf("d(%d,%d)≈%s ", r.U, r.V, estStr(r))
	}
	fmt.Println()

	// ---- Peer-side sketch fetch (Section 2.1) -------------------------
	// A peer asks the server for two sketches and estimates locally —
	// the query needs no further help from the server.
	a := fetchSketch(ts.URL, 0)
	b := fetchSketch(ts.URL, 255)
	est, err := a.Estimate(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGET /sketch/0 + /sketch/255, estimated peer-side: d ≈ %d\n", est)

	// ---- A link improves: repair behind the atomic swap ---------------
	e := g.Edges()[0]
	upd := fmt.Sprintf(`{"u":%d,"v":%d,"weight":1}`, e.U, e.V)
	resp, err = http.Post(ts.URL+"/update-edge", "application/json", strings.NewReader(upd))
	if err != nil {
		log.Fatal(err)
	}
	var rep serve.UpdateReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nPOST /update-edge (%d,%d) %d->1: repaired in %d messages (build took %d)\n",
		e.U, e.V, e.Weight, rep.Messages, set.Messages())
	var res serve.QueryResult
	getJSON(ts.URL+fmt.Sprintf("/query?u=%d&v=%d", e.U, e.V), &res)
	fmt.Printf("GET /query?u=%d&v=%d now     -> d ≈ %s\n", e.U, e.V, estStr(res))

	// A weight *increase* is refused — the warm-start repair cannot
	// restore exact labels, so the server keeps serving the old set and
	// tells the operator to rebuild.
	upd = fmt.Sprintf(`{"u":%d,"v":%d,"weight":%d}`, e.U, e.V, e.Weight*10)
	resp, err = http.Post(ts.URL+"/update-edge", "application/json", strings.NewReader(upd))
	if err != nil {
		log.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /update-edge (increase) -> HTTP %d: %s\n", resp.StatusCode, bytes.TrimSpace(msg))

	// ---- Operator stats ----------------------------------------------
	var stats serve.StatsReply
	getJSON(ts.URL+"/stats", &stats)
	fmt.Printf("\nGET /stats -> %d queries served, %d updates applied, construction %d rounds / %d messages\n",
		stats.QueriesServed, stats.UpdatesApplied, stats.Cost.Rounds, stats.Cost.Messages)
}

// estStr renders a query result's estimate, honoring the unreachable
// and per-pair error cases the wire format can carry.
func estStr(r serve.QueryResult) string {
	switch {
	case r.Error != "":
		return "error: " + r.Error
	case r.Estimate == nil:
		return "∞"
	default:
		return fmt.Sprintf("%d", *r.Estimate)
	}
}

func getJSON(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}

func fetchSketch(base string, u int) *distsketch.Sketch {
	resp, err := http.Get(fmt.Sprintf("%s/sketch/%d", base, u))
	if err != nil {
		log.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	sk, err := distsketch.ParseSketch(blob)
	if err != nil {
		log.Fatal(err)
	}
	return sk
}
