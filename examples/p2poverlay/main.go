// P2P overlay scenario (Section 2.1 of the paper): in an unstructured
// peer-to-peer overlay, a node that knows another peer's address can fetch
// that peer's sketch directly and estimate the overlay hop distance in
// constant time — no flooding, no routing-table state.
//
// This example builds a Barabási–Albert overlay (preferential attachment,
// like real unstructured P2P networks), constructs sketches of several
// kinds, and compares what each costs and delivers for overlay-distance
// estimation.
//
// Run with: go run ./examples/p2poverlay
package main

import (
	"fmt"
	"log"

	"distsketch"
)

func main() {
	const n = 512
	// Unit weights: distance = overlay hop count.
	overlay, err := distsketch.NewRandomGraph(distsketch.FamilyBA, n, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P2P overlay: %d peers, %d links\n\n", overlay.N(), overlay.M())

	type config struct {
		name string
		opts distsketch.Options
	}
	configs := []config{
		{"TZ k=2 (stretch ≤ 3)", distsketch.Options{Kind: distsketch.KindTZ, K: 2, Seed: 7}},
		{"TZ k=3 (stretch ≤ 5)", distsketch.Options{Kind: distsketch.KindTZ, K: 3, Seed: 7}},
		{"TZ k=5 (stretch ≤ 9)", distsketch.Options{Kind: distsketch.KindTZ, K: 5, Seed: 7}},
		{"landmark ε=1/4 (stretch ≤ 3 for 75% of pairs)",
			distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 7}},
		{"graceful (avg stretch O(1))", distsketch.Options{Kind: distsketch.KindGraceful, Seed: 7}},
	}

	fmt.Printf("%-48s  %8s  %12s  %10s  %10s\n",
		"sketch", "rounds", "messages", "max words", "mean words")
	results := make([]*distsketch.SketchSet, len(configs))
	for i, c := range configs {
		res, err := distsketch.Build(overlay, c.opts)
		if err != nil {
			log.Fatal(err)
		}
		results[i] = res
		fmt.Printf("%-48s  %8d  %12d  %10d  %10.1f\n",
			c.name, res.Rounds(), res.Messages(), res.MaxSketchWords(), res.MeanSketchWords())
	}

	// A peer looks up a handful of strangers by address, fetches each
	// sketch once, decodes it once (ParseSketch), and estimates overlay
	// distance from the decoded values — the decode cost is paid per
	// peer, not per query.
	fmt.Println("\npairwise overlay-hop estimates (true hop distance in a BA overlay is tiny):")
	pairs := [][2]int{{0, 511}, {42, 300}, {100, 101}, {7, 450}}
	fmt.Printf("%-10s", "pair")
	for _, c := range configs {
		fmt.Printf("  %-12s", c.name[:min(12, len(c.name))])
	}
	fmt.Println()
	for _, p := range pairs {
		fmt.Printf("(%3d,%3d) ", p[0], p[1])
		for _, res := range results {
			su, err := distsketch.ParseSketch(res.SketchBytes(p[0]))
			if err != nil {
				log.Fatal(err)
			}
			sv, err := distsketch.ParseSketch(res.SketchBytes(p[1]))
			if err != nil {
				log.Fatal(err)
			}
			est, err := su.Estimate(sv)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12d", est)
		}
		fmt.Println()
	}
	fmt.Println("\nlarger k shrinks the per-peer state; the estimate degrades gracefully.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
