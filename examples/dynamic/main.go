// Dynamic maintenance scenario: the paper's introduction notes that
// real networks change, so sketches must be refreshed periodically. This
// example builds sketches on a weighted network and keeps them fresh
// through the unified batched repair pipeline: each round of link
// improvements is applied as ONE batch with SketchSet.UpdateEdges — one
// clone-repair-verify cycle for the whole round — and the result is
// byte-for-byte what a fresh rebuild would produce, at a fraction of the
// cost. The sustained-churn section measures what batching buys over
// per-edge repairs: fewer verification passes, a shorter staleness
// window (the wall-clock gap between a weight change landing and the
// queries reflecting it), and a rebuild-vs-repair cost ratio that holds
// for every sketch kind, not just landmark.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"distsketch"
)

// halve returns a copy of g with every batch edge's weight halved, plus
// the change records UpdateEdges needs (PrevWeight certifies the old
// weight, which lets even net-restricted kinds verify the repair).
func halve(g *distsketch.Graph, batch []distsketch.Edge) (*distsketch.Graph, []distsketch.EdgeChange, error) {
	repl := map[[2]int]distsketch.Dist{}
	changes := make([]distsketch.EdgeChange, 0, len(batch))
	for _, e := range batch {
		repl[[2]int{e.U, e.V}] = e.Weight / 2
		changes = append(changes, distsketch.EdgeChange{U: e.U, V: e.V, PrevWeight: e.Weight})
	}
	nb := distsketch.NewGraphBuilder(g.N())
	for _, x := range g.Edges() {
		w := x.Weight
		if nw, ok := repl[[2]int{x.U, x.V}]; ok {
			w = nw
		}
		nb.AddEdge(x.U, x.V, w)
	}
	ng, err := nb.Freeze()
	if err != nil {
		return nil, nil, err
	}
	return ng, changes, nil
}

// pickBatch draws size distinct improvable edges (weight >= 2).
func pickBatch(r *rand.Rand, g *distsketch.Graph, size int) []distsketch.Edge {
	edges := g.Edges()
	seen := map[[2]int]bool{}
	var out []distsketch.Edge
	for len(out) < size {
		e := edges[r.Int64N(int64(len(edges)))]
		key := [2]int{e.U, e.V}
		if seen[key] || e.Weight < 2 {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}

func main() {
	const n = 200
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 10, 100, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d links\n\n", g.N(), g.M())

	// --- Batched repair vs rebuild, per round, on a landmark set -------
	set, err := distsketch.Build(g, distsketch.Options{
		Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial build: %d rounds, %d messages\n\n", set.Rounds(), set.Messages())

	r := rand.New(rand.NewPCG(17, 3))
	fmt.Printf("%-6s  %-6s  %14s  %14s  %9s\n",
		"round", "edges", "repair msgs", "rebuild msgs", "saving")
	cur := g
	for round := 1; round <= 4; round++ {
		batch := pickBatch(r, cur, 8)
		next, changes, err := halve(cur, batch)
		if err != nil {
			log.Fatal(err)
		}
		// One batch, one repair, one verification — for all 8 changes.
		repair, err := set.UpdateEdges(next, changes)
		if err != nil {
			log.Fatal(err)
		}
		rebuilt, err := distsketch.Build(next, distsketch.Options{
			Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 17,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, pair := range [][2]int{{0, n - 1}, {3, 170}, {40, 90}} {
			if got, want := set.Query(pair[0], pair[1]), rebuilt.Query(pair[0], pair[1]); got != want {
				log.Fatalf("round %d: repaired estimate d(%d,%d)=%d != rebuilt %d",
					round, pair[0], pair[1], got, want)
			}
		}
		fmt.Printf("%-6d  %-6d  %14d  %14d  %8.1fx\n",
			round, len(changes), repair.Messages, rebuilt.Messages(),
			float64(rebuilt.Messages())/float64(max(repair.Messages, 1)))
		cur = next
	}

	// --- Sustained churn: batched vs per-edge vs rebuild ---------------
	// The staleness window is the wall-clock gap between a weight change
	// landing and queries reflecting it. A batch pays one clone and one
	// verification for the whole round, so its window is far shorter than
	// per-edge repairs' (which pay the verification per change) — and
	// both beat rebuilding from scratch. The same pipeline serves every
	// kind; tz is shown alongside landmark.
	fmt.Println("\nsustained churn (6 rounds x 8 edges):")
	fmt.Printf("%-10s  %14s  %14s  %14s\n",
		"kind", "batched", "per-edge", "rebuild")
	for _, kind := range []distsketch.Kind{distsketch.KindLandmark, distsketch.KindTZ} {
		opts := distsketch.Options{Kind: kind, K: 2, Eps: 0.25, Seed: 17}
		batched, err := distsketch.Build(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		perEdge := batched.Clone()
		rc := rand.New(rand.NewPCG(17, 9))
		var tBatch, tSingle, tRebuild time.Duration
		churn := g
		for round := 0; round < 6; round++ {
			batch := pickBatch(rc, churn, 8)
			next, changes, err := halve(churn, batch)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			if _, err := batched.UpdateEdges(next, changes); err != nil {
				log.Fatal(err)
			}
			tBatch += time.Since(start)

			// The per-edge path must report each change against the graph
			// as of that change, so it walks a chain of intermediate
			// topologies (built outside the timer; only repairs are timed).
			inter := make([]*distsketch.Graph, len(changes))
			gg := churn
			for i, c := range changes {
				gg, _, err = halve(gg, []distsketch.Edge{{U: c.U, V: c.V, Weight: c.PrevWeight}})
				if err != nil {
					log.Fatal(err)
				}
				inter[i] = gg
			}
			start = time.Now()
			for i, c := range changes {
				if _, err := perEdge.UpdateEdges(inter[i], []distsketch.EdgeChange{c}); err != nil {
					log.Fatal(err)
				}
			}
			tSingle += time.Since(start)

			start = time.Now()
			if _, err := distsketch.Build(next, opts); err != nil {
				log.Fatal(err)
			}
			tRebuild += time.Since(start)
			churn = next
		}
		fmt.Printf("%-10s  %14s  %14s  %14s\n", kind, tBatch, tSingle, tRebuild)
	}
	fmt.Println("\nevery repair left the labels exactly equal to a fresh rebuild's;")
	fmt.Println("batching pays the clone and the verification once per round, not")
	fmt.Println("once per edge, shrinking the staleness window under sustained churn.")
}
