// Dynamic maintenance scenario: the paper's introduction notes that
// real networks change, so sketches must be refreshed periodically. This
// example builds landmark sketches on a weighted network, then simulates
// a sequence of link improvements (weight decreases) and repairs the
// sketch set in place with SketchSet.UpdateEdge instead of rebuilding,
// comparing the message cost of the two strategies while spot-checking
// that the repaired estimates match a fresh rebuild exactly.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"distsketch"
)

func main() {
	const n = 200
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 10, 100, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d links\n", g.N(), g.M())

	set, err := distsketch.Build(g, distsketch.Options{
		Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial build: %d rounds, %d messages\n\n", set.Rounds(), set.Messages())

	// Simulate link improvements: pick random edges, halve their weight,
	// and repair the live set with the warm-start protocol. The repair
	// cost scales with the region whose distances actually changed, not
	// with the network size.
	r := rand.New(rand.NewPCG(17, 3))
	fmt.Printf("%-8s  %-12s  %14s  %14s  %14s\n",
		"step", "edge", "repair msgs", "rebuild msgs", "saving")
	cur := g
	for step := 1; step <= 5; step++ {
		edges := cur.Edges()
		e := edges[r.Int64N(int64(len(edges)))]
		if e.Weight <= 1 {
			continue
		}
		nb := distsketch.NewGraphBuilder(cur.N())
		for _, x := range cur.Edges() {
			w := x.Weight
			if x.U == e.U && x.V == e.V {
				w = w / 2
			}
			nb.AddEdge(x.U, x.V, w)
		}
		cur, err = nb.Freeze()
		if err != nil {
			log.Fatal(err)
		}

		// Incremental repair: in place, exact, cheap.
		repair, err := set.UpdateEdge(cur, e.U, e.V)
		if err != nil {
			log.Fatal(err)
		}

		// The rebuild baseline the repair competes with.
		rebuilt, err := distsketch.Build(cur, distsketch.Options{
			Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 17,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, pair := range [][2]int{{0, n - 1}, {3, 170}, {40, 90}} {
			if got, want := set.Query(pair[0], pair[1]), rebuilt.Query(pair[0], pair[1]); got != want {
				log.Fatalf("step %d: repaired estimate d(%d,%d)=%d != rebuilt %d",
					step, pair[0], pair[1], got, want)
			}
		}
		fmt.Printf("%-8d  (%3d,%3d)    %14d  %14d  %13.1fx\n",
			step, e.U, e.V, repair.Messages, rebuilt.Messages(),
			float64(rebuilt.Messages())/float64(max(repair.Messages, 1)))
	}
	fmt.Println("\nevery repair left the labels exactly equal to a fresh rebuild's —")
	fmt.Println("the warm-start wave relaxes only the changed edge and re-propagates.")
}
