// Dynamic maintenance scenario: the paper's introduction notes that
// real networks change, so sketches must be refreshed periodically. This
// example builds landmark sketches on a weighted network, then simulates
// a sequence of link improvements (weight decreases) and repairs the
// sketches incrementally instead of rebuilding, comparing the message
// cost of the two strategies while spot-checking exactness.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"distsketch"
)

func main() {
	const n = 200
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, n, 10, 100, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d links\n", g.N(), g.M())

	res, err := distsketch.Build(g, distsketch.Options{
		Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial build: %d rounds, %d messages\n\n", res.Rounds(), res.Messages())

	// Simulate link improvements: pick random edges, halve their weight,
	// and repair. (The public facade exposes full rebuilds; the
	// incremental protocol lives in the library's core and is surfaced
	// through the UpdateLandmark API exercised by cmd/sketchbench -exp
	// E14. Here we measure the rebuild baseline the repair competes
	// with.)
	r := rand.New(rand.NewPCG(17, 3))
	edges := g.Edges()
	fmt.Printf("%-8s  %-12s  %14s  %14s\n", "step", "edge", "rebuild msgs", "est d(0,n-1)")
	cur := g
	for step := 1; step <= 5; step++ {
		e := edges[r.Int64N(int64(len(edges)))]
		nb := distsketch.NewGraphBuilder(cur.N())
		for _, x := range cur.Edges() {
			w := x.Weight
			if x.U == e.U && x.V == e.V && w > 1 {
				w = w / 2
			}
			nb.AddEdge(x.U, x.V, w)
		}
		cur, err = nb.Freeze()
		if err != nil {
			log.Fatal(err)
		}
		res, err = distsketch.Build(cur, distsketch.Options{
			Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 17,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d  (%3d,%3d)    %14d  %14d\n",
			step, e.U, e.V, res.Messages(), res.Query(0, cur.N()-1))
		edges = cur.Edges()
	}
	fmt.Println("\nthe incremental repair (see `sketchbench -exp E14`) replaces each of these")
	fmt.Println("rebuilds with a warm-start wave costing 10-400x fewer messages, exactly.")
}
