package distsketch

import (
	"context"
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/core"
)

// Build constructs distance sketches for every node of g in a simulated
// CONGEST network. It is BuildContext with a background context.
func Build(g *Graph, opts Options) (*SketchSet, error) {
	return BuildContext(context.Background(), g, opts)
}

// BuildContext is Build with cancellation: when ctx is canceled (or its
// deadline passes) the simulation stops at the next round boundary and
// the error wraps ctx.Err(). Combined with Options.Progress this makes
// long constructions observable and abortable.
func BuildContext(ctx context.Context, g *Graph, opts Options) (*SketchSet, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("distsketch: build canceled: %w", err)
	}
	cfg := congest.Config{Sequential: o.Sequential, MaxDelay: o.MaxDelay, Ctx: ctx}
	switch o.Kind {
	case KindTZ:
		mode := core.SyncOmniscient
		if o.Detection {
			mode = core.SyncDetection
		}
		res, err := core.BuildTZ(g, core.TZOptions{
			K: o.K, Seed: o.Seed, Mode: mode, Batch: o.BandwidthBatch, Congest: cfg,
			Progress: o.Progress,
		})
		if err != nil {
			return nil, err
		}
		set := &SketchSet{kind: KindTZ, cost: costOf(res.Cost)}
		// Execution order is phase k-1 down to 0.
		for phase := o.K - 1; phase >= 0; phase-- {
			set.cost.Phases = append(set.cost.Phases, PhaseCost{
				Name:  fmt.Sprintf("phase %d", phase),
				Stats: statsOf(res.Cost.PerPhase[phase]),
			})
		}
		for _, l := range res.Labels {
			set.sketches = append(set.sketches, &Sketch{kind: KindTZ, label: l})
		}
		return set, nil
	case KindLandmark:
		res, err := core.BuildLandmark(g, core.SlackOptions{
			Eps: o.Eps, Seed: o.Seed, Congest: cfg, Progress: o.Progress,
		})
		if err != nil {
			return nil, err
		}
		set := &SketchSet{kind: KindLandmark, cost: costOf(res.Cost), net: res.Net}
		set.cost.Phases = []PhaseCost{{Name: "landmark", Stats: statsOf(res.Cost.Total)}}
		for _, l := range res.Labels {
			set.sketches = append(set.sketches, &Sketch{kind: KindLandmark, label: l})
		}
		return set, nil
	case KindCDG:
		res, err := core.BuildCDG(g, core.SlackOptions{
			Eps: o.Eps, K: o.K, Seed: o.Seed, Congest: cfg, Progress: o.Progress,
		})
		if err != nil {
			return nil, err
		}
		set := &SketchSet{kind: KindCDG, cost: costOf(res.Cost)}
		set.cost.Phases = []PhaseCost{
			{Name: "wave", Stats: statsOf(res.WaveCost)},
			{Name: "net-tz", Stats: statsOf(res.TZCost)},
			{Name: "ship", Stats: statsOf(res.ShipCost)},
		}
		for _, l := range res.Labels {
			set.sketches = append(set.sketches, &Sketch{kind: KindCDG, label: l})
		}
		return set, nil
	case KindGraceful:
		res, err := core.BuildGraceful(g, core.SlackOptions{
			Seed: o.Seed, Congest: cfg, Progress: o.Progress,
		})
		if err != nil {
			return nil, err
		}
		set := &SketchSet{kind: KindGraceful, cost: costOf(res.Cost)}
		for i, st := range res.PerLevel {
			set.cost.Phases = append(set.cost.Phases, PhaseCost{
				Name:  fmt.Sprintf("level %d", i+1),
				Stats: statsOf(st),
			})
		}
		for _, l := range res.Labels {
			set.sketches = append(set.sketches, &Sketch{kind: KindGraceful, label: l})
		}
		return set, nil
	default:
		return nil, fmt.Errorf("distsketch: unknown kind %q", o.Kind)
	}
}

// costOf converts the internal cost accounting to the public breakdown
// (phases are filled per kind by the caller).
func costOf(c core.CostBreakdown) CostBreakdown {
	return CostBreakdown{
		Total:           statsOf(c.Total),
		DataMessages:    c.DataMessages,
		EchoMessages:    c.EchoMessages,
		ControlMessages: c.ControlMessages,
		SetupRounds:     c.SetupRounds,
	}
}
