// Package experiments implements the per-theorem reproduction harness
// (DESIGN.md §4): each experiment Ei builds sketches over a family/size
// sweep, measures the quantity the corresponding theorem bounds, and
// reports it next to the bound. The same code backs cmd/sketchbench and
// the root-level benchmarks, and EXPERIMENTS.md records its output.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Failures collects bound violations; empty means the paper's claim
	// held on every configuration.
	Failures []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Failf records a bound violation.
func (t *Table) Failf(format string, args ...any) {
	t.Failures = append(t.Failures, fmt.Sprintf(format, args...))
}

// OK reports whether every checked bound held.
func (t *Table) OK() bool { return len(t.Failures) == 0 }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, f := range t.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	if t.OK() {
		b.WriteString("all bounds held\n")
	}
	return b.String()
}

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string { return fmt.Sprintf("%d", v) }
