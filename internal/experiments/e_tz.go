package experiments

import (
	"math"

	"distsketch/internal/core"
	"distsketch/internal/eval"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
	"distsketch/internal/tz"
)

// tzBoundRounds is the Theorem 3.8 round bound with the Lemma 3.6
// constant: k phases of ≤ 3·n^{1/k}·ln(n)·S rounds.
func tzBoundRounds(n, k, s int) float64 {
	return float64(k) * 3 * math.Pow(float64(n), 1/float64(k)) * math.Log(float64(n)) * float64(s)
}

// E1 — Theorem 1.1/3.8 round complexity: measured rounds of the
// distributed TZ construction vs the O(k·n^{1/k}·S·log n) bound.
func E1(cfg Config) *Table {
	t := &Table{
		Title:  "E1: TZ construction rounds vs Theorem 3.8 bound O(k n^{1/k} S log n)",
		Header: []string{"family", "n", "k", "S", "rounds", "bound", "ratio"},
		Notes:  []string{"ratio = rounds / (3 k n^{1/k} ln(n) S); must stay ≤ 1 (and shrink as the bound is worst-case)"},
	}
	for _, f := range cfg.Families {
		for _, n := range cfg.Sizes {
			for _, k := range cfg.Ks {
				var rounds, s int
				for seed := 0; seed < cfg.Seeds; seed++ {
					g := graph.Make(f, n, graph.UniformWeights(1, 10), uint64(seed)*7+1)
					n := g.N() // generators may round n up (e.g. grid)
					res, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: uint64(seed), Mode: core.SyncOmniscient})
					if err != nil {
						t.Failf("%s n=%d k=%d: %v", f, n, k, err)
						continue
					}
					if r := res.Cost.Total.Rounds; r > rounds {
						rounds = r
						s = graph.ShortestPathDiameter(g)
					}
				}
				bound := tzBoundRounds(n, k, s)
				ratio := float64(rounds) / bound
				t.AddRow(string(f), itoa(n), itoa(k), itoa(s), itoa(rounds), f1(bound), f3(ratio))
				if float64(rounds) > bound+float64(k) {
					t.Failf("%s n=%d k=%d: rounds %d exceed bound %.0f", f, n, k, rounds, bound)
				}
			}
		}
	}
	return t
}

// E2 — Theorem 1.1/3.8 message complexity: measured messages vs
// O(k·n^{1/k}·S·|E|·log n).
func E2(cfg Config) *Table {
	t := &Table{
		Title:  "E2: TZ construction messages vs Theorem 3.8 bound O(k n^{1/k} S |E| log n)",
		Header: []string{"family", "n", "k", "S", "|E|", "messages", "bound", "ratio"},
		Notes:  []string{"bound = 2|E| × round bound (≤ 2 messages per edge per round)"},
	}
	for _, f := range cfg.Families {
		for _, n := range cfg.Sizes {
			for _, k := range cfg.Ks {
				g := graph.Make(f, n, graph.UniformWeights(1, 10), 1)
				n := g.N() // generators may round n up (e.g. grid)
				res, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 1, Mode: core.SyncOmniscient})
				if err != nil {
					t.Failf("%s n=%d k=%d: %v", f, n, k, err)
					continue
				}
				s := graph.ShortestPathDiameter(g)
				bound := 2 * float64(g.M()) * tzBoundRounds(n, k, s)
				msgs := res.Cost.Total.Messages
				ratio := float64(msgs) / bound
				t.AddRow(string(f), itoa(n), itoa(k), itoa(s), itoa(g.M()),
					i64toa(msgs), f1(bound), f3(ratio))
				if float64(msgs) > bound {
					t.Failf("%s n=%d k=%d: messages %d exceed bound %.0f", f, n, k, msgs, bound)
				}
			}
		}
	}
	return t
}

// E3 — Lemma 3.1 / Theorem 3.8 sketch size: mean label size vs
// O(k·n^{1/k}) words expected, max vs the whp O(k·n^{1/k}·log n) bound.
func E3(cfg Config) *Table {
	t := &Table{
		Title:  "E3: TZ sketch size vs Lemma 3.1 (mean ≤ c·k·n^{1/k}) and whp bound",
		Header: []string{"family", "n", "k", "mean[w]", "E-bound", "mean/bound", "max[w]", "whp-bound"},
		Notes: []string{
			"words: 2 per pivot + 3 per bunch entry",
			"E-bound = 2k + 3·k·n^{1/k}; whp-bound = 2k + 3·k·(3 n^{1/k} ln n)",
		},
	}
	for _, f := range cfg.Families {
		for _, n := range cfg.Sizes {
			for _, k := range cfg.Ks {
				var meanSum float64
				maxW := 0
				for seed := 0; seed < cfg.Seeds; seed++ {
					g := graph.Make(f, n, graph.UniformWeights(1, 10), uint64(seed)*13+2)
					n := g.N() // generators may round n up (e.g. grid)
					res, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: uint64(seed), Mode: core.SyncOmniscient})
					if err != nil {
						t.Failf("%s n=%d k=%d: %v", f, n, k, err)
						continue
					}
					meanSum += res.MeanLabelWords()
					if m := res.MaxLabelWords(); m > maxW {
						maxW = m
					}
				}
				mean := meanSum / float64(cfg.Seeds)
				perLevel := math.Pow(float64(n), 1/float64(k))
				eBound := float64(2*k) + 3*float64(k)*perLevel
				whpBound := float64(2*k) + 3*float64(k)*3*perLevel*math.Log(float64(n))
				t.AddRow(string(f), itoa(n), itoa(k), f1(mean), f1(eBound),
					f2(mean/eBound), itoa(maxW), f1(whpBound))
				// Lemma 3.1 is an expectation; allow 2x sampling slack.
				if mean > 2*eBound {
					t.Failf("%s n=%d k=%d: mean size %.1f > 2x expected bound %.1f", f, n, k, mean, eBound)
				}
				if float64(maxW) > whpBound {
					t.Failf("%s n=%d k=%d: max size %d > whp bound %.1f", f, n, k, maxW, whpBound)
				}
			}
		}
	}
	return t
}

// E4 — Lemma 3.2 stretch: distance estimates from two labels are within
// 2k-1 of the truth, never below it.
func E4(cfg Config) *Table {
	t := &Table{
		Title:  "E4: TZ query stretch vs Lemma 3.2 bound 2k-1",
		Header: []string{"family", "n", "k", "bound", "max", "avg", "p99", "viol"},
	}
	for _, f := range cfg.Families {
		n := cfg.Sizes[len(cfg.Sizes)-1]
		for _, k := range cfg.Ks {
			g := graph.Make(f, n, graph.UniformWeights(1, 10), 5)
			n := g.N() // generators may round n up (e.g. grid)
			res, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 5, Mode: core.SyncOmniscient})
			if err != nil {
				t.Failf("%s k=%d: %v", f, k, err)
				continue
			}
			ap := graph.APSP(g)
			pairs := eval.AllPairs(n)
			if n > 256 {
				pairs = eval.SamplePairs(n, 50000, 5)
			}
			rep := eval.Evaluate(ap, res.Query, pairs)
			bound := float64(2*k - 1)
			t.AddRow(string(f), itoa(n), itoa(k), f1(bound), f3(rep.MaxStretch),
				f3(rep.AvgStretch), f3(rep.P99), itoa(rep.Violations))
			if rep.MaxStretch > bound || rep.Violations > 0 || rep.Unreachable > 0 {
				t.Failf("%s n=%d k=%d: stretch report %v breaks Lemma 3.2", f, n, k, rep)
			}
		}
	}
	return t
}

// E5 — Lemma 3.6 tail bound: Pr[|B_i(u)| > 3·n^{1/k}·ln n] ≤ 1/n³, so a
// Monte-Carlo sweep should essentially never see an exceedance.
func E5(cfg Config) *Table {
	t := &Table{
		Title:  "E5: bunch-size tail vs Lemma 3.6 (P[|B_i(u)| > 3 n^{1/k} ln n] ≤ n^{-3})",
		Header: []string{"n", "k", "samples", "threshold", "exceed", "maxSeen"},
	}
	n := cfg.Sizes[len(cfg.Sizes)-1]
	for _, k := range cfg.Ks {
		if k < 2 {
			continue
		}
		threshold := 3 * math.Pow(float64(n), 1/float64(k)) * math.Log(float64(n))
		samples, exceed, maxSeen := 0, 0, 0
		for seed := 0; seed < cfg.Seeds*2; seed++ {
			g := graph.Make(graph.FamilyER, n, graph.UnitWeights(), uint64(seed)*3+7)
			o, err := tz.Build(g, k, uint64(seed))
			if err != nil {
				t.Failf("n=%d k=%d: %v", n, k, err)
				continue
			}
			perLevel := make([]int, k)
			for u := 0; u < n; u++ {
				for i := range perLevel {
					perLevel[i] = 0
				}
				for _, e := range o.Label(u).Bunch {
					perLevel[e.Level]++
				}
				for _, c := range perLevel {
					samples++
					if float64(c) > threshold {
						exceed++
					}
					if c > maxSeen {
						maxSeen = c
					}
				}
			}
		}
		t.AddRow(itoa(n), itoa(k), itoa(samples), f1(threshold), itoa(exceed), itoa(maxSeen))
		if exceed > 0 {
			t.Failf("n=%d k=%d: %d/%d samples exceeded the Lemma 3.6 threshold", n, k, exceed, samples)
		}
	}
	return t
}

// E6 — Section 3.3 termination detection overhead: detection vs
// omniscient vs analytic synchronization.
func E6(cfg Config) *Table {
	t := &Table{
		Title:  "E6: synchronization mode overhead (Section 3.3)",
		Header: []string{"family", "n", "mode", "rounds", "msgs", "data", "echo", "ctrl"},
		Notes: []string{
			"detection: echo == data (1:1 discipline), control = BFS tree + START/COMPLETE/FINISH",
			"analytic runs the full worst-case phase bound, hence its large round count",
		},
	}
	k := 3
	for _, f := range cfg.Families {
		n := cfg.Sizes[len(cfg.Sizes)-1]
		g := graph.Make(f, n, graph.UniformWeights(1, 10), 9)
		n = g.N() // generators may round n up (e.g. grid)
		s := graph.ShortestPathDiameter(g)

		omn, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 9, Mode: core.SyncOmniscient})
		if err != nil {
			t.Failf("%s omniscient: %v", f, err)
			continue
		}
		t.AddRow(string(f), itoa(n), "omniscient", itoa(omn.Cost.Total.Rounds),
			i64toa(omn.Cost.Total.Messages), i64toa(omn.Cost.DataMessages), "0", "0")

		ana, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 9, Mode: core.SyncAnalytic, S: s})
		if err != nil {
			t.Failf("%s analytic: %v", f, err)
		} else {
			t.AddRow(string(f), itoa(n), "analytic", itoa(ana.Cost.Total.Rounds),
				i64toa(ana.Cost.Total.Messages), i64toa(ana.Cost.DataMessages), "0", "0")
		}

		det, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 9, Mode: core.SyncDetection})
		if err != nil {
			t.Failf("%s detection: %v", f, err)
			continue
		}
		t.AddRow(string(f), itoa(n), "detection", itoa(det.Cost.Total.Rounds),
			i64toa(det.Cost.Total.Messages), i64toa(det.Cost.DataMessages),
			i64toa(det.Cost.EchoMessages), i64toa(det.Cost.ControlMessages))
		if det.Cost.EchoMessages != det.Cost.DataMessages {
			t.Failf("%s: echo %d != data %d", f, det.Cost.EchoMessages, det.Cost.DataMessages)
		}
		if det.Cost.ControlMessages > int64(6*g.N()+4*g.M()) {
			t.Failf("%s: control messages %d above O(n + |E|) budget", f, det.Cost.ControlMessages)
		}
		for u := 0; u < n; u++ {
			if sketch.QueryTZ(det.Labels[u], det.Labels[(u+1)%n]) != sketch.QueryTZ(omn.Labels[u], omn.Labels[(u+1)%n]) {
				t.Failf("%s: detection and omniscient disagree at node %d", f, u)
				break
			}
		}
	}
	return t
}
