package experiments

import (
	"distsketch/internal/bellmanford"
	"distsketch/internal/bfstree"
	"distsketch/internal/congest"
	"distsketch/internal/core"
	"distsketch/internal/exchange"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
	"distsketch/internal/tz"
)

func congestCfg() congest.Config { return congest.Config{} }

// hubRing builds the Section 2.1 motivating topology: a cycle of unit
// edges plus a hub connected to every node by heavy edges. The hop
// diameter is 2 (through the hub) while shortest paths go around the
// ring, so S = n/2 ≫ D — the regime where preprocessing + sketch
// exchange beats any online Ω(S) distance computation.
func hubRing(n int, heavy graph.Dist) *graph.Graph {
	b := graph.NewBuilder(n + 1)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, 1)
		b.AddEdge(i, n, heavy)
	}
	return b.MustFreeze()
}

// E11 — Section 2.1: rounds to answer one distance query online (≥ S by
// the paper's lower-bound argument) vs fetching the other node's sketch
// over a BFS tree (the paper's O(D · size) claim), both *measured* with
// real CONGEST protocols. Shows where sketches win and the crossover.
func E11(cfg Config) *Table {
	t := &Table{
		Title:  "E11: online distance computation (Ω(S)) vs sketch fetch (O(D·size)), measured",
		Header: []string{"n", "D", "S", "tz-k", "size[w]", "fetch", "online", "winner"},
		Notes: []string{
			"online = measured rounds of distributed Bellman–Ford from the querying node (≥ S)",
			"fetch = measured rounds of the tree-routed sketch fetch (internal/exchange)",
		},
	}
	for _, ringN := range cfg.Sizes {
		g := hubRing(ringN, graph.Dist(ringN)) // heavy hub edges: never on shortest paths
		n := g.N()
		d := graph.HopDiameter(g)
		s := graph.ShortestPathDiameter(g)
		k := 0
		for (1 << (k + 1)) <= n {
			k++ // k = ⌊log₂ n⌋: smallest sketches
		}
		res, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 21, Mode: core.SyncOmniscient})
		if err != nil {
			t.Failf("n=%d: %v", n, err)
			continue
		}
		words := res.MaxLabelWords()

		// Online baseline: the querying node runs distributed
		// Bellman–Ford; the wave settles only after ≥ S rounds.
		online, err := bellmanford.SSSP(g, 0, congestCfg())
		if err != nil {
			t.Failf("n=%d online: %v", n, err)
			continue
		}

		// Sketch fetch: node 0 fetches the antipodal ring node's sketch
		// over the BFS tree, word-serialized and pipelined.
		tree, err := bfstree.Build(g, n-1, congestCfg())
		if err != nil {
			t.Failf("n=%d tree: %v", n, err)
			continue
		}
		sketches := make([][]byte, n)
		for u := 0; u < n; u++ {
			sketches[u] = sketch.MarshalTZ(res.Labels[u])
		}
		fr, err := exchange.Fetch(g, tree, sketches, 0, ringN/2, congestCfg())
		if err != nil {
			t.Failf("n=%d fetch: %v", n, err)
			continue
		}

		winner := "sketch"
		if online.Stats.Rounds < fr.Rounds {
			winner = "online"
		}
		t.AddRow(itoa(n), itoa(d), itoa(s), itoa(k), itoa(words),
			itoa(fr.Rounds), itoa(online.Stats.Rounds), winner)
		if d > 2 {
			t.Failf("n=%d: hub ring should have D=2, got %d", n, d)
		}
		if online.Stats.Rounds < s {
			t.Failf("n=%d: online answered in %d rounds < S=%d (impossible)", n, online.Stats.Rounds, s)
		}
	}
	t.Notes = append(t.Notes,
		"as n grows, online cost Θ(n) overtakes the polylog sketch fetch — the paper's motivation")
	return t
}

// E12 — distributed ≡ centralized: with shared coin flips the distributed
// construction (both sync modes) must reproduce the centralized labels
// exactly.
func E12(cfg Config) *Table {
	t := &Table{
		Title:  "E12: distributed vs centralized label equivalence (shared coins)",
		Header: []string{"family", "n", "k", "omniscient", "detection"},
	}
	for _, f := range cfg.Families {
		n := cfg.Sizes[0]
		for _, k := range cfg.Ks {
			g := graph.Make(f, n, graph.UniformWeights(1, 8), 23)
			n := g.N() // generators may round n up (e.g. grid)
			cent, err := tz.Build(g, k, 23)
			if err != nil {
				t.Failf("%s k=%d: %v", f, k, err)
				continue
			}
			check := func(mode core.SyncMode) string {
				res, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 23, Mode: mode})
				if err != nil {
					t.Failf("%s k=%d %v: %v", f, k, mode, err)
					return "error"
				}
				for u := 0; u < n; u++ {
					a, b := res.Labels[u], cent.Labels[u]
					if len(a.Bunch) != len(b.Bunch) {
						t.Failf("%s k=%d %v: node %d bunch size differs", f, k, mode, u)
						return "MISMATCH"
					}
					for w, e := range b.Bunch {
						if a.Bunch[w] != e {
							t.Failf("%s k=%d %v: node %d bunch[%d] differs", f, k, mode, u, w)
							return "MISMATCH"
						}
					}
					for i := range a.Pivots {
						if a.Pivots[i] != b.Pivots[i] {
							t.Failf("%s k=%d %v: node %d pivot %d differs", f, k, mode, u, i)
							return "MISMATCH"
						}
					}
				}
				return "identical"
			}
			t.AddRow(string(f), itoa(n), itoa(k), check(core.SyncOmniscient), check(core.SyncDetection))
		}
	}
	return t
}

// Names lists the experiment IDs in canonical order.
func Names() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "F1", "F2"}
}

// All runs every experiment at the given scale.
func All(s Scale) []*Table {
	cfg := NewConfig(s)
	out := make([]*Table, 0, len(Names()))
	for _, name := range Names() {
		out = append(out, ByName(name)(cfg))
	}
	return out
}

// ByName returns the experiment function with the given ID, or nil.
func ByName(name string) func(Config) *Table {
	switch name {
	case "E1", "e1":
		return E1
	case "E2", "e2":
		return E2
	case "E3", "e3":
		return E3
	case "E4", "e4":
		return E4
	case "E5", "e5":
		return E5
	case "E6", "e6":
		return E6
	case "E7", "e7":
		return E7
	case "E8", "e8":
		return E8
	case "E9", "e9":
		return E9
	case "E10", "e10":
		return E10
	case "E11", "e11":
		return E11
	case "E12", "e12":
		return E12
	case "E13", "e13":
		return E13
	case "E14", "e14":
		return E14
	case "F1", "f1":
		return F1
	case "F2", "f2":
		return F2
	default:
		return nil
	}
}
