package experiments

import (
	"math"
	"strings"

	"distsketch/internal/core"
	"distsketch/internal/eval"
	"distsketch/internal/graph"
)

// F2 — "graceful degradation" figure: stretch of the Theorem 4.8 sketch
// as a function of how near the queried pair is, bucketed by the rank
// rings A(u,i) from Lemma 4.7 (ring i holds the targets whose rank from
// u is in (n/2^i, n/2^{i-1}]). The paper proves ring i suffers stretch
// O(i); the measured profile shows exactly that gentle, logarithmic
// degradation — and that the far rings (most pairs) are near-exact.
func F2(cfg Config) *Table {
	t := &Table{
		Title:  "F2 (figure): graceful-sketch stretch by rank ring (Lemma 4.7)",
		Header: []string{"ring", "ranks", "pairs", "avg", "max", "8i-1", "profile(avg)"},
		Notes: []string{
			"ring i = targets with rank in (n/2^i, n/2^{i-1}] from the source (smaller ring = nearer pairs)",
			"Lemma 4.7 bounds ring i's stretch by O(i); bars scale with avg stretch",
		},
	}
	f := cfg.Families[0]
	n := cfg.Sizes[len(cfg.Sizes)-1]
	g := graph.Make(f, n, graph.UniformWeights(1, 10), 53)
	n = g.N()
	res, err := core.BuildGraceful(g, core.SlackOptions{Seed: 53, Congest: congestCfg()})
	if err != nil {
		t.Failf("%v", err)
		return t
	}
	ap := graph.APSP(g)
	fc := eval.NewFarClassifier(ap)
	rings := int(math.Ceil(math.Log2(float64(n))))
	type agg struct {
		sum   float64
		max   float64
		count int
	}
	buckets := make([]agg, rings+1)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || ap[u][v] == 0 || ap[u][v] == graph.Inf {
				continue
			}
			rank := fc.CloserCount(u, v)
			if rank < 1 {
				continue
			}
			// ring i: n/2^i < rank <= n/2^{i-1}.
			i := int(math.Ceil(math.Log2(float64(n) / float64(rank))))
			if i < 1 {
				i = 1
			}
			if i > rings {
				i = rings
			}
			est := res.Query(u, v)
			if est == graph.Inf {
				t.Failf("Inf estimate for (%d,%d)", u, v)
				continue
			}
			s := float64(est) / float64(ap[u][v])
			b := &buckets[i]
			b.sum += s
			b.count++
			if s > b.max {
				b.max = s
			}
		}
	}
	var peak float64 = 1
	for i := 1; i <= rings; i++ {
		if b := buckets[i]; b.count > 0 && b.sum/float64(b.count) > peak {
			peak = b.sum / float64(b.count)
		}
	}
	for i := 1; i <= rings; i++ {
		b := buckets[i]
		if b.count == 0 {
			continue
		}
		avg := b.sum / float64(b.count)
		lo := int(float64(n) / math.Pow(2, float64(i)))
		hi := int(float64(n) / math.Pow(2, float64(i-1)))
		bar := int(avg / peak * 40)
		bound := float64(8*i - 1)
		t.AddRow(itoa(i), itoa(lo)+"-"+itoa(hi), itoa(b.count),
			f3(avg), f3(b.max), f1(bound), strings.Repeat("#", bar))
		if b.max > bound {
			t.Failf("ring %d: max stretch %.3f > 8i-1 = %g", i, b.max, bound)
		}
	}
	t.Notes = append(t.Notes, "family "+string(f)+", n="+itoa(n))
	return t
}
