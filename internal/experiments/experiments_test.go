package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment at Quick scale and
// requires every paper bound to hold.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments sweep skipped in -short mode")
	}
	for _, tab := range All(Quick) {
		tab := tab
		t.Run(strings.SplitN(tab.Title, ":", 2)[0], func(t *testing.T) {
			if !tab.OK() {
				t.Errorf("bounds violated:\n%s", tab.String())
			}
			if len(tab.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"E1", "e5", "E12"} {
		if ByName(name) == nil {
			t.Errorf("ByName(%q) = nil", name)
		}
	}
	if ByName("E99") != nil {
		t.Error("ByName(E99) should be nil")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "a note")
	s := tab.String()
	for _, want := range []string{"demo", "a note", "all bounds held"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	tab.Failf("boom %d", 42)
	if tab.OK() {
		t.Error("OK() after Failf")
	}
	if !strings.Contains(tab.String(), "boom 42") {
		t.Error("failure not rendered")
	}
}
