package experiments

import (
	"distsketch/internal/core"
	"distsketch/internal/graph"
)

// E13 — the Section 2.2 bandwidth generalization ("our algorithms can be
// easily generalized if B bits are allowed ... per round"): packing B
// announcements per message divides the queueing delay, so construction
// rounds shrink roughly by B while the fixed point (the labels) is
// unchanged. This is the ablation for the round-robin queue discipline
// called out in DESIGN.md §5.3.
func E13(cfg Config) *Table {
	t := &Table{
		Title:  "E13: bandwidth-B ablation (Section 2.2 generalization)",
		Header: []string{"family", "n", "B", "rounds", "speedup", "messages", "words", "identical"},
		Notes: []string{
			"B = announcements per message (message size 1+2B words)",
			"speedup = rounds(B=1) / rounds(B); labels must be identical for every B",
		},
	}
	k := 3
	for _, f := range cfg.Families {
		n := cfg.Sizes[len(cfg.Sizes)-1]
		g := graph.Make(f, n, graph.UniformWeights(1, 10), 31)
		n = g.N()
		base, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 31, Mode: core.SyncOmniscient})
		if err != nil {
			t.Failf("%s B=1: %v", f, err)
			continue
		}
		t.AddRow(string(f), itoa(n), "1", itoa(base.Cost.Total.Rounds), "1.00",
			i64toa(base.Cost.Total.Messages), i64toa(base.Cost.Total.Words), "-")
		for _, batch := range []int{2, 4, 8} {
			res, err := core.BuildTZ(g, core.TZOptions{K: k, Seed: 31, Mode: core.SyncOmniscient, Batch: batch})
			if err != nil {
				t.Failf("%s B=%d: %v", f, batch, err)
				continue
			}
			identical := "yes"
			for u := 0; u < n; u++ {
				a, b := res.Labels[u], base.Labels[u]
				if len(a.Bunch) != len(b.Bunch) {
					identical = "NO"
					t.Failf("%s B=%d: node %d bunch size differs", f, batch, u)
					break
				}
				for w, e := range b.Bunch {
					if a.Bunch[w] != e {
						identical = "NO"
						t.Failf("%s B=%d: node %d bunch[%d] differs", f, batch, u, w)
						break
					}
				}
				if identical == "NO" {
					break
				}
			}
			speedup := float64(base.Cost.Total.Rounds) / float64(res.Cost.Total.Rounds)
			t.AddRow(string(f), itoa(n), itoa(batch), itoa(res.Cost.Total.Rounds),
				f2(speedup), i64toa(res.Cost.Total.Messages), i64toa(res.Cost.Total.Words), identical)
			if res.Cost.Total.Rounds > base.Cost.Total.Rounds {
				t.Failf("%s B=%d: batching increased rounds (%d > %d)",
					f, batch, res.Cost.Total.Rounds, base.Cost.Total.Rounds)
			}
		}
	}
	return t
}
