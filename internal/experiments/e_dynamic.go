package experiments

import (
	"distsketch/internal/core"
	"distsketch/internal/graph"
)

// E14 — incremental maintenance (the introduction's "network changes
// frequently" motivation): after an edge weight decrease, the warm-start
// repair of the landmark sketches vs a full rebuild. The repair cost
// scales with the size of the affected region, so small changes are
// orders of magnitude cheaper while the labels stay exact.
func E14(cfg Config) *Table {
	t := &Table{
		Title:  "E14: incremental landmark update vs full rebuild (edge weight decrease)",
		Header: []string{"family", "n", "change", "updMsgs", "rebuildMsgs", "saving", "updRounds", "rebuildRounds"},
		Notes: []string{
			"change: 'small' = weight-1 on one edge; 'large' = a mid-graph edge dropped to weight 1",
			"labels are verified exact against Dijkstra on the new topology in both cases",
		},
	}
	eps := 0.25
	for _, f := range cfg.Families {
		n := cfg.Sizes[len(cfg.Sizes)-1]
		g := graph.Make(f, n, graph.UniformWeights(5, 50), 71)
		n = g.N()
		prev, err := core.BuildLandmark(g, core.SlackOptions{Eps: eps, Seed: 71})
		if err != nil {
			t.Failf("%s: %v", f, err)
			continue
		}
		for _, change := range []struct {
			name string
			pick func() (graph.Edge, graph.Dist)
		}{
			{"small", func() (graph.Edge, graph.Dist) {
				e := g.Edges()[1]
				return e, e.Weight - 1
			}},
			{"large", func() (graph.Edge, graph.Dist) {
				e := g.Edges()[g.M()/2]
				return e, 1
			}},
		} {
			e, w := change.pick()
			ng := reweight(g, e, w)
			// UpdateLandmark treats prev as read-only, so the one base
			// build is shared across both change scenarios.
			upd, err := core.UpdateLandmark(ng, prev, []core.EdgeChange{{U: e.U, V: e.V}}, congestCfg())
			if err != nil {
				t.Failf("%s %s update: %v", f, change.name, err)
				continue
			}
			rebuild, err := core.BuildLandmark(ng, core.SlackOptions{Eps: eps, Seed: 71})
			if err != nil {
				t.Failf("%s %s rebuild: %v", f, change.name, err)
				continue
			}
			// Exactness: updated labels equal the rebuilt ones.
			for u := 0; u < n; u++ {
				if upd.Labels[u].Len() != rebuild.Labels[u].Len() {
					t.Failf("%s %s: node %d has %d entries, rebuild %d",
						f, change.name, u, upd.Labels[u].Len(), rebuild.Labels[u].Len())
					continue
				}
				for _, re := range rebuild.Labels[u].Entries {
					if got, ok := upd.Labels[u].Get(re.Net); !ok || got != re.D {
						t.Failf("%s %s: node %d landmark %d: update %d != rebuild %d",
							f, change.name, u, re.Net, got, re.D)
					}
				}
			}
			saving := float64(rebuild.Cost.Total.Messages) / float64(maxI64(upd.Cost.Total.Messages, 1))
			t.AddRow(string(f), itoa(n), change.name,
				i64toa(upd.Cost.Total.Messages), i64toa(rebuild.Cost.Total.Messages),
				f1(saving)+"x", itoa(upd.Cost.Total.Rounds), itoa(rebuild.Cost.Total.Rounds))
			if upd.Cost.Total.Messages > rebuild.Cost.Total.Messages {
				t.Failf("%s %s: update costlier than rebuild", f, change.name)
			}
		}
	}
	return t
}

func reweight(g *graph.Graph, e graph.Edge, w graph.Dist) *graph.Graph {
	b := graph.NewBuilder(g.N())
	for _, x := range g.Edges() {
		if x.U == e.U && x.V == e.V {
			b.AddEdge(x.U, x.V, w)
		} else {
			b.AddEdge(x.U, x.V, x.Weight)
		}
	}
	return b.MustFreeze()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
