package experiments

import "distsketch/internal/graph"

// Scale selects how large the sweeps are.
type Scale int

const (
	// Quick keeps every experiment under a couple of seconds (used by
	// tests and iterating developers).
	Quick Scale = iota
	// Full is the EXPERIMENTS.md configuration.
	Full
)

// Config parameterizes the sweeps shared by the experiments.
type Config struct {
	Families []graph.Family
	Sizes    []int
	Ks       []int
	Epsilons []float64
	Seeds    int
}

// NewConfig returns the sweep configuration for a scale.
func NewConfig(s Scale) Config {
	switch s {
	case Full:
		return Config{
			Families: []graph.Family{
				graph.FamilyER, graph.FamilyGeometric, graph.FamilyGrid,
				graph.FamilyBA, graph.FamilySmallWorld, graph.FamilyInternet,
			},
			Sizes:    []int{64, 128, 256, 512},
			Ks:       []int{2, 3, 4},
			Epsilons: []float64{0.5, 0.25, 0.125},
			Seeds:    3,
		}
	default:
		return Config{
			Families: []graph.Family{graph.FamilyER, graph.FamilyGrid},
			Sizes:    []int{64, 128},
			Ks:       []int{2, 3},
			Epsilons: []float64{0.5, 0.25},
			Seeds:    2,
		}
	}
}
