package experiments

import (
	"strings"

	"distsketch/internal/congest"
	"distsketch/internal/core"
	"distsketch/internal/graph"
)

// F1 — wave-profile "figure": the per-round message traffic of a TZ
// construction, rendered as an ASCII time series. Shows the phase
// structure the paper describes: a burst when phase k-1's few sources
// flood the whole graph, then progressively denser but shorter waves as
// lower phases run many sources over small clusters.
func F1(cfg Config) *Table {
	t := &Table{
		Title:  "F1 (figure): per-round message traffic of the distributed TZ construction",
		Header: []string{"bucket", "rounds", "msgs/round", "profile"},
	}
	k := 3
	f := cfg.Families[0]
	n := cfg.Sizes[len(cfg.Sizes)-1]
	g := graph.Make(f, n, graph.UniformWeights(1, 10), 47)
	n = g.N()
	res, err := core.BuildTZ(g, core.TZOptions{
		K: k, Seed: 47, Mode: core.SyncOmniscient,
		Congest: congest.Config{Trace: true},
	})
	if err != nil {
		t.Failf("%v", err)
		return t
	}
	tr := res.Trace
	if len(tr) == 0 {
		t.Failf("no trace recorded")
		return t
	}
	var peak int64 = 1
	var total int64
	for _, p := range tr {
		if p.Messages > peak {
			peak = p.Messages
		}
		total += p.Messages
	}
	const buckets = 24
	size := (len(tr) + buckets - 1) / buckets
	if size < 1 {
		size = 1
	}
	for b := 0; b*size < len(tr); b++ {
		lo := b * size
		hi := lo + size
		if hi > len(tr) {
			hi = len(tr)
		}
		var sum int64
		for _, p := range tr[lo:hi] {
			sum += p.Messages
		}
		mean := float64(sum) / float64(hi-lo)
		bar := int(mean / float64(peak) * 40)
		t.AddRow(itoa(b), itoa(tr[lo].Round)+"-"+itoa(tr[hi-1].Round),
			f1(mean), strings.Repeat("#", bar))
	}
	t.Notes = append(t.Notes,
		"family "+string(f)+", n="+itoa(n)+", k="+itoa(k)+
			"; total "+i64toa(total)+" messages over "+itoa(len(tr))+" rounds, peak "+i64toa(peak)+"/round")
	if total != res.Cost.Total.Messages {
		t.Failf("trace sums to %d messages but engine counted %d", total, res.Cost.Total.Messages)
	}
	return t
}
