package experiments

import (
	"math"

	"distsketch/internal/core"
	"distsketch/internal/eval"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// E7 — Lemma 4.2 density nets: size ≤ (10/ε)·ln n and every node has a
// net node within R(u, ε).
func E7(cfg Config) *Table {
	t := &Table{
		Title:  "E7: ε-density nets vs Lemma 4.2 (|N| ≤ (10/ε) ln n; covering)",
		Header: []string{"family", "n", "eps", "|N|", "size-bound", "coverViol"},
	}
	for _, f := range cfg.Families {
		n := cfg.Sizes[len(cfg.Sizes)-1]
		for _, eps := range cfg.Epsilons {
			g := graph.Make(f, n, graph.UniformWeights(1, 10), 11)
			n := g.N() // generators may round n up (e.g. grid)
			net := sketch.DensityNet(n, eps, 11, sketch.SaltNet)
			bound := 10 / eps * math.Log(float64(n))
			// Covering: for every u some net node within R(u, ε), the
			// distance to u's ⌈εn⌉-th nearest node.
			ap := graph.APSP(g)
			viol := 0
			need := int(math.Ceil(eps * float64(n)))
			for u := 0; u < n; u++ {
				row := append([]graph.Dist(nil), ap[u]...)
				quickSelectSort(row)
				r := row[need-1]
				ok := false
				for _, w := range net {
					if ap[u][w] <= r {
						ok = true
						break
					}
				}
				if !ok {
					viol++
				}
			}
			t.AddRow(string(f), itoa(n), f3(eps), itoa(len(net)), f1(bound), itoa(viol))
			if float64(len(net)) > bound {
				t.Failf("%s eps=%g: |N|=%d > %.1f", f, eps, len(net), bound)
			}
			if viol > 0 {
				t.Failf("%s eps=%g: %d covering violations", f, eps, viol)
			}
		}
	}
	return t
}

func quickSelectSort(d []graph.Dist) {
	// Distances fit a simple sort; n ≤ a few thousand here.
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j-1] > d[j]; j-- {
			d[j-1], d[j] = d[j], d[j-1]
		}
	}
}

// E8 — Theorem 4.3 landmark sketches: stretch ≤ 3 on ε-far pairs, sketch
// size O((1/ε)·log n), rounds O(S·(1/ε)·log n).
func E8(cfg Config) *Table {
	t := &Table{
		Title:  "E8: landmark sketches vs Theorem 4.3 (stretch 3 with ε-slack)",
		Header: []string{"family", "n", "eps", "farFrac", "farMax", "nearMax", "size[w]", "rounds", "roundRatio"},
		Notes: []string{
			"farMax must be ≤ 3; nearMax is unbounded by the theorem (shown for context)",
			"roundRatio = rounds / (S · (10/ε) ln n)",
		},
	}
	for _, f := range cfg.Families {
		n := cfg.Sizes[len(cfg.Sizes)-1]
		for _, eps := range cfg.Epsilons {
			g := graph.Make(f, n, graph.UniformWeights(1, 10), 13)
			n := g.N() // generators may round n up (e.g. grid)
			res, err := core.BuildLandmark(g, core.SlackOptions{Eps: eps, Seed: 13})
			if err != nil {
				t.Failf("%s eps=%g: %v", f, eps, err)
				continue
			}
			ap := graph.APSP(g)
			pairs := eval.AllPairs(n)
			if n > 256 {
				pairs = eval.SamplePairs(n, 50000, 13)
			}
			rep := eval.EvaluateSlack(ap, res.Query, pairs, eps)
			s := graph.ShortestPathDiameter(g)
			roundBound := float64(s) * 10 / eps * math.Log(float64(n))
			t.AddRow(string(f), itoa(n), f3(eps), f3(rep.FarFrac), f3(rep.Far.MaxStretch),
				f3(rep.Near.MaxStretch), itoa(res.MaxLabelWords()),
				itoa(res.Cost.Total.Rounds), f3(float64(res.Cost.Total.Rounds)/roundBound))
			if rep.Far.MaxStretch > 3 || rep.Far.Violations > 0 || rep.Far.Unreachable > 0 {
				t.Failf("%s eps=%g: far pairs break Theorem 4.3: %v", f, eps, rep.Far)
			}
			// The rank-based ε-far set is exactly a (1-ε) fraction of all
			// ordered pairs; when pairs are subsampled (n > 256) the
			// measured fraction fluctuates around that, so allow binomial
			// sampling noise.
			if rep.FarFrac < 1-eps-0.01 {
				t.Failf("%s eps=%g: far fraction %.3f < 1-ε beyond sampling noise", f, eps, rep.FarFrac)
			}
			if float64(res.Cost.Total.Rounds) > roundBound {
				t.Failf("%s eps=%g: rounds %d > bound %.0f", f, eps, res.Cost.Total.Rounds, roundBound)
			}
		}
	}
	return t
}

// E9 — Theorem 4.6 (ε,k)-CDG sketches: stretch ≤ 8k-1 with ε-slack and
// the stated size bound.
func E9(cfg Config) *Table {
	t := &Table{
		Title:  "E9: (ε,k)-CDG sketches vs Theorem 4.6 (stretch 8k-1 with ε-slack)",
		Header: []string{"family", "n", "eps", "k", "bound", "farMax", "farAvg", "size[w]", "size-bound"},
		Notes:  []string{"size-bound = 2 + 3k((10/ε)ln n)^{1/k}·(3 ln|N|) + 2k words (whp form)"},
	}
	for _, f := range cfg.Families {
		n := cfg.Sizes[len(cfg.Sizes)-1]
		for _, eps := range cfg.Epsilons {
			for _, k := range cfg.Ks {
				if k > 3 {
					continue
				}
				g := graph.Make(f, n, graph.UniformWeights(1, 10), 17)
				n := g.N() // generators may round n up (e.g. grid)
				res, err := core.BuildCDG(g, core.SlackOptions{Eps: eps, K: k, Seed: 17})
				if err != nil {
					t.Failf("%s eps=%g k=%d: %v", f, eps, k, err)
					continue
				}
				ap := graph.APSP(g)
				pairs := eval.AllPairs(n)
				if n > 256 {
					pairs = eval.SamplePairs(n, 50000, 17)
				}
				rep := eval.EvaluateSlack(ap, res.Query, pairs, eps)
				bound := float64(8*k - 1)
				netSize := float64(len(res.Net))
				sizeBound := 2 + float64(2*k) + 3*float64(k)*math.Pow(10/eps*math.Log(float64(n)), 1/float64(k))*3*math.Log(netSize+2)
				t.AddRow(string(f), itoa(n), f3(eps), itoa(k), f1(bound),
					f3(rep.Far.MaxStretch), f3(rep.Far.AvgStretch),
					itoa(res.MaxLabelWords()), f1(sizeBound))
				if rep.Far.MaxStretch > bound || rep.Far.Violations > 0 || rep.Far.Unreachable > 0 {
					t.Failf("%s eps=%g k=%d: far pairs break Theorem 4.6: %v", f, eps, k, rep.Far)
				}
				if float64(res.MaxLabelWords()) > sizeBound {
					t.Failf("%s eps=%g k=%d: size %d > whp bound %.0f", f, eps, k, res.MaxLabelWords(), sizeBound)
				}
			}
		}
	}
	return t
}

// E10 — Theorem 4.8 / Corollary 4.9 gracefully degrading sketches: size
// O(log⁴ n), worst-case stretch O(log n), average stretch O(1) (flat in n).
func E10(cfg Config) *Table {
	t := &Table{
		Title:  "E10: gracefully degrading sketches vs Theorem 4.8 / Cor 4.9",
		Header: []string{"family", "n", "size[w]", "log⁴n", "worst", "worstBound", "avg", "rounds"},
		Notes: []string{
			"avg must stay O(1): flat as n grows (Cor 4.9)",
			"worstBound = 8⌈log₂ n⌉ - 1",
		},
	}
	for _, f := range cfg.Families {
		for _, n := range cfg.Sizes {
			g := graph.Make(f, n, graph.UniformWeights(1, 10), 19)
			n := g.N() // generators may round n up (e.g. grid)
			res, err := core.BuildGraceful(g, core.SlackOptions{Seed: 19, Congest: congestCfg()})
			if err != nil {
				t.Failf("%s n=%d: %v", f, n, err)
				continue
			}
			ap := graph.APSP(g)
			rep := eval.Evaluate(ap, res.Query, eval.AllPairs(n))
			avg := eval.AvgStretchAllPairs(ap, res.Query)
			worstBound := float64(8*sketch.GracefulLevels(n) - 1)
			log4 := math.Pow(math.Log2(float64(n)), 4)
			t.AddRow(string(f), itoa(n), itoa(res.MaxLabelWords()), f1(log4),
				f3(rep.MaxStretch), f1(worstBound), f3(avg), itoa(res.Cost.Total.Rounds))
			if rep.MaxStretch > worstBound || rep.Violations > 0 || rep.Unreachable > 0 {
				t.Failf("%s n=%d: worst stretch %.2f > %g or invalid estimates", f, n, rep.MaxStretch, worstBound)
			}
			if avg > 12 {
				t.Failf("%s n=%d: average stretch %.2f not O(1)-plausible", f, n, avg)
			}
		}
	}
	return t
}
