package fixture

import (
	"bytes"
	"encoding/binary"
)

// readGood is the checked-decode pattern the internal/sketch decoders
// use: the count is bounded against the remaining input before it sizes
// anything.
func readGood(r *bytes.Reader) ([]int64, error) {
	m, err := binary.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	if m < 0 || m > int64(r.Len())+1 {
		return nil, errCorrupt
	}
	out := make([]int64, 0, m)
	for i := int64(0); i < m; i++ {
		v, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// getCount bounds its result internally, so the directive blesses it as
// a count source.
//
//sketchlint:bounded
func getCount(r *bytes.Reader) (int, error) {
	m, err := binary.ReadVarint(r)
	if err != nil {
		return 0, err
	}
	if m < 0 || m > int64(r.Len())+1 {
		return 0, errCorrupt
	}
	return int(m), nil
}

// readBlessed sizes from the blessed helper; no explicit comparison is
// needed at the call site.
func readBlessed(r *bytes.Reader) ([]byte, error) {
	n, err := getCount(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := r.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readDerivedChecked derives a local from a checked count; boundedness
// flows through the conversion.
func readDerivedChecked(r *bytes.Reader) ([]uint32, error) {
	m, err := binary.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	if m < 0 || m > int64(r.Len()) {
		return nil, errCorrupt
	}
	n := int(m)
	return make([]uint32, n), nil
}

// readParam trusts its parameter — callers bound counts before passing.
func readParam(r *bytes.Reader, n int) []byte {
	buf := make([]byte, n)
	r.Read(buf)
	return buf
}

// scratchFrom is not a decoder by name, so it is out of scope even
// though it allocates from a wire value.
func scratchFrom(r *bytes.Reader) []byte {
	n, _ := binary.ReadVarint(r)
	return make([]byte, n)
}
