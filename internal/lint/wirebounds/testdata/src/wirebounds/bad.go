package fixture

import (
	"bytes"
	"encoding/binary"
	"errors"
)

var errCorrupt = errors.New("corrupt payload")

// readBad allocates from a wire count that was never bounded: a hostile
// 10-byte payload can declare 2^40 entries.
func readBad(r *bytes.Reader) ([]int64, error) {
	m, err := binary.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, m) // want "wire-length value m sizes an allocation before a bounds check"
	for i := int64(0); i < m; i++ {
		v, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// readReassigned checks the first count, then reuses the variable for a
// second wire read; the earlier check does not cover the new value.
func readReassigned(r *bytes.Reader) ([]byte, error) {
	m, err := binary.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	if m < 0 || m > int64(r.Len()) {
		return nil, errCorrupt
	}
	m, err = binary.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, m) // want "wire-length value m sizes an allocation before a bounds check"
	return buf, nil
}

// decodeDerived launders the unchecked count through a conversion; the
// derived variable is just as unbounded as the source.
func decodeDerived(r *bytes.Reader) ([]uint32, error) {
	m, err := binary.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	n := int(m)
	out := make([]uint32, n) // want "wire-length value n sizes an allocation before a bounds check"
	return out, nil
}
