package wirebounds_test

import (
	"testing"

	"distsketch/internal/lint/analysis"
	"distsketch/internal/lint/wirebounds"
)

func TestWireBounds(t *testing.T) {
	analysis.RunTest(t, "testdata/src/wirebounds", wirebounds.Analyzer)
}
