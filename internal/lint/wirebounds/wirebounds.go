// Package wirebounds enforces the decoder allocation-bounding
// discipline: a length or count read from the wire must be bounds-checked
// against the remaining input before it sizes an allocation. Without the
// check, a corrupt or hostile 12-byte payload declaring 2^40 entries
// turns into a multi-terabyte make() — an out-of-memory crash, not a
// decode error. The internal/sketch decoders all carry checks of the
// shape `if m < 0 || m > int64(r.Len())/3+1 { return ErrCorrupt }`; this
// analyzer makes forgetting one in the next decoder a lint failure.
//
// Scope: functions whose name marks them as decoders (Unmarshal*, Read*,
// Parse*, Decode*, and their unexported forms). Within one, make() sizes
// and capacities may only mention local variables that are, at that
// point, bounded: mentioned in an earlier comparison, assigned from
// bounded operands, or produced by a function annotated
// `//sketchlint:bounded` (a helper that bounds its result internally,
// like getCount). Reassigning a variable from the wire invalidates its
// earlier check. Parameters are trusted — callers check before passing.
package wirebounds

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"distsketch/internal/lint/analysis"
)

var decoderName = regexp.MustCompile(`^(Unmarshal|unmarshal|Read|read|Parse|parse|Decode|decode)`)

// safeBuiltins never return attacker-controlled magnitudes.
var safeBuiltins = map[string]bool{"len": true, "cap": true, "min": true, "max": true}

// Analyzer flags wire-length values sizing allocations before a bounds check.
var Analyzer = &analysis.Analyzer{
	Name: "wirebounds",
	Doc:  "flag wire-length values that size an allocation in a decoder before being bounds-checked",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	boundedFuncs := collectBoundedFuncs(pass)
	pass.EachFuncBody(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if !decoderName.MatchString(decl.Name.Name) {
			return
		}
		checkDecoder(pass, decl, body, boundedFuncs)
	})
	return nil
}

// collectBoundedFuncs indexes this package's functions annotated
// //sketchlint:bounded (helpers that bound their own result).
func collectBoundedFuncs(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && analysis.HasDirective(fd.Doc, "bounded") {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

func checkDecoder(pass *analysis.Pass, decl *ast.FuncDecl, body *ast.BlockStmt, boundedFuncs map[types.Object]bool) {
	params := paramVars(pass, decl)
	// bounded holds the locals currently known to be bounds-checked. The
	// walk is pre-order, which visits statements in source order, so the
	// map reflects the state at each make() site.
	bounded := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if isComparison(v.Op) {
				markCompared(pass, v, bounded)
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				lv := pass.LocalVar(id)
				if lv == nil {
					continue
				}
				// One RHS feeding multiple LHS (m, err := read(...)) taints
				// them all; index-matched RHS are judged individually.
				rhs := v.Rhs[0]
				if len(v.Rhs) == len(v.Lhs) {
					rhs = v.Rhs[i]
				}
				if exprBounded(pass, rhs, params, bounded, boundedFuncs) {
					bounded[lv] = true
				} else {
					delete(bounded, lv)
				}
			}
		case *ast.CallExpr:
			if pass.IsBuiltinCall(v, "make") && len(v.Args) > 1 {
				for _, size := range v.Args[1:] {
					reportUnchecked(pass, size, params, bounded)
				}
			}
		}
		return true
	})
}

// reportUnchecked flags every suspect identifier in a make() size
// expression: a local, non-parameter variable not currently bounded.
func reportUnchecked(pass *analysis.Pass, size ast.Expr, params, bounded map[*types.Var]bool) {
	ast.Inspect(size, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		lv := pass.LocalVar(id)
		if lv == nil || params[lv] || bounded[lv] {
			return true
		}
		pass.Reportf(id.Pos(), "wire-length value %s sizes an allocation before a bounds check; compare it against the remaining input (or derive it from a //sketchlint:bounded helper) first", id.Name)
		return true
	})
}

// exprBounded reports whether every data source in e is bounded at this
// point: constants, parameters, already-bounded locals, len/cap, type
// conversions, and calls to //sketchlint:bounded helpers. Any other call
// or any unbounded local makes the result unbounded.
func exprBounded(pass *analysis.Pass, e ast.Expr, params, bounded map[*types.Var]bool, boundedFuncs map[types.Object]bool) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if id, isIdent := ast.Unparen(v.Fun).(*ast.Ident); isIdent && safeBuiltins[id.Name] {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			if tv, found := pass.TypesInfo.Types[v.Fun]; found && tv.IsType() {
				return true // conversion: judge the operand
			}
			if fn := pass.FuncFor(v); fn != nil && boundedFuncs[fn] {
				return false // blessed source; don't judge its arguments
			}
			ok = false
			return false
		case *ast.Ident:
			if lv := pass.LocalVar(v); lv != nil && !params[lv] && !bounded[lv] {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// markCompared marks every local variable mentioned in a comparison as
// bounded from here on.
func markCompared(pass *analysis.Pass, cmp *ast.BinaryExpr, bounded map[*types.Var]bool) {
	ast.Inspect(cmp, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if lv := pass.LocalVar(id); lv != nil {
				bounded[lv] = true
			}
		}
		return true
	})
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func paramVars(pass *analysis.Pass, decl *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	addList(decl.Recv)
	addList(decl.Type.Params)
	return out
}
