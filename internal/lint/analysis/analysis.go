// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass, Diagnostic —
// plus the package loader and directive handling the sketchlint suite
// needs. The real x/tools module is deliberately not imported: this repo
// builds offline with a bare module cache, so the framework stands on the
// standard library alone (go/ast, go/types, and export data produced by
// `go list -export`).
//
// The subset is faithful where it matters: an Analyzer is a named Run
// function over a type-checked package, diagnostics carry positions, and
// testdata packages are checked against `// want "regexp"` golden
// comments (see analysistest.go). Fact propagation, SSA, and the
// dependency graph between analyzers are intentionally absent — none of
// the sketchlint analyzers need them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in diagnostics and in
// //sketchlint:ignore directives), a one-line doc string, and the Run
// function applied to each loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records a diagnostic. Suppression (//sketchlint:ignore) is
	// applied by the driver after the pass completes, so analyzers report
	// unconditionally.
	Report func(Diagnostic)
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. Analyzer and Position are filled in by the
// driver (Position because Pos is only meaningful against the reporting
// package's FileSet, which a multi-package run has many of).
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	Position token.Position
}

// ignoreMarker is the suppression directive prefix. Usage:
//
//	//sketchlint:ignore <analyzer> <reason>
//
// on the flagged line or on its own line directly above it. The reason is
// mandatory: an ignore that does not say why suppresses nothing.
const ignoreMarker = "//sketchlint:ignore"

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics sorted by position, with //sketchlint:ignore
// suppression already applied.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				d.Analyzer = name
				d.Position = pkg.Fset.Position(d.Pos)
				if ig.suppressed(pkg.Fset, d) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// ignoreIndex maps file -> line -> analyzer names suppressed on that line.
type ignoreIndex map[string]map[int][]string

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreMarker)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// No analyzer name or no reason: the directive is inert
					// by design, so a bare ignore cannot silently blanket a
					// finding.
					continue
				}
				pos := fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					idx[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], fields[0])
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by an ignore directive on its
// line or the line directly above.
func (idx ignoreIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	m := idx[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range m[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// HasDirective reports whether the comment group carries the
// //sketchlint:<name> directive (e.g. HasDirective(fn.Doc, "hotpath")).
// Directives are comment lines, not doc prose, so exact prefix matching
// on the raw text is used.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//sketchlint:" + name
	for _, c := range doc.List {
		text := c.Text
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}
