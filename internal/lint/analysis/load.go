package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Name       string
}

// exportLookup resolves import paths to compiled export data files, as
// reported by `go list -export`. It backs the gc importer, which is how
// the loader type-checks against dependencies without recompiling them
// from source (and without any x/tools machinery). Paths missing from
// the initial listing — e.g. a stdlib package only a testdata fixture
// imports — are resolved on demand with another `go list` call.
type exportLookup struct {
	mu      sync.Mutex
	dir     string // module directory go list runs in
	exports map[string]string
}

func (e *exportLookup) lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	file, ok := e.exports[path]
	e.mu.Unlock()
	if !ok {
		pkgs, err := goList(e.dir, "-export", "-deps", path)
		if err != nil {
			return nil, fmt.Errorf("resolving %s: %w", path, err)
		}
		e.mu.Lock()
		for _, p := range pkgs {
			if p.Export != "" {
				e.exports[p.ImportPath] = p.Export
			}
		}
		file, ok = e.exports[path]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %s", path)
		}
	}
	return os.Open(file)
}

// newImporter builds a types.Importer answering from export data.
func (e *exportLookup) newImporter(fset *token.FileSet) types.Importer {
	base := importer.ForCompiler(fset, "gc", e.lookup)
	return &chainImporter{base: base}
}

type chainImporter struct {
	base types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return c.base.Import(path)
}

// goList runs `go list -json` with the given extra flags and patterns.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json=ImportPath,Export,Dir,GoFiles,Standard,Name"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.Bytes())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load lists, parses and type-checks the packages matching patterns
// (e.g. "./..."), rooted at dir (the module directory; "" means the
// current directory). Only non-test files are loaded — the invariants
// sketchlint enforces are about production code, and tests legitimately
// construct adversarial label states on purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if dir == "" {
		dir = "."
	}
	// One listing does double duty: -deps supplies every dependency's
	// export data for the importer, and the non-dependency entries
	// matching the patterns are the analysis targets themselves.
	all, err := goList(dir, append([]string{"-export", "-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	lk := &exportLookup{dir: dir, exports: make(map[string]string)}
	for _, p := range all {
		if p.Export != "" {
			lk.exports[p.ImportPath] = p.Export
		}
	}
	var out []*Package
	for _, t := range targets {
		if t.Standard {
			continue
		}
		pkg, err := checkPackage(t, lk)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkPackage parses and type-checks one listed package from source,
// resolving its imports through export data.
func checkPackage(t *listedPackage, lk *exportLookup) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	pkg, info, err := typeCheck(fset, t.ImportPath, files, lk)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// typeCheck runs go/types over the parsed files with all Info maps
// populated (analyzers need Uses, Defs, Types and Selections).
func typeCheck(fset *token.FileSet, path string, files []*ast.File, lk *exportLookup) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: lk.newImporter(fset)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}
