package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// RunTest is this framework's analysistest.Run: it loads the fixture
// package in dir (a directory of .go files, conventionally
// testdata/src/<name>), runs the analyzer, applies //sketchlint:ignore
// suppression exactly as the real driver does, and checks the surviving
// diagnostics against `// want "regexp"` comments:
//
//   - every line carrying a want comment must receive a matching
//     diagnostic;
//   - every diagnostic must land on a line whose want comment matches it.
//
// A fixture file with no want comments is therefore a golden
// "no diagnostics" case — the blessed patterns ride in those.
func RunTest(t *testing.T, dir string, a *Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg.Fset, pkg.Syntax)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []wantComment {
	t.Helper()
	var wants []wantComment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat, err := unescapeWant(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pat, err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, wantComment{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// unescapeWant undoes the escaping inside a want pattern's quotes
// (the pattern was captured raw, so only \" and \\ need unwrapping).
func unescapeWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// fixture loading ----------------------------------------------------------

var fixtureOnce sync.Once
var fixtureLookup *exportLookup
var fixtureErr error

// sharedLookup returns a process-wide export-data lookup rooted at the
// enclosing module, priming it with the module's full dependency closure
// so fixture imports of both module-internal and stdlib packages resolve.
func sharedLookup() (*exportLookup, error) {
	fixtureOnce.Do(func() {
		dir, err := moduleDir()
		if err != nil {
			fixtureErr = err
			return
		}
		lk := &exportLookup{dir: dir, exports: make(map[string]string)}
		pkgs, err := goList(dir, "-export", "-deps", "./...")
		if err != nil {
			fixtureErr = err
			return
		}
		for _, p := range pkgs {
			if p.Export != "" {
				lk.exports[p.ImportPath] = p.Export
			}
		}
		fixtureLookup = lk
	})
	return fixtureLookup, fixtureErr
}

// moduleDir locates the module root the tests run inside.
func moduleDir() (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v\n%s", err, stderr.Bytes())
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// loadFixture parses and type-checks every .go file in dir as one
// package. Imports resolve against the module's compiled dependencies,
// so fixtures may import distsketch packages to exercise the analyzers
// against the real label types.
func loadFixture(dir string) (*Package, error) {
	lk, err := sharedLookup()
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	importPath := "fixture/" + filepath.Base(dir)
	pkg, info, err := typeCheck(fset, importPath, files, lk)
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: fset, Syntax: files, Types: pkg, Info: info}, nil
}
