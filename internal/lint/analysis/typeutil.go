package analysis

import (
	"go/ast"
	"go/types"
)

// IsNamed reports whether t (after pointer indirection) is the named
// type pkgPath.name. Generic instantiations match their origin type, so
// IsNamed(sync/atomic.Pointer[state], "sync/atomic", "Pointer") is true.
func IsNamed(t types.Type, pkgPath, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// IsBuiltinCall reports whether call invokes the builtin of that name
// (append, make, new, ...), resolving through the identifier's object so
// a local function shadowing the builtin does not match.
func (p *Pass) IsBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// FuncFor resolves the called function or method object of call, or nil
// for builtins, function values and type conversions.
func (p *Pass) FuncFor(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// LocalVar returns the local variable (or parameter) object behind e if
// e is a plain identifier bound to one, and nil otherwise. Package-level
// variables do not count as local.
func (p *Pass) LocalVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := p.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		v, ok = p.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return nil
		}
	}
	if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return nil // package-level
	}
	return v
}

// EachFuncBody walks every function declaration and function literal in
// the pass, invoking fn with the enclosing declaration (nil for a
// literal at file scope) and the body. Function literals are visited as
// part of their enclosing declaration's body walk, not separately, so
// analyzers that inspect whole bodies see nested closures exactly once.
func (p *Pass) EachFuncBody(fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd, fd.Body)
			}
		}
	}
}
