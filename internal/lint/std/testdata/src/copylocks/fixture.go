package fixture

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValueParam(g guarded) int { // want "parameter passes lock by value: guarded contains sync.Mutex"
	return g.n
}

func assignCopy(g *guarded) {
	cp := *g // want "assignment copies lock value"
	_ = cp
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range variable copies lock value"
		total += g.n
	}
	return total
}

func callCopy(g *guarded) {
	byValueParam(*g) // want "call passes lock by value"
}

// goodPointer works through a pointer; nothing is copied.
func goodPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// goodNew passes a type expression, not a value, to the builtin.
func goodNew() *atomic.Int64 {
	return new(atomic.Int64)
}

// goodPlain copies a lock-free struct; not flagged.
type plain struct{ a, b int }

func goodPlain(p plain) plain {
	cp := p
	cp.a++
	return cp
}
