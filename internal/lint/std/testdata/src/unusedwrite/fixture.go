package fixture

type point struct{ x, y int }

func badRange(ps []point) {
	for _, p := range ps {
		p.x = 1 // want "write to field x of range variable p is never read"
	}
}

type counter struct{ n int }

func (c counter) badBump() {
	c.n = c.n + 1 // want "write to field n of value receiver c is never read"
}

// goodRangeIndex writes through the slice, not the copy.
func goodRangeIndex(ps []point) {
	for i := range ps {
		ps[i].x = 1
	}
}

// goodRangeUsed reads the modified copy afterwards, so the write lands.
func goodRangeUsed(ps []point) []point {
	var out []point
	for _, p := range ps {
		p.x = 1
		out = append(out, p)
	}
	return out
}

// goodPointerReceiver mutates through the pointer; the write persists.
func (c *counter) goodBump() {
	c.n = c.n + 1
}

// goodReturned returns the modified copy.
func (c counter) goodReturned() counter {
	c.n = 5
	return c
}
