package fixture

type node struct {
	next *node
	val  int
}

func badDeref(n *node) int {
	if n == nil {
		return n.val // want "field access on n, which is nil on this branch"
	}
	return n.val
}

func badElse(n *node) int {
	if n != nil {
		return n.val
	} else {
		return n.next.val // want "field access on n"
	}
}

func badIndex(xs []int) int {
	if xs == nil {
		return xs[0] // want "index of xs"
	}
	return xs[0]
}

func badCall(f func() int) int {
	if f == nil {
		return f() // want "call of f"
	}
	return f()
}

func badIface(err error) string {
	if err == nil {
		return err.Error() // want "method call on err"
	}
	return err.Error()
}

// goodGuard is the guard-and-return idiom; the nil branch never
// dereferences.
func goodGuard(n *node) int {
	if n == nil {
		return 0
	}
	return n.val
}

// goodReassign repairs the nil before using it.
func goodReassign(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}
