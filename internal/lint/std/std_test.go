package std_test

import (
	"testing"

	"distsketch/internal/lint/analysis"
	"distsketch/internal/lint/std"
)

func TestCopylocks(t *testing.T) {
	analysis.RunTest(t, "testdata/src/copylocks", std.Copylocks)
}

func TestNilness(t *testing.T) {
	analysis.RunTest(t, "testdata/src/nilness", std.Nilness)
}

func TestUnusedwrite(t *testing.T) {
	analysis.RunTest(t, "testdata/src/unusedwrite", std.Unusedwrite)
}
