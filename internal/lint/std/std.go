// Package std reimplements the three standard vet-family passes the
// sketchlint suite wants alongside its custom analyzers: copylocks,
// nilness, and unusedwrite. The x/tools originals are unavailable in an
// offline build (and the bundled `go vet` ships only copylocks), so
// these are from-scratch ports of the useful core of each check against
// the same minimal analysis framework the custom analyzers use.
//
// Each is deliberately a subset of its namesake — syntactic, per
// function, no SSA — tuned to catch the mistakes that matter in this
// repo: copying a struct with a sync.Mutex/atomic.Pointer inside
// (Server, the pools), dereferencing a pointer on the branch that just
// proved it nil, and writing to a by-value range variable or value
// receiver where the write vanishes at the end of the iteration.
package std

import (
	"go/ast"
	"go/types"

	"distsketch/internal/lint/analysis"
)

// ---------------------------------------------------------------------------
// copylocks

// Copylocks flags values of lock-containing types passed, assigned, or
// ranged by value.
var Copylocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "flag by-value copies of types containing sync primitives",
	Run:  runCopylocks,
}

// lockTypes are the sync and sync/atomic types whose copy is always a
// bug (they embed noCopy or hold internal state keyed to an address).
var lockTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true, "Cond": true,
		"Once": true, "Pool": true, "Map": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// lockPath returns a human-readable path to the first lock found inside
// t ("" if none): e.g. "sync.Mutex" or "Server contains sync.Mutex".
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Origin().Obj()
		if obj != nil && obj.Pkg() != nil {
			if names := lockTypes[obj.Pkg().Path()]; names != nil && names[obj.Name()] {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
		if inner := lockPath(named.Underlying(), seen); inner != "" {
			return obj.Name() + " contains " + inner
		}
		return ""
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner := lockPath(u.Field(i).Type(), seen); inner != "" {
				return inner
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}

// copiesValue reports whether e is an expression whose evaluation copies
// an existing value (as opposed to constructing a fresh one in place).
func copiesValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

func runCopylocks(pass *analysis.Pass) error {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if path := lockPath(t, nil); path != "" {
				pass.Reportf(f.Type.Pos(), "%s passes lock by value: %s", what, path)
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(v.Recv, "receiver")
				checkFieldList(v.Type.Params, "parameter")
			case *ast.FuncLit:
				checkFieldList(v.Type.Params, "parameter")
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					if !copiesValue(rhs) {
						continue
					}
					// Assigning to _ discards the copy; nothing can observe it.
					if len(v.Lhs) == len(v.Rhs) {
						if id, ok := ast.Unparen(v.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					t := pass.TypeOf(rhs)
					if t == nil {
						continue
					}
					if path := lockPath(t, nil); path != "" {
						pass.Reportf(rhs.Pos(), "assignment copies lock value: %s", path)
					}
				}
			case *ast.RangeStmt:
				if rv := rangeValueVar(pass, v.Value); rv != nil {
					if path := lockPath(rv.Type(), nil); path != "" {
						pass.Reportf(v.Value.Pos(), "range variable copies lock value: %s", path)
					}
				}
			case *ast.CallExpr:
				if _, isConv := pass.TypesInfo.Types[v.Fun]; isConv && pass.TypesInfo.Types[v.Fun].IsType() {
					return true
				}
				for _, arg := range v.Args {
					if !copiesValue(arg) {
						continue
					}
					// A type expression argument (new(atomic.Int64),
					// make(chan sync.Mutex)) names a type, it does not copy
					// a value of it.
					tv, found := pass.TypesInfo.Types[arg]
					if !found || tv.IsType() {
						continue
					}
					t := tv.Type
					if path := lockPath(t, nil); path != "" {
						pass.Reportf(arg.Pos(), "call passes lock by value: %s", path)
					}
				}
			}
			return true
		})
	}
	return nil
}

// ---------------------------------------------------------------------------
// nilness

// Nilness flags dereferences on the branch that just established the
// value is nil.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag dereferences of values proven nil by the enclosing branch",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			v, nilOnEq := nilComparison(pass, ifStmt.Cond)
			if v == nil {
				return true
			}
			var branch ast.Stmt
			if nilOnEq {
				branch = ifStmt.Body
			} else {
				branch = ifStmt.Else
			}
			if branch != nil {
				checkNilDerefs(pass, v, branch)
			}
			return true
		})
	}
	return nil
}

// nilComparison decodes `x == nil` / `nil == x` (returns x, true) and
// `x != nil` / `nil != x` (returns x, false) for a local x of a nilable
// type; (nil, false) otherwise.
func nilComparison(pass *analysis.Pass, cond ast.Expr) (*types.Var, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, false
	}
	op := bin.Op.String()
	if op != "==" && op != "!=" {
		return nil, false
	}
	other := bin.Y
	if isNilIdent(pass, bin.Y) {
		other = bin.X
	} else if !isNilIdent(pass, bin.X) {
		return nil, false
	}
	v := pass.LocalVar(other)
	if v == nil {
		return nil, false
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface, *types.Signature, *types.Chan:
		return v, op == "=="
	}
	return nil, false
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// checkNilDerefs walks the nil branch in source order, flagging
// dereferences of v until v is reassigned.
func checkNilDerefs(pass *analysis.Pass, v *types.Var, branch ast.Stmt) {
	reassigned := false
	ast.Inspect(branch, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if pass.LocalVar(lhs) == v {
					reassigned = true
				}
			}
		case *ast.SelectorExpr:
			if pass.LocalVar(node.X) != v {
				return true
			}
			switch v.Type().Underlying().(type) {
			case *types.Pointer:
				if sel, ok := pass.TypesInfo.Selections[node]; !ok || sel.Kind() == types.FieldVal {
					pass.Reportf(node.Pos(), "field access on %s, which is nil on this branch", v.Name())
				}
			case *types.Interface:
				pass.Reportf(node.Pos(), "method call on %s, which is nil on this branch", v.Name())
			}
		case *ast.StarExpr:
			if pass.LocalVar(node.X) == v {
				pass.Reportf(node.Pos(), "dereference of %s, which is nil on this branch", v.Name())
			}
		case *ast.IndexExpr:
			if pass.LocalVar(node.X) != v {
				return true
			}
			switch v.Type().Underlying().(type) {
			case *types.Slice, *types.Pointer:
				pass.Reportf(node.Pos(), "index of %s, which is nil on this branch", v.Name())
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && pass.LocalVar(id) == v {
				pass.Reportf(node.Pos(), "call of %s, which is nil on this branch", v.Name())
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// unusedwrite

// Unusedwrite flags field writes through a by-value copy (range variable
// or value receiver) that no later code in the same scope reads — the
// write disappears when the copy does.
var Unusedwrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "flag field writes to by-value copies (range variables, value receivers) that are never read afterwards",
	Run:  runUnusedwrite,
}

func runUnusedwrite(pass *analysis.Pass) error {
	pass.EachFuncBody(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if recv := valueStructReceiver(pass, decl); recv != nil {
			checkLostWrites(pass, recv, body, "value receiver")
		}
		ast.Inspect(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || rng.Value == nil {
				return true
			}
			v := rangeValueVar(pass, rng.Value)
			if v == nil {
				return true
			}
			if _, isStruct := v.Type().Underlying().(*types.Struct); !isStruct {
				return true
			}
			checkLostWrites(pass, v, rng.Body, "range variable")
			return true
		})
	})
	return nil
}

func valueStructReceiver(pass *analysis.Pass, decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	v, ok := pass.TypesInfo.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	if !ok {
		return nil
	}
	if _, isStruct := v.Type().Underlying().(*types.Struct); !isStruct {
		return nil
	}
	return v
}

func rangeValueVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[id].(*types.Var)
	return v
}

// checkLostWrites flags assignments `v.f = x` where no use of v follows
// the assignment within body — the write lands in a copy that is about
// to be discarded.
func checkLostWrites(pass *analysis.Pass, v *types.Var, body ast.Node, what string) {
	// Collect every use position of v first.
	var uses []int
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			uses = append(uses, int(id.Pos()))
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || pass.LocalVar(sel.X) != v {
				continue
			}
			readAfter := false
			for _, u := range uses {
				if u > int(as.End()) {
					readAfter = true
					break
				}
			}
			if !readAfter {
				pass.Reportf(lhs.Pos(), "write to field %s of %s %s is never read; the copy is discarded", sel.Sel.Name, what, v.Name())
			}
		}
		return true
	})
}
