package fixture

// goodSwap is the blessed sequence: Load a snapshot, Clone it, repair
// the clone, Store the repaired copy. Clone launders the taint, so the
// mutations on the clone are accepted.
func goodSwap(s *server) {
	st := s.cur.Load()
	clone := st.set.Clone()
	clone.UpdateEdge(1, 2)
	clone.labels = append(clone.labels, 5)
	s.cur.Store(&state{set: clone, gen: st.gen + 1})
}

// goodRead only reads through the snapshot; reads are always fine.
func goodRead(s *server) int {
	st := s.cur.Load()
	return st.set.n + len(st.set.labels)
}

// goodRebind clears taint when the name is rebound to a fresh value.
func goodRebind(s *server) {
	loc := s.cur.Load().set
	loc = &set{}
	loc.n = 1
	_ = loc
}
