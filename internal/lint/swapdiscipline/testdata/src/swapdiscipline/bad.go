package fixture

import "sync/atomic"

type set struct {
	labels []int
	n      int
}

func (s *set) Clone() *set {
	c := *s
	c.labels = append([]int(nil), s.labels...)
	return &c
}

func (s *set) UpdateEdge(u, v int) {
	s.n += u + v
}

type state struct {
	set *set
	gen int
}

type server struct {
	cur atomic.Pointer[state]
}

// badFieldWrite mutates the published snapshot in place.
func badFieldWrite(s *server) {
	st := s.cur.Load()
	st.gen = 7 // want "write through a snapshot"
}

// badDeepWrite writes through a nested field of the snapshot.
func badDeepWrite(s *server) {
	st := s.cur.Load()
	st.set.labels[0] = 1 // want "write through a snapshot"
}

// badDirect writes through the Load result without binding it.
func badDirect(s *server) {
	s.cur.Load().gen = 9 // want "write through a snapshot"
}

// badAlias reaches the snapshot through a second binding.
func badAlias(s *server) {
	st := s.cur.Load()
	inner := st.set
	inner.n = 3 // want "write through a snapshot"
}

// badIncrement is still a write, even spelled as ++.
func badIncrement(s *server) {
	st := s.cur.Load()
	st.gen++ // want "write through a snapshot"
}

// badMutator calls a mutating method on the snapshot.
func badMutator(s *server) {
	st := s.cur.Load()
	st.set.UpdateEdge(1, 2) // want "mutating method UpdateEdge"
}
