// Package swapdiscipline enforces the clone-repair-swap discipline of
// the serving layer: the live SketchSet/state is published through a
// sync/atomic.Pointer, readers Load() a snapshot and treat it as
// immutable, and writers must Clone() the snapshot, repair the clone,
// and Store() the repaired copy. Writing through a Load()ed snapshot is
// a data race against every in-flight query — one the race detector
// only catches if a test happens to overlap a read with the write.
//
// The analyzer runs a per-function taint walk: values obtained from
// atomic.Pointer.Load() are tainted, taint propagates through field
// selection, indexing and dereference, and Clone() (or any other call)
// launders it. Flagged: assignments whose left-hand side is reachable
// from a tainted value, and calls to known mutating methods (UpdateEdge,
// Materialize, Set, SetBunch, Canonicalize) with a tainted receiver.
package swapdiscipline

import (
	"go/ast"
	"go/types"

	"distsketch/internal/lint/analysis"
)

// mutators are methods that mutate their receiver; calling one on a
// published snapshot is as racy as a direct field write.
var mutators = map[string]bool{
	"UpdateEdge":   true,
	"Materialize":  true,
	"Set":          true,
	"SetBunch":     true,
	"Canonicalize": true,
}

// Analyzer flags writes through snapshots loaded from an atomic.Pointer.
var Analyzer = &analysis.Analyzer{
	Name: "swapdiscipline",
	Doc:  "flag writes to state reachable from an atomic.Pointer Load() outside the clone-repair-swap sequence",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.EachFuncBody(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		tainted := make(map[*types.Var]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, v, tainted)
			case *ast.IncDecStmt:
				if inner, ok := innerExpr(v.X); ok && taintedExpr(pass, inner, tainted) {
					pass.Reportf(v.Pos(), "write through a snapshot loaded from an atomic.Pointer; Clone the snapshot, repair the clone, then Store it (clone-repair-swap)")
				}
			case *ast.CallExpr:
				checkMutatorCall(pass, v, tainted)
			}
			return true
		})
	})
	return nil
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, tainted map[*types.Var]bool) {
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[0]
		if i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			// Plain variable (re)binding: propagate or clear taint. Binding
			// a new name to a snapshot is not itself a write.
			if lv := pass.LocalVar(id); lv != nil {
				if taintedExpr(pass, rhs, tainted) {
					tainted[lv] = true
				} else {
					delete(tainted, lv)
				}
			}
			continue
		}
		// Compound lvalue: x.f = v, x[i] = v, *p = v. Writing through a
		// tainted chain mutates the published snapshot.
		if inner, ok := innerExpr(lhs); ok && taintedExpr(pass, inner, tainted) {
			pass.Reportf(lhs.Pos(), "write through a snapshot loaded from an atomic.Pointer; Clone the snapshot, repair the clone, then Store it (clone-repair-swap)")
		}
	}
}

func checkMutatorCall(pass *analysis.Pass, call *ast.CallExpr, tainted map[*types.Var]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !mutators[sel.Sel.Name] {
		return
	}
	if _, isMethod := pass.TypesInfo.Selections[sel]; !isMethod {
		return
	}
	if taintedExpr(pass, sel.X, tainted) {
		pass.Reportf(call.Pos(), "mutating method %s called on a snapshot loaded from an atomic.Pointer; Clone the snapshot first, then Store the repaired copy", sel.Sel.Name)
	}
}

// innerExpr strips one lvalue layer: x.f -> x, x[i] -> x, *p -> p.
func innerExpr(e ast.Expr) (ast.Expr, bool) {
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return v.X, true
	case *ast.IndexExpr:
		return v.X, true
	case *ast.StarExpr:
		return v.X, true
	}
	return nil, false
}

// taintedExpr reports whether e denotes (part of) a published snapshot:
// a direct atomic.Pointer Load() result, a tainted local, or a
// selection/index/deref chain rooted at one. Any other call — Clone()
// above all — launders the taint.
func taintedExpr(pass *analysis.Pass, e ast.Expr, tainted map[*types.Var]bool) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if lv := pass.LocalVar(v); lv != nil {
			return tainted[lv]
		}
	case *ast.SelectorExpr:
		return taintedExpr(pass, v.X, tainted)
	case *ast.IndexExpr:
		return taintedExpr(pass, v.X, tainted)
	case *ast.StarExpr:
		return taintedExpr(pass, v.X, tainted)
	case *ast.CallExpr:
		return isAtomicLoad(pass, v)
	}
	return false
}

// isAtomicLoad reports whether call is (*sync/atomic.Pointer[T]).Load().
func isAtomicLoad(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	recv := pass.TypeOf(sel.X)
	return recv != nil && analysis.IsNamed(recv, "sync/atomic", "Pointer")
}
