package swapdiscipline_test

import (
	"testing"

	"distsketch/internal/lint/analysis"
	"distsketch/internal/lint/swapdiscipline"
)

func TestSwapDiscipline(t *testing.T) {
	analysis.RunTest(t, "testdata/src/swapdiscipline", swapdiscipline.Analyzer)
}
