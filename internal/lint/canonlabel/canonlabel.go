// Package canonlabel enforces the sorted-unique label representation
// invariant introduced in PRs 4–5: LandmarkLabel.Entries and
// TZLabel.Bunch are canonical slices (strictly ascending IDs, unique
// keys), and the query algorithms — merge-intersections, binary
// searches, probe tables — are only correct because every producer
// maintains that order. The compiler cannot see the invariant; this
// analyzer makes violating it a build failure instead of a wrong answer
// under traffic.
//
// The rule: code may not construct or mutate the Entries/Bunch slices
// directly. It must go through a blessed producer:
//
//   - the canonicalizing constructors (NewLandmarkLabelFromEntries),
//   - the sorted-insert setters (Set, SetBunch),
//   - the canonicalizers (Canonicalize, CanonicalizeBunch,
//     CanonicalizeEntries),
//   - or the staged pattern: a function that appends freely but calls a
//     canonicalizer before returning (the wire decoders do this — append
//     in input order, canonicalize once if the input was not already
//     sorted).
//
// Reads are always fine: iterating Entries/Bunch directly is the
// documented hot-path idiom.
package canonlabel

import (
	"go/ast"
	"go/token"
	"go/types"

	"distsketch/internal/lint/analysis"
)

const sketchPath = "distsketch/internal/sketch"

// blessedFuncs are the producers inside internal/sketch that exist to
// maintain the invariant; their bodies are the implementation of the
// discipline, not violations of it.
var blessedFuncs = map[string]bool{
	"Set":                         true,
	"SetBunch":                    true,
	"Canonicalize":                true,
	"CanonicalizeBunch":           true,
	"CanonicalizeEntries":         true,
	"NewLandmarkLabelFromEntries": true,
}

// canonicalizers bless the staged append-then-canonicalize pattern when
// called anywhere in the mutating function.
var canonicalizers = map[string]bool{
	"Canonicalize":                true,
	"CanonicalizeBunch":           true,
	"CanonicalizeEntries":         true,
	"SetBunch":                    true,
	"NewLandmarkLabelFromEntries": true,
}

// Analyzer flags direct construction or mutation of the canonical label
// slices outside the blessed producers.
var Analyzer = &analysis.Analyzer{
	Name: "canonlabel",
	Doc:  "flag construction or mutation of LandmarkLabel.Entries / TZLabel.Bunch outside the blessed canonicalizing producers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inSketch := pass.Pkg.Path() == sketchPath
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	pass.EachFuncBody(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if inSketch && blessedFuncs[decl.Name.Name] {
			return
		}
		if callsCanonicalizer(pass, body) {
			// Staged pattern: the function restores the invariant itself
			// before handing the label on.
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range v.Lhs {
					if sel, field := labelSliceRoot(pass, lhs); sel != nil {
						report(sel.Pos(), "%s assigned outside a blessed producer; construct labels with NewLandmarkLabelFromEntries/Set/SetBunch or canonicalize before returning", field)
					}
				}
			case *ast.CallExpr:
				if pass.IsBuiltinCall(v, "append") && len(v.Args) > 0 {
					if sel, field := labelSliceRoot(pass, v.Args[0]); sel != nil {
						report(sel.Pos(), "append to %s outside a blessed producer; stage items in a local slice and call SetBunch/NewLandmarkLabelFromEntries, or canonicalize before returning", field)
					}
				}
			case *ast.CompositeLit:
				checkCompositeLit(pass, v, report)
			}
			return true
		})
	})
	return nil
}

// labelSliceRoot walks down an lvalue (x.Entries, x.Entries[i],
// x.Bunch[i].Dist, ...) looking for a selector of one of the canonical
// label slices; it returns that selector and a display name, or nil.
func labelSliceRoot(pass *analysis.Pass, e ast.Expr) (*ast.SelectorExpr, string) {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if field := labelSliceSel(pass, v); field != "" {
				return v, field
			}
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil, ""
		}
	}
}

// labelSliceSel reports whether sel is LandmarkLabel.Entries or
// TZLabel.Bunch, returning the qualified field name.
func labelSliceSel(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	base := pass.TypeOf(sel.X)
	if base == nil {
		return ""
	}
	switch sel.Sel.Name {
	case "Entries":
		if analysis.IsNamed(base, sketchPath, "LandmarkLabel") {
			return "LandmarkLabel.Entries"
		}
	case "Bunch":
		if analysis.IsNamed(base, sketchPath, "TZLabel") {
			return "TZLabel.Bunch"
		}
	}
	return ""
}

// checkCompositeLit flags LandmarkLabel{Entries: ...} / TZLabel{Bunch: ...}
// literals (keyed or positional) that populate the canonical slice
// directly instead of going through a constructor.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, report func(token.Pos, string, ...any)) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	var field string
	switch {
	case analysis.IsNamed(t, sketchPath, "LandmarkLabel"):
		field = "Entries"
	case analysis.IsNamed(t, sketchPath, "TZLabel"):
		field = "Bunch"
	default:
		return
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field && !isNilExpr(kv.Value) {
				report(kv.Pos(), "composite literal populates %s.%s directly; use the canonicalizing constructor instead", typeName(t), field)
			}
			continue
		}
		// Positional literal: match the element index to the field.
		if i < st.NumFields() && st.Field(i).Name() == field && !isNilExpr(elt) {
			report(elt.Pos(), "composite literal populates %s.%s directly; use the canonicalizing constructor instead", typeName(t), field)
		}
	}
}

func typeName(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// callsCanonicalizer reports whether the body contains a call to one of
// the canonicalizing producers (package function or label method).
func callsCanonicalizer(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if fn := pass.FuncFor(call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == sketchPath && canonicalizers[fn.Name()] {
			found = true
		}
		return !found
	})
	return found
}
