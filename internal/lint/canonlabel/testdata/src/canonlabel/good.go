package fixture

import "distsketch/internal/sketch"

// goodConstructor routes construction through the canonicalizing
// constructor — the blessed way to build a label from unordered entries.
func goodConstructor(es []sketch.Entry) *sketch.LandmarkLabel {
	return sketch.NewLandmarkLabelFromEntries(3, es)
}

// goodEmptyLit builds an empty label; a literal that leaves the
// canonical slice nil cannot break the invariant.
func goodEmptyLit(owner int) *sketch.LandmarkLabel {
	return &sketch.LandmarkLabel{Owner: owner}
}

// goodSet uses the sorted-insert fast path.
func goodSet(t *sketch.TZLabel, w int, d int64) {
	t.Set(w, d, 0)
}

// goodStaged appends freely but canonicalizes before returning — the
// wire-decoder pattern. The canonicalizer call blesses the whole
// function body.
func goodStaged(t *sketch.TZLabel, items []sketch.BunchItem) {
	for _, it := range items {
		t.Bunch = append(t.Bunch, it)
	}
	t.Bunch = sketch.CanonicalizeBunch(t.Bunch)
}

// goodStagedMethod is the same pattern via the method form.
func goodStagedMethod(t *sketch.TZLabel, items []sketch.BunchItem) {
	t.Bunch = append(t.Bunch, items...)
	t.Canonicalize()
}

// goodRead iterates the slices directly — reads are the documented
// hot-path idiom and are never flagged.
func goodRead(l *sketch.LandmarkLabel) int64 {
	var sum int64
	for _, e := range l.Entries {
		sum += e.D
	}
	return sum
}
