package fixture

import "distsketch/internal/sketch"

// goodIgnored carries a directive with an analyzer name and a reason, so
// the finding is suppressed.
func goodIgnored(l *sketch.LandmarkLabel, es []sketch.Entry) {
	//sketchlint:ignore canonlabel es is produced by CanonicalizeEntries upstream
	l.Entries = es
}

// badBareIgnore has a directive without a reason; bare ignores are inert
// by design, so the diagnostic still fires.
func badBareIgnore(l *sketch.LandmarkLabel, es []sketch.Entry) {
	//sketchlint:ignore canonlabel
	l.Entries = es // want "LandmarkLabel.Entries assigned"
}
