package fixture

import "distsketch/internal/sketch"

// badAssign overwrites the canonical slice wholesale with an input of
// unknown order.
func badAssign(l *sketch.LandmarkLabel, es []sketch.Entry) {
	l.Entries = es // want "LandmarkLabel.Entries assigned outside a blessed producer"
}

// badAppend grows the bunch without restoring sorted order.
func badAppend(t *sketch.TZLabel, it sketch.BunchItem) {
	t.Bunch = append(t.Bunch, it) // want "TZLabel.Bunch"
}

// badElement mutates one element key in place, which can break ordering
// without changing the slice header at all.
func badElement(l *sketch.LandmarkLabel) {
	l.Entries[0].Net = 7 // want "LandmarkLabel.Entries assigned"
}

// badKeyedLit populates Entries directly in a literal.
func badKeyedLit(es []sketch.Entry) *sketch.LandmarkLabel {
	return &sketch.LandmarkLabel{Owner: 1, Entries: es} // want "composite literal populates LandmarkLabel.Entries"
}

// badPositionalLit does the same without field keys.
func badPositionalLit(es []sketch.Entry) sketch.LandmarkLabel {
	return sketch.LandmarkLabel{1, es} // want "composite literal populates LandmarkLabel.Entries"
}
