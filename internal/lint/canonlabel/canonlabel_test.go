package canonlabel_test

import (
	"testing"

	"distsketch/internal/lint/analysis"
	"distsketch/internal/lint/canonlabel"
)

func TestCanonLabel(t *testing.T) {
	analysis.RunTest(t, "testdata/src/canonlabel", canonlabel.Analyzer)
}
