package fixture

// hotIgnored documents a justified allocation; the directive with a
// reason suppresses the finding.
//
//sketchlint:hotpath
func hotIgnored(n int) []int {
	//sketchlint:ignore hotpathalloc first-call warmup; amortized to zero by the pool
	return make([]int, n)
}
