package fixture

// goodLookup is a zero-allocation binary search — the shape of the
// probe-index and sorted-slice lookups the directive protects.
//
//sketchlint:hotpath
func goodLookup(xs []int, k int) (int, bool) {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == k {
		return xs[lo], true
	}
	return 0, false
}

type scratch struct {
	buf []int
}

// goodScratch is the pooled-scratch idiom: the buffer is reset with
// x = x[:0] inside the function, so appends amortize to zero by reusing
// pool capacity. The reset blesses the appends.
//
//sketchlint:hotpath
func goodScratch(s *scratch, vs []int) {
	s.buf = s.buf[:0]
	for _, v := range vs {
		s.buf = append(s.buf, v)
	}
}

// goodForward forwards an existing slice to a variadic callee with ...;
// no argument slice is materialized.
//
//sketchlint:hotpath
func goodForward(vs []int) int {
	return sink(vs...)
}

// notHot allocates freely; without the directive nothing is flagged.
func notHot(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
