package fixture

//sketchlint:hotpath
func hotMake(n int) []int {
	return make([]int, n) // want "make allocates"
}

//sketchlint:hotpath
func hotNew() *int {
	return new(int) // want "new allocates"
}

//sketchlint:hotpath
func hotAppend(xs []int, v int) []int {
	return append(xs, v) // want "append may grow"
}

//sketchlint:hotpath
func hotBox(v int) any {
	return v // want "boxes int into any"
}

//sketchlint:hotpath
func hotClosure(xs []int) func() int {
	return func() int { return len(xs) } // want "function literal"
}

//sketchlint:hotpath
func hotEscape(v int) *int {
	return &v // want "taking the address of local v"
}

//sketchlint:hotpath
func hotConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//sketchlint:hotpath
func hotSliceLit() []int {
	return []int{1, 2, 3} // want "slice literal"
}

//sketchlint:hotpath
func hotMapLit() map[int]int {
	return map[int]int{} // want "map literal"
}

//sketchlint:hotpath
func hotBytes(b []byte) string {
	return string(b) // want "conversion allocates"
}

//sketchlint:hotpath
func hotAddrLit() *struct{ a int } {
	return &struct{ a int }{a: 1} // want "composite literal allocates"
}

func sink(vs ...int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

//sketchlint:hotpath
func hotVariadicCall(a, b int) int {
	return sink(a, b) // want "variadic arguments allocates"
}
