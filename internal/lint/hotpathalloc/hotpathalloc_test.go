package hotpathalloc_test

import (
	"testing"

	"distsketch/internal/lint/analysis"
	"distsketch/internal/lint/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysis.RunTest(t, "testdata/src/hotpathalloc", hotpathalloc.Analyzer)
}
