// Package hotpathalloc enforces the zero-allocation discipline on the
// serving hot path. Functions annotated with a `//sketchlint:hotpath`
// doc-comment directive — the Query* walks, the probe-index lookups, the
// serve batch scratch path — promise zero allocations per call, and the
// AllocsPerRun benchmarks hold them to it dynamically. This analyzer
// holds them to it statically, at the construct level, so a regression
// is a lint failure naming the offending expression rather than a
// benchmark delta to bisect.
//
// Flagged constructs: make, new, slice/map/pointer composite literals,
// taking the address of a local, append (unless into a buffer the
// function itself resets with the `x = x[:0]` pooled-scratch idiom),
// function literals, goroutine spawns, string concatenation,
// string<->[]byte conversions, and interface boxing at call sites,
// assignments, conversions and returns.
//
// The analyzer is intentionally conservative: a construct the escape
// analyzer would keep on the stack may still be flagged. The suppression
// for a justified case is `//sketchlint:ignore hotpathalloc <reason>`,
// which documents the justification at the site.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/types"

	"distsketch/internal/lint/analysis"
)

// Analyzer flags allocation-inducing constructs inside functions
// annotated //sketchlint:hotpath.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation-inducing constructs in functions annotated //sketchlint:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.EachFuncBody(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if !analysis.HasDirective(decl.Doc, "hotpath") {
			return
		}
		checkBody(pass, decl, body)
	})
	return nil
}

func checkBody(pass *analysis.Pass, decl *ast.FuncDecl, body *ast.BlockStmt) {
	resets := collectResets(pass, body)
	var results *types.Tuple
	if fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			results = sig.Results()
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, v, resets)
		case *ast.CompositeLit:
			if t := pass.TypeOf(v); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(v.Pos(), "slice literal allocates on the hot path")
				case *types.Map:
					pass.Reportf(v.Pos(), "map literal allocates on the hot path")
				}
			}
		case *ast.UnaryExpr:
			checkAddressOf(pass, v)
		case *ast.FuncLit:
			pass.Reportf(v.Pos(), "function literal may allocate a closure on the hot path")
		case *ast.GoStmt:
			pass.Reportf(v.Pos(), "spawning a goroutine allocates on the hot path")
		case *ast.BinaryExpr:
			if v.Op.String() == "+" && isString(pass.TypeOf(v)) {
				pass.Reportf(v.Pos(), "string concatenation allocates on the hot path")
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i < len(v.Rhs) {
					checkBoxing(pass, pass.TypeOf(lhs), v.Rhs[i], "assignment")
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(v.Results) == results.Len() {
				for i, res := range v.Results {
					checkBoxing(pass, results.At(i).Type(), res, "return")
				}
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, allocating conversions, and
// interface boxing of arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, resets map[string]bool) {
	switch {
	case pass.IsBuiltinCall(call, "make"):
		pass.Reportf(call.Pos(), "make allocates on the hot path; use a pooled or pre-sized buffer")
	case pass.IsBuiltinCall(call, "new"):
		pass.Reportf(call.Pos(), "new allocates on the hot path")
	case pass.IsBuiltinCall(call, "append"):
		if len(call.Args) > 0 {
			if path := exprPath(pass, call.Args[0]); path != "" && resets[path] {
				// Pooled-scratch idiom: the function reset this buffer with
				// x = x[:0], so appends are amortized reuse of pool capacity.
				return
			}
		}
		pass.Reportf(call.Pos(), "append may grow its backing array on the hot path; reset a pooled buffer with x = x[:0] or pre-size it outside the hot path")
	default:
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if ok && tv.IsType() {
			checkConversion(pass, call, tv.Type)
			return
		}
		sig, ok := tv.Type.(*types.Signature)
		if !ok {
			return
		}
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // forwarding a slice, no per-element boxing
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			checkBoxing(pass, pt, arg, "argument")
		}
		if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
			pass.Reportf(call.Pos(), "call with variadic arguments allocates the argument slice on the hot path")
		}
	}
}

// checkConversion flags string<->[]byte conversions and conversions to
// interface types.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := pass.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isString(target) && isByteSlice(src):
		pass.Reportf(call.Pos(), "[]byte-to-string conversion allocates on the hot path")
	case isByteSlice(target) && isString(src):
		pass.Reportf(call.Pos(), "string-to-[]byte conversion allocates on the hot path")
	default:
		checkBoxing(pass, target, call.Args[0], "conversion")
	}
}

// checkBoxing reports a concrete value converted to an interface type.
func checkBoxing(pass *analysis.Pass, dst types.Type, src ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	pass.Reportf(src.Pos(), "%s boxes %s into %s on the hot path", what, tv.Type, dst)
}

// checkAddressOf flags &composite{} and &localVar.
func checkAddressOf(pass *analysis.Pass, u *ast.UnaryExpr) {
	if u.Op.String() != "&" {
		return
	}
	switch x := ast.Unparen(u.X).(type) {
	case *ast.CompositeLit:
		pass.Reportf(u.Pos(), "&composite literal allocates on the hot path")
	case *ast.Ident:
		if pass.LocalVar(x) != nil {
			pass.Reportf(u.Pos(), "taking the address of local %s may force it to the heap on the hot path", x.Name)
		}
	}
}

// collectResets finds the pooled-scratch reset idiom `x = x[:0]` (and
// `x := x[:0]`) and returns the canonical paths of the reset buffers.
func collectResets(pass *analysis.Pass, body *ast.BlockStmt) map[string]bool {
	resets := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sl, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
		if !ok || sl.Low != nil || !isZeroLit(sl.High) {
			return true
		}
		lp := exprPath(pass, as.Lhs[0])
		if lp != "" && lp == exprPath(pass, sl.X) {
			resets[lp] = true
		}
		return true
	})
	return resets
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// exprPath canonicalizes an lvalue chain (ident, selector, index) to a
// comparable string keyed on the root object's identity, or "" if the
// expression is not such a chain.
func exprPath(pass *analysis.Pass, e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[v]
		if obj == nil {
			obj = pass.TypesInfo.Defs[v]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("%p", obj)
	case *ast.SelectorExpr:
		base := exprPath(pass, v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.IndexExpr:
		base := exprPath(pass, v.X)
		if base == "" {
			return ""
		}
		return base + "[]"
	case *ast.StarExpr:
		base := exprPath(pass, v.X)
		if base == "" {
			return ""
		}
		return "*" + base
	}
	return ""
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
