// Package congest implements a deterministic simulator for the standard
// synchronous CONGEST model of distributed computation (Peleg 2000), the
// model the paper's algorithms are stated in (Section 2.2 of the paper):
//
//   - Computation proceeds in synchronous rounds.
//   - In each round, every node may send one message of O(log n) bits
//     (a constant number of "words") through each incident edge.
//   - A message sent in round r arrives at the other endpoint at the
//     beginning of round r+1.
//   - Each node initially knows only its own ID, its neighbors' IDs, the
//     weights of its incident edges, and n.
//
// The simulator enforces the bandwidth constraint (at most one message per
// edge per direction per round, each at most MaxWords words) and accounts
// for rounds, messages, and words — exactly the quantities the paper's
// theorems bound.
//
// Within a round all nodes execute concurrently on a worker pool; because
// interaction happens only through the round-boundary message buffers, the
// execution is deterministic regardless of goroutine schedule.
package congest

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"distsketch/internal/graph"
)

// Message is a payload sent along one edge in one round. Words reports the
// message size in O(log n)-bit words (a word fits a node ID or a distance;
// Section 2.2). The engine rejects messages wider than Config.MaxWords.
type Message interface {
	Words() int
}

// Incoming is a delivered message together with its sending neighbor.
type Incoming struct {
	From    int
	Payload Message
}

// Node is the algorithm state machine placed at each network node.
//
// Init is called once before round 1; sends made during Init are delivered
// at the beginning of round 1 (this is the paper's "in the first round").
// Round is called every subsequent round with the messages delivered this
// round. A node that wants to act in the next round even if it receives no
// messages must call Context.WakeNextRound.
type Node interface {
	Init(ctx *Context)
	Round(ctx *Context, inbox []Incoming)
}

// Config controls simulation limits and execution strategy.
type Config struct {
	// MaxWords is the maximum message size in words. The paper's messages
	// carry a (node ID, distance) pair plus a small type tag; the default
	// of 3 words accommodates that. Zero means the default.
	MaxWords int
	// MaxRounds aborts the run if exceeded (safety net against livelock in
	// buggy protocols). Zero means the default of 50 million.
	MaxRounds int
	// Sequential forces single-goroutine execution (useful under -race and
	// for the determinism tests). Default is parallel.
	Sequential bool
	// Seed is the master seed from which per-node RNG streams derive.
	Seed uint64
	// MaxDelay enables asynchronous delivery, the paper's stated future
	// direction (Section 5): each message is independently delayed by a
	// uniform number of rounds in [1, MaxDelay] before arriving, with
	// FIFO order preserved per directed edge (delays never reorder a
	// link). 0 or 1 means synchronous delivery. The protocols in this
	// repository are self-stabilizing to the same fixed points under any
	// bounded delay, which the async tests verify.
	MaxDelay int
	// Trace records a per-round time series of sent messages/words
	// (Engine.Trace), used to regenerate wave-profile figures.
	Trace bool
}

// RoundStat is one point of the per-round traffic time series.
type RoundStat struct {
	Round    int
	Messages int64
	Words    int64
}

const (
	defaultMaxWords  = 3
	defaultMaxRounds = 50_000_000
)

// Stats aggregates the cost measures bounded by the paper's theorems.
type Stats struct {
	Rounds   int   // synchronous rounds executed
	Messages int64 // total messages delivered
	Words    int64 // total words delivered (message size sum)
}

// Add returns componentwise s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{Rounds: s.Rounds + o.Rounds, Messages: s.Messages + o.Messages, Words: s.Words + o.Words}
}

// Sub returns componentwise s - o (for per-phase deltas).
func (s Stats) Sub(o Stats) Stats {
	return Stats{Rounds: s.Rounds - o.Rounds, Messages: s.Messages - o.Messages, Words: s.Words - o.Words}
}

func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d messages=%d words=%d", s.Rounds, s.Messages, s.Words)
}

// Engine drives one simulation over a fixed graph and node set.
type Engine struct {
	g     *graph.Graph
	cfg   Config
	nodes []Node
	ctxs  []*Context

	inboxes [][]Incoming // current round's deliveries, indexed by node
	scratch [][]Incoming // next round's buffers (reused)

	stats     Stats
	initDone  bool
	delivered int64 // messages delivered in the most recent round

	// Asynchronous mode (MaxDelay > 1).
	async    bool
	delayRNG *rand.Rand
	future   futureHeap // deliveries scheduled for later rounds
	seq      int64

	trace []RoundStat
}

// Trace returns the per-round traffic series (Config.Trace must be set).
// Entry i covers round i+1's sends; Init's sends are attributed to round 0.
func (e *Engine) Trace() []RoundStat { return e.trace }

// NewEngine creates an engine for g. nodes[i] is placed at graph node i.
func NewEngine(g *graph.Graph, nodes []Node, cfg Config) *Engine {
	if len(nodes) != g.N() {
		panic(fmt.Sprintf("congest: %d nodes for graph with n=%d", len(nodes), g.N()))
	}
	if cfg.MaxWords == 0 {
		cfg.MaxWords = defaultMaxWords
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	e := &Engine{
		g:       g,
		cfg:     cfg,
		nodes:   nodes,
		ctxs:    make([]*Context, g.N()),
		inboxes: make([][]Incoming, g.N()),
		scratch: make([][]Incoming, g.N()),
		async:   cfg.MaxDelay > 1,
	}
	if e.async {
		e.delayRNG = rand.New(rand.NewPCG(cfg.Seed^0xA57C, 0xDE1A7))
	}
	for u := 0; u < g.N(); u++ {
		adj := g.Adj(u)
		nbrs := make([]int, len(adj))
		wts := make([]graph.Dist, len(adj))
		for i, a := range adj {
			nbrs[i] = a.To
			wts[i] = a.Weight
		}
		e.ctxs[u] = &Context{
			engine:    e,
			id:        u,
			n:         g.N(),
			neighbors: nbrs,
			weights:   wts,
			out:       make([]Message, len(adj)),
			lastDue:   make([]int, len(adj)),
			rng:       rand.New(rand.NewPCG(cfg.Seed, uint64(u)*0x9e3779b97f4a7c15+1)),
		}
	}
	return e
}

// Graph returns the underlying topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Stats returns the accumulated cost counters.
func (e *Engine) Stats() Stats { return e.stats }

// Node returns the algorithm state machine at node u (for result harvest).
func (e *Engine) Node(u int) Node { return e.nodes[u] }

// Context is a node's handle to the network: identity, local topology
// knowledge, randomness, and the per-round send interface. A Context is
// only valid inside the Init/Round call it is passed to.
type Context struct {
	engine    *Engine
	id        int
	n         int
	neighbors []int // sorted neighbor IDs
	weights   []graph.Dist
	rng       *rand.Rand

	round   int
	out     []Message // out[i] = message queued for neighbors[i] this round
	lastDue []int     // async: last scheduled delivery round per edge (FIFO)
	wake    bool
	crashed bool
	sent    int
}

// ID returns this node's identifier (0..n-1).
func (c *Context) ID() int { return c.id }

// N returns the number of nodes in the network (common knowledge; §2.2).
func (c *Context) N() int { return c.n }

// Round returns the current round number (Init is round 0).
func (c *Context) Round() int { return c.round }

// Degree returns the number of incident edges.
func (c *Context) Degree() int { return len(c.neighbors) }

// Neighbors returns the sorted IDs of adjacent nodes. Callers must not
// modify the returned slice.
func (c *Context) Neighbors() []int { return c.neighbors }

// WeightTo returns the weight of the edge to neighbor index i.
func (c *Context) WeightTo(i int) graph.Dist { return c.weights[i] }

// NeighborIndex returns the adjacency index of the given neighbor ID, or -1.
func (c *Context) NeighborIndex(id int) int {
	i := sort.SearchInts(c.neighbors, id)
	if i < len(c.neighbors) && c.neighbors[i] == id {
		return i
	}
	return -1
}

// RNG returns this node's private random stream. Streams are derived from
// the engine seed and the node ID, so coin flips can be replayed by the
// centralized reference constructions (DESIGN.md §5.2).
func (c *Context) RNG() *rand.Rand { return c.rng }

// Send queues msg on the edge to neighbor index i. Each edge carries at
// most one message per direction per round and each message at most
// MaxWords words; violations panic, because they mean the algorithm does
// not fit the CONGEST model.
func (c *Context) Send(i int, msg Message) {
	if msg == nil {
		panic("congest: nil message")
	}
	if w := msg.Words(); w > c.engine.cfg.MaxWords {
		panic(fmt.Sprintf("congest: node %d message of %d words exceeds budget %d", c.id, w, c.engine.cfg.MaxWords))
	}
	if c.out[i] != nil {
		panic(fmt.Sprintf("congest: node %d sent twice to neighbor %d in round %d", c.id, c.neighbors[i], c.round))
	}
	c.out[i] = msg
	c.sent++
}

// SendTo queues msg for the neighbor with the given ID.
func (c *Context) SendTo(id int, msg Message) {
	i := c.NeighborIndex(id)
	if i < 0 {
		panic(fmt.Sprintf("congest: node %d has no neighbor %d", c.id, id))
	}
	c.Send(i, msg)
}

// Broadcast queues msg on every incident edge.
func (c *Context) Broadcast(msg Message) {
	for i := range c.neighbors {
		c.Send(i, msg)
	}
}

// WakeNextRound requests that this node's Round be invoked next round even
// if it receives no messages. Without a wake request and without incoming
// messages a node stays asleep (and an all-asleep network is quiescent).
func (c *Context) WakeNextRound() { c.wake = true }

// Wake schedules node u to run in the next round even if it receives no
// messages. It is the hook used by out-of-band coordinators — e.g. the
// omniscient phase synchronizer, which models "every node knows the phase
// length bound" (Section 3.2 of the paper) without in-band signalling.
func (e *Engine) Wake(u int) { e.ctxs[u].wake = true }

// Crash fail-stops node u: from the next round on it executes nothing,
// sends nothing, and every message addressed to it is silently dropped.
// The paper's algorithms are not fault-tolerant (Section 5 leaves the
// failure-prone setting open); this hook exists so tests can demonstrate
// *how* they fail — e.g. a mid-phase crash permanently stalls the
// Section 3.3 COMPLETE convergecast rather than corrupting labels.
func (e *Engine) Crash(u int) { e.ctxs[u].crashed = true }

// Crashed reports whether u has been fail-stopped.
func (e *Engine) Crashed(u int) bool { return e.ctxs[u].crashed }

// ErrMaxRounds is returned (wrapped) when a run exceeds Config.MaxRounds.
var ErrMaxRounds = fmt.Errorf("congest: exceeded max rounds")

// Init runs every node's Init hook. It is called implicitly by the Run
// methods on first use; calling it explicitly is allowed (once).
func (e *Engine) Init() {
	if e.initDone {
		return
	}
	e.initDone = true
	before := e.stats
	e.forEachNode(func(u int) {
		ctx := e.ctxs[u]
		ctx.round = 0
		e.nodes[u].Init(ctx)
	})
	e.collect()
	if e.cfg.Trace {
		e.trace = append(e.trace, RoundStat{
			Round:    0,
			Messages: e.stats.Messages - before.Messages,
			Words:    e.stats.Words - before.Words,
		})
	}
}

// RunRounds executes exactly r additional rounds (after Init).
func (e *Engine) RunRounds(r int) error {
	e.Init()
	for i := 0; i < r; i++ {
		if err := e.step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilQuiescent executes rounds until no messages are in flight and no
// node has requested a wake-up, or until maxRounds (0 = Config.MaxRounds)
// is exceeded. Returns the number of rounds executed.
func (e *Engine) RunUntilQuiescent(maxRounds int) (int, error) {
	e.Init()
	if maxRounds <= 0 {
		maxRounds = e.cfg.MaxRounds
	}
	start := e.stats.Rounds
	for !e.Quiescent() {
		if e.stats.Rounds-start >= maxRounds {
			return e.stats.Rounds - start, fmt.Errorf("%w (%d)", ErrMaxRounds, maxRounds)
		}
		if err := e.step(); err != nil {
			return e.stats.Rounds - start, err
		}
	}
	return e.stats.Rounds - start, nil
}

// Quiescent reports whether nothing is pending: no deliveries (immediate
// or delayed) and no wakes. In asynchronous mode delivered messages are
// consumed within the same step, so only the future heap matters.
func (e *Engine) Quiescent() bool {
	if e.async {
		if len(e.future) > 0 {
			return false
		}
	} else if e.delivered > 0 {
		return false
	}
	for _, ctx := range e.ctxs {
		if ctx.wake && !ctx.crashed {
			return false
		}
	}
	return true
}

// step executes one synchronous round: deliver, run all nodes, collect.
func (e *Engine) step() error {
	if e.stats.Rounds >= e.cfg.MaxRounds {
		return fmt.Errorf("%w (%d)", ErrMaxRounds, e.cfg.MaxRounds)
	}
	e.stats.Rounds++
	round := e.stats.Rounds
	if e.async {
		e.deliverDue(round)
	}
	before := e.stats
	e.forEachNode(func(u int) {
		ctx := e.ctxs[u]
		if ctx.crashed {
			ctx.wake = false
			return // fail-stopped: executes nothing
		}
		inbox := e.inboxes[u]
		if len(inbox) == 0 && !ctx.wake {
			return // asleep: no event for this node
		}
		ctx.wake = false
		ctx.round = round
		e.nodes[u].Round(ctx, inbox)
	})
	e.collect()
	if e.cfg.Trace {
		e.trace = append(e.trace, RoundStat{
			Round:    round,
			Messages: e.stats.Messages - before.Messages,
			Words:    e.stats.Words - before.Words,
		})
	}
	return nil
}

// collect moves queued outgoing messages toward their destinations and
// updates counters. It runs serially and in (sender, adjacency) order, so
// every inbox is deterministically ordered. In synchronous mode messages
// land in the next round's inboxes directly; in asynchronous mode each is
// scheduled heapwise with its sampled delay.
func (e *Engine) collect() {
	if e.async {
		e.collectAsync()
		return
	}
	// Reset next-round buffers.
	for u := range e.scratch {
		e.scratch[u] = e.scratch[u][:0]
	}
	var delivered, words int64
	for u := 0; u < e.g.N(); u++ {
		ctx := e.ctxs[u]
		if ctx.sent == 0 {
			continue
		}
		for i, msg := range ctx.out {
			if msg == nil {
				continue
			}
			v := ctx.neighbors[i]
			ctx.out[i] = nil
			if e.ctxs[v].crashed {
				continue // dropped on the floor at a fail-stopped node
			}
			e.scratch[v] = append(e.scratch[v], Incoming{From: u, Payload: msg})
			delivered++
			words += int64(msg.Words())
		}
		ctx.sent = 0
	}
	e.inboxes, e.scratch = e.scratch, e.inboxes
	e.stats.Messages += delivered
	e.stats.Words += words
	e.delivered = delivered
}

// collectAsync schedules each queued message for a future round with a
// uniform delay in [1, MaxDelay], clamped so deliveries on one directed
// edge stay FIFO and respect the one-message-per-edge-per-round bandwidth
// on the receiving side.
func (e *Engine) collectAsync() {
	now := e.stats.Rounds
	var words int64
	var count int64
	for u := 0; u < e.g.N(); u++ {
		ctx := e.ctxs[u]
		if ctx.sent == 0 {
			continue
		}
		for i, msg := range ctx.out {
			if msg == nil {
				continue
			}
			if e.ctxs[ctx.neighbors[i]].crashed {
				ctx.out[i] = nil
				continue // dropped at a fail-stopped node
			}
			due := now + 1 + int(e.delayRNG.Int64N(int64(e.cfg.MaxDelay)))
			if due <= ctx.lastDue[i] {
				due = ctx.lastDue[i] + 1
			}
			ctx.lastDue[i] = due
			e.seq++
			heapPush(&e.future, futureDelivery{
				due: due, seq: e.seq, to: ctx.neighbors[i],
				inc: Incoming{From: u, Payload: msg},
			})
			count++
			words += int64(msg.Words())
			ctx.out[i] = nil
		}
		ctx.sent = 0
	}
	e.stats.Messages += count
	e.stats.Words += words
}

// deliverDue moves every message scheduled for the given round into its
// destination inbox.
func (e *Engine) deliverDue(round int) {
	for u := range e.inboxes {
		e.inboxes[u] = e.inboxes[u][:0]
	}
	var delivered int64
	for len(e.future) > 0 && e.future[0].due <= round {
		d := heapPop(&e.future)
		e.inboxes[d.to] = append(e.inboxes[d.to], d.inc)
		delivered++
	}
	e.delivered = delivered
}

// forEachNode runs f over all node IDs, in parallel unless configured
// sequential. f must only touch state owned by its node.
func (e *Engine) forEachNode(f func(u int)) {
	n := e.g.N()
	if e.cfg.Sequential || n < 64 {
		for u := 0; u < n; u++ {
			f(u)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := parallelism(n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				f(u)
			}
		}()
	}
	wg.Wait()
}
