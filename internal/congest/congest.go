// Package congest implements a deterministic simulator for the standard
// synchronous CONGEST model of distributed computation (Peleg 2000), the
// model the paper's algorithms are stated in (Section 2.2 of the paper):
//
//   - Computation proceeds in synchronous rounds.
//   - In each round, every node may send one message of O(log n) bits
//     (a constant number of "words") through each incident edge.
//   - A message sent in round r arrives at the other endpoint at the
//     beginning of round r+1.
//   - Each node initially knows only its own ID, its neighbors' IDs, the
//     weights of its incident edges, and n.
//
// The simulator enforces the bandwidth constraint (at most one message per
// edge per direction per round, each at most MaxWords words) and accounts
// for rounds, messages, and words — exactly the quantities the paper's
// theorems bound.
//
// # Scheduling
//
// The paper's constructions are wave-based: in a typical round only a thin
// BFS/Bellman–Ford frontier of nodes is active. The engine therefore runs
// an event-driven active-set scheduler: it maintains an explicit list of
// nodes that have a delivery or a wake request pending, visits only those
// nodes in step, harvests outgoing messages only from nodes that ran, and
// answers Quiescent from O(1) counters. Per-round cost is proportional to
// the activity of the round, not to n. The legacy O(n)-per-round loop is
// retained behind Config.FullScan as the baseline for the scheduler
// benchmarks and the equivalence tests; both produce bit-identical
// executions.
//
// Within a round all active nodes execute concurrently on a persistent
// worker pool; because interaction happens only through the round-boundary
// message buffers, the execution is deterministic regardless of goroutine
// schedule.
package congest

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"slices"
	"sort"
	"sync/atomic"

	"distsketch/internal/graph"
)

// Message is a payload sent along one edge in one round. Words reports the
// message size in O(log n)-bit words (a word fits a node ID or a distance;
// Section 2.2). The engine rejects messages wider than Config.MaxWords.
type Message interface {
	Words() int
}

// Incoming is a delivered message together with its sending neighbor.
type Incoming struct {
	From    int
	Payload Message
}

// Node is the algorithm state machine placed at each network node.
//
// Init is called once before round 1; sends made during Init are delivered
// at the beginning of round 1 (this is the paper's "in the first round").
// Round is called every subsequent round with the messages delivered this
// round. A node that wants to act in the next round even if it receives no
// messages must call Context.WakeNextRound.
type Node interface {
	Init(ctx *Context)
	Round(ctx *Context, inbox []Incoming)
}

// Config controls simulation limits and execution strategy.
type Config struct {
	// MaxWords is the maximum message size in words. The paper's messages
	// carry a (node ID, distance) pair plus a small type tag; the default
	// of 3 words accommodates that. Zero means the default.
	MaxWords int
	// MaxRounds aborts the run if exceeded (safety net against livelock in
	// buggy protocols). Zero means the default of 50 million.
	MaxRounds int
	// Sequential forces single-goroutine execution (useful under -race and
	// for the determinism tests). Default is parallel.
	Sequential bool
	// Seed is the master seed from which per-node RNG streams derive.
	Seed uint64
	// MaxDelay enables asynchronous delivery, the paper's stated future
	// direction (Section 5): each message is independently delayed by a
	// uniform number of rounds in [1, MaxDelay] before arriving, with
	// FIFO order preserved per directed edge (delays never reorder a
	// link). 0 or 1 means synchronous delivery. The protocols in this
	// repository are self-stabilizing to the same fixed points under any
	// bounded delay, which the async tests verify.
	MaxDelay int
	// Trace records a per-round time series of sent messages/words
	// (Engine.Trace), used to regenerate wave-profile figures.
	Trace bool
	// FullScan selects the legacy O(n)-per-round round loop (scan every
	// node every round) instead of the event-driven active-set scheduler.
	// It exists as the baseline for the scheduler benchmarks and the
	// equivalence tests; executions are bit-identical, only slower when
	// the active frontier is much smaller than n.
	FullScan bool
	// Ctx, when non-nil, makes the run cancelable: the engine checks the
	// context before every round and aborts with a wrapped Ctx.Err() once
	// it is done. This is how the facade's BuildContext plumbs context
	// cancellation into the round loop. A nil or background context adds
	// no per-round cost.
	Ctx context.Context
	// OnRound, when non-nil, is invoked on the driver goroutine after
	// every completed round with the 1-based engine round number
	// (progress reporting for long builds).
	OnRound func(round int)
}

// RoundStat is one point of the per-round traffic time series.
type RoundStat struct {
	Round    int
	Messages int64
	Words    int64
}

const (
	defaultMaxWords  = 3
	defaultMaxRounds = 50_000_000
)

// Stats aggregates the cost measures bounded by the paper's theorems.
type Stats struct {
	Rounds   int   // synchronous rounds executed
	Messages int64 // total messages delivered
	Words    int64 // total words delivered (message size sum)
}

// Add returns componentwise s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{Rounds: s.Rounds + o.Rounds, Messages: s.Messages + o.Messages, Words: s.Words + o.Words}
}

// Sub returns componentwise s - o (for per-phase deltas).
func (s Stats) Sub(o Stats) Stats {
	return Stats{Rounds: s.Rounds - o.Rounds, Messages: s.Messages - o.Messages, Words: s.Words - o.Words}
}

func (s Stats) String() string {
	return fmt.Sprintf("rounds=%d messages=%d words=%d", s.Rounds, s.Messages, s.Words)
}

// Engine drives one simulation over a fixed graph and node set.
type Engine struct {
	g     *graph.Graph
	cfg   Config
	nodes []Node
	ctxs  []*Context

	inboxes [][]Incoming // current round's deliveries, indexed by node
	scratch [][]Incoming // next round's buffers (reused)

	// Active-set scheduler state. pending holds the nodes scheduled for
	// the next step (receivers of in-flight messages plus wake requests);
	// step swaps it into active, sorts, and runs only those nodes.
	// inboxStamp[u] is the round for which inboxes[u]'s content is valid
	// (buffers are truncated lazily, so stale content may linger in a
	// slice that the stamp marks dead). wakeCount counts non-crashed
	// nodes with a pending wake, making Quiescent O(1).
	active     []int
	pending    []int
	pendingIn  []bool
	inboxStamp []int
	// wakeCount is a separate allocation shared with every Context. A
	// Context must NOT point back at the Engine (directly or into its
	// allocation): Engine→ctxs→Engine would be a cycle through the
	// finalized object, and Go never runs finalizers on such cycles — the
	// worker-pool cleanup for dropped engines would silently leak.
	wakeCount *atomic.Int64

	// pool is a separate allocation, NOT an inline field: its parked
	// workers hold a *workerPool, and if that pointed into the Engine the
	// engine could never be collected (and its cleanup never run).
	pool *workerPool

	// done caches Config.Ctx.Done(); nil when the run is not cancelable
	// (no context, or a context that can never be canceled), so the
	// per-round check is a single nil comparison in the common case.
	done <-chan struct{}

	stats     Stats
	initDone  bool
	delivered int64 // messages delivered in the most recent round

	// Asynchronous mode (MaxDelay > 1).
	async    bool
	delayRNG *rand.Rand
	future   futureHeap // deliveries scheduled for later rounds
	seq      int64

	trace []RoundStat
}

// Trace returns the per-round traffic series (Config.Trace must be set).
// Entry i covers round i+1's sends; Init's sends are attributed to round 0.
func (e *Engine) Trace() []RoundStat { return e.trace }

// NewEngine creates an engine for g. nodes[i] is placed at graph node i.
func NewEngine(g *graph.Graph, nodes []Node, cfg Config) *Engine {
	if len(nodes) != g.N() {
		panic(fmt.Sprintf("congest: %d nodes for graph with n=%d", len(nodes), g.N()))
	}
	if cfg.MaxWords == 0 {
		cfg.MaxWords = defaultMaxWords
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = defaultMaxRounds
	}
	e := &Engine{
		g:          g,
		cfg:        cfg,
		nodes:      nodes,
		ctxs:       make([]*Context, g.N()),
		inboxes:    make([][]Incoming, g.N()),
		scratch:    make([][]Incoming, g.N()),
		pendingIn:  make([]bool, g.N()),
		inboxStamp: make([]int, g.N()),
		wakeCount:  new(atomic.Int64),
		pool:       &workerPool{},
		async:      cfg.MaxDelay > 1,
	}
	if e.async {
		e.delayRNG = rand.New(rand.NewPCG(cfg.Seed^0xA57C, 0xDE1A7))
	}
	if cfg.Ctx != nil {
		e.done = cfg.Ctx.Done()
	}
	for u := 0; u < g.N(); u++ {
		adj := g.Adj(u)
		nbrs := make([]int, len(adj))
		wts := make([]graph.Dist, len(adj))
		for i, a := range adj {
			nbrs[i] = a.To
			wts[i] = a.Weight
		}
		e.ctxs[u] = &Context{
			maxWords:  cfg.MaxWords,
			wakeCount: e.wakeCount,
			id:        u,
			n:         g.N(),
			neighbors: nbrs,
			weights:   wts,
			out:       make([]Message, len(adj)),
			lastDue:   make([]int, len(adj)),
			rng:       rand.New(rand.NewPCG(cfg.Seed, uint64(u)*0x9e3779b97f4a7c15+1)),
		}
	}
	// Safety net for engines that are dropped without Close: the parked
	// pool workers hold no reference back to the engine, so the engine
	// becomes collectable and the cleanup releases them.
	runtime.SetFinalizer(e, func(e *Engine) { e.pool.shutdown() })
	return e
}

// Close releases the engine's persistent worker goroutines. It is
// idempotent; the engine must not be used afterwards. Engines that are
// simply dropped are cleaned up by the garbage collector, so Close is an
// optimization for promptness, not a requirement.
func (e *Engine) Close() {
	e.pool.shutdown()
	runtime.SetFinalizer(e, nil)
}

// Graph returns the underlying topology.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Stats returns the accumulated cost counters.
func (e *Engine) Stats() Stats { return e.stats }

// Node returns the algorithm state machine at node u (for result harvest).
func (e *Engine) Node(u int) Node { return e.nodes[u] }

// Context is a node's handle to the network: identity, local topology
// knowledge, randomness, and the per-round send interface. A Context is
// only valid inside the Init/Round call it is passed to.
type Context struct {
	// No reference back to the Engine (see Engine.wakeCount): the Context
	// carries the few engine facts it needs by value or via shared
	// side allocations.
	maxWords  int
	wakeCount *atomic.Int64
	id        int
	n         int
	neighbors []int // sorted neighbor IDs
	weights   []graph.Dist
	rng       *rand.Rand

	round   int
	out     []Message // out[i] = message queued for neighbors[i] this round
	lastDue []int     // async: last scheduled delivery round per edge (FIFO)
	wake    bool
	crashed bool
	sent    int
}

// ID returns this node's identifier (0..n-1).
func (c *Context) ID() int { return c.id }

// N returns the number of nodes in the network (common knowledge; §2.2).
func (c *Context) N() int { return c.n }

// Round returns the current round number (Init is round 0).
func (c *Context) Round() int { return c.round }

// Degree returns the number of incident edges.
func (c *Context) Degree() int { return len(c.neighbors) }

// Neighbors returns the sorted IDs of adjacent nodes. Callers must not
// modify the returned slice.
func (c *Context) Neighbors() []int { return c.neighbors }

// WeightTo returns the weight of the edge to neighbor index i.
func (c *Context) WeightTo(i int) graph.Dist { return c.weights[i] }

// NeighborIndex returns the adjacency index of the given neighbor ID, or -1.
func (c *Context) NeighborIndex(id int) int {
	i := sort.SearchInts(c.neighbors, id)
	if i < len(c.neighbors) && c.neighbors[i] == id {
		return i
	}
	return -1
}

// RNG returns this node's private random stream. Streams are derived from
// the engine seed and the node ID, so coin flips can be replayed by the
// centralized reference constructions (DESIGN.md §5.2).
func (c *Context) RNG() *rand.Rand { return c.rng }

// Send queues msg on the edge to neighbor index i. Each edge carries at
// most one message per direction per round and each message at most
// MaxWords words; violations panic, because they mean the algorithm does
// not fit the CONGEST model.
func (c *Context) Send(i int, msg Message) {
	if msg == nil {
		panic("congest: nil message")
	}
	if w := msg.Words(); w > c.maxWords {
		panic(fmt.Sprintf("congest: node %d message of %d words exceeds budget %d", c.id, w, c.maxWords))
	}
	if c.out[i] != nil {
		panic(fmt.Sprintf("congest: node %d sent twice to neighbor %d in round %d", c.id, c.neighbors[i], c.round))
	}
	c.out[i] = msg
	c.sent++
}

// SendTo queues msg for the neighbor with the given ID.
func (c *Context) SendTo(id int, msg Message) {
	i := c.NeighborIndex(id)
	if i < 0 {
		panic(fmt.Sprintf("congest: node %d has no neighbor %d", c.id, id))
	}
	c.Send(i, msg)
}

// Broadcast queues msg on every incident edge.
func (c *Context) Broadcast(msg Message) {
	for i := range c.neighbors {
		c.Send(i, msg)
	}
}

// WakeNextRound requests that this node's Round be invoked next round even
// if it receives no messages. Without a wake request and without incoming
// messages a node stays asleep (and an all-asleep network is quiescent).
// May be called concurrently from different nodes' Round hooks; the shared
// counter is atomic and the flag is node-owned.
func (c *Context) WakeNextRound() {
	if !c.wake {
		c.wake = true
		c.wakeCount.Add(1)
	}
}

// Wake schedules node u to run in the next round even if it receives no
// messages. It is the hook used by out-of-band coordinators — e.g. the
// omniscient phase synchronizer, which models "every node knows the phase
// length bound" (Section 3.2 of the paper) without in-band signalling.
// Waking a fail-stopped node is a no-op.
func (e *Engine) Wake(u int) {
	ctx := e.ctxs[u]
	if ctx.crashed {
		return
	}
	if !ctx.wake {
		ctx.wake = true
		e.wakeCount.Add(1)
	}
	e.schedule(u)
}

// schedule puts u on the next step's active list (idempotent).
func (e *Engine) schedule(u int) {
	if !e.pendingIn[u] {
		e.pendingIn[u] = true
		e.pending = append(e.pending, u)
	}
}

// Crash fail-stops node u: from the next round on it executes nothing,
// sends nothing, and every message addressed to it is silently dropped.
// A pending wake request is consumed, so a crashed-but-woken node cannot
// keep the network non-quiescent. The paper's algorithms are not
// fault-tolerant (Section 5 leaves the failure-prone setting open); this
// hook exists so tests can demonstrate *how* they fail — e.g. a mid-phase
// crash permanently stalls the Section 3.3 COMPLETE convergecast rather
// than corrupting labels.
func (e *Engine) Crash(u int) {
	ctx := e.ctxs[u]
	if ctx.crashed {
		return
	}
	ctx.crashed = true
	if ctx.wake {
		ctx.wake = false
		e.wakeCount.Add(-1)
	}
}

// Crashed reports whether u has been fail-stopped.
func (e *Engine) Crashed(u int) bool { return e.ctxs[u].crashed }

// ErrMaxRounds is returned (wrapped) when a run exceeds Config.MaxRounds.
var ErrMaxRounds = fmt.Errorf("congest: exceeded max rounds")

// Init runs every node's Init hook. It is called implicitly by the Run
// methods on first use; calling it explicitly is allowed (once).
func (e *Engine) Init() {
	if e.initDone {
		return
	}
	e.initDone = true
	before := e.stats
	initNode := func(u int) {
		ctx := e.ctxs[u]
		ctx.round = 0
		e.nodes[u].Init(ctx)
	}
	if e.cfg.FullScan {
		e.forEachNodeSpawn(initNode)
		e.collectFullScan()
	} else {
		e.pool.run(e.g.N(), initNode, e.cfg.Sequential)
		e.collect(nil)
	}
	if e.cfg.Trace {
		e.trace = append(e.trace, RoundStat{
			Round:    0,
			Messages: e.stats.Messages - before.Messages,
			Words:    e.stats.Words - before.Words,
		})
	}
}

// RunRounds executes exactly r additional rounds (after Init).
func (e *Engine) RunRounds(r int) error {
	e.Init()
	for i := 0; i < r; i++ {
		if err := e.step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilQuiescent executes rounds until no messages are in flight and no
// node has requested a wake-up, or until maxRounds (0 = Config.MaxRounds)
// is exceeded. Returns the number of rounds executed.
func (e *Engine) RunUntilQuiescent(maxRounds int) (int, error) {
	e.Init()
	if maxRounds <= 0 {
		maxRounds = e.cfg.MaxRounds
	}
	start := e.stats.Rounds
	for !e.Quiescent() {
		if e.stats.Rounds-start >= maxRounds {
			return e.stats.Rounds - start, fmt.Errorf("%w (%d)", ErrMaxRounds, maxRounds)
		}
		if err := e.step(); err != nil {
			return e.stats.Rounds - start, err
		}
	}
	return e.stats.Rounds - start, nil
}

// Quiescent reports whether nothing is pending: no deliveries (immediate
// or delayed) and no wakes. In asynchronous mode delivered messages are
// consumed within the same step, so only the future heap matters. The
// check is O(1): pending deliveries and wake requests are counted as they
// are produced and consumed.
func (e *Engine) Quiescent() bool {
	if e.cfg.FullScan {
		return e.quiescentScan()
	}
	if e.async {
		if len(e.future) > 0 {
			return false
		}
	} else if e.delivered > 0 {
		return false
	}
	return e.wakeCount.Load() == 0
}

// step executes one synchronous round and services the engine-level
// hooks: context cancellation is checked before the round, Config.OnRound
// fires after it.
func (e *Engine) step() error {
	if e.done != nil {
		select {
		case <-e.done:
			return fmt.Errorf("congest: run canceled after %d rounds: %w", e.stats.Rounds, e.cfg.Ctx.Err())
		default:
		}
	}
	var err error
	if e.cfg.FullScan {
		err = e.stepFullScan()
	} else {
		err = e.stepActive()
	}
	if err == nil && e.cfg.OnRound != nil {
		e.cfg.OnRound(e.stats.Rounds)
	}
	return err
}

// stepActive executes one synchronous round on the active-set scheduler:
// deliver, run the active nodes, collect.
func (e *Engine) stepActive() error {
	if e.stats.Rounds >= e.cfg.MaxRounds {
		return fmt.Errorf("%w (%d)", ErrMaxRounds, e.cfg.MaxRounds)
	}
	e.stats.Rounds++
	round := e.stats.Rounds
	if e.async {
		e.deliverDue(round)
	}
	// The runnable set for this round is everything scheduled so far:
	// receivers of this round's deliveries plus wake requests. Ascending
	// node-ID order makes collect's harvest order — and therefore every
	// inbox's ordering — identical to the legacy all-nodes scan. On dense
	// rounds the order comes from an O(n) scan of the membership bitmap,
	// which beats comparison-sorting a quarter of the graph; on sparse
	// rounds (the wave regime) a small sort wins.
	e.active, e.pending = e.pending, e.active[:0]
	if len(e.active)*4 >= e.g.N() {
		e.active = e.active[:0]
		for u, in := range e.pendingIn {
			if in {
				e.pendingIn[u] = false
				e.active = append(e.active, u)
			}
		}
	} else {
		for _, u := range e.active {
			e.pendingIn[u] = false
		}
		slices.Sort(e.active)
	}
	before := e.stats
	e.pool.run(len(e.active), func(i int) {
		u := e.active[i]
		ctx := e.ctxs[u]
		if ctx.crashed {
			return // fail-stopped: executes nothing, deliveries are dropped
		}
		var inbox []Incoming
		if e.inboxStamp[u] == round {
			inbox = e.inboxes[u]
		}
		if len(inbox) == 0 && !ctx.wake {
			return // stale schedule entry: nothing to do
		}
		if ctx.wake {
			ctx.wake = false
			e.wakeCount.Add(-1)
		}
		ctx.round = round
		e.nodes[u].Round(ctx, inbox)
	}, e.cfg.Sequential)
	e.collect(e.active)
	if e.cfg.Trace {
		e.trace = append(e.trace, RoundStat{
			Round:    round,
			Messages: e.stats.Messages - before.Messages,
			Words:    e.stats.Words - before.Words,
		})
	}
	return nil
}

// collect moves queued outgoing messages toward their destinations,
// updates counters, and schedules the next round's active set. Only the
// nodes in ran can have queued sends or fresh wake requests, so only they
// are harvested (ran == nil means all nodes, used after Init). Harvesting
// runs serially and in (sender, adjacency) order, so every inbox is
// deterministically ordered. In synchronous mode messages land in the
// next round's buffers directly; in asynchronous mode each is scheduled
// heapwise with its sampled delay.
func (e *Engine) collect(ran []int) {
	if e.async {
		e.collectAsync(ran)
		return
	}
	var delivered, words int64
	stamp := e.stats.Rounds + 1 // the round the scratch buffers will serve
	harvest := func(u int) {
		ctx := e.ctxs[u]
		if ctx.wake {
			e.schedule(u)
		}
		if ctx.sent == 0 {
			return
		}
		for i, msg := range ctx.out {
			if msg == nil {
				continue
			}
			ctx.out[i] = nil
			v := ctx.neighbors[i]
			if e.ctxs[v].crashed {
				continue // dropped on the floor at a fail-stopped node
			}
			if e.inboxStamp[v] != stamp {
				e.inboxStamp[v] = stamp
				e.scratch[v] = e.scratch[v][:0] // lazy per-receiver reset
			}
			e.schedule(v)
			e.scratch[v] = append(e.scratch[v], Incoming{From: u, Payload: msg})
			delivered++
			words += int64(msg.Words())
		}
		ctx.sent = 0
	}
	if ran == nil {
		for u := 0; u < e.g.N(); u++ {
			harvest(u)
		}
	} else {
		for _, u := range ran {
			harvest(u)
		}
	}
	e.inboxes, e.scratch = e.scratch, e.inboxes
	e.stats.Messages += delivered
	e.stats.Words += words
	e.delivered = delivered
}

// collectAsync schedules each queued message for a future round with a
// uniform delay in [1, MaxDelay], clamped so deliveries on one directed
// edge stay FIFO and respect the one-message-per-edge-per-round bandwidth
// on the receiving side. Wake requests still take effect next round, so
// they go straight onto the active list.
func (e *Engine) collectAsync(ran []int) {
	now := e.stats.Rounds
	var words int64
	var count int64
	harvest := func(u int) {
		ctx := e.ctxs[u]
		if ctx.wake {
			e.schedule(u)
		}
		if ctx.sent == 0 {
			return
		}
		for i, msg := range ctx.out {
			if msg == nil {
				continue
			}
			if e.ctxs[ctx.neighbors[i]].crashed {
				ctx.out[i] = nil
				continue // dropped at a fail-stopped node
			}
			due := now + 1 + int(e.delayRNG.Int64N(int64(e.cfg.MaxDelay)))
			if due <= ctx.lastDue[i] {
				due = ctx.lastDue[i] + 1
			}
			ctx.lastDue[i] = due
			e.seq++
			heapPush(&e.future, futureDelivery{
				due: due, seq: e.seq, to: ctx.neighbors[i],
				inc: Incoming{From: u, Payload: msg},
			})
			count++
			words += int64(msg.Words())
			ctx.out[i] = nil
		}
		ctx.sent = 0
	}
	if ran == nil {
		for u := 0; u < e.g.N(); u++ {
			harvest(u)
		}
	} else {
		for _, u := range ran {
			harvest(u)
		}
	}
	e.stats.Messages += count
	e.stats.Words += words
}

// deliverDue moves every message scheduled for the given round into its
// destination inbox and schedules the receivers to run. Receivers'
// inboxes are truncated lazily on first delivery (the stamp marks them
// live); untouched inboxes keep stale content that no node will ever see.
func (e *Engine) deliverDue(round int) {
	var delivered int64
	for len(e.future) > 0 && e.future[0].due <= round {
		d := heapPop(&e.future)
		if e.inboxStamp[d.to] != round {
			e.inboxStamp[d.to] = round
			e.inboxes[d.to] = e.inboxes[d.to][:0]
		}
		e.schedule(d.to)
		e.inboxes[d.to] = append(e.inboxes[d.to], d.inc)
		delivered++
	}
	e.delivered = delivered
}
