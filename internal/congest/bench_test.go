package congest

import (
	"testing"

	"distsketch/internal/graph"
)

// Engine micro-benchmarks on wave-shaped workloads: a BFS flood where the
// per-round frontier is a thin ring (O(√n) on a torus) while n is large.
// This is the shape of every TZ/CDG/landmark phase, and the regime the
// active-set scheduler targets: the legacy full-scan loop pays O(n) per
// round regardless of activity. Run with:
//
//	go test ./internal/congest -bench=BenchmarkEngine -benchtime=1x
//
// The CI smoke uses -benchtime=1x; real measurements want the default
// benchtime. The acceptance bar for this PR was active-set ≥ 3× faster
// than full-scan on a ≥50k-node flood; see ROADMAP.md for the measured
// numbers.

// pulseNode is a re-triggerable BFS flood: each engine Wake of the source
// launches one wave, so one engine can be pulsed repeatedly and the
// benchmark measures the round loop, not engine construction.
type pulseNode struct {
	dist int
	src  bool
}

func (p *pulseNode) Init(ctx *Context) { p.dist = -1 }

func (p *pulseNode) Round(ctx *Context, inbox []Incoming) {
	if len(inbox) == 0 {
		if p.src { // wake pulse: launch a wave
			p.dist = 0
			ctx.Broadcast(floodMsg{hops: 1})
		}
		return
	}
	improved := false
	for _, in := range inbox {
		m := in.Payload.(floodMsg)
		if p.dist == -1 || m.hops < p.dist {
			p.dist = m.hops
			improved = true
		}
	}
	if improved {
		ctx.Broadcast(floodMsg{hops: p.dist + 1})
	}
}

// benchWaves builds one engine and times b.N full flood waves over it.
func benchWaves(b *testing.B, g *graph.Graph, cfg Config) {
	b.Helper()
	nodes := make([]Node, g.N())
	pulses := make([]*pulseNode, g.N())
	for j := range nodes {
		pulses[j] = &pulseNode{src: j == 0}
		nodes[j] = pulses[j]
	}
	e := NewEngine(g, nodes, cfg)
	defer e.Close()
	e.Init()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pulses {
			p.dist = -1
		}
		e.Wake(0)
		if _, err := e.RunUntilQuiescent(0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	want := graph.BFSHops(g, 0)
	for v, p := range pulses {
		if p.dist != want[v] {
			b.Fatalf("node %d: dist %d, want %d", v, p.dist, want[v])
		}
	}
}

// benchBuildAndFlood times the end-to-end shape callers see: construct the
// engine, run one flood to quiescence, tear down.
func benchBuildAndFlood(b *testing.B, g *graph.Graph, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes := make([]Node, g.N())
		for j := range nodes {
			nodes[j] = &floodNode{}
		}
		e := NewEngine(g, nodes, cfg)
		if _, err := e.RunUntilQuiescent(0); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

// torus50k is a 224×224 torus (n = 50176): flood frontier ≈ 4·√n ≪ n.
func torus50k() *graph.Graph {
	return graph.Torus(224, 224, graph.UnitWeights(), 1)
}

// geo20k is a 20k-node random geometric graph in the connectivity regime —
// the paper's wireless-network motivation; flood waves are annuli.
func geo20k() *graph.Graph {
	return graph.Make(graph.FamilyGeometric, 20_000, graph.UnitWeights(), 1)
}

// The headline comparison: pure round-loop cost on a 50k-node wave
// workload (the ≥3× acceptance benchmark).
func BenchmarkEngineWaveTorus50k(b *testing.B) {
	g := torus50k()
	b.Run("activeset-seq", func(b *testing.B) { benchWaves(b, g, Config{Sequential: true}) })
	b.Run("fullscan-seq", func(b *testing.B) { benchWaves(b, g, Config{Sequential: true, FullScan: true}) })
	b.Run("activeset-par", func(b *testing.B) { benchWaves(b, g, Config{}) })
	b.Run("fullscan-par", func(b *testing.B) { benchWaves(b, g, Config{FullScan: true}) })
}

func BenchmarkEngineWaveGeometric20k(b *testing.B) {
	g := geo20k()
	b.Run("activeset-seq", func(b *testing.B) { benchWaves(b, g, Config{Sequential: true}) })
	b.Run("fullscan-seq", func(b *testing.B) { benchWaves(b, g, Config{Sequential: true, FullScan: true}) })
	b.Run("activeset-par", func(b *testing.B) { benchWaves(b, g, Config{}) })
	b.Run("fullscan-par", func(b *testing.B) { benchWaves(b, g, Config{FullScan: true}) })
}

// End-to-end including engine construction and teardown.
func BenchmarkEngineBuildFloodTorus50k(b *testing.B) {
	g := torus50k()
	b.Run("activeset", func(b *testing.B) { benchBuildAndFlood(b, g, Config{Sequential: true}) })
	b.Run("fullscan", func(b *testing.B) { benchBuildAndFlood(b, g, Config{Sequential: true, FullScan: true}) })
}

// BenchmarkEngineAsyncTorus exercises the async path: deliverDue feeds the
// active set from heap pops instead of clearing all n inboxes.
func BenchmarkEngineAsyncTorus(b *testing.B) {
	g := graph.Torus(128, 128, graph.UnitWeights(), 1)
	b.Run("activeset", func(b *testing.B) { benchWaves(b, g, Config{MaxDelay: 4, Seed: 3, Sequential: true}) })
	b.Run("fullscan", func(b *testing.B) { benchWaves(b, g, Config{MaxDelay: 4, Seed: 3, Sequential: true, FullScan: true}) })
}

// BenchmarkEngineDenseFlood is the adversarial shape for the active set:
// on a dense-activity workload (most nodes active most rounds) the
// scheduler's bookkeeping should cost little over the full scan.
func BenchmarkEngineDenseFlood(b *testing.B) {
	g := graph.Make(graph.FamilyER, 4096, graph.UnitWeights(), 1)
	b.Run("activeset", func(b *testing.B) { benchWaves(b, g, Config{Sequential: true}) })
	b.Run("fullscan", func(b *testing.B) { benchWaves(b, g, Config{Sequential: true, FullScan: true}) })
}
