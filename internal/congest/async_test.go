package congest

import (
	"testing"

	"distsketch/internal/graph"
)

func TestAsyncFloodSameFixedPoint(t *testing.T) {
	// Under bounded random delays the flood still converges to BFS hop
	// distances (more rounds, same fixed point).
	for _, delay := range []int{2, 4, 8} {
		g := graph.Make(graph.FamilyGrid, 64, graph.UnitWeights(), 3)
		nodes := make([]Node, g.N())
		for i := range nodes {
			nodes[i] = &floodNode{}
		}
		e := NewEngine(g, nodes, Config{MaxDelay: delay, Seed: uint64(delay)})
		if _, err := e.RunUntilQuiescent(0); err != nil {
			t.Fatal(err)
		}
		want := graph.BFSHops(g, 0)
		for v := 0; v < g.N(); v++ {
			if got := e.Node(v).(*floodNode).dist; got != want[v] {
				t.Fatalf("delay=%d node %d: %d != %d", delay, v, got, want[v])
			}
		}
	}
}

func TestAsyncDeterministic(t *testing.T) {
	run := func(seed uint64) (Stats, []int) {
		g := graph.Make(graph.FamilyER, 48, graph.UnitWeights(), 7)
		nodes := make([]Node, g.N())
		for i := range nodes {
			nodes[i] = &floodNode{}
		}
		e := NewEngine(g, nodes, Config{MaxDelay: 3, Seed: seed, Sequential: true})
		if _, err := e.RunUntilQuiescent(0); err != nil {
			t.Fatal(err)
		}
		dists := make([]int, g.N())
		for i := range dists {
			dists[i] = e.Node(i).(*floodNode).dist
		}
		return e.Stats(), dists
	}
	s1, d1 := run(5)
	s2, d2 := run(5)
	if s1 != s2 {
		t.Errorf("same seed, different stats: %v vs %v", s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("same seed, node %d differs", i)
		}
	}
	s3, _ := run(6)
	if s1 == s3 {
		t.Log("different seeds produced identical stats (possible but unlikely)")
	}
}

func TestAsyncTakesMoreRounds(t *testing.T) {
	build := func(delay int) Stats {
		g := graph.Path(32, graph.UnitWeights(), 0)
		nodes := make([]Node, g.N())
		for i := range nodes {
			nodes[i] = &floodNode{}
		}
		e := NewEngine(g, nodes, Config{MaxDelay: delay, Seed: 1})
		if _, err := e.RunUntilQuiescent(0); err != nil {
			t.Fatal(err)
		}
		return e.Stats()
	}
	sync := build(0)
	async := build(6)
	if async.Rounds <= sync.Rounds {
		t.Errorf("async rounds %d should exceed sync %d on a path", async.Rounds, sync.Rounds)
	}
	// Delays cannot exceed MaxDelay per hop (path flood: one wave).
	if async.Rounds > 6*(sync.Rounds+2) {
		t.Errorf("async rounds %d exceed MaxDelay×sync bound", async.Rounds)
	}
}

func TestAsyncFIFOPerEdge(t *testing.T) {
	// A sender emits an increasing counter each round; the receiver must
	// see values strictly in order despite random delays.
	g := graph.Path(2, graph.UnitWeights(), 0)
	recv := &fifoCheckNode{}
	e := NewEngine(g, []Node{&counterNode{limit: 50}, recv}, Config{MaxDelay: 5, Seed: 9})
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if recv.violations > 0 {
		t.Errorf("%d FIFO violations", recv.violations)
	}
	if recv.seen != 50 {
		t.Errorf("received %d of 50 messages", recv.seen)
	}
	if recv.maxPerRound > 1 {
		t.Errorf("edge delivered %d messages in one round", recv.maxPerRound)
	}
}

type counterNode struct {
	sent  int
	limit int
}

func (c *counterNode) Init(ctx *Context) {
	ctx.WakeNextRound()
}

func (c *counterNode) Round(ctx *Context, _ []Incoming) {
	if c.sent < c.limit {
		c.sent++
		ctx.Broadcast(floodMsg{hops: c.sent})
		ctx.WakeNextRound()
	}
}

type fifoCheckNode struct {
	last        int
	seen        int
	violations  int
	maxPerRound int
}

func (f *fifoCheckNode) Init(ctx *Context) {}

func (f *fifoCheckNode) Round(ctx *Context, inbox []Incoming) {
	if len(inbox) > f.maxPerRound {
		f.maxPerRound = len(inbox)
	}
	for _, in := range inbox {
		v := in.Payload.(floodMsg).hops
		if v <= f.last {
			f.violations++
		}
		f.last = v
		f.seen++
	}
}
