package congest

import "runtime"

// parallelism picks the worker count for the per-round node fan-out: the
// available CPUs, but never more workers than nodes.
func parallelism(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
