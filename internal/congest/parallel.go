package congest

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the active-set size below which a round runs inline
// on the caller's goroutine: dispatching a handful of nodes to the pool
// costs more than running them.
const parallelThreshold = 64

// minChunk bounds how finely a round's work is split. Chunks amortize the
// shared cursor: one atomic add claims a whole run of items instead of one.
const minChunk = 16

// workerPool runs per-round node fan-outs on a fixed set of goroutines
// that live for the engine's lifetime. Workers are started lazily on the
// first parallel round and park on a channel between rounds; run releases
// them with one token each and waits on a barrier until every token has
// been consumed and the shared work cursor is exhausted. Between rounds
// the pool drops its reference to the job closure, so a parked pool does
// not pin the engine (which lets the engine's cleanup run and shut the
// workers down when the engine is dropped without Close).
type workerPool struct {
	startOnce sync.Once
	stopOnce  sync.Once
	workers   int
	start     chan struct{} // one token per worker per round
	stop      chan struct{}
	barrier   sync.WaitGroup

	// Per-round job state: written by run before the tokens are sent (the
	// channel send publishes them), read only by workers holding a token.
	f     func(int)
	n     int
	chunk int
	next  atomic.Int64
}

// run executes f(i) for every index i in [0, n), in parallel when the
// batch is big enough, inline otherwise. It returns only after every index
// has been processed (the round barrier). f must only touch state owned by
// its index's node, plus atomics.
func (p *workerPool) run(n int, f func(int), sequential bool) {
	if sequential || n < parallelThreshold {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	p.startOnce.Do(p.startWorkers)
	p.f, p.n = f, n
	p.chunk = n / (p.workers * 4)
	if p.chunk < minChunk {
		p.chunk = minChunk
	}
	p.next.Store(0)
	p.barrier.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		p.start <- struct{}{}
	}
	p.barrier.Wait()
	p.f = nil // drop the ref: a parked pool must not pin the engine
}

func (p *workerPool) startWorkers() {
	p.workers = runtime.GOMAXPROCS(0)
	if p.workers < 1 {
		p.workers = 1
	}
	p.start = make(chan struct{}, p.workers)
	p.stop = make(chan struct{})
	for w := 0; w < p.workers; w++ {
		go p.loop()
	}
}

func (p *workerPool) loop() {
	for {
		select {
		case <-p.stop:
			return
		case <-p.start:
			p.drain()
			p.barrier.Done()
		}
	}
}

// drain claims chunks off the shared cursor until the round's indices are
// exhausted.
func (p *workerPool) drain() {
	for {
		c := int(p.next.Add(1)) - 1
		lo := c * p.chunk
		if lo >= p.n {
			return
		}
		hi := lo + p.chunk
		if hi > p.n {
			hi = p.n
		}
		for i := lo; i < hi; i++ {
			p.f(i)
		}
	}
}

// shutdown terminates the workers (idempotent; parked workers exit, a pool
// that never started is a no-op).
func (p *workerPool) shutdown() {
	p.stopOnce.Do(func() {
		if p.stop != nil {
			close(p.stop)
		}
	})
}

// parallelism picks the worker count for the legacy per-round fan-out: the
// available CPUs, but never more workers than nodes.
func parallelism(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
