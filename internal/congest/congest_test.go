package congest

import (
	"errors"
	"fmt"
	"testing"

	"distsketch/internal/graph"
)

// floodMsg carries a hop count; used by the test protocol below.
type floodMsg struct{ hops int }

func (floodMsg) Words() int { return 2 }

// floodNode implements BFS flooding from node 0: on first contact it learns
// its hop distance and forwards hops+1 to all neighbors.
type floodNode struct {
	dist int
}

func (f *floodNode) Init(ctx *Context) {
	f.dist = -1
	if ctx.ID() == 0 {
		f.dist = 0
		ctx.Broadcast(floodMsg{hops: 1})
	}
}

func (f *floodNode) Round(ctx *Context, inbox []Incoming) {
	improved := false
	for _, in := range inbox {
		m := in.Payload.(floodMsg)
		if f.dist == -1 || m.hops < f.dist {
			f.dist = m.hops
			improved = true
		}
	}
	if improved {
		ctx.Broadcast(floodMsg{hops: f.dist + 1})
	}
}

func runFlood(t *testing.T, g *graph.Graph, cfg Config) (*Engine, []int) {
	t.Helper()
	nodes := make([]Node, g.N())
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, cfg)
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	dists := make([]int, g.N())
	for i := range dists {
		dists[i] = e.Node(i).(*floodNode).dist
	}
	return e, dists
}

func TestFloodComputesBFS(t *testing.T) {
	g := graph.Make(graph.FamilyGrid, 36, graph.UnitWeights(), 1)
	_, dists := runFlood(t, g, Config{})
	want := graph.BFSHops(g, 0)
	for v := range dists {
		if dists[v] != want[v] {
			t.Errorf("node %d: flood dist %d, want BFS %d", v, dists[v], want[v])
		}
	}
}

func TestFloodRoundsEqualEccentricity(t *testing.T) {
	// Flooding from node 0 on a path takes exactly ecc(0)+1 rounds to
	// quiesce (last delivery round n-1, then one empty check round is not
	// counted because quiescence is checked before stepping).
	g := graph.Path(10, graph.UnitWeights(), 0)
	e, _ := runFlood(t, g, Config{})
	// Deliveries happen in rounds 1..9; round 10 consumes the last
	// broadcast from node 9 (which has nowhere new to go but still sends).
	if e.Stats().Rounds < 9 || e.Stats().Rounds > 11 {
		t.Errorf("rounds = %d, want about 9-11", e.Stats().Rounds)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, f := range graph.AllFamilies() {
		g := graph.Make(f, 128, graph.UnitWeights(), 5)
		eSeq, dSeq := runFlood(t, g, Config{Sequential: true})
		ePar, dPar := runFlood(t, g, Config{Sequential: false})
		if eSeq.Stats() != ePar.Stats() {
			t.Errorf("%s: stats differ: seq %v par %v", f, eSeq.Stats(), ePar.Stats())
		}
		for v := range dSeq {
			if dSeq[v] != dPar[v] {
				t.Fatalf("%s: node %d differs: seq %d par %d", f, v, dSeq[v], dPar[v])
			}
		}
	}
}

func TestMessageAccounting(t *testing.T) {
	// On a star with n-1 leaves, flooding from the center: center sends
	// n-1 messages in Init; each leaf then broadcasts back 1 message.
	// Total = 2(n-1). Words = 2 per message.
	n := 17
	g := graph.Star(n, graph.UnitWeights(), 0)
	e, _ := runFlood(t, g, Config{})
	wantMsgs := int64(2 * (n - 1))
	if e.Stats().Messages != wantMsgs {
		t.Errorf("messages = %d, want %d", e.Stats().Messages, wantMsgs)
	}
	if e.Stats().Words != 2*wantMsgs {
		t.Errorf("words = %d, want %d", e.Stats().Words, 2*wantMsgs)
	}
}

type panicNode struct {
	f func(ctx *Context)
}

func (p *panicNode) Init(ctx *Context)                { p.f(ctx) }
func (p *panicNode) Round(ctx *Context, _ []Incoming) {}

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

type wideMsg struct{}

func (wideMsg) Words() int { return 99 }

func TestBandwidthEnforcement(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights(), 0)
	mk := func(f func(ctx *Context)) *Engine {
		return NewEngine(g, []Node{&panicNode{f: f}, &panicNode{f: func(*Context) {}}}, Config{})
	}
	expectPanic(t, "double send", func() {
		e := mk(func(ctx *Context) {
			ctx.Send(0, floodMsg{1})
			ctx.Send(0, floodMsg{2})
		})
		e.Init()
	})
	expectPanic(t, "oversized message", func() {
		e := mk(func(ctx *Context) { ctx.Send(0, wideMsg{}) })
		e.Init()
	})
	expectPanic(t, "nil message", func() {
		e := mk(func(ctx *Context) { ctx.Send(0, nil) })
		e.Init()
	})
	expectPanic(t, "unknown neighbor", func() {
		e := mk(func(ctx *Context) { ctx.SendTo(5, floodMsg{1}) })
		e.Init()
	})
}

// wakeNode counts how many times Round ran without any inbox, driven purely
// by WakeNextRound.
type wakeNode struct {
	wakes int
	limit int
}

func (w *wakeNode) Init(ctx *Context) {
	if w.limit > 0 {
		ctx.WakeNextRound()
	}
}

func (w *wakeNode) Round(ctx *Context, inbox []Incoming) {
	if len(inbox) != 0 {
		panic("unexpected inbox")
	}
	w.wakes++
	if w.wakes < w.limit {
		ctx.WakeNextRound()
	}
}

func TestWakeMechanism(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights(), 0)
	n0 := &wakeNode{limit: 5}
	e := NewEngine(g, []Node{n0, &wakeNode{}}, Config{})
	rounds, err := e.RunUntilQuiescent(100)
	if err != nil {
		t.Fatal(err)
	}
	if n0.wakes != 5 {
		t.Errorf("wakes = %d, want 5", n0.wakes)
	}
	if rounds != 5 {
		t.Errorf("rounds = %d, want 5", rounds)
	}
	if e.Stats().Messages != 0 {
		t.Errorf("messages = %d, want 0", e.Stats().Messages)
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights(), 0)
	e := NewEngine(g, []Node{&wakeNode{limit: 1 << 30}, &wakeNode{}}, Config{})
	_, err := e.RunUntilQuiescent(10)
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestRunRoundsExact(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, Config{})
	if err := e.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Rounds != 2 {
		t.Errorf("rounds = %d, want 2", e.Stats().Rounds)
	}
	// After 2 rounds flood from 0 has reached node 2 but not node 3.
	if d := e.Node(2).(*floodNode).dist; d != 2 {
		t.Errorf("node 2 dist = %d, want 2", d)
	}
	if d := e.Node(3).(*floodNode).dist; d != -1 {
		t.Errorf("node 3 dist = %d, want -1 (unreached)", d)
	}
}

func TestContextTopologyView(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 4)
	b.AddEdge(0, 2, 9)
	g := b.MustFreeze()
	var got struct {
		deg  int
		nbrs []int
		w1   graph.Dist
		idx  int
	}
	probe := &panicNode{f: func(ctx *Context) {
		got.deg = ctx.Degree()
		got.nbrs = append([]int(nil), ctx.Neighbors()...)
		got.w1 = ctx.WeightTo(ctx.NeighborIndex(2))
		got.idx = ctx.NeighborIndex(1)
	}}
	e := NewEngine(g, []Node{probe, &panicNode{f: func(*Context) {}}, &panicNode{f: func(*Context) {}}}, Config{})
	e.Init()
	if got.deg != 2 || len(got.nbrs) != 2 || got.nbrs[0] != 1 || got.nbrs[1] != 2 {
		t.Errorf("topology view wrong: %+v", got)
	}
	if got.w1 != 9 {
		t.Errorf("WeightTo(2) = %d, want 9", got.w1)
	}
	if got.idx != 0 {
		t.Errorf("NeighborIndex(1) = %d, want 0", got.idx)
	}
}

func TestPerNodeRNGDeterministic(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights(), 0)
	draw := func(seed uint64) []float64 {
		var vals []float64
		nodes := make([]Node, 3)
		for i := range nodes {
			nodes[i] = &panicNode{f: func(ctx *Context) {
				vals = append(vals, ctx.RNG().Float64())
			}}
		}
		e := NewEngine(g, nodes, Config{Seed: seed, Sequential: true})
		e.Init()
		return vals
	}
	a, b := draw(7), draw(7)
	c := draw(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at node %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestStatsArithmetic(t *testing.T) {
	a := Stats{Rounds: 5, Messages: 10, Words: 20}
	b := Stats{Rounds: 2, Messages: 3, Words: 4}
	if got := a.Add(b); got != (Stats{7, 13, 24}) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Stats{3, 7, 16}) {
		t.Errorf("Sub = %+v", got)
	}
	if s := a.String(); s != "rounds=5 messages=10 words=20" {
		t.Errorf("String = %q", s)
	}
}

func TestEngineNodeCountMismatchPanics(t *testing.T) {
	g := graph.Path(3, graph.UnitWeights(), 0)
	expectPanic(t, "node count", func() {
		NewEngine(g, []Node{&floodNode{}}, Config{})
	})
}

func TestQuiescentBeforeInitRuns(t *testing.T) {
	// A network where nobody sends in Init and nobody wakes is quiescent
	// after 0 rounds.
	g := graph.Path(2, graph.UnitWeights(), 0)
	e := NewEngine(g, []Node{&wakeNode{}, &wakeNode{}}, Config{})
	rounds, err := e.RunUntilQuiescent(10)
	if err != nil || rounds != 0 {
		t.Errorf("rounds=%d err=%v, want 0,nil", rounds, err)
	}
}

func BenchmarkFloodER512(b *testing.B) {
	g := graph.Make(graph.FamilyER, 512, graph.UnitWeights(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes := make([]Node, g.N())
		for j := range nodes {
			nodes[j] = &floodNode{}
		}
		e := NewEngine(g, nodes, Config{})
		if _, err := e.RunUntilQuiescent(0); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleEngine() {
	g := graph.Path(3, graph.UnitWeights(), 0)
	nodes := []Node{&floodNode{}, &floodNode{}, &floodNode{}}
	e := NewEngine(g, nodes, Config{})
	if _, err := e.RunUntilQuiescent(0); err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		fmt.Println(e.Node(i).(*floodNode).dist)
	}
	// Output:
	// 0
	// 1
	// 2
}
