package congest

// The legacy full-scan round loop, selected by Config.FullScan: every
// round scans all n nodes in step, resets all n buffers in collect, scans
// all n wake flags in Quiescent, and spawns a fresh goroutine batch for
// the fan-out. It is kept — byte-for-byte in behavior — as the baseline
// the scheduler benchmarks measure against and as the reference
// implementation the equivalence suite compares the active-set scheduler
// to. New engine features should target the active-set path; this one only
// needs to stay faithful.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// quiescentScan is the legacy O(n) quiescence check: scan every node's
// wake flag.
func (e *Engine) quiescentScan() bool {
	if e.async {
		if len(e.future) > 0 {
			return false
		}
	} else if e.delivered > 0 {
		return false
	}
	for _, ctx := range e.ctxs {
		if ctx.wake && !ctx.crashed {
			return false
		}
	}
	return true
}

// stepFullScan executes one synchronous round the legacy way: deliver, run
// all n nodes, collect from all n nodes.
func (e *Engine) stepFullScan() error {
	if e.stats.Rounds >= e.cfg.MaxRounds {
		return fmt.Errorf("%w (%d)", ErrMaxRounds, e.cfg.MaxRounds)
	}
	e.stats.Rounds++
	round := e.stats.Rounds
	if e.async {
		e.deliverDueFullScan(round)
	}
	before := e.stats
	e.forEachNodeSpawn(func(u int) {
		ctx := e.ctxs[u]
		if ctx.crashed {
			if ctx.wake {
				ctx.wake = false
				e.wakeCount.Add(-1)
			}
			return // fail-stopped: executes nothing
		}
		inbox := e.inboxes[u]
		if len(inbox) == 0 && !ctx.wake {
			return // asleep: no event for this node
		}
		if ctx.wake {
			ctx.wake = false
			e.wakeCount.Add(-1)
		}
		ctx.round = round
		e.nodes[u].Round(ctx, inbox)
	})
	e.collectFullScan()
	if e.cfg.Trace {
		e.trace = append(e.trace, RoundStat{
			Round:    round,
			Messages: e.stats.Messages - before.Messages,
			Words:    e.stats.Words - before.Words,
		})
	}
	return nil
}

// collectFullScan is the legacy collect: reset every buffer, scan every
// node for queued sends.
func (e *Engine) collectFullScan() {
	if e.async {
		e.collectAsyncFullScan()
		return
	}
	// Reset next-round buffers.
	for u := range e.scratch {
		e.scratch[u] = e.scratch[u][:0]
	}
	var delivered, words int64
	for u := 0; u < e.g.N(); u++ {
		ctx := e.ctxs[u]
		if ctx.sent == 0 {
			continue
		}
		for i, msg := range ctx.out {
			if msg == nil {
				continue
			}
			v := ctx.neighbors[i]
			ctx.out[i] = nil
			if e.ctxs[v].crashed {
				continue // dropped on the floor at a fail-stopped node
			}
			e.scratch[v] = append(e.scratch[v], Incoming{From: u, Payload: msg})
			delivered++
			words += int64(msg.Words())
		}
		ctx.sent = 0
	}
	e.inboxes, e.scratch = e.scratch, e.inboxes
	e.stats.Messages += delivered
	e.stats.Words += words
	e.delivered = delivered
}

// collectAsyncFullScan is the legacy async collect: scan every node for
// queued sends and schedule each message heapwise with its sampled delay.
func (e *Engine) collectAsyncFullScan() {
	now := e.stats.Rounds
	var words int64
	var count int64
	for u := 0; u < e.g.N(); u++ {
		ctx := e.ctxs[u]
		if ctx.sent == 0 {
			continue
		}
		for i, msg := range ctx.out {
			if msg == nil {
				continue
			}
			if e.ctxs[ctx.neighbors[i]].crashed {
				ctx.out[i] = nil
				continue // dropped at a fail-stopped node
			}
			due := now + 1 + int(e.delayRNG.Int64N(int64(e.cfg.MaxDelay)))
			if due <= ctx.lastDue[i] {
				due = ctx.lastDue[i] + 1
			}
			ctx.lastDue[i] = due
			e.seq++
			heapPush(&e.future, futureDelivery{
				due: due, seq: e.seq, to: ctx.neighbors[i],
				inc: Incoming{From: u, Payload: msg},
			})
			count++
			words += int64(msg.Words())
			ctx.out[i] = nil
		}
		ctx.sent = 0
	}
	e.stats.Messages += count
	e.stats.Words += words
}

// deliverDueFullScan is the legacy delivery: clear all n inboxes, then pop
// every message scheduled for the given round.
func (e *Engine) deliverDueFullScan(round int) {
	for u := range e.inboxes {
		e.inboxes[u] = e.inboxes[u][:0]
	}
	var delivered int64
	for len(e.future) > 0 && e.future[0].due <= round {
		d := heapPop(&e.future)
		e.inboxes[d.to] = append(e.inboxes[d.to], d.inc)
		delivered++
	}
	e.delivered = delivered
}

// forEachNodeSpawn is the legacy fan-out: spawn a fresh goroutine batch
// every round, with workers pulling single node IDs off a shared atomic
// counter.
func (e *Engine) forEachNodeSpawn(f func(u int)) {
	n := e.g.N()
	if e.cfg.Sequential || n < parallelThreshold {
		for u := 0; u < n; u++ {
			f(u)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := parallelism(n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				f(u)
			}
		}()
	}
	wg.Wait()
}
