package congest

import (
	"testing"

	"distsketch/internal/graph"
)

func TestCrashStopsExecution(t *testing.T) {
	// Flood on a path with the middle node crashed before the wave
	// arrives: the far side must never learn a distance.
	g := graph.Path(5, graph.UnitWeights(), 0)
	nodes := make([]Node, 5)
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, Config{})
	e.Crash(2)
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if d := e.Node(1).(*floodNode).dist; d != 1 {
		t.Errorf("node 1 dist = %d, want 1", d)
	}
	for _, v := range []int{3, 4} {
		if d := e.Node(v).(*floodNode).dist; d != -1 {
			t.Errorf("node %d behind the crash learned dist %d", v, d)
		}
	}
	if !e.Crashed(2) {
		t.Error("Crashed(2) = false")
	}
}

func TestCrashMidRun(t *testing.T) {
	// Crash after the wave passed: no effect on already-learned state.
	g := graph.Path(5, graph.UnitWeights(), 0)
	nodes := make([]Node, 5)
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, Config{})
	if err := e.RunRounds(10); err != nil {
		t.Fatal(err)
	}
	e.Crash(2)
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if d := e.Node(4).(*floodNode).dist; d != 4 {
		t.Errorf("node 4 dist = %d, want 4", d)
	}
}

func TestCrashedWakeIgnored(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights(), 0)
	n0 := &wakeNode{limit: 1 << 20}
	e := NewEngine(g, []Node{n0, &wakeNode{}}, Config{})
	if err := e.RunRounds(3); err != nil {
		t.Fatal(err)
	}
	e.Crash(0)
	rounds, err := e.RunUntilQuiescent(100)
	if err != nil {
		t.Fatalf("crashed waker must not livelock: %v", err)
	}
	if rounds > 2 {
		t.Errorf("took %d rounds to quiesce after crash", rounds)
	}
}

func TestCrashAsyncDropsInFlight(t *testing.T) {
	// Async mode: messages already in flight toward a node that crashes
	// are dropped at delivery, not executed.
	g := graph.Path(3, graph.UnitWeights(), 0)
	nodes := []Node{&floodNode{}, &floodNode{}, &floodNode{}}
	e := NewEngine(g, nodes, Config{MaxDelay: 6, Seed: 2})
	e.Crash(1)
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if d := e.Node(2).(*floodNode).dist; d != -1 {
		t.Errorf("node 2 learned %d through a crashed relay", d)
	}
}
