package congest

// Delivery scheduling for the asynchronous mode (Config.MaxDelay > 1): a
// binary min-heap ordered by (due round, send sequence). The sequence
// component makes pop order — and therefore inbox order — deterministic,
// which keeps async runs reproducible for a fixed seed.

type futureDelivery struct {
	due int
	seq int64
	to  int
	inc Incoming
}

type futureHeap []futureDelivery

func fhLess(a, b futureDelivery) bool {
	if a.due != b.due {
		return a.due < b.due
	}
	return a.seq < b.seq
}

func heapPush(h *futureHeap, d futureDelivery) {
	*h = append(*h, d)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !fhLess((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func heapPop(h *futureHeap) futureDelivery {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && fhLess((*h)[l], (*h)[smallest]) {
			smallest = l
		}
		if r < len(*h) && fhLess((*h)[r], (*h)[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}
