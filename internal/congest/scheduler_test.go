package congest

import (
	"runtime"
	"testing"
	"time"

	"distsketch/internal/graph"
)

// The active-set scheduler must be observationally identical to the legacy
// full-scan loop: same Stats, same node states, same trace — for every
// graph family, in sequential, parallel, and asynchronous execution.

func floodOutcome(t *testing.T, g *graph.Graph, cfg Config) (Stats, []int, []RoundStat) {
	t.Helper()
	nodes := make([]Node, g.N())
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, cfg)
	defer e.Close()
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	dists := make([]int, g.N())
	for i := range dists {
		dists[i] = e.Node(i).(*floodNode).dist
	}
	return e.Stats(), dists, e.Trace()
}

func TestActiveSetMatchesFullScan(t *testing.T) {
	for _, f := range graph.AllFamilies() {
		for _, cfg := range []Config{
			{Sequential: true, Trace: true},
			{Sequential: false, Trace: true},
			{MaxDelay: 4, Seed: 11, Sequential: true, Trace: true},
			{MaxDelay: 4, Seed: 11, Sequential: false, Trace: true},
		} {
			g := graph.Make(f, 160, graph.UnitWeights(), 9)
			full := cfg
			full.FullScan = true
			sNew, dNew, trNew := floodOutcome(t, g, cfg)
			sOld, dOld, trOld := floodOutcome(t, g, full)
			if sNew != sOld {
				t.Errorf("%s %+v: stats differ: active %v fullscan %v", f, cfg, sNew, sOld)
			}
			for v := range dNew {
				if dNew[v] != dOld[v] {
					t.Fatalf("%s %+v: node %d differs: active %d fullscan %d", f, cfg, v, dNew[v], dOld[v])
				}
			}
			if len(trNew) != len(trOld) {
				t.Fatalf("%s %+v: trace lengths differ: %d vs %d", f, cfg, len(trNew), len(trOld))
			}
			for i := range trNew {
				if trNew[i] != trOld[i] {
					t.Fatalf("%s %+v: trace entry %d differs: %+v vs %+v", f, cfg, i, trNew[i], trOld[i])
				}
			}
		}
	}
}

// inboxRecorder records the exact (from, payload) sequence of every inbox
// it ever sees, so tests can assert the delivery *ordering* — not just the
// fixed point — is unchanged.
type inboxRecorder struct {
	floodNode
	log []Incoming
}

func (r *inboxRecorder) Round(ctx *Context, inbox []Incoming) {
	r.log = append(r.log, inbox...)
	r.floodNode.Round(ctx, inbox)
}

func TestActiveSetPreservesInboxOrder(t *testing.T) {
	run := func(fullScan bool) [][]Incoming {
		g := graph.Make(graph.FamilyER, 96, graph.UnitWeights(), 3)
		nodes := make([]Node, g.N())
		recs := make([]*inboxRecorder, g.N())
		for i := range nodes {
			recs[i] = &inboxRecorder{}
			nodes[i] = recs[i]
		}
		e := NewEngine(g, nodes, Config{Sequential: true, FullScan: fullScan})
		defer e.Close()
		if _, err := e.RunUntilQuiescent(0); err != nil {
			t.Fatal(err)
		}
		logs := make([][]Incoming, g.N())
		for i := range logs {
			logs[i] = recs[i].log
		}
		return logs
	}
	a, b := run(false), run(true)
	for v := range a {
		if len(a[v]) != len(b[v]) {
			t.Fatalf("node %d: delivery count differs: %d vs %d", v, len(a[v]), len(b[v]))
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				t.Fatalf("node %d delivery %d: active %+v fullscan %+v", v, i, a[v][i], b[v][i])
			}
		}
	}
}

// A node that is simultaneously woken and receives messages must run once
// with its full inbox (not twice, not with a stale inbox).
type wakeAndReceiveNode struct {
	floodNode
	runs      int
	badInbox  int
	wakeFirst bool
}

func (w *wakeAndReceiveNode) Init(ctx *Context) {
	w.floodNode.Init(ctx)
	if w.wakeFirst {
		ctx.WakeNextRound()
	}
}

func (w *wakeAndReceiveNode) Round(ctx *Context, inbox []Incoming) {
	w.runs++
	for _, in := range inbox {
		if _, ok := in.Payload.(floodMsg); !ok {
			w.badInbox++
		}
	}
	w.floodNode.Round(ctx, inbox)
}

func TestWakerAndReceiverRunsOnce(t *testing.T) {
	// Node 1 of a path wakes itself in Init AND receives node 0's flood in
	// round 1: exactly one Round call with one message.
	g := graph.Path(3, graph.UnitWeights(), 0)
	n1 := &wakeAndReceiveNode{wakeFirst: true}
	e := NewEngine(g, []Node{&floodNode{}, n1, &floodNode{}}, Config{})
	defer e.Close()
	if err := e.RunRounds(1); err != nil {
		t.Fatal(err)
	}
	if n1.runs != 1 {
		t.Errorf("node 1 ran %d times in round 1, want 1", n1.runs)
	}
	if n1.badInbox != 0 {
		t.Errorf("node 1 saw %d malformed deliveries", n1.badInbox)
	}
	if n1.dist != 1 {
		t.Errorf("node 1 dist = %d, want 1", n1.dist)
	}
}

// A woken node must see an EMPTY inbox even if its buffer held deliveries
// in an earlier round (lazily-reset buffers keep stale content around; the
// stamp must hide it).
type staleInboxProbe struct {
	phase    int
	stale    int
	sawEmpty bool
}

func (p *staleInboxProbe) Init(ctx *Context) {}

func (p *staleInboxProbe) Round(ctx *Context, inbox []Incoming) {
	switch p.phase {
	case 0: // received the flood: now request a pure wake
		p.phase = 1
		ctx.WakeNextRound()
	case 1: // wake-only round: inbox must be empty
		p.stale = len(inbox)
		p.sawEmpty = len(inbox) == 0
		p.phase = 2
	}
}

func TestWakeRoundSeesEmptyInboxAfterDelivery(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights(), 0)
	probe := &staleInboxProbe{}
	sender := &panicNode{f: func(ctx *Context) {
		if ctx.ID() == 0 {
			ctx.Broadcast(floodMsg{hops: 1})
		}
	}}
	e := NewEngine(g, []Node{sender, probe}, Config{})
	defer e.Close()
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if !probe.sawEmpty {
		t.Errorf("wake-only round saw %d stale deliveries, want empty inbox", probe.stale)
	}
}

// Crash must consume a pending wake so Quiescent (now O(1) off a counter)
// cannot be held false forever by a crashed-but-woken node.
func TestCrashConsumesPendingWake(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights(), 0)
	e := NewEngine(g, []Node{&wakeNode{limit: 1 << 20}, &wakeNode{}}, Config{})
	defer e.Close()
	if err := e.RunRounds(2); err != nil {
		t.Fatal(err)
	}
	if e.Quiescent() {
		t.Fatal("waker still live, network must not be quiescent")
	}
	e.Crash(0)
	if !e.Quiescent() {
		t.Error("crashed node's pending wake still holds the network non-quiescent")
	}
	if got := e.wakeCount.Load(); got != 0 {
		t.Errorf("wakeCount = %d after crash, want 0", got)
	}
}

func TestWakeCrashedNodeIsNoop(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights(), 0)
	e := NewEngine(g, []Node{&wakeNode{}, &wakeNode{}}, Config{})
	defer e.Close()
	e.Init()
	e.Crash(0)
	e.Wake(0)
	if !e.Quiescent() {
		t.Error("waking a crashed node must not schedule it")
	}
	rounds, err := e.RunUntilQuiescent(10)
	if err != nil || rounds != 0 {
		t.Errorf("rounds=%d err=%v, want 0,nil", rounds, err)
	}
}

// Re-waking the engine after quiescence (the omniscient phase-sync driver
// pattern in core.BuildTZ) must reschedule nodes through the active set.
func TestWakeAfterQuiescenceReschedules(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	nodes := make([]Node, 4)
	ws := make([]*wakeNode, 4)
	for i := range nodes {
		ws[i] = &wakeNode{}
		nodes[i] = ws[i]
	}
	e := NewEngine(g, nodes, Config{})
	defer e.Close()
	if _, err := e.RunUntilQuiescent(10); err != nil {
		t.Fatal(err)
	}
	for phase := 0; phase < 3; phase++ {
		ws[2].limit = ws[2].wakes + 1 // allow exactly one more wake-run
		e.Wake(2)
		rounds, err := e.RunUntilQuiescent(10)
		if err != nil {
			t.Fatal(err)
		}
		if rounds != 1 {
			t.Errorf("phase %d: rounds = %d, want 1", phase, rounds)
		}
	}
	if ws[2].wakes != 3 {
		t.Errorf("node 2 ran %d wake rounds, want 3", ws[2].wakes)
	}
}

// awaitGoroutines polls until the goroutine count drops to at most want.
func awaitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, want <= %d (pool workers leaked)", runtime.NumGoroutine(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func runParallelFlood(t *testing.T) *Engine {
	t.Helper()
	g := graph.Make(graph.FamilyGrid, 512, graph.UnitWeights(), 1)
	nodes := make([]Node, g.N())
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, Config{})
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCloseReleasesWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	e := runParallelFlood(t)
	e.Close()
	awaitGoroutines(t, base)
}

func TestDroppedEngineReleasesWorkers(t *testing.T) {
	// An engine dropped without Close must still shed its worker
	// goroutines once collected: the parked pool holds no reference back
	// to the engine, so GC can finalize it and shut the pool down. This
	// guards against the pool ever being embedded in (or pinning) the
	// engine allocation.
	//
	// Prewarm the runtime's finalizer goroutine (it starts on first
	// finalization and never exits) so it doesn't count against the
	// baseline.
	done := make(chan struct{})
	runtime.SetFinalizer(new(int), func(*int) { close(done) })
	for stop := false; !stop; {
		runtime.GC()
		select {
		case <-done:
			stop = true
		case <-time.After(10 * time.Millisecond):
		}
	}
	base := runtime.NumGoroutine()
	runParallelFlood(t) // dropped immediately
	awaitGoroutines(t, base)
}

func TestCloseIdempotent(t *testing.T) {
	g := graph.Make(graph.FamilyGrid, 256, graph.UnitWeights(), 1)
	nodes := make([]Node, g.N())
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, Config{})
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // must not panic
}

// Duplicate external wakes and wake+message overlap must not double-run a
// node or corrupt the O(1) counters.
func TestDuplicateWakesCoalesce(t *testing.T) {
	g := graph.Path(2, graph.UnitWeights(), 0)
	n0 := &wakeNode{limit: 1}
	e := NewEngine(g, []Node{n0, &wakeNode{}}, Config{})
	defer e.Close()
	e.Init()
	e.Wake(0)
	e.Wake(0)
	e.Wake(0)
	rounds, err := e.RunUntilQuiescent(10)
	if err != nil {
		t.Fatal(err)
	}
	if n0.wakes != 1 {
		t.Errorf("node 0 ran %d times, want 1", n0.wakes)
	}
	if rounds != 1 {
		t.Errorf("rounds = %d, want 1", rounds)
	}
}
