package congest

import (
	"testing"

	"distsketch/internal/graph"
)

func TestTraceSumsToTotals(t *testing.T) {
	g := graph.Make(graph.FamilyER, 48, graph.UnitWeights(), 4)
	nodes := make([]Node, g.N())
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, Config{Trace: true})
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	tr := e.Trace()
	if len(tr) == 0 {
		t.Fatal("no trace")
	}
	var msgs, words int64
	for i, p := range tr {
		if p.Round != i {
			t.Fatalf("trace entry %d has round %d", i, p.Round)
		}
		msgs += p.Messages
		words += p.Words
	}
	if msgs != e.Stats().Messages || words != e.Stats().Words {
		t.Errorf("trace sums (%d,%d) != stats (%d,%d)",
			msgs, words, e.Stats().Messages, e.Stats().Words)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, Config{})
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	if e.Trace() != nil {
		t.Error("trace recorded without Config.Trace")
	}
}

func TestTraceAsync(t *testing.T) {
	g := graph.Path(8, graph.UnitWeights(), 0)
	nodes := make([]Node, 8)
	for i := range nodes {
		nodes[i] = &floodNode{}
	}
	e := NewEngine(g, nodes, Config{Trace: true, MaxDelay: 3, Seed: 5})
	if _, err := e.RunUntilQuiescent(0); err != nil {
		t.Fatal(err)
	}
	var msgs int64
	for _, p := range e.Trace() {
		msgs += p.Messages
	}
	if msgs != e.Stats().Messages {
		t.Errorf("async trace sums %d != %d", msgs, e.Stats().Messages)
	}
}
