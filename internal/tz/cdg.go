package tz

import (
	"fmt"

	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// Centralized reference constructions for the Section 4 sketches. These
// mirror the distributed algorithms of internal/core exactly (same coin
// streams, same tie-breaking) and serve as their ground truth.

// NetSalts returns the coin-stream salts for the instance'th density net
// and its hierarchy. Instance 0 is the standalone (ε,k)-CDG sketch; the
// gracefully degrading sketch uses instances 1..⌈log n⌉ (one per ε_i).
func NetSalts(instance int) (netSalt, tzSalt uint64) {
	step := uint64(instance) * 0x9e3779b97f4a7c15
	return sketch.SaltNet + step, sketch.SaltNetTZ + step
}

// BuildLandmark constructs the stretch-3 ε-slack landmark sketches of
// Theorem 4.3: every node stores its distance to every member of an
// ε-density net. Returns the labels and the net.
func BuildLandmark(g *graph.Graph, eps float64, seed uint64, instance int) ([]*sketch.LandmarkLabel, []int, error) {
	n := g.N()
	netSalt, _ := NetSalts(instance)
	net := sketch.DensityNet(n, eps, seed, netSalt)
	if len(net) == 0 {
		return nil, nil, fmt.Errorf("tz: empty density net (n=%d, eps=%g, seed=%d)", n, eps, seed)
	}
	labels := make([]*sketch.LandmarkLabel, n)
	for u := 0; u < n; u++ {
		labels[u] = sketch.NewLandmarkLabel(u)
	}
	// net is ascending, so each label receives its entries in sorted
	// order and Set stays on its O(1) append fast path.
	for _, w := range net {
		r := graph.Dijkstra(g, w)
		for u := 0; u < n; u++ {
			if r.Dist[u] != graph.Inf {
				labels[u].Set(w, r.Dist[u])
			}
		}
	}
	return labels, net, nil
}

// BuildCDG constructs the (ε,k)-CDG sketches of Section 4: sample an
// ε-density net, run Thorup–Zwick over the net (sampling probability
// ((10/ε)·ln n)^{-1/k}; Lemma 4.5), and give every node the identity of,
// distance to, and TZ label of its nearest net node.
func BuildCDG(g *graph.Graph, eps float64, k int, seed uint64, instance int) ([]*sketch.CDGLabel, *Oracle, error) {
	n := g.N()
	if k < 1 {
		return nil, nil, fmt.Errorf("tz: k must be >= 1, got %d", k)
	}
	netSalt, tzSalt := NetSalts(instance)
	net := sketch.DensityNet(n, eps, seed, netSalt)
	if len(net) == 0 {
		return nil, nil, fmt.Errorf("tz: empty density net (n=%d, eps=%g, seed=%d)", n, eps, seed)
	}
	q := sketch.NetHierarchyProb(n, eps, k)
	levels := make([]int, n)
	for u := 0; u < n; u++ {
		levels[u] = -1
	}
	for _, w := range net {
		levels[w] = sketch.TopLevelFromRNG(sketch.NodeRNG(seed, tzSalt, w), k, q)
	}
	oracle, err := BuildHierarchy(g, k, levels)
	if err != nil {
		return nil, nil, err
	}
	dist, nearest := graph.MultiSourceDijkstra(g, net)
	labels := make([]*sketch.CDGLabel, n)
	for u := 0; u < n; u++ {
		labels[u] = &sketch.CDGLabel{
			Owner:    u,
			Eps:      eps,
			NetNode:  nearest[u],
			NetDist:  dist[u],
			NetLabel: oracle.Labels[nearest[u]],
		}
	}
	return labels, oracle, nil
}

// BuildGraceful constructs the gracefully degrading sketches of Theorem
// 4.8: one (ε_i, k_i)-CDG sketch per ε_i = 2^{-i}, k_i = i, for
// i = 1..⌈log₂ n⌉.
func BuildGraceful(g *graph.Graph, seed uint64) ([]*sketch.GracefulLabel, error) {
	n := g.N()
	levels := sketch.GracefulLevels(n)
	labels := make([]*sketch.GracefulLabel, n)
	for u := 0; u < n; u++ {
		labels[u] = &sketch.GracefulLabel{Owner: u}
	}
	for i := 1; i <= levels; i++ {
		eps := 1.0 / float64(int64(1)<<uint(i))
		cdg, _, err := BuildCDG(g, eps, sketch.GracefulK(i), seed, i)
		if err != nil {
			return nil, fmt.Errorf("tz: graceful level %d: %w", i, err)
		}
		for u := 0; u < n; u++ {
			labels[u].Levels = append(labels[u].Levels, cdg[u])
		}
	}
	return labels, nil
}
