package tz

import (
	"math"
	"testing"

	"distsketch/internal/eval"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

func mustBuild(t *testing.T, g *graph.Graph, k int, seed uint64) *Oracle {
	t.Helper()
	o, err := Build(g, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestK1IsExact(t *testing.T) {
	// k=1: A_0 = V, A_1 = ∅, bunches are all of V, stretch 2k-1 = 1.
	g := graph.Make(graph.FamilyER, 40, graph.UniformWeights(1, 9), 3)
	o := mustBuild(t, g, 1, 3)
	ap := graph.APSP(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if got := o.Query(u, v); got != ap[u][v] {
				t.Fatalf("k=1 Query(%d,%d) = %d, want exact %d", u, v, got, ap[u][v])
			}
		}
	}
}

func TestStretchBoundAllFamilies(t *testing.T) {
	for _, f := range graph.AllFamilies() {
		for _, k := range []int{2, 3, 4} {
			g := graph.Make(f, 64, graph.UniformWeights(1, 10), 11)
			o := mustBuild(t, g, k, 5)
			ap := graph.APSP(g)
			rep := eval.Evaluate(ap, o.Query, eval.AllPairs(g.N()))
			if rep.Violations != 0 {
				t.Errorf("%s k=%d: %d estimates below true distance", f, k, rep.Violations)
			}
			if rep.Unreachable != 0 {
				t.Errorf("%s k=%d: %d Inf estimates", f, k, rep.Unreachable)
			}
			if bound := float64(2*k - 1); rep.MaxStretch > bound {
				t.Errorf("%s k=%d: max stretch %.3f > %g", f, k, rep.MaxStretch, bound)
			}
		}
	}
}

func TestPivotDistancesMatchHierarchy(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 80, nil, 2)
	k := 3
	o := mustBuild(t, g, k, 9)
	// The pivot chain must reproduce d(u, A_i) from the multi-source
	// Dijkstra pass, and pivot distances must be monotone in the level.
	for u := 0; u < g.N(); u++ {
		lab := o.Label(u)
		for i := 0; i < k; i++ {
			if lab.Pivots[i].Dist != o.PivotDist[i][u] {
				t.Fatalf("node %d level %d: pivot dist %d != d(u,A_i) %d",
					u, i, lab.Pivots[i].Dist, o.PivotDist[i][u])
			}
		}
		if lab.Pivots[0].Dist != 0 {
			t.Fatalf("node %d: d(u, A_0) = %d, want 0", u, lab.Pivots[0].Dist)
		}
		if err := lab.Validate(); err != nil {
			t.Fatalf("node %d: %v", u, err)
		}
	}
}

func TestBunchDefinition(t *testing.T) {
	// Brute-force check of B_i(u) = {w ∈ A_i : d(u,w) < d(u,A_{i+1})}
	// (with each w appearing at its top level; see package sketch docs).
	g := graph.Make(graph.FamilyER, 48, graph.UniformWeights(1, 7), 4)
	k := 3
	o := mustBuild(t, g, k, 8)
	ap := graph.APSP(g)
	for u := 0; u < g.N(); u++ {
		var want []sketch.BunchItem
		for w := 0; w < g.N(); w++ {
			if w == u {
				continue
			}
			l := o.Levels[w]
			if ap[u][w] < o.PivotDist[l+1][u] {
				want = append(want, sketch.BunchItem{Node: w, Dist: ap[u][w], Level: l})
			}
		}
		got := o.Label(u).Bunch
		if len(got) != len(want) {
			t.Fatalf("node %d: bunch size %d, want %d", u, len(got), len(want))
		}
		// want is built in ascending node order, matching the canonical
		// slice representation item for item.
		for i, it := range want {
			if got[i] != it {
				t.Fatalf("node %d bunch[%d] = %+v, want %+v", u, i, got[i], it)
			}
		}
	}
}

func TestBunchClusterDuality(t *testing.T) {
	g := graph.Make(graph.FamilyBA, 60, graph.UniformWeights(1, 5), 6)
	o := mustBuild(t, g, 3, 1)
	clusters := o.Clusters()
	// u ∈ C(w) ⟺ w ∈ B(u): Clusters() is built by inversion, so instead
	// verify the cluster of w is connected in G (the paper's observation
	// used by the distributed algorithm's correctness).
	for w, members := range clusters {
		inCluster := make(map[int]bool, len(members)+1)
		inCluster[w] = true
		for _, u := range members {
			inCluster[u] = true
		}
		// BFS within the cluster from w must reach every member.
		seen := map[int]bool{w: true}
		stack := []int{w}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.Adj(x) {
				if inCluster[a.To] && !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
		}
		for _, u := range members {
			if !seen[u] {
				t.Fatalf("cluster of %d disconnected at %d", w, u)
			}
		}
	}
}

func TestExpectedBunchSize(t *testing.T) {
	// Lemma 3.1: E|B(u)| ≤ k·n^{1/k}. Check the empirical mean over nodes
	// and seeds stays within a small constant of the bound.
	n, k := 256, 3
	bound := float64(k) * math.Pow(float64(n), 1.0/float64(k))
	var total float64
	var count int
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.Make(graph.FamilyER, n, graph.UnitWeights(), seed)
		o := mustBuild(t, g, k, seed)
		for u := 0; u < n; u++ {
			total += float64(len(o.Label(u).Bunch))
			count++
		}
	}
	mean := total / float64(count)
	if mean > 2*bound {
		t.Errorf("mean bunch size %.1f > 2x Lemma 3.1 bound %.1f", mean, bound)
	}
}

func TestKLogNStretchLogN(t *testing.T) {
	// The k = log n setting: stretch ≤ 2·log n - 1, size O(log^2 n)-ish.
	n := 128
	k := int(math.Log2(float64(n))) // 7
	g := graph.Make(graph.FamilyGeometric, n, nil, 13)
	o := mustBuild(t, g, k, 13)
	ap := graph.APSP(g)
	rep := eval.Evaluate(ap, o.Query, eval.AllPairs(n))
	if rep.Violations != 0 || rep.Unreachable != 0 {
		t.Fatalf("invalid estimates: %+v", rep)
	}
	if rep.MaxStretch > float64(2*k-1) {
		t.Errorf("max stretch %.2f > %d", rep.MaxStretch, 2*k-1)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	if _, err := Build(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := BuildHierarchy(g, 2, []int{0, 0}); err == nil {
		t.Error("wrong level count accepted")
	}
	if _, err := BuildHierarchy(g, 2, []int{0, 5, 0, 0}); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestSubsetHierarchy(t *testing.T) {
	// Hierarchy on a subset: non-members get labels too, with pivot 0
	// pointing at the nearest member.
	g := graph.Path(6, graph.UnitWeights(), 0) // 0-1-2-3-4-5
	levels := []int{-1, 0, -1, -1, 0, -1}      // members {1, 4}
	o, err := BuildHierarchy(g, 1, levels)
	if err != nil {
		t.Fatal(err)
	}
	wantPivot := []int{1, 1, 1, 4, 4, 4} // node 3: d(3,1)=2 = d(3,4)... check
	// d(3,1)=2, d(3,4)=1 → pivot 4. d(2,1)=1 < d(2,4)=2 → 1.
	wantDist := []graph.Dist{1, 0, 1, 1, 0, 1}
	for u := 0; u < 6; u++ {
		p := o.Label(u).Pivots[0]
		if p.Node != wantPivot[u] || p.Dist != wantDist[u] {
			t.Errorf("node %d: pivot %+v, want (%d,%d)", u, p, wantPivot[u], wantDist[u])
		}
	}
	// k=1 on subset: bunch = all members (threshold ∞).
	for u := 0; u < 6; u++ {
		b := o.Label(u).Bunch
		wantLen := 2
		if u == 1 || u == 4 {
			wantLen = 1 // self excluded
		}
		if len(b) != wantLen {
			t.Errorf("node %d: bunch size %d, want %d", u, len(b), wantLen)
		}
	}
}

func TestLandmarkStretch3WithSlack(t *testing.T) {
	for _, seedf := range []struct {
		f    graph.Family
		seed uint64
	}{{graph.FamilyER, 3}, {graph.FamilyGeometric, 4}, {graph.FamilyGrid, 5}} {
		g := graph.Make(seedf.f, 96, graph.UniformWeights(1, 10), seedf.seed)
		eps := 0.25
		labels, net, err := BuildLandmark(g, eps, seedf.seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(net) == 0 {
			t.Fatal("empty net")
		}
		ap := graph.APSP(g)
		q := func(u, v int) graph.Dist { return sketch.QueryLandmark(labels[u], labels[v]) }
		rep := eval.EvaluateSlack(ap, q, eval.AllPairs(g.N()), eps)
		if rep.Far.Violations != 0 || rep.Far.Unreachable != 0 {
			t.Fatalf("%s: invalid far estimates: %+v", seedf.f, rep.Far)
		}
		if rep.Far.MaxStretch > 3 {
			t.Errorf("%s: ε-far max stretch %.3f > 3 (Thm 4.3)", seedf.f, rep.Far.MaxStretch)
		}
		if rep.FarFrac < 1-eps-1e-9 {
			t.Errorf("%s: far fraction %.3f < 1-ε = %.3f", seedf.f, rep.FarFrac, 1-eps)
		}
	}
}

func TestDensityNetCovering(t *testing.T) {
	// Lemma 4.2 condition 1: every node has a net node within R(u, ε).
	g := graph.Make(graph.FamilyER, 128, graph.UniformWeights(1, 10), 7)
	n := g.N()
	eps := 0.25
	net := sketch.DensityNet(n, eps, 7, sketch.SaltNet)
	ap := graph.APSP(g)
	fc := eval.NewFarClassifier(ap)
	for u := 0; u < n; u++ {
		// R(u, ε) = smallest r with |B(u,r)| ≥ εn: the εn-th smallest
		// distance from u.
		_ = fc
		dists := append([]graph.Dist(nil), ap[u]...)
		// insertion of self distance 0 already included
		sortDists(dists)
		need := int(math.Ceil(eps * float64(n)))
		r := dists[need-1]
		ok := false
		for _, w := range net {
			if ap[u][w] <= r {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("node %d: no net node within R(u,ε)=%d", u, r)
		}
	}
	// Lemma 4.2 condition 2: |N| ≤ (10/ε)·ln n.
	if bound := 10 / eps * math.Log(float64(n)); float64(len(net)) > bound {
		t.Errorf("|N| = %d > bound %.1f", len(net), bound)
	}
}

func sortDists(d []graph.Dist) {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j-1] > d[j]; j-- {
			d[j-1], d[j] = d[j], d[j-1]
		}
	}
}

func TestCDGStretchBound(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 96, nil, 21)
	eps := 0.25
	for _, k := range []int{1, 2} {
		labels, _, err := BuildCDG(g, eps, k, 21, 0)
		if err != nil {
			t.Fatal(err)
		}
		ap := graph.APSP(g)
		q := func(u, v int) graph.Dist { return sketch.QueryCDG(labels[u], labels[v]) }
		rep := eval.EvaluateSlack(ap, q, eval.AllPairs(g.N()), eps)
		if rep.Far.Violations != 0 {
			t.Fatalf("k=%d: %d violations", k, rep.Far.Violations)
		}
		if rep.Far.Unreachable != 0 {
			t.Fatalf("k=%d: %d unreachable far pairs", k, rep.Far.Unreachable)
		}
		if bound := float64(8*k - 1); rep.Far.MaxStretch > bound {
			t.Errorf("k=%d: ε-far max stretch %.3f > 8k-1 = %g", k, rep.Far.MaxStretch, bound)
		}
	}
}

func TestCDGEstimateNeverBelowTrue(t *testing.T) {
	// Even for near pairs (no stretch guarantee) the estimate must be an
	// upper bound on the true distance.
	g := graph.Make(graph.FamilyBA, 80, graph.UniformWeights(1, 6), 2)
	labels, _, err := BuildCDG(g, 0.125, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ap := graph.APSP(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			est := sketch.QueryCDG(labels[u], labels[v])
			if est != graph.Inf && est < ap[u][v] {
				t.Fatalf("(%d,%d): estimate %d < true %d", u, v, est, ap[u][v])
			}
		}
	}
}

func TestGracefulBounds(t *testing.T) {
	g := graph.Make(graph.FamilyER, 96, graph.UniformWeights(1, 10), 17)
	labels, err := BuildGraceful(g, 17)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	ap := graph.APSP(g)
	q := func(u, v int) graph.Dist { return sketch.QueryGraceful(labels[u], labels[v]) }
	rep := eval.Evaluate(ap, q, eval.AllPairs(n))
	if rep.Violations != 0 || rep.Unreachable != 0 {
		t.Fatalf("invalid estimates: %+v", rep)
	}
	// Worst-case stretch bound: level i = ⌈log n⌉ covers every pair with
	// stretch 8⌈log n⌉ - 1 (Lemma 4.7 / Cor 4.9).
	worst := float64(8*sketch.GracefulLevels(n) - 1)
	if rep.MaxStretch > worst {
		t.Errorf("max stretch %.2f > 8⌈log n⌉-1 = %g", rep.MaxStretch, worst)
	}
	avg := eval.AvgStretchAllPairs(ap, q)
	// O(1) average stretch: generous absolute check (measured ≈ 2-4).
	if avg > 12 {
		t.Errorf("average stretch %.2f implausibly large for Thm 1.3", avg)
	}
	for u := 0; u < n; u++ {
		if err := labels[u].Validate(); err != nil {
			t.Fatalf("node %d: %v", u, err)
		}
	}
}

func TestGracefulPerEpsilonSlack(t *testing.T) {
	// Gracefully degrading property: for EVERY ε = 2^{-i} simultaneously,
	// stretch over ε-far pairs is ≤ 8i-1.
	g := graph.Make(graph.FamilyGeometric, 80, nil, 5)
	labels, err := BuildGraceful(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	ap := graph.APSP(g)
	fc := eval.NewFarClassifier(ap)
	q := func(u, v int) graph.Dist { return sketch.QueryGraceful(labels[u], labels[v]) }
	pairs := eval.AllPairs(g.N())
	for i := 1; i <= sketch.GracefulLevels(g.N()); i++ {
		eps := 1.0 / float64(int64(1)<<uint(i))
		rep := eval.EvaluateSlackWith(fc, ap, q, pairs, eps)
		if bound := float64(8*i - 1); rep.Far.MaxStretch > bound {
			t.Errorf("ε=2^-%d: far max stretch %.3f > %g", i, rep.Far.MaxStretch, bound)
		}
	}
}

func TestLabelSizeAccounting(t *testing.T) {
	g := graph.Make(graph.FamilyER, 64, graph.UnitWeights(), 1)
	o := mustBuild(t, g, 3, 1)
	if o.MaxLabelWords() < o.Label(0).SizeWords() && o.MaxLabelWords() <= 0 {
		t.Error("MaxLabelWords inconsistent")
	}
	if o.MeanLabelWords() <= 0 {
		t.Error("MeanLabelWords nonpositive")
	}
	if o.MeanLabelWords() > float64(o.MaxLabelWords()) {
		t.Error("mean > max")
	}
}

func BenchmarkBuildTZ(b *testing.B) {
	g := graph.Make(graph.FamilyER, 256, graph.UniformWeights(1, 50), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, 3, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTZ(b *testing.B) {
	g := graph.Make(graph.FamilyER, 256, graph.UniformWeights(1, 50), 1)
	o, err := Build(g, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Query(i%256, (i*7+13)%256)
	}
}
