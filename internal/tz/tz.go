// Package tz implements the centralized Thorup–Zwick distance oracle
// ([TZ05], as summarized in Section 3.1 of the paper). It serves three
// roles in this repository:
//
//  1. Ground truth: the distributed construction of internal/core must
//     produce *identical* labels when run with the same coin flips
//     (experiment E12).
//  2. Baseline: the centralized oracle is the comparison point the paper
//     improves on in the distributed setting.
//  3. Building block: the (ε,k)-CDG sketches apply the same construction
//     to a density net (a subset hierarchy), which this package supports
//     directly through BuildHierarchy with levels[u] = -1 for non-members.
package tz

import (
	"container/heap"
	"fmt"

	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// Oracle is a built distance oracle: one label per node plus the hierarchy
// used to build them.
type Oracle struct {
	G      *graph.Graph
	K      int
	Levels []int // topLevel per node; -1 = not in A_0 (subset hierarchies)
	// PivotDist[i][u] = d(u, A_i) for 0 <= i <= K (PivotDist[K] = Inf).
	PivotDist [][]graph.Dist
	Labels    []*sketch.TZLabel
}

// Build samples the standard hierarchy (A_0 = V, survival probability
// n^{-1/k}; §3.1) using the shared per-node coin streams and constructs
// all labels.
func Build(g *graph.Graph, k int, seed uint64) (*Oracle, error) {
	if k < 1 {
		return nil, fmt.Errorf("tz: k must be >= 1, got %d", k)
	}
	levels := sketch.SampleLevels(g.N(), k, sketch.HierarchyProb(g.N(), k), seed)
	return BuildHierarchy(g, k, levels)
}

// BuildHierarchy constructs labels for an explicit hierarchy. levels[u] is
// node u's top level (the largest i with u ∈ A_i), or -1 if u is not even
// in A_0 (used when the hierarchy lives on a density net). Labels are
// built for every node of the graph regardless.
func BuildHierarchy(g *graph.Graph, k int, levels []int) (*Oracle, error) {
	n := g.N()
	if len(levels) != n {
		return nil, fmt.Errorf("tz: %d levels for n=%d", len(levels), n)
	}
	for u, l := range levels {
		if l < -1 || l >= k {
			return nil, fmt.Errorf("tz: node %d has level %d outside [-1,%d)", u, l, k)
		}
	}
	o := &Oracle{G: g, K: k, Levels: levels}

	// d(u, A_i) for every level, via one multi-source Dijkstra per level.
	o.PivotDist = make([][]graph.Dist, k+1)
	for i := 0; i <= k; i++ {
		o.PivotDist[i] = make([]graph.Dist, n)
	}
	for u := 0; u < n; u++ {
		o.PivotDist[k][u] = graph.Inf // A_k = ∅, d(u, A_k) = ∞ (§3.1)
	}
	for i := 0; i < k; i++ {
		var ai []int
		for u := 0; u < n; u++ {
			if levels[u] >= i {
				ai = append(ai, u)
			}
		}
		if len(ai) == 0 {
			for u := 0; u < n; u++ {
				o.PivotDist[i][u] = graph.Inf
			}
			continue
		}
		dist, _ := graph.MultiSourceDijkstra(g, ai)
		o.PivotDist[i] = dist
	}

	// Clusters: for every hierarchy member w with top level l, grow the
	// truncated Dijkstra ball C(w) = {u : d(u,w) < d(u, A_{l+1})} and
	// record w (with distance) in the bunch of every u ∈ C(w). The
	// truncation is sound because every vertex on a shortest path from w
	// to a cluster member is itself in the cluster (§3.2).
	o.Labels = make([]*sketch.TZLabel, n)
	for u := 0; u < n; u++ {
		o.Labels[u] = sketch.NewTZLabel(u, k)
	}
	for w := 0; w < n; w++ {
		l := levels[w]
		if l < 0 {
			continue
		}
		o.growCluster(w, l)
	}

	// Pivot chain (bottom-up over levels, per node): p_i(u) is the
	// (dist, ID)-lexicographic minimum among u itself (if u ∈ A_i), the
	// level-i bunch members, and p_{i+1}(u). Computing pivots this way —
	// rather than from the multi-source Dijkstra — matches exactly what
	// a distributed node can compute locally from its phase results
	// (DESIGN.md §5.5/5.6), while yielding the same distances d(u, A_i).
	for u := 0; u < n; u++ {
		o.Labels[u].Pivots = PivotChain(o.Labels[u].Bunch, u, levels[u], k)
	}
	return o, nil
}

// PivotChain computes the pivot chain p_0..p_{k-1} of a node from its
// canonical bunch: per level, the (dist, ID)-lexicographic minimum among
// the node itself (at levels up to topLevel), the level's bunch members,
// and the next level's pivot. This is the single pivot function shared by
// the centralized builder and the incremental repair path — a bunch
// determines its pivots, so a repair that reproduces a rebuild's bunch
// reproduces its pivots too. Bunch items with levels outside [0, k) are
// ignored (they cannot exist in builder output; wire input is unchecked).
func PivotChain(bunch []sketch.BunchItem, owner, topLevel, k int) []sketch.Pivot {
	byLevel := make([][2]int64, k) // (dist, id) lexmin per level; id -1 = none
	for i := range byLevel {
		byLevel[i] = [2]int64{int64(graph.Inf), -1}
	}
	for _, it := range bunch {
		if it.Level < 0 || it.Level >= k {
			continue
		}
		c := [2]int64{int64(it.Dist), int64(it.Node)}
		if lexLess(c, byLevel[it.Level]) {
			byLevel[it.Level] = c
		}
	}
	pivots := make([]sketch.Pivot, k)
	best := [2]int64{int64(graph.Inf), -1}
	for i := k - 1; i >= 0; i-- {
		if lexLess(byLevel[i], best) {
			best = byLevel[i]
		}
		if topLevel >= i {
			self := [2]int64{0, int64(owner)}
			if lexLess(self, best) {
				best = self
			}
		}
		pivots[i] = sketch.Pivot{Node: int(best[1]), Dist: graph.Dist(best[0])}
	}
	return pivots
}

// lexLess compares (dist, id) pairs; an id of -1 means "no candidate" and
// loses to any real candidate at the same distance.
func lexLess(a, b [2]int64) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] == -1 {
		return false
	}
	if b[1] == -1 {
		return true
	}
	return a[1] < b[1]
}

// growCluster runs the truncated Dijkstra from w (top level l) and adds w
// to the bunch of every member of C(w) except w itself.
func (o *Oracle) growCluster(w, l int) {
	GrowCluster(o.G, w, o.PivotDist[l+1], func(u int, d graph.Dist) {
		if u != w {
			// Clusters are grown in ascending w order (BuildHierarchy's
			// outer loop), so each label receives its bunch in sorted
			// order and Set stays on its O(1) append fast path.
			o.Labels[u].Set(w, d, l)
		}
	})
}

// GrowCluster runs the truncated Dijkstra of §3.2 from hierarchy member w:
// visit(u, d) is called once per cluster member u — including w itself at
// distance 0 — in ascending (dist, ID) order, with d = d(u, w) < thresh[u].
// thresh must be d(·, A_{l+1}) for w's top level l; the truncation is sound
// because every vertex on a shortest path from w to a cluster member is
// itself in the cluster. Shared by BuildHierarchy and the incremental
// repair path, which regrows exactly the clusters a weight change can have
// touched.
func GrowCluster(g *graph.Graph, w int, thresh []graph.Dist, visit func(u int, d graph.Dist)) {
	dist := map[int]graph.Dist{w: 0}
	h := &clusterHeap{{node: w, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(clusterItem)
		u := it.node
		if d, ok := dist[u]; !ok || it.dist > d {
			continue // stale entry
		}
		if it.dist >= thresh[u] {
			continue // u ∉ C(w): do not expand through it
		}
		visit(u, it.dist)
		for _, a := range g.Adj(u) {
			nd := graph.AddDist(it.dist, a.Weight)
			v := a.To
			if nd >= thresh[v] {
				continue
			}
			if d, ok := dist[v]; !ok || nd < d {
				dist[v] = nd
				heap.Push(h, clusterItem{node: v, dist: nd})
			}
		}
	}
}

type clusterItem struct {
	node int
	dist graph.Dist
}

type clusterHeap []clusterItem

func (h clusterHeap) Len() int { return len(h) }
func (h clusterHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h clusterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *clusterHeap) Push(x any)   { *h = append(*h, x.(clusterItem)) }
func (h *clusterHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Query returns the stretch-(2k-1) estimate between u and v (Lemma 3.2).
func (o *Oracle) Query(u, v int) graph.Dist {
	return sketch.QueryTZ(o.Labels[u], o.Labels[v])
}

// Label returns node u's label.
func (o *Oracle) Label(u int) *sketch.TZLabel { return o.Labels[u] }

// MaxLabelWords returns the maximum label size over all nodes, in words.
func (o *Oracle) MaxLabelWords() int {
	m := 0
	for _, l := range o.Labels {
		if s := l.SizeWords(); s > m {
			m = s
		}
	}
	return m
}

// MeanLabelWords returns the average label size in words.
func (o *Oracle) MeanLabelWords() float64 {
	total := 0
	for _, l := range o.Labels {
		total += l.SizeWords()
	}
	return float64(total) / float64(len(o.Labels))
}

// Clusters inverts the bunches: Clusters()[w] is C(w), the set of nodes u
// with w ∈ B(u). Used by the bunch/cluster duality tests.
func (o *Oracle) Clusters() map[int][]int {
	out := make(map[int][]int)
	for u, lab := range o.Labels {
		for _, it := range lab.Bunch {
			out[it.Node] = append(out[it.Node], u)
		}
	}
	return out
}
