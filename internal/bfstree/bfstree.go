// Package bfstree builds rooted BFS spanning trees with in-band
// termination detection (the Section 3.3 prologue of the paper) and
// equips them with DFS interval labels that support tree routing — the
// substrate used to measure the paper's "exchange the sketches in O(D ·
// size) rounds" claim (Section 2.1) with a real protocol.
//
// The construction is the classic echo BFS: the root floods a BFS token;
// each node adopts the first sender as parent, ACCEPTs it, REJECTs later
// offers, and reports DONE up the tree once its whole subtree has
// finished. It takes O(D) rounds and O(|E|) messages. Leader election is
// immediate in this ID model (IDs are 0..n-1 and n is common knowledge,
// so the maximum ID n-1 is a leader with zero communication — see
// internal/core's detectNode for the same argument).
//
// Interval labels are assigned by two tree sweeps: a convergecast of
// subtree sizes followed by a downcast of DFS intervals (each node tells
// each child its interval, one edge per round in parallel). Node v is in
// the subtree of u iff In[u] ≤ In[v] < Out[u], so any node can route
// toward a target interval by choosing the covering child (or its
// parent when the target is outside its own interval).
package bfstree

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
)

// Tree is a rooted BFS spanning tree with routing intervals.
type Tree struct {
	Root     int
	Parent   []int   // Parent[u] = parent node ID; -1 at the root
	Children [][]int // sorted child node IDs
	Depth    []int
	// DFS interval labels: v is a descendant of u (inclusive) iff
	// In[u] <= In[v] < Out[u]. In[] values are a permutation of 0..n-1.
	In, Out []int
	Stats   congest.Stats
}

// Height returns the maximum depth.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.Depth {
		if d > h {
			h = d
		}
	}
	return h
}

// NextHop returns the neighbor (in the tree) to forward to when routing
// from u toward the node with DFS number targetIn.
func (t *Tree) NextHop(u, targetIn int) (int, error) {
	if targetIn < 0 || targetIn >= len(t.In) {
		return 0, fmt.Errorf("bfstree: target %d out of range", targetIn)
	}
	if t.In[u] == targetIn {
		return u, nil
	}
	if targetIn < t.In[u] || targetIn >= t.Out[u] {
		if t.Parent[u] < 0 {
			return 0, fmt.Errorf("bfstree: root interval must cover everything")
		}
		return t.Parent[u], nil
	}
	for _, c := range t.Children[u] {
		if targetIn >= t.In[c] && targetIn < t.Out[c] {
			return c, nil
		}
	}
	return 0, fmt.Errorf("bfstree: no child of %d covers DFS number %d", u, targetIn)
}

// ByIn returns the node with the given DFS number.
func (t *Tree) ByIn(in int) int {
	for u, v := range t.In {
		if v == in {
			return u
		}
	}
	return -1
}

// Validate checks tree invariants (spanning, acyclic, interval nesting).
func (t *Tree) Validate(g *graph.Graph) error {
	n := g.N()
	if len(t.Parent) != n || len(t.In) != n || len(t.Out) != n {
		return fmt.Errorf("bfstree: wrong sizes")
	}
	seen := make([]bool, n)
	count := 0
	var walk func(u int) error
	walk = func(u int) error {
		if seen[u] {
			return fmt.Errorf("bfstree: cycle at %d", u)
		}
		seen[u] = true
		count++
		size := 1
		for _, c := range t.Children[u] {
			if t.Parent[c] != u {
				return fmt.Errorf("bfstree: child %d of %d has parent %d", c, u, t.Parent[c])
			}
			if !g.HasEdge(u, c) {
				return fmt.Errorf("bfstree: tree edge (%d,%d) not in graph", u, c)
			}
			if t.Depth[c] != t.Depth[u]+1 {
				return fmt.Errorf("bfstree: depth of %d inconsistent", c)
			}
			if err := walk(c); err != nil {
				return err
			}
			size += t.Out[c] - t.In[c]
		}
		if t.Out[u]-t.In[u] != size {
			return fmt.Errorf("bfstree: interval of %d has size %d, want %d", u, t.Out[u]-t.In[u], size)
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if count != n {
		return fmt.Errorf("bfstree: tree spans %d of %d nodes", count, n)
	}
	// BFS optimality: depth equals hop distance from root.
	hops := graph.BFSHops(g, t.Root)
	for u := 0; u < n; u++ {
		if t.Depth[u] != hops[u] {
			return fmt.Errorf("bfstree: depth[%d]=%d but BFS hop distance is %d", u, t.Depth[u], hops[u])
		}
	}
	return nil
}

// --- protocol messages ---

type tokenMsg struct{ Depth int }

func (tokenMsg) Words() int { return 2 }

type replyMsg struct{ Accept bool }

func (replyMsg) Words() int { return 1 }

type doneMsg struct{ SubtreeSize int }

func (doneMsg) Words() int { return 2 }

type intervalMsg struct{ In, Out int }

func (intervalMsg) Words() int { return 2 }

// treeNode runs the echo BFS and the two interval sweeps.
type treeNode struct {
	id   int
	root bool

	parentIdx   int
	hasParent   bool
	depth       int
	children    []int // neighbor indices, in adoption order
	childSizes  []int // subtree sizes, parallel to children
	expected    int
	replies     int
	doneKids    int
	subtreeSize int
	doneSent    bool

	in, out int
	out2    *outFIFO
}

// outFIFO is a minimal per-edge FIFO (bfstree traffic is light; at most a
// couple of messages per edge overall, but replies and tokens can collide
// on an edge in the same round).
type outFIFO struct {
	q [][]congest.Message
}

func newOutFIFO(deg int) *outFIFO { return &outFIFO{q: make([][]congest.Message, deg)} }

func (o *outFIFO) push(i int, m congest.Message) { o.q[i] = append(o.q[i], m) }

func (o *outFIFO) drain(ctx *congest.Context) {
	pending := false
	for i := range o.q {
		if len(o.q[i]) == 0 {
			continue
		}
		ctx.Send(i, o.q[i][0])
		copy(o.q[i], o.q[i][1:])
		o.q[i] = o.q[i][:len(o.q[i])-1]
		if len(o.q[i]) > 0 {
			pending = true
		}
	}
	if pending {
		ctx.WakeNextRound()
	}
}

func (nd *treeNode) Init(ctx *congest.Context) {
	nd.out2 = newOutFIFO(ctx.Degree())
	nd.parentIdx = -1
	nd.subtreeSize = 1
	if nd.root {
		nd.expected = ctx.Degree()
		for i := 0; i < ctx.Degree(); i++ {
			nd.out2.push(i, tokenMsg{Depth: 1})
		}
		nd.maybeFinish(ctx)
	}
	nd.out2.drain(ctx)
}

func (nd *treeNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		from := ctx.NeighborIndex(in.From)
		switch m := in.Payload.(type) {
		case tokenMsg:
			if nd.root || nd.hasParent {
				nd.out2.push(from, replyMsg{Accept: false})
				continue
			}
			nd.hasParent = true
			nd.parentIdx = from
			nd.depth = m.Depth
			nd.out2.push(from, replyMsg{Accept: true})
			nd.expected = ctx.Degree() - 1
			for i := 0; i < ctx.Degree(); i++ {
				if i != from {
					nd.out2.push(i, tokenMsg{Depth: m.Depth + 1})
				}
			}
			nd.maybeFinish(ctx)
		case replyMsg:
			nd.replies++
			if m.Accept {
				nd.children = append(nd.children, from)
				nd.childSizes = append(nd.childSizes, 0)
			}
			nd.maybeFinish(ctx)
		case doneMsg:
			for i, c := range nd.children {
				if c == from {
					nd.childSizes[i] = m.SubtreeSize
				}
			}
			nd.subtreeSize += m.SubtreeSize
			nd.doneKids++
			nd.maybeFinish(ctx)
		case intervalMsg:
			nd.in, nd.out = m.In, m.Out
			nd.assignChildIntervals()
		default:
			panic(fmt.Sprintf("bfstree: node %d got %T", nd.id, in.Payload))
		}
	}
	nd.out2.drain(ctx)
}

func (nd *treeNode) maybeFinish(ctx *congest.Context) {
	if nd.doneSent || (!nd.root && !nd.hasParent) {
		return
	}
	if nd.replies != nd.expected || nd.doneKids != len(nd.children) {
		return
	}
	nd.doneSent = true
	if nd.root {
		// Tree complete: assign intervals top-down.
		nd.in, nd.out = 0, nd.subtreeSize
		nd.assignChildIntervals()
		return
	}
	nd.out2.push(nd.parentIdx, doneMsg{SubtreeSize: nd.subtreeSize})
}

// assignChildIntervals hands each child a contiguous DFS interval right
// after this node's own number, in adoption order.
func (nd *treeNode) assignChildIntervals() {
	next := nd.in + 1
	for i, c := range nd.children {
		size := nd.childSizes[i]
		nd.out2.push(c, intervalMsg{In: next, Out: next + size})
		next += size
	}
}

// Build constructs the BFS tree rooted at root with the echo protocol and
// interval sweeps, entirely in-band.
func Build(g *graph.Graph, root int, cfg congest.Config) (*Tree, error) {
	n := g.N()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("bfstree: root %d out of range", root)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("bfstree: graph not connected")
	}
	nodes := make([]congest.Node, n)
	tns := make([]*treeNode, n)
	for u := 0; u < n; u++ {
		tns[u] = &treeNode{id: u, root: u == root}
		nodes[u] = tns[u]
	}
	eng := congest.NewEngine(g, nodes, cfg)
	defer eng.Close()
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		return nil, err
	}
	t := &Tree{
		Root:     root,
		Parent:   make([]int, n),
		Children: make([][]int, n),
		Depth:    make([]int, n),
		In:       make([]int, n),
		Out:      make([]int, n),
		Stats:    eng.Stats(),
	}
	for u := 0; u < n; u++ {
		nd := tns[u]
		if !nd.root && !nd.hasParent {
			return nil, fmt.Errorf("bfstree: node %d never joined the tree", u)
		}
		t.Parent[u] = -1
		if nd.hasParent {
			t.Parent[u] = nodeAt(g, u, nd.parentIdx)
		}
		for _, c := range nd.children {
			t.Children[u] = append(t.Children[u], nodeAt(g, u, c))
		}
		sortInts(t.Children[u])
		t.Depth[u] = nd.depth
		t.In[u] = nd.in
		t.Out[u] = nd.out
	}
	return t, nil
}

// nodeAt maps a neighbor index back to a node ID.
func nodeAt(g *graph.Graph, u, idx int) int { return g.Adj(u)[idx].To }

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
