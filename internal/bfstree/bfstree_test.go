package bfstree

import (
	"testing"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
)

func build(t *testing.T, g *graph.Graph, root int) *Tree {
	t.Helper()
	tr, err := Build(g, root, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(g); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildAllFamilies(t *testing.T) {
	for _, f := range graph.AllFamilies() {
		g := graph.Make(f, 64, graph.UniformWeights(1, 9), 5)
		tr := build(t, g, g.N()-1)
		if tr.Root != g.N()-1 {
			t.Errorf("%s: wrong root", f)
		}
	}
}

func TestBuildPathShape(t *testing.T) {
	g := graph.Path(5, graph.UnitWeights(), 0)
	tr := build(t, g, 0)
	for u := 1; u < 5; u++ {
		if tr.Parent[u] != u-1 {
			t.Errorf("parent[%d] = %d, want %d", u, tr.Parent[u], u-1)
		}
		if tr.Depth[u] != u {
			t.Errorf("depth[%d] = %d, want %d", u, tr.Depth[u], u)
		}
	}
	// DFS numbers on a path from the root are 0..4 in order.
	for u := 0; u < 5; u++ {
		if tr.In[u] != u || tr.Out[u] != 5 {
			t.Errorf("interval[%d] = [%d,%d), want [%d,5)", u, tr.In[u], tr.Out[u], u)
		}
	}
}

func TestBuildRoundsNearDiameter(t *testing.T) {
	g := graph.Make(graph.FamilyGrid, 100, graph.UnitWeights(), 3)
	d := graph.HopDiameter(g)
	tr := build(t, g, 0)
	// Echo BFS + size convergecast + interval downcast: O(D) rounds with
	// a small constant (FIFO collisions add slack).
	if tr.Stats.Rounds > 8*d+10 {
		t.Errorf("rounds %d > 8D+10 = %d", tr.Stats.Rounds, 8*d+10)
	}
	// O(|E|) messages for BFS plus O(n) for the sweeps.
	budget := int64(6*g.M() + 6*g.N())
	if tr.Stats.Messages > budget {
		t.Errorf("messages %d > budget %d", tr.Stats.Messages, budget)
	}
}

func TestIntervalNesting(t *testing.T) {
	g := graph.Make(graph.FamilyBA, 80, graph.UnitWeights(), 7)
	tr := build(t, g, g.N()-1)
	// In[] is a permutation.
	seen := make([]bool, g.N())
	for u := 0; u < g.N(); u++ {
		if tr.In[u] < 0 || tr.In[u] >= g.N() || seen[tr.In[u]] {
			t.Fatalf("In[%d] = %d invalid", u, tr.In[u])
		}
		seen[tr.In[u]] = true
	}
	// Child intervals nest strictly inside the parent's.
	for u := 0; u < g.N(); u++ {
		for _, c := range tr.Children[u] {
			if tr.In[c] <= tr.In[u] || tr.Out[c] > tr.Out[u] {
				t.Fatalf("child %d interval [%d,%d) not inside parent %d [%d,%d)",
					c, tr.In[c], tr.Out[c], u, tr.In[u], tr.Out[u])
			}
		}
	}
}

func TestNextHopRouting(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 60, nil, 9)
	tr := build(t, g, g.N()-1)
	// Route from every node to every target; must arrive within 2·height
	// hops, moving only along tree edges.
	h := tr.Height()
	for u := 0; u < g.N(); u += 7 {
		for v := 0; v < g.N(); v += 5 {
			cur := u
			steps := 0
			for cur != v {
				next, err := tr.NextHop(cur, tr.In[v])
				if err != nil {
					t.Fatal(err)
				}
				if next == cur {
					break
				}
				cur = next
				steps++
				if steps > 2*h+2 {
					t.Fatalf("routing %d→%d exceeded 2·height", u, v)
				}
			}
			if cur != v {
				t.Fatalf("routing %d→%d stalled at %d", u, v, cur)
			}
		}
	}
}

func TestByIn(t *testing.T) {
	g := graph.Path(6, graph.UnitWeights(), 0)
	tr := build(t, g, 0)
	for u := 0; u < 6; u++ {
		if got := tr.ByIn(tr.In[u]); got != u {
			t.Errorf("ByIn(In[%d]) = %d", u, got)
		}
	}
	if tr.ByIn(99) != -1 {
		t.Error("ByIn out of range should be -1")
	}
}

func TestBuildErrors(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	if _, err := Build(g, 9, congest.Config{}); err == nil {
		t.Error("bad root accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	disc := b.MustFreeze()
	if _, err := Build(disc, 0, congest.Config{}); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.NewBuilder(1).MustFreeze()
	tr, err := Build(g, 0, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.In[0] != 0 || tr.Out[0] != 1 || tr.Parent[0] != -1 {
		t.Errorf("singleton tree wrong: %+v", tr)
	}
}

func BenchmarkBuild(b *testing.B) {
	g := graph.Make(graph.FamilyER, 512, graph.UnitWeights(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, g.N()-1, congest.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
