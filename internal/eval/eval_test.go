package eval

import (
	"math"
	"testing"

	"distsketch/internal/graph"
)

func pathAPSP(n int) [][]graph.Dist {
	g := graph.Path(n, graph.UnitWeights(), 0)
	return graph.APSP(g)
}

func TestEvaluateExactQuery(t *testing.T) {
	ap := pathAPSP(6)
	q := func(u, v int) graph.Dist { return ap[u][v] }
	rep := Evaluate(ap, q, AllPairs(6))
	if rep.Pairs != 30 {
		t.Errorf("pairs = %d, want 30", rep.Pairs)
	}
	if rep.MaxStretch != 1 || rep.AvgStretch != 1 {
		t.Errorf("exact query should have stretch 1: %+v", rep)
	}
	if rep.Violations != 0 || rep.Unreachable != 0 {
		t.Errorf("exact query flagged: %+v", rep)
	}
	if rep.P50 != 1 || rep.P90 != 1 || rep.P99 != 1 {
		t.Errorf("percentiles: %+v", rep)
	}
}

func TestEvaluateDetectsViolations(t *testing.T) {
	ap := pathAPSP(4)
	q := func(u, v int) graph.Dist { return ap[u][v] - 1 } // cheats below true
	rep := Evaluate(ap, q, AllPairs(4))
	if rep.Violations != rep.Pairs {
		t.Errorf("violations = %d, want %d", rep.Violations, rep.Pairs)
	}
}

func TestEvaluateDetectsUnreachable(t *testing.T) {
	ap := pathAPSP(4)
	q := func(u, v int) graph.Dist { return graph.Inf }
	rep := Evaluate(ap, q, AllPairs(4))
	if rep.Unreachable != rep.Pairs {
		t.Errorf("unreachable = %d, want %d", rep.Unreachable, rep.Pairs)
	}
}

func TestEvaluateStretch(t *testing.T) {
	ap := pathAPSP(3)
	q := func(u, v int) graph.Dist { return 3 * ap[u][v] }
	rep := Evaluate(ap, q, AllPairs(3))
	if rep.MaxStretch != 3 || rep.AvgStretch != 3 {
		t.Errorf("stretch: %+v", rep)
	}
}

func TestSamplePairsValid(t *testing.T) {
	pairs := SamplePairs(10, 200, 1)
	if len(pairs) != 200 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.U == p.V || p.U < 0 || p.U >= 10 || p.V < 0 || p.V >= 10 {
			t.Fatalf("bad pair %+v", p)
		}
	}
	again := SamplePairs(10, 200, 1)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatal("SamplePairs not deterministic")
		}
	}
}

func TestAllPairsCount(t *testing.T) {
	if got := len(AllPairs(7)); got != 42 {
		t.Errorf("AllPairs(7) = %d pairs, want 42", got)
	}
}

func TestFarClassifierRanks(t *testing.T) {
	// Path 0-1-2-3: from node 0, ranks are 0:0, 1:1, 2:2, 3:3.
	ap := pathAPSP(4)
	fc := NewFarClassifier(ap)
	for v := 0; v < 4; v++ {
		if got := fc.CloserCount(0, v); got != v {
			t.Errorf("rank of %d from 0 = %d, want %d", v, got, v)
		}
	}
	// v=3 is ε-far from 0 for ε ≤ 3/4.
	if !fc.IsFar(0, 3, 0.75) {
		t.Error("3 should be 0.75-far from 0")
	}
	if fc.IsFar(0, 1, 0.5) {
		t.Error("1 should not be 0.5-far from 0 (rank 1 < 2)")
	}
}

func TestFarClassifierTieBreak(t *testing.T) {
	// Star: all leaves equidistant from the center; ranks must still be
	// distinct (ID tie-break).
	g := graph.Star(5, graph.UnitWeights(), 0)
	ap := graph.APSP(g)
	fc := NewFarClassifier(ap)
	seen := make(map[int]bool)
	for v := 0; v < 5; v++ {
		r := fc.CloserCount(0, v)
		if seen[r] {
			t.Fatalf("duplicate rank %d", r)
		}
		seen[r] = true
	}
}

func TestEvaluateSlackCoverage(t *testing.T) {
	ap := pathAPSP(16)
	q := func(u, v int) graph.Dist { return ap[u][v] }
	for _, eps := range []float64{0.25, 0.5} {
		rep := EvaluateSlack(ap, q, AllPairs(16), eps)
		if rep.FarFrac < 1-eps-1e-9 {
			t.Errorf("eps=%g: far fraction %.3f < %.3f", eps, rep.FarFrac, 1-eps)
		}
		if rep.Eps != eps {
			t.Errorf("eps mismatch")
		}
		if rep.Far.Pairs+rep.Near.Pairs != 240 {
			t.Errorf("pair split %d+%d != 240", rep.Far.Pairs, rep.Near.Pairs)
		}
	}
}

func TestAvgStretchAllPairs(t *testing.T) {
	ap := pathAPSP(5)
	q := func(u, v int) graph.Dist { return 2 * ap[u][v] }
	if got := AvgStretchAllPairs(ap, q); math.Abs(got-2) > 1e-12 {
		t.Errorf("avg = %g, want 2", got)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
	s := []float64{1, 2, 3, 4}
	if percentile(s, 0.5) != 2 {
		t.Errorf("p50 = %g", percentile(s, 0.5))
	}
	if percentile(s, 1.0) != 4 {
		t.Errorf("p100 = %g", percentile(s, 1.0))
	}
	if percentile(s, 0.01) != 1 {
		t.Errorf("p1 = %g", percentile(s, 0.01))
	}
}

func TestReportString(t *testing.T) {
	rep := Report{Pairs: 10, MaxStretch: 2.5, AvgStretch: 1.5, P50: 1, P90: 2, P99: 2.5}
	s := rep.String()
	if s == "" {
		t.Error("empty report string")
	}
}
