// Package eval measures the quality of distance sketches against exact
// shortest-path distances: stretch statistics over all (or sampled) pairs,
// ε-slack coverage (Section 4 of the paper), and average stretch
// (Section 4.1). It is the harness behind the EXPERIMENTS.md tables.
package eval

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"distsketch/internal/graph"
)

// QueryFunc produces a distance estimate for an ordered pair of nodes.
type QueryFunc func(u, v int) graph.Dist

// Querier answers distance queries from built sketches. The facade's
// SketchSet and the core construction results all satisfy it, so callers
// can hand the result object straight to EvaluateQuerier instead of
// plucking a method value.
type Querier interface {
	Query(u, v int) graph.Dist
}

// EvaluateQuerier is Evaluate over a Querier.
func EvaluateQuerier(apsp [][]graph.Dist, q Querier, pairs []Pair) Report {
	return Evaluate(apsp, q.Query, pairs)
}

// Report summarizes estimate quality over a pair set.
type Report struct {
	Pairs         int     // pairs evaluated (finite true distance, u != v)
	Violations    int     // estimates below the true distance (must be 0)
	Unreachable   int     // estimate = Inf on a connected pair (must be 0)
	MaxStretch    float64 // max over pairs of estimate/true
	AvgStretch    float64 // mean over pairs of estimate/true
	P50, P90, P99 float64 // stretch percentiles
}

func (r Report) String() string {
	return fmt.Sprintf("pairs=%d viol=%d unreach=%d max=%.3f avg=%.3f p50=%.3f p90=%.3f p99=%.3f",
		r.Pairs, r.Violations, r.Unreachable, r.MaxStretch, r.AvgStretch, r.P50, r.P90, r.P99)
}

// Pair is an ordered node pair.
type Pair struct{ U, V int }

// AllPairs returns all ordered pairs u != v. Quadratic; use for n ≲ 512.
func AllPairs(n int) []Pair {
	out := make([]Pair, 0, n*(n-1))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				out = append(out, Pair{u, v})
			}
		}
	}
	return out
}

// SamplePairs returns count ordered pairs drawn uniformly (u != v).
func SamplePairs(n, count int, seed uint64) []Pair {
	r := rand.New(rand.NewPCG(seed, 0xfeed))
	out := make([]Pair, 0, count)
	for len(out) < count {
		u := int(r.Int64N(int64(n)))
		v := int(r.Int64N(int64(n)))
		if u != v {
			out = append(out, Pair{u, v})
		}
	}
	return out
}

// Evaluate computes stretch statistics of q against the exact distances
// over the given pairs. Pairs with true distance 0 or Inf are skipped
// (stretch is undefined there); Inf estimates on finite pairs are counted
// in Unreachable and excluded from the stretch aggregates.
func Evaluate(apsp [][]graph.Dist, q QueryFunc, pairs []Pair) Report {
	var rep Report
	stretches := make([]float64, 0, len(pairs))
	var sum float64
	for _, p := range pairs {
		d := apsp[p.U][p.V]
		if d == 0 || d == graph.Inf {
			continue
		}
		rep.Pairs++
		est := q(p.U, p.V)
		if est == graph.Inf {
			rep.Unreachable++
			continue
		}
		if est < d {
			rep.Violations++
			continue
		}
		s := float64(est) / float64(d)
		stretches = append(stretches, s)
		sum += s
		if s > rep.MaxStretch {
			rep.MaxStretch = s
		}
	}
	if len(stretches) > 0 {
		rep.AvgStretch = sum / float64(len(stretches))
		sort.Float64s(stretches)
		rep.P50 = percentile(stretches, 0.50)
		rep.P90 = percentile(stretches, 0.90)
		rep.P99 = percentile(stretches, 0.99)
	}
	return rep
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FarClassifier precomputes, for every node u, the rank of every node in
// u's distance order, enabling O(1) ε-far tests: v is ε-far from u iff at
// least ε·n nodes w (including u itself) precede v in that order
// (Section 4). Ties are broken by node ID — the paper assumes distinct
// distances WLOG "by breaking ties consistently through processor IDs",
// and lexicographic (distance, ID) rank realizes exactly that: every node
// then has a unique rank, so the ε-far pairs are exactly a (1-ε) fraction,
// and rank(v) ≥ ε·n still implies R(u,ε) ≤ d(u,v) (the ball of radius
// d(u,v) contains all lex-preceding nodes), which is all the slack stretch
// proofs use.
type FarClassifier struct {
	n    int
	rank [][]int32 // rank[u][v] = |{w : (d(u,w), w) <lex (d(u,v), v)}|
	apsp [][]graph.Dist
}

// NewFarClassifier builds the classifier from an APSP matrix.
func NewFarClassifier(apsp [][]graph.Dist) *FarClassifier {
	n := len(apsp)
	fc := &FarClassifier{n: n, apsp: apsp, rank: make([][]int32, n)}
	order := make([]int, n)
	for u := 0; u < n; u++ {
		for i := range order {
			order[i] = i
		}
		row := apsp[u]
		sort.Slice(order, func(i, j int) bool {
			a, b := order[i], order[j]
			if row[a] != row[b] {
				return row[a] < row[b]
			}
			return a < b
		})
		ranks := make([]int32, n)
		for pos, v := range order {
			ranks[v] = int32(pos)
		}
		fc.rank[u] = ranks
	}
	return fc
}

// CloserCount returns the lex rank of v in u's distance order, i.e. the
// number of nodes (including u itself) that precede v.
func (fc *FarClassifier) CloserCount(u, v int) int {
	return int(fc.rank[u][v])
}

// IsFar reports whether v is ε-far from u.
func (fc *FarClassifier) IsFar(u, v int, eps float64) bool {
	return float64(fc.CloserCount(u, v)) >= eps*float64(fc.n)
}

// SlackReport extends Report with ε-slack coverage accounting.
type SlackReport struct {
	Eps     float64
	Far     Report  // statistics over ε-far pairs only (the guaranteed set)
	Near    Report  // statistics over the remaining pairs (no guarantee)
	FarFrac float64 // fraction of evaluated pairs that are ε-far (≥ 1-ε)
}

// EvaluateSlack computes stretch statistics split by the ε-far predicate.
func EvaluateSlack(apsp [][]graph.Dist, q QueryFunc, pairs []Pair, eps float64) SlackReport {
	fc := NewFarClassifier(apsp)
	return EvaluateSlackWith(fc, apsp, q, pairs, eps)
}

// EvaluateSlackWith is EvaluateSlack with a pre-built classifier (reuse
// across several ε values).
func EvaluateSlackWith(fc *FarClassifier, apsp [][]graph.Dist, q QueryFunc, pairs []Pair, eps float64) SlackReport {
	var far, near []Pair
	for _, p := range pairs {
		d := apsp[p.U][p.V]
		if d == 0 || d == graph.Inf {
			continue
		}
		if fc.IsFar(p.U, p.V, eps) {
			far = append(far, p)
		} else {
			near = append(near, p)
		}
	}
	rep := SlackReport{
		Eps:  eps,
		Far:  Evaluate(apsp, q, far),
		Near: Evaluate(apsp, q, near),
	}
	if tot := len(far) + len(near); tot > 0 {
		rep.FarFrac = float64(len(far)) / float64(tot)
	}
	return rep
}

// AvgStretchAllPairs computes the paper's average-stretch quantity
// (Section 4.1): the mean of estimate/true over all unordered pairs with
// finite nonzero distance. Estimates of Inf contribute stretch = the worst
// finite stretch observed (they should not occur for the constructions in
// this repository; the fallback keeps the statistic defined).
func AvgStretchAllPairs(apsp [][]graph.Dist, q QueryFunc) float64 {
	n := len(apsp)
	var sum float64
	var count int
	var worst float64 = 1
	var infs int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := apsp[u][v]
			if d == 0 || d == graph.Inf {
				continue
			}
			est := q(u, v)
			count++
			if est == graph.Inf {
				infs++
				continue
			}
			s := float64(est) / float64(d)
			if s > worst {
				worst = s
			}
			sum += s
		}
	}
	if count == 0 {
		return 0
	}
	sum += float64(infs) * worst
	return sum / float64(count)
}
