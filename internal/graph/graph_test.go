package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 3)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 0, 7)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d, want 4,4", g.N(), g.M())
	}
	if w, ok := g.EdgeWeight(1, 0); !ok || w != 5 {
		t.Errorf("EdgeWeight(1,0) = %d,%v want 5,true", w, ok)
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge (0,2)")
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuilderDuplicateKeepsMin(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 9)
	b.AddEdge(1, 0, 4)
	b.AddEdge(0, 1, 6)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 4 {
		t.Errorf("weight = %d, want min 4", w)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder)
	}{
		{"self-loop", func(b *Builder) { b.AddEdge(1, 1, 1) }},
		{"out-of-range", func(b *Builder) { b.AddEdge(0, 9, 1) }},
		{"negative", func(b *Builder) { b.AddEdge(0, 1, -1) }},
		{"inf-weight", func(b *Builder) { b.AddEdge(0, 1, Inf) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(3)
			tc.f(b)
			if _, err := b.Freeze(); err == nil {
				t.Error("Freeze succeeded, want error")
			}
		})
	}
}

func TestAddDistSaturates(t *testing.T) {
	if AddDist(Inf, 1) != Inf || AddDist(1, Inf) != Inf {
		t.Error("Inf + x must be Inf")
	}
	if AddDist(Inf-1, 2) != Inf {
		t.Error("overflow must saturate to Inf")
	}
	if AddDist(3, 4) != 7 {
		t.Error("3+4 != 7")
	}
	if AddDist(0, 0) != 0 {
		t.Error("0+0 != 0")
	}
}

func TestConnectivity(t *testing.T) {
	g := Path(5, UnitWeights(), 1)
	if !g.IsConnected() {
		t.Error("path must be connected")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g2 := b.MustFreeze()
	if g2.IsConnected() {
		t.Error("two components reported connected")
	}
	comps := g2.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if comps[0][0] != 0 || comps[1][0] != 2 {
		t.Errorf("components = %v", comps)
	}
}

func TestDijkstraPath(t *testing.T) {
	// 0 -2- 1 -2- 2
	//  \----5----/
	b := NewBuilder(3)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 2)
	b.AddEdge(0, 2, 5)
	g := b.MustFreeze()
	r := Dijkstra(g, 0)
	if r.Dist[2] != 4 {
		t.Errorf("d(0,2) = %d, want 4", r.Dist[2])
	}
	if r.Hops[2] != 2 {
		t.Errorf("hops(0,2) = %d, want 2", r.Hops[2])
	}
	p := r.PathTo(2)
	if len(p) != 3 || p[0] != 0 || p[1] != 1 || p[2] != 2 {
		t.Errorf("path = %v, want [0 1 2]", p)
	}
}

func TestDijkstraMinHopsAmongShortest(t *testing.T) {
	// Two shortest paths of weight 4: 0-1-2-3 (3 hops, weights 1,2,1) and
	// 0-4-3 (2 hops, weights 2,2). Hops must report 2.
	b := NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 1)
	b.AddEdge(0, 4, 2)
	b.AddEdge(4, 3, 2)
	g := b.MustFreeze()
	r := Dijkstra(g, 0)
	if r.Dist[3] != 4 {
		t.Fatalf("d(0,3) = %d, want 4", r.Dist[3])
	}
	if r.Hops[3] != 2 {
		t.Errorf("min hops among shortest = %d, want 2", r.Hops[3])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	g := b.MustFreeze()
	r := Dijkstra(g, 0)
	if r.Dist[2] != Inf || r.Hops[2] != -1 {
		t.Errorf("unreachable: dist=%d hops=%d", r.Dist[2], r.Hops[2])
	}
	if r.PathTo(2) != nil {
		t.Error("PathTo unreachable must be nil")
	}
}

func TestDiametersUnweightedEqual(t *testing.T) {
	// In unweighted graphs S == D (paper §1.1).
	for _, f := range AllFamilies() {
		g := Make(f, 40, UnitWeights(), 7)
		d := HopDiameter(g)
		s := ShortestPathDiameter(g)
		if d != s {
			t.Errorf("%s: D=%d S=%d, want equal in unweighted graph", f, d, s)
		}
		if d <= 0 && g.N() > 1 {
			t.Errorf("%s: nonpositive diameter %d", f, d)
		}
	}
}

func TestDiameterDLeqS(t *testing.T) {
	for _, f := range AllFamilies() {
		g := Make(f, 40, UniformWeights(1, 20), 3)
		d := HopDiameter(g)
		s := ShortestPathDiameter(g)
		if d > s {
			t.Errorf("%s: D=%d > S=%d", f, d, s)
		}
	}
}

func TestShortestPathDiameterSkewed(t *testing.T) {
	// Ring with one heavy edge: shortest paths avoid the heavy edge, so
	// S = n-1 while D = n/2.
	n := 12
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		w := Dist(1)
		if i == n-1 {
			w = 1000
		}
		b.AddEdge(i, (i+1)%n, w)
	}
	g := b.MustFreeze()
	if got := HopDiameter(g); got != n/2 {
		t.Errorf("D = %d, want %d", got, n/2)
	}
	if got := ShortestPathDiameter(g); got != n-1 {
		t.Errorf("S = %d, want %d", got, n-1)
	}
}

func TestAPSPMatchesDijkstra(t *testing.T) {
	g := Make(FamilyER, 60, UniformWeights(1, 9), 11)
	ap := APSP(g)
	for _, s := range []int{0, 17, 59} {
		r := Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if ap[s][v] != r.Dist[v] {
				t.Fatalf("APSP[%d][%d]=%d != Dijkstra %d", s, v, ap[s][v], r.Dist[v])
			}
		}
	}
}

func TestAPSPSymmetric(t *testing.T) {
	g := Make(FamilyGeometric, 50, nil, 5)
	ap := APSP(g)
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if ap[u][v] != ap[v][u] {
				t.Fatalf("asymmetric: d(%d,%d)=%d d(%d,%d)=%d", u, v, ap[u][v], v, u, ap[v][u])
			}
		}
	}
}

func TestMultiSourceDijkstra(t *testing.T) {
	g := Path(6, UnitWeights(), 1) // 0-1-2-3-4-5
	dist, nearest := MultiSourceDijkstra(g, []int{0, 5})
	wantDist := []Dist{0, 1, 2, 2, 1, 0}
	wantSrc := []int{0, 0, 0, 5, 5, 5}
	for i := range wantDist {
		if dist[i] != wantDist[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], wantDist[i])
		}
		if nearest[i] != wantSrc[i] {
			t.Errorf("nearest[%d] = %d, want %d", i, nearest[i], wantSrc[i])
		}
	}
}

func TestMultiSourceTieBreakSmallerID(t *testing.T) {
	g := Path(3, UnitWeights(), 1) // node 1 equidistant from 0 and 2
	_, nearest := MultiSourceDijkstra(g, []int{2, 0})
	if nearest[1] != 0 {
		t.Errorf("tie must go to smaller source ID, got %d", nearest[1])
	}
}

func TestMultiSourceMatchesPerSourceMin(t *testing.T) {
	g := Make(FamilyBA, 50, UniformWeights(1, 7), 9)
	sources := []int{3, 11, 42}
	dist, nearest := MultiSourceDijkstra(g, sources)
	per := make(map[int][]Dist)
	for _, s := range sources {
		per[s] = Dijkstra(g, s).Dist
	}
	for v := 0; v < g.N(); v++ {
		best, bestSrc := Inf, -1
		for _, s := range sources {
			if per[s][v] < best || (per[s][v] == best && s < bestSrc) {
				best, bestSrc = per[s][v], s
			}
		}
		if dist[v] != best || nearest[v] != bestSrc {
			t.Fatalf("node %d: got (%d,%d) want (%d,%d)", v, dist[v], nearest[v], best, bestSrc)
		}
	}
}

func TestGeneratorsConnectedAndValid(t *testing.T) {
	for _, f := range AllFamilies() {
		for _, n := range []int{8, 33, 64} {
			for seed := uint64(0); seed < 3; seed++ {
				g := Make(f, n, UniformWeights(1, 10), seed)
				if !g.IsConnected() {
					t.Errorf("%s n=%d seed=%d: disconnected", f, n, seed)
				}
				if err := g.Validate(); err != nil {
					t.Errorf("%s n=%d seed=%d: %v", f, n, seed, err)
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, f := range AllFamilies() {
		a := Make(f, 30, UniformWeights(1, 10), 42)
		b := Make(f, 30, UniformWeights(1, 10), 42)
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("%s: size differs across identical seeds", f)
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", f, i, ea[i], eb[i])
			}
		}
	}
}

func TestGridTorusShapes(t *testing.T) {
	g := Grid(3, 4, UnitWeights(), 0)
	if g.N() != 12 {
		t.Fatalf("grid n = %d", g.N())
	}
	// 3x4 grid: 3*(4-1) horizontal + (3-1)*4 vertical = 9+8 = 17.
	if g.M() != 17 {
		t.Errorf("grid m = %d, want 17", g.M())
	}
	tor := Torus(3, 4, UnitWeights(), 0)
	if tor.M() != 24 {
		t.Errorf("torus m = %d, want 24", tor.M())
	}
}

func TestHyperCube(t *testing.T) {
	g := HyperCube(4, UnitWeights(), 0)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("hypercube(4): n=%d m=%d, want 16,32", g.N(), g.M())
	}
	if d := HopDiameter(g); d != 4 {
		t.Errorf("hypercube(4) diameter = %d, want 4", d)
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", u, g.Degree(u))
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	g := RandomTree(50, UnitWeights(), 3)
	if g.M() != 49 {
		t.Errorf("tree edges = %d, want 49", g.M())
	}
	if !g.IsConnected() {
		t.Error("tree disconnected")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 2, UnitWeights(), 0)
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("caterpillar: n=%d m=%d, want 15,14", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Error("caterpillar disconnected")
	}
}

func TestBarabasiAlbertDegrees(t *testing.T) {
	g := BarabasiAlbert(100, 3, UnitWeights(), 1)
	if !g.IsConnected() {
		t.Fatal("BA disconnected")
	}
	for u := 4; u < g.N(); u++ {
		if g.Degree(u) < 3 {
			t.Fatalf("BA node %d degree %d < m=3", u, g.Degree(u))
		}
	}
}

func TestLollipopShape(t *testing.T) {
	g := LollipopPath(5, 4, UnitWeights(), 0)
	if g.N() != 9 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() != 10+4 {
		t.Errorf("m = %d, want 14", g.M())
	}
	if !g.IsConnected() {
		t.Error("lollipop disconnected")
	}
}

func TestWeightFns(t *testing.T) {
	r := rng(1)
	uw := UnitWeights()
	if uw(r, 0, 1) != 1 {
		t.Error("UnitWeights != 1")
	}
	rw := UniformWeights(5, 9)
	for i := 0; i < 100; i++ {
		w := rw(r, 0, 1)
		if w < 5 || w > 9 {
			t.Fatalf("UniformWeights out of range: %d", w)
		}
	}
	sw := SkewedWeights(100, 0.5)
	sawHeavy, sawLight := false, false
	for i := 0; i < 200; i++ {
		switch sw(r, 0, 1) {
		case 100:
			sawHeavy = true
		case 1:
			sawLight = true
		default:
			t.Fatal("SkewedWeights produced unexpected value")
		}
	}
	if !sawHeavy || !sawLight {
		t.Error("SkewedWeights not mixing")
	}
}

// Property: Dijkstra distances satisfy the triangle inequality over edges
// (d(s,v) <= d(s,u) + w(u,v)) and are tight somewhere.
func TestDijkstraRelaxationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := Make(FamilyER, 30, UniformWeights(1, 15), seed%1000)
		r := Dijkstra(g, int(seed%30))
		for _, e := range g.Edges() {
			if r.Dist[e.V] > AddDist(r.Dist[e.U], e.Weight) {
				return false
			}
			if r.Dist[e.U] > AddDist(r.Dist[e.V], e.Weight) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: shortest-path distances form a metric (symmetry + triangle
// inequality) on connected graphs.
func TestAPSPMetricProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := Make(FamilyGeometric, 24, UniformWeights(1, 9), seed%512)
		ap := APSP(g)
		n := g.N()
		probe := rand.New(rand.NewPCG(seed, 1))
		for trial := 0; trial < 200; trial++ {
			u := int(probe.Int64N(int64(n)))
			v := int(probe.Int64N(int64(n)))
			w := int(probe.Int64N(int64(n)))
			if ap[u][v] != ap[v][u] {
				return false
			}
			if ap[u][w] > AddDist(ap[u][v], ap[v][w]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := Make(FamilyER, 512, UniformWeights(1, 100), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dijkstra(g, i%g.N())
	}
}

func BenchmarkAPSP256(b *testing.B) {
	g := Make(FamilyER, 256, UniformWeights(1, 100), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		APSP(g)
	}
}

func BenchmarkShortestPathDiameter(b *testing.B) {
	g := Make(FamilyGeometric, 256, nil, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ShortestPathDiameter(g)
	}
}
