package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list serialization, DIMACS-flavored, so networks measured
// elsewhere can be replayed through the sketch constructions:
//
//	# comment
//	p <n> <m>
//	e <u> <v> <weight>
//
// Node IDs are 0-based. The problem line must precede all edge lines.

// WriteEdgeList serializes g.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "e %d %d %d\n", e.U, e.V, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a graph written by WriteEdgeList (or by hand).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	edges := 0
	wantEdges := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'p <n> <m>'", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad n %q", line, fields[1])
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: line %d: bad m %q", line, fields[2])
			}
			b = NewBuilder(n)
			wantEdges = m
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'e <u> <v> <w>'", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", line, text)
			}
			b.AddEdge(u, v, w)
			edges++
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	if wantEdges >= 0 && edges != wantEdges {
		return nil, fmt.Errorf("graph: problem line declares %d edges, found %d", wantEdges, edges)
	}
	return b.Freeze()
}
