package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	for _, f := range AllFamilies() {
		g := Make(f, 40, UniformWeights(1, 99), 3)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("%s: size mismatch", f)
		}
		ea, eb := g.Edges(), got.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: edge %d differs: %v vs %v", f, i, ea[i], eb[i])
			}
		}
	}
}

func TestReadEdgeListHandWritten(t *testing.T) {
	src := `
# a triangle with a pendant
p 4 4
e 0 1 5
e 1 2 3
e 2 0 1
e 2 3 10
`
	g, err := ReadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if w, ok := g.EdgeWeight(2, 3); !ok || w != 10 {
		t.Errorf("edge (2,3) = %d,%v", w, ok)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"edge-first":      "e 0 1 2\np 2 1\n",
		"bad-problem":     "p x 1\n",
		"short-problem":   "p 4\n",
		"bad-edge":        "p 2 1\ne 0 one 2\n",
		"short-edge":      "p 2 1\ne 0 1\n",
		"count-mismatch":  "p 3 2\ne 0 1 1\n",
		"double-problem":  "p 2 0\np 2 0\n",
		"unknown-record":  "p 2 0\nq 1 2 3\n",
		"self-loop":       "p 2 1\ne 1 1 4\n",
		"out-of-range":    "p 2 1\ne 0 7 4\n",
		"negative-weight": "p 2 1\ne 0 1 -3\n",
	}
	for name, src := range cases {
		if _, err := ReadEdgeList(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteEdgeListFormat(t *testing.T) {
	g := Path(3, UnitWeights(), 0)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "p 3 2\ne 0 1 1\ne 1 2 1\n"
	if buf.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", buf.String(), want)
	}
}
