package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList: the parser must never panic on arbitrary text.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("p 3 2\ne 0 1 1\ne 1 2 5\n")
	f.Add("p 0 0\n")
	f.Add("# nothing\n")
	f.Add("e 0 1 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadEdgeList(strings.NewReader(src))
		if err == nil {
			if g == nil {
				t.Error("nil graph without error")
				return
			}
			if vErr := g.Validate(); vErr != nil {
				t.Errorf("parsed graph invalid: %v", vErr)
			}
		}
	})
}
