package graph

import (
	"container/heap"
	"runtime"
	"sync"
)

// This file holds the exact (centralized) shortest-path machinery used as
// ground truth: Dijkstra, all-pairs wrappers, the hop diameter D, and the
// shortest-path diameter S from the paper (Section 2.2).

// spItem is a priority-queue entry ordered by (dist, hops, node). Including
// hops in the order lets one Dijkstra pass compute h(u,v) = the minimum hop
// count among all shortest u-v paths, which defines S.
type spItem struct {
	node int
	dist Dist
	hops int
}

type spHeap []spItem

func (h spHeap) Len() int { return len(h) }
func (h spHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	if h[i].hops != h[j].hops {
		return h[i].hops < h[j].hops
	}
	return h[i].node < h[j].node
}
func (h spHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x any)   { *h = append(*h, x.(spItem)) }
func (h *spHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SSSPResult holds single-source shortest path output.
type SSSPResult struct {
	Source int
	Dist   []Dist // Inf if unreachable
	Hops   []int  // min hop count among shortest paths; -1 if unreachable
	Parent []int  // predecessor on a (dist,hops)-minimal path; -1 for source/unreachable
}

// Dijkstra computes shortest paths from src, together with the minimum hop
// count among all shortest paths to each node (needed for S).
func Dijkstra(g *Graph, src int) SSSPResult {
	n := g.N()
	res := SSSPResult{
		Source: src,
		Dist:   make([]Dist, n),
		Hops:   make([]int, n),
		Parent: make([]int, n),
	}
	for i := 0; i < n; i++ {
		res.Dist[i] = Inf
		res.Hops[i] = -1
		res.Parent[i] = -1
	}
	res.Dist[src] = 0
	res.Hops[src] = 0
	done := make([]bool, n)
	h := &spHeap{{node: src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(spItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, a := range g.Adj(u) {
			nd := AddDist(it.dist, a.Weight)
			nh := it.hops + 1
			v := a.To
			if nd < res.Dist[v] || (nd == res.Dist[v] && nh < res.Hops[v]) {
				res.Dist[v] = nd
				res.Hops[v] = nh
				res.Parent[v] = u
				heap.Push(h, spItem{node: v, dist: nd, hops: nh})
			}
		}
	}
	return res
}

// PathTo reconstructs a shortest path from the result's source to v, or nil
// if v is unreachable.
func (r *SSSPResult) PathTo(v int) []int {
	if r.Dist[v] == Inf {
		return nil
	}
	var rev []int
	for u := v; u != -1; u = r.Parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BFSHops computes hop counts (all weights treated as 1) from src.
func BFSHops(g *Graph, src int) []int {
	n := g.N()
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.Adj(u) {
			if hops[a.To] < 0 {
				hops[a.To] = hops[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return hops
}

// APSP computes all-pairs shortest path distances by running Dijkstra from
// every source in parallel. Memory is O(n²); intended for the evaluation
// harness at n up to a few thousand.
func APSP(g *Graph) [][]Dist {
	n := g.N()
	out := make([][]Dist, n)
	parallelFor(n, func(s int) {
		out[s] = Dijkstra(g, s).Dist
	})
	return out
}

// APSPHops computes, for every pair, the minimum hop count among shortest
// (by weight) paths. Row s is Dijkstra(g,s).Hops.
func APSPHops(g *Graph) [][]int {
	n := g.N()
	out := make([][]int, n)
	parallelFor(n, func(s int) {
		out[s] = Dijkstra(g, s).Hops
	})
	return out
}

// HopDiameter returns D = max over pairs of the hop distance (edge weights
// ignored). Returns -1 for a disconnected graph.
func HopDiameter(g *Graph) int {
	n := g.N()
	maxPer := make([]int, n)
	bad := make([]bool, n)
	parallelFor(n, func(s int) {
		hops := BFSHops(g, s)
		m := 0
		for _, h := range hops {
			if h < 0 {
				bad[s] = true
				return
			}
			if h > m {
				m = h
			}
		}
		maxPer[s] = m
	})
	d := 0
	for s := 0; s < n; s++ {
		if bad[s] {
			return -1
		}
		if maxPer[s] > d {
			d = maxPer[s]
		}
	}
	return d
}

// ShortestPathDiameter returns S = max over pairs u,v of h(u,v), where
// h(u,v) is the minimum number of hops among all minimum-weight u-v paths
// (Section 2.2). Returns -1 for a disconnected graph. D <= S always.
func ShortestPathDiameter(g *Graph) int {
	n := g.N()
	maxPer := make([]int, n)
	bad := make([]bool, n)
	parallelFor(n, func(s int) {
		r := Dijkstra(g, s)
		m := 0
		for _, h := range r.Hops {
			if h < 0 {
				bad[s] = true
				return
			}
			if h > m {
				m = h
			}
		}
		maxPer[s] = m
	})
	sd := 0
	for s := 0; s < n; s++ {
		if bad[s] {
			return -1
		}
		if maxPer[s] > sd {
			sd = maxPer[s]
		}
	}
	return sd
}

// WeightedDiameter returns the maximum finite distance, or Inf if the graph
// is disconnected.
func WeightedDiameter(g *Graph) Dist {
	n := g.N()
	maxPer := make([]Dist, n)
	parallelFor(n, func(s int) {
		r := Dijkstra(g, s)
		var m Dist
		for _, d := range r.Dist {
			if d == Inf {
				m = Inf
				break
			}
			if d > m {
				m = d
			}
		}
		maxPer[s] = m
	})
	var wd Dist
	for s := 0; s < n; s++ {
		if maxPer[s] == Inf {
			return Inf
		}
		if maxPer[s] > wd {
			wd = maxPer[s]
		}
	}
	return wd
}

// MultiSourceDijkstra computes, for every node, the distance to the nearest
// source and the identity of that source, with ties broken by smaller
// source ID. This is the centralized analogue of the "super node"
// Bellman-Ford of Lemma 4.5 and is used as its ground truth, and it is also
// how p_i(u) (the nearest A_i node) is defined throughout.
func MultiSourceDijkstra(g *Graph, sources []int) (dist []Dist, nearest []int) {
	n := g.N()
	dist = make([]Dist, n)
	nearest = make([]int, n)
	for i := 0; i < n; i++ {
		dist[i] = Inf
		nearest[i] = -1
	}
	h := &msHeap{}
	for _, s := range sources {
		if dist[s] == 0 && nearest[s] >= 0 && nearest[s] <= s {
			continue
		}
		dist[s] = 0
		nearest[s] = s
		heap.Push(h, msItem{node: s, dist: 0, src: s})
	}
	done := make([]bool, n)
	for h.Len() > 0 {
		it := heap.Pop(h).(msItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, a := range g.Adj(u) {
			nd := AddDist(it.dist, a.Weight)
			v := a.To
			if nd < dist[v] || (nd == dist[v] && it.src < nearest[v]) {
				dist[v] = nd
				nearest[v] = it.src
				heap.Push(h, msItem{node: v, dist: nd, src: it.src})
			}
		}
	}
	return dist, nearest
}

type msItem struct {
	node int
	dist Dist
	src  int
}

type msHeap []msItem

func (h msHeap) Len() int { return len(h) }
func (h msHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].node < h[j].node
}
func (h msHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msHeap) Push(x any)   { *h = append(*h, x.(msItem)) }
func (h *msHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// parallelFor runs f(i) for i in [0,n) on up to GOMAXPROCS workers.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= n {
			return 0, false
		}
		i := int(next)
		next++
		return i, true
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
