package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Generators for the network families exercised by the benchmark harness.
// All generators are deterministic given the seed, and all of them return
// connected graphs (generators that can produce disconnected samples
// augment the sample minimally, as noted per generator).

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// WeightFn assigns a weight to edge {u,v}. Generators take one so the same
// topology can be used unweighted (all-1) or with random weights.
type WeightFn func(r *rand.Rand, u, v int) Dist

// UnitWeights assigns weight 1 to every edge (unweighted network; S = D).
func UnitWeights() WeightFn {
	return func(_ *rand.Rand, _, _ int) Dist { return 1 }
}

// UniformWeights assigns integer weights uniformly in [lo, hi].
func UniformWeights(lo, hi Dist) WeightFn {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("graph: bad weight range [%d,%d]", lo, hi))
	}
	return func(r *rand.Rand, _, _ int) Dist {
		return lo + Dist(r.Int64N(int64(hi-lo+1)))
	}
}

// SkewedWeights returns weights 1 or heavy with probability pHeavy for the
// heavy value. Creates networks where the shortest-path diameter S is much
// larger than the hop diameter D (the regime motivating sketches; §2.1).
func SkewedWeights(heavy Dist, pHeavy float64) WeightFn {
	return func(r *rand.Rand, _, _ int) Dist {
		if r.Float64() < pHeavy {
			return heavy
		}
		return 1
	}
}

// Path returns the path 0-1-...-n-1.
func Path(n int, w WeightFn, seed uint64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, w(r, i, i+1))
	}
	return b.MustFreeze()
}

// Ring returns the cycle on n nodes (n >= 3).
func Ring(n int, w WeightFn, seed uint64) *Graph {
	if n < 3 {
		panic("graph: Ring needs n >= 3")
	}
	r := rng(seed)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.AddEdge(i, j, w(r, i, j))
	}
	return b.MustFreeze()
}

// Star returns the star with center 0 and leaves 1..n-1.
func Star(n int, w WeightFn, seed uint64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i, w(r, 0, i))
	}
	return b.MustFreeze()
}

// Complete returns K_n.
func Complete(n int, w WeightFn, seed uint64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j, w(r, i, j))
		}
	}
	return b.MustFreeze()
}

// Grid returns the rows x cols grid; node (i,j) has ID i*cols+j.
func Grid(rows, cols int, w WeightFn, seed uint64) *Graph {
	r := rng(seed)
	n := rows * cols
	b := NewBuilder(n)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				b.AddEdge(id(i, j), id(i, j+1), w(r, id(i, j), id(i, j+1)))
			}
			if i+1 < rows {
				b.AddEdge(id(i, j), id(i+1, j), w(r, id(i, j), id(i+1, j)))
			}
		}
	}
	return b.MustFreeze()
}

// Torus is Grid with wraparound edges (rows, cols >= 3).
func Torus(rows, cols int, w WeightFn, seed uint64) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols >= 3")
	}
	r := rng(seed)
	b := NewBuilder(rows * cols)
	id := func(i, j int) int { return (i%rows)*cols + (j % cols) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			b.AddEdge(id(i, j), id(i, j+1), w(r, id(i, j), id(i, j+1)))
			b.AddEdge(id(i, j), id(i+1, j), w(r, id(i, j), id(i+1, j)))
		}
	}
	return b.MustFreeze()
}

// HyperCube returns the d-dimensional hypercube on 2^d nodes.
func HyperCube(d int, w WeightFn, seed uint64) *Graph {
	if d < 1 || d > 20 {
		panic("graph: HyperCube needs 1 <= d <= 20")
	}
	r := rng(seed)
	n := 1 << d
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << bit)
			if u < v {
				b.AddEdge(u, v, w(r, u, v))
			}
		}
	}
	return b.MustFreeze()
}

// RandomTree returns a uniformly random labeled tree (via a random Prüfer-
// like attachment: node i attaches to a uniform node in [0,i)).
func RandomTree(n int, w WeightFn, seed uint64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		p := int(r.Int64N(int64(i)))
		b.AddEdge(p, i, w(r, p, i))
	}
	return b.MustFreeze()
}

// Caterpillar returns a path of length spine with leg leaves hanging off
// each spine node. Worst-case-ish family for shortest-path diameter.
func Caterpillar(spine, legs int, w WeightFn, seed uint64) *Graph {
	r := rng(seed)
	n := spine * (legs + 1)
	b := NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1, w(r, i, i+1))
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(i, next, w(r, i, next))
			next++
		}
	}
	return b.MustFreeze()
}

// ErdosRenyi returns G(n,p) conditioned on connectivity: the sample is
// augmented with a uniformly random spanning-tree skeleton so that every
// sample is connected (edges of the skeleton get weights from w too). This
// mirrors common practice in distributed-algorithms simulations and keeps
// the degree/expansion character of G(n,p) for p above the threshold.
func ErdosRenyi(n int, p float64, w WeightFn, seed uint64) *Graph {
	if p < 0 || p > 1 {
		panic("graph: ErdosRenyi needs p in [0,1]")
	}
	r := rng(seed)
	b := NewBuilder(n)
	// Random connected skeleton: random permutation chain attachment.
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[int(r.Int64N(int64(i)))], perm[i]
		b.AddEdge(u, v, w(r, u, v))
	}
	// Geometric skipping to sample G(n,p) in O(m) expected time.
	if p > 0 {
		logq := math.Log1p(-p)
		u, v := 0, 0
		for u < n {
			var skip int
			if p >= 1 {
				skip = 1
			} else {
				skip = 1 + int(math.Log(1-r.Float64())/logq)
			}
			v += skip
			for v >= n && u < n {
				v -= n - (u + 1)
				u++
				v += u + 1
			}
			if u < n && v < n && u != v {
				b.AddEdge(u, v, w(r, u, v))
			}
		}
	}
	return b.MustFreeze()
}

// RandomGeometric places n points uniformly in the unit square and connects
// points within Euclidean distance radius. Weight defaults to the scaled
// Euclidean distance (scale 1000, rounded up, min 1) unless w != nil.
// A nearest-neighbor chain over the x-sorted order is added to guarantee
// connectivity.
func RandomGeometric(n int, radius float64, w WeightFn, seed uint64) *Graph {
	r := rng(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	dist := func(i, j int) float64 {
		dx, dy := xs[i]-xs[j], ys[i]-ys[j]
		return math.Sqrt(dx*dx + dy*dy)
	}
	weight := func(i, j int) Dist {
		if w != nil {
			return w(r, i, j)
		}
		d := Dist(math.Ceil(dist(i, j) * 1000))
		if d < 1 {
			d = 1
		}
		return d
	}
	b := NewBuilder(n)
	// Grid bucketing for O(n) expected neighbor scan.
	cell := radius
	if cell <= 0 {
		cell = 1
	}
	cols := int(1/cell) + 1
	buckets := make(map[[2]int][]int)
	key := func(i int) [2]int {
		return [2]int{int(xs[i] / cell), int(ys[i] / cell)}
	}
	for i := 0; i < n; i++ {
		buckets[key(i)] = append(buckets[key(i)], i)
	}
	_ = cols
	for i := 0; i < n; i++ {
		k := key(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					if j > i && dist(i, j) <= radius {
						b.AddEdge(i, j, weight(i, j))
					}
				}
			}
		}
	}
	// Connectivity chain over x-sorted order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort by x; n is small in our runs
		j := i
		for j > 0 && xs[order[j-1]] > xs[order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	for i := 0; i+1 < n; i++ {
		b.AddEdge(order[i], order[i+1], weight(order[i], order[i+1]))
	}
	return b.MustFreeze()
}

// BarabasiAlbert returns a preferential-attachment graph: starts from a
// clique on m+1 nodes, then each new node attaches to m distinct existing
// nodes chosen proportionally to degree. Models P2P/web-like topologies.
func BarabasiAlbert(n, m int, w WeightFn, seed uint64) *Graph {
	if m < 1 || n < m+1 {
		panic("graph: BarabasiAlbert needs 1 <= m and n >= m+1")
	}
	r := rng(seed)
	b := NewBuilder(n)
	// Repeated-endpoints trick: targets chosen uniformly from the endpoint
	// multiset gives degree-proportional sampling.
	var endpoints []int
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			b.AddEdge(i, j, w(r, i, j))
			endpoints = append(endpoints, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			t := endpoints[r.Int64N(int64(len(endpoints)))]
			if t != v {
				chosen[t] = true
			}
		}
		targets := make([]int, 0, m)
		for t := range chosen {
			targets = append(targets, t)
		}
		sort.Ints(targets) // deterministic edge order for the weight RNG
		for _, t := range targets {
			b.AddEdge(v, t, w(r, v, t))
			endpoints = append(endpoints, v, t)
		}
	}
	return b.MustFreeze()
}

// WattsStrogatz returns a small-world graph: ring lattice where each node
// connects to its k/2 nearest neighbors on each side, with each lattice
// edge rewired with probability beta. The base ring is kept (only chords
// are rewired) so the result is always connected.
func WattsStrogatz(n, k int, beta float64, w WeightFn, seed uint64) *Graph {
	if k < 2 || k%2 != 0 || k >= n {
		panic("graph: WattsStrogatz needs even k with 2 <= k < n")
	}
	r := rng(seed)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			j := (i + d) % n
			if d > 1 && r.Float64() < beta {
				// Rewire chord to a uniform non-self target.
				for {
					t := int(r.Int64N(int64(n)))
					if t != i {
						j = t
						break
					}
				}
			}
			if i != j {
				b.AddEdge(i, j, w(r, i, j))
			}
		}
	}
	return b.MustFreeze()
}

// InternetLike returns a three-tier hierarchical topology modeled on
// AS-level structure, the setting of the paper's Internet motivation: a
// small densely meshed core, a middle tier where each node multi-homes to
// 2 core nodes and peers with some siblings, and stub leaves single- or
// dual-homed to the middle tier. Core links are fast (weight 1), middle
// links moderate, stub links slow — so shortest paths climb the hierarchy
// and the weighted distances are latency-like.
func InternetLike(n int, w WeightFn, seed uint64) *Graph {
	if n < 8 {
		panic("graph: InternetLike needs n >= 8")
	}
	r := rng(seed)
	coreN := n / 16
	if coreN < 3 {
		coreN = 3
	}
	midN := n / 4
	if midN < coreN {
		midN = coreN
	}
	b := NewBuilder(n)
	weight := func(u, v int, def Dist) Dist {
		if w != nil {
			return w(r, u, v)
		}
		return def
	}
	// Core: full mesh, weight 1.
	for i := 0; i < coreN; i++ {
		for j := i + 1; j < coreN; j++ {
			b.AddEdge(i, j, weight(i, j, 1))
		}
	}
	// Middle tier: nodes coreN..coreN+midN-1, each homed to 2 core nodes
	// and peered with one random sibling.
	midStart, midEnd := coreN, coreN+midN
	if midEnd > n {
		midEnd = n
	}
	for v := midStart; v < midEnd; v++ {
		c1 := int(r.Int64N(int64(coreN)))
		c2 := (c1 + 1 + int(r.Int64N(int64(coreN-1)))) % coreN
		b.AddEdge(v, c1, weight(v, c1, 3))
		b.AddEdge(v, c2, weight(v, c2, 3))
		if v > midStart {
			p := midStart + int(r.Int64N(int64(v-midStart)))
			b.AddEdge(v, p, weight(v, p, 2))
		}
	}
	// Stubs: the rest, each homed to 1-2 middle-tier nodes.
	for v := midEnd; v < n; v++ {
		m1 := midStart + int(r.Int64N(int64(midEnd-midStart)))
		b.AddEdge(v, m1, weight(v, m1, 8))
		if r.Float64() < 0.3 {
			m2 := midStart + int(r.Int64N(int64(midEnd-midStart)))
			if m2 != m1 {
				b.AddEdge(v, m2, weight(v, m2, 8))
			}
		}
	}
	return b.MustFreeze()
}

// LollipopPath returns a clique on cliqueN nodes with a path of pathN nodes
// attached — a classic high-S family when the path is heavy.
func LollipopPath(cliqueN, pathN int, w WeightFn, seed uint64) *Graph {
	r := rng(seed)
	n := cliqueN + pathN
	b := NewBuilder(n)
	for i := 0; i < cliqueN; i++ {
		for j := i + 1; j < cliqueN; j++ {
			b.AddEdge(i, j, w(r, i, j))
		}
	}
	prev := 0
	for i := cliqueN; i < n; i++ {
		b.AddEdge(prev, i, w(r, prev, i))
		prev = i
	}
	return b.MustFreeze()
}

// Family identifies a generator for table-driven experiments.
type Family string

// Families used throughout the benchmark harness.
const (
	FamilyER         Family = "erdos-renyi"
	FamilyGeometric  Family = "geometric"
	FamilyGrid       Family = "grid"
	FamilyRing       Family = "ring"
	FamilyTree       Family = "tree"
	FamilyBA         Family = "barabasi-albert"
	FamilySmallWorld Family = "small-world"
	FamilyHyperCube  Family = "hypercube"
	FamilyInternet   Family = "internet"
)

// Make generates a connected n-node graph of the given family with sensible
// default parameters, used by the experiment harness. Unknown families
// panic (experiment tables are static).
func Make(f Family, n int, w WeightFn, seed uint64) *Graph {
	if w == nil {
		w = UnitWeights()
	}
	switch f {
	case FamilyER:
		p := 2 * math.Log(float64(n)) / float64(n)
		return ErdosRenyi(n, p, w, seed)
	case FamilyGeometric:
		radius := 1.5 * math.Sqrt(math.Log(float64(n))/float64(n))
		return RandomGeometric(n, radius, w, seed)
	case FamilyGrid:
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 2 {
			side = 2
		}
		return Grid(side, (n+side-1)/side, w, seed)
	case FamilyRing:
		return Ring(n, w, seed)
	case FamilyTree:
		return RandomTree(n, w, seed)
	case FamilyBA:
		m := 3
		if n <= m {
			m = 1
		}
		return BarabasiAlbert(n, m, w, seed)
	case FamilySmallWorld:
		k := 4
		if n <= k {
			k = 2
		}
		return WattsStrogatz(n, k, 0.1, w, seed)
	case FamilyHyperCube:
		d := int(math.Round(math.Log2(float64(n))))
		if d < 1 {
			d = 1
		}
		return HyperCube(d, w, seed)
	case FamilyInternet:
		if n < 8 {
			n = 8
		}
		return InternetLike(n, nil, seed) // tiered default weights
	default:
		panic(fmt.Sprintf("graph: unknown family %q", f))
	}
}

// AllFamilies lists the families in canonical harness order.
func AllFamilies() []Family {
	return []Family{
		FamilyER, FamilyGeometric, FamilyGrid, FamilyRing,
		FamilyTree, FamilyBA, FamilySmallWorld, FamilyHyperCube,
		FamilyInternet,
	}
}
