// Package graph provides weighted undirected graphs, generators for the
// network families used in the evaluation, and exact shortest-path
// algorithms that serve as ground truth for the sketch constructions.
//
// Conventions shared by the whole repository:
//
//   - Nodes are dense integers 0..n-1 (the paper's round-robin scheduler
//     assumes V = {0..n-1}; see Section 3.2 of the paper).
//   - Edge weights are nonnegative int64 and are assumed polynomial in n,
//     so a distance always fits in one O(log n)-bit word.
//   - Infinity is represented by the sentinel Inf. Arithmetic on distances
//     must go through AddDist, which saturates at Inf instead of
//     overflowing.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Dist is a shortest-path distance. Weights are integral; the paper assumes
// weights polynomial in n so that a distance fits in a single CONGEST word.
type Dist = int64

// Inf is the "no path / undefined" distance sentinel (d(u, A_k) = ∞ in the
// paper). It is never produced by arithmetic: use AddDist to add distances.
const Inf Dist = math.MaxInt64

// AddDist returns a+b, saturating at Inf if either operand is Inf or the
// sum would overflow. All distance arithmetic in the repository uses this.
func AddDist(a, b Dist) Dist {
	if a == Inf || b == Inf {
		return Inf
	}
	if a > Inf-b {
		return Inf
	}
	return a + b
}

// Edge is an undirected weighted edge. Endpoints are kept ordered U < V for
// canonical representation; the graph stores each edge once.
type Edge struct {
	U, V   int
	Weight Dist
}

// Arc is one direction of an edge as seen from a node's adjacency list.
type Arc struct {
	To     int
	Weight Dist
}

// Graph is an immutable weighted undirected graph with dense node IDs
// 0..N()-1. Build one with a Builder or a generator; after Freeze the
// adjacency structure never changes, so it is safe for concurrent readers
// (the CONGEST simulator reads it from many goroutines).
type Graph struct {
	n     int
	adj   [][]Arc // adj[u] sorted by To
	edges []Edge  // canonical U<V, sorted
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the canonical edge list (U < V, sorted). Callers must not
// modify the returned slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Adj returns the adjacency list of u, sorted by neighbor ID. Callers must
// not modify the returned slice.
func (g *Graph) Adj(u int) []Arc { return g.adj[u] }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns the maximum degree over all nodes (0 for empty graphs).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeWeight(u, v)
	return ok
}

// EdgeWeight returns the weight of edge {u,v} if present.
func (g *Graph) EdgeWeight(u, v int) (Dist, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i].To >= v })
	if i < len(a) && a[i].To == v {
		return a[i].Weight, true
	}
	return 0, false
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() Dist {
	var s Dist
	for _, e := range g.edges {
		s = AddDist(s, e.Weight)
	}
	return s
}

// String implements fmt.Stringer with a short summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.M())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges keep the minimum weight (parallel edges are meaningless for
// shortest paths); self-loops are rejected.
type Builder struct {
	n     int
	w     map[[2]int]Dist
	errlt error
}

// NewBuilder creates a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, w: make(map[[2]int]Dist)}
}

// AddEdge records the undirected edge {u,v} with the given weight. If the
// edge was added before, the smaller weight wins. Errors are latched and
// reported by Freeze.
func (b *Builder) AddEdge(u, v int, weight Dist) {
	if b.errlt != nil {
		return
	}
	switch {
	case u < 0 || u >= b.n || v < 0 || v >= b.n:
		b.errlt = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
		return
	case u == v:
		b.errlt = fmt.Errorf("graph: self-loop at node %d", u)
		return
	case weight < 0:
		b.errlt = fmt.Errorf("graph: negative weight %d on edge (%d,%d)", weight, u, v)
		return
	case weight >= Inf:
		b.errlt = fmt.Errorf("graph: weight %d on edge (%d,%d) is the Inf sentinel", weight, u, v)
		return
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if old, ok := b.w[key]; !ok || weight < old {
		b.w[key] = weight
	}
}

// Freeze validates and returns the immutable graph.
func (b *Builder) Freeze() (*Graph, error) {
	if b.errlt != nil {
		return nil, b.errlt
	}
	g := &Graph{n: b.n, adj: make([][]Arc, b.n)}
	g.edges = make([]Edge, 0, len(b.w))
	deg := make([]int, b.n)
	for key, w := range b.w {
		g.edges = append(g.edges, Edge{U: key[0], V: key[1], Weight: w})
		deg[key[0]]++
		deg[key[1]]++
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	for u := 0; u < b.n; u++ {
		g.adj[u] = make([]Arc, 0, deg[u])
	}
	for _, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], Arc{To: e.V, Weight: e.Weight})
		g.adj[e.V] = append(g.adj[e.V], Arc{To: e.U, Weight: e.Weight})
	}
	for u := 0; u < b.n; u++ {
		a := g.adj[u]
		sort.Slice(a, func(i, j int) bool { return a[i].To < a[j].To })
	}
	return g, nil
}

// MustFreeze is Freeze for generators whose inputs are known valid.
func (b *Builder) MustFreeze() *Graph {
	g, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.Weight)
	}
	return b.Freeze()
}

// ErrDisconnected is returned by operations that require a connected graph.
var ErrDisconnected = errors.New("graph: not connected")

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.adj[u] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == g.n
}

// Components returns the connected components as slices of node IDs.
func (g *Graph) Components() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(out)
		var nodes []int
		stack := []int{s}
		comp[s] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nodes = append(nodes, u)
			for _, a := range g.adj[u] {
				if comp[a.To] < 0 {
					comp[a.To] = id
					stack = append(stack, a.To)
				}
			}
		}
		sort.Ints(nodes)
		out = append(out, nodes)
	}
	return out
}

// Validate checks internal invariants (used by property tests).
func (g *Graph) Validate() error {
	for u := 0; u < g.n; u++ {
		prev := -1
		for _, a := range g.adj[u] {
			if a.To <= prev {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			prev = a.To
			if a.To == u {
				return fmt.Errorf("graph: self loop at %d", u)
			}
			w, ok := g.EdgeWeight(a.To, u)
			if !ok || w != a.Weight {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, a.To)
			}
		}
	}
	deg2 := 0
	for u := 0; u < g.n; u++ {
		deg2 += len(g.adj[u])
	}
	if deg2 != 2*len(g.edges) {
		return fmt.Errorf("graph: degree sum %d != 2m=%d", deg2, 2*len(g.edges))
	}
	return nil
}
