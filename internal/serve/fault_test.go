package serve

// The fault-injection suite for the serving layer: overload against the
// admission gate, deadline expiry mid-batch, injected handler panics,
// slowloris connections, shutdown during an update storm (run under
// -race in CI), and serving an envelope whose lazily loaded label is
// corrupt behind a valid checksum. The tests reach the failure paths
// through the queryHook seam and real listeners — no mocks of net/http.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distsketch"
)

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// TestOverloadGateSheds fills every admission-gate slot with requests
// parked inside the handler, then proves: excess load is shed instantly
// with 503 + Retry-After, the probes and /stats still answer (an
// overloaded server is not a dead server), and the parked requests
// complete normally once unblocked.
func TestOverloadGateSheds(t *testing.T) {
	set, _ := buildSet(t)
	srv, err := New(set, Options{MaxInFlight: 2, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv.queryHook = func() { entered <- struct{}{}; <-release }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"pairs":[{"u":0,"v":1}]}`))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	<-entered
	<-entered // both slots held inside the handler

	resp, err := http.Get(ts.URL + "/query?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request over capacity: status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("shed response Retry-After = %q, want \"1\"", got)
	}
	if !strings.Contains(string(body), "capacity") {
		t.Errorf("shed error should say the server is at capacity: %q", body)
	}

	// Probes and observability bypass the gate.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("/healthz under overload: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Errorf("/readyz under overload: status %d", code)
	}
	var st StatsReply
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Errorf("/stats under overload: status %d", code)
	} else if st.RequestsShed < 1 {
		t.Errorf("requests_shed = %d, want >= 1", st.RequestsShed)
	}

	close(release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("parked request finished with %d, want 200", code)
		}
	}
	if c := srv.Counters(); c.Shed < 1 {
		t.Errorf("Counters().Shed = %d, want >= 1", c.Shed)
	}
}

// TestOverloadDeadlineCutsBatch drives batches into an expired
// per-request deadline: an already-expired context is refused at the
// first pair, a deadline that dies mid-batch cuts execution at the next
// poll, and a queued /update-edge whose client stopped waiting is
// refused before the clone-repair-swap is paid for.
func TestOverloadDeadlineCutsBatch(t *testing.T) {
	set, g := buildSet(t)

	// An expired deadline is caught at pair 0 — no work done.
	instant, err := New(set, Options{RequestTimeout: time.Nanosecond, Graph: g, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(instant.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"pairs":[{"u":0,"v":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired batch: status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Error("deadline response missing Retry-After")
	}
	if !strings.Contains(string(body), "deadline exceeded") {
		t.Errorf("deadline error text: %q", body)
	}

	// An update whose deadline expired while queued is refused after the
	// lock, before the O(m) reweigh.
	e := g.Edges()[0]
	if code := postJSON(t, ts.URL+"/update-edge",
		fmt.Sprintf(`{"u":%d,"v":%d,"weight":1}`, e.U, e.V), nil); code != http.StatusServiceUnavailable {
		t.Errorf("expired update-edge: status %d, want 503", code)
	}
	if c := instant.Counters(); c.DeadlineExceeded < 2 {
		t.Errorf("DeadlineExceeded = %d, want >= 2", c.DeadlineExceeded)
	}

	// A deadline that expires mid-batch cuts off at the next 64-pair
	// poll: each pair takes >=2ms via the hook, so by pair 64 at least
	// 128ms have passed against a 30ms budget.
	slow, err := New(set, Options{RequestTimeout: 30 * time.Millisecond, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	slow.queryHook = func() { time.Sleep(2 * time.Millisecond) }
	ts2 := httptest.NewServer(slow.Handler())
	defer ts2.Close()
	var sb strings.Builder
	sb.WriteString(`{"pairs":[`)
	for i := 0; i < 65; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"u":%d,"v":%d}`, i%set.N(), (i+1)%set.N())
	}
	sb.WriteString("]}")
	resp, err = http.Post(ts2.URL+"/query", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-batch expiry: status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "64 of 65") {
		t.Errorf("mid-batch expiry should report where it stopped: %q", body)
	}
	if c := slow.Counters(); c.DeadlineExceeded != 1 {
		t.Errorf("slow server DeadlineExceeded = %d, want 1", c.DeadlineExceeded)
	}
}

// TestFaultPanicRecovery injects panics into the query path: a panic
// before the response starts becomes a clean logged 500 and the server
// keeps serving; a panic after bytes are on the wire aborts the
// connection so the client cannot mistake a truncated body for success.
func TestFaultPanicRecovery(t *testing.T) {
	set, _ := buildSet(t)
	var inject atomic.Bool
	srv, err := New(set, Options{Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	srv.queryHook = func() {
		if inject.Load() {
			panic("injected fault")
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inject.Store(true)
	var er errorReply
	if code := postJSON(t, ts.URL+"/query", `{"pairs":[{"u":0,"v":1}]}`, &er); code != http.StatusInternalServerError {
		t.Fatalf("panicking batch: status %d, want 500", code)
	}
	if er.Error != "internal error" {
		t.Errorf("panic response leaked detail: %q", er.Error)
	}

	// The process survives: the very next request is served normally.
	inject.Store(false)
	var reply BatchReply
	if code := postJSON(t, ts.URL+"/query", `{"pairs":[{"u":0,"v":1}]}`, &reply); code != http.StatusOK {
		t.Fatalf("request after recovered panic: status %d, want 200", code)
	}
	if c := srv.Counters(); c.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", c.PanicsRecovered)
	}

	// Mid-body panic: enough bytes are written to force the response out,
	// then the handler dies. The connection must be aborted — the body
	// read fails — rather than delivered short under a 200.
	srv2, err := New(set, Options{Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	late := srv2.withRecover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("x"), 64<<10)) // past any write buffer
		panic("late fault")
	}))
	ts2 := httptest.NewServer(late)
	defer ts2.Close()
	resp, err := http.Get(ts2.URL)
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Error("mid-body panic delivered a complete-looking response")
		}
	}
	if c := srv2.Counters(); c.PanicsRecovered != 1 {
		t.Errorf("mid-body PanicsRecovered = %d, want 1", c.PanicsRecovered)
	}
}

// TestOverloadSlowloris dribbles half a request header and stops: the
// server must cut the connection at ReadHeaderTimeout instead of
// letting the client pin it forever, and must keep serving well-formed
// requests while doing so.
func TestOverloadSlowloris(t *testing.T) {
	set, _ := buildSet(t)
	srv, err := New(set, Options{Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 100 * time.Millisecond}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request, then silence.
	if _, err := conn.Write([]byte("GET /query?u=0&v=1 HTTP/1.1\r\nHost: x\r\nX-Dribble: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	// The server either closes outright (EOF) or answers 408 and closes;
	// both mean the dribbled connection did not get to squat.
	buf := make([]byte, 1024)
	for {
		_, rerr := conn.Read(buf)
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			t.Fatalf("waiting for the server to drop the connection: %v", rerr)
		}
	}
	if waited := time.Since(start); waited > 8*time.Second {
		t.Errorf("connection survived %v past the 100ms header deadline", waited)
	}

	// A real client is unaffected.
	resp, err := http.Get(base + "/query?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("well-formed request during slowloris: status %d", resp.StatusCode)
	}
}

// TestFaultShutdownDuringUpdateStorm runs graceful shutdown while an
// update storm and concurrent readers hammer a real listener (CI runs
// this under -race): readiness flips to 503 the moment the drain
// begins while queries still answer, the drain completes within its
// grace, and the final served set is exactly the in-process replay of
// however many updates were acknowledged — no half-applied repair can
// survive the shutdown.
func TestFaultShutdownDuringUpdateStorm(t *testing.T) {
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 64, 20, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const maxUpdates = 12
	edge := g.Edges()[3]
	if edge.Weight <= maxUpdates {
		t.Fatalf("edge %v too light for %d decreases", edge, maxUpdates)
	}

	srv, err := New(set, Options{Graph: g, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{}}
	defer client.CloseIdleConnections()

	// The writer storms strictly decreasing weights on one edge and
	// counts acknowledged (200) repairs; it stops at the first refusal,
	// which the shutdown will eventually cause.
	var acked atomic.Int64
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for k := 1; k <= maxUpdates; k++ {
			body := fmt.Sprintf(`{"u":%d,"v":%d,"weight":%d}`, edge.U, edge.V, edge.Weight-distsketch.Dist(k))
			resp, err := client.Post(base+"/update-edge", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			acked.Store(int64(k))
		}
	}()

	// Readers hammer queries until the listener goes away; every
	// delivered response must be a 200.
	var readerErrs atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				u, v := (r*31+i)%set.N(), (i*7)%set.N()
				resp, err := client.Get(fmt.Sprintf("%s/query?u=%d&v=%d", base, u, v))
				if err != nil {
					return // the listener is gone; the storm is over
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					readerErrs.Add(1)
					return
				}
			}
		}(r)
	}

	// Let the storm get going, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for acked.Load() < 3 && time.Now().Before(deadline) {
		select {
		case <-writerDone:
			deadline = time.Now() // writer finished early; proceed
		case <-time.After(time.Millisecond):
		}
	}
	srv.BeginDrain()

	// Readiness refuses while queries still answer: the load balancer is
	// told to go away, the routed clients are not.
	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/readyz drain response missing Retry-After")
	}
	if code, _ := func() (int, error) {
		r2, err := client.Get(base + "/query?u=0&v=1")
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		return r2.StatusCode, nil
	}(); code != http.StatusOK {
		t.Errorf("query during drain: status %d, want 200", code)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown did not complete within grace: %v", err)
	}
	<-writerDone
	wg.Wait()
	if n := readerErrs.Load(); n != 0 {
		t.Errorf("%d reader requests got non-200 responses during the storm", n)
	}

	// The served set equals the in-process replay of exactly the
	// acknowledged updates — an interrupted repair either committed (and
	// was acknowledged) or vanished.
	S := int(acked.Load())
	replica := set.Clone()
	curG := g
	for k := 1; k <= S; k++ {
		next, err := reweigh(curG, edge.U, edge.V, edge.Weight-distsketch.Dist(k))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := replica.UpdateEdge(next, edge.U, edge.V); err != nil {
			t.Fatalf("replica update %d: %v", k, err)
		}
		curG = next
	}
	final := srv.Set()
	for u := 0; u < set.N(); u += 3 {
		for v := u; v < set.N(); v += 7 {
			if got, want := final.Query(u, v), replica.Query(u, v); got != want {
				t.Fatalf("after %d acked updates, served estimate (%d,%d) = %d, want %d", S, u, v, got, want)
			}
		}
	}
	if c := srv.Counters(); c.PanicsRecovered != 0 {
		t.Errorf("storm recovered %d panics, want 0", c.PanicsRecovered)
	}
	if !srv.Draining() {
		t.Error("Draining() = false after BeginDrain")
	}
}

// TestFaultShutdownMidBatchRepair parks a batch repair at the instant
// before its commit (the repairHook "swap" seam), then drains and — in
// the cancel variant — abandons the client mid-flight. The invariants:
// while the repair is in flight the served set is still pointer- and
// byte-identical to the pre-batch set (readers never see a torn state),
// and after shutdown the live set equals the full-batch replay exactly —
// the batch committed whole or not at all. Runs for every sketch kind:
// all four repair through the same clone-repair-verify-swap pipeline.
func TestFaultShutdownMidBatchRepair(t *testing.T) {
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 48, 10, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Six decreases spread across the graph, as one array-body batch.
	repl := map[[2]int]distsketch.Dist{}
	var parts []string
	var changes []distsketch.EdgeChange
	for i := 0; len(parts) < 6 && i < g.M(); i += g.M() / 7 {
		e := g.Edges()[i]
		key := [2]int{e.U, e.V}
		if _, dup := repl[key]; dup || e.Weight < 2 {
			continue
		}
		repl[key] = e.Weight / 2
		parts = append(parts, fmt.Sprintf(`{"u":%d,"v":%d,"weight":%d}`, e.U, e.V, e.Weight/2))
		changes = append(changes, distsketch.EdgeChange{U: e.U, V: e.V, PrevWeight: e.Weight})
	}
	if len(parts) < 3 {
		t.Fatalf("test graph yielded only %d usable changes", len(parts))
	}
	body := "[" + strings.Join(parts, ",") + "]"
	ng, err := reweighAll(g, repl)
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range []distsketch.Kind{distsketch.KindTZ, distsketch.KindLandmark, distsketch.KindCDG, distsketch.KindGraceful} {
		for _, cancelClient := range []bool{false, true} {
			name := string(kind)
			if cancelClient {
				name += "/client-gone"
			}
			t.Run(name, func(t *testing.T) {
				set, err := distsketch.Build(g, distsketch.Options{Kind: kind, K: 2, Eps: 0.25, Seed: 11})
				if err != nil {
					t.Fatal(err)
				}
				srv, err := New(set, Options{Graph: g, Logger: discardLogger()})
				if err != nil {
					t.Fatal(err)
				}
				entered := make(chan struct{})
				release := make(chan struct{})
				srv.repairHook = func(stage string) {
					if stage == "swap" {
						close(entered)
						<-release
					}
				}
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				hs := &http.Server{Handler: srv.Handler()}
				go hs.Serve(ln)
				base := "http://" + ln.Addr().String()

				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				done := make(chan int, 1)
				go func() {
					req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/update-edge", strings.NewReader(body))
					if err != nil {
						done <- -1
						return
					}
					req.Header.Set("Content-Type", "application/json")
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						done <- 0 // canceled mid-flight
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					done <- resp.StatusCode
				}()

				<-entered
				// Repair finished, commit pending: readers still see the
				// pre-batch set, byte for byte.
				if srv.Set() != set {
					t.Fatal("served set swapped before the commit point")
				}
				for u := 0; u < set.N(); u++ {
					if !bytes.Equal(srv.Set().SketchBytes(u), set.SketchBytes(u)) {
						t.Fatalf("node %d: served bytes changed mid-repair", u)
					}
				}
				srv.BeginDrain()
				if cancelClient {
					cancel() // the client walks away; the repair must still commit whole
				}
				close(release)

				sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer scancel()
				if err := hs.Shutdown(sctx); err != nil {
					t.Fatalf("graceful shutdown did not complete: %v", err)
				}
				code := <-done
				if !cancelClient && code != http.StatusOK {
					t.Fatalf("batch update: status %d, want 200", code)
				}

				// The live set is the full-batch replay exactly: the swap is
				// atomic, so an interrupted batch commits whole or vanishes —
				// here it had passed verification, so it committed.
				replica := set.Clone()
				if _, err := replica.UpdateEdges(ng, changes); err != nil {
					t.Fatalf("replica batch: %v", err)
				}
				final := srv.Set()
				for u := 0; u < set.N(); u++ {
					if !bytes.Equal(final.SketchBytes(u), replica.SketchBytes(u)) {
						t.Fatalf("node %d: live set differs from full-batch replay after shutdown", u)
					}
				}
				if c := srv.Counters(); c.Updates != 1 || c.PanicsRecovered != 0 {
					t.Errorf("counters after storm: %d updates / %d panics, want 1 / 0", c.Updates, c.PanicsRecovered)
				}
			})
		}
	}
}

// reCRCEnv recomputes the envelope checksum after a deliberate payload
// mutation (envelope layout: 6-byte magic, version byte, uvarint
// payload length, payload, crc32-IEEE little-endian).
func reCRCEnv(t *testing.T, env []byte) []byte {
	t.Helper()
	rest := env[7:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 || len(rest) < n+int(plen)+4 {
		t.Fatal("bad envelope framing")
	}
	out := bytes.Clone(env)
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(rest[n:n+int(plen)]))
	return out
}

// corruptNode0Envelope serializes the set as a version-2 envelope and
// damages node 0's blob behind a recomputed (valid) checksum, returning
// a freshly loaded lazy set whose first touch of node 0 must fail.
func corruptNode0Envelope(t *testing.T, set *distsketch.SketchSet) *distsketch.SketchSet {
	t.Helper()
	var buf bytes.Buffer
	if _, err := set.WriteToVersion(&buf, distsketch.SetVersion2); err != nil {
		t.Fatal(err)
	}
	env := buf.Bytes()
	plen, n := binary.Uvarint(env[7:])
	pstart := 7 + n
	// Try damaging each payload byte until one yields an envelope that
	// loads (the directory scan passes) but whose node-0 decode fails.
	for i := pstart; i < pstart+int(plen); i++ {
		for _, b := range []byte{0x7f, 0xff} {
			if env[i] == b {
				continue
			}
			mod := bytes.Clone(env)
			mod[i] = b
			fixed := reCRCEnv(t, mod)
			cand, err := distsketch.ReadSketchSet(bytes.NewReader(fixed))
			if err != nil {
				continue
			}
			var cl *distsketch.ErrCorruptLabel
			if _, qerr := cand.QueryChecked(0, 1); errors.As(qerr, &cl) && cl.Node == 0 {
				fresh, err := distsketch.ReadSketchSet(bytes.NewReader(fixed))
				if err != nil {
					t.Fatal(err)
				}
				return fresh
			}
		}
	}
	t.Fatal("no byte mutation produced a load-valid, decode-corrupt envelope")
	return nil
}

// TestFaultCorruptLabelServing serves an envelope whose node-0 label is
// corrupt behind a valid checksum: queries touching it answer 500 with
// node and offset context, batch entries fail individually while the
// batch succeeds, /stats counts decode_failures, and a ProbeDecode
// readiness probe refuses traffic up front.
func TestFaultCorruptLabelServing(t *testing.T) {
	set, _ := buildSet(t)
	lazy := corruptNode0Envelope(t, set)
	srv, err := New(lazy, Options{ProbeDecode: true, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The decode probe fails before any traffic is routed.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz with corrupt node 0: status %d, want 503", resp.StatusCode)
	}

	var er errorReply
	resp, err = http.Get(ts.URL + "/query?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	if jerr := json.NewDecoder(resp.Body).Decode(&er); jerr != nil {
		t.Fatal(jerr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("query on corrupt label: status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(er.Error, "node 0") || !strings.Contains(er.Error, "byte") {
		t.Errorf("corrupt-label error should name the node and offset: %q", er.Error)
	}

	// A batch containing the corrupt node fails only that entry.
	var reply BatchReply
	if code := postJSON(t, ts.URL+"/query", `{"pairs":[{"u":0,"v":1},{"u":1,"v":2}]}`, &reply); code != http.StatusOK {
		t.Fatalf("batch with corrupt entry: status %d, want 200", code)
	}
	if reply.Results[0].Error == "" || reply.Results[0].Estimate != nil {
		t.Errorf("corrupt entry should carry a per-entry error: %+v", reply.Results[0])
	}
	if reply.Results[1].Error != "" || reply.Results[1].Estimate == nil {
		t.Errorf("healthy entry damaged by its neighbor: %+v", reply.Results[1])
	}

	var st StatsReply
	getJSON(t, ts.URL+"/stats", &st)
	if st.DecodeFailures < 3 { // probe + single query + batch entry
		t.Errorf("decode_failures = %d, want >= 3", st.DecodeFailures)
	}
}
