package serve

// Replicated shard routing: the machinery that turns the router's one
// base URL per node range into a self-healing replica set per node
// range.
//
//   - Every upstream call gets a per-attempt timeout and is retried
//     with jittered exponential backoff on the next candidate replica;
//     only replica faults (connection errors, timeouts, 5xx) retry —
//     an answer the upstream produced deliberately (4xx) would repeat
//     identically on a byte-identical replica.
//   - Slow reads are hedged: when the primary attempt has not answered
//     within the hedge delay, a second replica is raced against it,
//     the first answer wins, and the loser's request is canceled.
//   - A background prober re-polls every replica's /healthz and /stats:
//     consecutive failures eject a replica from the candidate rotation
//     (live traffic ejects the same way), consecutive successes
//     reinstate it, and a range that disagrees with the routing map
//     triggers a live map refresh — shards can be restarted or
//     re-split under the router without a router restart.
//
// Health state lives on persistent *replica values keyed by base URL,
// so ejections and counters survive map refreshes; the routing map
// itself is an immutable snapshot behind an atomic pointer, so a
// refresh never tears an in-flight request's view of the world.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distsketch"
)

// replica is the persistent per-upstream health record. One exists per
// configured base URL for the router's lifetime; shard-map refreshes
// re-link it into new groups rather than resetting it.
type replica struct {
	base string

	mu          sync.Mutex
	healthy     bool
	consecFails int
	consecOKs   int

	failures  atomic.Int64 // failed attempts charged to this replica
	ejections atomic.Int64 // healthy -> ejected transitions
}

func (rep *replica) isHealthy() bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.healthy
}

// markFailure charges a replica fault and ejects the replica once it
// has failed failThreshold times in a row.
func (rt *Router) markFailure(rep *replica) {
	rep.failures.Add(1)
	rep.mu.Lock()
	rep.consecOKs = 0
	rep.consecFails++
	eject := rep.healthy && rep.consecFails >= rt.failThreshold
	if eject {
		rep.healthy = false
	}
	rep.mu.Unlock()
	if eject {
		rep.ejections.Add(1)
		rt.logger.Printf("serve: router ejecting replica %s after %d consecutive failures", rep.base, rt.failThreshold)
	}
}

// markSuccess resets the failure streak and reinstates an ejected
// replica after reinstateAfter consecutive successes (probe or live
// traffic — a last-resort request that succeeds is evidence too).
func (rt *Router) markSuccess(rep *replica) {
	rep.mu.Lock()
	rep.consecFails = 0
	rep.consecOKs++
	reinstate := !rep.healthy && rep.consecOKs >= rt.reinstateAfter
	if reinstate {
		rep.healthy = true
	}
	rep.mu.Unlock()
	if reinstate {
		rt.logger.Printf("serve: router reinstating replica %s after %d consecutive successes", rep.base, rt.reinstateAfter)
	}
}

// replicaGroup is one node range's replica set inside a shard-map
// snapshot. The replicas themselves are shared with other snapshots.
type replicaGroup struct {
	rng      distsketch.ShardRange
	replicas []*replica
	// next rotates the starting candidate so load spreads across the
	// group's healthy replicas instead of hammering the first one.
	next atomic.Uint64
}

// candidates returns the group's replicas in attempt order: healthy
// ones first (rotated for load spread), ejected ones after them as a
// last resort — a group whose every replica is ejected still gets
// attempts, so a wrongly ejected fleet heals through traffic instead
// of being unreachable forever.
func (g *replicaGroup) candidates() []*replica {
	if len(g.replicas) == 1 {
		return g.replicas
	}
	start := int(g.next.Add(1)-1) % len(g.replicas)
	healthy := make([]*replica, 0, len(g.replicas))
	var down []*replica
	for i := range g.replicas {
		rep := g.replicas[(start+i)%len(g.replicas)]
		if rep.isHealthy() {
			healthy = append(healthy, rep)
		} else {
			down = append(down, rep)
		}
	}
	return append(healthy, down...)
}

// shardMap is one immutable routing-table snapshot: groups sorted by
// Range.Lo, tiling [0, total). Requests load it once and route every
// pair of the request against the same snapshot.
type shardMap struct {
	groups []*replicaGroup
	total  int
}

// groupOf returns the group owning global node u (u must be validated
// against total first).
func (m *shardMap) groupOf(u int) *replicaGroup {
	i := sort.Search(len(m.groups), func(i int) bool { return m.groups[i].rng.Hi > u })
	return m.groups[i]
}

// sameRanges reports whether two snapshots route identically (same
// group ranges in the same order; replica health is not compared).
func (m *shardMap) sameRanges(o *shardMap) bool {
	if o == nil || m.total != o.total || len(m.groups) != len(o.groups) {
		return false
	}
	for i := range m.groups {
		if m.groups[i].rng != o.groups[i].rng {
			return false
		}
	}
	return true
}

// buildShardMap validates that the groups tile one id space exactly —
// every node owned by exactly one group — and returns the sorted
// snapshot. Groups may be given in any order.
func buildShardMap(groups []*replicaGroup) (*shardMap, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one shard")
	}
	sorted := append([]*replicaGroup(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].rng.Lo < sorted[j].rng.Lo })
	want := 0
	for i, g := range sorted {
		if len(g.replicas) == 0 {
			return nil, fmt.Errorf("serve: shard %d has no replicas", i)
		}
		if g.rng.Lo != want {
			return nil, fmt.Errorf("serve: shard ranges do not tile the id space: %s does not start at %d", g.rng, want)
		}
		if g.rng.Hi <= g.rng.Lo {
			return nil, fmt.Errorf("serve: shard %d range %s is empty", i, g.rng)
		}
		want = g.rng.Hi
	}
	return &shardMap{groups: sorted, total: want}, nil
}

// upstreamFault marks an attempt failure that is the contacted
// replica's fault — a connection error, a per-attempt timeout, or a
// 5xx answer. Faults count against the replica's health and retry on
// the next candidate; every other error is terminal for the call.
type upstreamFault struct{ err error }

func (f *upstreamFault) Error() string { return f.err.Error() }
func (f *upstreamFault) Unwrap() error { return f.err }

func faultf(format string, args ...any) error {
	return &upstreamFault{fmt.Errorf(format, args...)}
}

func isFault(err error) bool {
	var f *upstreamFault
	return errors.As(err, &f)
}

// attemptOne runs one upstream call against one replica under the
// per-attempt timeout, charging the outcome to the replica's health
// record. An attempt canceled from outside (a hedge race already won,
// or the whole request gone) charges nothing: a canceled loser is not
// a failing replica.
func attemptOne[T any](rt *Router, ctx context.Context, rep *replica, call func(ctx context.Context, base string) (T, error)) (T, error) {
	actx, cancel := rt.attemptCtx(ctx)
	defer cancel()
	v, err := call(actx, rep.base)
	if err == nil {
		rt.markSuccess(rep)
		return v, nil
	}
	if isFault(err) {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			return v, err
		}
		rt.upstreamErrors.Add(1)
		rt.markFailure(rep)
		err = fmt.Errorf("%s: %w", rep.base, err)
	}
	return v, err
}

// attemptCtx derives the per-attempt context: bounded by the attempt
// timeout when one is configured, the parent alone otherwise.
func (rt *Router) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if rt.attemptTimeout > 0 {
		return context.WithTimeout(ctx, rt.attemptTimeout)
	}
	return context.WithCancel(ctx)
}

// backoffDelay is the jittered exponential backoff before retry
// attempt n (0-based): base<<n plus up to 50% jitter, capped at 1s.
func (rt *Router) backoffDelay(n int) time.Duration {
	if rt.retryBackoff <= 0 {
		return 0
	}
	d := rt.retryBackoff << n
	if d > time.Second {
		d = time.Second
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// doReplicated resolves one upstream call against a replica group: a
// hedged first wave when hedging is enabled and a second replica
// exists, then sequential retries with jittered exponential backoff
// over the remaining candidates (cycling, so even a single-replica
// group gets its retry budget). Only replica faults retry; the first
// terminal answer wins immediately.
func doReplicated[T any](rt *Router, ctx context.Context, g *replicaGroup, call func(ctx context.Context, base string) (T, error)) (T, error) {
	var zero T
	cands := g.candidates()
	start := 0
	var lastErr error
	if rt.hedgeDelay > 0 && len(cands) >= 2 {
		v, err, launched := hedgedFirst(rt, ctx, cands, call)
		if err == nil {
			return v, nil
		}
		if !isFault(err) {
			return zero, err
		}
		lastErr = err
		start = launched
	}
	for i := start; i < rt.maxAttempts; i++ {
		if i > 0 {
			rt.retries.Add(1)
			select {
			case <-ctx.Done():
				return zero, faultf("waiting to retry shard %s: %w", g.rng, ctx.Err())
			case <-time.After(rt.backoffDelay(i - 1)):
			}
		}
		v, err := attemptOne(rt, ctx, cands[i%len(cands)], call)
		if err == nil {
			return v, nil
		}
		if !isFault(err) {
			return zero, err
		}
		lastErr = err
	}
	return zero, fmt.Errorf("shard %s: all %d attempts failed: %w", g.rng, rt.maxAttempts, lastErr)
}

// hedgedFirst races the first candidate against the second: the hedge
// launches when the primary is still silent at the hedge delay (or
// immediately, as a plain retry, when the primary faults first). The
// first success cancels the loser. Returns how many attempts were
// consumed so the retry loop continues after them.
func hedgedFirst[T any](rt *Router, ctx context.Context, cands []*replica, call func(ctx context.Context, base string) (T, error)) (T, error, int) {
	var zero T
	type attemptResult struct {
		v     T
		err   error
		hedge bool
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attemptResult, 2)
	run := func(rep *replica, hedge bool) {
		v, err := attemptOne(rt, cctx, rep, call)
		ch <- attemptResult{v: v, err: err, hedge: hedge}
	}
	go run(cands[0], false)
	timer := time.NewTimer(rt.hedgeDelay)
	defer timer.Stop()
	launched := 1
	var lastErr error
	for got := 0; got < launched; {
		select {
		case <-timer.C:
			if launched == 1 {
				rt.hedgesFired.Add(1)
				launched = 2
				go run(cands[1], true)
			}
		case res := <-ch:
			got++
			if res.err == nil {
				if res.hedge {
					rt.hedgesWon.Add(1)
				}
				cancel() // the loser's request is torn down, not abandoned
				return res.v, nil, launched
			}
			if !isFault(res.err) {
				cancel()
				return zero, res.err, launched
			}
			lastErr = res.err
			if launched == 1 {
				// The primary faulted before the hedge delay: the second
				// replica is now a plain retry, not a hedge — its win must
				// not count as a hedge win.
				rt.retries.Add(1)
				launched = 2
				go run(cands[1], false)
			}
		}
	}
	return zero, lastErr, launched
}

// startProber launches the background health prober: every interval it
// re-polls each replica's /healthz and /stats, ejecting and
// reinstating through the same health accounting live traffic uses,
// and refreshes the shard map when any healthy replica reports a node
// range that disagrees with the current map.
func (rt *Router) startProber(interval time.Duration) {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-rt.ctx.Done():
				return
			case <-ticker.C:
				rt.probeOnce()
			}
		}
	}()
}

// probeOnce is one prober sweep over the current map's replicas.
func (rt *Router) probeOnce() {
	m := rt.smap.Load()
	stale := false
	for _, g := range m.groups {
		for _, rep := range g.replicas {
			rng, ok := rt.probeReplica(rep)
			if !ok {
				continue
			}
			if rng != g.rng {
				stale = true
			}
		}
	}
	rt.probes.Add(1)
	if stale {
		if err := rt.RefreshShardMap(rt.ctx); err != nil && rt.ctx.Err() == nil {
			rt.logger.Printf("serve: router shard-map refresh failed: %v", err)
		}
	}
}

// probeReplica checks one replica's liveness (/healthz) and, when
// alive, learns its current node range (/stats). Both outcomes feed
// the replica's health streaks.
func (rt *Router) probeReplica(rep *replica) (distsketch.ShardRange, bool) {
	actx, cancel := rt.attemptCtx(rt.ctx)
	defer cancel()
	if err := getOK(actx, rt.client, rep.base+"/healthz"); err != nil {
		rt.markFailure(rep)
		return distsketch.ShardRange{}, false
	}
	stats, err := fetchUpstreamStats(actx, rt.client, rep.base)
	if err != nil {
		rt.markFailure(rep)
		return distsketch.ShardRange{}, false
	}
	rt.markSuccess(rep)
	return rangeOfStats(stats), true
}

// getOK performs a GET and demands a 200.
func getOK(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s answered %d", url, resp.StatusCode)
	}
	return nil
}

// kickRefresh schedules one asynchronous shard-map refresh, coalescing
// concurrent kicks (a batch hitting a stale map produces one 421 per
// pair; one refresh fixes all of them).
func (rt *Router) kickRefresh() {
	if !rt.refreshing.CompareAndSwap(false, true) {
		return
	}
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		defer rt.refreshing.Store(false)
		ctx, cancel := context.WithTimeout(rt.ctx, 10*time.Second)
		defer cancel()
		if err := rt.RefreshShardMap(ctx); err != nil && rt.ctx.Err() == nil {
			rt.logger.Printf("serve: router stale-map refresh failed: %v", err)
		}
	}()
}

// RefreshShardMap re-discovers every configured replica group's node
// range from the fleet's /stats and atomically swaps in the rebuilt
// routing map, so shards can be restarted or re-split under a live
// router. Within a group the reachable replicas must agree on range
// and envelope checksum; a group whose every replica is unreachable,
// or a rebuilt map that does not tile the id space (the fleet caught
// mid-restart), leaves the current map serving and returns the error.
func (rt *Router) RefreshShardMap(ctx context.Context) error {
	rt.refreshMu.Lock()
	defer rt.refreshMu.Unlock()
	groups := make([]*replicaGroup, 0, len(rt.groupBases))
	for _, bases := range rt.groupBases {
		rng, _, err := discoverGroup(ctx, rt.client, bases)
		if err != nil {
			rt.mapRefreshFails.Add(1)
			return fmt.Errorf("serve: refreshing shard map: %w", err)
		}
		groups = append(groups, &replicaGroup{rng: rng, replicas: rt.replicasFor(bases)})
	}
	m, err := buildShardMap(groups)
	if err != nil {
		rt.mapRefreshFails.Add(1)
		return fmt.Errorf("serve: refreshing shard map: %w", err)
	}
	old := rt.smap.Swap(m)
	rt.mapRefreshes.Add(1)
	if !m.sameRanges(old) {
		for _, g := range m.groups {
			rt.logger.Printf("serve: router shard map refreshed: %s -> %d replicas", g.rng, len(g.replicas))
		}
	}
	return nil
}

// replicasFor resolves base URLs to their persistent health records.
func (rt *Router) replicasFor(bases []string) []*replica {
	out := make([]*replica, len(bases))
	for i, b := range bases {
		out[i] = rt.replicas[b]
	}
	return out
}

// discoverGroup learns one replica group's node range and envelope
// checksum from its members' /stats. Unreachable replicas are skipped
// (they are probably down — the prober and live traffic handle them);
// the reachable ones must agree exactly, because replicas of a group
// are promised byte-identical: a range or checksum mismatch means the
// operator pointed the group at the wrong envelope, and routing to it
// would serve wrong answers, not degraded ones.
func discoverGroup(ctx context.Context, client *http.Client, bases []string) (distsketch.ShardRange, uint32, error) {
	var (
		rng     distsketch.ShardRange
		cksum   uint32
		from    string
		have    bool
		lastErr error
	)
	for _, base := range bases {
		stats, err := fetchUpstreamStats(ctx, client, base)
		if err != nil {
			lastErr = err
			continue
		}
		r := rangeOfStats(stats)
		if !have {
			rng, cksum, from, have = r, stats.EnvelopeChecksum, base, true
			continue
		}
		if r != rng {
			return rng, 0, fmt.Errorf("replicas disagree on node range: %s reports %s, %s reports %s", from, rng, base, r)
		}
		if cksum != 0 && stats.EnvelopeChecksum != 0 && cksum != stats.EnvelopeChecksum {
			return rng, 0, fmt.Errorf("replicas disagree on envelope checksum: %s reports %08x, %s reports %08x — replica sets must serve byte-identical envelopes", from, cksum, base, stats.EnvelopeChecksum)
		}
		if cksum == 0 {
			cksum = stats.EnvelopeChecksum
		}
	}
	if !have {
		return rng, 0, fmt.Errorf("no replica of %v reachable: %w", bases, lastErr)
	}
	return rng, cksum, nil
}

// rangeOfStats maps an upstream's /stats to the node range it answers:
// its shard range, or [0, nodes) for an unsharded full set.
func rangeOfStats(stats *StatsReply) distsketch.ShardRange {
	if stats.Shard != nil {
		return distsketch.ShardRange{Lo: stats.Shard.Lo, Hi: stats.Shard.Hi}
	}
	return distsketch.ShardRange{Lo: 0, Hi: stats.Nodes}
}
