package serve

// httptest coverage for every endpoint, including the malformed inputs a
// public server must survive: non-integer and out-of-range node ids, bad
// JSON, oversized batches, updates without a topology, and weight
// increases the repair protocol cannot handle. Nothing here may panic —
// a handler panic fails the test via the httptest server.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distsketch"
)

// buildSet constructs a small landmark set and its topology for serving
// tests. Every kind repairs through the same batched pipeline now;
// landmark stays the default because its repairs carry CONGEST cost
// numbers the update replies can assert on. The returned set honors the
// DISTSKETCH_TEST_BACKING matrix, so the whole serve suite runs against
// both heap- and mmap-backed sets in CI.
func buildSet(t *testing.T) (*distsketch.SketchSet, *distsketch.Graph) {
	t.Helper()
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 64, 10, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	set, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return reloadForBacking(t, set), g
}

// reloadForBacking round-trips a built set through a saved envelope
// opened with OpenSketchSet when DISTSKETCH_TEST_BACKING=mmap; by
// default the built (heap) set is served as-is. Estimates are identical
// either way — that equivalence is pinned by the router tests — so the
// serve assertions need not know which backing they run against.
func reloadForBacking(t *testing.T, set *distsketch.SketchSet) *distsketch.SketchSet {
	t.Helper()
	switch mode := os.Getenv("DISTSKETCH_TEST_BACKING"); mode {
	case "", "heap":
		return set
	case "mmap":
		path := filepath.Join(t.TempDir(), "set.dsk")
		if err := distsketch.SaveSketchSet(path, set, distsketch.SetVersion2); err != nil {
			t.Fatal(err)
		}
		reopened, err := distsketch.OpenSketchSet(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { reopened.Close() })
		return reopened
	default:
		t.Fatalf("unknown DISTSKETCH_TEST_BACKING %q (want heap or mmap)", mode)
		return nil
	}
}

func newTestServer(t *testing.T, set *distsketch.SketchSet, opts Options) *httptest.Server {
	t.Helper()
	srv, err := New(set, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getJSON issues a GET and decodes the reply, returning the status code.
func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("POST %s: decoding body: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestQueryEndpoint(t *testing.T) {
	set, g := buildSet(t)
	ts := newTestServer(t, set, Options{Graph: g})
	for _, pair := range [][2]int{{0, 63}, {5, 40}, {17, 17}, {63, 0}} {
		var res QueryResult
		url := fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, pair[0], pair[1])
		if code := getJSON(t, url, &res); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		want := set.Query(pair[0], pair[1])
		if res.Estimate == nil || *res.Estimate != want {
			t.Errorf("query (%d,%d): got %v, want %d", pair[0], pair[1], res.Estimate, want)
		}
		if res.U != pair[0] || res.V != pair[1] || res.Unreachable || res.Error != "" {
			t.Errorf("query (%d,%d): malformed echo %+v", pair[0], pair[1], res)
		}
	}
}

func TestQueryMalformed(t *testing.T) {
	set, _ := buildSet(t)
	ts := newTestServer(t, set, Options{})
	cases := []struct {
		path string
		want int
	}{
		{"/query", http.StatusBadRequest},              // both params missing
		{"/query?u=3", http.StatusBadRequest},          // v missing
		{"/query?u=3&v=banana", http.StatusBadRequest}, // non-integer
		{"/query?u=3.5&v=4", http.StatusBadRequest},    // non-integer
		{"/query?u=-1&v=4", http.StatusNotFound},       // below range
		{"/query?u=3&v=64", http.StatusNotFound},       // above range
		{"/query?u=3&v=99999999", http.StatusNotFound}, // far above range
		{"/nosuchendpoint", http.StatusNotFound},       // unrouted
	}
	for _, c := range cases {
		var er struct {
			Error string `json:"error"`
		}
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("GET %s: status %d, want %d (body %q)", c.path, resp.StatusCode, c.want, body)
		}
		if resp.StatusCode == http.StatusBadRequest {
			if json.Unmarshal(body, &er) != nil || er.Error == "" {
				t.Errorf("GET %s: expected a JSON error body, got %q", c.path, body)
			}
		}
	}
	// Wrong method on a routed pattern.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/query?u=1&v=2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /query: status %d, want 405", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	set, _ := buildSet(t)
	ts := newTestServer(t, set, Options{})
	body := `{"pairs":[{"u":0,"v":63},{"u":12,"v":12},{"u":-5,"v":3},{"u":3,"v":1000},{"u":40,"v":9}]}`
	var reply BatchReply
	if code := postJSON(t, ts.URL+"/query", body, &reply); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(reply.Results) != 5 {
		t.Fatalf("batch: %d results, want 5", len(reply.Results))
	}
	for i, pair := range [][2]int{{0, 63}, {12, 12}, {-1, -1}, {-1, -1}, {40, 9}} {
		res := reply.Results[i]
		if pair[0] < 0 { // the out-of-range entries
			if res.Error == "" || res.Estimate != nil {
				t.Errorf("batch[%d]: expected per-entry error, got %+v", i, res)
			}
			continue
		}
		want := set.Query(pair[0], pair[1])
		if res.Error != "" || res.Estimate == nil || *res.Estimate != want {
			t.Errorf("batch[%d]: got %+v, want estimate %d", i, res, want)
		}
	}
}

func TestBatchMalformed(t *testing.T) {
	set, _ := buildSet(t)
	ts := newTestServer(t, set, Options{MaxBatch: 3})
	if code := postJSON(t, ts.URL+"/query", `{"pairs":`, nil); code != http.StatusBadRequest {
		t.Errorf("truncated JSON: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/query", `not json at all`, nil); code != http.StatusBadRequest {
		t.Errorf("non-JSON: status %d, want 400", code)
	}
	over := `{"pairs":[{"u":0,"v":1},{"u":0,"v":2},{"u":0,"v":3},{"u":0,"v":4}]}`
	if code := postJSON(t, ts.URL+"/query", over, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", code)
	}
	// A body past the byte cap is cut off before it is ever decoded.
	var huge strings.Builder
	huge.WriteString(`{"pairs":[`)
	for i := 0; i < 1000; i++ {
		if i > 0 {
			huge.WriteString(",")
		}
		fmt.Fprintf(&huge, `{"u":%d,"v":%d}`, i, i+1)
	}
	huge.WriteString("]}")
	if code := postJSON(t, ts.URL+"/query", huge.String(), nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", code)
	}
	var reply BatchReply
	if code := postJSON(t, ts.URL+"/query", `{"pairs":[]}`, &reply); code != http.StatusOK || len(reply.Results) != 0 {
		t.Errorf("empty batch: status %d results %d, want 200 with 0", code, len(reply.Results))
	}
	// The empty reply must be "results":[] — never "results":null, and
	// not dependent on what an earlier batch left in the scratch pool.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"pairs":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(raw), `"results":[]`) {
			t.Errorf("empty batch body = %s, want \"results\":[]", raw)
		}
		// Populate the pool's scratch between the two empty batches.
		if code := postJSON(t, ts.URL+"/query", `{"pairs":[{"u":0,"v":1}]}`, nil); code != http.StatusOK {
			t.Fatalf("warmup batch: status %d", code)
		}
	}
}

func TestSketchEndpoint(t *testing.T) {
	set, _ := buildSet(t)
	ts := newTestServer(t, set, Options{})
	resp, err := http.Get(ts.URL + "/sketch/13")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /sketch/13: status %d", resp.StatusCode)
	}
	if !bytes.Equal(blob, set.SketchBytes(13)) {
		t.Error("served sketch bytes differ from SketchBytes(13)")
	}
	if got := resp.Header.Get("X-Sketch-Kind"); got != string(set.Kind()) {
		t.Errorf("X-Sketch-Kind = %q, want %q", got, set.Kind())
	}
	// The wire bytes must round-trip through the peer-side decode path.
	sk, err := distsketch.ParseSketch(blob)
	if err != nil {
		t.Fatalf("ParseSketch on served bytes: %v", err)
	}
	if sk.Owner() != 13 {
		t.Errorf("served sketch owner %d, want 13", sk.Owner())
	}

	for path, want := range map[string]int{
		"/sketch/banana": http.StatusBadRequest,
		"/sketch/-1":     http.StatusNotFound,
		"/sketch/64":     http.StatusNotFound,
		"/sketch/":       http.StatusNotFound, // empty wildcard: unrouted
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	set, g := buildSet(t)
	ts := newTestServer(t, set, Options{Graph: g})
	var before StatsReply
	if code := getJSON(t, ts.URL+"/stats", &before); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if before.Kind != string(set.Kind()) || before.Nodes != set.N() {
		t.Errorf("stats identity: %+v", before)
	}
	if before.MaxSketchWords != set.MaxSketchWords() || before.MeanSketchWords != set.MeanSketchWords() {
		t.Errorf("stats sizes: got (%d, %g), want (%d, %g)",
			before.MaxSketchWords, before.MeanSketchWords, set.MaxSketchWords(), set.MeanSketchWords())
	}
	if before.Cost.Rounds != set.Rounds() || before.Cost.Messages != set.Messages() {
		t.Errorf("stats cost: %+v", before.Cost)
	}
	if !before.UpdatesSupported {
		t.Error("landmark set with graph should report updates_supported")
	}
	// The served-queries counter must move with traffic.
	getJSON(t, ts.URL+"/query?u=1&v=2", nil)
	getJSON(t, ts.URL+"/query?u=3&v=4", nil)
	var after StatsReply
	getJSON(t, ts.URL+"/stats", &after)
	if after.QueriesServed != before.QueriesServed+2 {
		t.Errorf("queries_served %d -> %d, want +2", before.QueriesServed, after.QueriesServed)
	}

	noGraph := newTestServer(t, set, Options{})
	var ng StatsReply
	getJSON(t, noGraph.URL+"/stats", &ng)
	if ng.UpdatesSupported {
		t.Error("server without a graph must not report updates_supported")
	}
}

func TestUpdateEdgeEndpoint(t *testing.T) {
	set, g := buildSet(t)
	ts := newTestServer(t, set, Options{Graph: g})
	e := g.Edges()[0]
	if e.Weight < 2 {
		t.Fatalf("test graph edge %v too light to decrease", e)
	}

	// A decrease must apply, and the served estimates must be
	// byte-identical to an in-process repair of the same edge.
	expect := set.Clone()
	g2, err := reweigh(g, e.U, e.V, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantStats, err := expect.UpdateEdge(g2, e.U, e.V)
	if err != nil {
		t.Fatal(err)
	}
	var rep UpdateReply
	body := fmt.Sprintf(`{"u":%d,"v":%d,"weight":1}`, e.U, e.V)
	if code := postJSON(t, ts.URL+"/update-edge", body, &rep); code != http.StatusOK {
		t.Fatalf("update-edge decrease: status %d", code)
	}
	if rep.Messages != wantStats.Messages || rep.Rounds != wantStats.Rounds {
		t.Errorf("repair stats: got %+v, want %+v", rep, wantStats)
	}
	for _, pair := range [][2]int{{0, 63}, {e.U, e.V}, {9, 44}} {
		var res QueryResult
		getJSON(t, fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, pair[0], pair[1]), &res)
		want := expect.Query(pair[0], pair[1])
		if res.Estimate == nil || *res.Estimate != want {
			t.Errorf("post-repair query (%d,%d): got %v, want %d", pair[0], pair[1], res.Estimate, want)
		}
	}
	var st StatsReply
	getJSON(t, ts.URL+"/stats", &st)
	if st.UpdatesApplied != 1 {
		t.Errorf("updates_applied = %d, want 1", st.UpdatesApplied)
	}

	// An idempotent retry (same weight again) is a free 200 no-op.
	var noop UpdateReply
	if code := postJSON(t, ts.URL+"/update-edge", body, &noop); code != http.StatusOK {
		t.Fatalf("update-edge no-op retry: status %d", code)
	}
	if noop.Messages != 0 || noop.Rounds != 0 {
		t.Errorf("no-op retry should cost nothing, got %+v", noop)
	}

	// A weight increase must be refused (422) and leave the served set
	// untouched.
	before := map[[2]int]distsketch.Dist{}
	for _, pair := range [][2]int{{0, 63}, {9, 44}} {
		before[pair] = expect.Query(pair[0], pair[1])
	}
	body = fmt.Sprintf(`{"u":%d,"v":%d,"weight":%d}`, e.U, e.V, e.Weight*100)
	var er struct {
		Error string `json:"error"`
	}
	if code := postJSON(t, ts.URL+"/update-edge", body, &er); code != http.StatusUnprocessableEntity {
		t.Fatalf("update-edge increase: status %d, want 422 (%+v)", code, er)
	}
	if !strings.Contains(er.Error, "rebuild") {
		t.Errorf("increase error should direct the caller to rebuild: %q", er.Error)
	}
	for pair, want := range before {
		var res QueryResult
		getJSON(t, fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, pair[0], pair[1]), &res)
		if res.Estimate == nil || *res.Estimate != want {
			t.Errorf("estimate (%d,%d) changed after refused increase: got %v, want %d",
				pair[0], pair[1], res.Estimate, want)
		}
	}
}

func TestUpdateEdgeMalformed(t *testing.T) {
	set, g := buildSet(t)
	ts := newTestServer(t, set, Options{Graph: g})
	cases := []struct {
		body string
		want int
	}{
		{`{"u":0,"v":`, http.StatusBadRequest},               // truncated JSON
		{`{"u":0,"v":1,"weight":-3}`, http.StatusBadRequest}, // negative weight
		{`{"u":0,"v":1,"weight":0}`, http.StatusBadRequest},  // zero weight (verification needs > 0)
		{`{"u":-1,"v":1,"weight":3}`, http.StatusNotFound},   // node below range
		{`{"u":0,"v":64,"weight":3}`, http.StatusNotFound},   // node above range
		{`{"u":0,"v":0,"weight":3}`, http.StatusNotFound},    // self-loop: no such edge
	}
	// {0, x} for a non-neighbor x: find one.
	nonNeighbor := -1
	for v := 1; v < g.N(); v++ {
		if !g.HasEdge(0, v) {
			nonNeighbor = v
			break
		}
	}
	if nonNeighbor >= 0 {
		cases = append(cases, struct {
			body string
			want int
		}{fmt.Sprintf(`{"u":0,"v":%d,"weight":3}`, nonNeighbor), http.StatusNotFound})
	}
	for _, c := range cases {
		if code := postJSON(t, ts.URL+"/update-edge", c.body, nil); code != c.want {
			t.Errorf("update-edge %q: status %d, want %d", c.body, code, c.want)
		}
	}

	// Without a topology the endpoint is a 409, not a crash.
	noGraph := newTestServer(t, set, Options{})
	if code := postJSON(t, noGraph.URL+"/update-edge", `{"u":0,"v":1,"weight":1}`, nil); code != http.StatusConflict {
		t.Errorf("update-edge without graph: status %d, want 409", code)
	}

	// Every kind repairs through the same batch pipeline now: a TZ set
	// accepts a decrease (the result is verified against the new graph),
	// and a same-weight retry is an idempotent 200 no-op.
	g2, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 32, 2, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	tzSet, err := distsketch.Build(g2, distsketch.Options{Kind: distsketch.KindTZ, K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := g2.Edges()[0]
	tzServer := newTestServer(t, tzSet, Options{Graph: g2})
	var upd UpdateReply
	body := fmt.Sprintf(`{"u":%d,"v":%d,"weight":1}`, e.U, e.V)
	if code := postJSON(t, tzServer.URL+"/update-edge", body, &upd); code != http.StatusOK {
		t.Errorf("update-edge decrease on tz set: status %d, want 200", code)
	} else if upd.EdgesApplied != 1 {
		t.Errorf("tz decrease applied %d edges, want 1", upd.EdgesApplied)
	}
	body = fmt.Sprintf(`{"u":%d,"v":%d,"weight":1}`, e.U, e.V)
	upd = UpdateReply{}
	if code := postJSON(t, tzServer.URL+"/update-edge", body, &upd); code != http.StatusOK || upd.EdgesApplied != 0 {
		t.Errorf("idempotent retry: status %d, applied %d; want 200, 0", code, upd.EdgesApplied)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("New(nil) should fail")
	}
	set, _ := buildSet(t)
	other, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyRing, 10, 1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(set, Options{Graph: other}); err == nil {
		t.Error("New with mismatched graph size should fail")
	}
}

func TestSaveEndpointSnapshots(t *testing.T) {
	set, _ := buildSet(t)
	path := t.TempDir() + "/snap.dsk"
	ts := newTestServer(t, set, Options{SnapshotPath: path})
	var rep SaveReply
	if code := postJSON(t, ts.URL+"/save", "", &rep); code != http.StatusOK {
		t.Fatalf("POST /save: status %d", code)
	}
	if rep.Path != path || rep.Nodes != set.N() || rep.EnvelopeVersion != distsketch.SetVersion2 {
		t.Errorf("save reply %+v", rep)
	}
	// The snapshot round-trips through the recovering loader and answers
	// identically to the served set.
	loaded, err := distsketch.LoadSketchSet(path)
	if err != nil {
		t.Fatalf("loading the snapshot: %v", err)
	}
	for _, p := range [][2]int{{0, 63}, {5, 40}, {17, 17}} {
		if got, want := loaded.Query(p[0], p[1]), set.Query(p[0], p[1]); got != want {
			t.Errorf("snapshot Query(%d,%d) = %d, want %d", p[0], p[1], got, want)
		}
	}
	var st StatsReply
	getJSON(t, ts.URL+"/stats", &st)
	if st.SnapshotsSaved != 1 {
		t.Errorf("snapshots_saved = %d, want 1", st.SnapshotsSaved)
	}

	// Without a configured path the endpoint refuses rather than writing
	// somewhere surprising.
	bare := newTestServer(t, set, Options{})
	if code := postJSON(t, bare.URL+"/save", "", nil); code != http.StatusConflict {
		t.Errorf("POST /save without a snapshot path: status %d, want 409", code)
	}
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	set, _ := buildSet(t)
	srv, err := New(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	var h HealthReply
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Errorf("/healthz: status %d reply %+v", code, h)
	}
	var r ReadyReply
	if code := getJSON(t, ts.URL+"/readyz", &r); code != http.StatusOK || !r.Ready || r.Nodes != set.N() {
		t.Errorf("/readyz: status %d reply %+v", code, r)
	}
	srv.BeginDrain()
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after BeginDrain: status %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Errorf("/healthz after BeginDrain: status %d, want 200 (liveness is not readiness)", code)
	}
	var st StatsReply
	getJSON(t, ts.URL+"/stats", &st)
	if !st.Draining {
		t.Error("stats should report draining")
	}
}
