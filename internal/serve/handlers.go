package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"distsketch"
)

// Wire types. Status conventions: 400 for input that does not parse
// (non-integer ids, bad JSON, negative weights), 404 for well-formed ids
// naming a node or edge that does not exist, 413 for oversized batches,
// 409 for /update-edge without a loaded topology (or /save without a
// snapshot path), 422 with rebuild_required:true when a batch cannot be
// repaired incrementally (a weight increase the kind cannot verify
// exact) and the caller must rebuild instead, 503 with Retry-After when
// the admission gate sheds
// load, the per-request deadline expires mid-execution, or /readyz is
// draining, and 500 with node/offset context when a lazily loaded label
// turns out to be corrupt (distsketch.ErrCorruptLabel; counted in
// /stats as decode_failures).

// QueryResult is one estimate in a single or batched query reply.
type QueryResult struct {
	U int `json:"u"`
	V int `json:"v"`
	// Estimate is null when the two sketches share no common reference
	// (the in-process query's Inf sentinel) — see Unreachable — or when
	// Error is set.
	Estimate    *distsketch.Dist `json:"estimate"`
	Unreachable bool             `json:"unreachable,omitempty"`
	// Error reports a per-pair failure inside a batch (out-of-range ids);
	// the batch as a whole still answers 200.
	Error string `json:"error,omitempty"`
}

// QueryPair is one u,v pair of a batched query request.
type QueryPair struct {
	U int `json:"u"`
	V int `json:"v"`
}

// BatchRequest is the POST /query body.
type BatchRequest struct {
	Pairs []QueryPair `json:"pairs"`
}

// BatchReply is the POST /query response: one result per request pair,
// in order.
type BatchReply struct {
	Results []QueryResult `json:"results"`
}

// UpdateRequest is one edge change of a POST /update-edge request: the
// new weight of an existing edge {u,v}. The body is either a single
// object or a JSON array of them; an array is applied as one batch — one
// clone, one repair, one atomic swap — and rejects atomically, so a bad
// change means no change was applied.
type UpdateRequest struct {
	U      int             `json:"u"`
	V      int             `json:"v"`
	Weight distsketch.Dist `json:"weight"`
}

// UpdateReply reports an applied repair batch: how many edge changes it
// covered after dedup and no-op elimination, how the served labels moved
// (replaced vs shared pointer-identical with the previous set), and the
// CONGEST cost of the repair (zero for the centralized hierarchy repairs
// of tz/cdg/graceful sketches).
type UpdateReply struct {
	EdgesApplied   int   `json:"edges_applied"`
	LabelsReplaced int   `json:"labels_replaced"`
	LabelsShared   int   `json:"labels_shared"`
	Rounds         int   `json:"rounds"`
	Messages       int64 `json:"messages"`
	Words          int64 `json:"words"`
}

// StatsReply is the GET /stats response.
type StatsReply struct {
	Kind            string  `json:"kind"`
	Nodes           int     `json:"nodes"`
	MaxSketchWords  int     `json:"max_sketch_words"`
	MeanSketchWords float64 `json:"mean_sketch_words"`
	// EnvelopeVersion is the envelope version the served set was loaded
	// from (0 when the set was built in process rather than loaded).
	EnvelopeVersion int `json:"envelope_version"`
	// EnvelopeChecksum is the crc32 of the envelope payload the served
	// set was loaded from (0 for an in-process build). Replicated routing
	// compares it across the replicas of a shard group: replicas serving
	// the same node range must serve byte-identical envelopes.
	EnvelopeChecksum uint32 `json:"envelope_checksum"`
	// SketchesDecoded counts the set's currently decoded sketches; with
	// a lazily loaded (version-2) envelope it grows from 0 toward Nodes
	// as traffic touches labels.
	SketchesDecoded int `json:"sketches_decoded"`
	// SketchesPending counts labels not yet decoded (lazy sets only).
	SketchesPending int `json:"sketches_pending"`
	// Backing reports how the served set's payload bytes are owned:
	// "mmap" for a set opened zero-copy over its envelope file, "heap"
	// otherwise.
	Backing string `json:"backing"`
	// MappedBytes is the size of the mmap'd envelope region (0 for heap
	// backing).
	MappedBytes int `json:"mapped_bytes"`
	// Shard is the node-range shard this server answers for, when the
	// served set is a shard of a larger set; absent for a full set.
	Shard         *ShardHint  `json:"shard,omitempty"`
	Cost          CostReply   `json:"cost"`
	Phases        []CostPhase `json:"phases,omitempty"`
	QueriesServed int64       `json:"queries_served"`
	// UpdatesApplied counts applied update batches (a single-object
	// request is a one-edge batch).
	UpdatesApplied   int64 `json:"updates_applied"`
	UpdatesSupported bool  `json:"updates_supported"`
	// Repair summarizes the batched-repair pipeline since startup.
	Repair RepairReply `json:"repair"`
	// RequestsShed counts requests rejected by the bounded in-flight
	// admission gate (503 + Retry-After).
	RequestsShed int64 `json:"requests_shed"`
	// PanicsRecovered counts handler panics the recovery middleware
	// absorbed; any nonzero value deserves a look at the logs.
	PanicsRecovered int64 `json:"panics_recovered"`
	// DeadlineExceeded counts requests cut off by the per-request
	// execution deadline.
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// DecodeFailures counts queries that hit a corrupt lazily loaded
	// label (distsketch.ErrCorruptLabel) — the envelope is damaged behind
	// its checksum and should be replaced.
	DecodeFailures int64 `json:"decode_failures"`
	// SnapshotsSaved counts POST /save snapshots written.
	SnapshotsSaved int64 `json:"snapshots_saved"`
	// Draining is true once graceful shutdown has begun (readiness is
	// already answering 503).
	Draining bool `json:"draining"`
}

// SaveReply is the POST /save response.
type SaveReply struct {
	Path            string `json:"path"`
	Nodes           int    `json:"nodes"`
	EnvelopeVersion int    `json:"envelope_version"`
}

// HealthReply is the GET /healthz response.
type HealthReply struct {
	Status string `json:"status"`
}

// ReadyReply is the GET /readyz response (200 only).
type ReadyReply struct {
	Ready           bool `json:"ready"`
	Nodes           int  `json:"nodes"`
	SketchesDecoded int  `json:"sketches_decoded"`
}

// CostReply mirrors distsketch.CostBreakdown's totals in wire casing.
type CostReply struct {
	Rounds          int   `json:"rounds"`
	Messages        int64 `json:"messages"`
	Words           int64 `json:"words"`
	DataMessages    int64 `json:"data_messages,omitempty"`
	EchoMessages    int64 `json:"echo_messages,omitempty"`
	ControlMessages int64 `json:"control_messages,omitempty"`
	SetupRounds     int   `json:"setup_rounds,omitempty"`
}

// CostPhase is one named construction phase's cost.
type CostPhase struct {
	Name     string `json:"name"`
	Rounds   int    `json:"rounds"`
	Messages int64  `json:"messages"`
	Words    int64  `json:"words"`
}

// RepairReply is the /stats repair section: per-batch counters for the
// clone-repair-verify-swap pipeline, with edge totals broken out per
// sketch kind (a server serves one kind, so the map names the kinds the
// process has actually repaired).
type RepairReply struct {
	// Batches counts applied repair batches (same as updates_applied).
	Batches int64 `json:"batches"`
	// Edges counts edge changes applied across all batches, after dedup
	// and no-op elimination.
	Edges int64 `json:"edges"`
	// RebuildRejected counts batches refused with rebuild_required (the
	// repair could not be verified sound; the served set was untouched).
	RebuildRejected int64 `json:"rebuild_rejected"`
	// LabelsReplaced and LabelsShared total, across applied batches, how
	// many served labels each swap replaced vs shared with its
	// predecessor — the repair-locality measure.
	LabelsReplaced int64 `json:"labels_replaced"`
	LabelsShared   int64 `json:"labels_shared"`
	// EdgesByKind breaks Edges down by sketch kind.
	EdgesByKind map[string]int64 `json:"edges_by_kind,omitempty"`
}

// ShardHint is the typed redirect hint a shard server attaches to a 421
// (Misdirected Request) reply when a query names a node that exists but
// is owned by a different node-range shard: this server answers for
// global ids [Lo, Hi) out of Total. A router (or any client holding the
// shard map) uses it to re-aim the request; a client without the map
// learns the id was valid, just mis-routed.
type ShardHint struct {
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Total int `json:"total"`
}

type errorReply struct {
	Error string `json:"error"`
	// RebuildRequired marks a 422 from /update-edge meaning this batch
	// cannot be repaired incrementally (typically a weight increase a
	// kind cannot verify) and the set must be rebuilt; the served set is
	// untouched.
	RebuildRequired bool `json:"rebuild_required,omitempty"`
	// Shard carries the serving shard's node range on a 421 reply (the
	// requested node exists but lives in a different shard).
	Shard *ShardHint `json:"shard,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding our own reply types cannot fail; a broken connection is
	// the client's problem.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: fmt.Sprintf(format, args...)})
}

// queryParam parses a required integer query parameter.
func queryParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("query parameter %s=%q is not an integer", name, raw)
	}
	return v, nil
}

// result formats one checked query outcome as a wire QueryResult for
// the single-query path, where one escaping estimate per request is
// noise next to the JSON encode.
func result(u, v int, d distsketch.Dist, err error) QueryResult {
	var slot distsketch.Dist
	return resultInto(u, v, d, err, &slot)
}

// resultInto formats one checked query outcome as a wire QueryResult,
// storing a finite estimate in *slot and referencing it from the result.
// The caller owns slot's lifetime: the batch path hands out slots from a
// pooled per-batch arena, so filling a result does not heap-allocate a
// Dist per pair the way `res.Estimate = &d` on a loop variable did.
//
//sketchlint:hotpath
func resultInto(u, v int, d distsketch.Dist, err error, slot *distsketch.Dist) QueryResult {
	res := QueryResult{U: u, V: v}
	switch {
	case err != nil:
		res.Error = err.Error()
	case d == distsketch.Inf:
		res.Unreachable = true
	default:
		*slot = d
		res.Estimate = slot
	}
	return res
}

// queryStatus maps a checked-query failure to a status code, counting
// decode failures as it classifies: an out-of-range id is the client's
// fault (404); an id owned by a different node-range shard is a routing
// miss (421 Misdirected Request — the caller should re-aim, see
// writeQueryError's hint); a corrupt lazily loaded label is the
// envelope's fault (500 — the error text already names the node and its
// envelope byte offset, so the operator can find the bad bytes).
func (s *Server) queryStatus(err error) int {
	if errors.Is(err, distsketch.ErrShardRange) {
		return http.StatusMisdirectedRequest
	}
	if errors.Is(err, distsketch.ErrNodeRange) {
		return http.StatusNotFound
	}
	s.countDecodeFailure(err)
	return http.StatusInternalServerError
}

// writeQueryError writes a checked-query failure, attaching the serving
// shard's range as a redirect hint when the failure is a shard miss.
func (s *Server) writeQueryError(w http.ResponseWriter, set *distsketch.SketchSet, err error) {
	status := s.queryStatus(err)
	reply := errorReply{Error: err.Error()}
	if status == http.StatusMisdirectedRequest {
		lo, hi := set.NodeRange()
		reply.Shard = &ShardHint{Lo: lo, Hi: hi, Total: set.TotalNodes()}
	}
	writeJSON(w, status, reply)
}

// countDecodeFailure bumps the decode_failures counter when err is (or
// wraps) a corrupt-label error.
func (s *Server) countDecodeFailure(err error) {
	var cl *distsketch.ErrCorruptLabel
	if errors.As(err, &cl) {
		s.decodeFailures.Add(1)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	u, err := queryParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := queryParam(r, "v")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	set := s.cur.Load().set
	d, err := set.QueryChecked(u, v)
	if err != nil {
		s.writeQueryError(w, set, err)
		return
	}
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, result(u, v, d, nil))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Bound the bytes read before decoding: the pair cap alone would let
	// a huge body allocate its whole array first. ~64 bytes covers any
	// one encoded pair.
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.maxBatch)*64+1024)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		if maxErr := (*http.MaxBytesError)(nil); errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if len(req.Pairs) > s.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "%d pairs exceed the %d-pair batch cap", len(req.Pairs), s.maxBatch)
		return
	}
	// One snapshot for the whole batch: every pair is answered from the
	// same set version even if a repair swaps mid-request.
	set := s.cur.Load().set
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	// Answer in (u, v)-sorted order while keeping the reply in request
	// order: a batch with repeated sources runs each source's queries
	// back to back, so the merge-intersections of one source's label hit
	// a warm cache (and a lazily loaded set decodes that label exactly
	// once for its whole group) instead of re-faulting it per scattered
	// pair. Sorting n small ints is noise next to the queries it speeds.
	order := sc.order[:0]
	for i := range req.Pairs {
		order = append(order, i)
	}
	sort.Slice(order, func(x, y int) bool {
		px, py := req.Pairs[order[x]], req.Pairs[order[y]]
		if px.U != py.U {
			return px.U < py.U
		}
		return px.V < py.V
	})
	sc.order = order
	results := sc.results[:0]
	if results == nil || cap(results) < len(req.Pairs) {
		// Never leave results nil (a fresh pool entry): an empty batch
		// must encode as "results":[], not "results":null.
		results = make([]QueryResult, 0, len(req.Pairs))
	}
	results = results[:len(req.Pairs)]
	sc.results = results
	// The estimate arena is pre-sized before the loop: resultInto hands
	// out interior pointers into it, so it must never grow (and move)
	// mid-batch.
	dists := sc.dists
	if cap(dists) < len(req.Pairs) {
		dists = make([]distsketch.Dist, len(req.Pairs))
	}
	dists = dists[:len(req.Pairs)]
	sc.dists = dists
	served, stopped, finished := s.executePairs(r.Context(), set, req.Pairs, order, results, dists)
	if !finished {
		s.deadlines.Add(1)
		s.queries.Add(served)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			"request deadline exceeded after %d of %d pairs; split the batch or retry", stopped, len(req.Pairs))
		return
	}
	// One contended atomic per batch, not per pair — the counter must
	// not tax the hot path batching exists to amortize.
	s.queries.Add(served)
	// Encode into the pooled buffer and write in one shot: one reused
	// allocation per batch instead of an encoder buffer per request.
	sc.buf.Reset()
	if err := json.NewEncoder(&sc.buf).Encode(BatchReply{Results: results}); err != nil {
		writeError(w, http.StatusInternalServerError, "encoding reply: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.buf.Bytes())
}

// executePairs is the batch serving hot loop: it answers every pair (in
// the cache-friendly sorted order) into results, storing finite
// estimates in the pre-sized dists arena. The per-request deadline is
// polled between pairs (every 64, so the check costs nothing against
// the ~100ns-per-query loop): a batch that outlives its budget reports
// finished=false and the index it stopped at, and the handler answers
// 503 instead of pinning the worker until the client's own timeout
// fires. The loop itself performs zero allocations per pair — every
// byte it writes lands in pooled storage owned by the caller.
//
//sketchlint:hotpath
func (s *Server) executePairs(ctx context.Context, set *distsketch.SketchSet, pairs []QueryPair, order []int, results []QueryResult, dists []distsketch.Dist) (served int64, stopped int, finished bool) {
	for k, i := range order {
		if k&63 == 0 && ctx.Err() != nil {
			return served, k, false
		}
		if s.queryHook != nil {
			s.queryHook()
		}
		p := pairs[i]
		d, err := set.QueryChecked(p.U, p.V)
		results[i] = resultInto(p.U, p.V, d, err, &dists[i])
		if err == nil {
			served++
		} else {
			s.countDecodeFailure(err)
		}
	}
	return served, len(order), true
}

// batchScratch is the per-batch reusable state: the sort permutation,
// the result slice the reply serializes from, the estimate arena those
// results point into, and the JSON output buffer. Pooling it keeps
// POST /query's per-request allocations flat regardless of batch size.
type batchScratch struct {
	order   []int
	results []QueryResult
	dists   []distsketch.Dist
	buf     bytes.Buffer
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	u, err := strconv.Atoi(r.PathValue("u"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "node id %q is not an integer", r.PathValue("u"))
		return
	}
	set := s.cur.Load().set
	blob, err := set.SketchBytesChecked(u)
	if err != nil {
		s.writeQueryError(w, set, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Sketch-Kind", string(set.Kind()))
	w.Header().Set("X-Sketch-Words", strconv.Itoa(set.SketchWords(u)))
	w.Write(blob)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.cur.Load()
	cost := st.set.Cost()
	decoded := st.set.DecodedSketches()
	reply := StatsReply{
		Kind:             string(st.set.Kind()),
		Nodes:            st.set.N(),
		MaxSketchWords:   st.set.MaxSketchWords(),
		MeanSketchWords:  st.set.MeanSketchWords(),
		EnvelopeVersion:  st.set.EnvelopeVersion(),
		EnvelopeChecksum: st.set.Checksum(),
		SketchesDecoded:  decoded,
		SketchesPending:  st.set.N() - decoded,
		Backing:          st.set.Backing(),
		MappedBytes:      st.set.MappedBytes(),
		Cost: CostReply{
			Rounds:          cost.Total.Rounds,
			Messages:        cost.Total.Messages,
			Words:           cost.Total.Words,
			DataMessages:    cost.DataMessages,
			EchoMessages:    cost.EchoMessages,
			ControlMessages: cost.ControlMessages,
			SetupRounds:     cost.SetupRounds,
		},
		QueriesServed:    s.queries.Load(),
		UpdatesApplied:   s.updates.Load(),
		UpdatesSupported: st.g != nil,
		Repair: RepairReply{
			Batches:         s.updates.Load(),
			Edges:           s.updateEdges.Load(),
			RebuildRejected: s.rebuildRejected.Load(),
			LabelsReplaced:  s.labelsReplaced.Load(),
			LabelsShared:    s.labelsShared.Load(),
		},
		RequestsShed:     s.shed.Load(),
		PanicsRecovered:  s.panics.Load(),
		DeadlineExceeded: s.deadlines.Load(),
		DecodeFailures:   s.decodeFailures.Load(),
		SnapshotsSaved:   s.snapshots.Load(),
		Draining:         s.draining.Load(),
	}
	if st.set.Sharded() {
		lo, hi := st.set.NodeRange()
		reply.Shard = &ShardHint{Lo: lo, Hi: hi, Total: st.set.TotalNodes()}
	}
	if edges := s.updateEdges.Load(); edges > 0 {
		reply.Repair.EdgesByKind = map[string]int64{string(st.set.Kind()): edges}
	}
	for _, p := range cost.Phases {
		reply.Phases = append(reply.Phases, CostPhase{
			Name: p.Name, Rounds: p.Rounds, Messages: p.Messages, Words: p.Words,
		})
	}
	writeJSON(w, http.StatusOK, reply)
}

// decodeUpdateBody parses a POST /update-edge body: a JSON array of
// UpdateRequest (the batch form) or a single object (the 1-element
// case), distinguished by the first non-space byte.
func decodeUpdateBody(body []byte) ([]UpdateRequest, error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var reqs []UpdateRequest
		if err := json.Unmarshal(trimmed, &reqs); err != nil {
			return nil, err
		}
		return reqs, nil
	}
	var req UpdateRequest
	if err := json.Unmarshal(trimmed, &req); err != nil {
		return nil, err
	}
	return []UpdateRequest{req}, nil
}

func (s *Server) handleUpdateEdge(w http.ResponseWriter, r *http.Request) {
	// ~96 bytes covers any one encoded change; the batch cap shared with
	// POST /query bounds the array form.
	r.Body = http.MaxBytesReader(w, r.Body, int64(s.maxBatch)*96+4096)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		if maxErr := (*http.MaxBytesError)(nil); errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}
	reqs, err := decodeUpdateBody(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, "empty update batch")
		return
	}
	if len(reqs) > s.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "%d changes exceed the %d-change batch cap", len(reqs), s.maxBatch)
		return
	}
	// Weights below 1 are refused even though the graph model allows 0:
	// the repair verification's exactness argument needs strictly
	// positive weights (a zero-weight cycle could mutually support stale
	// labels and sneak a wrong set past the swap).
	for _, q := range reqs {
		if q.Weight < 1 || q.Weight >= distsketch.Inf {
			writeError(w, http.StatusBadRequest, "edge (%d,%d): weight %d outside [1, Inf)", q.U, q.V, q.Weight)
			return
		}
	}
	// Serialize the whole clone-repair-swap cycle; the topology read must
	// happen under the lock so back-to-back updates compose.
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	// The deadline may have expired while this request queued behind
	// other updates; refuse before paying for the O(m) reweigh and the
	// repair rather than committing a swap the client stopped waiting
	// for.
	if r.Context().Err() != nil {
		s.deadlines.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded while queued behind earlier updates")
		return
	}
	st := s.cur.Load()
	if st.g == nil {
		writeError(w, http.StatusConflict, "server holds no topology; restart with a graph to enable /update-edge")
		return
	}
	n := st.g.N()
	// Validate every change against the held topology before any repair
	// work: the batch rejects as a whole or applies as a whole. Repeats of
	// the same edge collapse to the last-written weight (the batch behaves
	// like applying its changes in order).
	repl := make(map[[2]int]distsketch.Dist, len(reqs))
	order := make([][2]int, 0, len(reqs))
	for _, q := range reqs {
		if q.U < 0 || q.U >= n || q.V < 0 || q.V >= n {
			writeError(w, http.StatusNotFound, "edge (%d,%d): node id outside [0,%d)", q.U, q.V, n)
			return
		}
		a, b := q.U, q.V
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if _, ok := st.g.EdgeWeight(a, b); !ok {
			writeError(w, http.StatusNotFound, "edge (%d,%d) not in graph", q.U, q.V)
			return
		}
		if _, seen := repl[key]; !seen {
			order = append(order, key)
		}
		repl[key] = q.Weight
	}
	// Drop no-ops (final weight equals the held topology's weight): an
	// all-no-op batch is an idempotent retry — the current set already is
	// the repaired set — and skips the clone-repair-verify cycle. (Like
	// every update path, this trusts that the startup -graph matched the
	// served set; a wrong graph file is an operator error no single
	// request can reliably detect.)
	changes := make([]distsketch.EdgeChange, 0, len(order))
	for _, key := range order {
		old, _ := st.g.EdgeWeight(key[0], key[1])
		if repl[key] == old {
			delete(repl, key)
			continue
		}
		changes = append(changes, distsketch.EdgeChange{U: key[0], V: key[1], PrevWeight: old})
	}
	if len(changes) == 0 {
		writeJSON(w, http.StatusOK, UpdateReply{LabelsShared: st.set.N()})
		return
	}
	next, err := reweighAll(st.g, repl)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Repair a clone off to the side; readers keep hitting the old set
	// until the swap below. A failed repair leaves them on it for good.
	// The whole batch pays exactly one clone and one swap.
	if s.repairHook != nil {
		s.repairHook("clone")
	}
	setClone := st.set.Clone()
	stats, err := setClone.UpdateEdges(next, changes)
	if err != nil {
		rebuild := errors.Is(err, distsketch.ErrRebuildRequired)
		if rebuild {
			s.rebuildRejected.Add(1)
		}
		writeJSON(w, http.StatusUnprocessableEntity, errorReply{Error: err.Error(), RebuildRequired: rebuild})
		return
	}
	// Diff the swap for the reply and the repair-locality counters: the
	// repair shares unchanged labels pointer-identically, so comparing
	// sketch pointers counts exactly the replaced ones.
	replaced := 0
	for u := 0; u < setClone.N(); u++ {
		if setClone.Sketch(u) != st.set.Sketch(u) {
			replaced++
		}
	}
	if s.repairHook != nil {
		s.repairHook("swap")
	}
	s.cur.Store(&state{set: setClone, g: next})
	s.updates.Add(1)
	s.updateEdges.Add(int64(len(changes)))
	s.labelsReplaced.Add(int64(replaced))
	s.labelsShared.Add(int64(setClone.N() - replaced))
	writeJSON(w, http.StatusOK, UpdateReply{
		EdgesApplied:   len(changes),
		LabelsReplaced: replaced,
		LabelsShared:   setClone.N() - replaced,
		Rounds:         stats.Rounds, Messages: stats.Messages, Words: stats.Words,
	})
}

// handleSave writes the served set to the configured snapshot path
// crash-safely: a kill at any instant leaves either the previous
// snapshot or the new one, never a torn file (distsketch.SaveSketchSet).
func (s *Server) handleSave(w http.ResponseWriter, r *http.Request) {
	if s.snapshotPath == "" {
		writeError(w, http.StatusConflict, "server has no snapshot path; restart with one to enable POST /save")
		return
	}
	// One snapshot at a time: concurrent saves would serialize the same
	// set twice and race the final rename for no benefit. The set pointer
	// is loaded under the lock, so back-to-back saves are monotone.
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	st := s.cur.Load()
	version := distsketch.SetVersion2
	if st.set.Sharded() {
		// A shard can only round-trip through the shard envelope (the
		// node range has nowhere to live in version 2).
		version = distsketch.SetVersion3
	}
	if err := distsketch.SaveSketchSet(s.snapshotPath, st.set, version); err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot failed: %v", err)
		return
	}
	s.snapshots.Add(1)
	writeJSON(w, http.StatusOK, SaveReply{
		Path: s.snapshotPath, Nodes: st.set.N(), EnvelopeVersion: version,
	})
}

// handleHealthz is the liveness probe: 200 whenever the process is up
// and routing requests. It deliberately does no work — liveness failing
// should mean "restart me", and a momentarily overloaded server must
// not be restarted into a thundering herd.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthReply{Status: "ok"})
}

// handleReadyz is the readiness probe: 200 while the server should
// receive traffic, 503 once a drain has begun (load balancers pull the
// backend while in-flight requests finish). With Options.ProbeDecode it
// additionally proves the envelope decodes by touching node 0's label
// through the query path — a lazily loaded envelope corrupted behind
// its checksum fails here, before traffic is routed to it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	st := s.cur.Load()
	if s.probeDecode {
		// Probe the first node this set actually holds — node 0 belongs to
		// a different shard on all but the first shard server.
		lo, _ := st.set.NodeRange()
		if _, err := st.set.QueryChecked(lo, lo); err != nil {
			s.countDecodeFailure(err)
			writeError(w, http.StatusServiceUnavailable, "decode probe failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, ReadyReply{
		Ready: true, Nodes: st.set.N(), SketchesDecoded: st.set.DecodedSketches(),
	})
}

// reweigh rebuilds g with the single edge {a,b} set to weight wt.
func reweigh(g *distsketch.Graph, a, b int, wt distsketch.Dist) (*distsketch.Graph, error) {
	if a > b {
		a, b = b, a
	}
	return reweighAll(g, map[[2]int]distsketch.Dist{{a, b}: wt})
}

// reweighAll rebuilds g with every edge in repl (keys normalized to
// U < V) set to its new weight — one O(m) pass for the whole batch.
func reweighAll(g *distsketch.Graph, repl map[[2]int]distsketch.Dist) (*distsketch.Graph, error) {
	nb := distsketch.NewGraphBuilder(g.N())
	for _, e := range g.Edges() {
		if wt, ok := repl[[2]int{e.U, e.V}]; ok {
			nb.AddEdge(e.U, e.V, wt)
		} else {
			nb.AddEdge(e.U, e.V, e.Weight)
		}
	}
	return nb.Freeze()
}
