package serve

// Batched /update-edge coverage: the array body applies as ONE
// clone-repair-verify-swap cycle (pinned through the repairHook seam),
// rejections are atomic and carry the typed rebuild_required marker, and
// the /stats repair section accounts for both outcomes.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"distsketch"
)

// setBytes snapshots every node's wire blob from a sketch set.
func setBytes(t *testing.T, s *distsketch.SketchSet) [][]byte {
	t.Helper()
	out := make([][]byte, s.N())
	for u := 0; u < s.N(); u++ {
		out[u] = bytes.Clone(s.SketchBytes(u))
	}
	return out
}

// TestUpdateEdgeBatchOneCloneOneSwap is the serving acceptance pin: a
// 64-edge batch pays exactly one set clone and one atomic pointer swap,
// and the swapped-in set is byte-identical to a fresh rebuild on the
// mutated topology.
func TestUpdateEdgeBatchOneCloneOneSwap(t *testing.T) {
	set, g := buildSet(t)
	srv, err := New(set, Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	var stages []string
	srv.repairHook = func(stage string) { stages = append(stages, stage) }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	repl := map[[2]int]distsketch.Dist{}
	var reqs []string
	for _, e := range g.Edges() {
		if len(reqs) == 64 {
			break
		}
		if e.Weight < 2 {
			continue
		}
		nw := e.Weight / 2
		repl[[2]int{e.U, e.V}] = nw
		reqs = append(reqs, fmt.Sprintf(`{"u":%d,"v":%d,"weight":%d}`, e.U, e.V, nw))
	}
	if len(reqs) != 64 {
		t.Fatalf("test graph yielded only %d usable edges, want 64", len(reqs))
	}
	body := "[" + strings.Join(reqs, ",") + "]"

	var upd UpdateReply
	if code := postJSON(t, ts.URL+"/update-edge", body, &upd); code != http.StatusOK {
		t.Fatalf("batch update: status %d, want 200", code)
	}
	if upd.EdgesApplied != 64 {
		t.Errorf("edges applied %d, want 64", upd.EdgesApplied)
	}
	if upd.LabelsReplaced+upd.LabelsShared != set.N() {
		t.Errorf("replaced %d + shared %d != %d nodes", upd.LabelsReplaced, upd.LabelsShared, set.N())
	}
	// The acceptance contract: the whole batch is one clone and one swap.
	if len(stages) != 2 || stages[0] != "clone" || stages[1] != "swap" {
		t.Fatalf("repair stages %v, want exactly [clone swap]", stages)
	}

	// The served set must be the exact rebuild on the mutated topology.
	ng, err := reweighAll(g, repl)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := distsketch.Build(ng, distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := setBytes(t, rebuilt)
	served := srv.Set()
	for u := 0; u < served.N(); u++ {
		if !bytes.Equal(served.SketchBytes(u), want[u]) {
			t.Fatalf("node %d: served sketch differs from fresh rebuild", u)
		}
	}

	var st StatsReply
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Repair.Batches != 1 || st.Repair.Edges != 64 {
		t.Errorf("stats repair: %d batches / %d edges, want 1 / 64", st.Repair.Batches, st.Repair.Edges)
	}
	if st.Repair.RebuildRejected != 0 {
		t.Errorf("stats repair: %d rebuild rejections, want 0", st.Repair.RebuildRejected)
	}
	if got := st.Repair.EdgesByKind[string(set.Kind())]; got != 64 {
		t.Errorf("stats repair edges_by_kind[%s] = %d, want 64", set.Kind(), got)
	}
	if int(st.Repair.LabelsReplaced) != upd.LabelsReplaced || int(st.Repair.LabelsShared) != upd.LabelsShared {
		t.Errorf("stats repair label counters %d/%d disagree with reply %d/%d",
			st.Repair.LabelsReplaced, st.Repair.LabelsShared, upd.LabelsReplaced, upd.LabelsShared)
	}
}

// TestUpdateEdgeBatchRejectsAtomically: a batch the repair cannot verify
// (a weight increase on a CDG set) answers 422 with the typed
// rebuild_required marker, never swaps (the clone stage ran, the swap
// stage did not), and leaves the served set pointer- and byte-identical.
func TestUpdateEdgeBatchRejectsAtomically(t *testing.T) {
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 48, 5, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	set, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindCDG, K: 2, Eps: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(set, Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	var stages []string
	srv.repairHook = func(stage string) { stages = append(stages, stage) }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := setBytes(t, set)
	e1, e2 := g.Edges()[0], g.Edges()[g.M()/2]
	// One repairable decrease plus one increase: the batch must reject as
	// a whole — no partial application.
	body := fmt.Sprintf(`[{"u":%d,"v":%d,"weight":%d},{"u":%d,"v":%d,"weight":%d}]`,
		e1.U, e1.V, 1, e2.U, e2.V, e2.Weight+10)
	var er errorReply
	if code := postJSON(t, ts.URL+"/update-edge", body, &er); code != http.StatusUnprocessableEntity {
		t.Fatalf("unsound batch: status %d, want 422", code)
	}
	if !er.RebuildRequired {
		t.Errorf("422 reply missing rebuild_required: %+v", er)
	}
	if er.Error == "" {
		t.Errorf("422 reply has empty error text")
	}
	if len(stages) != 1 || stages[0] != "clone" {
		t.Errorf("repair stages %v, want [clone] only (no swap on rejection)", stages)
	}
	if srv.Set() != set {
		t.Fatalf("rejected batch swapped the served set")
	}
	after := setBytes(t, srv.Set())
	for u := range before {
		if !bytes.Equal(before[u], after[u]) {
			t.Fatalf("node %d: rejected batch changed served bytes", u)
		}
	}

	var st StatsReply
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Repair.Batches != 0 || st.Repair.Edges != 0 || st.Repair.RebuildRejected != 1 {
		t.Errorf("stats repair after rejection: %d batches / %d edges / %d rejected, want 0 / 0 / 1",
			st.Repair.Batches, st.Repair.Edges, st.Repair.RebuildRejected)
	}
}

// TestUpdateEdgeBatchDedupLastWins: repeats of an edge inside one batch
// collapse to the last-written weight (the batch behaves like applying
// its changes in order), and the follow-up idempotent retry is a no-op.
func TestUpdateEdgeBatchDedupLastWins(t *testing.T) {
	set, g := buildSet(t)
	ts := newTestServer(t, set, Options{Graph: g})
	e := g.Edges()[0]
	if e.Weight < 4 {
		t.Fatalf("first edge weight %d too small for the test", e.Weight)
	}
	// Same edge three times, both endpoint orders; only the final weight
	// counts, as one applied change.
	body := fmt.Sprintf(`[{"u":%d,"v":%d,"weight":%d},{"u":%d,"v":%d,"weight":%d},{"u":%d,"v":%d,"weight":%d}]`,
		e.U, e.V, e.Weight-1, e.V, e.U, e.Weight-2, e.U, e.V, e.Weight-3)
	var upd UpdateReply
	if code := postJSON(t, ts.URL+"/update-edge", body, &upd); code != http.StatusOK {
		t.Fatalf("dedup batch: status %d, want 200", code)
	}
	if upd.EdgesApplied != 1 {
		t.Errorf("dedup batch applied %d edges, want 1", upd.EdgesApplied)
	}
	// Retrying the winning weight alone must be the idempotent no-op.
	body = fmt.Sprintf(`[{"u":%d,"v":%d,"weight":%d}]`, e.U, e.V, e.Weight-3)
	upd = UpdateReply{}
	if code := postJSON(t, ts.URL+"/update-edge", body, &upd); code != http.StatusOK || upd.EdgesApplied != 0 {
		t.Errorf("idempotent retry: status %d, applied %d; want 200, 0", code, upd.EdgesApplied)
	}
}
