package serve

import (
	"context"
	"testing"

	"distsketch"
)

// TestExecutePairsZeroAlloc pins the batch hot path's allocation
// discipline: once the scratch slices are sized and the lazily decoded
// labels are warm, executing a batch allocates nothing. This is the
// invariant the //sketchlint:hotpath annotations on executePairs and
// resultInto enforce mechanically; the test enforces it empirically.
func TestExecutePairsZeroAlloc(t *testing.T) {
	set, _ := buildSet(t)
	srv, err := New(set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := []QueryPair{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 6, V: 7}}
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	results := make([]QueryResult, len(pairs))
	dists := make([]distsketch.Dist, len(pairs))
	ctx := context.Background()

	// First pass decodes the envelope's lazy labels; only steady state
	// is held to zero.
	srv.executePairs(ctx, set, pairs, order, results, dists)

	allocs := testing.AllocsPerRun(100, func() {
		served, stopped, finished := srv.executePairs(ctx, set, pairs, order, results, dists)
		if served != int64(len(pairs)) || stopped != len(pairs) || !finished {
			t.Fatalf("executePairs = (%d,%d,%v), want (%d,%d,true)",
				served, stopped, finished, len(pairs), len(pairs))
		}
	})
	if allocs != 0 {
		t.Errorf("executePairs allocates %.1f times per batch, want 0", allocs)
	}
}
