package serve

// Router is the fan-out tier in front of node-range shard servers: it
// owns the shard map (which global ids each replica group answers for)
// and resolves every (u,v) distance query by contacting at most 2
// shards — the paper's guarantee made topological. A pair whose two
// nodes share a shard is forwarded whole (one upstream request, the
// shard estimates locally); a cross-shard pair is resolved the way the
// paper's Section 2.1 query model prescribes: fetch u's wire sketch
// from its shard, v's from its shard, and estimate from the two blobs
// alone. The router holds no labels, no graph, and no per-node state —
// it is restartable in milliseconds and horizontally fungible.
//
// Each node range maps to a replica set, not a single server: upstream
// calls retry across replicas, slow reads are hedged, a background
// prober ejects and reinstates replicas, and the shard map refreshes
// live when the fleet moves (see replica.go for the machinery). The
// router's own handler carries the same robustness middleware as a
// shard server: panic recovery, a bounded in-flight admission gate,
// and a per-request deadline.
//
// Wire compatibility: the router serves the same /query (single and
// batch), /sketch/{u}, /stats, /healthz and /readyz shapes as a shard
// server, so a client cannot tell a router from a single full-set
// server — sharding is an operator decision, not a client migration.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distsketch"
)

// Router resilience defaults. The usual option convention applies to
// every duration and threshold below: zero means the default, negative
// disables (where disabling is meaningful).
const (
	// DefaultAttemptTimeout bounds one upstream attempt; a replica
	// slower than this is treated as down for that attempt.
	DefaultAttemptTimeout = 2 * time.Second
	// DefaultMaxAttempts is the total upstream attempts per call,
	// cycling over the group's candidates.
	DefaultMaxAttempts = 3
	// DefaultRetryBackoff is the base of the jittered exponential
	// backoff between retry attempts.
	DefaultRetryBackoff = 25 * time.Millisecond
	// DefaultHedgeDelay is how long the primary attempt may stay silent
	// before a second replica is raced against it.
	DefaultHedgeDelay = 50 * time.Millisecond
	// DefaultFailThreshold ejects a replica after this many consecutive
	// failures; DefaultReinstateAfter brings it back after this many
	// consecutive successes.
	DefaultFailThreshold  = 3
	DefaultReinstateAfter = 2
)

// RouterShard names one shard: the global node range it owns and the
// byte-identical replica servers answering it (base URLs of the form
// scheme://host:port, no trailing slash). Base is the single-replica
// shorthand kept for callers that predate replica sets; when Replicas
// is empty the shard is the one server named by Base.
type RouterShard struct {
	Base     string
	Replicas []string
	Range    distsketch.ShardRange
}

// bases returns the shard's normalized replica list.
func (sh RouterShard) bases() []string {
	if len(sh.Replicas) > 0 {
		return sh.Replicas
	}
	if sh.Base != "" {
		return []string{sh.Base}
	}
	return nil
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Transport reaches the shard servers (nil means
	// http.DefaultTransport). Tests inject counting or failing
	// transports here.
	Transport http.RoundTripper
	// MaxBatch caps the pairs accepted per POST /query request (default
	// DefaultMaxBatch). Larger batches get 413 before any upstream call.
	MaxBatch int
	// Logger receives lifecycle lines. Nil means log.Default().
	Logger *log.Logger

	// AttemptTimeout bounds each upstream attempt (default
	// DefaultAttemptTimeout; negative means no per-attempt bound — the
	// request deadline still applies).
	AttemptTimeout time.Duration
	// MaxAttempts is the total attempts per upstream call across the
	// shard's replicas (default DefaultMaxAttempts; negative means a
	// single attempt, no retries).
	MaxAttempts int
	// RetryBackoff is the base backoff before the first retry, doubling
	// per attempt with up to 50% jitter (default DefaultRetryBackoff;
	// negative retries immediately).
	RetryBackoff time.Duration
	// HedgeDelay races a second replica against a primary attempt still
	// silent after this long (default DefaultHedgeDelay; negative
	// disables hedging).
	HedgeDelay time.Duration
	// ProbeInterval enables the background health prober: every
	// interval each replica's /healthz and /stats are re-polled,
	// ejections and reinstatements applied, and the shard map refreshed
	// when the fleet's ranges moved. Zero or negative disables the
	// prober (ejection and reinstatement still happen through live
	// traffic). A router with the prober enabled must be Closed.
	ProbeInterval time.Duration
	// FailThreshold ejects a replica after this many consecutive
	// failures (default DefaultFailThreshold). ReinstateAfter brings an
	// ejected replica back after this many consecutive successes
	// (default DefaultReinstateAfter).
	FailThreshold  int
	ReinstateAfter int

	// MaxInFlight bounds concurrently executing requests; beyond it the
	// router sheds with 503 + Retry-After (default DefaultMaxInFlight;
	// negative means unbounded). Probes and /stats bypass the gate.
	MaxInFlight int
	// RequestTimeout is the whole-request execution deadline (default
	// DefaultRequestTimeout; negative disables).
	RequestTimeout time.Duration
}

// Router fans distance queries out to node-range shard replica sets.
// Create one with NewRouter and mount Handler on an http.Server. All
// methods are safe for concurrent use. Close releases the background
// prober and any in-flight map refresh.
type Router struct {
	client   *http.Client
	maxBatch int
	logger   *log.Logger
	draining atomic.Bool

	attemptTimeout time.Duration
	maxAttempts    int
	retryBackoff   time.Duration
	hedgeDelay     time.Duration
	failThreshold  int
	reinstateAfter int
	reqTimeout     time.Duration
	sem            chan struct{}

	// smap is the immutable routing snapshot; requests load it once.
	// groupBases remembers the configured replica groups for refreshes,
	// and replicas is the persistent health registry keyed by base URL —
	// ejection state survives map refreshes.
	smap       atomic.Pointer[shardMap]
	groupBases [][]string
	replicas   map[string]*replica
	refreshMu  sync.Mutex
	refreshing atomic.Bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	queries         atomic.Int64 // estimates served (single + batched)
	sameShard       atomic.Int64 // pairs forwarded whole to one shard
	crossShard      atomic.Int64 // pairs resolved by two-shard sketch exchange
	upstreamErrors  atomic.Int64 // upstream attempts that failed
	retries         atomic.Int64 // upstream attempts beyond each call's first
	hedgesFired     atomic.Int64 // hedge attempts launched against a slow primary
	hedgesWon       atomic.Int64 // hedge attempts that answered first
	probes          atomic.Int64 // prober sweeps completed
	mapRefreshes    atomic.Int64 // shard-map refreshes applied
	mapRefreshFails atomic.Int64 // shard-map refreshes that kept the old map
	staleMapHits    atomic.Int64 // upstream 421s proving the map stale
	shed            atomic.Int64 // requests shed by the admission gate
	panics          atomic.Int64 // handler panics recovered

	queryHook func() // test seam: runs at the head of query handlers
}

// NewRouter creates a router over the given shards. The shard ranges
// must exactly tile a [0, total) id space — every node owned by exactly
// one shard — or routing would silently drop or double-answer ids;
// they may be given in any order. Every replica of a shard must serve
// the same envelope bytes for that range (DiscoverShards verifies
// this); the router assumes replicas of a group are interchangeable.
func NewRouter(shards []RouterShard, opts RouterOptions) (*Router, error) {
	rt := &Router{
		client:         &http.Client{Transport: opts.Transport},
		maxBatch:       opts.MaxBatch,
		logger:         opts.Logger,
		attemptTimeout: opts.AttemptTimeout,
		maxAttempts:    opts.MaxAttempts,
		retryBackoff:   opts.RetryBackoff,
		hedgeDelay:     opts.HedgeDelay,
		failThreshold:  opts.FailThreshold,
		reinstateAfter: opts.ReinstateAfter,
		reqTimeout:     opts.RequestTimeout,
		replicas:       make(map[string]*replica),
	}
	if rt.maxBatch <= 0 {
		rt.maxBatch = DefaultMaxBatch
	}
	if rt.logger == nil {
		rt.logger = log.Default()
	}
	if rt.attemptTimeout == 0 {
		rt.attemptTimeout = DefaultAttemptTimeout
	}
	switch {
	case rt.maxAttempts == 0:
		rt.maxAttempts = DefaultMaxAttempts
	case rt.maxAttempts < 0:
		rt.maxAttempts = 1
	}
	switch {
	case rt.retryBackoff == 0:
		rt.retryBackoff = DefaultRetryBackoff
	case rt.retryBackoff < 0:
		rt.retryBackoff = 0
	}
	if rt.hedgeDelay == 0 {
		rt.hedgeDelay = DefaultHedgeDelay
	}
	if rt.failThreshold <= 0 {
		rt.failThreshold = DefaultFailThreshold
	}
	if rt.reinstateAfter <= 0 {
		rt.reinstateAfter = DefaultReinstateAfter
	}
	if rt.reqTimeout == 0 {
		rt.reqTimeout = DefaultRequestTimeout
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if maxInFlight > 0 {
		rt.sem = make(chan struct{}, maxInFlight)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one shard")
	}
	groups := make([]*replicaGroup, 0, len(shards))
	rt.groupBases = make([][]string, 0, len(shards))
	for i, sh := range shards {
		bases := sh.bases()
		if len(bases) == 0 {
			return nil, fmt.Errorf("serve: shard %d has no base URL", i)
		}
		seen := make(map[string]bool, len(bases))
		uniq := make([]string, 0, len(bases))
		reps := make([]*replica, 0, len(bases))
		for _, b := range bases {
			if b == "" {
				return nil, fmt.Errorf("serve: shard %d has an empty replica URL", i)
			}
			if seen[b] {
				continue
			}
			seen[b] = true
			uniq = append(uniq, b)
			rep := rt.replicas[b]
			if rep == nil {
				rep = &replica{base: b, healthy: true}
				rt.replicas[b] = rep
			}
			reps = append(reps, rep)
		}
		rt.groupBases = append(rt.groupBases, uniq)
		groups = append(groups, &replicaGroup{rng: sh.Range, replicas: reps})
	}
	m, err := buildShardMap(groups)
	if err != nil {
		return nil, err
	}
	rt.smap.Store(m)
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	if opts.ProbeInterval > 0 {
		rt.startProber(opts.ProbeInterval)
	}
	return rt, nil
}

// Close stops the background prober and any in-flight map refresh and
// waits for them. Idempotent; safe on a router without a prober.
func (rt *Router) Close() {
	rt.cancel()
	rt.wg.Wait()
}

// TotalNodes returns the size of the routed id space.
func (rt *Router) TotalNodes() int { return rt.smap.Load().total }

// Shards returns the current routed shard map, sorted by range.
func (rt *Router) Shards() []RouterShard {
	m := rt.smap.Load()
	out := make([]RouterShard, len(m.groups))
	for i, g := range m.groups {
		bases := make([]string, len(g.replicas))
		for j, rep := range g.replicas {
			bases[j] = rep.base
		}
		out[i] = RouterShard{Base: bases[0], Replicas: bases, Range: g.rng}
	}
	return out
}

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// traffic here; in-flight fan-outs finish.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// checkNode validates u against the routed id space. The message
// matches the facade's own out-of-range error byte for byte, so a
// client sees the same 404 body through the router as it would asking
// a full-set server directly.
func checkRoutedNode(m *shardMap, u int) error {
	if u < 0 || u >= m.total {
		return fmt.Errorf("distsketch: node %d outside [0,%d): %w", u, m.total, distsketch.ErrNodeRange)
	}
	return nil
}

// splitReplicaSpec splits one shard spec "url|url|..." into its replica
// base URLs, trimming whitespace and dropping empty segments.
func splitReplicaSpec(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, "|") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// DiscoverShards builds a router's shard map by asking each shard
// spec's servers for their /stats. A spec is one or more replica base
// URLs joined with "|"; the reachable replicas of a group must agree
// on node range and envelope checksum (replica sets promise
// byte-identical answers), and a group is only undiscoverable when
// every replica of it is unreachable — a single down replica at boot
// does not block the router. A server serving an unsharded full set
// reports no range and is mapped as one shard covering [0, nodes), so
// a router over a single full server routes everything to it and the
// two topologies stay interchangeable. The discovered shards are
// validated by NewRouter, not here.
func DiscoverShards(ctx context.Context, specs []string, client *http.Client) ([]RouterShard, error) {
	if client == nil {
		client = http.DefaultClient
	}
	shards := make([]RouterShard, 0, len(specs))
	for _, spec := range specs {
		group := splitReplicaSpec(spec)
		if len(group) == 0 {
			return nil, fmt.Errorf("serve: shard spec %q names no replica URLs", spec)
		}
		rng, _, err := discoverGroup(ctx, client, group)
		if err != nil {
			return nil, fmt.Errorf("serve: discovering %s: %w", spec, err)
		}
		shards = append(shards, RouterShard{Base: group[0], Replicas: group, Range: rng})
	}
	return shards, nil
}

// fetchUpstreamStats decodes one upstream server's /stats.
func fetchUpstreamStats(ctx context.Context, client *http.Client, base string) (*StatsReply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drainBody(resp)
		return nil, fmt.Errorf("%s/stats answered %d", base, resp.StatusCode)
	}
	var stats StatsReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&stats); err != nil {
		return nil, fmt.Errorf("decoding %s/stats: %w", base, err)
	}
	return &stats, nil
}

// drainBody discards a bounded remainder of a response body so the
// connection can be reused, then closes it.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
}

func drainClose(resp *http.Response) { drainBody(resp) }

// RouterStatsReply is the router's GET /stats response.
type RouterStatsReply struct {
	TotalNodes int               `json:"total_nodes"`
	Shards     []RouterShardInfo `json:"shards"`
	// QueriesServed counts estimates served (single + batched pairs).
	QueriesServed int64 `json:"queries_served"`
	// SameShardPairs counts pairs forwarded whole to one shard;
	// CrossShardPairs counts pairs resolved by fetching two wire
	// sketches and estimating in the router. Their sum bounds upstream
	// requests: fan-out never exceeds 2 shards per pair.
	SameShardPairs  int64 `json:"same_shard_pairs"`
	CrossShardPairs int64 `json:"cross_shard_pairs"`
	// UpstreamErrors counts upstream attempts that failed (network
	// errors, per-attempt timeouts, and non-200 answers). Retries counts
	// attempts beyond each call's first; HedgesFired/HedgesWon count
	// hedge attempts raced against a slow primary and how many answered
	// first.
	UpstreamErrors int64 `json:"upstream_errors"`
	Retries        int64 `json:"retries"`
	HedgesFired    int64 `json:"hedges_fired"`
	HedgesWon      int64 `json:"hedges_won"`
	// Probes counts prober sweeps; MapRefreshes counts shard-map
	// refreshes applied, MapRefreshFailures ones that kept the old map,
	// and StaleMapHits upstream 421 answers proving the map stale (each
	// schedules a refresh).
	Probes             int64 `json:"probes"`
	MapRefreshes       int64 `json:"map_refreshes"`
	MapRefreshFailures int64 `json:"map_refresh_failures"`
	StaleMapHits       int64 `json:"stale_map_hits"`
	// RequestsShed counts requests refused by the admission gate;
	// PanicsRecovered counts handler panics converted to 500s.
	RequestsShed    int64 `json:"requests_shed"`
	PanicsRecovered int64 `json:"panics_recovered"`
	Draining        bool  `json:"draining"`
}

// RouterShardInfo is one shard map entry in the router's /stats.
type RouterShardInfo struct {
	Lo       int                 `json:"lo"`
	Hi       int                 `json:"hi"`
	Replicas []RouterReplicaInfo `json:"replicas"`
}

// RouterReplicaInfo is one replica's health as the router sees it.
type RouterReplicaInfo struct {
	Base                string `json:"base"`
	Healthy             bool   `json:"healthy"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Failures            int64  `json:"failures"`
	Ejections           int64  `json:"ejections"`
}

// Handler returns the router's route table wrapped in the same
// middleware stack a shard server carries: panic recovery outermost,
// then the admission gate and per-request deadline on query-serving
// routes. Probes and /stats bypass the gate — an overloaded router
// must still answer its health checks, or the load balancer would
// eject the tier that is merely busy.
func (rt *Router) Handler() http.Handler {
	guard := func(h http.HandlerFunc) http.Handler {
		return gateMiddleware(rt.sem, &rt.shed, deadlineMiddleware(rt.reqTimeout, h))
	}
	mux := http.NewServeMux()
	mux.Handle("GET /query", guard(rt.handleQuery))
	mux.Handle("POST /query", guard(rt.handleBatch))
	mux.Handle("GET /sketch/{u}", guard(rt.handleSketch))
	mux.Handle("GET /stats", deadlineMiddleware(rt.reqTimeout, http.HandlerFunc(rt.handleStats)))
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	return recoverMiddleware(rt.logger, &rt.panics, mux)
}

// classifyUpstream turns a non-200 upstream answer into the right kind
// of error: 5xx (and 429) are replica faults — retried on the next
// candidate and charged to the replica's health; 421 means the
// replica is healthy but the router's shard map is stale, so a refresh
// is scheduled and the call fails without blaming the replica; any
// other status is an answer the upstream produced deliberately and a
// byte-identical replica would repeat, so it is terminal.
func (rt *Router) classifyUpstream(resp *http.Response, what string) error {
	var reply errorReply
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply)
	if reply.Error == "" {
		reply.Error = http.StatusText(resp.StatusCode)
	}
	switch {
	case resp.StatusCode == http.StatusMisdirectedRequest:
		rt.staleMapHits.Add(1)
		rt.kickRefresh()
		hint := ""
		if reply.Shard != nil {
			hint = fmt.Sprintf(" (it owns [%d,%d) of %d)", reply.Shard.Lo, reply.Shard.Hi, reply.Shard.Total)
		}
		return fmt.Errorf("shard map stale: %s answered 421%s: %s; refresh scheduled", what, hint, reply.Error)
	case resp.StatusCode >= http.StatusInternalServerError || resp.StatusCode == http.StatusTooManyRequests:
		return faultf("%s answered %d: %s", what, resp.StatusCode, reply.Error)
	default:
		rt.upstreamErrors.Add(1)
		return fmt.Errorf("%s answered %d: %s", what, resp.StatusCode, reply.Error)
	}
}

// fetchSketch gets global node u's wire sketch from its owning shard's
// replica set.
func (rt *Router) fetchSketch(ctx context.Context, m *shardMap, u int) ([]byte, error) {
	g := m.groupOf(u)
	return doReplicated(rt, ctx, g, func(ctx context.Context, base string) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/sketch/"+strconv.Itoa(u), nil)
		if err != nil {
			return nil, err
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return nil, &upstreamFault{err}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, rt.classifyUpstream(resp, fmt.Sprintf("/sketch/%d", u))
		}
		blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
		if err != nil {
			return nil, &upstreamFault{err}
		}
		return blob, nil
	})
}

// queryPair resolves one validated pair against a map snapshot:
// forwarded whole when both nodes share a shard, sketch-exchange
// across exactly two shards otherwise.
func (rt *Router) queryPair(ctx context.Context, m *shardMap, u, v int, fetch func(context.Context, int) ([]byte, error)) (distsketch.Dist, error) {
	gu, gv := m.groupOf(u), m.groupOf(v)
	if gu == gv {
		rt.sameShard.Add(1)
		return rt.forwardQuery(ctx, gu, u, v)
	}
	rt.crossShard.Add(1)
	bu, err := fetch(ctx, u)
	if err != nil {
		return 0, err
	}
	bv, err := fetch(ctx, v)
	if err != nil {
		return 0, err
	}
	d, err := distsketch.Estimate(bu, bv)
	if err != nil {
		// The two shards disagree about the sketch kind (or a blob is
		// corrupt) — an operator problem, not the client's.
		rt.upstreamErrors.Add(1)
		return 0, fmt.Errorf("estimating from fetched sketches: %v", err)
	}
	return d, nil
}

// forwardQuery relays a same-shard pair to the owning replica set's
// single-query endpoint and decodes the estimate.
func (rt *Router) forwardQuery(ctx context.Context, g *replicaGroup, u, v int) (distsketch.Dist, error) {
	return doReplicated(rt, ctx, g, func(ctx context.Context, base string) (distsketch.Dist, error) {
		url := fmt.Sprintf("%s/query?u=%d&v=%d", base, u, v)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, err
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return 0, &upstreamFault{err}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, rt.classifyUpstream(resp, "/query")
		}
		var res QueryResult
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&res); err != nil {
			return 0, &upstreamFault{err}
		}
		if res.Error != "" {
			rt.upstreamErrors.Add(1)
			return 0, errors.New(res.Error)
		}
		if res.Unreachable || res.Estimate == nil {
			return distsketch.Inf, nil
		}
		return *res.Estimate, nil
	})
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if rt.queryHook != nil {
		rt.queryHook()
	}
	m := rt.smap.Load()
	u, err := queryParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := queryParam(r, "v")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkRoutedNode(m, u); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err := checkRoutedNode(m, v); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	d, err := rt.queryPair(r.Context(), m, u, v, func(ctx context.Context, n int) ([]byte, error) {
		return rt.fetchSketch(ctx, m, n)
	})
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rt.queries.Add(1)
	writeJSON(w, http.StatusOK, result(u, v, d, nil))
}

// handleBatch fans a pair batch out across the shards: same-shard pairs
// are grouped and forwarded as one sub-batch per shard, cross-shard
// pairs share one sketch fetch per distinct node (memoized for the
// whole request). Per-pair failures — including a whole replica set
// being down — land in that pair's Error field; the batch as a whole
// still answers 200, so one dead shard degrades the answers it owns
// instead of the whole request. The entire batch routes against one
// map snapshot, so a concurrent refresh never splits a request across
// two world views.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if rt.queryHook != nil {
		rt.queryHook()
	}
	m := rt.smap.Load()
	r.Body = http.MaxBytesReader(w, r.Body, int64(rt.maxBatch)*64+1024)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		if maxErr := (*http.MaxBytesError)(nil); errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if len(req.Pairs) > rt.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "%d pairs exceed the %d-pair batch cap", len(req.Pairs), rt.maxBatch)
		return
	}
	results := make([]QueryResult, len(req.Pairs))
	dists := make([]distsketch.Dist, len(req.Pairs))
	// Group same-shard pairs per replica group; collect cross-shard
	// pairs.
	groups := make(map[*replicaGroup][]int)
	var cross []int
	for i, p := range req.Pairs {
		if err := checkRoutedNode(m, p.U); err != nil {
			results[i] = resultInto(p.U, p.V, 0, err, &dists[i])
			continue
		}
		if err := checkRoutedNode(m, p.V); err != nil {
			results[i] = resultInto(p.U, p.V, 0, err, &dists[i])
			continue
		}
		gu, gv := m.groupOf(p.U), m.groupOf(p.V)
		if gu == gv {
			groups[gu] = append(groups[gu], i)
		} else {
			cross = append(cross, i)
		}
	}
	var wg sync.WaitGroup
	for g, idxs := range groups {
		wg.Add(1)
		go func(g *replicaGroup, idxs []int) {
			defer wg.Done()
			rt.forwardSubBatch(r.Context(), g, req.Pairs, idxs, results, dists)
		}(g, idxs)
	}
	// Cross-shard pairs: one memoized sketch fetch per distinct node for
	// the whole batch, then local estimates.
	if len(cross) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			memo := newSketchMemo(rt, m)
			for _, i := range cross {
				p := req.Pairs[i]
				d, err := rt.queryPair(r.Context(), m, p.U, p.V, memo.fetch)
				results[i] = resultInto(p.U, p.V, d, err, &dists[i])
			}
		}()
	}
	wg.Wait()
	served := int64(0)
	for i := range results {
		if results[i].Error == "" {
			served++
		}
	}
	rt.queries.Add(served)
	writeJSON(w, http.StatusOK, BatchReply{Results: results})
}

// forwardSubBatch posts the pairs at idxs (all owned by g's range) as
// one sub-batch and scatters the replies back to their request
// positions. A failed sub-batch marks each of its pairs with the
// failure.
func (rt *Router) forwardSubBatch(ctx context.Context, g *replicaGroup, pairs []QueryPair, idxs []int, results []QueryResult, dists []distsketch.Dist) {
	sub := BatchRequest{Pairs: make([]QueryPair, len(idxs))}
	for k, i := range idxs {
		sub.Pairs[k] = pairs[i]
	}
	rt.sameShard.Add(int64(len(idxs)))
	reply, err := rt.postBatch(ctx, g, sub)
	if err != nil {
		for _, i := range idxs {
			p := pairs[i]
			results[i] = resultInto(p.U, p.V, 0, err, &dists[i])
		}
		return
	}
	for k, i := range idxs {
		res := reply.Results[k]
		switch {
		case res.Error != "":
			results[i] = resultInto(pairs[i].U, pairs[i].V, 0, errors.New(res.Error), &dists[i])
		case res.Unreachable || res.Estimate == nil:
			results[i] = resultInto(pairs[i].U, pairs[i].V, distsketch.Inf, nil, &dists[i])
		default:
			results[i] = resultInto(pairs[i].U, pairs[i].V, *res.Estimate, nil, &dists[i])
		}
	}
}

func (rt *Router) postBatch(ctx context.Context, g *replicaGroup, sub BatchRequest) (*BatchReply, error) {
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	return doReplicated(rt, ctx, g, func(ctx context.Context, base string) (*BatchReply, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/query", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			return nil, &upstreamFault{err}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, rt.classifyUpstream(resp, "/query")
		}
		var reply BatchReply
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<26)).Decode(&reply); err != nil {
			return nil, &upstreamFault{err}
		}
		if len(reply.Results) != len(sub.Pairs) {
			return nil, faultf("sub-batch answered %d results for %d pairs", len(reply.Results), len(sub.Pairs))
		}
		return &reply, nil
	})
}

// sketchMemo caches wire sketches fetched during one batch, so a node
// appearing in many cross-shard pairs is fetched once. It pins the
// batch's map snapshot.
type sketchMemo struct {
	rt    *Router
	m     *shardMap
	blobs map[int][]byte
	errs  map[int]error
}

func newSketchMemo(rt *Router, m *shardMap) *sketchMemo {
	return &sketchMemo{rt: rt, m: m, blobs: make(map[int][]byte), errs: make(map[int]error)}
}

func (m *sketchMemo) fetch(ctx context.Context, u int) ([]byte, error) {
	if b, ok := m.blobs[u]; ok {
		return b, nil
	}
	if err, ok := m.errs[u]; ok {
		return nil, err
	}
	b, err := m.rt.fetchSketch(ctx, m.m, u)
	if err != nil {
		m.errs[u] = err
		return nil, err
	}
	m.blobs[u] = b
	return b, nil
}

// handleSketch proxies a wire-sketch request to the owning shard, so a
// peer can fetch any node's sketch through the router with the same URL
// shape it would use against a full server.
func (rt *Router) handleSketch(w http.ResponseWriter, r *http.Request) {
	m := rt.smap.Load()
	u, err := strconv.Atoi(r.PathValue("u"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "node id %q is not an integer", r.PathValue("u"))
		return
	}
	if err := checkRoutedNode(m, u); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	blob, err := rt.fetchSketch(r.Context(), m, u)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	m := rt.smap.Load()
	reply := RouterStatsReply{
		TotalNodes:         m.total,
		QueriesServed:      rt.queries.Load(),
		SameShardPairs:     rt.sameShard.Load(),
		CrossShardPairs:    rt.crossShard.Load(),
		UpstreamErrors:     rt.upstreamErrors.Load(),
		Retries:            rt.retries.Load(),
		HedgesFired:        rt.hedgesFired.Load(),
		HedgesWon:          rt.hedgesWon.Load(),
		Probes:             rt.probes.Load(),
		MapRefreshes:       rt.mapRefreshes.Load(),
		MapRefreshFailures: rt.mapRefreshFails.Load(),
		StaleMapHits:       rt.staleMapHits.Load(),
		RequestsShed:       rt.shed.Load(),
		PanicsRecovered:    rt.panics.Load(),
		Draining:           rt.draining.Load(),
	}
	for _, g := range m.groups {
		info := RouterShardInfo{Lo: g.rng.Lo, Hi: g.rng.Hi}
		for _, rep := range g.replicas {
			rep.mu.Lock()
			ri := RouterReplicaInfo{
				Base:                rep.base,
				Healthy:             rep.healthy,
				ConsecutiveFailures: rep.consecFails,
			}
			rep.mu.Unlock()
			ri.Failures = rep.failures.Load()
			ri.Ejections = rep.ejections.Load()
			info.Replicas = append(info.Replicas, ri)
		}
		reply.Shards = append(reply.Shards, info)
	}
	writeJSON(w, http.StatusOK, reply)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthReply{Status: "ok"})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, ReadyReply{Ready: true, Nodes: rt.TotalNodes()})
}
