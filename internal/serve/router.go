package serve

// Router is the thin fan-out tier in front of node-range shard servers:
// it owns the shard map (which global ids each shard base URL answers
// for) and resolves every (u,v) distance query by contacting at most 2
// shards — the paper's guarantee made topological. A pair whose two
// nodes share a shard is forwarded whole (one upstream request, the
// shard estimates locally); a cross-shard pair is resolved the way the
// paper's Section 2.1 query model prescribes: fetch u's wire sketch
// from its shard, v's from its shard, and estimate from the two blobs
// alone. The router holds no labels, no graph, and no per-node state —
// it is restartable in milliseconds and horizontally fungible.
//
// Wire compatibility: the router serves the same /query (single and
// batch), /sketch/{u}, /stats, /healthz and /readyz shapes as a shard
// server, so a client cannot tell a router from a single full-set
// server — sharding is an operator decision, not a client migration.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"distsketch"
)

// RouterShard names one shard server: its base URL (scheme://host:port,
// no trailing slash) and the global node range it owns.
type RouterShard struct {
	Base  string
	Range distsketch.ShardRange
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Transport reaches the shard servers (nil means
	// http.DefaultTransport). Tests inject counting or failing
	// transports here.
	Transport http.RoundTripper
	// MaxBatch caps the pairs accepted per POST /query request (default
	// DefaultMaxBatch). Larger batches get 413.
	MaxBatch int
	// Logger receives lifecycle lines. Nil means log.Default().
	Logger *log.Logger
}

// Router fans distance queries out to node-range shard servers. Create
// one with NewRouter and mount Handler on an http.Server. All methods
// are safe for concurrent use.
type Router struct {
	shards   []RouterShard // sorted by Range.Lo; tiles [0, total)
	total    int
	client   *http.Client
	maxBatch int
	logger   *log.Logger
	draining atomic.Bool

	queries        atomic.Int64 // estimates served (single + batched)
	sameShard      atomic.Int64 // pairs forwarded whole to one shard
	crossShard     atomic.Int64 // pairs resolved by two-shard sketch exchange
	upstreamErrors atomic.Int64 // shard requests that failed
}

// NewRouter creates a router over the given shard servers. The shard
// ranges must exactly tile a [0, total) id space — every node owned by
// exactly one shard — or routing would silently drop or double-answer
// ids; they may be given in any order.
func NewRouter(shards []RouterShard, opts RouterOptions) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one shard")
	}
	sorted := append([]RouterShard(nil), shards...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Range.Lo < sorted[j].Range.Lo })
	want := 0
	for i, sh := range sorted {
		if sh.Base == "" {
			return nil, fmt.Errorf("serve: shard %d has no base URL", i)
		}
		if sh.Range.Lo != want {
			return nil, fmt.Errorf("serve: shard ranges do not tile the id space: %s does not start at %d", sh.Range, want)
		}
		if sh.Range.Hi <= sh.Range.Lo {
			return nil, fmt.Errorf("serve: shard %d range %s is empty", i, sh.Range)
		}
		want = sh.Range.Hi
	}
	rt := &Router{
		shards:   sorted,
		total:    want,
		client:   &http.Client{Transport: opts.Transport},
		maxBatch: opts.MaxBatch,
		logger:   opts.Logger,
	}
	if rt.maxBatch <= 0 {
		rt.maxBatch = DefaultMaxBatch
	}
	if rt.logger == nil {
		rt.logger = log.Default()
	}
	return rt, nil
}

// TotalNodes returns the size of the routed id space.
func (rt *Router) TotalNodes() int { return rt.total }

// Shards returns the routed shard map, sorted by range.
func (rt *Router) Shards() []RouterShard { return append([]RouterShard(nil), rt.shards...) }

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// traffic here; in-flight fan-outs finish.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// shardOf returns the index of the shard owning global node u. u must
// be in [0, total).
func (rt *Router) shardOf(u int) int {
	i := sort.Search(len(rt.shards), func(i int) bool { return rt.shards[i].Range.Hi > u })
	return i
}

// checkNode validates u against the routed id space.
func (rt *Router) checkNode(u int) error {
	if u < 0 || u >= rt.total {
		return fmt.Errorf("node %d outside [0,%d): %w", u, rt.total, distsketch.ErrNodeRange)
	}
	return nil
}

// DiscoverShards builds a router's shard map by asking each base URL's
// /stats for its shard range. A base serving an unsharded full set
// reports no range and is mapped as one shard covering [0, nodes) — a
// router over a single full server routes everything to it, so the
// two topologies stay interchangeable. The discovered shards are
// validated by NewRouter, not here.
func DiscoverShards(ctx context.Context, bases []string, client *http.Client) ([]RouterShard, error) {
	if client == nil {
		client = http.DefaultClient
	}
	shards := make([]RouterShard, 0, len(bases))
	for _, base := range bases {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
		if err != nil {
			return nil, fmt.Errorf("serve: discovering %s: %w", base, err)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("serve: discovering %s: %w", base, err)
		}
		var stats StatsReply
		decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&stats)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("serve: discovering %s: /stats answered %d", base, resp.StatusCode)
		}
		if decErr != nil {
			return nil, fmt.Errorf("serve: discovering %s: decoding /stats: %w", base, decErr)
		}
		r := distsketch.ShardRange{Lo: 0, Hi: stats.Nodes}
		if stats.Shard != nil {
			r = distsketch.ShardRange{Lo: stats.Shard.Lo, Hi: stats.Shard.Hi}
		}
		shards = append(shards, RouterShard{Base: base, Range: r})
	}
	return shards, nil
}

// RouterStatsReply is the router's GET /stats response.
type RouterStatsReply struct {
	TotalNodes int               `json:"total_nodes"`
	Shards     []RouterShardInfo `json:"shards"`
	// QueriesServed counts estimates served (single + batched pairs).
	QueriesServed int64 `json:"queries_served"`
	// SameShardPairs counts pairs forwarded whole to one shard;
	// CrossShardPairs counts pairs resolved by fetching two wire
	// sketches and estimating in the router. Their sum bounds upstream
	// requests: fan-out never exceeds 2 shards per pair.
	SameShardPairs  int64 `json:"same_shard_pairs"`
	CrossShardPairs int64 `json:"cross_shard_pairs"`
	// UpstreamErrors counts shard requests that failed (network errors
	// and non-200 answers).
	UpstreamErrors int64 `json:"upstream_errors"`
	Draining       bool  `json:"draining"`
}

// RouterShardInfo is one shard map entry in the router's /stats.
type RouterShardInfo struct {
	Base string `json:"base"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// Handler returns the router's route table. The shapes mirror a shard
// server's, so clients cannot tell the two apart.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", rt.handleQuery)
	mux.HandleFunc("POST /query", rt.handleBatch)
	mux.HandleFunc("GET /sketch/{u}", rt.handleSketch)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	return mux
}

// upstreamError classifies a failed shard request for the reply and
// bumps the counter.
func (rt *Router) upstreamError(shard RouterShard, err error) error {
	rt.upstreamErrors.Add(1)
	return fmt.Errorf("shard %s %s: %v", shard.Range, shard.Base, err)
}

// fetchSketch gets global node u's wire sketch from its owning shard.
func (rt *Router) fetchSketch(ctx context.Context, u int) ([]byte, error) {
	sh := rt.shards[rt.shardOf(u)]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.Base+"/sketch/"+strconv.Itoa(u), nil)
	if err != nil {
		return nil, rt.upstreamError(sh, err)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, rt.upstreamError(sh, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var reply errorReply
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply)
		if reply.Error == "" {
			reply.Error = http.StatusText(resp.StatusCode)
		}
		return nil, rt.upstreamError(sh, fmt.Errorf("/sketch/%d answered %d: %s", u, resp.StatusCode, reply.Error))
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<26))
	if err != nil {
		return nil, rt.upstreamError(sh, err)
	}
	return blob, nil
}

// queryPair resolves one validated pair: forwarded whole when both
// nodes share a shard, sketch-exchange across exactly two shards
// otherwise.
func (rt *Router) queryPair(ctx context.Context, u, v int, fetch func(context.Context, int) ([]byte, error)) (distsketch.Dist, error) {
	su, sv := rt.shardOf(u), rt.shardOf(v)
	if su == sv {
		rt.sameShard.Add(1)
		return rt.forwardQuery(ctx, rt.shards[su], u, v)
	}
	rt.crossShard.Add(1)
	bu, err := fetch(ctx, u)
	if err != nil {
		return 0, err
	}
	bv, err := fetch(ctx, v)
	if err != nil {
		return 0, err
	}
	d, err := distsketch.Estimate(bu, bv)
	if err != nil {
		// The two shards disagree about the sketch kind (or a blob is
		// corrupt) — an operator problem, not the client's.
		rt.upstreamErrors.Add(1)
		return 0, fmt.Errorf("estimating from fetched sketches: %v", err)
	}
	return d, nil
}

// forwardQuery relays a same-shard pair to its shard's single-query
// endpoint and decodes the estimate.
func (rt *Router) forwardQuery(ctx context.Context, sh RouterShard, u, v int) (distsketch.Dist, error) {
	url := fmt.Sprintf("%s/query?u=%d&v=%d", sh.Base, u, v)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, rt.upstreamError(sh, err)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, rt.upstreamError(sh, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var reply errorReply
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply)
		if reply.Error == "" {
			reply.Error = http.StatusText(resp.StatusCode)
		}
		return 0, rt.upstreamError(sh, fmt.Errorf("/query answered %d: %s", resp.StatusCode, reply.Error))
	}
	var res QueryResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&res); err != nil {
		return 0, rt.upstreamError(sh, err)
	}
	if res.Error != "" {
		return 0, rt.upstreamError(sh, errors.New(res.Error))
	}
	if res.Unreachable || res.Estimate == nil {
		return distsketch.Inf, nil
	}
	return *res.Estimate, nil
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	u, err := queryParam(r, "u")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := queryParam(r, "v")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := rt.checkNode(u); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if err := rt.checkNode(v); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	d, err := rt.queryPair(r.Context(), u, v, rt.fetchSketch)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rt.queries.Add(1)
	writeJSON(w, http.StatusOK, result(u, v, d, nil))
}

// handleBatch fans a pair batch out across the shards: same-shard pairs
// are grouped and forwarded as one sub-batch per shard, cross-shard
// pairs share one sketch fetch per distinct node (memoized for the
// whole request). Per-pair failures — including a shard being down —
// land in that pair's Error field; the batch as a whole still answers
// 200, so one dead shard degrades the answers it owns instead of the
// whole request.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, int64(rt.maxBatch)*64+1024)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		if maxErr := (*http.MaxBytesError)(nil); errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding request body: %v", err)
		return
	}
	if len(req.Pairs) > rt.maxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "%d pairs exceed the %d-pair batch cap", len(req.Pairs), rt.maxBatch)
		return
	}
	results := make([]QueryResult, len(req.Pairs))
	dists := make([]distsketch.Dist, len(req.Pairs))
	// Group same-shard pairs per shard; collect cross-shard pairs.
	groups := make(map[int][]int)
	var cross []int
	for i, p := range req.Pairs {
		if err := rt.checkNode(p.U); err != nil {
			results[i] = resultInto(p.U, p.V, 0, err, &dists[i])
			continue
		}
		if err := rt.checkNode(p.V); err != nil {
			results[i] = resultInto(p.U, p.V, 0, err, &dists[i])
			continue
		}
		su, sv := rt.shardOf(p.U), rt.shardOf(p.V)
		if su == sv {
			groups[su] = append(groups[su], i)
		} else {
			cross = append(cross, i)
		}
	}
	var wg sync.WaitGroup
	for si, idxs := range groups {
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			rt.forwardSubBatch(r.Context(), rt.shards[si], req.Pairs, idxs, results, dists)
		}(si, idxs)
	}
	// Cross-shard pairs: one memoized sketch fetch per distinct node for
	// the whole batch, then local estimates.
	if len(cross) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			memo := newSketchMemo(rt)
			for _, i := range cross {
				p := req.Pairs[i]
				d, err := rt.queryPair(r.Context(), p.U, p.V, memo.fetch)
				results[i] = resultInto(p.U, p.V, d, err, &dists[i])
			}
		}()
	}
	wg.Wait()
	served := int64(0)
	for i := range results {
		if results[i].Error == "" {
			served++
		}
	}
	rt.queries.Add(served)
	writeJSON(w, http.StatusOK, BatchReply{Results: results})
}

// forwardSubBatch posts the pairs at idxs (all owned by sh) as one
// sub-batch and scatters the replies back to their request positions.
// A failed sub-batch marks each of its pairs with the failure.
func (rt *Router) forwardSubBatch(ctx context.Context, sh RouterShard, pairs []QueryPair, idxs []int, results []QueryResult, dists []distsketch.Dist) {
	sub := BatchRequest{Pairs: make([]QueryPair, len(idxs))}
	for k, i := range idxs {
		sub.Pairs[k] = pairs[i]
	}
	rt.sameShard.Add(int64(len(idxs)))
	reply, err := rt.postBatch(ctx, sh, sub)
	if err != nil {
		for _, i := range idxs {
			p := pairs[i]
			results[i] = resultInto(p.U, p.V, 0, err, &dists[i])
		}
		return
	}
	for k, i := range idxs {
		res := reply.Results[k]
		switch {
		case res.Error != "":
			results[i] = resultInto(pairs[i].U, pairs[i].V, 0, errors.New(res.Error), &dists[i])
		case res.Unreachable || res.Estimate == nil:
			results[i] = resultInto(pairs[i].U, pairs[i].V, distsketch.Inf, nil, &dists[i])
		default:
			results[i] = resultInto(pairs[i].U, pairs[i].V, *res.Estimate, nil, &dists[i])
		}
	}
}

func (rt *Router) postBatch(ctx context.Context, sh RouterShard, sub BatchRequest) (*BatchReply, error) {
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.Base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, rt.upstreamError(sh, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, rt.upstreamError(sh, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var reply errorReply
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply)
		if reply.Error == "" {
			reply.Error = http.StatusText(resp.StatusCode)
		}
		return nil, rt.upstreamError(sh, fmt.Errorf("/query answered %d: %s", resp.StatusCode, reply.Error))
	}
	var reply BatchReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<26)).Decode(&reply); err != nil {
		return nil, rt.upstreamError(sh, err)
	}
	if len(reply.Results) != len(sub.Pairs) {
		return nil, rt.upstreamError(sh, fmt.Errorf("sub-batch answered %d results for %d pairs", len(reply.Results), len(sub.Pairs)))
	}
	return &reply, nil
}

// sketchMemo caches wire sketches fetched during one batch, so a node
// appearing in many cross-shard pairs is fetched once.
type sketchMemo struct {
	rt    *Router
	blobs map[int][]byte
	errs  map[int]error
}

func newSketchMemo(rt *Router) *sketchMemo {
	return &sketchMemo{rt: rt, blobs: make(map[int][]byte), errs: make(map[int]error)}
}

func (m *sketchMemo) fetch(ctx context.Context, u int) ([]byte, error) {
	if b, ok := m.blobs[u]; ok {
		return b, nil
	}
	if err, ok := m.errs[u]; ok {
		return nil, err
	}
	b, err := m.rt.fetchSketch(ctx, u)
	if err != nil {
		m.errs[u] = err
		return nil, err
	}
	m.blobs[u] = b
	return b, nil
}

// handleSketch proxies a wire-sketch request to the owning shard, so a
// peer can fetch any node's sketch through the router with the same URL
// shape it would use against a full server.
func (rt *Router) handleSketch(w http.ResponseWriter, r *http.Request) {
	u, err := strconv.Atoi(r.PathValue("u"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "node id %q is not an integer", r.PathValue("u"))
		return
	}
	if err := rt.checkNode(u); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	blob, err := rt.fetchSketch(r.Context(), u)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	reply := RouterStatsReply{
		TotalNodes:      rt.total,
		QueriesServed:   rt.queries.Load(),
		SameShardPairs:  rt.sameShard.Load(),
		CrossShardPairs: rt.crossShard.Load(),
		UpstreamErrors:  rt.upstreamErrors.Load(),
		Draining:        rt.draining.Load(),
	}
	for _, sh := range rt.shards {
		reply.Shards = append(reply.Shards, RouterShardInfo{Base: sh.Base, Lo: sh.Range.Lo, Hi: sh.Range.Hi})
	}
	writeJSON(w, http.StatusOK, reply)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthReply{Status: "ok"})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, ReadyReply{Ready: true, Nodes: rt.total})
}
