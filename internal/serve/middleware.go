package serve

// The robustness middleware stack, shared by the shard server and the
// router (both tiers fail the same ways). Three concerns, in the order
// they wrap a request (recovery outermost):
//
//   - recoverMiddleware: a handler panic becomes a logged 500 and the
//     process survives; a panic after the response already started
//     aborts the connection instead, so the client can never mistake a
//     truncated body for a complete 200.
//   - gateMiddleware: a bounded in-flight admission gate. At most
//     cap(sem) requests execute at once; the rest are shed immediately
//     with 503 + Retry-After. Shedding beats queueing: an unbounded
//     queue converts overload into memory growth and latencies the
//     client has long given up on, while a fast 503 lets well-behaved
//     clients back off.
//   - deadlineMiddleware: attaches context.WithTimeout to the request
//     so long executions (large batches, repairs, upstream fan-outs)
//     observe a budget.

import (
	"context"
	"log"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// recoverWriter tracks whether the response has started, so the panic
// handler knows whether a clean 500 is still possible.
type recoverWriter struct {
	http.ResponseWriter
	wrote bool
}

func (rw *recoverWriter) WriteHeader(code int) {
	rw.wrote = true
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *recoverWriter) Write(b []byte) (int, error) {
	rw.wrote = true
	return rw.ResponseWriter.Write(b)
}

// recoverMiddleware converts a handler panic into a logged 500 (counted
// in panics) so one poisoned request cannot take down every other
// connection in the process.
func recoverMiddleware(logger *log.Logger, panics *atomic.Int64, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rw := &recoverWriter{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				// The connection is already being torn down deliberately;
				// re-panic and let net/http handle it quietly.
				panic(p)
			}
			panics.Add(1)
			logger.Printf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			if !rw.wrote {
				writeError(rw, http.StatusInternalServerError, "internal error")
				return
			}
			// The response already started: a 500 can no longer be
			// delivered, so abort the connection — the client sees a
			// transport error, never a truncated body passing as success.
			panic(http.ErrAbortHandler)
		}()
		h.ServeHTTP(rw, r)
	})
}

// gateMiddleware is the bounded admission gate (counted in shed); nil
// sem means unbounded.
func gateMiddleware(sem chan struct{}, shed *atomic.Int64, h http.Handler) http.Handler {
	if sem == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
			h.ServeHTTP(w, r)
		default:
			shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				"server at capacity (%d requests in flight); retry after backoff", cap(sem))
		}
	})
}

// deadlineMiddleware attaches the per-request execution deadline.
// Handlers with long loops (batch queries, upstream fan-outs) poll
// r.Context() and cut off cleanly.
func deadlineMiddleware(timeout time.Duration, h http.Handler) http.Handler {
	if timeout <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) withRecover(h http.Handler) http.Handler {
	return recoverMiddleware(s.logger, &s.panics, h)
}

func (s *Server) withGate(h http.Handler) http.Handler {
	return gateMiddleware(s.sem, &s.shed, h)
}

func (s *Server) withDeadline(h http.Handler) http.Handler {
	return deadlineMiddleware(s.reqTimeout, h)
}
