package serve

// Fault injection for the replicated router tier, in the style of
// fault_test.go: every scenario an operator will meet — a replica
// dying mid-batch, a slow replica losing the hedge race, a whole
// replica set down, a flapping replica ejected and reinstated, the
// shard map refreshed under live traffic — is pinned under -race with
// the invariant that matters: the router may degrade loudly, but it
// never serves a wrong answer.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distsketch"
)

// replicaFaultTransport is the fault-injection seam for router tests:
// per-host it can refuse connections (down), refuse after the first n
// requests pass (passCap — a replica dying mid-batch), or delay
// responses (a slow replica for hedge races). Every request's host and
// path is logged so tests can assert which replicas served traffic.
type replicaFaultTransport struct {
	mu      sync.Mutex
	hosts   []string
	paths   []string
	down    map[string]bool
	passCap map[string]int
	delay   map[string]time.Duration
}

func newReplicaFaultTransport() *replicaFaultTransport {
	return &replicaFaultTransport{
		down:    map[string]bool{},
		passCap: map[string]int{},
		delay:   map[string]time.Duration{},
	}
}

func (ft *replicaFaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	ft.mu.Lock()
	ft.hosts = append(ft.hosts, host)
	ft.paths = append(ft.paths, req.URL.Path)
	isDown := ft.down[host]
	if n, ok := ft.passCap[host]; ok {
		if n <= 0 {
			isDown = true
		} else {
			ft.passCap[host] = n - 1
		}
	}
	d := ft.delay[host]
	ft.mu.Unlock()
	if isDown {
		return nil, fmt.Errorf("injected fault: %s is down", host)
	}
	if d > 0 {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d):
		}
	}
	return http.DefaultTransport.RoundTrip(req)
}

func (ft *replicaFaultTransport) setDown(host string, down bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.down[host] = down
}

func (ft *replicaFaultTransport) setDelay(host string, d time.Duration) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.delay[host] = d
}

func (ft *replicaFaultTransport) setPassCap(host string, n int) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.passCap[host] = n
}

func (ft *replicaFaultTransport) mark() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.hosts)
}

// queryHostsSince returns the distinct hosts that served query traffic
// (/query or /sketch/*) since mark — probe traffic (/healthz, /stats)
// is excluded, so ejection tests can assert an ejected replica gets
// probes but no queries.
func (ft *replicaFaultTransport) queryHostsSince(mark int) map[string]bool {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	out := map[string]bool{}
	for i := mark; i < len(ft.hosts); i++ {
		p := ft.paths[i]
		if p == "/query" || strings.HasPrefix(p, "/sketch/") {
			out[ft.hosts[i]] = true
		}
	}
	return out
}

// requestsSince counts all upstream requests since mark.
func (ft *replicaFaultTransport) requestsSince(mark int) int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.hosts) - mark
}

func hostOf(t *testing.T, base string) string {
	t.Helper()
	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// buildReplicatedFixture builds the 100-node fixture sharded `shards`
// ways and starts `nReplicas` independent servers per shard, each with
// its own mmap handle on the same shard envelope — byte-identical
// replicas, exactly what a replica set promises. Returns the full set,
// the RouterShard groups, and the per-shard replica base URLs.
func buildReplicatedFixture(t *testing.T, shards, nReplicas int) (*distsketch.SketchSet, []RouterShard, [][]string) {
	t.Helper()
	full, bases, ranges := buildShardedFixture(t, shards)
	group := make([][]string, shards)
	rshards := make([]RouterShard, shards)
	for i := range bases {
		group[i] = []string{bases[i]}
	}
	// Additional replicas: a fresh server per shard envelope. They live
	// on distinct ports, so fault injection can target one replica.
	dir := t.TempDir()
	paths, err := distsketch.SaveShards(dir, full, ranges)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < nReplicas; r++ {
		for i, path := range paths {
			shard, err := distsketch.OpenSketchSet(path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { shard.Close() })
			srv, err := New(shard, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			group[i] = append(group[i], ts.URL)
		}
	}
	for i := range rshards {
		rshards[i] = RouterShard{Replicas: group[i], Range: ranges[i]}
	}
	return full, rshards, group
}

// newFaultRouter builds a router with fast fault-test tunings layered
// under the caller's overrides and mounts it on a test server.
func newFaultRouter(t *testing.T, shards []RouterShard, opts RouterOptions) (*Router, *httptest.Server) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = discardLogger()
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = time.Millisecond
	}
	rt, err := NewRouter(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// crossBatchBody builds a batch of cross-shard pairs (i, n-1-i) — each
// pair costs two sketch fetches, so a batch spreads many upstream
// requests across the replica groups, giving a mid-batch fault
// something to land in.
func crossBatchBody(n, pairs int) string {
	items := make([]string, 0, pairs)
	for i := 0; i < pairs; i++ {
		items = append(items, fmt.Sprintf(`{"u":%d,"v":%d}`, i, n-1-i))
	}
	return `{"pairs":[` + strings.Join(items, ",") + `]}`
}

// batchBaseline answers a batch body from a direct full-set server, the
// truth routed answers must match byte for byte.
func batchBaseline(t *testing.T, full *distsketch.SketchSet, body string) []string {
	t.Helper()
	heapSrv := newTestServer(t, full, Options{})
	var reply BatchReply
	if code := postJSON(t, heapSrv.URL+"/query", body, &reply); code != http.StatusOK {
		t.Fatalf("baseline batch: status %d", code)
	}
	out := make([]string, len(reply.Results))
	for i := range reply.Results {
		b, _ := json.Marshal(reply.Results[i])
		out[i] = string(b)
	}
	return out
}

// requireBatchMatches posts body to the router and requires every
// result byte-identical to the baseline — zero errors, zero wrong
// answers.
func requireBatchMatches(t *testing.T, routerURL, body string, baseline []string) {
	t.Helper()
	var reply BatchReply
	if code := postJSON(t, routerURL+"/query", body, &reply); code != http.StatusOK {
		t.Fatalf("routed batch: status %d", code)
	}
	if len(reply.Results) != len(baseline) {
		t.Fatalf("routed batch: %d results, want %d", len(reply.Results), len(baseline))
	}
	for i := range reply.Results {
		b, _ := json.Marshal(reply.Results[i])
		if string(b) != baseline[i] {
			t.Fatalf("pair %d: routed %s != baseline %s", i, b, baseline[i])
		}
	}
}

// TestRouterReplicaFailoverMidBatch kills one replica of a group in the
// middle of a batch: its first few requests succeed, then it starts
// refusing connections. Every pair must still answer byte-identical to
// a direct full-set server — failover is invisible to the client — and
// the failover must be visible in /stats (retries and the dead
// replica's failures moved).
func TestRouterReplicaFailoverMidBatch(t *testing.T) {
	full, shards, group := buildReplicatedFixture(t, 2, 2)
	ft := newReplicaFaultTransport()
	rt, ts := newFaultRouter(t, shards, RouterOptions{Transport: ft, HedgeDelay: 5 * time.Millisecond})

	body := crossBatchBody(full.N(), 20)
	baseline := batchBaseline(t, full, body)

	// The first replica of shard 0 dies after 3 more requests — inside
	// the batch's fan-out.
	victim := hostOf(t, group[0][0])
	ft.setPassCap(victim, 3)

	requireBatchMatches(t, ts.URL, body, baseline)

	var stats RouterStatsReply
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.Retries == 0 && stats.HedgesFired == 0 {
		t.Error("failover left no trace: retries and hedges_fired both zero")
	}
	var victimFailures int64
	for _, sh := range stats.Shards {
		for _, rep := range sh.Replicas {
			if hostOf(t, rep.Base) == victim {
				victimFailures = rep.Failures
			}
		}
	}
	if victimFailures == 0 {
		t.Error("dead replica's failure counter did not move")
	}
	if rt.TotalNodes() != full.N() {
		t.Fatalf("TotalNodes = %d, want %d", rt.TotalNodes(), full.N())
	}
}

// TestRouterHedgeSlowReplica pins the hedge race: one replica of a
// two-replica shard answers slowly, so queries landing on it first are
// hedged to the fast replica, which wins. The slow replica is slow,
// not broken — it must not be ejected by lost races.
func TestRouterHedgeSlowReplica(t *testing.T) {
	_, shards, group := buildReplicatedFixture(t, 1, 2)
	ft := newReplicaFaultTransport()
	_, ts := newFaultRouter(t, shards, RouterOptions{Transport: ft, HedgeDelay: 10 * time.Millisecond})

	slow := hostOf(t, group[0][0])
	ft.setDelay(slow, 300*time.Millisecond)

	// Rotation alternates the primary, so across several queries the
	// slow replica leads at least once and loses the race.
	for i := 0; i < 6; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, i, i+10))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}
	var stats RouterStatsReply
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.HedgesFired == 0 {
		t.Error("no hedge fired against the slow replica")
	}
	if stats.HedgesWon == 0 {
		t.Error("no hedge won against the slow replica")
	}
	for _, sh := range stats.Shards {
		for _, rep := range sh.Replicas {
			if !rep.Healthy {
				t.Errorf("replica %s ejected by lost hedge races (failures=%d)", rep.Base, rep.Failures)
			}
		}
	}
}

// TestRouterAllReplicasDown is today's TestRouterShardDown contract
// lifted to replica sets: with every replica of one shard down, pairs
// owned by live shards keep answering, pairs touching the dead group
// fail loudly (502 single, per-pair errors in a batch), and the
// upstream-error counter moves. Availability degrades exactly as a
// single dead shard always has — never silently.
func TestRouterAllReplicasDown(t *testing.T) {
	_, shards, group := buildReplicatedFixture(t, 4, 2)
	ft := newReplicaFaultTransport()
	for _, base := range group[2] {
		ft.setDown(hostOf(t, base), true)
	}
	_, ts := newFaultRouter(t, shards, RouterOptions{Transport: ft, HedgeDelay: 2 * time.Millisecond})

	ranges := make([]distsketch.ShardRange, len(shards))
	for i := range shards {
		ranges[i] = shards[i].Range
	}
	resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, ranges[0].Lo, ranges[0].Lo+1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live-shard query: status %d", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, ranges[2].Lo, ranges[2].Lo+1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead-group query: status %d, want 502", resp.StatusCode)
	}
	body := fmt.Sprintf(`{"pairs":[{"u":%d,"v":%d},{"u":%d,"v":%d},{"u":%d,"v":%d}]}`,
		ranges[0].Lo, ranges[0].Lo+1, // live
		ranges[2].Lo, ranges[2].Lo+1, // dead group
		ranges[1].Lo, ranges[3].Lo) // cross, both live
	var batch BatchReply
	if code := postJSON(t, ts.URL+"/query", body, &batch); code != http.StatusOK {
		t.Fatalf("mixed batch: status %d", code)
	}
	if batch.Results[0].Error != "" {
		t.Errorf("live pair errored: %s", batch.Results[0].Error)
	}
	if batch.Results[1].Error == "" {
		t.Error("dead-group pair did not error")
	}
	if batch.Results[2].Error != "" {
		t.Errorf("cross live pair errored: %s", batch.Results[2].Error)
	}
	var stats RouterStatsReply
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.UpstreamErrors == 0 {
		t.Error("upstream_errors did not move with a whole replica set down")
	}
	if stats.Retries == 0 {
		t.Error("retries did not move: the router gave up without trying the other replica")
	}
}

// TestRouterFlapEjectReinstate drives the health prober: a replica
// that starts refusing connections is ejected after consecutive
// failures (query traffic then avoids it — probes are the only
// requests it sees), and once it recovers, consecutive probe successes
// reinstate it into the rotation.
func TestRouterFlapEjectReinstate(t *testing.T) {
	_, shards, group := buildReplicatedFixture(t, 1, 2)
	ft := newReplicaFaultTransport()
	rt, ts := newFaultRouter(t, shards, RouterOptions{
		Transport:      ft,
		HedgeDelay:     -1, // isolate the prober's ejection, no hedge noise
		ProbeInterval:  10 * time.Millisecond,
		FailThreshold:  2,
		ReinstateAfter: 2,
	})

	flapper := hostOf(t, group[0][0])
	healthOf := func(host string) (healthy bool, found bool) {
		var stats RouterStatsReply
		if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
			t.Fatalf("router stats: status %d", code)
		}
		for _, sh := range stats.Shards {
			for _, rep := range sh.Replicas {
				if hostOf(t, rep.Base) == host {
					return rep.Healthy, true
				}
			}
		}
		return false, false
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	ft.setDown(flapper, true)
	waitFor("ejection", func() bool {
		h, ok := healthOf(flapper)
		return ok && !h
	})

	// While ejected, query traffic routes around the replica entirely.
	mark := ft.mark()
	for i := 0; i < 8; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, i, i+5))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query with ejected replica: status %d", resp.StatusCode)
		}
	}
	if hosts := ft.queryHostsSince(mark); hosts[flapper] {
		t.Errorf("ejected replica %s still served query traffic", flapper)
	}

	// Recovery: consecutive probe successes reinstate it.
	ft.setDown(flapper, false)
	waitFor("reinstatement", func() bool {
		h, ok := healthOf(flapper)
		return ok && h
	})

	var stats RouterStatsReply
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.Probes == 0 {
		t.Error("prober ran no sweeps")
	}
	var ejections int64
	for _, sh := range stats.Shards {
		for _, rep := range sh.Replicas {
			ejections += rep.Ejections
		}
	}
	if ejections == 0 {
		t.Error("no ejection recorded for the flapping replica")
	}
	_ = rt
}

// swapHandler lets a test server change what it serves mid-test — the
// "physical host" stays, the shard behind it moves.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// shardHandlerOver opens one shard envelope and returns a serve
// handler over it.
func shardHandlerOver(t *testing.T, path string) http.Handler {
	t.Helper()
	shard, err := distsketch.OpenSketchSet(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shard.Close() })
	srv, err := New(shard, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler()
}

// TestRouterLiveMapRefresh re-splits the fleet under live traffic: two
// physical servers move from a 50/50 split to a 30/70 split. While the
// fleet is half-moved the refresh must refuse the non-tiling map and
// keep the old one; once both servers moved, the refresh swaps the new
// map in and every query answers byte-identical to a direct full-set
// server. Errors during the transition are allowed — wrong answers
// never: every 200 a concurrent hammering client receives must match
// the baseline.
func TestRouterLiveMapRefresh(t *testing.T) {
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 100, 10, 100, 13)
	if err != nil {
		t.Fatal(err)
	}
	full, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	n := full.N()
	splitA := distsketch.EvenShardRanges(n, 2)
	splitB := []distsketch.ShardRange{{Lo: 0, Hi: 30}, {Lo: 30, Hi: n}}
	dirA, dirB := t.TempDir(), t.TempDir()
	pathsA, err := distsketch.SaveShards(dirA, full, splitA)
	if err != nil {
		t.Fatal(err)
	}
	pathsB, err := distsketch.SaveShards(dirB, full, splitB)
	if err != nil {
		t.Fatal(err)
	}

	// Two physical hosts, initially serving split A.
	swaps := [2]*swapHandler{{}, {}}
	bases := make([]string, 2)
	for i := range swaps {
		swaps[i].set(shardHandlerOver(t, pathsA[i]))
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		bases[i] = ts.URL
	}

	shards, err := DiscoverShards(context.Background(), bases, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, ts := newFaultRouter(t, shards, RouterOptions{HedgeDelay: -1})

	// Baseline truth for the hammered pairs.
	heapSrv := newTestServer(t, full, Options{})
	type pair struct{ u, v int }
	var pairs []pair
	baseline := map[pair]string{}
	for u := 0; u < n; u += 13 {
		v := (u*29 + 11) % n
		p := pair{u, v}
		pairs = append(pairs, p)
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", heapSrv.URL, u, v))
		if err != nil {
			t.Fatal(err)
		}
		var res QueryResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		b, _ := json.Marshal(res)
		baseline[p] = string(b)
	}

	// Hammer the router throughout the move; every 200 must match the
	// baseline, transition errors are tolerated.
	stop := make(chan struct{})
	var wrong atomic.Int64
	var hammer sync.WaitGroup
	hammer.Add(1)
	go func() {
		defer hammer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := pairs[i%len(pairs)]
			resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, p.u, p.v))
			if err != nil {
				continue
			}
			var res QueryResult
			decErr := json.NewDecoder(resp.Body).Decode(&res)
			code := resp.StatusCode
			resp.Body.Close()
			if code != http.StatusOK || decErr != nil {
				continue // degraded mid-move is allowed
			}
			b, _ := json.Marshal(res)
			if string(b) != baseline[p] {
				wrong.Add(1)
			}
		}
	}()

	// Move host 0 to split B. The fleet now reports [0,30) and [50,100)
	// — a gap. The refresh must refuse it and keep the old map serving.
	swaps[0].set(shardHandlerOver(t, pathsB[0]))
	if err := rt.RefreshShardMap(context.Background()); err == nil {
		t.Error("refresh accepted a non-tiling half-moved fleet")
	}
	if rt.TotalNodes() != n {
		t.Fatalf("failed refresh changed the map: TotalNodes=%d", rt.TotalNodes())
	}

	// Move host 1 too; now the fleet tiles again and the refresh lands.
	swaps[1].set(shardHandlerOver(t, pathsB[1]))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := rt.RefreshShardMap(context.Background()); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("refresh never succeeded after full move: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := rt.Shards()
	if len(got) != 2 || got[0].Range != splitB[0] || got[1].Range != splitB[1] {
		t.Fatalf("refreshed map %+v, want split %+v", got, splitB)
	}

	// Let traffic run against the new map, then stop and audit.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	hammer.Wait()
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d wrong answers served during live re-split", w)
	}
	// After the move every pair answers again, byte-identical.
	for _, p := range pairs {
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, p.u, p.v))
		if err != nil {
			t.Fatal(err)
		}
		var res QueryResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("(%d,%d) after re-split: status %d", p.u, p.v, resp.StatusCode)
		}
		if b, _ := json.Marshal(res); string(b) != baseline[pair{p.u, p.v}] {
			t.Fatalf("(%d,%d) after re-split: %s != %s", p.u, p.v, b, baseline[pair{p.u, p.v}])
		}
	}
	var stats RouterStatsReply
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.MapRefreshes == 0 {
		t.Error("map_refreshes did not move")
	}
	if stats.MapRefreshFailures == 0 {
		t.Error("map_refresh_failures did not record the refused half-moved map")
	}
}

// TestRouterStale421TriggersRefresh misconfigures the router with a
// swapped shard map: upstreams answer 421 with their real range, which
// must mark the map stale, schedule a live refresh, and heal the
// router without a restart.
func TestRouterStale421TriggersRefresh(t *testing.T) {
	_, bases, ranges := buildShardedFixture(t, 2)
	// Deliberately wrong: each base is configured with the other's range.
	shards := []RouterShard{
		{Base: bases[0], Range: ranges[1]},
		{Base: bases[1], Range: ranges[0]},
	}
	_, ts := newFaultRouter(t, shards, RouterOptions{HedgeDelay: -1})

	// A same-shard pair routed by the wrong map lands on the wrong
	// server, which answers 421. The router reports the failure and
	// kicks a refresh.
	u, v := ranges[0].Lo, ranges[0].Lo+1
	resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, u, v))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("stale-map query: status %d, want 502", resp.StatusCode)
	}

	// The refresh heals the map; queries come back without a restart.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, u, v))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never healed from the stale map: status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	var stats RouterStatsReply
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.StaleMapHits == 0 {
		t.Error("stale_map_hits did not move on an upstream 421")
	}
	if stats.MapRefreshes == 0 {
		t.Error("map_refreshes did not move after the 421")
	}
}

// TestRouter404Passthrough pins that an out-of-range id answers the
// same 404 body through the router as a direct full-set server — the
// router is indistinguishable from a server even in its errors.
func TestRouter404Passthrough(t *testing.T) {
	full, shards, _ := buildReplicatedFixture(t, 2, 1)
	_, ts := newFaultRouter(t, shards, RouterOptions{})
	heapSrv := newTestServer(t, full, Options{})

	bad := full.N() + 7
	fetch := func(base string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=0", base, bad))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var reply errorReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(reply)
		return resp.StatusCode, string(b)
	}
	directCode, directBody := fetch(heapSrv.URL)
	routedCode, routedBody := fetch(ts.URL)
	if directCode != http.StatusNotFound || routedCode != http.StatusNotFound {
		t.Fatalf("statuses: direct %d, routed %d, want 404/404", directCode, routedCode)
	}
	if directBody != routedBody {
		t.Fatalf("404 bodies differ:\ndirect: %s\nrouted: %s", directBody, routedBody)
	}
}

// TestRouterOversizedBatchBeforeUpstream pins that a batch beyond the
// cap is refused with 413 before any upstream request is made — the
// router never spends fleet capacity on a request it will refuse.
func TestRouterOversizedBatchBeforeUpstream(t *testing.T) {
	_, shards, _ := buildReplicatedFixture(t, 2, 1)
	ft := newReplicaFaultTransport()
	_, ts := newFaultRouter(t, shards, RouterOptions{Transport: ft, MaxBatch: 4})

	mark := ft.mark()
	body := crossBatchBody(100, 5) // one over the cap
	var reply errorReply
	if code := postJSON(t, ts.URL+"/query", body, &reply); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413", code)
	}
	if n := ft.requestsSince(mark); n != 0 {
		t.Fatalf("oversized batch reached upstream: %d requests", n)
	}
}

// TestRouterMiddlewarePanicAndGate pins the router's own middleware
// stack: a handler panic becomes a clean 500 and the router survives;
// beyond MaxInFlight concurrent queries the router sheds with 503 +
// Retry-After; both leave counters in /stats.
func TestRouterMiddlewarePanicAndGate(t *testing.T) {
	_, shards, _ := buildReplicatedFixture(t, 2, 1)
	rt, ts := newFaultRouter(t, shards, RouterOptions{MaxInFlight: 2})

	// Panic: poison exactly one request via the test seam.
	var poison atomic.Bool
	rt.queryHook = func() {
		if poison.CompareAndSwap(true, false) {
			panic("injected router panic")
		}
	}
	poison.Store(true)
	resp, err := http.Get(ts.URL + "/query?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned query: status %d, want 500", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/query?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after panic: status %d — the router did not survive", resp.StatusCode)
	}

	// Gate: hold MaxInFlight requests open, the next is shed.
	hold := make(chan struct{})
	entered := make(chan struct{}, 4)
	rt.queryHook = func() {
		entered <- struct{}{}
		<-hold
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?u=0&v=1")
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-entered
	<-entered
	resp, err = http.Get(ts.URL + "/query?u=2&v=3")
	if err != nil {
		t.Fatal(err)
	}
	retryAfter := resp.Header.Get("Retry-After")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query at capacity: status %d, want 503", resp.StatusCode)
	}
	if retryAfter == "" {
		t.Error("shed response missing Retry-After")
	}
	close(hold)
	wg.Wait()
	rt.queryHook = nil

	var stats RouterStatsReply
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.PanicsRecovered != 1 {
		t.Errorf("panics_recovered = %d, want 1", stats.PanicsRecovered)
	}
	if stats.RequestsShed == 0 {
		t.Error("requests_shed did not move")
	}
}

// TestRouterChaosReplicaRestart is the chaos smoke: while batch load
// runs continuously, one replica of shard 0 is killed and restarted
// over and over (never both at once). Every batch must answer with
// zero per-pair errors and byte-identical results — the client never
// observes the churn.
func TestRouterChaosReplicaRestart(t *testing.T) {
	full, shards, group := buildReplicatedFixture(t, 2, 2)
	ft := newReplicaFaultTransport()
	_, ts := newFaultRouter(t, shards, RouterOptions{
		Transport:      ft,
		HedgeDelay:     5 * time.Millisecond,
		ProbeInterval:  20 * time.Millisecond,
		FailThreshold:  2,
		ReinstateAfter: 1,
	})

	body := crossBatchBody(full.N(), 15)
	baseline := batchBaseline(t, full, body)

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		rng := rand.New(rand.NewSource(42))
		hosts := []string{hostOf(t, group[0][0]), hostOf(t, group[0][1])}
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim := hosts[rng.Intn(len(hosts))]
			ft.setDown(victim, true)
			time.Sleep(25 * time.Millisecond)
			ft.setDown(victim, false)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(1500 * time.Millisecond)
	batches := 0
	for time.Now().Before(deadline) {
		requireBatchMatches(t, ts.URL, body, baseline)
		batches++
	}
	close(stop)
	chaos.Wait()
	if batches == 0 {
		t.Fatal("chaos loop ran no batches")
	}

	var stats RouterStatsReply
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.Retries == 0 && stats.HedgesFired == 0 {
		t.Error("chaos left no failover trace in /stats")
	}
	t.Logf("chaos: %d batches, retries=%d hedges=%d/%d upstream_errors=%d",
		batches, stats.Retries, stats.HedgesFired, stats.HedgesWon, stats.UpstreamErrors)
}
