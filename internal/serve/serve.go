// Package serve is the HTTP serving shell around a built sketch set —
// the paper's "millions of users" story made concrete. A process loads a
// persisted envelope once (distsketch.ReadSketchSet), holds the decoded
// sketch cache, and answers distance queries from the sketches alone:
//
//	GET  /query?u=&v=   one estimate
//	POST /query         many pairs per request (amortizes handler overhead)
//	GET  /sketch/{u}    node u's wire bytes, what a peer would request (§2.1)
//	GET  /stats         construction cost breakdown + sketch-size summary
//	POST /update-edge   batched incremental repair behind one atomic set swap
//	POST /save          crash-safe snapshot of the served set (SnapshotPath)
//	GET  /healthz       liveness: the process is up and routing
//	GET  /readyz        readiness: envelope loaded, not draining
//
// All request input is untrusted: node ids are validated with the
// facade's checked accessors (distsketch.ErrNodeRange), malformed JSON
// and oversized batches get client errors, and nothing a request
// carries can panic the process.
//
// Failure model: the handler stack is wrapped in three middlewares.
// Panic recovery turns a handler panic into a logged 500 (the process
// survives; a panic after the response started aborts the connection so
// the client never sees a silently truncated 200). A bounded in-flight
// admission gate sheds excess load with 503 + Retry-After instead of
// queueing unboundedly — overload degrades into fast, explicit
// rejections rather than collapse. A per-request deadline
// (context.WithTimeout) is plumbed into batch execution so one enormous
// batch cannot pin a worker past the configured budget. The /healthz
// and /readyz probes bypass the gate: an overloaded server is still
// alive, and readiness must answer during a drain. /stats bypasses it
// too, so operators can watch the shed counters while the gate is
// rejecting work.
//
// Concurrency model: the current (set, graph) pair lives behind one
// atomic.Pointer. Queries load the pointer and read immutable decoded
// sketches — no locks on the hot path. An update clones the set
// (O(n) pointer copy; the decoded sketches themselves are shared and
// never mutated), repairs the clone off to the side, and swaps the
// pointer only on success, so a query observes either the pre-repair or
// the post-repair set, never a half-repaired one. Updates serialize
// among themselves on a mutex. Graceful shutdown: call BeginDrain (flips
// /readyz to 503), then http.Server.Shutdown — in-flight queries and the
// in-flight update swap complete; new connections are refused.
package serve

import (
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"distsketch"
)

// DefaultMaxBatch is the POST /query pair cap when Options.MaxBatch is 0.
const DefaultMaxBatch = 4096

// DefaultMaxInFlight is the admission-gate capacity when
// Options.MaxInFlight is 0: at most this many requests execute
// concurrently; excess load is shed with 503 + Retry-After.
const DefaultMaxInFlight = 256

// DefaultRequestTimeout is the per-request execution deadline when
// Options.RequestTimeout is 0.
const DefaultRequestTimeout = 30 * time.Second

// Options configures a Server.
type Options struct {
	// Graph is the current topology, required for POST /update-edge (the
	// repair needs the changed graph). Nil disables updates; queries are
	// unaffected.
	Graph *distsketch.Graph
	// MaxBatch caps the pairs accepted per POST /query request (default
	// DefaultMaxBatch). Larger batches get 413.
	MaxBatch int
	// MaxInFlight bounds concurrently executing requests (default
	// DefaultMaxInFlight; negative disables the gate). Requests beyond
	// the bound are shed immediately with 503 + Retry-After — bounded
	// work, not an unbounded queue. /healthz, /readyz and /stats bypass
	// the gate.
	MaxInFlight int
	// RequestTimeout is the per-request execution deadline (default
	// DefaultRequestTimeout; negative disables it). Batch query execution
	// checks the deadline between pairs and answers 503 when it expires.
	RequestTimeout time.Duration
	// SnapshotPath enables POST /save: the served set is written there
	// crash-safely (distsketch.SaveSketchSet). Empty disables the
	// endpoint.
	SnapshotPath string
	// ProbeDecode makes GET /readyz decode node 0's label through the
	// query path, proving the envelope's bytes actually decode — not
	// merely that its directory scanned — before a load balancer routes
	// traffic here. Costs one first-touch decode on lazily loaded sets.
	ProbeDecode bool
	// Logger receives panic stacks and lifecycle lines. Nil means
	// log.Default().
	Logger *log.Logger
}

// state is the atomically-swapped unit: the sketch set and the topology
// it was built (or last repaired) against always travel together.
type state struct {
	set *distsketch.SketchSet
	g   *distsketch.Graph
}

// Server answers distance queries from a sketch set. Create one with New
// and mount Handler on an http.Server. All methods are safe for
// concurrent use.
type Server struct {
	cur          atomic.Pointer[state]
	updateMu     sync.Mutex // serializes /update-edge clone-repair-swap cycles
	saveMu       sync.Mutex // serializes /save snapshots (concurrent saves waste duplicate serialization)
	maxBatch     int
	reqTimeout   time.Duration // 0 = disabled
	sem          chan struct{} // admission gate; nil = disabled
	snapshotPath string
	probeDecode  bool
	logger       *log.Logger
	draining     atomic.Bool

	queries         atomic.Int64 // estimates served (single + batched)
	updates         atomic.Int64 // repair batches applied
	updateEdges     atomic.Int64 // edge changes applied across all batches
	rebuildRejected atomic.Int64 // batches refused with rebuild_required
	labelsReplaced  atomic.Int64 // labels replaced by applied swaps
	labelsShared    atomic.Int64 // labels shared across applied swaps
	shed            atomic.Int64 // requests rejected by the admission gate
	panics          atomic.Int64 // handler panics recovered
	deadlines       atomic.Int64 // requests cut off by the per-request deadline
	decodeFailures  atomic.Int64 // corrupt lazily loaded labels hit by traffic
	snapshots       atomic.Int64 // POST /save snapshots written

	// queryHook, when non-nil, runs before each batched pair executes —
	// a test seam for deadline and overload fault injection.
	queryHook func()
	// repairHook, when non-nil, observes the update pipeline's stages
	// ("clone" just before the set clone, "swap" just before the pointer
	// store) — a test seam pinning the one-clone-one-swap-per-batch
	// contract.
	repairHook func(stage string)
}

// New creates a server over a built (typically reloaded) sketch set.
func New(set *distsketch.SketchSet, opts Options) (*Server, error) {
	if set == nil || set.N() == 0 {
		return nil, fmt.Errorf("serve: empty sketch set")
	}
	if set.Sharded() && opts.Graph != nil {
		// A shard is read-only (repair needs every label); holding a
		// topology would advertise /update-edge support it cannot honor.
		return nil, fmt.Errorf("serve: a node-range shard is read-only; serve it without a graph (repair the full set and re-split)")
	}
	if opts.Graph != nil && opts.Graph.N() != set.N() {
		return nil, fmt.Errorf("serve: graph has %d nodes, sketch set has %d", opts.Graph.N(), set.N())
	}
	s := &Server{
		maxBatch:     opts.MaxBatch,
		reqTimeout:   opts.RequestTimeout,
		snapshotPath: opts.SnapshotPath,
		probeDecode:  opts.ProbeDecode,
		logger:       opts.Logger,
	}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	if s.reqTimeout == 0 {
		s.reqTimeout = DefaultRequestTimeout
	} else if s.reqTimeout < 0 {
		s.reqTimeout = 0
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	if maxInFlight > 0 {
		s.sem = make(chan struct{}, maxInFlight)
	}
	if s.logger == nil {
		s.logger = log.Default()
	}
	s.cur.Store(&state{set: set, g: opts.Graph})
	return s, nil
}

// Set returns the currently served sketch set (the latest swapped-in
// snapshot; an in-flight repair is not visible until it commits).
func (s *Server) Set() *distsketch.SketchSet { return s.cur.Load().set }

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// traffic here while in-flight requests finish. Queries keep being
// answered (a drain is not a refusal — connections already routed
// deserve their responses); call it just before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Counters is a point-in-time snapshot of the server's traffic and
// failure counters, as surfaced in /stats — the final shutdown log line
// reads it after the drain completes.
type Counters struct {
	Queries          int64
	Updates          int64 // applied repair batches
	UpdateEdges      int64 // edge changes applied across all batches
	RebuildRejected  int64 // batches refused with rebuild_required
	LabelsReplaced   int64 // labels replaced by applied swaps
	LabelsShared     int64 // labels shared across applied swaps
	Shed             int64
	PanicsRecovered  int64
	DeadlineExceeded int64
	DecodeFailures   int64
	Snapshots        int64
}

// Counters returns a snapshot of the server's counters.
func (s *Server) Counters() Counters {
	return Counters{
		Queries:          s.queries.Load(),
		Updates:          s.updates.Load(),
		UpdateEdges:      s.updateEdges.Load(),
		RebuildRejected:  s.rebuildRejected.Load(),
		LabelsReplaced:   s.labelsReplaced.Load(),
		LabelsShared:     s.labelsShared.Load(),
		Shed:             s.shed.Load(),
		PanicsRecovered:  s.panics.Load(),
		DeadlineExceeded: s.deadlines.Load(),
		DecodeFailures:   s.decodeFailures.Load(),
		Snapshots:        s.snapshots.Load(),
	}
}

// Handler returns the route table wrapped in the middleware stack
// (panic recovery outermost, then per-route admission gate and request
// deadline). Method mismatches answer 405.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	guard := func(h http.HandlerFunc) http.Handler { return s.withGate(s.withDeadline(h)) }
	mux.Handle("GET /query", guard(s.handleQuery))
	mux.Handle("POST /query", guard(s.handleBatch))
	mux.Handle("GET /sketch/{u}", guard(s.handleSketch))
	mux.Handle("POST /update-edge", guard(s.handleUpdateEdge))
	mux.Handle("POST /save", guard(s.handleSave))
	// Observability and probes bypass the gate: they must answer exactly
	// when the server is too busy (or too broken) to do real work.
	mux.Handle("GET /stats", s.withDeadline(http.HandlerFunc(s.handleStats)))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s.withRecover(mux)
}
