// Package serve is the HTTP serving shell around a built sketch set —
// the paper's "millions of users" story made concrete. A process loads a
// persisted envelope once (distsketch.ReadSketchSet), holds the decoded
// sketch cache, and answers distance queries from the sketches alone:
//
//	GET  /query?u=&v=   one estimate
//	POST /query         many pairs per request (amortizes handler overhead)
//	GET  /sketch/{u}    node u's wire bytes, what a peer would request (§2.1)
//	GET  /stats         construction cost breakdown + sketch-size summary
//	POST /update-edge   incremental repair behind an atomic set swap
//
// All request input is untrusted: node ids are validated with the
// facade's checked accessors (distsketch.ErrNodeRange), malformed JSON
// and oversized batches get client errors, and nothing a request
// carries can panic the process.
//
// Concurrency model: the current (set, graph) pair lives behind one
// atomic.Pointer. Queries load the pointer and read immutable decoded
// sketches — no locks on the hot path. An update clones the set
// (O(n) pointer copy; the decoded sketches themselves are shared and
// never mutated), repairs the clone off to the side, and swaps the
// pointer only on success, so a query observes either the pre-repair or
// the post-repair set, never a half-repaired one. Updates serialize
// among themselves on a mutex.
package serve

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"distsketch"
)

// DefaultMaxBatch is the POST /query pair cap when Options.MaxBatch is 0.
const DefaultMaxBatch = 4096

// Options configures a Server.
type Options struct {
	// Graph is the current topology, required for POST /update-edge (the
	// repair needs the changed graph). Nil disables updates; queries are
	// unaffected.
	Graph *distsketch.Graph
	// MaxBatch caps the pairs accepted per POST /query request (default
	// DefaultMaxBatch). Larger batches get 413.
	MaxBatch int
}

// state is the atomically-swapped unit: the sketch set and the topology
// it was built (or last repaired) against always travel together.
type state struct {
	set *distsketch.SketchSet
	g   *distsketch.Graph
}

// Server answers distance queries from a sketch set. Create one with New
// and mount Handler on an http.Server. All methods are safe for
// concurrent use.
type Server struct {
	cur      atomic.Pointer[state]
	updateMu sync.Mutex // serializes /update-edge clone-repair-swap cycles
	maxBatch int
	queries  atomic.Int64 // estimates served (single + batched)
	updates  atomic.Int64 // repairs applied
}

// New creates a server over a built (typically reloaded) sketch set.
func New(set *distsketch.SketchSet, opts Options) (*Server, error) {
	if set == nil || set.N() == 0 {
		return nil, fmt.Errorf("serve: empty sketch set")
	}
	if opts.Graph != nil && opts.Graph.N() != set.N() {
		return nil, fmt.Errorf("serve: graph has %d nodes, sketch set has %d", opts.Graph.N(), set.N())
	}
	s := &Server{maxBatch: opts.MaxBatch}
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatch
	}
	s.cur.Store(&state{set: set, g: opts.Graph})
	return s, nil
}

// Set returns the currently served sketch set (the latest swapped-in
// snapshot; an in-flight repair is not visible until it commits).
func (s *Server) Set() *distsketch.SketchSet { return s.cur.Load().set }

// Handler returns the route table. Method mismatches answer 405.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("POST /query", s.handleBatch)
	mux.HandleFunc("GET /sketch/{u}", s.handleSketch)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /update-edge", s.handleUpdateEdge)
	return mux
}
