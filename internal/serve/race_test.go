package serve

// The concurrent-serving contract, verified under -race: queries keep
// streaming while /update-edge repairs swap the set, every response is
// byte-identical to some committed set version's in-process Query, and
// after the last update the server answers exactly from the final
// version. This is the test that makes the atomic-swap design
// load-bearing rather than decorative.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"distsketch"
)

func TestConcurrentQueryDuringUpdates(t *testing.T) {
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 64, 20, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	set, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// The update schedule: one edge, strictly decreasing weights. Each
	// step is a valid decrease, so every repair must succeed.
	const updates = 6
	edge := g.Edges()[3]
	if edge.Weight <= updates {
		t.Fatalf("edge %v too light for %d decreases", edge, updates)
	}

	// Precompute every version the server will transition through by
	// replaying the schedule in-process; a concurrent reader must observe
	// one of these and nothing else.
	pairs := [][2]int{{0, 63}, {1, 50}, {7, 7}, {12, 33}, {20, 61}, {40, 9}, {63, 31}, {5, 5}, {2, 58}, {44, 13}, {30, 15}, {edge.U, edge.V}}
	allowed := make([]map[distsketch.Dist]bool, len(pairs))
	for i := range allowed {
		allowed[i] = map[distsketch.Dist]bool{}
	}
	replica := set.Clone()
	curG := g
	record := func(s *distsketch.SketchSet) {
		for i, p := range pairs {
			allowed[i][s.Query(p[0], p[1])] = true
		}
	}
	record(replica)
	for k := 1; k <= updates; k++ {
		next, err := reweigh(curG, edge.U, edge.V, edge.Weight-distsketch.Dist(k))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := replica.UpdateEdge(next, edge.U, edge.V); err != nil {
			t.Fatalf("replica update %d: %v", k, err)
		}
		curG = next
		record(replica)
	}

	ts := newTestServer(t, set, Options{Graph: g})
	client := &http.Client{}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Readers: alternate single queries and whole-schedule batches.
	const readers = 6
	const iters = 120
	batchBody := func() string {
		var sb strings.Builder
		sb.WriteString(`{"pairs":[`)
		for i, p := range pairs {
			if i > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, `{"u":%d,"v":%d}`, p[0], p[1])
		}
		sb.WriteString("]}")
		return sb.String()
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (r*iters + it) % len(pairs)
				if it%3 == 0 {
					resp, err := client.Post(ts.URL+"/query", "application/json", strings.NewReader(batchBody))
					if err != nil {
						report("batch: %v", err)
						return
					}
					var reply BatchReply
					err = json.NewDecoder(resp.Body).Decode(&reply)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						report("batch: status %d err %v", resp.StatusCode, err)
						return
					}
					for j, res := range reply.Results {
						if res.Estimate == nil || !allowed[j][*res.Estimate] {
							report("batch pair %v: estimate %v not from any committed version", pairs[j], res.Estimate)
							return
						}
					}
					continue
				}
				p := pairs[i]
				resp, err := client.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, p[0], p[1]))
				if err != nil {
					report("query: %v", err)
					return
				}
				var res QueryResult
				err = json.NewDecoder(resp.Body).Decode(&res)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					report("query %v: status %d err %v", p, resp.StatusCode, err)
					return
				}
				if res.Estimate == nil || !allowed[i][*res.Estimate] {
					report("query %v: estimate %v not from any committed version", p, res.Estimate)
					return
				}
			}
		}(r)
	}

	// The writer applies the schedule while the readers hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 1; k <= updates; k++ {
			body := fmt.Sprintf(`{"u":%d,"v":%d,"weight":%d}`, edge.U, edge.V, edge.Weight-distsketch.Dist(k))
			resp, err := client.Post(ts.URL+"/update-edge", "application/json", strings.NewReader(body))
			if err != nil {
				report("update %d: %v", k, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				report("update %d: status %d", k, resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the schedule drains, the server must answer exactly from the
	// final version — byte-identical to the in-process replica.
	for i, p := range pairs {
		resp, err := client.Get(fmt.Sprintf("%s/query?u=%d&v=%d", ts.URL, p[0], p[1]))
		if err != nil {
			t.Fatal(err)
		}
		var res QueryResult
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		want := replica.Query(p[0], p[1])
		if res.Estimate == nil || *res.Estimate != want {
			t.Errorf("final query %v: got %v, want %d (allowed set %v)", p, res.Estimate, want, allowed[i])
		}
	}
}
