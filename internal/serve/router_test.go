package serve

// Router coverage: the three serving topologies (heap full set, mmap
// full set, 4-shard fleet behind a router) must answer byte-identical
// estimates; fan-out is pinned to ≤ 2 shards per query by a counting
// transport; and a dead shard degrades only the pairs it owns.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"distsketch"
)

// buildShardedFixture builds a 100-node landmark set, saves it, slices
// it into shards shard envelopes, and starts one test server per shard.
// It returns the full set, the shard servers' base URLs, and the shard
// ranges.
func buildShardedFixture(t *testing.T, shards int) (*distsketch.SketchSet, []string, []distsketch.ShardRange) {
	t.Helper()
	g, err := distsketch.NewRandomWeightedGraph(distsketch.FamilyGeometric, 100, 10, 100, 13)
	if err != nil {
		t.Fatal(err)
	}
	full, err := distsketch.Build(g, distsketch.Options{Kind: distsketch.KindLandmark, Eps: 0.25, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ranges := distsketch.EvenShardRanges(full.N(), shards)
	paths, err := distsketch.SaveShards(dir, full, ranges)
	if err != nil {
		t.Fatal(err)
	}
	bases := make([]string, len(paths))
	for i, path := range paths {
		shard, err := distsketch.OpenSketchSet(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { shard.Close() })
		srv, err := New(shard, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		bases[i] = ts.URL
	}
	return full, bases, ranges
}

// countingTransport records, per request, which shard host was
// contacted — the seam pinning the ≤2-shards-per-query guarantee.
type countingTransport struct {
	mu    sync.Mutex
	hosts []string // host of each upstream request, in order
	// down marks hosts that refuse connections (fault injection).
	down map[string]bool
}

func (ct *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ct.mu.Lock()
	ct.hosts = append(ct.hosts, req.URL.Host)
	isDown := ct.down[req.URL.Host]
	ct.mu.Unlock()
	if isDown {
		return nil, fmt.Errorf("injected fault: %s is down", req.URL.Host)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// distinctHostsSince returns the distinct hosts contacted since mark.
func (ct *countingTransport) distinctHostsSince(mark int) []string {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, h := range ct.hosts[mark:] {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

func (ct *countingTransport) mark() int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return len(ct.hosts)
}

func newRouterServer(t *testing.T, bases []string, ranges []distsketch.ShardRange, ct *countingTransport) *httptest.Server {
	t.Helper()
	shards := make([]RouterShard, len(bases))
	for i := range bases {
		shards[i] = RouterShard{Base: bases[i], Range: ranges[i]}
	}
	var transport http.RoundTripper
	if ct != nil {
		transport = ct
	}
	rt, err := NewRouter(shards, RouterOptions{Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestServingEquivalence is the acceptance pin: heap serving, mmap
// serving, and 4-shard routed serving answer byte-identical query
// results on the same envelope.
func TestServingEquivalence(t *testing.T) {
	full, bases, ranges := buildShardedFixture(t, 4)

	heapSrv := newTestServer(t, full, Options{})

	dir := t.TempDir()
	mmapPath := dir + "/full.dsk"
	if err := distsketch.SaveSketchSet(mmapPath, full, distsketch.SetVersion2); err != nil {
		t.Fatal(err)
	}
	mmapSet, err := distsketch.OpenSketchSet(mmapPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mmapSet.Close() })
	mmapSrv := newTestServer(t, mmapSet, Options{})

	routerSrv := newRouterServer(t, bases, ranges, nil)

	fetch := func(base string, u, v int) string {
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", base, u, v))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s (%d,%d): status %d", base, u, v, resp.StatusCode)
		}
		var res QueryResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(res)
		return string(b)
	}
	for u := 0; u < full.N(); u += 7 {
		for v := 0; v < full.N(); v += 11 {
			heap := fetch(heapSrv.URL, u, v)
			if mm := fetch(mmapSrv.URL, u, v); mm != heap {
				t.Fatalf("(%d,%d): mmap %s != heap %s", u, v, mm, heap)
			}
			if routed := fetch(routerSrv.URL, u, v); routed != heap {
				t.Fatalf("(%d,%d): routed %s != heap %s", u, v, routed, heap)
			}
		}
	}
}

// TestRouterBatchEquivalence: the router's batch endpoint answers the
// same results (in request order) as a full server's, mixing same- and
// cross-shard pairs and out-of-range errors.
func TestRouterBatchEquivalence(t *testing.T) {
	full, bases, ranges := buildShardedFixture(t, 4)
	heapSrv := newTestServer(t, full, Options{})
	routerSrv := newRouterServer(t, bases, ranges, nil)

	var pairs []string
	for u := 0; u < full.N(); u += 5 {
		v := (u*37 + 13) % full.N()
		pairs = append(pairs, fmt.Sprintf(`{"u":%d,"v":%d}`, u, v))
	}
	// A repeated node exercises the router's per-batch sketch memo.
	pairs = append(pairs, `{"u":1,"v":99}`, `{"u":1,"v":98}`, `{"u":1,"v":97}`)
	body := `{"pairs":[` + strings.Join(pairs, ",") + `]}`

	var fromHeap, fromRouter BatchReply
	if code := postJSON(t, heapSrv.URL+"/query", body, &fromHeap); code != http.StatusOK {
		t.Fatalf("heap batch: status %d", code)
	}
	if code := postJSON(t, routerSrv.URL+"/query", body, &fromRouter); code != http.StatusOK {
		t.Fatalf("routed batch: status %d", code)
	}
	if len(fromRouter.Results) != len(fromHeap.Results) {
		t.Fatalf("routed batch: %d results, want %d", len(fromRouter.Results), len(fromHeap.Results))
	}
	for i := range fromHeap.Results {
		h, _ := json.Marshal(fromHeap.Results[i])
		r, _ := json.Marshal(fromRouter.Results[i])
		if string(h) != string(r) {
			t.Fatalf("pair %d: routed %s != heap %s", i, r, h)
		}
	}
	// Out-of-range ids degrade per pair, not per batch, on both.
	var errReply BatchReply
	badBody := fmt.Sprintf(`{"pairs":[{"u":0,"v":1},{"u":%d,"v":0}]}`, full.N()+5)
	if code := postJSON(t, routerSrv.URL+"/query", badBody, &errReply); code != http.StatusOK {
		t.Fatalf("routed batch with bad pair: status %d", code)
	}
	if errReply.Results[0].Error != "" || errReply.Results[1].Error == "" {
		t.Fatalf("routed batch error placement: %+v", errReply.Results)
	}
}

// TestRouterFanout pins the paper-shaped guarantee: one query contacts
// at most 2 shards — exactly 1 when the pair shares a shard, exactly 2
// otherwise.
func TestRouterFanout(t *testing.T) {
	full, bases, ranges := buildShardedFixture(t, 4)
	ct := &countingTransport{}
	routerSrv := newRouterServer(t, bases, ranges, ct)

	query := func(u, v int) []string {
		mark := ct.mark()
		resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", routerSrv.URL, u, v))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("(%d,%d): status %d", u, v, resp.StatusCode)
		}
		return ct.distinctHostsSince(mark)
	}
	// Same shard: both nodes inside ranges[0].
	sameLo, sameHi := ranges[0].Lo, ranges[0].Hi
	if hosts := query(sameLo, sameHi-1); len(hosts) != 1 {
		t.Errorf("same-shard pair contacted %d shards %v, want exactly 1", len(hosts), hosts)
	}
	// Cross shard: first node of shard 0, last node of shard 3.
	if hosts := query(ranges[0].Lo, ranges[3].Hi-1); len(hosts) != 2 {
		t.Errorf("cross-shard pair contacted %d shards %v, want exactly 2", len(hosts), hosts)
	}
	// Sweep: no query may ever touch a third shard.
	for u := 0; u < full.N(); u += 9 {
		v := (u*53 + 7) % full.N()
		if hosts := query(u, v); len(hosts) > 2 {
			t.Fatalf("(%d,%d) contacted %d shards %v; fan-out must be ≤ 2", u, v, len(hosts), hosts)
		}
	}
}

// TestRouterShardDown injects a dead shard: queries owned by live
// shards keep answering, queries touching the dead shard fail loudly
// (502 on the single path, per-pair errors in a batch), and the
// router's upstream-error counter moves.
func TestRouterShardDown(t *testing.T) {
	_, bases, ranges := buildShardedFixture(t, 4)
	ct := &countingTransport{down: map[string]bool{}}
	u2, err := url.Parse(bases[2])
	if err != nil {
		t.Fatal(err)
	}
	ct.down[u2.Host] = true
	routerSrv := newRouterServer(t, bases, ranges, ct)

	// A pair wholly inside a live shard answers normally.
	resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", routerSrv.URL, ranges[0].Lo, ranges[0].Lo+1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live-shard query: status %d", resp.StatusCode)
	}
	// A pair inside the dead shard fails as a gateway error.
	resp, err = http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", routerSrv.URL, ranges[2].Lo, ranges[2].Lo+1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead-shard query: status %d, want 502", resp.StatusCode)
	}
	// A cross-shard pair touching the dead shard fails too.
	resp, err = http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", routerSrv.URL, ranges[0].Lo, ranges[2].Lo))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("cross-into-dead query: status %d, want 502", resp.StatusCode)
	}
	// A mixed batch degrades only the pairs the dead shard owns.
	body := fmt.Sprintf(`{"pairs":[{"u":%d,"v":%d},{"u":%d,"v":%d},{"u":%d,"v":%d}]}`,
		ranges[0].Lo, ranges[0].Lo+1, // live
		ranges[2].Lo, ranges[2].Lo+1, // dead
		ranges[1].Lo, ranges[3].Lo) // cross, both live
	var batch BatchReply
	if code := postJSON(t, routerSrv.URL+"/query", body, &batch); code != http.StatusOK {
		t.Fatalf("mixed batch: status %d", code)
	}
	if batch.Results[0].Error != "" {
		t.Errorf("live pair errored: %s", batch.Results[0].Error)
	}
	if batch.Results[1].Error == "" {
		t.Error("dead-shard pair did not error")
	}
	if batch.Results[2].Error != "" {
		t.Errorf("cross live pair errored: %s", batch.Results[2].Error)
	}
	// The router's stats record the upstream failures.
	var stats RouterStatsReply
	if code := getJSON(t, routerSrv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("router stats: status %d", code)
	}
	if stats.UpstreamErrors == 0 {
		t.Error("upstream_errors did not move after shard faults")
	}
	if stats.TotalNodes == 0 || len(stats.Shards) != 4 {
		t.Errorf("router stats shape: %+v", stats)
	}
}

// TestShardServer421 pins the shard server's redirect contract: an id
// owned by a different shard answers 421 with the serving shard's range
// as a typed hint, and /stats reports the shard range and backing.
func TestShardServer421(t *testing.T) {
	full, bases, ranges := buildShardedFixture(t, 4)
	// bases[1] serves ranges[1]; ask it for a node owned by shard 0.
	resp, err := http.Get(fmt.Sprintf("%s/query?u=%d&v=%d", bases[1], ranges[0].Lo, ranges[1].Lo))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("other-shard id: status %d, want 421", resp.StatusCode)
	}
	var reply struct {
		Error string     `json:"error"`
		Shard *ShardHint `json:"shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Shard == nil || reply.Shard.Lo != ranges[1].Lo || reply.Shard.Hi != ranges[1].Hi || reply.Shard.Total != full.N() {
		t.Fatalf("421 shard hint: %+v, want [%d,%d) of %d", reply.Shard, ranges[1].Lo, ranges[1].Hi, full.N())
	}
	// A nonexistent id is still a plain 404 — not redirectable.
	if code := getJSON(t, fmt.Sprintf("%s/query?u=%d&v=%d", bases[1], full.N()+5, ranges[1].Lo), nil); code != http.StatusNotFound {
		t.Fatalf("nonexistent id on a shard: status %d, want 404", code)
	}
	// The shard's /stats advertise range and backing.
	var stats StatsReply
	if code := getJSON(t, bases[1]+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("shard stats: status %d", code)
	}
	if stats.Shard == nil || stats.Shard.Lo != ranges[1].Lo || stats.Shard.Hi != ranges[1].Hi {
		t.Fatalf("shard stats range: %+v", stats.Shard)
	}
	if stats.Backing != "mmap" && stats.Backing != "heap" {
		t.Fatalf("shard stats backing: %q", stats.Backing)
	}
	if stats.Backing == "mmap" && stats.MappedBytes == 0 {
		t.Fatal("mmap backing with zero mapped_bytes")
	}
}

// TestDiscoverShards: the router learns the shard map from /stats, and
// a single unsharded server maps as one shard covering everything.
func TestDiscoverShards(t *testing.T) {
	full, bases, ranges := buildShardedFixture(t, 4)
	shards, err := DiscoverShards(context.Background(), bases, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("discovered %d shards, want 4", len(shards))
	}
	for i, sh := range shards {
		if sh.Range.Lo != ranges[i].Lo || sh.Range.Hi != ranges[i].Hi {
			t.Fatalf("shard %d: discovered %s, want %s", i, sh.Range, ranges[i])
		}
	}
	if _, err := NewRouter(shards, RouterOptions{}); err != nil {
		t.Fatalf("discovered shard map rejected: %v", err)
	}

	fullSrv := newTestServer(t, full, Options{})
	single, err := DiscoverShards(context.Background(), []string{fullSrv.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0].Range.Lo != 0 || single[0].Range.Hi != full.N() {
		t.Fatalf("unsharded discovery: %+v", single)
	}
}

// TestNewRouterValidation: shard maps that do not tile one id space are
// refused at construction.
func TestNewRouterValidation(t *testing.T) {
	mk := func(ranges ...distsketch.ShardRange) []RouterShard {
		out := make([]RouterShard, len(ranges))
		for i, r := range ranges {
			out[i] = RouterShard{Base: fmt.Sprintf("http://shard%d", i), Range: r}
		}
		return out
	}
	bad := [][]RouterShard{
		{},
		mk(distsketch.ShardRange{Lo: 1, Hi: 10}), // missing node 0
		mk(distsketch.ShardRange{Lo: 0, Hi: 5}, distsketch.ShardRange{Lo: 6, Hi: 9}), // gap
		mk(distsketch.ShardRange{Lo: 0, Hi: 5}, distsketch.ShardRange{Lo: 4, Hi: 9}), // overlap
		mk(distsketch.ShardRange{Lo: 0, Hi: 0}),                                      // empty
	}
	for i, shards := range bad {
		if _, err := NewRouter(shards, RouterOptions{}); err == nil {
			t.Errorf("case %d: NewRouter accepted %+v", i, shards)
		}
	}
	// Unordered input is fine — the router sorts.
	ok := mk(distsketch.ShardRange{Lo: 5, Hi: 10}, distsketch.ShardRange{Lo: 0, Hi: 5})
	rt, err := NewRouter(ok, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rt.TotalNodes() != 10 {
		t.Fatalf("TotalNodes = %d, want 10", rt.TotalNodes())
	}
}
