package core

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// tzNode is the per-node state machine for the distributed Thorup–Zwick
// construction under omniscient or analytic synchronization (Section 3.2,
// Algorithm 2). Phase transitions are driven by the runner through
// startPhase/finishPhase; the in-band Section 3.3 protocol lives in
// detectNode (detect.go).
type tzNode struct {
	id       int
	k        int
	topLevel int // largest i with this node ∈ A_i; -1 if not in A_0
	batch    int // announcements per message (bandwidth-B mode; ≥ 1)

	phase  int                // current phase, or -1 outside phases
	thresh graph.Dist         // d(u, A_{phase+1}), fixed for the phase
	best   map[int]graph.Dist // source -> best distance seen this phase
	out    *outQueues

	// Results accumulated across phases. Bunch items collect in the
	// items scratch slice (arbitrary per-phase map order); the harvest
	// installs them with SetBunch, which canonicalizes once per label.
	label *sketch.TZLabel
	items []sketch.BunchItem
	// chainBest is the running (dist, id) lexicographic minimum over
	// levels >= current+1, used to extend the pivot chain downward.
	chainBest pivotCand
}

type pivotCand struct {
	dist graph.Dist
	node int // -1 = none
}

func lessCand(a, b pivotCand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.node == -1 {
		return false
	}
	if b.node == -1 {
		return true
	}
	return a.node < b.node
}

func newTZNode(id, k, topLevel, batch int) *tzNode {
	if batch < 1 {
		batch = 1
	}
	return &tzNode{
		id:        id,
		k:         k,
		topLevel:  topLevel,
		batch:     batch,
		phase:     -1,
		thresh:    graph.Inf,
		label:     sketch.NewTZLabel(id, k),
		chainBest: pivotCand{dist: graph.Inf, node: -1},
	}
}

func (nd *tzNode) Init(ctx *congest.Context) {
	nd.out = newOutQueues(ctx.Degree())
}

// startPhase is invoked by the runner (omniscient synchronization) at the
// beginning of phase i. A node in A_i \ A_{i+1} — exactly the nodes with
// topLevel == i — becomes a source: it announces 〈u, 0〉 on every edge.
func (nd *tzNode) startPhase(i int) {
	nd.phase = i
	nd.best = make(map[int]graph.Dist)
	if nd.topLevel == i {
		nd.best[nd.id] = 0
		nd.out.pushSrcAll(nd.id)
	}
}

// finishPhase harvests phase i results: every accepted source v (other
// than the node itself) becomes a bunch entry of level i, the pivot chain
// is extended with p_i(u), and the threshold d(u, A_i) for phase i-1 is
// the pivot's distance.
func (nd *tzNode) finishPhase() {
	i := nd.phase
	cand := nd.chainBest
	for v, d := range nd.best {
		if v == nd.id {
			continue
		}
		// nd.best iterates in arbitrary map order; items accumulate
		// unsorted across phases and the harvest installs them with
		// SetBunch once, instead of paying a sorted insert per item.
		nd.items = append(nd.items, sketch.BunchItem{Node: v, Dist: d, Level: i})
		if c := (pivotCand{dist: d, node: v}); lessCand(c, cand) {
			cand = c
		}
	}
	if nd.topLevel >= i {
		if c := (pivotCand{dist: 0, node: nd.id}); lessCand(c, cand) {
			cand = c
		}
	}
	nd.label.Pivots[i] = sketch.Pivot{Node: cand.node, Dist: cand.dist}
	nd.chainBest = cand
	nd.thresh = cand.dist // d(u, A_i), the threshold for phase i-1
	nd.best = nil
	nd.phase = -1
	nd.out.reset()
}

func (nd *tzNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		switch m := in.Payload.(type) {
		case dataMsg:
			nd.checkPhase(m.Phase)
			nd.accept(ctx, in.From, m)
		case dataBatchMsg:
			nd.checkPhase(m.Phase)
			for _, it := range m.Items {
				nd.accept(ctx, in.From, dataMsg{Phase: m.Phase, Src: it.Src, Dist: it.Dist})
			}
		default:
			panic(fmt.Sprintf("core: node %d got %T in TZ phase", nd.id, in.Payload))
		}
	}
	nd.drain(ctx)
}

func (nd *tzNode) checkPhase(p int) {
	if p != nd.phase {
		panic(fmt.Sprintf("core: node %d got phase-%d message during phase %d (omniscient sync broken)",
			nd.id, p, nd.phase))
	}
}

// accept implements lines 10–14 of Algorithm 2: adopt the announced
// distance if it both beats the current estimate and stays below
// d(u, A_{i+1}) (i.e. the source is (still possibly) in B_i(u)), then
// queue the improved announcement for all neighbors.
func (nd *tzNode) accept(ctx *congest.Context, from int, m dataMsg) {
	w := ctx.NeighborIndex(from)
	nd2 := graph.AddDist(m.Dist, ctx.WeightTo(w))
	cur, seen := nd.best[m.Src]
	if !seen {
		cur = graph.Inf
	}
	if nd2 >= nd.thresh || nd2 >= cur {
		return
	}
	nd.best[m.Src] = nd2
	nd.out.pushSrcAll(m.Src)
}

// drain transmits one message per edge — a single announcement, or up to
// `batch` of them in bandwidth-B mode — with *current* best distances,
// then requests a wake-up if anything remains queued.
func (nd *tzNode) drain(ctx *congest.Context) {
	if nd.batch > 1 {
		for i := 0; i < ctx.Degree(); i++ {
			srcs := nd.out.popSrcBatch(i, nd.batch)
			if len(srcs) == 0 {
				continue
			}
			items := make([]srcDist, len(srcs))
			for j, s := range srcs {
				items[j] = srcDist{Src: s, Dist: nd.best[s]}
			}
			ctx.Send(i, dataBatchMsg{Phase: nd.phase, Items: items})
		}
	} else {
		nd.out.drain(func(edge int, e qEntry) {
			if e.msg != nil {
				ctx.Send(edge, e.msg)
				return
			}
			ctx.Send(edge, dataMsg{Phase: nd.phase, Src: e.src, Dist: nd.best[e.src]})
		})
	}
	if nd.out.pending() {
		ctx.WakeNextRound()
	}
}
