// Package core implements the paper's contribution: CONGEST-model
// distributed algorithms for constructing distance sketches.
//
//   - BuildTZ: the distributed Thorup–Zwick construction of Section 3
//     (Algorithm 2 run in phases k-1 .. 0), under three synchronization
//     modes: omniscient (engine-level phase barriers), analytic (fixed
//     phase lengths from the Theorem 3.8 bound, requires knowing S), and
//     detection (the full Section 3.3 ECHO/COMPLETE protocol over a BFS
//     tree, requiring no global knowledge).
//   - BuildLandmark: the stretch-3 ε-slack landmark sketches of
//     Theorem 4.3 (density net + k-source Bellman–Ford).
//   - BuildCDG: the (ε,k)-CDG sketches of Theorem 4.6 (density net,
//     "super node" Bellman–Ford, Thorup–Zwick over the net, and label
//     shipping down the net's Voronoi forest).
//   - BuildGraceful: the gracefully degrading sketches of Theorem 4.8
//     (one CDG instance per ε = 2^{-i}).
//
// All constructions draw their coins from the per-node streams in package
// sketch, so the centralized references in package tz reproduce them
// exactly — the strongest correctness check available (experiment E12).
package core

import (
	"distsketch/internal/congest"
	"distsketch/internal/graph"
)

// SyncMode selects how phase boundaries are synchronized (DESIGN.md §5.4).
type SyncMode int

const (
	// SyncOmniscient ends each phase exactly when the network quiesces,
	// using engine-level omniscience. This measures the true propagation
	// cost of each phase — the quantity Theorem 3.8 bounds — without
	// charging for synchronization machinery.
	SyncOmniscient SyncMode = iota
	// SyncAnalytic runs each phase for a fixed number of rounds computed
	// from the Theorem 3.8 phase bound c·max(1, n^{1/k}·ln n)·S. This is
	// the paper's "every node knows S" variant (Section 3.2). The runner
	// verifies the network actually quiesced within the bound.
	SyncAnalytic
	// SyncDetection uses the Section 3.3 termination-detection protocol:
	// a BFS tree rooted at a leader, per-message ECHOs, and a
	// COMPLETE/START convergecast-broadcast per phase. Requires no global
	// knowledge beyond n.
	SyncDetection
)

func (m SyncMode) String() string {
	switch m {
	case SyncOmniscient:
		return "omniscient"
	case SyncAnalytic:
		return "analytic"
	case SyncDetection:
		return "detection"
	default:
		return "unknown"
	}
}

// CostBreakdown separates the total cost into the paper's accounting
// categories, enabling the E6 overhead measurement.
type CostBreakdown struct {
	Total congest.Stats
	// Data counts Bellman–Ford data messages only.
	DataMessages int64
	// Echo counts Section 3.3 ECHO messages (zero outside detection mode).
	EchoMessages int64
	// Control counts BFS setup, COMPLETE, START and FINISH messages.
	ControlMessages int64
	// PerPhase[i] is the cost of phase i (index = phase number).
	PerPhase []congest.Stats
	// SetupRounds is the leader-election/BFS-tree prologue (detection).
	SetupRounds int
}

// message kinds shared by the core protocols.
type dataMsg struct {
	Phase int
	Src   int
	Dist  graph.Dist
}

func (dataMsg) Words() int { return 3 }

// srcDist is one announcement inside a batched data message.
type srcDist struct {
	Src  int
	Dist graph.Dist
}

// dataBatchMsg carries several announcements in one message — the paper's
// bandwidth generalization ("if B bits are allowed to be sent through
// each edge in a round"; Section 2.2). A batch of b announcements costs
// 1 + 2b words.
type dataBatchMsg struct {
	Phase int
	Items []srcDist
}

func (m dataBatchMsg) Words() int { return 1 + 2*len(m.Items) }

type echoMsg struct {
	Phase int
	Src   int
	Dist  graph.Dist // copy of the echoed message's distance
}

func (echoMsg) Words() int { return 3 }

type bfsMsg struct{}

func (bfsMsg) Words() int { return 1 }

type bfsReplyMsg struct{ Accept bool }

func (bfsReplyMsg) Words() int { return 1 }

type bfsDoneMsg struct{}

func (bfsDoneMsg) Words() int { return 1 }

type startMsg struct{ Phase int }

func (startMsg) Words() int { return 2 }

type completeMsg struct{ Phase int }

func (completeMsg) Words() int { return 2 }

type finishMsg struct{}

func (finishMsg) Words() int { return 1 }

// Super-node Bellman–Ford wave (Lemma 4.5): distance to the nearest
// density-net node plus that node's identity.
type netWaveMsg struct {
	Dist graph.Dist
	Src  int
}

func (netWaveMsg) Words() int { return 2 }

// Label-shipping chunk: one pivot or bunch entry of a net node's TZ label,
// streamed down the net's Voronoi tree (see cdg.go).
type labelChunkMsg struct {
	Seq   int // chunk index
	Kind  byte
	Node  int
	Dist  graph.Dist
	Level int
}

func (labelChunkMsg) Words() int { return 5 }

type labelEndMsg struct{ Total int }

func (labelEndMsg) Words() int { return 2 }
