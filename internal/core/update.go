package core

import (
	"fmt"
	"sort"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// Incremental maintenance. The paper's introduction motivates bounding
// preprocessing cost because "the distance information or network itself
// changes frequently, and this would require altering the sketches
// periodically". For the landmark sketches of Theorem 4.3 — whose labels
// are exact distances to the density net — a batch of edge weight
// *decreases* admits a cheap warm-start repair instead of a full rebuild:
//
//  1. Every node keeps its old label (entrywise an upper bound on the
//     new distances, since distances only shrank).
//  2. The endpoints of every changed edge stream their label entries to
//     each other across it (one entry per round per edge), all in the
//     same wave.
//  3. Any resulting improvement re-propagates as an ordinary
//     Bellman–Ford wave.
//
// This converges to the exact new labels: old labels violate the
// Bellman–Ford fixed-point condition only across the changed edges, step
// 2 relaxes exactly those edges, and step 3 restores the invariant
// everywhere else. The argument is per-fixed-point, not per-edge, so a
// batch of B changes costs one convergence seeded from all 2B endpoints
// at once rather than B sequential convergences — overlapping affected
// regions are traversed once instead of up to B times. Cost is
// proportional to the region whose distances actually changed, not to
// S·|N| (experiment E14 quantifies the gap).
//
// Weight increases invalidate upper bounds and are not handled here —
// Repair verifies the result with VerifyLandmarkExact and reports
// ErrUnsound when a batch contained an effective increase.

// endpointStream is one changed edge's streaming backlog at one of its
// endpoints: the node replays its full label across the changed arc
// (step 2 above). A node incident to several changed edges carries one
// stream per edge; the backlogs share the same read-only entry slice.
type endpointStream struct {
	arc     int // adjacency index of the changed arc
	backlog []srcDist
}

// updateNode runs the warm-start repair for one node. The previous label
// is read-only; improvements accumulate in a private delta map, so a run
// that errors or is canceled mid-repair leaves the caller's labels
// untouched (and the final merge pays only for entries that changed).
type updateNode struct {
	id    int
	base  *sketch.LandmarkLabel // previous label, never mutated
	delta map[int]graph.Dist    // improvements discovered during repair

	streams []endpointStream // one per incident changed edge; empty for most nodes

	fifo   [][]int
	inFifo []map[int]bool
}

type streamMsg struct {
	Src  int
	Dist graph.Dist
}

func (streamMsg) Words() int { return 2 }

// dist returns the node's current best distance to net node src: the
// repair improvement if one exists, the warm-started label entry
// otherwise.
func (nd *updateNode) dist(src int) (graph.Dist, bool) {
	if d, ok := nd.delta[src]; ok {
		return d, true
	}
	return nd.base.Get(src)
}

// streamAt returns the stream assigned to adjacency index arc, or nil.
// Linear scan: only changed-edge endpoints carry streams, and each holds
// one per incident changed edge.
func (nd *updateNode) streamAt(arc int) *endpointStream {
	for i := range nd.streams {
		if nd.streams[i].arc == arc {
			return &nd.streams[i]
		}
	}
	return nil
}

func (nd *updateNode) Init(ctx *congest.Context) {
	deg := ctx.Degree()
	nd.fifo = make([][]int, deg)
	nd.inFifo = make([]map[int]bool, deg)
	for i := 0; i < deg; i++ {
		nd.inFifo[i] = make(map[int]bool)
	}
	for i := range nd.streams {
		if len(nd.streams[i].backlog) > 0 {
			ctx.WakeNextRound()
			break
		}
	}
}

func (nd *updateNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		m := in.Payload.(streamMsg)
		w := ctx.NeighborIndex(in.From)
		d := graph.AddDist(m.Dist, ctx.WeightTo(w))
		if cur, ok := nd.dist(m.Src); !ok || d < cur {
			nd.delta[m.Src] = d
			nd.enqueueAll(m.Src)
		}
	}
	nd.drain(ctx)
}

func (nd *updateNode) enqueueAll(src int) {
	for i := range nd.fifo {
		if !nd.inFifo[i][src] {
			nd.inFifo[i][src] = true
			nd.fifo[i] = append(nd.fifo[i], src)
		}
	}
}

func (nd *updateNode) drain(ctx *congest.Context) {
	pending := false
	for i := range nd.fifo {
		// Each changed edge first carries its endpoint's streamed backlog
		// (step 2); improvements share it afterwards.
		st := nd.streamAt(i)
		if st != nil && len(st.backlog) > 0 && len(nd.fifo[i]) == 0 {
			e := st.backlog[0]
			st.backlog = st.backlog[1:]
			ctx.Send(i, streamMsg{Src: e.Src, Dist: e.Dist})
			if len(st.backlog) > 0 {
				pending = true
			}
			continue
		}
		if len(nd.fifo[i]) == 0 {
			continue
		}
		src := nd.fifo[i][0]
		copy(nd.fifo[i], nd.fifo[i][1:])
		nd.fifo[i] = nd.fifo[i][:len(nd.fifo[i])-1]
		delete(nd.inFifo[i], src)
		d, _ := nd.dist(src)
		ctx.Send(i, streamMsg{Src: src, Dist: d})
		if len(nd.fifo[i]) > 0 || (st != nil && len(st.backlog) > 0) {
			pending = true
		}
	}
	if pending {
		ctx.WakeNextRound()
	}
}

// changedArcIndex returns the adjacency index of the minimum-weight arc
// from arcs to other, or -1 if none exists. On graphs with parallel arcs
// to the same neighbor the endpoint must stream across the lightest one:
// the warm-start argument relaxes the *changed* (now lightest) edge, and
// streaming across a heavier parallel arc could fail to improve anything,
// leaving the light arc's fixed-point violation unrepaired. (graph.Builder
// canonicalizes parallel edges away today, so this guards future
// ingestion paths that do not.)
func changedArcIndex(arcs []graph.Arc, other int) int {
	idx := -1
	for i, arc := range arcs {
		if arc.To == other && (idx < 0 || arc.Weight < arcs[idx].Weight) {
			idx = i
		}
	}
	return idx
}

// mergeLabel returns a fresh label combining the (sorted, unique) base
// entries with the repair improvements in delta. The base is not
// modified; unchanged entries are copied.
func mergeLabel(base *sketch.LandmarkLabel, delta map[int]graph.Dist) *sketch.LandmarkLabel {
	keys := make([]int, 0, len(delta))
	for w := range delta {
		keys = append(keys, w)
	}
	sort.Ints(keys)
	merged := make([]sketch.Entry, 0, len(base.Entries)+len(delta))
	i := 0
	for _, w := range keys {
		for i < len(base.Entries) && base.Entries[i].Net < w {
			merged = append(merged, base.Entries[i])
			i++
		}
		if i < len(base.Entries) && base.Entries[i].Net == w {
			i++
		}
		merged = append(merged, sketch.Entry{Net: w, D: delta[w]})
	}
	merged = append(merged, base.Entries[i:]...)
	// The merge emits entries in ascending net order already, so the
	// constructor's canonicalization is a verification-cheap no-op.
	return sketch.NewLandmarkLabelFromEntries(base.Owner, merged)
}

// UpdateLandmark repairs landmark labels after the weights of a batch of
// edges decreased. g must be the *new* topology (same node set and edges,
// the changed weights). prev is read-only: the repair accumulates
// improvements in fresh storage and merges them into new labels only on
// success, so an engine error or context cancellation mid-repair leaves
// the caller's labels exactly as they were. Labels the repair did not
// improve are shared (pointer-identical) with prev in the result.
//
// All changed endpoints seed the same wave: the whole batch converges in
// one RunUntilQuiescent instead of one per edge. Changes naming the same
// undirected edge more than once are collapsed.
func UpdateLandmark(g *graph.Graph, prev *LandmarkResult, changes []EdgeChange, cfg congest.Config) (*LandmarkResult, error) {
	n := g.N()
	if len(prev.Labels) != n {
		return nil, fmt.Errorf("core: %d labels for n=%d", len(prev.Labels), n)
	}
	// streamsFor[u] lists the changed-edge neighbors u must stream to.
	streamsFor := make(map[int][]int, 2*len(changes))
	seen := make(map[[2]int]bool, len(changes))
	for _, c := range changes {
		a, b := c.U, c.V
		if a > b {
			a, b = b, a
		}
		if a == b || a < 0 || b >= n {
			return nil, fmt.Errorf("core: edge (%d,%d) is not a repairable change", c.U, c.V)
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		if _, ok := g.EdgeWeight(a, b); !ok {
			return nil, fmt.Errorf("core: edge (%d,%d) not in graph", a, b)
		}
		streamsFor[a] = append(streamsFor[a], b)
		streamsFor[b] = append(streamsFor[b], a)
	}
	nodes := make([]congest.Node, n)
	uns := make([]*updateNode, n)
	for u := 0; u < n; u++ {
		un := &updateNode{id: u, base: prev.Labels[u], delta: make(map[int]graph.Dist)}
		if others := streamsFor[u]; len(others) > 0 {
			backlog := make([]srcDist, 0, len(prev.Labels[u].Entries))
			for _, e := range prev.Labels[u].Entries {
				backlog = append(backlog, srcDist{Src: e.Net, Dist: e.D})
			}
			for _, other := range others {
				arc := changedArcIndex(g.Adj(u), other)
				// The edge was checked above, so the arc exists.
				un.streams = append(un.streams, endpointStream{arc: arc, backlog: backlog})
			}
		}
		uns[u] = un
		nodes[u] = un
	}
	eng := congest.NewEngine(g, nodes, cfg)
	defer eng.Close()
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		return nil, err
	}
	out := &LandmarkResult{Net: prev.Net}
	out.Labels = make([]*sketch.LandmarkLabel, n)
	for u := 0; u < n; u++ {
		if len(uns[u].delta) == 0 {
			out.Labels[u] = prev.Labels[u]
			continue
		}
		out.Labels[u] = mergeLabel(prev.Labels[u], uns[u].delta)
	}
	out.Cost.Total = eng.Stats()
	return out, nil
}
