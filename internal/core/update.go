package core

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// Incremental maintenance. The paper's introduction motivates bounding
// preprocessing cost because "the distance information or network itself
// changes frequently, and this would require altering the sketches
// periodically". For the landmark sketches of Theorem 4.3 — whose labels
// are exact distances to the density net — an edge weight *decrease*
// admits a cheap warm-start repair instead of a full rebuild:
//
//  1. Every node keeps its old label (entrywise an upper bound on the
//     new distances, since distances only shrank).
//  2. The two endpoints of the changed edge stream their label entries
//     to each other across it (one entry per round).
//  3. Any resulting improvement re-propagates as an ordinary
//     Bellman–Ford wave.
//
// This converges to the exact new labels: old labels violate the
// Bellman–Ford fixed-point condition only across the changed edge, step
// 2 relaxes exactly that edge, and step 3 restores the invariant
// everywhere else. Cost is proportional to the region whose distances
// actually changed, not to S·|N| (experiment E14 quantifies the gap).
//
// Weight increases invalidate upper bounds and are not handled here —
// they require the full rebuild, matching the classic asymmetry of
// dynamic shortest-path maintenance.

// updateNode runs the warm-start repair for one node.
type updateNode struct {
	id   int
	best map[int]graph.Dist // warm-started landmark entries

	endpointFor int // neighbor index of the changed edge's other end; -1
	toStream    []srcDist

	fifo   [][]int
	inFifo []map[int]bool
}

type streamMsg struct {
	Src  int
	Dist graph.Dist
}

func (streamMsg) Words() int { return 2 }

func (nd *updateNode) Init(ctx *congest.Context) {
	deg := ctx.Degree()
	nd.fifo = make([][]int, deg)
	nd.inFifo = make([]map[int]bool, deg)
	for i := 0; i < deg; i++ {
		nd.inFifo[i] = make(map[int]bool)
	}
	if nd.endpointFor >= 0 && len(nd.toStream) > 0 {
		ctx.WakeNextRound()
	}
}

func (nd *updateNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		m := in.Payload.(streamMsg)
		w := ctx.NeighborIndex(in.From)
		d := graph.AddDist(m.Dist, ctx.WeightTo(w))
		if cur, ok := nd.best[m.Src]; !ok || d < cur {
			nd.best[m.Src] = d
			nd.enqueueAll(m.Src)
		}
	}
	nd.drain(ctx)
}

func (nd *updateNode) enqueueAll(src int) {
	for i := range nd.fifo {
		if !nd.inFifo[i][src] {
			nd.inFifo[i][src] = true
			nd.fifo[i] = append(nd.fifo[i], src)
		}
	}
}

func (nd *updateNode) drain(ctx *congest.Context) {
	pending := false
	for i := range nd.fifo {
		// The changed edge first carries the endpoint's streamed backlog
		// (step 2); improvements share it afterwards.
		if i == nd.endpointFor && len(nd.toStream) > 0 && len(nd.fifo[i]) == 0 {
			e := nd.toStream[0]
			nd.toStream = nd.toStream[1:]
			ctx.Send(i, streamMsg{Src: e.Src, Dist: e.Dist})
			if len(nd.toStream) > 0 {
				pending = true
			}
			continue
		}
		if len(nd.fifo[i]) == 0 {
			continue
		}
		src := nd.fifo[i][0]
		copy(nd.fifo[i], nd.fifo[i][1:])
		nd.fifo[i] = nd.fifo[i][:len(nd.fifo[i])-1]
		delete(nd.inFifo[i], src)
		ctx.Send(i, streamMsg{Src: src, Dist: nd.best[src]})
		if len(nd.fifo[i]) > 0 || (i == nd.endpointFor && len(nd.toStream) > 0) {
			pending = true
		}
	}
	if pending {
		ctx.WakeNextRound()
	}
}

// UpdateLandmark repairs landmark labels after the weight of edge {a,b}
// decreased. g must be the *new* topology (same node set and edges, the
// one changed weight). prev is consumed: the returned result reuses and
// mutates its label maps.
func UpdateLandmark(g *graph.Graph, prev *LandmarkResult, a, b int, cfg congest.Config) (*LandmarkResult, error) {
	n := g.N()
	if len(prev.Labels) != n {
		return nil, fmt.Errorf("core: %d labels for n=%d", len(prev.Labels), n)
	}
	if _, ok := g.EdgeWeight(a, b); !ok {
		return nil, fmt.Errorf("core: edge (%d,%d) not in graph", a, b)
	}
	nodes := make([]congest.Node, n)
	uns := make([]*updateNode, n)
	for u := 0; u < n; u++ {
		un := &updateNode{id: u, best: prev.Labels[u].Dists, endpointFor: -1}
		if u == a || u == b {
			other := b
			if u == b {
				other = a
			}
			idx := -1
			for i, arc := range g.Adj(u) {
				if arc.To == other {
					idx = i
				}
			}
			un.endpointFor = idx
			for _, w := range prev.Labels[u].NetNodes() {
				un.toStream = append(un.toStream, srcDist{Src: w, Dist: prev.Labels[u].Dists[w]})
			}
		}
		uns[u] = un
		nodes[u] = un
	}
	eng := congest.NewEngine(g, nodes, cfg)
	defer eng.Close()
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		return nil, err
	}
	out := &LandmarkResult{Net: prev.Net}
	out.Labels = make([]*sketch.LandmarkLabel, n)
	for u := 0; u < n; u++ {
		lab := sketch.NewLandmarkLabel(u)
		lab.Dists = uns[u].best
		out.Labels[u] = lab
	}
	out.Cost.Total = eng.Stats()
	return out, nil
}
