package core

import "distsketch/internal/congest"

// outQueues implements the per-edge FIFO send discipline every core
// protocol uses to stay within the CONGEST bandwidth budget: any number of
// logical sends may be enqueued in a round, and exactly one message per
// edge is transmitted per round.
//
// Two entry kinds exist. A concrete entry carries a fixed message
// (control, echo). A source entry carries only a source ID whose current
// best distance is read *at transmission time* — this realizes the
// paper's queue semantics in Algorithm 2, where a queued announcement that
// is improved before being sent is transmitted only once, with the newer
// value (the "superseded" case of Section 3.3).
type outQueues struct {
	edges []edgeQueue
}

type edgeQueue struct {
	fifo    []qEntry
	srcHere map[int]bool // source IDs currently queued on this edge
}

type qEntry struct {
	msg congest.Message // nil for source entries
	src int
}

func newOutQueues(degree int) *outQueues {
	q := &outQueues{edges: make([]edgeQueue, degree)}
	for i := range q.edges {
		q.edges[i].srcHere = make(map[int]bool)
	}
	return q
}

// pushMsg enqueues a concrete message on edge i.
func (q *outQueues) pushMsg(i int, m congest.Message) {
	q.edges[i].fifo = append(q.edges[i].fifo, qEntry{msg: m})
}

// pushSrc enqueues a deferred-value announcement for src on edge i; it is
// a no-op if src is already queued there (the superseded-update collapse).
// Reports whether a new entry was added.
func (q *outQueues) pushSrc(i, src int) bool {
	e := &q.edges[i]
	if e.srcHere[src] {
		return false
	}
	e.srcHere[src] = true
	e.fifo = append(e.fifo, qEntry{msg: nil, src: src})
	return true
}

// pushSrcAll enqueues src on every edge and returns how many edges newly
// queued it.
func (q *outQueues) pushSrcAll(src int) int {
	added := 0
	for i := range q.edges {
		if q.pushSrc(i, src) {
			added++
		}
	}
	return added
}

// pending reports whether any edge has queued traffic.
func (q *outQueues) pending() bool {
	for i := range q.edges {
		if len(q.edges[i].fifo) > 0 {
			return true
		}
	}
	return false
}

// popSrcBatch pops up to max consecutive source entries from the head of
// edge i's queue (stopping at a concrete message). Used by the
// bandwidth-B generalization, which packs several announcements into one
// B-word message (Section 2.2's remark).
func (q *outQueues) popSrcBatch(i, max int) []int {
	e := &q.edges[i]
	var srcs []int
	for len(srcs) < max && len(e.fifo) > 0 && e.fifo[0].msg == nil {
		src := e.fifo[0].src
		copy(e.fifo, e.fifo[1:])
		e.fifo = e.fifo[:len(e.fifo)-1]
		delete(e.srcHere, src)
		srcs = append(srcs, src)
	}
	return srcs
}

// drain pops at most one entry per edge, calling send(i, entry). For
// source entries the callback builds the message from current state.
func (q *outQueues) drain(send func(edge int, e qEntry)) {
	for i := range q.edges {
		e := &q.edges[i]
		if len(e.fifo) == 0 {
			continue
		}
		ent := e.fifo[0]
		// Shift; queues are short in practice (bounded by bunch size),
		// so the copy is cheap and keeps memory compact.
		copy(e.fifo, e.fifo[1:])
		e.fifo = e.fifo[:len(e.fifo)-1]
		if ent.msg == nil {
			delete(e.srcHere, ent.src)
		}
		send(i, ent)
	}
}

// reset drops all queued entries (used at phase boundaries, where queues
// are provably empty in correct runs; reset also guards tests).
func (q *outQueues) reset() {
	for i := range q.edges {
		q.edges[i].fifo = q.edges[i].fifo[:0]
		for k := range q.edges[i].srcHere {
			delete(q.edges[i].srcHere, k)
		}
	}
}
