package core

import (
	"testing"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
)

// The paper's conclusion asks for asynchronous variants. These tests show
// the constructions are delay-oblivious: under bounded random message
// delays (FIFO per edge) every protocol converges to exactly the labels
// of the synchronous run, because every stage is a monotone fixed-point
// computation (Bellman–Ford relaxations) or a causally-ordered
// convergecast (Section 3.3), neither of which depends on round counts.

func TestAsyncTZMatchesSync(t *testing.T) {
	for _, f := range []graph.Family{graph.FamilyER, graph.FamilyGrid, graph.FamilyBA} {
		g := graph.Make(f, 48, graph.UniformWeights(1, 8), 55)
		sync, err := BuildTZ(g, TZOptions{K: 3, Seed: 5, Mode: SyncOmniscient})
		if err != nil {
			t.Fatal(err)
		}
		async, err := BuildTZ(g, TZOptions{K: 3, Seed: 5, Mode: SyncOmniscient,
			Congest: congest.Config{MaxDelay: 4}})
		if err != nil {
			t.Fatal(err)
		}
		labelsEqual(t, async.Labels, sync.Labels, string(f)+" async")
		if async.Cost.Total.Rounds <= sync.Cost.Total.Rounds {
			t.Errorf("%s: async rounds %d should exceed sync %d",
				f, async.Cost.Total.Rounds, sync.Cost.Total.Rounds)
		}
	}
}

func TestAsyncDetectionMatchesSync(t *testing.T) {
	// The Section 3.3 protocol is the async-ready variant: phase
	// boundaries are causal (ECHO/COMPLETE), not clocked. It must
	// produce the same labels under delays.
	g := graph.Make(graph.FamilyGeometric, 40, nil, 66)
	sync, err := BuildTZ(g, TZOptions{K: 2, Seed: 6, Mode: SyncDetection})
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []int{2, 5} {
		async, err := BuildTZ(g, TZOptions{K: 2, Seed: 6, Mode: SyncDetection,
			Congest: congest.Config{MaxDelay: delay}})
		if err != nil {
			t.Fatalf("delay=%d: %v", delay, err)
		}
		labelsEqual(t, async.Labels, sync.Labels, "async detection")
	}
}

func TestAsyncCDGMatchesSync(t *testing.T) {
	g := graph.Make(graph.FamilyER, 64, graph.UniformWeights(1, 9), 77)
	sync, err := BuildCDG(g, SlackOptions{Eps: 0.25, K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	async, err := BuildCDG(g, SlackOptions{Eps: 0.25, K: 2, Seed: 7,
		Congest: congest.Config{MaxDelay: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		a, b := async.Labels[u], sync.Labels[u]
		if a.NetNode != b.NetNode || a.NetDist != b.NetDist {
			t.Fatalf("node %d: async net pointer differs", u)
		}
		if len(a.NetLabel.Bunch) != len(b.NetLabel.Bunch) {
			t.Fatalf("node %d: async shipped label differs", u)
		}
	}
}

func TestAsyncEchoDisciplineHolds(t *testing.T) {
	g := graph.Make(graph.FamilyER, 48, graph.UniformWeights(1, 6), 88)
	res, err := BuildTZ(g, TZOptions{K: 3, Seed: 8, Mode: SyncDetection,
		Congest: congest.Config{MaxDelay: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.EchoMessages != res.Cost.DataMessages {
		t.Errorf("async echo %d != data %d", res.Cost.EchoMessages, res.Cost.DataMessages)
	}
}
