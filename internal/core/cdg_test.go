package core

import (
	"testing"

	"distsketch/internal/congest"
	"distsketch/internal/eval"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
	"distsketch/internal/tz"
)

// TestLandmarkMatchesCentralized: the distributed Theorem 4.3 construction
// must reproduce the centralized per-landmark Dijkstra distances exactly.
func TestLandmarkMatchesCentralized(t *testing.T) {
	g := graph.Make(graph.FamilyER, 64, graph.UniformWeights(1, 9), 31)
	eps := 0.25
	dist, err := BuildLandmark(g, SlackOptions{Eps: eps, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	cent, net, err := tz.BuildLandmark(g, eps, 31, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Net) != len(net) {
		t.Fatalf("net sizes differ: %d vs %d", len(dist.Net), len(net))
	}
	for i := range net {
		if dist.Net[i] != net[i] {
			t.Fatalf("net member %d differs: %d vs %d", i, dist.Net[i], net[i])
		}
	}
	for u := 0; u < g.N(); u++ {
		a, b := dist.Labels[u], cent[u]
		if a.Len() != b.Len() {
			t.Fatalf("node %d: %d landmark entries vs %d", u, a.Len(), b.Len())
		}
		// Both sides are canonical (sorted, unique), so equality is
		// positional.
		for i, e := range b.Entries {
			if a.Entries[i] != e {
				t.Fatalf("node %d entry %d: %+v vs %+v", u, i, a.Entries[i], e)
			}
		}
	}
}

func TestLandmarkStretchAndSlack(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 80, nil, 13)
	eps := 0.25
	res, err := BuildLandmark(g, SlackOptions{Eps: eps, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	ap := graph.APSP(g)
	rep := eval.EvaluateSlack(ap, res.Query, eval.AllPairs(g.N()), eps)
	if rep.Far.Violations != 0 || rep.Far.Unreachable != 0 {
		t.Fatalf("invalid far estimates: %+v", rep.Far)
	}
	if rep.Far.MaxStretch > 3 {
		t.Errorf("far max stretch %.3f > 3", rep.Far.MaxStretch)
	}
	if rep.FarFrac < 1-eps-1e-9 {
		t.Errorf("far fraction %.3f < %.3f", rep.FarFrac, 1-eps)
	}
}

// TestCDGMatchesCentralized is the E12-style equivalence for the CDG
// pipeline: net membership, nearest net node, distances, and the shipped
// labels must all match the centralized reference.
func TestCDGMatchesCentralized(t *testing.T) {
	for _, k := range []int{1, 2} {
		g := graph.Make(graph.FamilyGeometric, 56, nil, 41)
		eps := 0.25
		dist, err := BuildCDG(g, SlackOptions{Eps: eps, K: k, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		cent, _, err := tz.BuildCDG(g, eps, k, 41, 0)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			a, b := dist.Labels[u], cent[u]
			if a.NetNode != b.NetNode || a.NetDist != b.NetDist {
				t.Fatalf("k=%d node %d: net pointer (%d,%d) vs (%d,%d)",
					k, u, a.NetNode, a.NetDist, b.NetNode, b.NetDist)
			}
			la, lb := a.NetLabel, b.NetLabel
			if la.Owner != lb.Owner || len(la.Bunch) != len(lb.Bunch) {
				t.Fatalf("k=%d node %d: shipped label header mismatch", k, u)
			}
			for i := range la.Pivots {
				if la.Pivots[i] != lb.Pivots[i] {
					t.Fatalf("k=%d node %d: shipped pivot %d mismatch", k, u, i)
				}
			}
			for w, e := range lb.Bunch {
				if la.Bunch[w] != e {
					t.Fatalf("k=%d node %d: shipped bunch[%d] mismatch", k, u, w)
				}
			}
		}
	}
}

func TestCDGStretchWithSlack(t *testing.T) {
	g := graph.Make(graph.FamilyER, 80, graph.UniformWeights(1, 10), 23)
	eps, k := 0.25, 2
	res, err := BuildCDG(g, SlackOptions{Eps: eps, K: k, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	ap := graph.APSP(g)
	rep := eval.EvaluateSlack(ap, res.Query, eval.AllPairs(g.N()), eps)
	if rep.Far.Violations != 0 || rep.Far.Unreachable != 0 {
		t.Fatalf("invalid far estimates: %+v", rep.Far)
	}
	if bound := float64(8*k - 1); rep.Far.MaxStretch > bound {
		t.Errorf("far max stretch %.3f > 8k-1 = %g", rep.Far.MaxStretch, bound)
	}
}

func TestCDGStageCostsSum(t *testing.T) {
	// n and ε chosen so the net is a proper subset (NetProb < 1) and the
	// ship stage has real work to do.
	g := graph.Make(graph.FamilyBA, 200, graph.UniformWeights(1, 6), 8)
	res, err := BuildCDG(g, SlackOptions{Eps: 0.5, K: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Net) == g.N() {
		t.Fatal("net saturated; pick sparser parameters")
	}
	sum := res.WaveCost.Add(res.TZCost).Add(res.ShipCost)
	if sum != res.Cost.Total {
		t.Errorf("stage costs %v != total %v", sum, res.Cost.Total)
	}
	if res.WaveCost.Rounds <= 0 || res.TZCost.Rounds <= 0 || res.ShipCost.Rounds <= 0 {
		t.Errorf("degenerate stage costs: wave=%v tz=%v ship=%v", res.WaveCost, res.TZCost, res.ShipCost)
	}
}

func TestCDGSaturatedNetIsExactTZ(t *testing.T) {
	// When NetProb = 1 (ε ≤ 5·ln n/n) the net is all of V, every node is
	// its own net node, and the CDG query degenerates to a plain TZ query.
	g := graph.Make(graph.FamilyER, 40, graph.UniformWeights(1, 5), 4)
	res, err := BuildCDG(g, SlackOptions{Eps: 0.25, K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Net) != g.N() {
		t.Skip("net not saturated at these parameters")
	}
	for u := 0; u < g.N(); u++ {
		if res.Labels[u].NetNode != u || res.Labels[u].NetDist != 0 {
			t.Fatalf("node %d: expected self net pointer, got (%d,%d)",
				u, res.Labels[u].NetNode, res.Labels[u].NetDist)
		}
	}
	if res.ShipCost.Rounds != 0 || res.ShipCost.Messages != 0 {
		t.Errorf("saturated net should ship nothing, got %v", res.ShipCost)
	}
}

func TestGracefulDistributedMatchesCentralized(t *testing.T) {
	g := graph.Make(graph.FamilyER, 48, graph.UniformWeights(1, 8), 19)
	dist, err := BuildGraceful(g, SlackOptions{Seed: 19, Congest: congestDefault()})
	if err != nil {
		t.Fatal(err)
	}
	cent, err := tz.BuildGraceful(g, 19)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		a, b := dist.Labels[u], cent[u]
		if len(a.Levels) != len(b.Levels) {
			t.Fatalf("node %d: %d levels vs %d", u, len(a.Levels), len(b.Levels))
		}
		for i := range a.Levels {
			ca, cb := a.Levels[i], b.Levels[i]
			if ca.NetNode != cb.NetNode || ca.NetDist != cb.NetDist {
				t.Fatalf("node %d level %d: net pointer mismatch", u, i)
			}
			if len(ca.NetLabel.Bunch) != len(cb.NetLabel.Bunch) {
				t.Fatalf("node %d level %d: bunch size mismatch", u, i)
			}
		}
	}
}

func TestGracefulDistributedBounds(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 64, nil, 29)
	res, err := BuildGraceful(g, SlackOptions{Seed: 29, Congest: congestDefault()})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	ap := graph.APSP(g)
	rep := eval.Evaluate(ap, res.Query, eval.AllPairs(n))
	if rep.Violations != 0 || rep.Unreachable != 0 {
		t.Fatalf("invalid estimates: %+v", rep)
	}
	if worst := float64(8*sketch.GracefulLevels(n) - 1); rep.MaxStretch > worst {
		t.Errorf("max stretch %.2f > %g", rep.MaxStretch, worst)
	}
	avg := eval.AvgStretchAllPairs(ap, res.Query)
	if avg > 12 {
		t.Errorf("average stretch %.2f implausible for O(1)", avg)
	}
}

func TestSlackRejectsBadInput(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	if _, err := BuildLandmark(g, SlackOptions{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := BuildCDG(g, SlackOptions{Eps: 2, K: 1}); err == nil {
		t.Error("eps=2 accepted")
	}
	if _, err := BuildCDG(g, SlackOptions{Eps: 0.5, K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func congestDefault() congest.Config { return congest.Config{} }

func congestDefaultDelay(d int) congest.Config { return congest.Config{MaxDelay: d} }
