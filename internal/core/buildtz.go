package core

import (
	"fmt"
	"math"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// TZOptions configures the distributed Thorup–Zwick construction.
type TZOptions struct {
	// K is the hierarchy depth; stretch is 2K-1 (Theorem 1.1). Must be ≥ 1.
	K int
	// Seed drives all coin flips (hierarchy sampling and simulator RNG).
	Seed uint64
	// Mode selects phase synchronization (see SyncMode).
	Mode SyncMode
	// S is the shortest-path diameter, required for SyncAnalytic (the
	// paper's assumption that every node knows S; Section 3.2).
	S int
	// AnalyticConst scales the analytic phase bound; 0 means 3 (the
	// Lemma 3.6 constant: |B_i(u)| ≤ 3·n^{1/k}·ln n whp).
	AnalyticConst float64
	// Levels optionally fixes the hierarchy (levels[u] = top level of u,
	// -1 for nodes outside A_0). When nil, the standard hierarchy is
	// sampled with probability n^{-1/k} from the shared coin streams.
	Levels []int
	// Batch enables the bandwidth-B generalization (Section 2.2's "if B
	// bits are allowed"): up to Batch announcements travel in one
	// message of 1+2·Batch words. 0 or 1 is the standard model.
	// Omniscient/analytic modes only.
	Batch int
	// Congest tunes the simulator (sequential mode, message budget).
	Congest congest.Config
	// Progress, when non-nil, is invoked after every simulated round with
	// the name of the construction phase being executed and the
	// engine-local round number. It overrides Congest.OnRound.
	Progress func(phase string, round int)
}

// TZResult is the outcome of a distributed sketch construction.
type TZResult struct {
	Labels []*sketch.TZLabel
	Levels []int
	Cost   CostBreakdown
	// Trace is the per-round traffic series (only when Congest.Trace).
	Trace []congest.RoundStat
}

// MaxLabelWords returns the largest label size in words.
func (r *TZResult) MaxLabelWords() int {
	m := 0
	for _, l := range r.Labels {
		if s := l.SizeWords(); s > m {
			m = s
		}
	}
	return m
}

// MeanLabelWords returns the average label size in words.
func (r *TZResult) MeanLabelWords() float64 {
	t := 0
	for _, l := range r.Labels {
		t += l.SizeWords()
	}
	return float64(t) / float64(len(r.Labels))
}

// Query estimates d(u,v) from the two labels (Lemma 3.2).
func (r *TZResult) Query(u, v int) graph.Dist {
	return sketch.QueryTZ(r.Labels[u], r.Labels[v])
}

// AnalyticPhaseBound returns the per-phase round bound from Theorem 3.8:
// c · max(1, hierarchySize^{1/k}·ln(hierarchySize)) · S rounds, where
// hierarchySize is |A_0| (n for the standard construction; the net size
// for CDG). This is what a node that knows S would wait per phase.
func AnalyticPhaseBound(hierarchySize, k, s int, c float64) int {
	if c == 0 {
		c = 3
	}
	h := float64(hierarchySize)
	if h < 2 {
		h = 2
	}
	queueBound := math.Pow(h, 1/float64(k)) * math.Log(h)
	if queueBound < 1 {
		queueBound = 1
	}
	return int(math.Ceil(c*queueBound*float64(s))) + 1
}

// BuildTZ runs the distributed Thorup–Zwick construction of Section 3 on
// g and returns every node's label along with the cost accounting.
func BuildTZ(g *graph.Graph, opt TZOptions) (*TZResult, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", opt.K)
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	levels := opt.Levels
	if levels == nil {
		levels = sketch.SampleLevels(n, opt.K, sketch.HierarchyProb(n, opt.K), opt.Seed)
	}
	if len(levels) != n {
		return nil, fmt.Errorf("core: %d levels for n=%d", len(levels), n)
	}
	if opt.Mode == SyncDetection {
		if opt.Batch > 1 {
			return nil, fmt.Errorf("core: bandwidth batching is not implemented for detection mode")
		}
		return buildTZDetection(g, opt, levels)
	}
	return buildTZPhased(g, opt, levels)
}

// buildTZPhased runs phases k-1..0 with runner-driven (omniscient or
// analytic) synchronization.
func buildTZPhased(g *graph.Graph, opt TZOptions, levels []int) (*TZResult, error) {
	n := g.N()
	hierSize := 0
	for _, l := range levels {
		if l >= 0 {
			hierSize++
		}
	}
	nodes := make([]congest.Node, n)
	tzs := make([]*tzNode, n)
	for u := 0; u < n; u++ {
		tzs[u] = newTZNode(u, opt.K, levels[u], opt.Batch)
		nodes[u] = tzs[u]
	}
	cfg := opt.Congest
	cfg.Seed = opt.Seed
	if opt.Batch > 1 && cfg.MaxWords < 1+2*opt.Batch {
		cfg.MaxWords = 1 + 2*opt.Batch
	}
	var curPhase string
	if opt.Progress != nil {
		prog := opt.Progress
		cfg.OnRound = func(r int) { prog(curPhase, r) }
	}
	eng := congest.NewEngine(g, nodes, cfg)
	defer eng.Close()
	eng.Init()

	res := &TZResult{Levels: levels}
	res.Cost.PerPhase = make([]congest.Stats, opt.K)
	for phase := opt.K - 1; phase >= 0; phase-- {
		curPhase = fmt.Sprintf("phase %d", phase)
		before := eng.Stats()
		anySource := false
		for u := 0; u < n; u++ {
			tzs[u].startPhase(phase)
			if levels[u] == phase {
				eng.Wake(u)
				anySource = true
			}
		}
		if anySource {
			switch opt.Mode {
			case SyncOmniscient:
				if _, err := eng.RunUntilQuiescent(0); err != nil {
					return nil, fmt.Errorf("core: phase %d: %w", phase, err)
				}
			case SyncAnalytic:
				if opt.S <= 0 {
					return nil, fmt.Errorf("core: analytic mode requires S > 0")
				}
				bound := AnalyticPhaseBound(hierSize, opt.K, opt.S, opt.AnalyticConst)
				if err := eng.RunRounds(bound); err != nil {
					return nil, fmt.Errorf("core: phase %d: %w", phase, err)
				}
				if !eng.Quiescent() {
					return nil, fmt.Errorf("core: phase %d did not converge within analytic bound %d rounds — Lemma 3.6 constant too small for this instance", phase, bound)
				}
			default:
				return nil, fmt.Errorf("core: unsupported mode %v", opt.Mode)
			}
		}
		for u := 0; u < n; u++ {
			tzs[u].finishPhase()
		}
		res.Cost.PerPhase[phase] = eng.Stats().Sub(before)
	}
	res.Labels = make([]*sketch.TZLabel, n)
	for u := 0; u < n; u++ {
		// Phases accumulated bunch items in arbitrary per-phase order;
		// SetBunch establishes the sorted representation invariant once
		// per label.
		tzs[u].label.SetBunch(tzs[u].items)
		res.Labels[u] = tzs[u].label
	}
	res.Cost.Total = eng.Stats()
	res.Cost.DataMessages = eng.Stats().Messages
	res.Trace = eng.Trace()
	return res, nil
}
