package core

import (
	"context"
	"errors"
	"testing"

	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// decreaseEdge returns a copy of g with edge {a,b} reweighted.
func decreaseEdge(t *testing.T, g *graph.Graph, a, b int, w graph.Dist) *graph.Graph {
	t.Helper()
	nb := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if (e.U == a && e.V == b) || (e.U == b && e.V == a) {
			if w > e.Weight {
				t.Fatalf("edge (%d,%d): %d is not a decrease from %d", a, b, w, e.Weight)
			}
			nb.AddEdge(e.U, e.V, w)
			continue
		}
		nb.AddEdge(e.U, e.V, e.Weight)
	}
	ng, err := nb.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

func TestUpdateLandmarkExact(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 96, graph.UniformWeights(5, 50), 61)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.25, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	// Decrease a heavy-ish edge to 1 — a change that reroutes many paths.
	e := g.Edges()[g.M()/2]
	ng := decreaseEdge(t, g, e.U, e.V, 1)
	upd, err := UpdateLandmark(ng, prev, []EdgeChange{{U: e.U, V: e.V}}, congestDefault())
	if err != nil {
		t.Fatal(err)
	}
	// Updated labels must equal exact new distances to every net node.
	for _, w := range upd.Net {
		want := graph.Dijkstra(ng, w)
		for u := 0; u < ng.N(); u++ {
			got, ok := upd.Labels[u].Get(w)
			if !ok || got != want.Dist[u] {
				t.Fatalf("node %d landmark %d: got %d (ok=%v), want %d", u, w, got, ok, want.Dist[u])
			}
		}
	}
	// And the caller's labels must still be the OLD exact distances —
	// UpdateLandmark repairs into fresh storage.
	for _, w := range prev.Net {
		want := graph.Dijkstra(g, w)
		for u := 0; u < g.N(); u++ {
			got, ok := prev.Labels[u].Get(w)
			if !ok || got != want.Dist[u] {
				t.Fatalf("prev label mutated: node %d landmark %d: got %d (ok=%v), want %d",
					u, w, got, ok, want.Dist[u])
			}
		}
	}
}

func TestUpdateLandmarkCheaperThanRebuild(t *testing.T) {
	g := graph.Make(graph.FamilyER, 128, graph.UniformWeights(5, 50), 62)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.25, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[3]
	ng := decreaseEdge(t, g, e.U, e.V, e.Weight-1) // tiny decrease: few paths change
	upd, err := UpdateLandmark(ng, prev, []EdgeChange{{U: e.U, V: e.V}}, congestDefault())
	if err != nil {
		t.Fatal(err)
	}
	rebuild, err := BuildLandmark(ng, SlackOptions{Eps: 0.25, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Cost.Total.Messages >= rebuild.Cost.Total.Messages {
		t.Errorf("update messages %d not cheaper than rebuild %d",
			upd.Cost.Total.Messages, rebuild.Cost.Total.Messages)
	}
	// And still exact.
	for _, w := range upd.Net[:3] {
		want := graph.Dijkstra(ng, w)
		for u := 0; u < ng.N(); u++ {
			if got, _ := upd.Labels[u].Get(w); got != want.Dist[u] {
				t.Fatalf("node %d landmark %d wrong after cheap update", u, w)
			}
		}
	}
}

func TestUpdateLandmarkNoopChange(t *testing.T) {
	// "Decreasing" to the same weight must change nothing and cost only
	// the endpoint streaming.
	g := graph.Make(graph.FamilyGrid, 49, graph.UniformWeights(2, 9), 63)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.5, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	netSize := len(prev.Net)
	e := g.Edges()[0]
	upd, err := UpdateLandmark(g, prev, []EdgeChange{{U: e.U, V: e.V}}, congestDefault())
	if err != nil {
		t.Fatal(err)
	}
	// Streaming cost: both endpoints send |N| entries over one edge.
	if upd.Cost.Total.Messages > int64(4*netSize+8) {
		t.Errorf("no-op update sent %d messages, want ~2|N|=%d", upd.Cost.Total.Messages, 2*netSize)
	}
}

func TestUpdateLandmarkBadEdge(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateLandmark(g, prev, []EdgeChange{{U: 0, V: 3}}, congestDefault()); err == nil {
		t.Error("nonexistent edge accepted")
	}
}

// snapshotLabels deep-copies a label set so later comparison detects any
// mutation of the originals.
func snapshotLabels(labels []*sketch.LandmarkLabel) [][]sketch.Entry {
	snap := make([][]sketch.Entry, len(labels))
	for u, l := range labels {
		snap[u] = append([]sketch.Entry(nil), l.Entries...)
	}
	return snap
}

func labelsEqualSnapshot(labels []*sketch.LandmarkLabel, snap [][]sketch.Entry) bool {
	for u, l := range labels {
		if len(l.Entries) != len(snap[u]) {
			return false
		}
		for i, e := range l.Entries {
			if e != snap[u][i] {
				return false
			}
		}
	}
	return true
}

// TestUpdateLandmarkCancelLeavesPrevIntact cancels the repair engine
// mid-run and checks the error path leaves the caller's labels untouched
// — the regression the old in-place repair failed: it installed prev's
// maps into the repair nodes and mutated them during rounds, so a
// cancellation left the caller silently corrupted.
func TestUpdateLandmarkCancelLeavesPrevIntact(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 96, graph.UniformWeights(5, 50), 61)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.25, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshotLabels(prev.Labels)
	e := g.Edges()[g.M()/2]
	ng := decreaseEdge(t, g, e.U, e.V, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := congestDefault()
	cfg.Ctx = ctx
	cfg.OnRound = func(r int) {
		if r == 2 { // mid-repair: the streamed backlog is still in flight
			cancel()
		}
	}
	if _, err := UpdateLandmark(ng, prev, []EdgeChange{{U: e.U, V: e.V}}, cfg); err == nil {
		t.Fatal("canceled repair returned no error")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !labelsEqualSnapshot(prev.Labels, snap) {
		t.Fatal("canceled repair mutated the caller's labels")
	}

	// The same prev must still drive a successful repair to exact labels.
	upd, err := UpdateLandmark(ng, prev, []EdgeChange{{U: e.U, V: e.V}}, congestDefault())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range upd.Net[:3] {
		want := graph.Dijkstra(ng, w)
		for u := 0; u < ng.N(); u++ {
			if got, _ := upd.Labels[u].Get(w); got != want.Dist[u] {
				t.Fatalf("node %d landmark %d wrong after retry", u, w)
			}
		}
	}
	if !labelsEqualSnapshot(prev.Labels, snap) {
		t.Fatal("successful repair mutated the caller's labels")
	}
}

// TestChangedArcIndexParallel exercises the endpoint arc selection with
// hand-built adjacency lists containing parallel arcs. graph.Builder
// canonicalizes parallel edges to the minimum weight today, so this
// guards the selection logic for ingestion paths that may not: the
// repair must stream across the lightest arc to the changed neighbor,
// not whichever parallel arc happens to scan last.
func TestChangedArcIndexParallel(t *testing.T) {
	arcs := []graph.Arc{
		{To: 2, Weight: 7},
		{To: 4, Weight: 9}, // heavy parallel arc first
		{To: 4, Weight: 3}, // the changed (lightest) arc
		{To: 4, Weight: 5},
		{To: 6, Weight: 1},
	}
	if got := changedArcIndex(arcs, 4); got != 2 {
		t.Errorf("changedArcIndex = %d, want 2 (the minimum-weight arc)", got)
	}
	if got := changedArcIndex(arcs, 6); got != 4 {
		t.Errorf("changedArcIndex = %d, want 4", got)
	}
	if got := changedArcIndex(arcs, 9); got != -1 {
		t.Errorf("changedArcIndex = %d, want -1 for a missing neighbor", got)
	}
	// Ties resolve to the first match, preserving the pre-fix behavior
	// for graphs without parallel edges.
	ties := []graph.Arc{{To: 4, Weight: 3}, {To: 4, Weight: 3}}
	if got := changedArcIndex(ties, 4); got != 0 {
		t.Errorf("changedArcIndex = %d, want 0 on ties", got)
	}
}

// TestUpdateLandmarkSharesUnchangedLabels checks the repair result reuses
// prev's label values for nodes whose distances did not change (the
// cheap-repair contract: cost proportional to the affected region).
func TestUpdateLandmarkSharesUnchangedLabels(t *testing.T) {
	g := graph.Make(graph.FamilyGrid, 49, graph.UniformWeights(2, 9), 63)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.5, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[0]
	// No-op "decrease" to the same weight: nothing improves, so every
	// label must be shared pointer-identical with prev.
	upd, err := UpdateLandmark(g, prev, []EdgeChange{{U: e.U, V: e.V}}, congestDefault())
	if err != nil {
		t.Fatal(err)
	}
	for u := range upd.Labels {
		if upd.Labels[u] != prev.Labels[u] {
			t.Fatalf("node %d label copied on a no-op repair", u)
		}
	}
}

func TestMergeLabelCanonical(t *testing.T) {
	base := sketch.NewLandmarkLabelFromEntries(4, []sketch.Entry{
		{Net: 1, D: 10}, {Net: 5, D: 50}, {Net: 9, D: 90},
	})
	delta := map[int]graph.Dist{
		0:  7,  // insert before every base entry
		5:  41, // improve an existing entry
		12: 3,  // append past the end
	}
	merged := mergeLabel(base, delta)
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged label invalid: %v", err)
	}
	if merged.Owner != base.Owner {
		t.Errorf("merged owner = %d, want %d", merged.Owner, base.Owner)
	}
	want := []sketch.Entry{
		{Net: 0, D: 7}, {Net: 1, D: 10}, {Net: 5, D: 41}, {Net: 9, D: 90}, {Net: 12, D: 3},
	}
	if len(merged.Entries) != len(want) {
		t.Fatalf("Entries = %+v, want %+v", merged.Entries, want)
	}
	for i := range want {
		if merged.Entries[i] != want[i] {
			t.Fatalf("Entries[%d] = %+v, want %+v", i, merged.Entries[i], want[i])
		}
	}
	if len(base.Entries) != 3 || base.Entries[1] != (sketch.Entry{Net: 5, D: 50}) {
		t.Errorf("mergeLabel mutated its base: %+v", base.Entries)
	}
}
