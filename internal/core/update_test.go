package core

import (
	"testing"

	"distsketch/internal/graph"
)

// decreaseEdge returns a copy of g with edge {a,b} reweighted.
func decreaseEdge(t *testing.T, g *graph.Graph, a, b int, w graph.Dist) *graph.Graph {
	t.Helper()
	nb := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if (e.U == a && e.V == b) || (e.U == b && e.V == a) {
			if w > e.Weight {
				t.Fatalf("edge (%d,%d): %d is not a decrease from %d", a, b, w, e.Weight)
			}
			nb.AddEdge(e.U, e.V, w)
			continue
		}
		nb.AddEdge(e.U, e.V, e.Weight)
	}
	ng, err := nb.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

func TestUpdateLandmarkExact(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 96, graph.UniformWeights(5, 50), 61)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.25, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	// Decrease a heavy-ish edge to 1 — a change that reroutes many paths.
	e := g.Edges()[g.M()/2]
	ng := decreaseEdge(t, g, e.U, e.V, 1)
	upd, err := UpdateLandmark(ng, prev, e.U, e.V, congestDefault())
	if err != nil {
		t.Fatal(err)
	}
	// Updated labels must equal exact new distances to every net node.
	for _, w := range upd.Net {
		want := graph.Dijkstra(ng, w)
		for u := 0; u < ng.N(); u++ {
			got, ok := upd.Labels[u].Dists[w]
			if !ok || got != want.Dist[u] {
				t.Fatalf("node %d landmark %d: got %d (ok=%v), want %d", u, w, got, ok, want.Dist[u])
			}
		}
	}
}

func TestUpdateLandmarkCheaperThanRebuild(t *testing.T) {
	g := graph.Make(graph.FamilyER, 128, graph.UniformWeights(5, 50), 62)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.25, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[3]
	ng := decreaseEdge(t, g, e.U, e.V, e.Weight-1) // tiny decrease: few paths change
	upd, err := UpdateLandmark(ng, prev, e.U, e.V, congestDefault())
	if err != nil {
		t.Fatal(err)
	}
	rebuild, err := BuildLandmark(ng, SlackOptions{Eps: 0.25, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Cost.Total.Messages >= rebuild.Cost.Total.Messages {
		t.Errorf("update messages %d not cheaper than rebuild %d",
			upd.Cost.Total.Messages, rebuild.Cost.Total.Messages)
	}
	// And still exact.
	for _, w := range upd.Net[:3] {
		want := graph.Dijkstra(ng, w)
		for u := 0; u < ng.N(); u++ {
			if upd.Labels[u].Dists[w] != want.Dist[u] {
				t.Fatalf("node %d landmark %d wrong after cheap update", u, w)
			}
		}
	}
}

func TestUpdateLandmarkNoopChange(t *testing.T) {
	// "Decreasing" to the same weight must change nothing and cost only
	// the endpoint streaming.
	g := graph.Make(graph.FamilyGrid, 49, graph.UniformWeights(2, 9), 63)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.5, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	netSize := len(prev.Net)
	e := g.Edges()[0]
	upd, err := UpdateLandmark(g, prev, e.U, e.V, congestDefault())
	if err != nil {
		t.Fatal(err)
	}
	// Streaming cost: both endpoints send |N| entries over one edge.
	if upd.Cost.Total.Messages > int64(4*netSize+8) {
		t.Errorf("no-op update sent %d messages, want ~2|N|=%d", upd.Cost.Total.Messages, 2*netSize)
	}
}

func TestUpdateLandmarkBadEdge(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	prev, err := BuildLandmark(g, SlackOptions{Eps: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UpdateLandmark(g, prev, 0, 3, congestDefault()); err == nil {
		t.Error("nonexistent edge accepted")
	}
}
