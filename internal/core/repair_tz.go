package core

import (
	"fmt"
	"sort"

	"distsketch/internal/graph"
	"distsketch/internal/sketch"
	"distsketch/internal/tz"
)

// Suspect-cluster repair for Thorup–Zwick hierarchies (full-graph TZ
// labels, and the net hierarchies inside CDG and graceful labels).
//
// A rebuild would regrow every hierarchy member's truncated cluster
// (§3.2). The repair instead regrows only the *suspects* — the members
// whose cluster can have changed — and splices the regrown memberships
// into the old bunches, sharing every label whose bunch is untouched.
//
// With P = the endpoints of the changed edges, D = the artifact nodes
// whose distance to some hierarchy level A_i changed (detected by
// comparing stored pivot distances, which Build guarantees equal
// d(·, A_i), against fresh multi-source Dijkstra distances), and
// B_new(p) = {w : d_new(p, w) < d_new(p, A_{level(w)+1})} (the members
// whose *new* cluster contains p, from one full Dijkstra per endpoint),
// the suspect set is
//
//	W = (members of D ∪ P) ∪ ⋃_{x∈D} B_old(x) ∪ ⋃_{p∈P} B_new(p).
//
// Claim (decrease-only completeness): if no edge weight increased, every
// member w whose cluster membership or recorded distance differs between
// the old and new label sets is in W. Case analysis for an artifact x
// whose entry for w must change:
//
//   - x's truncation threshold d(x, A_{l+1}) shrank while d(x, w) is
//     unchanged (x drops out of C(w), or the stored distance is now
//     invalid): then x ∈ D, and if w was in x's old bunch, w ∈ B_old(x).
//   - d(x, w) decreased and x ∈ C_new(w): the new shortest w–x path uses
//     a changed edge, so it passes through some p ∈ P; by the cluster
//     prefix property (every vertex on a shortest path from w to a
//     cluster member is itself in the cluster), p ∈ C_new(w), hence
//     w ∈ B_new(p).
//   - d(x, w) decreased and x ∉ C_new(w) but x ∈ C_old(w): membership is
//     d(x, w) < d(x, A_{l+1}); losing it while d(x, w) shrinks forces
//     d(x, A_{l+1}) to shrink too, so x ∈ D and w ∈ B_old(x).
//
// Weight increases can invalidate a kept cluster with no witness in any
// of these sets, so callers either verify the full result afterwards
// (TZ: verifyHierarchyExact makes the repair sound under arbitrary
// changes) or certify the batch decrease-only up front and pass strict
// mode (CDG/graceful, whose net-restricted labels admit no complete
// post-hoc check).

// hierarchyRepair is the outcome of repairHierarchy: repaired labels for
// every artifact node (nil where old was nil), the fresh per-level pivot
// distances on the new graph, and the number of clusters regrown.
type hierarchyRepair struct {
	labels    []*sketch.TZLabel
	pivotDist [][]graph.Dist
	regrown   int
}

// deriveTopLevel recovers a hierarchy member's top level from its own
// label: the largest i whose pivot is the node itself at distance zero.
// Sound under strictly positive weights (no other node can sit at
// distance zero), and exact for labels produced by Build, whose pivot
// chain always prefers (0, self) at levels up to the top level. Returns
// -1 if the label encodes no level.
func deriveTopLevel(l *sketch.TZLabel) int {
	for i := len(l.Pivots) - 1; i >= 0; i-- {
		if l.Pivots[i].Node == l.Owner && l.Pivots[i].Dist == 0 {
			return i
		}
	}
	return -1
}

// repairHierarchy repairs the labels of a Thorup–Zwick hierarchy after
// the weight changes whose endpoint pairs are given. levels[u] is u's
// top level or -1 for non-members; old[u] is u's previous label or nil
// for nodes that carry none (net hierarchies keep labels only at net
// members). Labels whose bunch and pivots are unchanged are shared
// pointer-identically. strict additionally rejects (with ErrUnsound) any
// artifact whose distance to a hierarchy level increased — the callers
// that cannot verify the final result use it to enforce their
// decrease-only contract.
func repairHierarchy(g *graph.Graph, k int, levels []int, old []*sketch.TZLabel, pairs [][2]int, strict bool) (*hierarchyRepair, error) {
	n := g.N()

	// Fresh d(·, A_i) on the new graph, one multi-source Dijkstra per
	// level — these are both the D-detector and the regrowth thresholds.
	hr := &hierarchyRepair{pivotDist: make([][]graph.Dist, k+1)}
	infRow := make([]graph.Dist, n)
	for u := range infRow {
		infRow[u] = graph.Inf
	}
	hr.pivotDist[k] = infRow
	for i := 0; i < k; i++ {
		var ai []int
		for u := 0; u < n; u++ {
			if levels[u] >= i {
				ai = append(ai, u)
			}
		}
		if len(ai) == 0 {
			hr.pivotDist[i] = infRow
			continue
		}
		dist, _ := graph.MultiSourceDijkstra(g, ai)
		hr.pivotDist[i] = dist
	}

	// Validate artifact bunches and detect D (changed pivot distances).
	suspect := make([]bool, n)
	dart := make([]bool, n)
	for x, lab := range old {
		if lab == nil {
			continue
		}
		for _, it := range lab.Bunch {
			if it.Node < 0 || it.Node >= n || it.Level < 0 || it.Level >= k || levels[it.Node] != it.Level {
				return nil, fmt.Errorf("core: node %d bunch entry (%d, level %d) does not match the derived hierarchy; repair requires labels produced by Build", x, it.Node, it.Level)
			}
		}
		for i := 0; i < k; i++ {
			stored, fresh := lab.Pivots[i].Dist, hr.pivotDist[i][x]
			if stored == fresh {
				continue
			}
			if strict && fresh > stored {
				return nil, fmt.Errorf("core: node %d's distance to hierarchy level %d increased (%d → %d) under a decrease-only batch; the graph does not match the certified changes: %w", x, i, stored, fresh, ErrUnsound)
			}
			dart[x] = true
		}
		if dart[x] {
			if levels[x] >= 0 {
				suspect[x] = true
			}
			for _, it := range lab.Bunch {
				suspect[it.Node] = true
			}
		}
	}

	// Endpoint contributions: members of P, plus B_new(p) per endpoint
	// (one full Dijkstra each; endpoints deduped and sorted for
	// deterministic traversal order).
	epSet := make(map[int]bool, 2*len(pairs))
	for _, p := range pairs {
		epSet[p[0]] = true
		epSet[p[1]] = true
	}
	endpoints := make([]int, 0, len(epSet))
	for p := range epSet {
		endpoints = append(endpoints, p)
	}
	sort.Ints(endpoints)
	for _, p := range endpoints {
		if levels[p] >= 0 {
			suspect[p] = true
		}
		sp := graph.Dijkstra(g, p)
		for w := 0; w < n; w++ {
			if levels[w] < 0 || sp.Dist[w] == graph.Inf {
				continue
			}
			if sp.Dist[w] < hr.pivotDist[levels[w]+1][p] {
				suspect[w] = true
			}
		}
	}

	// Regrow every suspect cluster on the new graph. Suspects are walked
	// in ascending ID order, so each artifact's contributions arrive
	// sorted by member ID and splice with a linear merge.
	contrib := make([][]sketch.BunchItem, n)
	for w := 0; w < n; w++ {
		if !suspect[w] {
			continue
		}
		l := levels[w]
		hr.regrown++
		tz.GrowCluster(g, w, hr.pivotDist[l+1], func(u int, d graph.Dist) {
			if u != w && old[u] != nil {
				contrib[u] = append(contrib[u], sketch.BunchItem{Node: w, Dist: d, Level: l})
			}
		})
	}

	// Splice: keep old entries for non-suspect members (their clusters
	// cannot have changed), replace the suspects' entries with the
	// regrown memberships, and share the label when nothing moved.
	hr.labels = make([]*sketch.TZLabel, n)
	for x, lab := range old {
		if lab == nil {
			continue
		}
		newB := spliceBunch(lab.Bunch, contrib[x], suspect)
		if !dart[x] && bunchesEqual(newB, lab.Bunch) {
			hr.labels[x] = lab
			continue
		}
		nl := sketch.NewTZLabel(x, k)
		nl.SetBunch(newB)
		nl.Pivots = tz.PivotChain(nl.Bunch, x, levels[x], k)
		hr.labels[x] = nl
	}
	return hr, nil
}

// spliceBunch merges the kept (non-suspect) entries of old with the
// regrown contributions. Both inputs are sorted ascending by node ID and
// their key sets are disjoint — kept entries name non-suspects, grown
// entries name suspects — so this is a plain two-pointer merge.
func spliceBunch(old, grown []sketch.BunchItem, suspect []bool) []sketch.BunchItem {
	out := make([]sketch.BunchItem, 0, len(old)+len(grown))
	i, j := 0, 0
	for i < len(old) || j < len(grown) {
		if i < len(old) && suspect[old[i].Node] {
			i++
			continue
		}
		if i >= len(old) && j >= len(grown) {
			break // only suspect entries remained
		}
		if i < len(old) && (j >= len(grown) || old[i].Node < grown[j].Node) {
			out = append(out, old[i])
			i++
		} else {
			out = append(out, grown[j])
			j++
		}
	}
	return out
}

func bunchesEqual(a, b []sketch.BunchItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
