package core

import (
	"testing"

	"distsketch/internal/graph"
)

// TestDetectionMatchesOmniscient: the in-band Section 3.3 protocol must
// produce exactly the labels the omniscient-sync run produces (same coin
// flips, same final Bellman–Ford fixed points).
func TestDetectionMatchesOmniscient(t *testing.T) {
	for _, f := range graph.AllFamilies() {
		for _, k := range []int{1, 2, 3} {
			g := graph.Make(f, 40, graph.UniformWeights(1, 8), 77)
			omn, err := BuildTZ(g, TZOptions{K: k, Seed: 7, Mode: SyncOmniscient})
			if err != nil {
				t.Fatalf("%s k=%d omniscient: %v", f, k, err)
			}
			det, err := BuildTZ(g, TZOptions{K: k, Seed: 7, Mode: SyncDetection})
			if err != nil {
				t.Fatalf("%s k=%d detection: %v", f, k, err)
			}
			labelsEqual(t, det.Labels, omn.Labels, string(f))
		}
	}
}

func TestDetectionEchoDiscipline(t *testing.T) {
	// Section 3.3: ECHOs are 1:1 with data messages ("any message sent
	// along an edge corresponds to exactly one ECHO sent back").
	g := graph.Make(graph.FamilyER, 64, graph.UniformWeights(1, 10), 5)
	det, err := BuildTZ(g, TZOptions{K: 3, Seed: 5, Mode: SyncDetection})
	if err != nil {
		t.Fatal(err)
	}
	if det.Cost.EchoMessages != det.Cost.DataMessages {
		t.Errorf("echoes %d != data %d", det.Cost.EchoMessages, det.Cost.DataMessages)
	}
	total := det.Cost.DataMessages + det.Cost.EchoMessages + det.Cost.ControlMessages
	if total != det.Cost.Total.Messages {
		t.Errorf("breakdown %d != engine total %d", total, det.Cost.Total.Messages)
	}
}

func TestDetectionOverheadModest(t *testing.T) {
	// The paper: detection at most doubles messages (data+echo), adds
	// O(n) COMPLETEs + O(|E|) setup messages, and O(D) extra rounds per
	// phase. Verify against the omniscient baseline.
	g := graph.Make(graph.FamilyGeometric, 96, nil, 9)
	omn, err := BuildTZ(g, TZOptions{K: 3, Seed: 9, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	det, err := BuildTZ(g, TZOptions{K: 3, Seed: 9, Mode: SyncDetection})
	if err != nil {
		t.Fatal(err)
	}
	// Data traffic reaches the same fixed point; interleaving with echo
	// traffic can only delay sends, which lets more queued updates
	// collapse, so detection sends at most marginally more data messages
	// (and typically slightly fewer).
	if det.Cost.DataMessages > omn.Cost.DataMessages*11/10 {
		t.Errorf("data messages: det %d > 1.1x omniscient %d", det.Cost.DataMessages, omn.Cost.DataMessages)
	}
	d := graph.HopDiameter(g)
	maxControl := int64(3*g.N()) + int64(4*g.M()) + int64(3*g.N()) // START/COMPLETE/FINISH + BFS
	if det.Cost.ControlMessages > maxControl {
		t.Errorf("control messages %d > budget %d", det.Cost.ControlMessages, maxControl)
	}
	// Rounds: setup + per-phase detection adds O(D) per phase plus echo
	// queue interleaving; allow a 4x + setup + k·4D envelope.
	budget := 4*omn.Cost.Total.Rounds + det.Cost.SetupRounds + 3*4*d + 16
	if det.Cost.Total.Rounds > budget {
		t.Errorf("detection rounds %d > budget %d (omniscient %d, D=%d)",
			det.Cost.Total.Rounds, budget, omn.Cost.Total.Rounds, d)
	}
}

func TestDetectionTinyNetworks(t *testing.T) {
	// n=2 and a path: exercise leaf/root edge cases of the tree protocol.
	for _, n := range []int{2, 3, 5} {
		g := graph.Path(n, graph.UnitWeights(), 0)
		det, err := BuildTZ(g, TZOptions{K: 2, Seed: 1, Mode: SyncDetection})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		omn, err := BuildTZ(g, TZOptions{K: 2, Seed: 1, Mode: SyncOmniscient})
		if err != nil {
			t.Fatal(err)
		}
		labelsEqual(t, det.Labels, omn.Labels, "tiny path")
	}
}

func TestDetectionPerPhaseRoundsPositive(t *testing.T) {
	g := graph.Make(graph.FamilyGrid, 49, graph.UnitWeights(), 3)
	det, err := BuildTZ(g, TZOptions{K: 3, Seed: 3, Mode: SyncDetection})
	if err != nil {
		t.Fatal(err)
	}
	if det.Cost.SetupRounds <= 0 {
		t.Errorf("setup rounds = %d", det.Cost.SetupRounds)
	}
	var sum int
	for i, ps := range det.Cost.PerPhase {
		if ps.Rounds < 0 {
			t.Errorf("phase %d rounds = %d", i, ps.Rounds)
		}
		sum += ps.Rounds
	}
	if sum+det.Cost.SetupRounds > det.Cost.Total.Rounds+1 {
		t.Errorf("phase rounds %d + setup %d exceed total %d", sum, det.Cost.SetupRounds, det.Cost.Total.Rounds)
	}
}
