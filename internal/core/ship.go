package core

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/sketch"
)

// shipNode streams each net node's Thorup–Zwick label down its Voronoi
// cell tree, one (pivot or bunch entry) chunk per edge per round. This is
// the step that turns "u' knows L(u')" into the paper's sketch content
// "u stores L(u') for its nearest net node u'" (Section 4).
//
// Pipelining: a net node enqueues its whole label at once; interior nodes
// forward each chunk to their children as it arrives. Total rounds are
// O(labelWords + cell depth) and total messages are (cell tree edges) ×
// chunks, both within the Lemma 4.5 budget.
const (
	chunkPivot byte = 0
	chunkBunch byte = 1
)

type shipNode struct {
	id       int
	k        int
	owner    int // net node whose label this node will hold (u'; self if net)
	isNet    bool
	children []int // cell-tree children (neighbor indices)

	label    *sketch.TZLabel // the reconstructed (or own) label
	expected int             // total chunks, from labelEndMsg; -1 unknown
	received int
	out      *outQueues
}

// labelChunks serializes a TZ label into shipping chunks.
func labelChunks(l *sketch.TZLabel) []labelChunkMsg {
	chunks := make([]labelChunkMsg, 0, len(l.Pivots)+len(l.Bunch))
	seq := 0
	for i, p := range l.Pivots {
		chunks = append(chunks, labelChunkMsg{Seq: seq, Kind: chunkPivot, Node: p.Node, Dist: p.Dist, Level: i})
		seq++
	}
	for _, it := range l.Bunch {
		chunks = append(chunks, labelChunkMsg{Seq: seq, Kind: chunkBunch, Node: it.Node, Dist: it.Dist, Level: it.Level})
		seq++
	}
	return chunks
}

func (s *shipNode) applyChunk(m labelChunkMsg) {
	switch m.Kind {
	case chunkPivot:
		s.label.Pivots[m.Level] = sketch.Pivot{Node: m.Node, Dist: m.Dist}
	case chunkBunch:
		// Chunks travel down the cell tree in emission order — ascending
		// node ID — so Set stays on its O(1) append fast path while still
		// tolerating any order.
		s.label.Set(m.Node, m.Dist, m.Level)
	default:
		panic(fmt.Sprintf("core: bad chunk kind %d", m.Kind))
	}
}

func (s *shipNode) Init(ctx *congest.Context) {
	s.out = newOutQueues(ctx.Degree())
	if s.isNet {
		// Own label already present; stream it to the cell children.
		chunks := labelChunks(s.label)
		for _, c := range s.children {
			for _, m := range chunks {
				s.out.pushMsg(c, m)
			}
			s.out.pushMsg(c, labelEndMsg{Total: len(chunks)})
		}
		s.expected = len(chunks)
		s.received = len(chunks)
	} else {
		s.label = sketch.NewTZLabel(s.owner, s.k)
		s.expected = -1
	}
	s.drainAndWake(ctx)
}

func (s *shipNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		switch m := in.Payload.(type) {
		case labelChunkMsg:
			s.applyChunk(m)
			s.received++
			for _, c := range s.children {
				s.out.pushMsg(c, m)
			}
		case labelEndMsg:
			s.expected = m.Total
			for _, c := range s.children {
				s.out.pushMsg(c, labelEndMsg{Total: m.Total})
			}
		default:
			panic(fmt.Sprintf("core: ship node %d got %T", s.id, in.Payload))
		}
	}
	s.drainAndWake(ctx)
}

func (s *shipNode) drainAndWake(ctx *congest.Context) {
	s.out.drain(func(edge int, e qEntry) { ctx.Send(edge, e.msg) })
	if s.out.pending() {
		ctx.WakeNextRound()
	}
}

func (s *shipNode) complete() bool {
	return s.expected >= 0 && s.received == s.expected
}
