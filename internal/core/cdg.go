package core

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
	"distsketch/internal/tz"
)

// Distributed constructions of the Section 4 slack sketches. These run
// under omniscient step synchronization: the runner starts each stage
// (density-net coin flips, super-node Bellman–Ford, net Thorup–Zwick,
// label shipping) when the previous one has quiesced, which corresponds
// to the paper's "every node knows S" assumption; Section 3.3-style
// detection could synchronize the stages in-band at the usual ≤2×
// overhead, which we measure separately for the TZ phases (E6).

// SlackOptions configures the landmark, CDG and graceful constructions.
type SlackOptions struct {
	// Eps is the slack parameter ε ∈ (0, 1].
	Eps float64
	// K is the hierarchy depth for CDG sketches (stretch 8K-1). Ignored
	// by BuildLandmark.
	K int
	// Seed drives all coins.
	Seed uint64
	// Instance selects the coin-stream salts (0 for standalone sketches;
	// the graceful construction uses 1..⌈log n⌉).
	Instance int
	// Congest tunes the simulator.
	Congest congest.Config
	// Progress, when non-nil, is invoked after every simulated round with
	// the name of the construction stage being executed and the
	// engine-local round number. It overrides Congest.OnRound.
	Progress func(phase string, round int)
}

// LandmarkResult is the outcome of the distributed Theorem 4.3
// construction.
type LandmarkResult struct {
	Labels []*sketch.LandmarkLabel
	Net    []int
	Cost   CostBreakdown
}

// Query estimates d(u,v) via the best common landmark (Theorem 4.3).
func (r *LandmarkResult) Query(u, v int) graph.Dist {
	return sketch.QueryLandmark(r.Labels[u], r.Labels[v])
}

// MaxLabelWords returns the largest landmark label in words.
func (r *LandmarkResult) MaxLabelWords() int {
	m := 0
	for _, l := range r.Labels {
		if s := l.SizeWords(); s > m {
			m = s
		}
	}
	return m
}

// BuildLandmark runs the distributed Theorem 4.3 construction: sample an
// ε-density net by local coin flips (Lemma 4.2: constant time), then run
// the |N|-source Bellman–Ford so every node learns its distance to every
// net node. This is exactly the k=1 subset-hierarchy Thorup–Zwick run
// (threshold ∞, sources = N), so it reuses Algorithm 2's machinery.
func BuildLandmark(g *graph.Graph, opt SlackOptions) (*LandmarkResult, error) {
	n := g.N()
	if opt.Eps <= 0 || opt.Eps > 1 {
		return nil, fmt.Errorf("core: eps must be in (0,1], got %g", opt.Eps)
	}
	netSalt, _ := tz.NetSalts(opt.Instance)
	levels := make([]int, n)
	for u := 0; u < n; u++ {
		levels[u] = -1
		if sketch.InDensityNet(opt.Seed, netSalt, u, n, opt.Eps) {
			levels[u] = 0
		}
	}
	var net []int
	for u, l := range levels {
		if l == 0 {
			net = append(net, u)
		}
	}
	if len(net) == 0 {
		return nil, fmt.Errorf("core: empty density net (n=%d eps=%g seed=%d)", n, opt.Eps, opt.Seed)
	}
	var prog func(string, int)
	if opt.Progress != nil {
		p := opt.Progress
		// The inner k=1 run's phase name is always "phase 0"; report the
		// construction's own name instead.
		prog = func(_ string, r int) { p("landmark", r) }
	}
	res, err := BuildTZ(g, TZOptions{
		K: 1, Seed: opt.Seed, Mode: SyncOmniscient, Levels: levels, Congest: opt.Congest,
		Progress: prog,
	})
	if err != nil {
		return nil, err
	}
	out := &LandmarkResult{Net: net, Cost: res.Cost}
	out.Labels = make([]*sketch.LandmarkLabel, n)
	for u := 0; u < n; u++ {
		// The harvested bunch is already canonical (sorted ascending,
		// unique), so the landmark entries come out sorted by a single
		// merge pass: copy the bunch, splicing the net node's own 0-entry
		// into its ID position (and dropping any stale self entry).
		bunch := res.Labels[u].Bunch
		entries := make([]sketch.Entry, 0, len(bunch)+1)
		selfDone := levels[u] != 0
		for _, it := range bunch {
			if !selfDone && u <= it.Node {
				entries = append(entries, sketch.Entry{Net: u, D: 0})
				selfDone = true
			}
			if it.Node == u {
				continue
			}
			entries = append(entries, sketch.Entry{Net: it.Node, D: it.Dist})
		}
		if !selfDone {
			entries = append(entries, sketch.Entry{Net: u, D: 0})
		}
		out.Labels[u] = sketch.NewLandmarkLabelFromEntries(u, entries)
	}
	return out, nil
}

// CDGResult is the outcome of the distributed Theorem 4.6 construction.
type CDGResult struct {
	Labels []*sketch.CDGLabel
	Net    []int
	Cost   CostBreakdown
	// Stage costs (rounds/messages per pipeline stage).
	WaveCost congest.Stats // super-node Bellman–Ford
	TZCost   congest.Stats // Thorup–Zwick over the net
	ShipCost congest.Stats // label shipping down the Voronoi forest
}

// Query estimates d(u,v) through the two nearest net nodes (Lemma 4.4).
func (r *CDGResult) Query(u, v int) graph.Dist {
	return sketch.QueryCDG(r.Labels[u], r.Labels[v])
}

// MaxLabelWords returns the largest CDG label in words.
func (r *CDGResult) MaxLabelWords() int {
	m := 0
	for _, l := range r.Labels {
		if s := l.SizeWords(); s > m {
			m = s
		}
	}
	return m
}

// BuildCDG runs the distributed (ε,k)-CDG construction of Lemma 4.5:
//
//  1. Every node joins the density net with probability 5·ln n/(εn)
//     (local coin; Lemma 4.2).
//  2. Super-node Bellman–Ford from the whole net: every node learns its
//     nearest net node u', d(u,u'), and its Voronoi-forest parent.
//  3. Thorup–Zwick (Algorithm 2) over the net hierarchy, sampled with
//     probability ((10/ε)·ln n)^{-1/k}: every net node learns its label.
//  4. Each net node ships its label down its Voronoi cell, giving every
//     node the label of its nearest net node.
func BuildCDG(g *graph.Graph, opt SlackOptions) (*CDGResult, error) {
	n := g.N()
	if opt.Eps <= 0 || opt.Eps > 1 {
		return nil, fmt.Errorf("core: eps must be in (0,1], got %g", opt.Eps)
	}
	if opt.K < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", opt.K)
	}
	netSalt, tzSalt := tz.NetSalts(opt.Instance)

	// Stage 1: local coins.
	isNet := make([]bool, n)
	var net []int
	for u := 0; u < n; u++ {
		if sketch.InDensityNet(opt.Seed, netSalt, u, n, opt.Eps) {
			isNet[u] = true
			net = append(net, u)
		}
	}
	if len(net) == 0 {
		return nil, fmt.Errorf("core: empty density net (n=%d eps=%g seed=%d)", n, opt.Eps, opt.Seed)
	}

	cfg := opt.Congest
	cfg.Seed = opt.Seed
	// stageCfg tags each stage's engine with a named progress hook.
	stageCfg := func(stage string) congest.Config {
		c := cfg
		if opt.Progress != nil {
			p := opt.Progress
			c.OnRound = func(r int) { p(stage, r) }
		}
		return c
	}

	// Stage 2: super-node wave.
	waves := make([]*waveNode, n)
	nodes := make([]congest.Node, n)
	for u := 0; u < n; u++ {
		waves[u] = newWaveNode(u, isNet[u])
		nodes[u] = waves[u]
	}
	eng := congest.NewEngine(g, nodes, stageCfg("cdg wave"))
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		eng.Close()
		return nil, fmt.Errorf("core: super-node wave: %w", err)
	}
	waveCost := eng.Stats()
	// Close each stage's engine as soon as it is harvested: a deferred
	// close would pin all three engines (and their worker pools) until
	// the whole build returns.
	eng.Close()

	// Stage 2b: child discovery (one round, ≤ n messages).
	adopts := make([]*adoptNode, n)
	for u := 0; u < n; u++ {
		adopts[u] = &adoptNode{parentIdx: waves[u].parentIdx}
		nodes[u] = adopts[u]
	}
	eng = congest.NewEngine(g, nodes, stageCfg("cdg adopt"))
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		eng.Close()
		return nil, fmt.Errorf("core: adopt round: %w", err)
	}
	waveCost = waveCost.Add(eng.Stats())
	eng.Close()

	// Stage 3: Thorup–Zwick over the net.
	levels := make([]int, n)
	q := sketch.NetHierarchyProb(n, opt.Eps, opt.K)
	for u := 0; u < n; u++ {
		levels[u] = -1
		if isNet[u] {
			levels[u] = sketch.TopLevelFromRNG(sketch.NodeRNG(opt.Seed, tzSalt, u), opt.K, q)
		}
	}
	var tzProg func(string, int)
	if opt.Progress != nil {
		p := opt.Progress
		tzProg = func(phase string, r int) { p("cdg net-tz "+phase, r) }
	}
	tzRes, err := BuildTZ(g, TZOptions{
		K: opt.K, Seed: opt.Seed, Mode: SyncOmniscient, Levels: levels, Congest: cfg,
		Progress: tzProg,
	})
	if err != nil {
		return nil, fmt.Errorf("core: net Thorup–Zwick: %w", err)
	}

	// Stage 4: ship each net node's label down its cell tree. Chunks are
	// 5 words; raise the per-message budget accordingly (still O(log n)
	// bits).
	shipCfg := stageCfg("cdg ship")
	if shipCfg.MaxWords < 5 {
		shipCfg.MaxWords = 5
	}
	ships := make([]*shipNode, n)
	for u := 0; u < n; u++ {
		s := &shipNode{
			id:       u,
			k:        opt.K,
			owner:    waves[u].bestSrc,
			isNet:    isNet[u],
			children: adopts[u].children,
		}
		if isNet[u] {
			s.label = tzRes.Labels[u]
		}
		ships[u] = s
		nodes[u] = ships[u]
	}
	eng = congest.NewEngine(g, nodes, shipCfg)
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		eng.Close()
		return nil, fmt.Errorf("core: label shipping: %w", err)
	}
	shipCost := eng.Stats()
	eng.Close()
	for u := 0; u < n; u++ {
		if !ships[u].complete() {
			return nil, fmt.Errorf("core: node %d did not receive its net label", u)
		}
	}

	res := &CDGResult{
		Net:      net,
		WaveCost: waveCost,
		TZCost:   tzRes.Cost.Total,
		ShipCost: shipCost,
	}
	res.Cost.Total = waveCost.Add(tzRes.Cost.Total).Add(shipCost)
	res.Cost.PerPhase = tzRes.Cost.PerPhase
	res.Labels = make([]*sketch.CDGLabel, n)
	for u := 0; u < n; u++ {
		res.Labels[u] = &sketch.CDGLabel{
			Owner:    u,
			Eps:      opt.Eps,
			NetNode:  waves[u].bestSrc,
			NetDist:  waves[u].best,
			NetLabel: ships[u].label,
		}
	}
	return res, nil
}

// GracefulResult is the outcome of the distributed Theorem 4.8
// construction.
type GracefulResult struct {
	Labels []*sketch.GracefulLabel
	Cost   CostBreakdown
	// PerLevel[i] is the cost of the (ε=2^{-(i+1)}) CDG instance.
	PerLevel []congest.Stats
}

// Query returns the minimum estimate over the slack levels (Theorem 4.8).
func (r *GracefulResult) Query(u, v int) graph.Dist {
	return sketch.QueryGraceful(r.Labels[u], r.Labels[v])
}

// MaxLabelWords returns the largest graceful label in words.
func (r *GracefulResult) MaxLabelWords() int {
	m := 0
	for _, l := range r.Labels {
		if s := l.SizeWords(); s > m {
			m = s
		}
	}
	return m
}

// BuildGraceful runs the distributed gracefully degrading construction:
// the (ε_i, k_i)-CDG instances for ε_i = 2^{-i}, k_i = i, i = 1..⌈log n⌉,
// executed back to back (Theorem 4.8). Of opt only Seed, Congest and
// Progress are used; Eps, K and Instance are fixed per level by the
// construction itself.
func BuildGraceful(g *graph.Graph, opt SlackOptions) (*GracefulResult, error) {
	n := g.N()
	L := sketch.GracefulLevels(n)
	res := &GracefulResult{PerLevel: make([]congest.Stats, L)}
	res.Labels = make([]*sketch.GracefulLabel, n)
	for u := 0; u < n; u++ {
		res.Labels[u] = &sketch.GracefulLabel{Owner: u}
	}
	for i := 1; i <= L; i++ {
		eps := 1.0 / float64(int64(1)<<uint(i))
		var prog func(string, int)
		if opt.Progress != nil {
			p := opt.Progress
			level := i
			prog = func(stage string, r int) { p(fmt.Sprintf("level %d %s", level, stage), r) }
		}
		cdg, err := BuildCDG(g, SlackOptions{
			Eps: eps, K: sketch.GracefulK(i), Seed: opt.Seed, Instance: i, Congest: opt.Congest,
			Progress: prog,
		})
		if err != nil {
			return nil, fmt.Errorf("core: graceful level %d: %w", i, err)
		}
		res.PerLevel[i-1] = cdg.Cost.Total
		res.Cost.Total = res.Cost.Total.Add(cdg.Cost.Total)
		for u := 0; u < n; u++ {
			res.Labels[u].Levels = append(res.Labels[u].Levels, cdg.Labels[u])
		}
	}
	return res, nil
}
