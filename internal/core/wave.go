package core

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
)

// waveNode implements the "super node" Bellman–Ford of Lemma 4.5: all
// density-net members act as a single virtual source, and at quiescence
// every node knows its distance to the nearest net node, that node's
// identity, and the neighbor on a shortest path toward it (its parent in
// the net's Voronoi forest, used later for label shipping).
//
// Improvement is lexicographic in (distance, source ID), which makes the
// fixed point identical to the centralized MultiSourceDijkstra tie-broken
// the same way: if (d*, s*) is optimal for u, the next hop x on a
// shortest u→s* path has optimum exactly (d*-w, s*), so the optimal wave
// always propagates.
type waveNode struct {
	id    int
	isNet bool

	best      graph.Dist
	bestSrc   int
	parentIdx int // neighbor index toward bestSrc; -1 at a net node

	out    *outQueues
	queued bool
}

func newWaveNode(id int, isNet bool) *waveNode {
	return &waveNode{id: id, isNet: isNet, best: graph.Inf, bestSrc: -1, parentIdx: -1}
}

func (w *waveNode) Init(ctx *congest.Context) {
	w.out = newOutQueues(ctx.Degree())
	if w.isNet {
		w.best = 0
		w.bestSrc = w.id
		w.enqueueAll()
	}
	w.drainAndWake(ctx)
}

func (w *waveNode) enqueueAll() {
	// A single logical "wave" source per node: reuse slot 0 of the
	// deferred-value queue machinery.
	w.out.pushSrcAll(0)
}

func (w *waveNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		m, ok := in.Payload.(netWaveMsg)
		if !ok {
			panic(fmt.Sprintf("core: wave node %d got %T", w.id, in.Payload))
		}
		from := ctx.NeighborIndex(in.From)
		nd := graph.AddDist(m.Dist, ctx.WeightTo(from))
		if nd < w.best || (nd == w.best && m.Src < w.bestSrc) {
			w.best = nd
			w.bestSrc = m.Src
			w.parentIdx = from
			w.enqueueAll()
		}
	}
	w.drainAndWake(ctx)
}

func (w *waveNode) drainAndWake(ctx *congest.Context) {
	w.out.drain(func(edge int, e qEntry) {
		ctx.Send(edge, netWaveMsg{Dist: w.best, Src: w.bestSrc})
	})
	if w.out.pending() {
		ctx.WakeNextRound()
	}
}

// adoptMsg tells a neighbor it is this node's Voronoi-forest parent.
type adoptMsg struct{}

func (adoptMsg) Words() int { return 1 }

// adoptNode runs the single-round child-discovery step after the wave:
// every non-net node tells its parent "you are my parent", so every node
// learns its cell children.
type adoptNode struct {
	parentIdx int // -1 for net nodes
	children  []int
}

func (a *adoptNode) Init(ctx *congest.Context) {
	if a.parentIdx >= 0 {
		ctx.Send(a.parentIdx, adoptMsg{})
	}
}

func (a *adoptNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		if _, ok := in.Payload.(adoptMsg); !ok {
			panic(fmt.Sprintf("core: adopt node got %T", in.Payload))
		}
		a.children = append(a.children, ctx.NeighborIndex(in.From))
	}
}
