package core

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// detectNode runs the distributed Thorup–Zwick construction with the full
// in-band termination detection of Section 3.3: a BFS tree rooted at the
// leader, a per-message ECHO discipline that tells each cluster source
// when its announcement has stopped propagating, and a COMPLETE/START
// convergecast-broadcast that lets the leader drive phase boundaries.
//
// Leader election: the paper elects an arbitrary leader in O(D) rounds.
// With the dense ID space 0..n-1 and n known to all nodes (Section 2.2),
// the maximum ID n-1 is a leader with zero communication, so we root the
// BFS tree there; the tree is still built with the echo-style protocol
// (ACCEPT/REJECT replies plus DONE convergecast), costing O(D) rounds and
// O(|E|) messages as in the paper.
//
// Echo discipline (one per data message, as in the paper, but aggregated
// per source): for each source v a node tracks how many announcements it
// transmitted and how many ECHOs returned. It owes its "parent" (the
// neighbor whose message set the current best distance) an ECHO, payable
// when its own counters balance — i.e. when everything it forwarded has
// been acknowledged transitively. A message superseded by a better one is
// echoed immediately (Section 3.3's third case). A non-improving message
// is echoed immediately (the first two cases).
type detectNode struct {
	id       int
	k        int
	topLevel int

	out *outQueues

	// BFS tree state.
	isRoot          bool
	parentIdx       int // neighbor index of tree parent; -1 if root/unset
	hasParent       bool
	children        []int // neighbor indices of tree children
	repliesExpected int
	repliesRecv     int
	doneChildren    int
	bfsDoneSent     bool
	treeReady       bool

	// Phase state.
	phase            int // current phase; k = in setup; -1 = finished
	started          bool
	thresh           graph.Dist
	srcs             map[int]*srcState
	selfComplete     bool
	completeChildren int
	completeSent     bool
	buffered         map[int][]bufferedData

	// Results. Bunch items collect in the items scratch slice (arbitrary
	// per-phase map order); the harvest installs them with SetBunch.
	label     *sketch.TZLabel
	items     []sketch.BunchItem
	chainBest pivotCand

	// Accounting (summed by the runner after the run).
	dataSent    []int64 // per phase
	echoSent    []int64 // per phase
	controlSent int64
	// Root-only: global round at which each phase began / the run ended.
	phaseStartRound []int
	finishRound     int
	setupRounds     int
}

type bufferedData struct {
	from int
	m    dataMsg
}

// srcState tracks one Bellman–Ford source during a phase.
type srcState struct {
	best         graph.Dist
	parentNbr    int        // neighbor index the best came from; -1 = self
	parentVal    graph.Dist // distance carried by that message (echo copy)
	owes         bool       // an ECHO is owed to parentNbr
	sent, echoed int64      // announcements transmitted / ECHOs returned
	pendingEdges int        // edges where this source is queued
}

func newDetectNode(id, n, k, topLevel int) *detectNode {
	return &detectNode{
		id:              id,
		k:               k,
		topLevel:        topLevel,
		isRoot:          id == n-1,
		parentIdx:       -1,
		phase:           k, // "in setup"
		thresh:          graph.Inf,
		buffered:        make(map[int][]bufferedData),
		label:           sketch.NewTZLabel(id, k),
		chainBest:       pivotCand{dist: graph.Inf, node: -1},
		dataSent:        make([]int64, k),
		echoSent:        make([]int64, k),
		phaseStartRound: make([]int, k),
	}
}

func (nd *detectNode) Init(ctx *congest.Context) {
	nd.out = newOutQueues(ctx.Degree())
	if nd.isRoot {
		nd.repliesExpected = ctx.Degree()
		for i := 0; i < ctx.Degree(); i++ {
			nd.out.pushMsg(i, bfsMsg{})
		}
		nd.checkBFSDone(ctx) // handles the n=1 network
	}
	nd.drainAndWake(ctx)
}

func (nd *detectNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		from := ctx.NeighborIndex(in.From)
		switch m := in.Payload.(type) {
		case bfsMsg:
			nd.onBFS(ctx, from)
		case bfsReplyMsg:
			nd.repliesRecv++
			if m.Accept {
				nd.children = append(nd.children, from)
			}
			nd.checkBFSDone(ctx)
		case bfsDoneMsg:
			nd.doneChildren++
			nd.checkBFSDone(ctx)
		case startMsg:
			nd.onStart(ctx, m.Phase)
		case completeMsg:
			if m.Phase != nd.phase {
				panic(fmt.Sprintf("core: node %d: COMPLETE(%d) during phase %d", nd.id, m.Phase, nd.phase))
			}
			nd.completeChildren++
			nd.checkPhaseComplete(ctx)
		case finishMsg:
			nd.onFinish(ctx)
		case dataMsg:
			if m.Phase == nd.phase && nd.started {
				nd.onData(ctx, from, m)
			} else if m.Phase == nd.phase-1 || (nd.phase == nd.k && m.Phase == nd.k-1) {
				// Neighbor is one phase ahead of us (its START arrived
				// first); buffer until our START comes down the tree.
				nd.buffered[m.Phase] = append(nd.buffered[m.Phase], bufferedData{from: from, m: m})
			} else {
				panic(fmt.Sprintf("core: node %d in phase %d got data for phase %d", nd.id, nd.phase, m.Phase))
			}
		case echoMsg:
			if m.Phase != nd.phase || !nd.started {
				panic(fmt.Sprintf("core: node %d in phase %d got echo for phase %d", nd.id, nd.phase, m.Phase))
			}
			nd.onEcho(ctx, m)
		default:
			panic(fmt.Sprintf("core: node %d: unexpected message %T", nd.id, in.Payload))
		}
	}
	nd.drainAndWake(ctx)
}

// --- BFS tree construction -------------------------------------------------

func (nd *detectNode) onBFS(ctx *congest.Context, from int) {
	if nd.isRoot || nd.hasParent {
		nd.out.pushMsg(from, bfsReplyMsg{Accept: false})
		return
	}
	nd.hasParent = true
	nd.parentIdx = from
	nd.out.pushMsg(from, bfsReplyMsg{Accept: true})
	nd.repliesExpected = ctx.Degree() - 1
	for i := 0; i < ctx.Degree(); i++ {
		if i != from {
			nd.out.pushMsg(i, bfsMsg{})
		}
	}
	nd.checkBFSDone(ctx)
}

func (nd *detectNode) checkBFSDone(ctx *congest.Context) {
	if nd.bfsDoneSent || nd.treeReady {
		return
	}
	if !nd.isRoot && !nd.hasParent {
		return
	}
	if nd.repliesRecv != nd.repliesExpected || nd.doneChildren != len(nd.children) {
		return
	}
	if nd.isRoot {
		nd.treeReady = true
		nd.setupRounds = ctx.Round()
		nd.beginPhaseBroadcast(ctx, nd.k-1)
		return
	}
	nd.bfsDoneSent = true
	nd.out.pushMsg(nd.parentIdx, bfsDoneMsg{})
}

// --- Phase control ----------------------------------------------------------

// beginPhaseBroadcast forwards START(i) to the tree children and starts
// phase i locally (used by the root, and by onStart for interior nodes).
func (nd *detectNode) beginPhaseBroadcast(ctx *congest.Context, i int) {
	for _, c := range nd.children {
		nd.out.pushMsg(c, startMsg{Phase: i})
	}
	if nd.isRoot {
		nd.phaseStartRound[i] = ctx.Round()
	}
	nd.beginPhase(ctx, i)
}

func (nd *detectNode) onStart(ctx *congest.Context, i int) {
	if i != nd.phase-1 && !(nd.phase == nd.k && i == nd.k-1) {
		panic(fmt.Sprintf("core: node %d in phase %d got START(%d)", nd.id, nd.phase, i))
	}
	if nd.phase < nd.k {
		nd.harvestPhase()
	}
	for _, c := range nd.children {
		nd.out.pushMsg(c, startMsg{Phase: i})
	}
	nd.beginPhase(ctx, i)
}

func (nd *detectNode) beginPhase(ctx *congest.Context, i int) {
	nd.phase = i
	nd.started = true
	nd.srcs = make(map[int]*srcState)
	nd.selfComplete = nd.topLevel != i
	nd.completeChildren = 0
	nd.completeSent = false
	if nd.topLevel == i {
		st := &srcState{best: 0, parentNbr: -1}
		nd.srcs[nd.id] = st
		st.pendingEdges = nd.out.pushSrcAll(nd.id)
		nd.checkSrcComplete(ctx, nd.id, st) // degree-0 networks
	}
	if buf := nd.buffered[i]; len(buf) > 0 {
		delete(nd.buffered, i)
		for _, b := range buf {
			nd.onData(ctx, b.from, b.m)
		}
	}
	nd.checkPhaseComplete(ctx)
}

// harvestPhase folds the finished phase into the label (bunch entries,
// pivot chain, next threshold) — identical bookkeeping to tzNode.
func (nd *detectNode) harvestPhase() {
	i := nd.phase
	cand := nd.chainBest
	for v, st := range nd.srcs {
		if v == nd.id {
			continue
		}
		nd.items = append(nd.items, sketch.BunchItem{Node: v, Dist: st.best, Level: i})
		if c := (pivotCand{dist: st.best, node: v}); lessCand(c, cand) {
			cand = c
		}
	}
	if nd.topLevel >= i {
		if c := (pivotCand{dist: 0, node: nd.id}); lessCand(c, cand) {
			cand = c
		}
	}
	nd.label.Pivots[i] = sketch.Pivot{Node: cand.node, Dist: cand.dist}
	nd.chainBest = cand
	nd.thresh = cand.dist
	nd.srcs = nil
	nd.started = false
}

func (nd *detectNode) checkPhaseComplete(ctx *congest.Context) {
	if !nd.started || nd.completeSent || !nd.selfComplete {
		return
	}
	if nd.completeChildren != len(nd.children) {
		return
	}
	nd.completeSent = true
	if !nd.isRoot {
		nd.out.pushMsg(nd.parentIdx, completeMsg{Phase: nd.phase})
		return
	}
	// Root: the phase is globally complete.
	if nd.phase > 0 {
		next := nd.phase - 1
		nd.harvestPhase()
		nd.beginPhaseBroadcast(ctx, next)
		return
	}
	nd.finishRound = ctx.Round()
	nd.onFinish(ctx)
}

func (nd *detectNode) onFinish(ctx *congest.Context) {
	if nd.started {
		nd.harvestPhase()
	}
	for _, c := range nd.children {
		nd.out.pushMsg(c, finishMsg{})
	}
	nd.phase = -1
}

// --- Bellman–Ford with echoes ------------------------------------------------

func (nd *detectNode) onData(ctx *congest.Context, from int, m dataMsg) {
	d := graph.AddDist(m.Dist, ctx.WeightTo(from))
	st := nd.srcs[m.Src]
	cur := graph.Inf
	if st != nil {
		cur = st.best
	}
	if d >= nd.thresh || d >= cur {
		// Not useful: echo immediately (cases 1-2 of Section 3.3).
		nd.out.pushMsg(from, echoMsg{Phase: nd.phase, Src: m.Src, Dist: m.Dist})
		return
	}
	if st == nil {
		st = &srcState{best: graph.Inf, parentNbr: -1}
		nd.srcs[m.Src] = st
	}
	if st.owes {
		// The previously accepted message is superseded: release its
		// echo now (case 3 of Section 3.3).
		nd.out.pushMsg(st.parentNbr, echoMsg{Phase: nd.phase, Src: m.Src, Dist: st.parentVal})
	}
	st.best = d
	st.parentNbr = from
	st.parentVal = m.Dist
	st.owes = true
	st.pendingEdges += nd.out.pushSrcAll(m.Src)
}

func (nd *detectNode) onEcho(ctx *congest.Context, m echoMsg) {
	st := nd.srcs[m.Src]
	if st == nil {
		panic(fmt.Sprintf("core: node %d: echo for unknown source %d", nd.id, m.Src))
	}
	st.echoed++
	nd.checkSrcComplete(ctx, m.Src, st)
}

// checkSrcComplete fires when everything this node transmitted for src has
// been acknowledged and nothing remains queued: the node's entire outgoing
// activity for src has ceased, so it releases the echo owed to its parent
// (or, if it is the source itself, marks its cluster complete).
func (nd *detectNode) checkSrcComplete(ctx *congest.Context, src int, st *srcState) {
	if st.pendingEdges != 0 || st.sent != st.echoed {
		return
	}
	if st.owes {
		nd.out.pushMsg(st.parentNbr, echoMsg{Phase: nd.phase, Src: src, Dist: st.parentVal})
		st.owes = false
	}
	if src == nd.id && !nd.selfComplete {
		nd.selfComplete = true
		nd.checkPhaseComplete(ctx)
	}
}

// --- Transmission -------------------------------------------------------------

func (nd *detectNode) drainAndWake(ctx *congest.Context) {
	nd.out.drain(func(edge int, e qEntry) {
		if e.msg == nil {
			st := nd.srcs[e.src]
			ctx.Send(edge, dataMsg{Phase: nd.phase, Src: e.src, Dist: st.best})
			st.sent++
			st.pendingEdges--
			nd.dataSent[nd.phase]++
			return
		}
		switch e.msg.(type) {
		case echoMsg:
			nd.echoSent[nd.phase]++
		default:
			nd.controlSent++
		}
		ctx.Send(edge, e.msg)
	})
	if nd.out.pending() {
		ctx.WakeNextRound()
	}
}
