package core

import (
	"errors"
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// Batched repair: the one code path behind SketchSet.UpdateEdges. All
// four sketch kinds flow through Repair, which dispatches on the label
// type, repairs the whole batch in one pass, verifies the result where a
// complete check exists, and shares unchanged labels pointer-identically
// with the input.
//
// Soundness is per kind:
//
//   - Landmark: the warm-start wave of UpdateLandmark plus the exact
//     Bellman–Ford fixed-point check of VerifyLandmarkExact. Arbitrary
//     weight changes are accepted; a batch whose result is not exact
//     (an effective increase) reports ErrUnsound.
//   - TZ: the suspect-cluster repair of repairHierarchy plus the exact
//     truncated-cluster fixed-point check of verifyHierarchyExact.
//     Arbitrary weight changes are accepted on the same terms.
//   - CDG and graceful: the same suspect-cluster repair, applied to the
//     Thorup–Zwick hierarchy that lives on the density net. These labels
//     cover only net members, so no complete post-hoc verification is
//     possible from the sketch set alone; soundness instead comes from
//     the decrease-only suspect theorem (see repair_tz.go), which
//     requires certifying the change direction — every EdgeChange must
//     carry its PrevWeight, and any increase reports ErrUnsound.
//
// Repair derives all structure (hierarchy levels, density-net
// membership, k) from the labels themselves rather than re-flipping
// coins: the coin streams are weight-independent, so a rebuild on the
// mutated graph samples the identical structure, and a repair that keeps
// the structure while recomputing exact distances reproduces the rebuild
// byte for byte. That derivation trusts labels produced by Build or a
// valid envelope; adversarially inconsistent labels are rejected with an
// error when detected, but the byte-identity guarantee only covers
// well-formed input.

// EdgeChange identifies one edge of the new topology whose weight
// changed. PrevWeight is the edge's weight before the change when the
// caller knows it (a serving layer holding the pre-change graph does),
// or 0 for unknown. Landmark and TZ repairs never consult it — their
// results are verified against the new graph directly — but CDG and
// graceful repairs require it to certify the batch was decrease-only.
type EdgeChange struct {
	U, V       int
	PrevWeight graph.Dist
}

// ErrUnsound reports that a batch repair cannot be certified to
// reproduce exact (rebuild-identical) labels — typically because an edge
// weight increased. The input labels are untouched; the caller must
// rebuild. The facade wraps this in distsketch.ErrRebuildRequired.
var ErrUnsound = errors.New("core: repair cannot be verified exact; rebuild required")

// RepairResult is the outcome of a successful batch repair.
type RepairResult struct {
	// Labels has one repaired label per node. Labels the repair did not
	// change are shared pointer-identically with the input.
	Labels []sketch.Label
	// Cost is the CONGEST message cost of the repair. Only the landmark
	// repair simulates messages (its warm-start wave); the hierarchy
	// repairs are centralized control-plane operations and report zero.
	Cost congest.Stats
	// Replaced and Shared count result labels that were rebuilt vs
	// pointer-shared with the input; they sum to len(Labels).
	Replaced, Shared int
	// ClustersRegrown counts the truncated-Dijkstra cluster regrowths the
	// hierarchy repairs performed (0 for landmark). It is the dominant
	// cost term a rebuild would pay once per hierarchy member.
	ClustersRegrown int
}

// Repair applies a batch of edge weight changes to a full label set in
// one clone-repair-verify step. g must be the new topology (same node
// set and edge set as the graph the labels were built on, with the
// changed weights). prev is read-only and never mutated; net is the
// density net (landmark labels only — derived from the labels for the
// other kinds). Changes naming the same undirected edge twice collapse
// to one. An error wrapping ErrUnsound means the labels cannot be
// repaired and a rebuild is required; any error leaves prev untouched.
func Repair(g *graph.Graph, prev []sketch.Label, net []int, edges []EdgeChange, cfg congest.Config) (*RepairResult, error) {
	n := g.N()
	if len(prev) != n || n == 0 {
		return nil, fmt.Errorf("core: %d labels for n=%d", len(prev), n)
	}
	// Both fixed-point verifications (and the support-chain argument
	// behind them) are unsound with zero-weight cycles, so non-positive
	// weights are refused before any repair work is paid.
	for _, e := range g.Edges() {
		if e.Weight <= 0 {
			return nil, fmt.Errorf("core: graph has non-positive edge (%d,%d); repair requires strictly positive weights", e.U, e.V)
		}
	}
	changes, err := normalizeChanges(g, n, edges)
	if err != nil {
		return nil, err
	}
	if len(changes) == 0 {
		return &RepairResult{Labels: append([]sketch.Label(nil), prev...), Shared: n}, nil
	}
	switch prev[0].(type) {
	case *sketch.LandmarkLabel:
		return repairLandmarkSet(g, prev, net, changes, cfg)
	case *sketch.TZLabel:
		return repairTZSet(g, prev, changes)
	case *sketch.CDGLabel:
		return repairCDGSet(g, prev, changes)
	case *sketch.GracefulLabel:
		return repairGracefulSet(g, prev, changes)
	default:
		return nil, fmt.Errorf("core: unsupported label type %T", prev[0])
	}
}

// normalizeChanges validates every change against the new topology and
// collapses duplicates of the same undirected edge (first PrevWeight
// wins), normalizing endpoints to U < V.
func normalizeChanges(g *graph.Graph, n int, edges []EdgeChange) ([]EdgeChange, error) {
	seen := make(map[[2]int]bool, len(edges))
	out := make([]EdgeChange, 0, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("core: edge (%d,%d) endpoint outside [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("core: self-loop (%d,%d) is not a repairable change", e.U, e.V)
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if _, ok := g.EdgeWeight(u, v); !ok {
			return nil, fmt.Errorf("core: edge (%d,%d) not in graph", e.U, e.V)
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		out = append(out, EdgeChange{U: u, V: v, PrevWeight: e.PrevWeight})
	}
	return out, nil
}

func errMixedLabels(u int, first, got sketch.Label) error {
	return fmt.Errorf("core: mixed label types: node %d is %T, node 0 is %T", u, got, first)
}

// repairLandmarkSet runs the batched warm-start wave and verifies the
// result is the exact new distances before returning it.
func repairLandmarkSet(g *graph.Graph, prev []sketch.Label, net []int, changes []EdgeChange, cfg congest.Config) (*RepairResult, error) {
	labels := make([]*sketch.LandmarkLabel, len(prev))
	for u, l := range prev {
		ll, ok := l.(*sketch.LandmarkLabel)
		if !ok {
			return nil, errMixedLabels(u, prev[0], l)
		}
		labels[u] = ll
	}
	upd, err := UpdateLandmark(g, &LandmarkResult{Labels: labels, Net: net}, changes, cfg)
	if err != nil {
		return nil, err
	}
	if verr := VerifyLandmarkExact(g, upd.Labels, net); verr != nil {
		return nil, fmt.Errorf("core: landmark repair did not converge to exact labels (%v); a weight likely increased, which warm-start repair cannot handle: %w", verr, ErrUnsound)
	}
	out := &RepairResult{Labels: make([]sketch.Label, len(prev)), Cost: upd.Cost.Total}
	for u := range labels {
		out.Labels[u] = upd.Labels[u]
		if upd.Labels[u] == labels[u] {
			out.Shared++
		} else {
			out.Replaced++
		}
	}
	return out, nil
}

// repairTZSet repairs full-graph Thorup–Zwick labels: derive the
// hierarchy from the labels, regrow every suspect cluster, then verify
// the whole result with the exact truncated-cluster fixed-point check —
// which makes the repair sound under arbitrary weight changes, increases
// included (an unrepairable batch fails verification).
func repairTZSet(g *graph.Graph, prev []sketch.Label, changes []EdgeChange) (*RepairResult, error) {
	n := g.N()
	old := make([]*sketch.TZLabel, n)
	for u, l := range prev {
		tl, ok := l.(*sketch.TZLabel)
		if !ok {
			return nil, errMixedLabels(u, prev[0], l)
		}
		old[u] = tl
	}
	k := old[0].K
	levels := make([]int, n)
	for u, l := range old {
		if l.K != k || len(l.Pivots) != k {
			return nil, fmt.Errorf("core: node %d label has k=%d (%d pivots), node 0 has k=%d", u, l.K, len(l.Pivots), k)
		}
		lv := deriveTopLevel(l)
		if lv < 0 {
			return nil, fmt.Errorf("core: node %d label does not encode its hierarchy level (no zero-distance self pivot); repair requires labels produced by Build", u)
		}
		levels[u] = lv
	}
	hr, err := repairHierarchy(g, k, levels, old, endpointPairs(changes), false)
	if err != nil {
		return nil, err
	}
	if verr := verifyHierarchyExact(g, levels, hr.labels, hr.pivotDist); verr != nil {
		return nil, fmt.Errorf("core: tz repair left inexact clusters (%v); a weight likely increased beyond what the suspect set covers: %w", verr, ErrUnsound)
	}
	out := &RepairResult{Labels: make([]sketch.Label, n), ClustersRegrown: hr.regrown}
	for u := 0; u < n; u++ {
		out.Labels[u] = hr.labels[u]
		if hr.labels[u] == old[u] {
			out.Shared++
		} else {
			out.Replaced++
		}
	}
	return out, nil
}

// requireDecreases certifies the batch for the kinds with no complete
// post-hoc verification: every change must carry its pre-change weight
// and none may be an increase. Returns the endpoint pairs of the changes
// that actually decreased (same-weight no-ops are dropped).
func requireDecreases(g *graph.Graph, changes []EdgeChange, kind string) ([][2]int, error) {
	var pairs [][2]int
	for _, c := range changes {
		w, _ := g.EdgeWeight(c.U, c.V) // validated by normalizeChanges
		if c.PrevWeight <= 0 {
			return nil, fmt.Errorf("core: %s repair of edge (%d,%d) needs the pre-change weight (EdgeChange.PrevWeight): the labels cover only the density net, so exactness cannot be verified after the fact and soundness requires certified decreases: %w", kind, c.U, c.V, ErrUnsound)
		}
		if w > c.PrevWeight {
			return nil, fmt.Errorf("core: %s repair of edge (%d,%d) covers a weight increase %d → %d, which can invalidate kept clusters undetectably: %w", kind, c.U, c.V, c.PrevWeight, w, ErrUnsound)
		}
		if w < c.PrevWeight {
			pairs = append(pairs, [2]int{c.U, c.V})
		}
	}
	return pairs, nil
}

func endpointPairs(changes []EdgeChange) [][2]int {
	pairs := make([][2]int, len(changes))
	for i, c := range changes {
		pairs[i] = [2]int{c.U, c.V}
	}
	return pairs
}

// repairCDGSet repairs (ε,k)-CDG labels: the net and its hierarchy are
// derived from the labels, the net hierarchy is repaired with the
// decrease-only suspect theorem, and the nearest-net assignment is
// recomputed exactly (same multi-source Dijkstra tie-breaks as the
// build's wave).
func repairCDGSet(g *graph.Graph, prev []sketch.Label, changes []EdgeChange) (*RepairResult, error) {
	n := g.N()
	cds := make([]*sketch.CDGLabel, n)
	for u, l := range prev {
		cl, ok := l.(*sketch.CDGLabel)
		if !ok {
			return nil, errMixedLabels(u, prev[0], l)
		}
		cds[u] = cl
	}
	pairs, err := requireDecreases(g, changes, "cdg")
	if err != nil {
		return nil, err
	}
	out, regrown, err := repairCDGLabels(g, cds, pairs)
	if err != nil {
		return nil, err
	}
	res := &RepairResult{Labels: make([]sketch.Label, n), ClustersRegrown: regrown}
	for u := 0; u < n; u++ {
		res.Labels[u] = out[u]
		if out[u] == cds[u] {
			res.Shared++
		} else {
			res.Replaced++
		}
	}
	return res, nil
}

// repairCDGLabels is the per-instance CDG repair shared by the cdg and
// graceful arms.
func repairCDGLabels(g *graph.Graph, prev []*sketch.CDGLabel, pairs [][2]int) ([]*sketch.CDGLabel, int, error) {
	n := g.N()
	// Derive the net: under strictly positive weights, a node is its own
	// nearest net node exactly when it is a net member.
	var net []int
	for u, l := range prev {
		if l == nil {
			return nil, 0, fmt.Errorf("core: node %d has no cdg label", u)
		}
		if l.NetNode < 0 || l.NetNode >= n {
			return nil, 0, fmt.Errorf("core: node %d's nearest net node %d is outside [0,%d); repair requires labels produced by Build", u, l.NetNode, n)
		}
		if l.NetNode == u {
			net = append(net, u)
		}
	}
	if len(net) == 0 {
		return nil, 0, fmt.Errorf("core: labels derive an empty density net (no node is its own nearest net node)")
	}
	k := 0
	old := make([]*sketch.TZLabel, n)
	levels := make([]int, n)
	for u := range levels {
		levels[u] = -1
	}
	for _, w := range net {
		nl := prev[w].NetLabel
		if nl == nil {
			return nil, 0, fmt.Errorf("core: net member %d carries no TZ label; repair requires labels produced by Build", w)
		}
		if k == 0 {
			k = nl.K
		}
		if nl.K != k || len(nl.Pivots) != k {
			return nil, 0, fmt.Errorf("core: net member %d label has k=%d (%d pivots), expected k=%d", w, nl.K, len(nl.Pivots), k)
		}
		lv := deriveTopLevel(nl)
		if lv < 0 {
			return nil, 0, fmt.Errorf("core: net member %d label does not encode its hierarchy level; repair requires labels produced by Build", w)
		}
		old[w] = nl
		levels[w] = lv
	}
	hr, err := repairHierarchy(g, k, levels, old, pairs, true)
	if err != nil {
		return nil, 0, err
	}
	// Nearest-net assignment, recomputed exactly. The multi-source
	// Dijkstra's tie-break (smaller source ID wins at equal distance)
	// matches the build's adoption wave, so NetNode/NetDist are
	// byte-identical to a rebuild's.
	dist, nearest := graph.MultiSourceDijkstra(g, net)
	out := make([]*sketch.CDGLabel, n)
	for u := 0; u < n; u++ {
		nn := nearest[u]
		if nn < 0 {
			return nil, 0, fmt.Errorf("core: node %d is unreachable from the density net; repair requires the connected graphs the builders require", u)
		}
		p := prev[u]
		// Share when nothing about this node's view changed. The net-label
		// comparison is against the *net member's* previous label: on a
		// freshly built set p.NetLabel is that same pointer, and on a
		// lazily loaded set it is a content-identical decoded copy, so
		// sharing p preserves rebuild content either way.
		if nn == p.NetNode && dist[u] == p.NetDist && hr.labels[nn] == old[nn] {
			out[u] = p
			continue
		}
		out[u] = &sketch.CDGLabel{Owner: u, Eps: p.Eps, NetNode: nn, NetDist: dist[u], NetLabel: hr.labels[nn]}
	}
	return out, hr.regrown, nil
}

// repairGracefulSet repairs gracefully degrading labels: one CDG repair
// per slack level, sharing a node's whole label when no level changed.
func repairGracefulSet(g *graph.Graph, prev []sketch.Label, changes []EdgeChange) (*RepairResult, error) {
	n := g.N()
	gls := make([]*sketch.GracefulLabel, n)
	for u, l := range prev {
		gl, ok := l.(*sketch.GracefulLabel)
		if !ok {
			return nil, errMixedLabels(u, prev[0], l)
		}
		gls[u] = gl
	}
	pairs, err := requireDecreases(g, changes, "graceful")
	if err != nil {
		return nil, err
	}
	depth := len(gls[0].Levels)
	for u, gl := range gls {
		if len(gl.Levels) != depth {
			return nil, fmt.Errorf("core: node %d has %d slack levels, node 0 has %d", u, len(gl.Levels), depth)
		}
	}
	newLevels := make([][]*sketch.CDGLabel, depth)
	regrown := 0
	for j := 0; j < depth; j++ {
		lv := make([]*sketch.CDGLabel, n)
		for u, gl := range gls {
			lv[u] = gl.Levels[j]
		}
		out, reg, err := repairCDGLabels(g, lv, pairs)
		if err != nil {
			return nil, fmt.Errorf("core: graceful level %d: %w", j+1, err)
		}
		newLevels[j] = out
		regrown += reg
	}
	res := &RepairResult{Labels: make([]sketch.Label, n), ClustersRegrown: regrown}
	for u := 0; u < n; u++ {
		changed := false
		for j := 0; j < depth; j++ {
			if newLevels[j][u] != gls[u].Levels[j] {
				changed = true
				break
			}
		}
		if !changed {
			res.Labels[u] = gls[u]
			res.Shared++
			continue
		}
		lvls := make([]*sketch.CDGLabel, depth)
		for j := 0; j < depth; j++ {
			lvls[j] = newLevels[j][u]
		}
		res.Labels[u] = &sketch.GracefulLabel{Owner: u, Levels: lvls}
		res.Replaced++
	}
	return res, nil
}
