package core

import (
	"testing"

	"distsketch/internal/graph"
)

// Bandwidth-B generalization tests (Section 2.2's remark): batched
// announcements must reach the same fixed point faster.

func TestBatchedMatchesUnbatched(t *testing.T) {
	for _, f := range []graph.Family{graph.FamilyER, graph.FamilyGeometric} {
		g := graph.Make(f, 64, graph.UniformWeights(1, 9), 44)
		base, err := BuildTZ(g, TZOptions{K: 3, Seed: 4, Mode: SyncOmniscient})
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{2, 4, 8} {
			res, err := BuildTZ(g, TZOptions{K: 3, Seed: 4, Mode: SyncOmniscient, Batch: batch})
			if err != nil {
				t.Fatalf("%s batch=%d: %v", f, batch, err)
			}
			labelsEqual(t, res.Labels, base.Labels, string(f))
			if res.Cost.Total.Rounds > base.Cost.Total.Rounds {
				t.Errorf("%s batch=%d: rounds %d > unbatched %d",
					f, batch, res.Cost.Total.Rounds, base.Cost.Total.Rounds)
			}
		}
	}
}

func TestBatchedMessagesRespectBudget(t *testing.T) {
	g := graph.Make(graph.FamilyBA, 64, graph.UniformWeights(1, 5), 4)
	batch := 4
	res, err := BuildTZ(g, TZOptions{K: 2, Seed: 2, Mode: SyncOmniscient, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	// Still one message per edge per round.
	if res.Cost.Total.Messages > int64(2*g.M()*res.Cost.Total.Rounds) {
		t.Errorf("messages %d exceed per-edge budget", res.Cost.Total.Messages)
	}
	// Word count per message bounded by 1+2B (enforced by the engine; the
	// average must also be plausible).
	if res.Cost.Total.Words > res.Cost.Total.Messages*int64(1+2*batch) {
		t.Errorf("words %d exceed %d per message", res.Cost.Total.Words, 1+2*batch)
	}
}

func TestBatchDetectionRejected(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	if _, err := BuildTZ(g, TZOptions{K: 2, Seed: 1, Mode: SyncDetection, Batch: 4}); err == nil {
		t.Error("batching in detection mode accepted")
	}
}

func TestBatchWithAsync(t *testing.T) {
	// Batching composes with asynchronous delivery.
	g := graph.Make(graph.FamilyGrid, 49, graph.UnitWeights(), 6)
	base, err := BuildTZ(g, TZOptions{K: 2, Seed: 6, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildTZ(g, TZOptions{K: 2, Seed: 6, Mode: SyncOmniscient, Batch: 4,
		Congest: congestDefaultDelay(3)})
	if err != nil {
		t.Fatal(err)
	}
	labelsEqual(t, res.Labels, base.Labels, "batch+async")
}
