package core

import (
	"math"
	"testing"

	"distsketch/internal/congest"
	"distsketch/internal/eval"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
	"distsketch/internal/tz"
)

// labelsEqual compares two label sets field by field.
func labelsEqual(t *testing.T, got, want []*sketch.TZLabel, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels vs %d", context, len(got), len(want))
	}
	for u := range got {
		a, b := got[u], want[u]
		if a.Owner != b.Owner || a.K != b.K {
			t.Fatalf("%s node %d: header mismatch", context, u)
		}
		for i := range a.Pivots {
			if a.Pivots[i] != b.Pivots[i] {
				t.Fatalf("%s node %d: pivot %d: %+v vs %+v", context, u, i, a.Pivots[i], b.Pivots[i])
			}
		}
		if len(a.Bunch) != len(b.Bunch) {
			t.Fatalf("%s node %d: bunch size %d vs %d", context, u, len(a.Bunch), len(b.Bunch))
		}
		for w, e := range a.Bunch {
			if b.Bunch[w] != e {
				t.Fatalf("%s node %d: bunch[%d] %+v vs %+v", context, u, w, e, b.Bunch[w])
			}
		}
	}
}

// TestDistributedMatchesCentralized is experiment E12: with shared coin
// flips, the distributed construction must produce byte-identical labels
// to the centralized Thorup–Zwick reference.
func TestDistributedMatchesCentralized(t *testing.T) {
	for _, f := range graph.AllFamilies() {
		for _, k := range []int{1, 2, 3} {
			for seed := uint64(0); seed < 2; seed++ {
				g := graph.Make(f, 48, graph.UniformWeights(1, 8), seed+100)
				dist, err := BuildTZ(g, TZOptions{K: k, Seed: seed, Mode: SyncOmniscient})
				if err != nil {
					t.Fatalf("%s k=%d seed=%d: %v", f, k, seed, err)
				}
				cent, err := tz.Build(g, k, seed)
				if err != nil {
					t.Fatal(err)
				}
				labelsEqual(t, dist.Labels, cent.Labels,
					string(f)+" k="+string(rune('0'+k)))
			}
		}
	}
}

func TestDistributedStretchBound(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 80, nil, 5)
	for _, k := range []int{2, 4} {
		res, err := BuildTZ(g, TZOptions{K: k, Seed: 5, Mode: SyncOmniscient})
		if err != nil {
			t.Fatal(err)
		}
		ap := graph.APSP(g)
		rep := eval.Evaluate(ap, res.Query, eval.AllPairs(g.N()))
		if rep.Violations != 0 || rep.Unreachable != 0 {
			t.Fatalf("k=%d: invalid estimates: %+v", k, rep)
		}
		if rep.MaxStretch > float64(2*k-1) {
			t.Errorf("k=%d: max stretch %.3f > %d", k, rep.MaxStretch, 2*k-1)
		}
	}
}

func TestDistributedK1Exact(t *testing.T) {
	g := graph.Make(graph.FamilyER, 32, graph.UniformWeights(1, 9), 2)
	res, err := BuildTZ(g, TZOptions{K: 1, Seed: 2, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	ap := graph.APSP(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if got := res.Query(u, v); got != ap[u][v] {
				t.Fatalf("Query(%d,%d) = %d, want %d", u, v, got, ap[u][v])
			}
		}
	}
}

func TestRoundsWithinTheoremBound(t *testing.T) {
	// Theorem 3.8: total rounds ≤ O(k·n^{1/k}·S·log n). Check the
	// omniscient-mode measurement against the bound with the Lemma 3.6
	// constant (c = 3), plus the +1-per-phase scheduling slack.
	for _, f := range []graph.Family{graph.FamilyER, graph.FamilyGrid, graph.FamilyRing} {
		g := graph.Make(f, 64, graph.UniformWeights(1, 10), 9)
		s := graph.ShortestPathDiameter(g)
		k := 3
		res, err := BuildTZ(g, TZOptions{K: k, Seed: 9, Mode: SyncOmniscient})
		if err != nil {
			t.Fatal(err)
		}
		bound := k * AnalyticPhaseBound(g.N(), k, s, 3)
		if res.Cost.Total.Rounds > bound {
			t.Errorf("%s: rounds %d > theorem bound %d (S=%d)", f, res.Cost.Total.Rounds, bound, s)
		}
	}
}

func TestAnalyticModeMatchesOmniscient(t *testing.T) {
	g := graph.Make(graph.FamilyER, 48, graph.UniformWeights(1, 6), 3)
	s := graph.ShortestPathDiameter(g)
	omn, err := BuildTZ(g, TZOptions{K: 2, Seed: 3, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := BuildTZ(g, TZOptions{K: 2, Seed: 3, Mode: SyncAnalytic, S: s})
	if err != nil {
		t.Fatal(err)
	}
	labelsEqual(t, ana.Labels, omn.Labels, "analytic vs omniscient")
	// Analytic mode runs exactly the per-phase bound, so it costs at
	// least as many rounds as the omniscient measurement.
	if ana.Cost.Total.Rounds < omn.Cost.Total.Rounds {
		t.Errorf("analytic rounds %d < omniscient %d", ana.Cost.Total.Rounds, omn.Cost.Total.Rounds)
	}
}

func TestAnalyticRequiresS(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	if _, err := BuildTZ(g, TZOptions{K: 2, Seed: 1, Mode: SyncAnalytic}); err == nil {
		t.Error("analytic mode without S accepted")
	}
}

func TestBuildTZRejectsBadInput(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	if _, err := BuildTZ(g, TZOptions{K: 0, Seed: 1}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := BuildTZ(g, TZOptions{K: 2, Seed: 1, Levels: []int{0}}); err == nil {
		t.Error("bad levels length accepted")
	}
}

func TestSubsetHierarchyDistributed(t *testing.T) {
	// Hierarchy restricted to a subset (the CDG building block): compare
	// with the centralized subset construction.
	g := graph.Make(graph.FamilyGeometric, 40, nil, 8)
	levels := make([]int, g.N())
	for u := range levels {
		levels[u] = -1
	}
	// Members: every 5th node, alternating levels 0/1.
	for u := 0; u < g.N(); u += 5 {
		levels[u] = (u / 5) % 2
	}
	k := 2
	dist, err := BuildTZ(g, TZOptions{K: k, Seed: 8, Mode: SyncOmniscient, Levels: levels})
	if err != nil {
		t.Fatal(err)
	}
	cent, err := tz.BuildHierarchy(g, k, levels)
	if err != nil {
		t.Fatal(err)
	}
	labelsEqual(t, dist.Labels, cent.Labels, "subset hierarchy")
}

func TestPerPhaseStatsSumToTotal(t *testing.T) {
	g := graph.Make(graph.FamilyBA, 60, graph.UniformWeights(1, 5), 4)
	res, err := BuildTZ(g, TZOptions{K: 3, Seed: 4, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	var sum congest.Stats
	for _, ps := range res.Cost.PerPhase {
		sum = sum.Add(ps)
	}
	if sum != res.Cost.Total {
		t.Errorf("phase stats %v don't sum to total %v", sum, res.Cost.Total)
	}
}

func TestSequentialMatchesParallelEngine(t *testing.T) {
	g := graph.Make(graph.FamilyER, 128, graph.UniformWeights(1, 9), 6)
	seq, err := BuildTZ(g, TZOptions{K: 3, Seed: 6, Mode: SyncOmniscient,
		Congest: congest.Config{Sequential: true}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildTZ(g, TZOptions{K: 3, Seed: 6, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	labelsEqual(t, par.Labels, seq.Labels, "parallel vs sequential")
	if seq.Cost.Total != par.Cost.Total {
		t.Errorf("cost differs: seq %+v par %+v", seq.Cost.Total, par.Cost.Total)
	}
}

func TestSketchSizeWithinWHPBound(t *testing.T) {
	// Theorem 3.8: max label size O(k·n^{1/k}·log n) words whp. Use the
	// explicit constant: |B_i(u)| ≤ 3·n^{1/k}·ln n per level, 3 words per
	// entry, plus 2k pivot words.
	n, k := 256, 3
	g := graph.Make(graph.FamilyER, n, graph.UnitWeights(), 12)
	res, err := BuildTZ(g, TZOptions{K: k, Seed: 12, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	perLevel := 3 * math.Pow(float64(n), 1/float64(k)) * math.Log(float64(n))
	bound := float64(2*k) + 3*float64(k)*perLevel
	if got := float64(res.MaxLabelWords()); got > bound {
		t.Errorf("max label %d words > whp bound %.0f", res.MaxLabelWords(), bound)
	}
	if res.MeanLabelWords() > float64(res.MaxLabelWords()) {
		t.Error("mean > max")
	}
}
