package core

// Validation-path coverage for the unified Repair entry point: malformed
// batches and label sets must be refused with clear errors before any
// repair work, and well-formed duplicates must collapse rather than
// double-apply.

import (
	"errors"
	"strings"
	"testing"

	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// tzPrev builds a TZ label set and erases it to []sketch.Label, the
// shape Repair takes.
func tzPrev(t *testing.T, g *graph.Graph, seed uint64) []sketch.Label {
	t.Helper()
	res, err := BuildTZ(g, TZOptions{K: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	prev := make([]sketch.Label, len(res.Labels))
	for i, l := range res.Labels {
		prev[i] = l
	}
	return prev
}

func TestRepairRejectsMalformedBatches(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 24, graph.UniformWeights(5, 20), 31)
	prev := tzPrev(t, g, 31)
	e := g.Edges()[0]
	n := g.N()

	cases := []struct {
		name  string
		edges []EdgeChange
		want  string
	}{
		{"self-loop", []EdgeChange{{U: 3, V: 3}}, "self-loop"},
		{"negative node", []EdgeChange{{U: -1, V: 2}}, "outside"},
		{"node past n", []EdgeChange{{U: 0, V: n}}, "outside"},
		{"missing edge", []EdgeChange{missingEdge(t, g)}, "not in graph"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Repair(g, prev, nil, c.edges, congestDefault())
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want error containing %q", err, c.want)
			}
			if errors.Is(err, ErrUnsound) {
				t.Errorf("malformed input misreported as unsound (rebuilding would not fix it): %v", err)
			}
		})
	}

	// A short or empty label set never reaches the per-kind repairs.
	if _, err := Repair(g, prev[:n-1], nil, []EdgeChange{{U: e.U, V: e.V}}, congestDefault()); err == nil {
		t.Error("short label set accepted")
	}
	if _, err := Repair(g, nil, nil, []EdgeChange{{U: e.U, V: e.V}}, congestDefault()); err == nil {
		t.Error("empty label set accepted")
	}
}

// missingEdge returns a node pair that is not an edge of g.
func missingEdge(t *testing.T, g *graph.Graph) EdgeChange {
	t.Helper()
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if _, ok := g.EdgeWeight(u, v); !ok {
				return EdgeChange{U: u, V: v}
			}
		}
	}
	t.Fatal("graph is complete; no missing edge")
	return EdgeChange{}
}

func TestRepairRejectsMixedLabelKinds(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 24, graph.UniformWeights(5, 20), 32)
	prev := tzPrev(t, g, 32)
	lm, err := BuildLandmark(g, SlackOptions{Eps: 0.25, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	prev[5] = lm.Labels[5]
	e := g.Edges()[0]
	_, err = Repair(g, prev, nil, []EdgeChange{{U: e.U, V: e.V}}, congestDefault())
	if err == nil || !strings.Contains(err.Error(), "mixed") {
		t.Fatalf("mixed label kinds: got %v, want mixed-kind error", err)
	}
}

func TestRepairRejectsNonPositiveWeights(t *testing.T) {
	// A zero-weight edge breaks the verification's exactness argument, so
	// Repair refuses the graph outright — with a plain error, not
	// ErrUnsound, because rebuilding would not make the graph acceptable.
	nb := graph.NewBuilder(4)
	nb.AddEdge(0, 1, 0)
	nb.AddEdge(1, 2, 3)
	nb.AddEdge(2, 3, 3)
	g, err := nb.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	good := graph.Make(graph.FamilyRing, 4, graph.UniformWeights(2, 9), 33)
	prev := tzPrev(t, good, 33)
	_, err = Repair(g, prev, nil, []EdgeChange{{U: 1, V: 2}}, congestDefault())
	if err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("zero-weight graph: got %v, want positive-weight error", err)
	}
	if errors.Is(err, ErrUnsound) {
		t.Errorf("weight-model violation misreported as unsound: %v", err)
	}
}

// TestRepairDuplicateChangesCollapse: the same edge reported several
// times (in both orientations) repairs exactly once — the result still
// matches a fresh rebuild on the mutated graph.
func TestRepairDuplicateChangesCollapse(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 32, graph.UniformWeights(5, 30), 34)
	prev := tzPrev(t, g, 34)
	e := g.Edges()[g.M()/2]
	ng := decreaseEdge(t, g, e.U, e.V, 1)
	batch := []EdgeChange{
		{U: e.U, V: e.V, PrevWeight: e.Weight},
		{U: e.V, V: e.U, PrevWeight: e.Weight},
		{U: e.U, V: e.V, PrevWeight: e.Weight},
	}
	res, err := Repair(ng, prev, nil, batch, congestDefault())
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	rebuilt, err := BuildTZ(ng, TZOptions{K: 2, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < ng.N(); u++ {
		got, want := res.Labels[u].(*sketch.TZLabel), rebuilt.Labels[u]
		if len(got.Bunch) != len(want.Bunch) {
			t.Fatalf("node %d: bunch size %d != rebuild %d", u, len(got.Bunch), len(want.Bunch))
		}
		for i := range got.Bunch {
			if got.Bunch[i] != want.Bunch[i] {
				t.Fatalf("node %d entry %d: %+v != rebuild %+v", u, i, got.Bunch[i], want.Bunch[i])
			}
		}
	}
}

// TestRepairEmptyBatchSharesEverything: no changes means every label is
// returned pointer-identical and nothing is counted as replaced.
func TestRepairEmptyBatchSharesEverything(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 24, graph.UniformWeights(5, 20), 35)
	prev := tzPrev(t, g, 35)
	res, err := Repair(g, prev, nil, nil, congestDefault())
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.Replaced != 0 || res.Shared != g.N() {
		t.Errorf("empty batch: replaced %d shared %d, want 0 / %d", res.Replaced, res.Shared, g.N())
	}
	for u := range prev {
		if res.Labels[u] != prev[u] {
			t.Errorf("node %d: empty batch did not share the label pointer", u)
		}
	}
}
