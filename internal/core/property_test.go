package core

import (
	"testing"
	"testing/quick"

	"distsketch/internal/eval"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// Property-based sweeps over random graphs, seeds, and parameters: the
// paper's invariants must hold on arbitrary inputs, not just the curated
// experiment configurations.

// Property: for random (family, seed, k), every TZ estimate lies in
// [d, (2k-1)·d].
func TestPropertyTZStretchEnvelope(t *testing.T) {
	families := graph.AllFamilies()
	f := func(famIdx, kRaw uint8, seed uint64) bool {
		fam := families[int(famIdx)%len(families)]
		k := int(kRaw)%4 + 1
		g := graph.Make(fam, 24+int(seed%17), graph.UniformWeights(1, 12), seed)
		res, err := BuildTZ(g, TZOptions{K: k, Seed: seed, Mode: SyncOmniscient})
		if err != nil {
			return false
		}
		ap := graph.APSP(g)
		rep := eval.Evaluate(ap, res.Query, eval.AllPairs(g.N()))
		return rep.Violations == 0 && rep.Unreachable == 0 &&
			rep.MaxStretch <= float64(2*k-1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: bunch/cluster duality — the label sets reconstructed from
// the distributed run satisfy w ∈ B(u) ⟺ d(u,w) < d(u, A_{level(w)+1}).
func TestPropertyBunchThreshold(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.Make(graph.FamilyER, 32, graph.UniformWeights(1, 9), seed)
		k := 3
		res, err := BuildTZ(g, TZOptions{K: k, Seed: seed, Mode: SyncOmniscient})
		if err != nil {
			return false
		}
		ap := graph.APSP(g)
		for u := 0; u < g.N(); u++ {
			lab := res.Labels[u]
			if err := lab.Validate(); err != nil {
				return false
			}
			// Membership soundness and completeness against exact
			// distances.
			for w := 0; w < g.N(); w++ {
				if w == u {
					continue
				}
				l := res.Levels[w]
				thresh := graph.Inf
				if l+1 < k {
					thresh = lab.Pivots[l+1].Dist
				}
				it, in := lab.Get(w)
				want := ap[u][w] < thresh
				if in != want {
					return false
				}
				if in && it.Dist != ap[u][w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: serialized estimates equal in-memory estimates for random
// pairs and all sketch kinds.
func TestPropertySerializationTransparency(t *testing.T) {
	g := graph.Make(graph.FamilyBA, 40, graph.UniformWeights(1, 9), 9)
	tzRes, err := BuildTZ(g, TZOptions{K: 2, Seed: 9, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		u, v := int(a)%g.N(), int(b)%g.N()
		direct := tzRes.Query(u, v)
		lu, err := sketch.UnmarshalTZ(sketch.MarshalTZ(tzRes.Labels[u]))
		if err != nil {
			return false
		}
		lv, err := sketch.UnmarshalTZ(sketch.MarshalTZ(tzRes.Labels[v]))
		if err != nil {
			return false
		}
		return sketch.QueryTZ(lu, lv) == direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: pivot distances are monotone nonincreasing in quality across
// levels (d(u,A_0) ≤ d(u,A_1) ≤ ... ) and pivot 0 is the node itself for
// full hierarchies.
func TestPropertyPivotChainMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.Make(graph.FamilyGeometric, 30, nil, seed)
		res, err := BuildTZ(g, TZOptions{K: 4, Seed: seed, Mode: SyncOmniscient})
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			p := res.Labels[u].Pivots
			if p[0].Node != u || p[0].Dist != 0 {
				return false
			}
			for i := 1; i < len(p); i++ {
				if p[i].Dist < p[i-1].Dist {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
