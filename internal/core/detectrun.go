package core

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// buildTZDetection runs the construction with in-band Section 3.3
// termination detection: no runner intervention happens between Init and
// global quiescence; phase boundaries are driven entirely by the protocol.
func buildTZDetection(g *graph.Graph, opt TZOptions, levels []int) (*TZResult, error) {
	n := g.N()
	nodes := make([]congest.Node, n)
	dns := make([]*detectNode, n)
	for u := 0; u < n; u++ {
		dns[u] = newDetectNode(u, n, opt.K, levels[u])
		nodes[u] = dns[u]
	}
	cfg := opt.Congest
	cfg.Seed = opt.Seed
	if opt.Progress != nil {
		// Phase boundaries are in-band here, invisible to the runner.
		prog := opt.Progress
		cfg.OnRound = func(r int) { prog("detection", r) }
	}
	eng := congest.NewEngine(g, nodes, cfg)
	defer eng.Close()
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		return nil, fmt.Errorf("core: detection run: %w", err)
	}
	res := &TZResult{Levels: levels}
	res.Labels = make([]*sketch.TZLabel, n)
	res.Cost.PerPhase = make([]congest.Stats, opt.K)
	for u := 0; u < n; u++ {
		nd := dns[u]
		if nd.phase != -1 {
			return nil, fmt.Errorf("core: node %d stuck in phase %d at quiescence", u, nd.phase)
		}
		// harvestPhase accumulated bunch items in arbitrary per-phase
		// order; SetBunch establishes the sorted representation invariant
		// once per label.
		nd.label.SetBunch(nd.items)
		res.Labels[u] = nd.label
		for i := 0; i < opt.K; i++ {
			res.Cost.DataMessages += nd.dataSent[i]
			res.Cost.EchoMessages += nd.echoSent[i]
			res.Cost.PerPhase[i].Messages += nd.dataSent[i] + nd.echoSent[i]
		}
		res.Cost.ControlMessages += nd.controlSent
	}
	root := dns[n-1]
	res.Cost.SetupRounds = root.setupRounds
	// Phase i runs from the root's START(i) until its next transition.
	for i := opt.K - 1; i >= 0; i-- {
		end := root.finishRound
		if i > 0 {
			end = root.phaseStartRound[i-1]
		}
		res.Cost.PerPhase[i].Rounds = end - root.phaseStartRound[i]
	}
	res.Cost.Total = eng.Stats()
	res.Trace = eng.Trace()
	return res, nil
}
