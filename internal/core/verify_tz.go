package core

import (
	"fmt"

	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// verifyHierarchyExact checks that full-graph Thorup–Zwick labels are
// exactly what a rebuild on g would produce, given the hierarchy levels
// and *fresh* per-level pivot distances (d(·, A_i) computed on g — the
// caller's repairHierarchy already holds them). It is the hierarchy
// analogue of VerifyLandmarkExact: a Bellman–Ford-style fixed-point
// check over the truncated clusters, written sparsely so it costs
// O(m · avg-bunch) instead of one Dijkstra per hierarchy member.
//
// Write ℓ_u(w) for u's recorded distance to bunch member w (∞ when
// absent, 0 implicitly when u = w) and T_u(w) = d(u, A_{level(w)+1}) for
// the fresh truncation threshold. The labels pass iff for every node u:
//
//	validity: every entry has ℓ_u(w) < T_u(w), w ≠ u, and w's recorded
//	          level matches the hierarchy;
//	closure:  for every edge (u,v) and member w with ℓ_v(w) finite,
//	          if ℓ_v(w) + wt(u,v) < T_u(w) then ℓ_u(w) ≤ ℓ_v(w) + wt;
//	support:  every entry ℓ_u(w) (u ≠ w) has a neighbor v with
//	          ℓ_u(w) = ℓ_v(w) + wt(u,v).
//
// Soundness and completeness (strictly positive weights): exact labels
// satisfy all three — validity is the cluster membership condition,
// closure is the triangle inequality on true distances plus the cluster
// prefix property (a relaxation that beats T_u(w) stays inside C(w)),
// and support takes v as the predecessor on a shortest u–w path, in C(w)
// by the same prefix property. Conversely, support chains strictly
// decrease ℓ along positive-weight edges, so by induction on ℓ every
// recorded value is ≥ the true distance; closure applied along shortest
// paths (whose prefixes stay in the cluster) forces ℓ_u(w) ≤ d(u, w)
// for every u ∈ C_new(w) — walking from w outward, each hop's through
// value equals the true distance, which is < T by membership — so
// recorded values on true members are exact and no member is missing;
// validity then kills any entry outside the new cluster, since its
// exact-by-induction value could not beat the fresh threshold. Hence
// labels ≡ rebuild. The check never consults the old graph, which is
// what makes the TZ repair sound under arbitrary weight changes.
//
// Requires a label at every node (full-graph hierarchies only — the
// net-restricted labels of CDG sketches cannot be verified this way,
// because closure across non-member nodes has no recorded ℓ to check).
func verifyHierarchyExact(g *graph.Graph, levels []int, labels []*sketch.TZLabel, pivotDist [][]graph.Dist) error {
	n := g.N()
	if len(labels) != n {
		return fmt.Errorf("core: %d labels for n=%d", len(labels), n)
	}

	// Pass 1: validity, and support bookkeeping allocation.
	supported := make([][]bool, n)
	for u, lab := range labels {
		if lab == nil {
			return fmt.Errorf("core: node %d has no label", u)
		}
		for _, it := range lab.Bunch {
			if it.Node == u {
				return fmt.Errorf("core: node %d lists itself in its bunch", u)
			}
			if it.Node < 0 || it.Node >= n || it.Level < 0 || it.Level >= len(pivotDist)-1 || levels[it.Node] != it.Level {
				return fmt.Errorf("core: node %d bunch entry (%d, level %d) does not match the hierarchy", u, it.Node, it.Level)
			}
			if it.Dist >= pivotDist[it.Level+1][u] {
				return fmt.Errorf("core: node %d keeps member %d at distance %d ≥ threshold %d (stale membership)", u, it.Node, it.Dist, pivotDist[it.Level+1][u])
			}
		}
		supported[u] = make([]bool, len(lab.Bunch))
	}

	// Pass 2: closure across every arc, support detection. Both arc
	// directions appear in the adjacency lists, so each unordered edge is
	// relaxed both ways.
	for u := 0; u < n; u++ {
		bu := labels[u].Bunch
		for _, a := range g.Adj(u) {
			v, wt := a.To, a.Weight

			// The neighbor itself as member w = v (ℓ_v(v) = 0 implicit).
			if lv := levels[v]; lv >= 0 {
				idx, found := bunchIndex(bu, v)
				if !found {
					if wt < pivotDist[lv+1][u] {
						return fmt.Errorf("core: node %d is missing hierarchy neighbor %d (reachable at %d < threshold %d)", u, v, wt, pivotDist[lv+1][u])
					}
				} else {
					if bu[idx].Dist > wt {
						return fmt.Errorf("core: node %d records member %d at %d but the direct edge costs %d", u, v, bu[idx].Dist, wt)
					}
					if bu[idx].Dist == wt {
						supported[u][idx] = true
					}
				}
			}

			// Members seen through v's bunch, by sorted two-pointer merge.
			i := 0
			for _, e := range labels[v].Bunch {
				w := e.Node
				if w == u || w == v {
					continue
				}
				through := graph.AddDist(e.Dist, wt)
				thresh := pivotDist[e.Level+1][u]
				for i < len(bu) && bu[i].Node < w {
					i++
				}
				if i < len(bu) && bu[i].Node == w {
					if bu[i].Dist > through && through < thresh {
						return fmt.Errorf("core: node %d records member %d at %d but neighbor %d offers %d", u, w, bu[i].Dist, v, through)
					}
					if bu[i].Dist == through {
						supported[u][i] = true
					}
				} else if through < thresh {
					return fmt.Errorf("core: node %d is missing member %d (reachable through %d at %d < threshold %d)", u, w, v, through, thresh)
				}
			}
		}
	}

	// Pass 3: every recorded entry must be supported, or it is a stale
	// value no relaxation on the new graph reproduces.
	for u := 0; u < n; u++ {
		for idx, ok := range supported[u] {
			if !ok {
				it := labels[u].Bunch[idx]
				return fmt.Errorf("core: node %d's entry for member %d (distance %d) has no supporting neighbor", u, it.Node, it.Dist)
			}
		}
	}
	return nil
}

// bunchIndex finds node w in a canonical (sorted by node ID) bunch.
func bunchIndex(b []sketch.BunchItem, w int) (int, bool) {
	lo, hi := 0, len(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if b[mid].Node < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(b) && b[lo].Node == w {
		return lo, true
	}
	return lo, false
}
