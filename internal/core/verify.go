package core

import (
	"fmt"
	"sort"

	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

// VerifyLandmarkExact checks that labels are the exact distances from
// every node to every net member on g. It is the guard that makes
// incremental repair safe to expose: the warm-start protocol of
// UpdateLandmark is exact only when the changed edge's weight decreased,
// and a caller who hands it an *increase* would otherwise receive
// silently understated labels. The check is purely local (no simulated
// messages, so it never pollutes the CONGEST cost accounting) and runs
// in O((n+m)·|net|) time.
//
// The characterization used: a column ℓ(·) = labels[·].Get(w) equals
// d(·, w) exactly when
//
//  1. ℓ(w) = 0;
//  2. feasibility — ℓ(u) ≤ ℓ(v) + weight(u,v) across every edge, in both
//     directions (then ℓ is entrywise ≤ d by induction along shortest
//     paths, with missing entries read as +∞);
//  3. support — every node u ≠ w with finite ℓ(u) has a neighbor v with
//     ℓ(u) = ℓ(v) + weight(u,v) (then ℓ(u) is the length of a real walk
//     to w, hence ≥ d(u, w); support chains strictly decrease ℓ under
//     positive weights, so they terminate at w).
//
// Precondition: every edge weight is strictly positive. With a
// zero-weight edge the support condition would be necessary but not
// sufficient (a zero-weight cycle could support stale labels), so the
// caller must refuse such graphs before asking for verification —
// SketchSet.UpdateEdge does. The generators in this repository produce
// weights ≥ 1.
func VerifyLandmarkExact(g *graph.Graph, labels []*sketch.LandmarkLabel, net []int) error {
	n := g.N()
	if len(labels) != n {
		return fmt.Errorf("core: %d labels for n=%d", len(labels), n)
	}
	for _, w := range net {
		if w < 0 || w >= n {
			return fmt.Errorf("core: net node %d out of range [0,%d)", w, n)
		}
	}
	// Columns are checked in ascending net order with one cursor per
	// node's entry slice: the entries are sorted, so every lookup is a
	// monotone cursor advance — amortized O(1), preserving the
	// O((n+m)·|net|) bound a binary search per access would not. The
	// caller's net order is unconstrained (it may come from an untrusted
	// envelope), so iterate a sorted copy; column checks are
	// order-independent.
	sorted := append([]int(nil), net...)
	sort.Ints(sorted)
	cur := make([]int, n)
	at := func(u, w int) (graph.Dist, bool) {
		es := labels[u].Entries
		for cur[u] < len(es) && es[cur[u]].Net < w {
			cur[u]++
		}
		if cur[u] < len(es) && es[cur[u]].Net == w {
			return es[cur[u]].D, true
		}
		return 0, false
	}
	for _, w := range sorted {
		if d, ok := at(w, w); !ok {
			return fmt.Errorf("core: net node %d is missing its own label entry", w)
		} else if d != 0 {
			return fmt.Errorf("core: net node %d has distance %d to itself", w, d)
		}
		for u := 0; u < n; u++ {
			lu, okU := at(u, w)
			if !okU {
				lu = graph.Inf
			}
			supported := u == w || !okU
			for _, arc := range g.Adj(u) {
				lv, okV := at(arc.To, w)
				if !okV {
					lv = graph.Inf
				}
				through := graph.AddDist(lv, arc.Weight)
				if lu > through {
					return fmt.Errorf("core: label d(%d,%d)=%d exceeds %d via neighbor %d", u, w, lu, through, arc.To)
				}
				if lu == through && through != graph.Inf {
					supported = true
				}
			}
			if !supported {
				return fmt.Errorf("core: label d(%d,%d)=%d is below the distance achievable through any neighbor (stale lower bound)", u, w, lu)
			}
		}
	}
	return nil
}
