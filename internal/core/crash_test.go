package core

import (
	"errors"
	"testing"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
	"distsketch/internal/tz"
)

// Failure behaviour. The paper's algorithms are not fault-tolerant
// (Section 5 explicitly leaves failure-prone settings open); these tests
// pin down *how* they fail, which is part of the system's contract:
//
//   - a crash before the run = building on the residual network, which
//     works whenever the residual network is connected;
//   - a crash mid-run stalls the Section 3.3 termination detection
//     (the leader waits for a COMPLETE that never comes) rather than
//     producing corrupt labels — fail-stop, not fail-wrong.

// crashAtRound wraps the detection build so a node dies mid-run.
func TestDetectionCrashStallsCleanly(t *testing.T) {
	g := graph.Make(graph.FamilyER, 32, graph.UniformWeights(1, 8), 91)
	levels := tzLevels(g.N(), 2, 9)
	nodes := make([]congest.Node, g.N())
	dns := make([]*detectNode, g.N())
	for u := 0; u < g.N(); u++ {
		dns[u] = newDetectNode(u, g.N(), 2, levels[u])
		nodes[u] = dns[u]
	}
	eng := congest.NewEngine(g, nodes, congest.Config{Seed: 9})
	// Let the protocol get going, then kill a non-root node.
	eng.Init()
	if err := eng.RunRounds(5); err != nil {
		t.Fatal(err)
	}
	eng.Crash(3)
	_, err := eng.RunUntilQuiescent(20000)
	// Either the network stalls forever (leader waiting on the dead
	// subtree: ErrMaxRounds) or — if node 3's role was already done —
	// it completes. Both are acceptable fail-stop outcomes; what must
	// NOT happen is a finished run with wrong labels at live nodes.
	if err != nil {
		if !errors.Is(err, congest.ErrMaxRounds) {
			t.Fatalf("unexpected error: %v", err)
		}
		return // stalled cleanly
	}
	cent, errC := tz.Build(g, 2, 9)
	if errC != nil {
		t.Fatal(errC)
	}
	for u := 0; u < g.N(); u++ {
		if u == 3 || dns[u].phase != -1 {
			continue
		}
		for _, it := range dns[u].label.Bunch {
			want, ok := cent.Labels[u].Get(it.Node)
			if !ok || it.Dist < want.Dist {
				t.Fatalf("node %d has a bunch entry better than reality after a crash", u)
			}
		}
	}
}

// tzLevels mirrors BuildTZ's default hierarchy sampling.
func tzLevels(n, k int, seed uint64) []int {
	return sketch.SampleLevels(n, k, sketch.HierarchyProb(n, k), seed)
}

func TestResidualRebuildAfterCrash(t *testing.T) {
	// Crash-before-start = rebuild on the residual connected network.
	g := graph.Make(graph.FamilyER, 48, graph.UniformWeights(1, 8), 92)
	dead := 7
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if e.U != dead && e.V != dead {
			b.AddEdge(e.U, e.V, e.Weight)
		}
	}
	residual := b.MustFreeze()
	comps := residual.Components()
	// Use the largest component only (the paper's model assumes a
	// connected network).
	if len(comps) < 1 {
		t.Fatal("no components")
	}
	// Relabel the largest component densely and rebuild.
	largest := comps[0]
	for _, c := range comps[1:] {
		if len(c) > len(largest) {
			largest = c
		}
	}
	remap := make(map[int]int, len(largest))
	for i, v := range largest {
		remap[v] = i
	}
	rb := graph.NewBuilder(len(largest))
	for _, e := range residual.Edges() {
		u, okU := remap[e.U]
		v, okV := remap[e.V]
		if okU && okV {
			rb.AddEdge(u, v, e.Weight)
		}
	}
	rg := rb.MustFreeze()
	res, err := BuildTZ(rg, TZOptions{K: 2, Seed: 92, Mode: SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	ap := graph.APSP(rg)
	for u := 0; u < rg.N(); u += 5 {
		for v := 0; v < rg.N(); v += 7 {
			if u == v {
				continue
			}
			est := res.Query(u, v)
			if est < ap[u][v] || float64(est) > 3*float64(ap[u][v]) {
				t.Fatalf("residual rebuild: estimate %d outside [d, 3d] for d=%d", est, ap[u][v])
			}
		}
	}
}
