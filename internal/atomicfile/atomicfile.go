// Package atomicfile writes files so that a crash at any instant leaves
// either the complete old contents or the complete new contents on disk
// — never a torn file. The recipe is the classic one: produce the bytes
// in a same-directory temp file, fsync it, rename it over the target
// (atomic within a filesystem), then fsync the directory so the rename
// itself survives a power cut.
//
// A process killed between CreateTemp and the rename leaves a stale
// temp sibling behind; CleanStale removes those at startup. The target
// path itself is never observable in a half-written state.
package atomicfile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
)

// tmpInfix separates the target's base name from the random suffix
// os.CreateTemp appends; CleanStale globs for the same shape.
const tmpInfix = ".tmp-"

// WriteFile writes the bytes produced by write to path atomically. The
// write callback streams into a temp file in path's directory; only
// after the data is flushed, fsynced and closed is the temp file
// renamed over path, and the directory is fsynced so the rename is
// durable. On any error — including a failure inside write — the temp
// file is removed and path is left exactly as it was.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+tmpInfix+"*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close() // no-op (with an ignored error) if already closed
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return fmt.Errorf("atomicfile: writing %s: %w", tmp, err)
	}
	// fsync before the rename: without it the rename can become durable
	// before the data, which is exactly the torn-file crash this package
	// exists to rule out.
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicfile: fsync %s: %w", tmp, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", tmp, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if err = syncDir(dir); err != nil {
		return fmt.Errorf("atomicfile: fsync %s: %w", dir, err)
	}
	return nil
}

// CleanStale removes temp files that interrupted WriteFile calls for
// path left behind (a kill between CreateTemp and the rename). It
// returns the paths it removed. Call it at startup before reading path;
// the stale files hold torn data by definition and must never be
// mistaken for the real file.
func CleanStale(path string) ([]string, error) {
	matches, err := filepath.Glob(path + tmpInfix + "*")
	if err != nil {
		// Only possible if path itself contains malformed glob metachars;
		// report it rather than silently skipping cleanup.
		return nil, fmt.Errorf("atomicfile: scanning for stale temps of %s: %w", path, err)
	}
	var removed []string
	for _, m := range matches {
		if rmErr := os.Remove(m); rmErr == nil {
			removed = append(removed, m)
		} else if !errors.Is(rmErr, os.ErrNotExist) {
			return removed, fmt.Errorf("atomicfile: removing stale temp: %w", rmErr)
		}
	}
	return removed, nil
}

// CleanStaleDir removes stale WriteFile temps for every target in dir —
// the directory-wide form of CleanStale, for startups that serve a
// whole directory of envelopes (a shard directory) rather than one
// path. It returns the paths it removed. Only names carrying the
// WriteFile temp infix are touched; real files can never match.
func CleanStaleDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("atomicfile: scanning %s for stale temps: %w", dir, err)
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() || !isStaleTempName(e.Name()) {
			continue
		}
		p := filepath.Join(dir, e.Name())
		if rmErr := os.Remove(p); rmErr == nil {
			removed = append(removed, p)
		} else if !errors.Is(rmErr, os.ErrNotExist) {
			return removed, fmt.Errorf("atomicfile: removing stale temp: %w", rmErr)
		}
	}
	return removed, nil
}

// isStaleTempName reports whether name has the shape WriteFile temps
// use: <base>.tmp-<random suffix>. The suffix os.CreateTemp appends is
// never empty, so a file literally named "x.tmp-" does not match.
func isStaleTempName(name string) bool {
	i := strings.LastIndex(name, tmpInfix)
	return i > 0 && i+len(tmpInfix) < len(name)
}

// syncDir fsyncs a directory so a just-completed rename inside it is
// durable. Filesystems that cannot fsync a directory (and Windows)
// refuse with EINVAL/ENOTSUP; the rename is still atomic there, so that
// refusal is not treated as a failure.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, errors.ErrUnsupported)) {
		return nil
	}
	return err
}
