package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "first" {
		t.Fatalf("after create: %q, %v", got, err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("second version, longer"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "second version, longer" {
		t.Fatalf("after replace: %q", got)
	}
}

// TestTornWriteFileFailureLeavesOldContents is the crash-safety core: a
// writer that dies partway (the in-process stand-in for a kill mid-save)
// must leave the previous file byte-identical and no temp debris.
func TestTornWriteFileFailureLeavesOldContents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("killed mid-write")
	err := WriteFile(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("half a new fi")); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the writer's error back, got %v", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "precious" {
		t.Fatalf("old contents damaged: %q, %v", got, rerr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), tmpInfix) {
			t.Errorf("temp debris left behind: %s", e.Name())
		}
	}
}

func TestTornCleanStale(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	if err := os.WriteFile(path, []byte("real"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := path + tmpInfix + "1234"
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An unrelated sibling must survive the sweep.
	other := filepath.Join(dir, "other.bin")
	if err := os.WriteFile(other, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := CleanStale(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != stale {
		t.Fatalf("removed %v, want [%s]", removed, stale)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale temp still present")
	}
	for _, keep := range []string{path, other} {
		if _, err := os.Stat(keep); err != nil {
			t.Errorf("%s should survive cleanup: %v", keep, err)
		}
	}
	// Idempotent on a clean directory.
	if removed, err := CleanStale(path); err != nil || len(removed) != 0 {
		t.Errorf("second sweep: %v, %v", removed, err)
	}
}

// TestCleanStaleDir sweeps every torn temp file in a directory in one
// pass — the shard-directory startup sweep — while leaving finished
// envelopes and non-temp names alone.
func TestCleanStaleDir(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	staleA := mk("shard-0-of-4.dsk" + tmpInfix + "999")
	staleB := mk("shard-1-of-4.dsk" + tmpInfix + "abc")
	keepShard := mk("shard-0-of-4.dsk")
	// Leading infix (hidden file) and bare infix are not our temps.
	keepHidden := mk(tmpInfix + "weird")
	keepBare := mk("name" + tmpInfix)

	removed, err := CleanStaleDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the two stale temps", removed)
	}
	for _, gone := range []string{staleA, staleB} {
		if _, err := os.Stat(gone); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s should have been swept", gone)
		}
	}
	for _, keep := range []string{keepShard, keepHidden, keepBare} {
		if _, err := os.Stat(keep); err != nil {
			t.Errorf("%s should survive the sweep: %v", keep, err)
		}
	}
	if removed, err := CleanStaleDir(dir); err != nil || len(removed) != 0 {
		t.Errorf("second sweep: %v, %v", removed, err)
	}
	if _, err := CleanStaleDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("CleanStaleDir on a missing directory should error")
	}
}
