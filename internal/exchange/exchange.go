// Package exchange implements the paper's query-time protocol (Section
// 2.1): after preprocessing, a node estimates its distance to any other
// node by fetching that node's sketch and running the offline query — at
// a cost of O(D · sketch-size) rounds, versus the Ω(S) rounds any online
// distance computation needs. This package measures that claim with a
// real CONGEST protocol rather than an analytic formula:
//
//	requester --REQ--> target      (routed over the BFS tree, ≤ 2·height hops)
//	target   --chunk stream--> requester  (one word per edge per round, pipelined)
//
// Routing uses the DFS interval labels of package bfstree. The sketch
// travels as its serialized bytes packed into O(log n)-bit words, so the
// measured round count directly reflects the sketch size the paper's
// bounds are stated in.
package exchange

import (
	"fmt"

	"distsketch/internal/bfstree"
	"distsketch/internal/congest"
	"distsketch/internal/graph"
)

// reqMsg asks the target (by DFS number) to stream its sketch back to the
// requester (also by DFS number).
type reqMsg struct {
	Target  int
	ReplyTo int
}

func (reqMsg) Words() int { return 2 }

// chunkMsg carries one packed word of a sketch toward Target.
type chunkMsg struct {
	Target int
	Seq    int
	Total  int
	Word   uint64
}

func (chunkMsg) Words() int { return 4 }

// exchNode forwards routed traffic and serves/collects sketch streams.
type exchNode struct {
	id   int
	tree *bfstree.Tree

	payload []uint64 // this node's packed sketch

	fifo [][]congest.Message

	// Requester state.
	want     int // DFS number of the node being fetched; -1 otherwise
	received []uint64
	gotCount int
	total    int
	done     bool
	doneAt   int // round at which the fetch completed
}

func (nd *exchNode) Init(ctx *congest.Context) {
	nd.fifo = make([][]congest.Message, ctx.Degree())
	if nd.want >= 0 {
		nd.route(ctx, nd.want, reqMsg{Target: nd.want, ReplyTo: nd.tree.In[nd.id]})
	}
	nd.drain(ctx)
}

// route enqueues m on the tree edge toward the DFS number target.
func (nd *exchNode) route(ctx *congest.Context, target int, m congest.Message) {
	next, err := nd.tree.NextHop(nd.id, target)
	if err != nil {
		panic(fmt.Sprintf("exchange: node %d: %v", nd.id, err))
	}
	if next == nd.id {
		panic("exchange: routing to self")
	}
	i := ctx.NeighborIndex(next)
	if i < 0 {
		panic(fmt.Sprintf("exchange: tree edge %d-%d missing from graph", nd.id, next))
	}
	nd.fifo[i] = append(nd.fifo[i], m)
}

func (nd *exchNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		switch m := in.Payload.(type) {
		case reqMsg:
			if nd.tree.In[nd.id] == m.Target {
				// Serve: stream every word of the sketch toward the
				// requester. The per-edge FIFO pipelines them.
				for seq, w := range nd.payload {
					nd.route(ctx, m.ReplyTo, chunkMsg{
						Target: m.ReplyTo, Seq: seq, Total: len(nd.payload), Word: w,
					})
				}
				continue
			}
			nd.route(ctx, m.Target, m)
		case chunkMsg:
			if nd.tree.In[nd.id] == m.Target {
				if nd.received == nil {
					nd.received = make([]uint64, m.Total)
					nd.total = m.Total
				}
				nd.received[m.Seq] = m.Word
				nd.gotCount++
				if nd.gotCount == nd.total && !nd.done {
					nd.done = true
					nd.doneAt = ctx.Round()
				}
				continue
			}
			nd.route(ctx, m.Target, m)
		default:
			panic(fmt.Sprintf("exchange: node %d got %T", nd.id, in.Payload))
		}
	}
	nd.drain(ctx)
}

func (nd *exchNode) drain(ctx *congest.Context) {
	pending := false
	for i := range nd.fifo {
		if len(nd.fifo[i]) == 0 {
			continue
		}
		ctx.Send(i, nd.fifo[i][0])
		copy(nd.fifo[i], nd.fifo[i][1:])
		nd.fifo[i] = nd.fifo[i][:len(nd.fifo[i])-1]
		if len(nd.fifo[i]) > 0 {
			pending = true
		}
	}
	if pending {
		ctx.WakeNextRound()
	}
}

// PackWords packs serialized sketch bytes into 64-bit words with a length
// prefix, so the stream is self-delimiting.
func PackWords(data []byte) []uint64 {
	words := make([]uint64, 1, 1+(len(data)+7)/8)
	words[0] = uint64(len(data))
	var cur uint64
	for i, b := range data {
		cur |= uint64(b) << (8 * (i % 8))
		if i%8 == 7 {
			words = append(words, cur)
			cur = 0
		}
	}
	if len(data)%8 != 0 {
		words = append(words, cur)
	}
	return words
}

// UnpackWords reverses PackWords.
func UnpackWords(words []uint64) ([]byte, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("exchange: empty stream")
	}
	n := int(words[0])
	if need := 1 + (n+7)/8; len(words) != need {
		return nil, fmt.Errorf("exchange: got %d words, want %d for %d bytes", len(words), need, n)
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(words[1+i/8] >> (8 * (i % 8)))
	}
	return data, nil
}

// FetchResult reports one measured sketch fetch.
type FetchResult struct {
	// Rounds until the requester held the complete sketch.
	Rounds int
	// Stats for the whole run (includes tail-of-pipeline drain).
	Stats congest.Stats
	// Sketch is the reassembled serialized sketch of the target.
	Sketch []byte
}

// Fetch runs the protocol: requester asks target for its sketch over the
// tree and reassembles it. sketches[v] is node v's serialized sketch.
func Fetch(g *graph.Graph, tree *bfstree.Tree, sketches [][]byte, requester, target int, cfg congest.Config) (*FetchResult, error) {
	n := g.N()
	if len(sketches) != n {
		return nil, fmt.Errorf("exchange: %d sketches for n=%d", len(sketches), n)
	}
	if requester == target {
		return &FetchResult{Sketch: sketches[target]}, nil
	}
	if cfg.MaxWords < 4 {
		cfg.MaxWords = 4
	}
	nodes := make([]congest.Node, n)
	exs := make([]*exchNode, n)
	for u := 0; u < n; u++ {
		exs[u] = &exchNode{
			id:      u,
			tree:    tree,
			payload: PackWords(sketches[u]),
			want:    -1,
		}
		nodes[u] = exs[u]
	}
	exs[requester].want = tree.In[target]
	eng := congest.NewEngine(g, nodes, cfg)
	defer eng.Close()
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		return nil, err
	}
	req := exs[requester]
	if !req.done {
		return nil, fmt.Errorf("exchange: fetch did not complete")
	}
	data, err := UnpackWords(req.received)
	if err != nil {
		return nil, err
	}
	return &FetchResult{Rounds: req.doneAt, Stats: eng.Stats(), Sketch: data}, nil
}
