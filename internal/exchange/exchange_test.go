package exchange

import (
	"bytes"
	"testing"
	"testing/quick"

	"distsketch/internal/bfstree"
	"distsketch/internal/congest"
	"distsketch/internal/core"
	"distsketch/internal/graph"
	"distsketch/internal/sketch"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := [][]byte{nil, {}, {1}, {1, 2, 3, 4, 5, 6, 7, 8}, {9, 9, 9, 9, 9, 9, 9, 9, 1}}
	for _, c := range cases {
		got, err := UnpackWords(PackWords(c))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, c) {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(data []byte) bool {
		got, err := UnpackWords(PackWords(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnpackRejectsBadStreams(t *testing.T) {
	if _, err := UnpackWords(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := UnpackWords([]uint64{100}); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := UnpackWords([]uint64{1, 0, 0}); err == nil {
		t.Error("oversized stream accepted")
	}
}

func TestFetchDeliversSketch(t *testing.T) {
	g := graph.Make(graph.FamilyGeometric, 64, nil, 4)
	tree, err := bfstree.Build(g, g.N()-1, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BuildTZ(g, core.TZOptions{K: 3, Seed: 4, Mode: core.SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	sketches := make([][]byte, g.N())
	for u := range sketches {
		sketches[u] = sketch.MarshalTZ(res.Labels[u])
	}
	for _, pair := range [][2]int{{0, 63}, {10, 20}, {5, 6}} {
		u, v := pair[0], pair[1]
		fr, err := Fetch(g, tree, sketches, u, v, congest.Config{})
		if err != nil {
			t.Fatalf("(%d,%d): %v", u, v, err)
		}
		if !bytes.Equal(fr.Sketch, sketches[v]) {
			t.Fatalf("(%d,%d): fetched sketch differs", u, v)
		}
		// End to end: the fetched sketch answers the query.
		lab, err := sketch.UnmarshalTZ(fr.Sketch)
		if err != nil {
			t.Fatal(err)
		}
		if got := sketch.QueryTZ(res.Labels[u], lab); got != res.Query(u, v) {
			t.Fatalf("(%d,%d): fetched-query %d != direct %d", u, v, got, res.Query(u, v))
		}
	}
}

func TestFetchRoundsBound(t *testing.T) {
	// The paper: fetching costs at most O(D · sketch-words) rounds. With
	// pipelining it is ≤ c·(2·height + words).
	g := graph.Make(graph.FamilyER, 96, graph.UniformWeights(1, 9), 8)
	tree, err := bfstree.Build(g, g.N()-1, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BuildTZ(g, core.TZOptions{K: 3, Seed: 8, Mode: core.SyncOmniscient})
	if err != nil {
		t.Fatal(err)
	}
	sketches := make([][]byte, g.N())
	for u := range sketches {
		sketches[u] = sketch.MarshalTZ(res.Labels[u])
	}
	u, v := 0, g.N()/2
	fr, err := Fetch(g, tree, sketches, u, v, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	words := len(PackWords(sketches[v]))
	bound := 2*(2*tree.Height()+words) + 8
	if fr.Rounds > bound {
		t.Errorf("fetch took %d rounds > pipelined bound %d (height=%d words=%d)",
			fr.Rounds, bound, tree.Height(), words)
	}
	if fr.Rounds <= 0 {
		t.Error("fetch rounds not recorded")
	}
}

func TestFetchSelf(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	tree, err := bfstree.Build(g, 3, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sketches := [][]byte{{1}, {2}, {3}, {4}}
	fr, err := Fetch(g, tree, sketches, 2, 2, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr.Sketch, []byte{3}) || fr.Rounds != 0 {
		t.Errorf("self fetch wrong: %+v", fr)
	}
}

func TestFetchBadInput(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	tree, err := bfstree.Build(g, 3, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fetch(g, tree, [][]byte{{1}}, 0, 1, congest.Config{}); err == nil {
		t.Error("wrong sketch count accepted")
	}
}

func BenchmarkFetch(b *testing.B) {
	g := graph.Make(graph.FamilyER, 256, graph.UniformWeights(1, 20), 1)
	tree, err := bfstree.Build(g, g.N()-1, congest.Config{})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.BuildTZ(g, core.TZOptions{K: 3, Seed: 1, Mode: core.SyncOmniscient})
	if err != nil {
		b.Fatal(err)
	}
	sketches := make([][]byte, g.N())
	for u := range sketches {
		sketches[u] = sketch.MarshalTZ(res.Labels[u])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fetch(g, tree, sketches, i%g.N(), (i*31+7)%g.N(), congest.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFetchUnderAsyncDelivery(t *testing.T) {
	// The fetch protocol is FIFO-causal, so it completes correctly under
	// bounded random delays too (just slower).
	g := graph.Make(graph.FamilyGrid, 49, graph.UnitWeights(), 2)
	tree, err := bfstree.Build(g, g.N()-1, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sketches := make([][]byte, g.N())
	for u := range sketches {
		sketches[u] = []byte{byte(u), byte(u + 1), byte(u + 2)}
	}
	syncFr, err := Fetch(g, tree, sketches, 0, 48, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	asyncFr, err := Fetch(g, tree, sketches, 0, 48, congest.Config{MaxDelay: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(asyncFr.Sketch, sketches[48]) {
		t.Error("async fetch corrupted the sketch")
	}
	if asyncFr.Rounds <= syncFr.Rounds {
		t.Errorf("async fetch rounds %d should exceed sync %d", asyncFr.Rounds, syncFr.Rounds)
	}
}
