package bellmanford

import (
	"testing"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
)

func TestSSSPMatchesDijkstra(t *testing.T) {
	for _, f := range graph.AllFamilies() {
		g := graph.Make(f, 64, graph.UniformWeights(1, 9), 3)
		res, err := SSSP(g, 0, congest.Config{})
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		want := graph.Dijkstra(g, 0)
		for u := 0; u < g.N(); u++ {
			if res.Dist[u] != want.Dist[u] {
				t.Fatalf("%s node %d: %d != %d", f, u, res.Dist[u], want.Dist[u])
			}
		}
	}
}

func TestSSSPRoundsAtMostS(t *testing.T) {
	// Algorithm 1 converges within S rounds (plus the final quiet round).
	g := graph.Make(graph.FamilyGeometric, 96, nil, 7)
	s := graph.ShortestPathDiameter(g)
	res, err := SSSP(g, 5, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > s+2 {
		t.Errorf("rounds %d > S+2 = %d", res.Stats.Rounds, s+2)
	}
}

func TestSSSPBadSource(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	if _, err := SSSP(g, 9, congest.Config{}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestKSourceMatchesPerSourceDijkstra(t *testing.T) {
	g := graph.Make(graph.FamilyER, 80, graph.UniformWeights(1, 7), 11)
	sources := []int{0, 17, 42, 79}
	res, err := KSource(g, sources, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sources {
		want := graph.Dijkstra(g, s)
		for u := 0; u < g.N(); u++ {
			got, ok := res.Dist[u][s]
			if !ok || got != want.Dist[u] {
				t.Fatalf("d(%d,%d) = %d (ok=%v), want %d", u, s, got, ok, want.Dist[u])
			}
		}
	}
	// Only the requested sources appear.
	for u := 0; u < g.N(); u++ {
		if len(res.Dist[u]) != len(sources) {
			t.Fatalf("node %d knows %d sources, want %d", u, len(res.Dist[u]), len(sources))
		}
	}
}

func TestKSourceOneMessagePerEdgePerRound(t *testing.T) {
	// The per-edge FIFO discipline means messages ≤ 2·|E|·rounds.
	g := graph.Make(graph.FamilyBA, 64, graph.UniformWeights(1, 5), 2)
	sources := []int{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := KSource(g, sources, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages > int64(2*g.M()*res.Stats.Rounds) {
		t.Errorf("messages %d exceed bandwidth budget %d", res.Stats.Messages, 2*g.M()*res.Stats.Rounds)
	}
}

func TestKSourceEmptySources(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	res, err := KSource(g, nil, congest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Messages != 0 {
		t.Errorf("no sources should send nothing, got %d messages", res.Stats.Messages)
	}
}

func TestKSourceBadSource(t *testing.T) {
	g := graph.Path(4, graph.UnitWeights(), 0)
	if _, err := KSource(g, []int{-1}, congest.Config{}); err == nil {
		t.Error("negative source accepted")
	}
}

func BenchmarkSSSP(b *testing.B) {
	g := graph.Make(graph.FamilyER, 256, graph.UniformWeights(1, 50), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SSSP(g, i%g.N(), congest.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKSource16(b *testing.B) {
	g := graph.Make(graph.FamilyER, 256, graph.UniformWeights(1, 50), 1)
	sources := make([]int, 16)
	for i := range sources {
		sources[i] = i * 16
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KSource(g, sources, congest.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
