// Package bellmanford provides the distributed Bellman–Ford primitives the
// paper builds on (Section 3.2, Algorithm 1, and the "super node" variant
// of Lemma 4.5) as standalone, reusable CONGEST protocols:
//
//   - SSSP: single-source shortest paths (Algorithm 1). O(S) rounds,
//     O(S·|E|) messages.
//   - KSource: concurrent Bellman–Ford from a set of sources, where every
//     node learns its distance to every source (the "k-Source Shortest
//     Paths Problem" used for phase k-1 and for Theorem 4.3). Per-edge
//     FIFO queues keep it within the CONGEST bandwidth budget.
//   - SuperNode: all sources collapsed into one virtual source; every
//     node learns the nearest source, its distance, and its parent edge
//     toward it (the Voronoi forest of the source set).
package bellmanford

import (
	"fmt"

	"distsketch/internal/congest"
	"distsketch/internal/graph"
)

// distMsg announces "my current distance to Src is Dist".
type distMsg struct {
	Src  int
	Dist graph.Dist
}

func (distMsg) Words() int { return 2 }

// ssspNode implements Algorithm 1 for one global source.
type ssspNode struct {
	id   int
	src  int
	dist graph.Dist
}

func (nd *ssspNode) Init(ctx *congest.Context) {
	nd.dist = graph.Inf
	if nd.id == nd.src {
		nd.dist = 0
		ctx.Broadcast(distMsg{Src: nd.src, Dist: 0})
	}
}

func (nd *ssspNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	improved := false
	for _, in := range inbox {
		m := in.Payload.(distMsg)
		w := ctx.NeighborIndex(in.From)
		if d := graph.AddDist(m.Dist, ctx.WeightTo(w)); d < nd.dist {
			nd.dist = d
			improved = true
		}
	}
	if improved {
		ctx.Broadcast(distMsg{Src: nd.src, Dist: nd.dist})
	}
}

// SSSPResult is the outcome of a distributed single-source run.
type SSSPResult struct {
	Source int
	Dist   []graph.Dist
	Stats  congest.Stats
}

// SSSP runs Algorithm 1 from src and returns every node's distance.
func SSSP(g *graph.Graph, src int, cfg congest.Config) (*SSSPResult, error) {
	if src < 0 || src >= g.N() {
		return nil, fmt.Errorf("bellmanford: source %d out of range", src)
	}
	nodes := make([]congest.Node, g.N())
	sn := make([]*ssspNode, g.N())
	for u := 0; u < g.N(); u++ {
		sn[u] = &ssspNode{id: u, src: src}
		nodes[u] = sn[u]
	}
	eng := congest.NewEngine(g, nodes, cfg)
	defer eng.Close()
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		return nil, err
	}
	res := &SSSPResult{Source: src, Dist: make([]graph.Dist, g.N()), Stats: eng.Stats()}
	for u := 0; u < g.N(); u++ {
		res.Dist[u] = sn[u].dist
	}
	return res, nil
}

// ksourceNode runs concurrent Bellman–Ford for many sources with per-edge
// FIFO queues (at most one message per edge per round).
type ksourceNode struct {
	id       int
	isSource bool
	best     map[int]graph.Dist

	fifo   [][]int        // per edge: queued source IDs
	inFifo []map[int]bool // per edge: dedup
}

func (nd *ksourceNode) Init(ctx *congest.Context) {
	nd.best = make(map[int]graph.Dist)
	deg := ctx.Degree()
	nd.fifo = make([][]int, deg)
	nd.inFifo = make([]map[int]bool, deg)
	for i := 0; i < deg; i++ {
		nd.inFifo[i] = make(map[int]bool)
	}
	if nd.isSource {
		nd.best[nd.id] = 0
		nd.enqueueAll(nd.id)
	}
	nd.drain(ctx)
}

func (nd *ksourceNode) enqueueAll(src int) {
	for i := range nd.fifo {
		if !nd.inFifo[i][src] {
			nd.inFifo[i][src] = true
			nd.fifo[i] = append(nd.fifo[i], src)
		}
	}
}

func (nd *ksourceNode) Round(ctx *congest.Context, inbox []congest.Incoming) {
	for _, in := range inbox {
		m := in.Payload.(distMsg)
		w := ctx.NeighborIndex(in.From)
		d := graph.AddDist(m.Dist, ctx.WeightTo(w))
		if cur, ok := nd.best[m.Src]; !ok || d < cur {
			nd.best[m.Src] = d
			nd.enqueueAll(m.Src)
		}
	}
	nd.drain(ctx)
}

func (nd *ksourceNode) drain(ctx *congest.Context) {
	pending := false
	for i := range nd.fifo {
		if len(nd.fifo[i]) == 0 {
			continue
		}
		src := nd.fifo[i][0]
		copy(nd.fifo[i], nd.fifo[i][1:])
		nd.fifo[i] = nd.fifo[i][:len(nd.fifo[i])-1]
		delete(nd.inFifo[i], src)
		ctx.Send(i, distMsg{Src: src, Dist: nd.best[src]})
		if len(nd.fifo[i]) > 0 {
			pending = true
		}
	}
	if pending {
		ctx.WakeNextRound()
	}
}

// KSourceResult is the outcome of a concurrent multi-source run.
type KSourceResult struct {
	Sources []int
	// Dist[u][s] = d(u, s) for every source s reachable from u.
	Dist  []map[int]graph.Dist
	Stats congest.Stats
}

// KSource runs concurrent Bellman–Ford from all sources; every node ends
// up knowing its distance to every (reachable) source.
func KSource(g *graph.Graph, sources []int, cfg congest.Config) (*KSourceResult, error) {
	isSrc := make([]bool, g.N())
	for _, s := range sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("bellmanford: source %d out of range", s)
		}
		isSrc[s] = true
	}
	nodes := make([]congest.Node, g.N())
	kn := make([]*ksourceNode, g.N())
	for u := 0; u < g.N(); u++ {
		kn[u] = &ksourceNode{id: u, isSource: isSrc[u]}
		nodes[u] = kn[u]
	}
	eng := congest.NewEngine(g, nodes, cfg)
	defer eng.Close()
	if _, err := eng.RunUntilQuiescent(0); err != nil {
		return nil, err
	}
	res := &KSourceResult{Sources: sources, Dist: make([]map[int]graph.Dist, g.N()), Stats: eng.Stats()}
	for u := 0; u < g.N(); u++ {
		res.Dist[u] = kn[u].best
	}
	return res, nil
}
