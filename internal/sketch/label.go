package sketch

import (
	"fmt"

	"distsketch/internal/graph"
)

// Label is the interface shared by the four sketch label kinds. It is the
// currency of the decode-once query path: a label is unmarshaled from its
// wire bytes exactly once and then queried any number of times, which is
// what the paper's build-once / query-millions lifecycle assumes.
//
// The interface is closed (labelTag is unexported), so the Query type
// switch below is exhaustive by construction.
type Label interface {
	// SizeWords reports the label size in O(log n)-bit words, the unit
	// the paper's size bounds are stated in.
	SizeWords() int
	// LabelOwner returns the node this label describes.
	LabelOwner() int
	// labelTag returns the wire-format tag byte.
	labelTag() byte
}

// LabelOwner returns the owning node (Label interface).
func (l *TZLabel) LabelOwner() int { return l.Owner }

// LabelOwner returns the owning node (Label interface).
func (l *LandmarkLabel) LabelOwner() int { return l.Owner }

// LabelOwner returns the owning node (Label interface).
func (l *CDGLabel) LabelOwner() int { return l.Owner }

// LabelOwner returns the owning node (Label interface).
func (l *GracefulLabel) LabelOwner() int { return l.Owner }

func (*TZLabel) labelTag() byte       { return TagTZ }
func (*LandmarkLabel) labelTag() byte { return TagLandmark }
func (*CDGLabel) labelTag() byte      { return TagCDG }
func (*GracefulLabel) labelTag() byte { return TagGraceful }

// LabelTag returns the wire-format tag byte of a label value.
func LabelTag(l Label) byte { return l.labelTag() }

// Tag returns the wire-format tag of an encoded label without decoding
// it, or 0 for empty input.
func Tag(data []byte) byte {
	if len(data) == 0 {
		return 0
	}
	return data[0]
}

// Marshal encodes any label in its wire format.
func Marshal(l Label) []byte {
	switch v := l.(type) {
	case *TZLabel:
		return MarshalTZ(v)
	case *LandmarkLabel:
		return MarshalLandmark(v)
	case *CDGLabel:
		return MarshalCDG(v)
	case *GracefulLabel:
		return MarshalGraceful(v)
	default:
		panic(fmt.Sprintf("sketch: unknown label type %T", l))
	}
}

// Unmarshal decodes any label from its wire format, dispatching on the
// leading tag byte.
func Unmarshal(data []byte) (Label, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sketch: empty label")
	}
	switch data[0] {
	case TagTZ:
		l, err := UnmarshalTZ(data)
		if err != nil {
			return nil, err
		}
		return l, nil
	case TagLandmark:
		l, err := UnmarshalLandmark(data)
		if err != nil {
			return nil, err
		}
		return l, nil
	case TagCDG:
		l, err := UnmarshalCDG(data)
		if err != nil {
			return nil, err
		}
		return l, nil
	case TagGraceful:
		l, err := UnmarshalGraceful(data)
		if err != nil {
			return nil, err
		}
		return l, nil
	default:
		return nil, fmt.Errorf("sketch: unknown label tag %d", data[0])
	}
}

// Query estimates the distance between two labels' owners from the labels
// alone — the paper's query model. The labels must be of the same kind.
func Query(a, b Label) (graph.Dist, error) {
	switch x := a.(type) {
	case *TZLabel:
		if y, ok := b.(*TZLabel); ok {
			return QueryTZ(x, y), nil
		}
	case *LandmarkLabel:
		if y, ok := b.(*LandmarkLabel); ok {
			return QueryLandmark(x, y), nil
		}
	case *CDGLabel:
		if y, ok := b.(*CDGLabel); ok {
			return QueryCDG(x, y), nil
		}
	case *GracefulLabel:
		if y, ok := b.(*GracefulLabel); ok {
			return QueryGraceful(x, y), nil
		}
	}
	return 0, fmt.Errorf("sketch: mismatched label kinds %T and %T", a, b)
}
