package sketch

import (
	"fmt"
	"math"
	"sort"

	"distsketch/internal/graph"
)

// Slack sketch types from Section 4 of the paper.

// Entry is one landmark label record: a density-net member and the label
// owner's distance to it.
type Entry struct {
	Net int
	D   graph.Dist
}

// LandmarkLabel is the stretch-3 ε-slack sketch of Theorem 4.3: the node's
// distance to every member of an ε-density net N.
//
// Entries are kept sorted by ascending net ID with unique keys. That order
// is a representation invariant, not a convenience: QueryLandmark is a
// two-pointer merge-intersection over the two entry slices, which is what
// makes the decode-once query a branch-predictable linear pass with zero
// allocations instead of |N| hashed map probes. Every producer — the
// builders, the wire decoder, and the repair path — maintains the
// invariant; Validate checks it.
type LandmarkLabel struct {
	Owner   int
	Entries []Entry
}

// NewLandmarkLabel allocates an empty landmark label.
func NewLandmarkLabel(owner int) *LandmarkLabel {
	return &LandmarkLabel{Owner: owner}
}

// NewLandmarkLabelFromEntries builds a label from entries in any order,
// canonicalizing in place: entries are sorted by net ID and duplicate IDs
// collapse to the smallest distance (labels store distances, so the
// smallest duplicate is the only sound survivor).
func NewLandmarkLabelFromEntries(owner int, entries []Entry) *LandmarkLabel {
	return &LandmarkLabel{Owner: owner, Entries: CanonicalizeEntries(entries)}
}

// CanonicalizeEntries sorts entries by net ID and collapses duplicate IDs
// to the smallest distance, returning the canonical slice (reusing the
// input's storage).
func CanonicalizeEntries(entries []Entry) []Entry {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Net < entries[j].Net })
	out := entries[:0]
	for _, e := range entries {
		if n := len(out); n > 0 && out[n-1].Net == e.Net {
			if e.D < out[n-1].D {
				out[n-1].D = e.D
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// Len returns the number of net members stored in the label.
func (l *LandmarkLabel) Len() int { return len(l.Entries) }

// Get returns the stored distance to net node w, or (0, false), by
// binary search over the sorted entries. Open-coded (no sort.Search
// closure) to match TZLabel.Get and the hot-path discipline.
//
//sketchlint:hotpath
func (l *LandmarkLabel) Get(w int) (graph.Dist, bool) {
	lo, hi := 0, len(l.Entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.Entries[mid].Net < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.Entries) && l.Entries[lo].Net == w {
		return l.Entries[lo].D, true
	}
	return 0, false
}

// Set inserts or replaces the entry for net node w, preserving the sorted
// order. Appending in ascending ID order — the natural order for the
// builders, which scan sorted nets — is O(1) amortized.
func (l *LandmarkLabel) Set(w int, d graph.Dist) {
	if n := len(l.Entries); n == 0 || w > l.Entries[n-1].Net {
		l.Entries = append(l.Entries, Entry{Net: w, D: d})
		return
	}
	i := sort.Search(len(l.Entries), func(i int) bool { return l.Entries[i].Net >= w })
	if i < len(l.Entries) && l.Entries[i].Net == w {
		l.Entries[i].D = d
		return
	}
	l.Entries = append(l.Entries, Entry{})
	copy(l.Entries[i+1:], l.Entries[i:])
	l.Entries[i] = Entry{Net: w, D: d}
}

// SizeWords counts two words (ID, distance) per net node.
func (l *LandmarkLabel) SizeWords() int { return 2 * len(l.Entries) }

// NetNodes returns the net member IDs in ascending order. The slice is
// freshly allocated but never re-sorted — the sorted representation makes
// it a straight copy of the entry keys. Hot paths (marshalling, the
// repair's stream setup) iterate Entries directly instead.
func (l *LandmarkLabel) NetNodes() []int {
	ids := make([]int, len(l.Entries))
	for i, e := range l.Entries {
		ids[i] = e.Net
	}
	return ids
}

// Validate checks the representation invariant: entries strictly
// ascending by net ID (sorted, no duplicates) with non-negative distances.
func (l *LandmarkLabel) Validate() error {
	for i, e := range l.Entries {
		if i > 0 && e.Net <= l.Entries[i-1].Net {
			return fmt.Errorf("sketch: landmark entries not strictly ascending at index %d (%d after %d)",
				i, e.Net, l.Entries[i-1].Net)
		}
		if e.D < 0 {
			return fmt.Errorf("sketch: landmark entry %d has negative distance %d", e.Net, e.D)
		}
	}
	return nil
}

// QueryLandmark estimates d(u,v) as min over net nodes w of
// d(u,w) + d(w,v) (Theorem 4.3). For pairs where v is ε-far from u the
// estimate is between d(u,v) and 3·d(u,v). The intersection is a
// two-pointer merge over the sorted entry slices: O(|a|+|b|) comparisons,
// zero allocations.
//
//sketchlint:hotpath
func QueryLandmark(a, b *LandmarkLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	best := graph.Inf
	ae, be := a.Entries, b.Entries
	i, j := 0, 0
	for i < len(ae) && j < len(be) {
		switch {
		case ae[i].Net < be[j].Net:
			i++
		case ae[i].Net > be[j].Net:
			j++
		default:
			if est := graph.AddDist(ae[i].D, be[j].D); est < best {
				best = est
			}
			i++
			j++
		}
	}
	return best
}

// CDGLabel is the (ε,k)-CDG sketch of Section 4 / Lemma 4.4: the identity
// of the nearest density-net node u', the distance d(u,u'), and the
// Thorup–Zwick label of u' with respect to a hierarchy sampled on the net.
type CDGLabel struct {
	Owner    int
	Eps      float64
	NetNode  int        // u' = nearest net node (tie -> smaller ID)
	NetDist  graph.Dist // d(u, u')
	NetLabel *TZLabel   // TZ label of u' over the net hierarchy
}

// SizeWords counts the net pointer (2 words) plus the carried TZ label.
func (l *CDGLabel) SizeWords() int {
	if l.NetLabel == nil {
		return 2
	}
	return 2 + l.NetLabel.SizeWords()
}

// QueryCDG estimates d(u,v) as d(u,u') + d”(u',v') + d(v',v), where d”
// is the TZ estimate between the two net nodes (Section 4). For pairs
// where v is ε-far from u the estimate is within a factor 8k-1.
//
//sketchlint:hotpath
func QueryCDG(a, b *CDGLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	if a.NetNode == b.NetNode {
		// Same nearest net node: estimate through it directly.
		return graph.AddDist(a.NetDist, b.NetDist)
	}
	if a.NetLabel == nil || b.NetLabel == nil {
		// A label without its net node's TZ label (legal on the wire)
		// has no common reference to estimate through.
		return graph.Inf
	}
	mid := QueryTZ(a.NetLabel, b.NetLabel)
	return graph.AddDist(a.NetDist, graph.AddDist(mid, b.NetDist))
}

// GracefulLabel is the gracefully degrading sketch of Theorem 4.8: one
// (ε_i, k_i)-CDG sketch for every ε_i = 2^{-i}, i = 1..⌈log₂ n⌉. The
// query takes the minimum over the per-ε estimates, which yields stretch
// O(log 1/ε) simultaneously for every ε, hence O(log n) worst-case and
// O(1) average stretch (Lemma 4.7, Corollary 4.9).
type GracefulLabel struct {
	Owner  int
	Levels []*CDGLabel // Levels[i] built with ε = 2^{-(i+1)}
}

// GracefulLevels returns ⌈log₂ n⌉, the number of slack levels a gracefully
// degrading sketch uses for an n-node network.
func GracefulLevels(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// GracefulK returns k_i for slack level i (1-based): k_i = i, matching the
// paper's choice k = O(log 1/ε_i) with ε_i = 2^{-i}. The stretch at level
// i is then 8i-1 = O(log 1/ε_i).
func GracefulK(i int) int { return i }

// SizeWords sums the component sketch sizes.
func (l *GracefulLabel) SizeWords() int {
	s := 0
	for _, c := range l.Levels {
		s += c.SizeWords()
	}
	return s
}

// QueryGraceful returns the minimum estimate over all slack levels. All
// component estimates are ≥ d(u,v), so the minimum is too.
//
// Levels are visited finest-net first (descending i: smaller ε, denser
// net, smaller net distances) with a sound prune: every level-i estimate
// is d(u,u') + d”(u',v') + d(v',v) ≥ NetDist_a + NetDist_b, so a level
// whose net distances alone already reach the best estimate seen cannot
// improve the minimum, and its Thorup–Zwick probes are skipped entirely.
// The minimum over the surviving levels is unchanged.
//
//sketchlint:hotpath
func QueryGraceful(a, b *GracefulLabel) graph.Dist {
	if a.Owner == b.Owner {
		return 0
	}
	best := graph.Inf
	n := len(a.Levels)
	if len(b.Levels) < n {
		n = len(b.Levels)
	}
	for i := 0; i < n; i++ {
		ca, cb := a.Levels[i], b.Levels[i]
		if ca == nil || cb == nil {
			continue
		}
		// The level's estimate is d(u,u') + d”(u',v') + d(v',v) with
		// d” ≥ 0, so NetDist_a + NetDist_b is a sound per-level lower
		// bound: a level that cannot beat the running minimum is skipped
		// (or, below, stops probing early via the bounded walk). This is
		// QueryCDG fused into the loop — one call per level, with the
		// remaining headroom best − NetDists handed to the TZ walk.
		lower := graph.AddDist(ca.NetDist, cb.NetDist)
		if lower >= best {
			continue
		}
		if ca.NetNode == cb.NetNode {
			best = lower
			continue
		}
		if ca.NetLabel == nil || cb.NetLabel == nil {
			continue
		}
		midBound := graph.Inf
		if best != graph.Inf {
			midBound = best - ca.NetDist - cb.NetDist
		}
		mid := queryTZBounded(ca.NetLabel, cb.NetLabel, midBound)
		if mid == graph.Inf {
			continue
		}
		if est := graph.AddDist(ca.NetDist, graph.AddDist(mid, cb.NetDist)); est < best {
			best = est
		}
	}
	return best
}

// Validate checks structural invariants of a graceful label.
func (l *GracefulLabel) Validate() error {
	for i, c := range l.Levels {
		if c == nil {
			return fmt.Errorf("sketch: graceful level %d missing", i+1)
		}
		if c.Owner != l.Owner {
			return fmt.Errorf("sketch: graceful level %d owner %d != %d", i+1, c.Owner, l.Owner)
		}
		if c.NetLabel != nil {
			if err := c.NetLabel.Validate(); err != nil {
				return fmt.Errorf("sketch: graceful level %d: %w", i+1, err)
			}
		}
	}
	return nil
}
